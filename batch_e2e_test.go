package gnumap

import (
	"path/filepath"
	"testing"
)

// End-to-end identity of the batched wavefront Pair-HMM kernel: running
// the full streaming pipeline with -phmm-batch on vs. off must produce
// exactly the same SNP calls. Batched lanes are bit-identical to scalar
// AlignBanded calls and flushPending emits locations in candidate
// order, so not even the call scores may drift. Runs under -race in CI
// (make race covers the root package).
func TestBatchedKernelCallIdentityE2E(t *testing.T) {
	ds := dataset(t)
	fq := filepath.Join(t.TempDir(), "reads.fq")
	if err := WriteReads(fq, ds.Reads, Sanger); err != nil {
		t.Fatal(err)
	}

	call := func(phmmBatch int) []SNPCall {
		t.Helper()
		cfg := EngineConfig{Workers: 4, Batch: 32, Queue: 2, PhmmBatch: phmmBatch}
		p, err := NewPipeline(ds.Reference, Options{Engine: cfg})
		if err != nil {
			t.Fatal(err)
		}
		src, err := OpenReads(fq, Sanger)
		if err != nil {
			t.Fatal(err)
		}
		_, err = p.MapReadsFrom(src)
		if cerr := src.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		calls, _, err := p.Call()
		if err != nil {
			t.Fatal(err)
		}
		return calls
	}

	want := call(-1) // scalar kernel only
	if len(want) == 0 {
		t.Fatal("scalar baseline called no SNPs; dataset too weak for an identity test")
	}
	// Position/allele identity is the contract (multi-worker shard
	// accumulation reorders float adds between runs, so scores are
	// compared bit-exactly only by the single-worker test in
	// internal/core). Width 5 exercises the scalar-leftover fallback.
	for _, width := range []int{8, 5} {
		sameCalls(t, "batched streaming", call(width), want)
	}
}
