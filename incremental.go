package gnumap

// Incremental calling overlapped with mapping (DESIGN.md §14). The
// streaming pipeline already quiesces every writer when a checkpoint
// policy asks it to; an incremental run hangs the snp.IncrementalCaller
// off that barrier, so provisional SNP calls are available while
// mapping is still running and the final call set reuses almost every
// region sweep — time-to-first-call moves from "after mapping" to
// "during mapping".

import (
	"errors"
	"time"

	"gnumap/internal/core"
	"gnumap/internal/snp"
)

// IncrementalCallConfig configures Pipeline.MapReadsFromIncremental.
type IncrementalCallConfig struct {
	// EveryReads quiesces and re-sweeps after this many reads
	// (default 5000, the checkpoint default cadence).
	EveryReads int64
	// RegionSize is the sweep granularity in genome positions
	// (default 16384; see snp.NewIncrementalCaller).
	RegionSize int
	// OnProvisional, when non-nil, receives every provisional call set
	// (calls valid until the next sweep; copy to retain). It runs while
	// the pipeline is parked, so keep it cheap.
	OnProvisional func(calls []SNPCall, st CallStats, consumed int64)
}

// IncrementalResult reports an incremental run's calling outcome.
type IncrementalResult struct {
	// Calls and CallStats are the final call set, computed from the
	// fully-mapped state (bit-identical to Pipeline.Call on a striped
	// accumulator; sharded runs carry the usual merge-order tolerance).
	Calls     []SNPCall
	CallStats CallStats
	// FirstCallSeconds is the wall time from mapping start to the first
	// provisional sweep that produced at least one call — by
	// construction earlier than mapping completion when coverage
	// arrives early enough (0 when no provisional sweep called
	// anything). FirstCallReads is the source watermark at that sweep.
	FirstCallSeconds float64
	FirstCallReads   int64
	// Sweeps / RegionsSwept / RegionsReused expose the incremental
	// cache behaviour: reused counts regions whose cached candidates
	// were still valid at a sweep.
	Sweeps, RegionsSwept, RegionsReused int64
}

// MapReadsFromIncremental is MapReadsFrom with calling overlapped: the
// pipeline quiesces every EveryReads reads, re-sweeps only the genome
// regions written since the previous barrier, and emits a provisional
// call set; after mapping completes a final sweep (touching only the
// tail's regions) yields the definitive calls. Metrics (when enabled)
// gain call.first.seconds / call.first.reads gauges and
// call.inc.sweeps / call.inc.regions.swept / call.inc.regions.reused
// counters.
func (p *Pipeline) MapReadsFromIncremental(src ReadSource, inc IncrementalCallConfig) (MapStats, *IncrementalResult, error) {
	if p.opts.Checkpoint != nil {
		return MapStats{}, nil, errors.New("gnumap: incremental calling and checkpointing both schedule the pipeline's quiesce barrier; configure one or the other")
	}
	every := inc.EveryReads
	if every <= 0 {
		every = 5000
	}
	ic, err := snp.NewIncrementalCaller(p.ref, p.acc, inc.RegionSize, p.opts.Caller)
	if err != nil {
		return MapStats{}, nil, err
	}
	p.eng.SetRegionTracker(ic.Tracker())
	defer p.eng.SetRegionTracker(nil)
	res := &IncrementalResult{}
	reg := p.opts.Engine.Metrics
	start := time.Now()
	pol := &core.CheckpointPolicy{
		EveryReads: every,
		Quiesced: func(consumed int64) error {
			if err := ic.Sweep(); err != nil {
				return err
			}
			calls, st, err := ic.Provisional()
			if err != nil {
				return err
			}
			if len(calls) > 0 && res.FirstCallSeconds == 0 {
				res.FirstCallSeconds = time.Since(start).Seconds()
				res.FirstCallReads = consumed
				if reg != nil {
					reg.Gauge("call.first.seconds").Set(res.FirstCallSeconds)
					reg.Gauge("call.first.reads").Set(float64(consumed))
				}
			}
			if inc.OnProvisional != nil {
				inc.OnProvisional(calls, st, consumed)
			}
			return nil
		},
	}
	st, err := p.eng.MapReadsFromCkpt(src, p.acc, 0, pol)
	if err != nil && !errors.Is(err, ErrStopped) {
		return st, nil, err
	}
	p.noteRun(st)
	calls, cst, ferr := ic.Finalize()
	if ferr != nil {
		return st, nil, ferr
	}
	res.Calls, res.CallStats = calls, cst
	res.Sweeps = ic.Sweeps()
	res.RegionsSwept = ic.RegionsSwept()
	res.RegionsReused = ic.RegionsReused()
	if reg != nil {
		reg.Counter("call.inc.sweeps").Add(res.Sweeps)
		reg.Counter("call.inc.regions.swept").Add(res.RegionsSwept)
		reg.Counter("call.inc.regions.reused").Add(res.RegionsReused)
	}
	return st, res, err
}
