// Process-level kill-and-recover chaos harness for the checkpoint/
// resume subsystem: run the real gnumap-snp binary, SIGKILL it at
// randomized points shortly after checkpoint commits, relaunch with
// -resume, and require the final VCF to be byte-identical to an
// uninterrupted run — in single-process and np=4 read-split cluster
// modes. A separate test exercises the graceful path: SIGTERM drains,
// writes a final checkpoint, exits with code 3, and the resumed run
// completes identically.
package cmd_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// buildChaosTools compiles the binaries with the race detector, so
// every kill-resume cycle also race-checks the quiesce barrier, the
// signal handler, and the cluster checkpoint rounds end-to-end.
func buildChaosTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping binary chaos test")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-race", "-o", dir+string(os.PathSeparator),
		"gnumap/cmd/readsim", "gnumap/cmd/gnumap-snp")
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	return dir
}

// chaosDataset generates the dataset once per test and returns the
// common gnumap-snp arguments for it.
func chaosDataset(t *testing.T, bins string, seed int) (dir string, common []string) {
	t.Helper()
	dir = t.TempDir()
	run(t, filepath.Join(bins, "readsim"),
		"-out", dir, "-length", "60000", "-snps", "6", "-coverage", "10",
		"-seed", fmt.Sprint(seed))
	common = []string{
		"-ref", filepath.Join(dir, "reference.fa"),
		"-reads", filepath.Join(dir, "reads.fq"),
		"-workers", "2",
	}
	return dir, common
}

// ckptSig fingerprints the checkpoint file's current committed version
// ("" when absent). WriteFile renames a fresh temp file over the path,
// so any new commit changes the signature.
func ckptSig(path string) string {
	fi, err := os.Stat(path)
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%d/%d", fi.Size(), fi.ModTime().UnixNano())
}

// awaitNewCkpt polls until the checkpoint file's signature moves past
// prev, the process exits (the run finished first), or the deadline
// lapses. Returns the wait error and whether the process already exited.
func awaitNewCkpt(t *testing.T, path, prev string, done <-chan error) (exited bool, waitErr error) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		select {
		case err := <-done:
			return true, err
		default:
		}
		if sig := ckptSig(path); sig != "" && sig != prev {
			return false, nil
		}
		if time.Now().After(deadline) {
			t.Fatal("no new checkpoint within 60s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosKillResume is the shared harness: golden uninterrupted run,
// then >= minKills SIGKILL+resume cycles, then a final run to
// completion; the resumed VCF must equal the golden bytes.
func chaosKillResume(t *testing.T, extra ...string) {
	bins := buildChaosTools(t)
	data, common := chaosDataset(t, bins, 11)
	bin := filepath.Join(bins, "gnumap-snp")

	golden := filepath.Join(data, "golden.vcf")
	run(t, bin, append(append([]string{}, common...), append(extra, "-o", golden)...)...)
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(data, "run.ckpt")
	out := filepath.Join(data, "resumed.vcf")
	args := append(append([]string{}, common...), extra...)
	args = append(args, "-o", out, "-checkpoint", ck, "-resume", "-checkpoint-every", "400")

	const minKills = 3
	rng := rand.New(rand.NewSource(29))
	kills := 0
	for attempt := 0; ; attempt++ {
		if attempt > minKills+5 {
			t.Fatalf("no clean completion after %d attempts (%d kills)", attempt, kills)
		}
		var buf bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = &buf, &buf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		if kills < minKills {
			exited, werr := awaitNewCkpt(t, ck, ckptSig(ck), done)
			if exited {
				if werr != nil {
					t.Fatalf("run died on its own: %v\n%s", werr, buf.String())
				}
				t.Fatalf("run finished before %d kills; shrink -checkpoint-every", minKills)
			}
			// Randomize the crash point within the post-commit window so
			// different cycles die in different pipeline states.
			time.Sleep(time.Duration(rng.Intn(25)) * time.Millisecond)
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			<-done // reap; "signal: killed" is the expected outcome
			kills++
			continue
		}
		if err := <-done; err != nil {
			t.Fatalf("final resumed run failed: %v\n%s", err, buf.String())
		}
		break
	}
	if kills < minKills {
		t.Fatalf("only %d kill cycles ran", kills)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed VCF differs from uninterrupted run after %d kills:\n--- golden ---\n%s\n--- resumed ---\n%s",
			kills, want, got)
	}
}

func TestChaosKillResumeSingleProcess(t *testing.T) {
	chaosKillResume(t)
}

func TestChaosKillResumeClusterReadSplit(t *testing.T) {
	chaosKillResume(t, "-nodes", "4", "-split", "read")
}

// TestGracefulStopResume: SIGTERM mid-run drains the pipeline, writes a
// final checkpoint, and exits with the distinct resumable status code;
// a relaunch completes with the uninterrupted run's exact VCF.
func TestGracefulStopResume(t *testing.T) {
	bins := buildChaosTools(t)
	data, common := chaosDataset(t, bins, 13)
	bin := filepath.Join(bins, "gnumap-snp")

	golden := filepath.Join(data, "golden.vcf")
	run(t, bin, append(append([]string{}, common...), "-o", golden)...)
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(data, "run.ckpt")
	out := filepath.Join(data, "resumed.vcf")
	args := append(append([]string{}, common...),
		"-o", out, "-checkpoint", ck, "-resume", "-checkpoint-every", "400")

	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	exited, werr := awaitNewCkpt(t, ck, "", done)
	if exited {
		t.Fatalf("run ended before the first checkpoint: %v\n%s", werr, buf.String())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	werr = <-done
	var exitErr *exec.ExitError
	if !errors.As(werr, &exitErr) || exitErr.ExitCode() != 3 {
		t.Fatalf("SIGTERM exit = %v, want exit code 3\n%s", werr, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("relaunch with -resume")) {
		t.Errorf("graceful stop message missing:\n%s", buf.String())
	}
	sigAfterStop := ckptSig(ck)
	if sigAfterStop == "" {
		t.Fatal("no checkpoint on disk after graceful stop")
	}

	out2 := run(t, bin, args...)
	if !bytes.Contains([]byte(out2), []byte("resuming from")) {
		t.Errorf("resume message missing:\n%s", out2)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("VCF after graceful stop + resume differs:\n--- golden ---\n%s\n--- resumed ---\n%s", want, got)
	}
}
