// Command gnumap-snp maps FASTQ reads to a FASTA reference with the
// probabilistic Pair-HMM engine and calls SNPs with the likelihood
// ratio test, writing VCF to stdout or a file.
//
// Usage:
//
//	gnumap-snp -ref reference.fa -reads reads.fq -o calls.vcf \
//	    [-diploid] [-alpha 0.05] [-fdr] [-memory norm|chardisc|centdisc] \
//	    [-workers N] [-accum-mode auto|striped|sharded] [-call-workers N] \
//	    [-stream=false] [-batch 64] [-queue 4] \
//	    [-incremental-every 5000] \
//	    [-nodes N -split read|genome [-tcp]] \
//	    [-op-timeout 5s] [-heartbeat 100ms] [-chaos seed=42,drop=0.01] \
//	    [-metrics-out metrics.json] [-pprof localhost:6060] \
//	    [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -nodes > 1 the run executes on a simulated message-passing
// cluster (goroutine nodes; -tcp switches to loopback TCP), using the
// paper's read-split or genome-split strategy. -op-timeout bounds every
// cluster operation (and, in read-split mode, enables shard
// reassignment when a worker dies); -heartbeat tunes failure detection;
// -chaos injects deterministic faults for resilience testing.
//
// Observability: -metrics-out writes the run's merged metrics report
// (per-rank stage timers, counters, and communication gauges) as JSON
// and prints a human summary to stderr; -pprof serves net/http/pprof
// on the given address for live inspection; -cpuprofile/-memprofile
// write standard runtime profiles for `go tool pprof`.
//
// Crash safety: -checkpoint FILE makes the streaming run write its full
// state (config fingerprint, source watermark, mapping counters,
// accumulator) atomically to FILE every -checkpoint-every reads (an
// integer) or wall time (a duration like 30s). -resume loads FILE if it
// exists, skips the already-mapped prefix of the FASTQ, and continues —
// so a supervisor can relaunch the same command line after a crash or a
// kill and the final VCF matches an uninterrupted run. SIGINT/SIGTERM
// trigger a graceful stop: drain the pipeline, write a final
// checkpoint, flush -metrics-out, exit with code 3 (a second signal
// aborts immediately). Checkpointing needs a replayable stream: it is
// incompatible with -fit/-sam/-stream=false, and on clusters with
// -split genome, -op-timeout, and -chaos.
//
// Incremental calling: -incremental-every N overlaps SNP calling with
// mapping on the single-process streaming path — every N reads the
// pipeline quiesces, only the genome regions written since the last
// barrier are re-swept, and a provisional call set is produced; the
// final VCF comes from the last incremental sweep and matches the
// post-map sweep of an ordinary run. The first-provisional-call time is
// reported on stderr. Incompatible with -checkpoint (both own the
// quiesce cadence) and with clusters.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"gnumap"
)

// stopExitCode distinguishes "stopped gracefully, state checkpointed"
// from success (0) and failure (1): the job is incomplete but cleanly
// resumable with -resume.
const stopExitCode = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("gnumap-snp: ")
	if err := run(); err != nil {
		if errors.Is(err, gnumap.ErrStopped) {
			log.Print(err)
			os.Exit(stopExitCode)
		}
		log.Fatal(err)
	}
}

func run() error {
	var (
		refPath    = flag.String("ref", "", "reference FASTA (required)")
		readsPath  = flag.String("reads", "", "reads FASTQ (required)")
		outPath    = flag.String("o", "", "output VCF (default stdout)")
		phred64    = flag.Bool("phred64", false, "reads use Phred+64 qualities")
		diploid    = flag.Bool("diploid", false, "use the diploid LRT (heterozygous calls)")
		alpha      = flag.Float64("alpha", 0.05, "family-wise significance level")
		fdr        = flag.Bool("fdr", false, "Benjamini-Hochberg FDR control instead of the fixed cutoff")
		memory     = flag.String("memory", "norm", "accumulator layout: norm, chardisc, centdisc")
		seedLen    = flag.Int("seed-len", 0, "seed length k (0 = default 10; >14 selects the frequency-capped large-seed index)")
		indexPath  = flag.String("index", "", "mmap a persisted seed index built by -index-write; validated against the reference, and sets the seed length from the file when -seed-len is unset")
		indexWrite = flag.String("index-write", "", "build the large-seed index (requires -seed-len > 14), persist it to this file, and continue mapping")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "shared-memory worker count")
		accumMode  = flag.String("accum-mode", "auto", "accumulator write strategy: auto, striped (lock stripes on one shared copy), or sharded (lock-free per-worker shards, merged before calling)")
		callWk     = flag.Int("call-workers", 0, "calling-sweep worker count (0 = GOMAXPROCS, 1 = serial; results are bit-identical regardless)")
		callVec    = flag.Bool("call-vector", true, "vectorized plane-streaming calling sweep (norm layout only; calls are bit-identical to the scalar sweep either way)")
		stream     = flag.Bool("stream", true, "stream reads through the bounded pipeline instead of materializing the FASTQ (auto-off with -fit or -sam, which need the full read slice)")
		batch      = flag.Int("batch", 0, "reads per streaming batch (0 = default 64)")
		queue      = flag.Int("queue", 0, "streaming work-queue bound, in batches (0 = default 4)")
		band       = flag.Int("band", 0, "PHMM band width in DP cells around the seed diagonal (0 = auto 2*pad+2, negative = exact full kernel)")
		phmmBatch  = flag.Int("phmm-batch", gnumap.DefaultPhmmBatch, "batched PHMM kernel width: candidate windows aligned per wavefront sweep (0 = off, scalar kernel; calls are identical either way)")
		fit        = flag.Bool("fit", false, "fit PHMM parameters to the data (Baum-Welch) before mapping")
		samPath    = flag.String("sam", "", "also write best alignments as SAM to this file (single-process mode only)")
		pileupOut  = flag.String("pileup", "", "also write the probability pileup as TSV to this file (single-process mode only)")
		nodes      = flag.Int("nodes", 1, "simulated cluster size (1 = single process)")
		split      = flag.String("split", "read", "cluster strategy: read (replicate genome) or genome (partition genome)")
		tcp        = flag.Bool("tcp", false, "use loopback TCP between simulated nodes")
		opTimeout  = flag.Duration("op-timeout", 0, "cluster per-operation deadline; >0 also enables read-split shard reassignment on worker death (0 = block forever)")
		heartbeat  = flag.Duration("heartbeat", 0, "cluster heartbeat period for failure detection (0 = auto when -op-timeout is set)")
		chaos      = flag.String("chaos", "", "deterministic fault injection spec, e.g. seed=42,drop=0.02,dup=0.01,crash=2@100")
		ckptPath   = flag.String("checkpoint", "", "write crash-safe checkpoints to this file (streaming runs only); SIGINT/SIGTERM drain, checkpoint, and exit with code 3")
		ckptEvery  = flag.String("checkpoint-every", "5000", "checkpoint interval: an integer (reads) or a duration (e.g. 30s)")
		resume     = flag.Bool("resume", false, "resume from -checkpoint if the file exists (fresh start otherwise)")
		incEvery   = flag.Int64("incremental-every", 0, "overlap SNP calling with mapping: quiesce and re-sweep written genome regions every N reads, reporting time to first provisional call (0 = off; single-process streaming only, incompatible with -checkpoint)")
		metricsOut = flag.String("metrics-out", "", "write the merged metrics report as JSON to this file (and a summary to stderr)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the /debug/pprof handlers via the
			// net/http/pprof import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeTo(*memProfile, func(f *os.File) error {
				runtime.GC() // flush dead allocations so the profile shows live heap
				return pprof.WriteHeapProfile(f)
			}); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}
	mem, err := parseMemory(*memory)
	if err != nil {
		return err
	}
	enc := gnumap.Sanger
	if *phred64 {
		enc = gnumap.Illumina13
	}
	reference, err := gnumap.LoadReference(*refPath)
	if err != nil {
		return err
	}
	// Fitting and SAM output need random access to the whole read set,
	// so they force the materialized path.
	streaming := *stream && !*fit && *samPath == ""

	// Checkpoint setup: watermarks name positions in the read stream, so
	// every mode without a replayable stream is rejected up front.
	var ckptCfg *gnumap.CheckpointConfig
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *ckptPath != "" {
		if !streaming {
			return fmt.Errorf("-checkpoint requires the streaming path: drop -fit/-sam and keep -stream=true")
		}
		if *nodes > 1 && (*split != "read" || *opTimeout > 0 || *chaos != "") {
			return fmt.Errorf("-checkpoint on a cluster supports only -split read without -op-timeout/-chaos")
		}
		everyReads, every, err := parseCheckpointEvery(*ckptEvery)
		if err != nil {
			return err
		}
		var stop atomic.Bool
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			log.Print("signal received: draining and writing a final checkpoint (send again to abort immediately)")
			stop.Store(true)
			<-sig
			os.Exit(130)
		}()
		ckptCfg = &gnumap.CheckpointConfig{
			Path:          *ckptPath,
			EveryReads:    everyReads,
			Every:         every,
			Resume:        *resume,
			StopRequested: stop.Load,
		}
	}
	if *incEvery != 0 {
		if *incEvery < 0 {
			return fmt.Errorf("-incremental-every %d: read interval must be positive", *incEvery)
		}
		if !streaming {
			return fmt.Errorf("-incremental-every requires the streaming path: drop -fit/-sam and keep -stream=true")
		}
		if *nodes > 1 {
			return fmt.Errorf("-incremental-every runs single-process only (the cluster paths keep their own call flow)")
		}
		if *ckptPath != "" {
			return fmt.Errorf("-incremental-every is incompatible with -checkpoint: both schedule the pipeline's quiesce barriers")
		}
	}
	var reads []*gnumap.Read
	if !streaming {
		reads, err = gnumap.LoadReads(*readsPath, enc)
		if err != nil {
			return err
		}
	}
	opts := gnumap.Options{Memory: mem}
	opts.Engine.K = *seedLen
	switch {
	case *indexPath != "" && *indexWrite != "":
		return fmt.Errorf("-index and -index-write are mutually exclusive")
	case *indexPath != "":
		ix, err := gnumap.OpenSeedIndex(*indexPath, reference)
		if err != nil {
			return fmt.Errorf("open seed index: %w", err)
		}
		defer ix.Close()
		if *seedLen != 0 && *seedLen != ix.K() {
			return fmt.Errorf("-seed-len %d conflicts with %s (built for k=%d)", *seedLen, *indexPath, ix.K())
		}
		opts.Engine.K = ix.K()
		opts.Engine.SeedIndex = ix
		fmt.Fprintf(os.Stderr, "seed index: %s mapped (k=%d, %s)\n",
			*indexPath, ix.K(), humanBytes(ix.MemoryBytes()))
	case *indexWrite != "":
		if *seedLen <= 14 {
			return fmt.Errorf("-index-write persists the large-seed index: set -seed-len above 14 (got %d)", *seedLen)
		}
		built, err := gnumap.BuildSeedIndex(reference, *seedLen)
		if err != nil {
			return err
		}
		lix, ok := built.(*gnumap.LargeSeedIndex)
		if !ok {
			return fmt.Errorf("seed-len %d did not build a persistable index", *seedLen)
		}
		n, err := gnumap.SaveSeedIndex(*indexWrite, lix, reference)
		if err != nil {
			return fmt.Errorf("write seed index: %w", err)
		}
		opts.Engine.SeedIndex = lix
		fmt.Fprintf(os.Stderr, "seed index: wrote %s (k=%d, %s)\n", *indexWrite, *seedLen, humanBytes(n))
	}
	opts.Engine.Workers = *workers
	opts.Engine.Band = *band
	// Config semantics: 0 means "default width", so the flag's 0=off
	// convention maps to the explicit disable value.
	if *phmmBatch <= 0 {
		opts.Engine.PhmmBatch = -1
	} else {
		opts.Engine.PhmmBatch = *phmmBatch
	}
	opts.Engine.Batch = *batch
	opts.Engine.Queue = *queue
	accum, err := gnumap.ParseAccumStrategy(*accumMode)
	if err != nil {
		return err
	}
	opts.Engine.Accum = accum
	opts.Caller.CallWorkers = *callWk
	if !*callVec {
		opts.Caller.CallVector = -1
	}
	if *fit {
		sample := reads
		if len(sample) > 2000 {
			sample = sample[:2000]
		}
		params, err := gnumap.FitPHMM(reference, sample, 500)
		if err != nil {
			return err
		}
		opts.Engine.PHMM = params
		fmt.Fprintf(os.Stderr, "fitted PHMM: TMM=%.4f TMG=%.5f\n", params.TMM, params.TMG)
	}
	opts.Caller.Alpha = *alpha
	opts.Caller.UseFDR = *fdr
	if *diploid {
		opts.Caller.Ploidy = gnumap.Diploid
	}

	start := time.Now()
	var calls []gnumap.SNPCall
	var stats gnumap.MapStats
	var qcStats *gnumap.CoverageStats
	var report *gnumap.MetricsReport
	if *nodes > 1 {
		splitMode := gnumap.ReadSplit
		if *split == "genome" {
			splitMode = gnumap.GenomeSplit
		} else if *split != "read" {
			return fmt.Errorf("unknown -split %q (want read or genome)", *split)
		}
		transport := gnumap.Channels
		if *tcp {
			transport = gnumap.TCP
		}
		opts.Cluster.OpTimeout = *opTimeout
		opts.Cluster.Heartbeat = *heartbeat
		if *opTimeout > 0 && *heartbeat == 0 {
			// Failure detection needs heartbeats; derive a period well
			// inside the deadline so slow ranks are not declared dead.
			opts.Cluster.Heartbeat = *opTimeout / 10
		}
		if *chaos != "" {
			fc, err := gnumap.ParseChaosSpec(*chaos)
			if err != nil {
				return err
			}
			opts.Cluster.Fault = &fc
		}
		if streaming {
			src, err := gnumap.OpenReads(*readsPath, enc)
			if err != nil {
				return err
			}
			opts.Checkpoint = ckptCfg
			if *metricsOut != "" {
				calls, stats, report, err = gnumap.RunClusterStreamReport(*nodes, transport, splitMode, reference, src, opts)
			} else {
				calls, stats, err = gnumap.RunClusterStream(*nodes, transport, splitMode, reference, src, opts)
			}
			if cerr := src.Close(); err == nil {
				err = cerr
			}
			if errors.Is(err, gnumap.ErrStopped) {
				return fmt.Errorf("%w to %s; relaunch with -resume to continue", err, *ckptPath)
			}
			if err != nil {
				return err
			}
		} else if *metricsOut != "" {
			calls, stats, report, err = gnumap.RunClusterReport(*nodes, transport, splitMode, reference, reads, opts)
		} else {
			calls, stats, err = gnumap.RunCluster(*nodes, transport, splitMode, reference, reads, opts)
		}
		if err != nil {
			return err
		}
		if stats.Degraded() {
			fmt.Fprintf(os.Stderr, "WARNING: degraded run — lost rank(s) %v; their read shards were reassigned to survivors\n", stats.LostRanks)
		}
	} else {
		var reg *gnumap.MetricsRegistry
		if *metricsOut != "" {
			reg = gnumap.NewMetricsRegistry()
			opts.Metrics = reg
		}
		p, err := gnumap.NewPipeline(reference, opts)
		if err != nil {
			return err
		}
		var incRes *gnumap.IncrementalResult
		if streaming {
			src, err := gnumap.OpenReads(*readsPath, enc)
			if err != nil {
				return err
			}
			switch {
			case ckptCfg != nil:
				stats, err = runCheckpointed(p, src, ckptCfg)
			case *incEvery > 0:
				stats, incRes, err = p.MapReadsFromIncremental(src, gnumap.IncrementalCallConfig{EveryReads: *incEvery})
			default:
				stats, err = p.MapReadsFrom(src)
			}
			if cerr := src.Close(); err == nil {
				err = cerr
			}
			if errors.Is(err, gnumap.ErrStopped) {
				// Flush what the interrupted run did record before exiting
				// with the resumable status.
				if reg != nil {
					if rep, rerr := gnumap.NewMetricsReport([]gnumap.MetricsSnapshot{
						reg.Snapshot(0),
						gnumap.ProcessMetrics().Snapshot(gnumap.MetricsProcessRank),
					}, nil); rerr == nil {
						if werr := writeTo(*metricsOut, func(f *os.File) error { return rep.WriteJSON(f) }); werr != nil {
							log.Printf("metrics-out: %v", werr)
						}
					}
				}
				return fmt.Errorf("%w to %s; relaunch with -resume to continue", err, ckptCfg.Path)
			}
			if err != nil {
				return err
			}
		} else {
			stats, err = p.MapReads(reads)
			if err != nil {
				return err
			}
		}
		if incRes != nil {
			// The incremental run's final sweep already produced the
			// definitive call set; a second full sweep would be waste.
			calls = incRes.Calls
			if incRes.FirstCallSeconds > 0 {
				fmt.Fprintf(os.Stderr, "incremental: first provisional call after %.2fs (%d reads); %d sweeps, %d regions swept, %d reused\n",
					incRes.FirstCallSeconds, incRes.FirstCallReads, incRes.Sweeps, incRes.RegionsSwept, incRes.RegionsReused)
			}
		} else {
			calls, _, err = p.Call()
			if err != nil {
				return err
			}
		}
		cs := p.CoverageStats()
		qcStats = &cs
		if *samPath != "" {
			if err := writeTo(*samPath, func(f *os.File) error {
				return p.WriteSAM(f, reads)
			}); err != nil {
				return err
			}
		}
		if *pileupOut != "" {
			if err := writeTo(*pileupOut, func(f *os.File) error {
				return p.WritePileup(f, 2)
			}); err != nil {
				return err
			}
		}
		if reg != nil {
			report, err = gnumap.NewMetricsReport([]gnumap.MetricsSnapshot{
				reg.Snapshot(0),
				gnumap.ProcessMetrics().Snapshot(gnumap.MetricsProcessRank),
			}, nil)
			if err != nil {
				return err
			}
		}
	}
	elapsed := time.Since(start)

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := writeVCF(out, reference, calls); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mapped %d/%d reads (%d locations) in %s; %d SNPs\n",
		stats.Mapped, stats.Mapped+stats.Unmapped, stats.Locations, elapsed.Round(time.Millisecond), len(calls))
	if qcStats != nil {
		qcStats.WriteText(os.Stderr)
	}
	if report != nil {
		if err := writeTo(*metricsOut, func(f *os.File) error { return report.WriteJSON(f) }); err != nil {
			return err
		}
		if err := report.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

// runCheckpointed is the single-process checkpointed mapping leg:
// resume if asked (a missing checkpoint is a fresh start), skip the
// watermark prefix, stream the rest with periodic checkpoints. The
// returned stats are cumulative across the whole job, so the summary
// line stays honest after a resume.
func runCheckpointed(p *gnumap.Pipeline, src gnumap.ReadSource, cc *gnumap.CheckpointConfig) (gnumap.MapStats, error) {
	if cc.Resume {
		skip, err := p.ResumeCheckpoint(cc.Path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// No checkpoint yet: first run of a resumable job.
		case err != nil:
			return gnumap.MapStats{}, err
		default:
			fmt.Fprintf(os.Stderr, "resuming from %s: %d reads already mapped\n", cc.Path, skip)
			if err := p.SkipReads(src, skip); err != nil {
				return gnumap.MapStats{}, err
			}
		}
	}
	_, err := p.MapReadsFromCheckpointed(src, *cc)
	return p.CumulativeStats(), err
}

// parseCheckpointEvery reads the -checkpoint-every value: a bare
// integer is a read-count interval, anything else must parse as a
// duration.
func parseCheckpointEvery(s string) (int64, time.Duration, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n <= 0 {
			return 0, 0, fmt.Errorf("-checkpoint-every %q: read interval must be positive", s)
		}
		return n, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("-checkpoint-every %q: want a positive read count or duration", s)
	}
	return 0, d, nil
}

// writeTo creates a file and hands it to fn.
// humanBytes renders a byte count for status lines.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeVCF writes calls using the library's VCF writer.
func writeVCF(out *os.File, reference []*gnumap.Contig, calls []gnumap.SNPCall) error {
	p, err := gnumap.NewPipeline(reference, gnumap.Options{})
	if err != nil {
		return err
	}
	return p.WriteVCF(out, calls)
}

// parseMemory maps a flag value to a MemoryMode.
func parseMemory(s string) (gnumap.MemoryMode, error) {
	switch s {
	case "norm":
		return gnumap.MemNorm, nil
	case "chardisc":
		return gnumap.MemCharDisc, nil
	case "centdisc":
		return gnumap.MemCentDisc, nil
	default:
		return 0, fmt.Errorf("unknown -memory %q (want norm, chardisc, or centdisc)", s)
	}
}
