// Package cmd_test builds the shipping binaries and runs them
// end-to-end: readsim generates a dataset, gnumap-snp maps and calls
// it (single-process and simulated-cluster), and the outputs are
// checked against the truth table readsim wrote.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// buildTools compiles the binaries once into a temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping binary integration test")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"gnumap/cmd/readsim", "gnumap/cmd/gnumap-snp")
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipelineEndToEnd(t *testing.T) {
	bins := buildTools(t)
	data := t.TempDir()

	// 1. Generate a small dataset.
	out := run(t, filepath.Join(bins, "readsim"),
		"-out", data, "-length", "60000", "-snps", "6", "-coverage", "10", "-seed", "3")
	if !strings.Contains(out, "truth:") {
		t.Fatalf("readsim output unexpected:\n%s", out)
	}
	truth := parseTruth(t, filepath.Join(data, "truth.tsv"))
	if len(truth) != 6 {
		t.Fatalf("truth has %d SNPs", len(truth))
	}

	// 2. Map and call, single process, with SAM and pileup side outputs.
	vcfPath := filepath.Join(data, "calls.vcf")
	samPath := filepath.Join(data, "out.sam")
	puPath := filepath.Join(data, "pileup.tsv")
	run(t, filepath.Join(bins, "gnumap-snp"),
		"-ref", filepath.Join(data, "reference.fa"),
		"-reads", filepath.Join(data, "reads.fq"),
		"-o", vcfPath, "-sam", samPath, "-pileup", puPath, "-workers", "2")

	calls := parseVCFPositions(t, vcfPath)
	tp := 0
	for pos := range truth {
		if calls[pos] {
			tp++
		}
	}
	if tp < 5 {
		t.Errorf("CLI recovered %d/6 SNPs; calls=%v truth=%v", tp, calls, truth)
	}
	if fi, err := os.Stat(samPath); err != nil || fi.Size() == 0 {
		t.Errorf("SAM output missing: %v", err)
	}
	if fi, err := os.Stat(puPath); err != nil || fi.Size() == 0 {
		t.Errorf("pileup output missing: %v", err)
	}

	// 3. Same run on a 3-node simulated cluster, genome-split: the VCF
	// must contain the same positions.
	vcf2 := filepath.Join(data, "calls_cluster.vcf")
	run(t, filepath.Join(bins, "gnumap-snp"),
		"-ref", filepath.Join(data, "reference.fa"),
		"-reads", filepath.Join(data, "reads.fq"),
		"-o", vcf2, "-nodes", "3", "-split", "genome")
	calls2 := parseVCFPositions(t, vcf2)
	if len(calls2) != len(calls) {
		t.Errorf("cluster run called %d positions, single-process %d", len(calls2), len(calls))
	}
	for pos := range calls {
		if !calls2[pos] {
			t.Errorf("cluster run missing call at %d", pos)
		}
	}
}

// parseTruth reads readsim's truth TSV into a set of 0-based positions.
func parseTruth(t *testing.T, path string) map[int]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		pos, err := strconv.Atoi(f[0])
		if err != nil {
			t.Fatalf("bad truth line %q: %v", line, err)
		}
		out[pos] = true
	}
	return out
}

// parseVCFPositions reads 0-based positions out of a VCF.
func parseVCFPositions(t *testing.T, path string) map[int]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		pos, err := strconv.Atoi(f[1])
		if err != nil {
			t.Fatalf("bad VCF line %q: %v", line, err)
		}
		out[pos-1] = true // VCF is 1-based
	}
	return out
}
