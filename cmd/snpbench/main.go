// Command snpbench regenerates the paper's evaluation tables and
// figures (§VII) on simulated data and prints them in the paper's
// format. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured comparisons.
//
// Usage:
//
//	snpbench -exp all                        # everything, default sizes
//	snpbench -exp table1 -length 1000000     # Table I at 1 Mbp
//	snpbench -exp fig4 -maxnodes 8 -tcp      # Figure 4 over loopback TCP
//	snpbench -exp ablations                  # design-choice ablations
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gnumap/internal/cluster"
	"gnumap/internal/core"
	"gnumap/internal/experiments"
	"gnumap/internal/genome"
	"gnumap/internal/obs"
	"gnumap/internal/snp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snpbench: ")
	var (
		exp        = flag.String("exp", "all", "experiment: table1, table2, table3, fig4, fig5, ablations, sweep, phmm, stream, call, metrics, index, all")
		benchOut   = flag.String("benchout", "BENCH_phmm.json", "output path for the phmm kernel benchmark JSON")
		streamOut  = flag.String("streamout", "BENCH_stream.json", "output path for the streaming pipeline benchmark JSON")
		callOut    = flag.String("callout", "BENCH_call.json", "output path for the parallel post-map phase benchmark JSON")
		indexOut   = flag.String("indexout", "BENCH_index.json", "output path for the large-seed index benchmark JSON")
		seedLen    = flag.Int("seed-len", 20, "large seed length for the index experiment")
		selLength  = flag.Int("sel-length", 0, "selectivity genome length for the index experiment (default 12 Mbp)")
		length     = flag.Int("length", 400_000, "simulated genome length")
		snps       = flag.Int("snps", 0, "planted SNP count (default: paper density, length/10500)")
		coverage   = flag.Float64("coverage", 12, "read coverage")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "shared-memory workers (table1/table3/ablations)")
		maxNodes   = flag.Int("maxnodes", 4, "maximum node count (fig4)")
		maxWorkers = flag.Int("maxworkers", runtime.GOMAXPROCS(0), "maximum worker count (fig5)")
		tcp        = flag.Bool("tcp", false, "use loopback TCP between simulated nodes (fig4)")
		metricsOut = flag.String("metrics-out", "metrics.json", "output path for the metrics experiment's JSON report")
		ckptEvery  = flag.Int64("checkpoint-every", 5000, "checkpoint interval in reads for the stream experiment's stream+ckpt row (0 = skip the row)")
		phmmBatch  = flag.Int("phmm-batch", core.DefaultPhmmBatch, "batched PHMM kernel width for the phmm experiment's engine rows (0 = off, scalar kernel only)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	wants := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	all := wants["all"]
	needData := all || wants["table1"] || wants["table3"] || wants["fig4"] || wants["fig5"] || wants["ablations"] || wants["sweep"] || wants["phmm"] || wants["stream"] || wants["call"] || wants["metrics"] || wants["index"]

	var ds *experiments.Dataset
	if needData {
		var err error
		ds, err = experiments.MakeDataset(experiments.DataConfig{
			GenomeLength: *length,
			SNPCount:     *snps,
			Coverage:     *coverage,
			Seed:         *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dataset: %d bp genome, %d planted SNPs, %d reads (%gx)\n\n",
			*length, len(ds.Truth), len(ds.Reads), *coverage)
	}

	ran := false
	if all || wants["table1"] {
		runTable1(ds, *workers)
		ran = true
	}
	if all || wants["table2"] {
		runTable2()
		ran = true
	}
	if all || wants["table3"] {
		runTable3(ds, *workers)
		ran = true
	}
	if all || wants["fig4"] {
		transport := cluster.Channels
		if *tcp {
			transport = cluster.TCP
		}
		runFig4(ds, *maxNodes, transport)
		ran = true
	}
	if all || wants["fig5"] {
		runFig5(ds, *maxWorkers)
		ran = true
	}
	if all || wants["ablations"] {
		runAblations(ds, *workers)
		ran = true
	}
	if all || wants["sweep"] {
		runSweep(ds, *workers)
		ran = true
	}
	if all || wants["phmm"] {
		runPhmmBench(ds, *workers, *phmmBatch, *benchOut)
		ran = true
	}
	if all || wants["stream"] {
		runStream(ds, *workers, *ckptEvery, *streamOut)
		ran = true
	}
	if all || wants["call"] {
		runCall(ds, *workers, *callOut)
		ran = true
	}
	if all || wants["metrics"] {
		runMetrics(ds, *metricsOut)
		ran = true
	}
	if all || wants["index"] {
		runIndex(ds, *workers, *seedLen, *selLength, *indexOut)
		ran = true
	}
	if !ran {
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func runTable1(ds *experiments.Dataset, workers int) {
	fmt.Println("TABLE I — Experimental results for simulated data")
	rows, err := experiments.Table1(ds, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %10s %7s %7s %7s %10s\n", "Program", "Time", "TP", "FP", "FN", "Precision")
	for _, r := range rows {
		fmt.Printf("%-12s %10s %7d %7d %7d %9.1f%%\n",
			r.Program, r.Wall.Round(msRound(r.Wall)), r.TP, r.FP, r.FN, 100*r.Precision)
	}
	fmt.Println()
}

func runTable2() {
	fmt.Println("TABLE II — Memory usage for optimizations (accumulator state)")
	rows, err := experiments.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %12s %12s\n", "optimization", "bytes/base", "chrX(155Mb)", "human(3.1Gb)")
	for _, r := range rows {
		fmt.Printf("%-12s %12.1f %12s %12s\n",
			r.Mode, r.BytesPerBase, human(r.ChrXBytes), human(r.HumanBytes))
	}
	fmt.Println()
}

func runTable3(ds *experiments.Dataset, workers int) {
	fmt.Println("TABLE III — Memory, wall clock, and accuracy per optimization")
	rows, err := experiments.Table3(ds, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %10s %7s %7s %10s\n", "Optimization", "MEM", "WT", "TP", "FP", "Precision")
	for _, r := range rows {
		fmt.Printf("%-12s %12s %10s %7d %7d %9.1f%%\n",
			r.Mode, human(r.MemBytes), r.Wall.Round(msRound(r.Wall)), r.TP, r.FP, 100*r.Precision)
	}
	fmt.Println()
}

func runFig4(ds *experiments.Dataset, maxNodes int, transport cluster.TransportKind) {
	fmt.Printf("FIGURE 4 — Sequence processing rate per MPI mode (%s transport)\n", transport)
	points, err := experiments.Fig4(ds, maxNodes, transport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-14s %14s %14s %10s\n", "nodes", "mode", "measured r/s", "modeled r/s", "speedup")
	base := map[string]float64{}
	for _, p := range points {
		if p.Nodes == 1 {
			base[p.Mode] = p.ModeledRate
		}
		fmt.Printf("%-6d %-14s %14.0f %14.0f %9.2fx\n",
			p.Nodes, p.Mode, p.MeasuredRate, p.ModeledRate, p.ModeledRate/base[p.Mode])
	}
	fmt.Println("(speedup column: modeled critical-path rate vs 1 node; perfect linear = Nx;")
	fmt.Println(" measured rates serialize all node goroutines on a single-CPU host)")
	fmt.Println()
}

func runFig5(ds *experiments.Dataset, maxWorkers int) {
	fmt.Println("FIGURE 5 — Sequences/second per processor count and memory mode")
	points, err := experiments.Fig5(ds, maxWorkers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-10s %14s %14s\n", "workers", "mode", "measured r/s", "modeled r/s")
	for _, p := range points {
		fmt.Printf("%-8d %-10s %14.0f %14.0f\n", p.Workers, p.Mode, p.MeasuredRate, p.ModeledRate)
	}
	fmt.Println("(modeled: single-worker rate × workers — workers share nothing but")
	fmt.Println(" striped accumulator locks; measured rates serialize on a single CPU)")
	fmt.Println()
}

func runAblations(ds *experiments.Dataset, workers int) {
	fmt.Println("ABLATIONS — engine design choices (DESIGN.md §5)")
	rows, err := experiments.Ablations(ds, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-15s %7s %7s %10s %10s\n", "variant", "TP", "FP", "Precision", "Time")
	for _, r := range rows {
		fmt.Printf("%-15s %7d %7d %9.1f%% %10s\n",
			r.Variant, r.TP, r.FP, 100*r.Precision, r.Wall.Round(msRound(r.Wall)))
	}
	fmt.Println()
}

func runSweep(ds *experiments.Dataset, workers int) {
	fmt.Println("SWEEP — significance cutoff vs accuracy (fixed α/5 cutoff and BH FDR)")
	rows, err := experiments.CutoffSweep(ds, workers, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-8s %7s %7s %11s %12s\n", "alpha", "control", "TP", "FP", "precision", "sensitivity")
	for _, r := range rows {
		control := "fixed"
		if r.FDR {
			control = "BH-FDR"
		}
		fmt.Printf("%-8g %-8s %7d %7d %10.1f%% %11.1f%%\n",
			r.Alpha, control, r.TP, r.FP, 100*r.Precision, 100*r.Sensitivity)
	}
	fmt.Println()
}

// runPhmmBench measures the PHMM kernel variants — scalar and batched,
// the batched rows verified bit-exact against scalar before timing —
// plus end-to-end engine reads/sec, and writes the machine-readable
// BENCH_phmm.json used to track the kernel across PRs.
func runPhmmBench(ds *experiments.Dataset, workers, phmmBatch int, outPath string) {
	fmt.Println("PHMM KERNEL — scalar vs batched wavefront, 62-bp read / 78-bp window")
	rows, err := experiments.PhmmKernelBench()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %6s %6s %8s %12s %10s %10s %7s\n",
		"variant", "band", "batch", "cells", "ns/op", "ns/cell", "Mcells/s", "exact")
	for _, r := range rows {
		exact := "-"
		if r.Exact {
			exact = "yes"
		}
		fmt.Printf("%-20s %6d %6d %8d %12.0f %10.2f %10.1f %7s\n",
			r.Name, r.Band, r.Batch, r.Cells, r.NsPerOp, r.NsPerCell, r.MCellsPerSec, exact)
	}

	var widths []int
	if phmmBatch >= 2 {
		widths = []int{phmmBatch}
	}
	fmt.Printf("\nPHMM ENGINE — end-to-end mapping, %d reads, workers=%d\n", len(ds.Reads), workers)
	engineRows, err := experiments.PhmmEngineBench(ds, workers, widths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %8s %8s %10s %12s\n", "config", "mapped", "locs", "wall", "reads/sec")
	for _, r := range engineRows {
		wall := time.Duration(r.WallNs)
		fmt.Printf("%-16s %8d %8d %10s %12.0f\n",
			r.Name, r.Mapped, r.Locations, wall.Round(msRound(wall)), r.ReadsPerSec)
	}

	report := struct {
		Generated  string                           `json:"generated"`
		GoOS       string                           `json:"goos"`
		GoArch     string                           `json:"goarch"`
		Input      string                           `json:"input"`
		Rows       []experiments.PhmmBenchRow       `json:"rows"`
		EngineRows []experiments.PhmmEngineBenchRow `json:"engine_rows"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Input:      fmt.Sprintf("62bp read vs 78bp window, diag 8; engine: %d reads, workers=%d", len(ds.Reads), workers),
		Rows:       rows,
		EngineRows: engineRows,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n\n", outPath)
}

// runIndex compares the k=10 direct table against the SNAP-style
// large-seed index (candidate selectivity, throughput, accuracy) plus
// the mmap persistence leg, writing BENCH_index.json for the CI gate.
func runIndex(ds *experiments.Dataset, workers, seedLen, selLength int, outPath string) {
	fmt.Printf("INDEX — k=10 direct table vs s=%d large-seed index\n", seedLen)
	rep, err := experiments.IndexBench(ds, experiments.IndexBenchConfig{
		Workers: workers, LargeSeedLen: seedLen, SelGenomeLen: selLength,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %5s %8s %10s %10s %9s %9s %12s %7s %7s %10s %10s\n",
		"dataset", "k", "reads", "hits/rd", "cand/rd", "align/rd", "build", "reads/sec", "TP", "FP", "precision", "recall")
	for _, r := range rep.Rows {
		fmt.Printf("%-20s %5d %8d %10.1f %10.2f %9.2f %8.2fs %12.0f %7d %7d %9.1f%% %9.1f%%\n",
			r.Dataset, r.SeedLen, r.Reads, r.SeedHitsPerRead, r.CandidatesPerRead,
			r.AlignmentsPerRead, r.BuildSeconds, r.ReadsPerSec,
			r.TP, r.FP, 100*r.Precision, 100*r.Recall)
	}
	p := rep.Persist
	fmt.Printf("\nPERSIST — s=%d over %d bp: %s file, build %.2fs, write %.3fs, mmap load %.6fs (%.0fx), vcf identical: %v\n",
		p.SeedLen, p.GenomeLen, human(p.FileBytes), p.BuildSeconds, p.WriteSeconds,
		p.LoadSeconds, p.LoadSpeedup, p.VCFIdentical)
	report := struct {
		Generated string                      `json:"generated"`
		GoOS      string                      `json:"goos"`
		GoArch    string                      `json:"goarch"`
		Input     string                      `json:"input"`
		Rows      []experiments.IndexBenchRow `json:"rows"`
		Persist   experiments.IndexPersistRow `json:"persist"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Input:     fmt.Sprintf("accuracy: %d reads on %d bp; workers=%d", len(ds.Reads), ds.Ref.Len(), workers),
		Rows:      rep.Rows,
		Persist:   rep.Persist,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n\n", outPath)
}

// human renders bytes in the paper's "4.76g" style.
func human(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fg", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fm", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fk", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%db", b)
	}
}

// msRound picks a display rounding that keeps 3+ significant digits.
func msRound(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return time.Second
	case d >= time.Second:
		return 10 * time.Millisecond
	default:
		return time.Millisecond
	}
}

// runStream measures the streaming pipeline against the materialized
// slice path on the same on-disk FASTQ — plus a third row with durable
// checkpoints every ckptEvery reads — and writes the machine-readable
// BENCH_stream.json (reads/sec, sampled peak heap as the RSS proxy,
// the pipeline's resident-reads high-water mark, and the checkpoint
// overhead fraction).
func runStream(ds *experiments.Dataset, workers int, ckptEvery int64, outPath string) {
	fmt.Println("STREAM — bounded pipeline vs materialized slice, same FASTQ")
	const (
		batch = 64
		queue = 4
	)
	rows, err := experiments.StreamBench(ds, workers, batch, queue, ckptEvery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %8s %10s %12s %14s %14s %11s %11s\n", "path", "reads", "wall", "reads/sec", "peak heap", "peak resident", "ckpt stall", "first call")
	for _, r := range rows {
		resident := "all"
		if r.PeakResidentReads > 0 {
			resident = fmt.Sprintf("%d reads", r.PeakResidentReads)
		}
		stall := "-"
		if r.CkptWrites > 0 {
			stall = fmt.Sprintf("%.1f%%", 100*r.CkptStallFrac)
		}
		firstCall := "-"
		if r.CallFirstSeconds > 0 {
			firstCall = fmt.Sprintf("%.2fs", r.CallFirstSeconds)
		}
		wall := time.Duration(r.WallNs)
		fmt.Printf("%-12s %8d %10s %12.0f %14s %14s %11s %11s\n",
			r.Path, r.Reads, wall.Round(msRound(wall)), r.ReadsPerSec, human(int64(r.PeakHeapBytes)), resident, stall, firstCall)
	}
	report := struct {
		Generated string                       `json:"generated"`
		GoOS      string                       `json:"goos"`
		GoArch    string                       `json:"goarch"`
		Input     string                       `json:"input"`
		Rows      []experiments.StreamBenchRow `json:"rows"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Input:     fmt.Sprintf("%d reads, workers=%d batch=%d queue=%d", rows[0].Reads, workers, batch, queue),
		Rows:      rows,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n\n", outPath)
}

// runCall measures the parallel post-map phase: the chunked LRT calling
// sweep at 1/2/4/8 workers (asserting the call set never changes) and
// AddRange throughput under striped vs sharded accumulation, writing
// the machine-readable BENCH_call.json. CallBench raises GOMAXPROCS to
// the sweep maximum before timing — inheriting GOMAXPROCS=1 while
// sweeping 1..8 workers was a bug that flattened every measured speedup
// to ~1 — and stamps the effective value on each row. The modeled
// column projects the measured serial fraction onto a host with that
// many cores (Fig4/Fig5 convention); modeled-host caps that projection
// at the CPUs actually present, which is what the measured column
// should track.
func runCall(ds *experiments.Dataset, workers int, outPath string) {
	callRows, screenRows, accumRows, err := experiments.CallBench(ds, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CALL — scalar vs vectorized calling sweep + accumulation strategies (GOMAXPROCS=%d, NumCPU=%d, kernel=%s)\n",
		callRows[0].GoMaxProcs, callRows[0].NumCPU, snp.VectorKernel())
	fmt.Printf("%-7s %-8s %-8s %6s %10s %12s %8s %8s %9s %9s %9s %10s\n",
		"sweep", "kernel", "workers", "procs", "wall", "pos/sec", "calls", "tested", "measured", "modeled", "host", "identical")
	for _, r := range callRows {
		wall := time.Duration(r.WallNs)
		fmt.Printf("%-7s %-8s %-8d %6d %10s %12.0f %8d %8d %8.2fx %8.2fx %8.2fx %10v\n",
			r.Sweep, r.VectorKernel, r.Workers, r.GoMaxProcs, wall.Round(msRound(wall)), r.PosPerSec, r.Calls, r.Tested,
			r.MeasuredSpeedup, r.ModeledSpeedup, r.ModeledSpeedupHost, r.Identical)
	}
	fmt.Printf("%-7s %-8s %10s %12s\n", "sweep", "kernel", "wall", "ns/pos")
	for _, r := range screenRows {
		wall := time.Duration(r.WallNs)
		fmt.Printf("%-7s %-8s %10s %12.2f\n", r.Sweep, r.VectorKernel, wall.Round(msRound(wall)), r.NsPerPos)
	}
	fmt.Printf("%-8s %11s %10s %12s %12s\n", "strategy", "goroutines", "wall", "adds/sec", "merge")
	for _, r := range accumRows {
		wall := time.Duration(r.WallNs)
		fmt.Printf("%-8s %11d %10s %12.0f %12s\n",
			r.Strategy, r.Goroutines, wall.Round(msRound(wall)), r.AddsPerSec,
			time.Duration(r.MergeNs).Round(time.Microsecond))
	}
	report := struct {
		Generated    string                       `json:"generated"`
		GoOS         string                       `json:"goos"`
		GoArch       string                       `json:"goarch"`
		GoMaxProcs   int                          `json:"gomaxprocs"`
		NumCPU       int                          `json:"numcpu"`
		VectorKernel string                       `json:"vector_kernel"`
		Input        string                       `json:"input"`
		CallRows     []experiments.CallBenchRow   `json:"call_rows"`
		ScreenRows   []experiments.ScreenBenchRow `json:"screen_rows"`
		AccumRows    []experiments.AccumBenchRow  `json:"accum_rows"`
	}{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoOS:         runtime.GOOS,
		GoArch:       runtime.GOARCH,
		GoMaxProcs:   callRows[0].GoMaxProcs,
		NumCPU:       callRows[0].NumCPU,
		VectorKernel: snp.VectorKernel(),
		Input:        fmt.Sprintf("%d positions, %d reads, map workers=%d", ds.Ref.Len(), len(ds.Reads), workers),
		CallRows:     callRows,
		ScreenRows:   screenRows,
		AccumRows:    accumRows,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n\n", outPath)
}

// runMetrics is the observability smoke: a 2-node read-split run with
// per-rank registries, gathered and merged at rank 0, written as JSON,
// then read back and schema-checked. Exits non-zero on any failure so
// CI can gate on it.
func runMetrics(ds *experiments.Dataset, outPath string) {
	fmt.Println("METRICS — 2-node read-split with per-rank aggregation")
	var snaps []obs.Snapshot
	err := cluster.RunWithConfig(2, cluster.RunConfig{Kind: cluster.Channels}, func(c *cluster.Comm) error {
		reg := obs.NewRegistry()
		c.SetMetrics(reg)
		if _, _, err := core.RunReadSplit(c, ds.Ref, ds.Reads, genome.Norm, core.Config{Workers: 1, Metrics: reg}); err != nil {
			return err
		}
		c.PublishStats()
		got, _, err := core.GatherMetrics(c, reg.Snapshot(c.Rank()))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			snaps = got
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := obs.NewReport(snaps, nil)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	// Round-trip: what landed on disk must parse and reconcile.
	data, err := os.ReadFile(outPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.ValidateReportJSON(data); err != nil {
		log.Fatalf("metrics report failed validation: %v", err)
	}
	if err := report.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d rank snapshots, schema OK)\n\n", outPath, len(report.Ranks))
}
