// Command readsim generates simulated experiment data: a reference
// FASTA, a mutated individual's reads as FASTQ, and the planted SNP
// truth table (TSV) — the reproduction's stand-in for the paper's
// hg19-chrX + dbSNP + MetaSim inputs.
//
// Usage:
//
//	readsim -out data/ -length 1000000 -snps 95 -coverage 12 -seed 1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gnumap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("readsim: ")
	var (
		out      = flag.String("out", "simdata", "output directory")
		length   = flag.Int("length", 1_000_000, "reference length (bases)")
		snps     = flag.Int("snps", 0, "number of planted SNPs (default: length/10500, the paper's density)")
		het      = flag.Float64("het", 0, "fraction of SNPs heterozygous (diploid individual if > 0)")
		coverage = flag.Float64("coverage", 12, "mean fold coverage")
		readLen  = flag.Int("readlen", 62, "read length")
		gc       = flag.Float64("gc", 0.41, "GC content")
		tandem   = flag.Float64("tandem", 0.02, "tandem-repeat fraction")
		disp     = flag.Float64("dispersed", 0.05, "dispersed-repeat fraction")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *snps == 0 {
		*snps = *length / 10500 // 14,501 SNPs per 153 Mbp, as in the paper
		if *snps < 1 {
			*snps = 1
		}
	}
	ds, err := gnumap.SimulateDataset(gnumap.SimConfig{
		GenomeLength:            *length,
		GC:                      *gc,
		TandemRepeatFraction:    *tandem,
		DispersedRepeatFraction: *disp,
		SNPCount:                *snps,
		HetFraction:             *het,
		ReadLength:              *readLen,
		Coverage:                *coverage,
		Seed:                    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	refPath := filepath.Join(*out, "reference.fa")
	readsPath := filepath.Join(*out, "reads.fq")
	truthPath := filepath.Join(*out, "truth.tsv")
	if err := gnumap.WriteReference(refPath, ds.Reference); err != nil {
		log.Fatal(err)
	}
	if err := gnumap.WriteReads(readsPath, ds.Reads, gnumap.Sanger); err != nil {
		log.Fatal(err)
	}
	if err := writeTruth(truthPath, ds.Truth); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %s (%d bp)\n", refPath, *length)
	fmt.Printf("reads:     %s (%d reads, %.1fx)\n", readsPath, len(ds.Reads), *coverage)
	fmt.Printf("truth:     %s (%d SNPs)\n", truthPath, len(ds.Truth))
	fmt.Println()
	if err := gnumap.SummarizeReads(ds.Reads).WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// writeTruth emits the planted catalog as "pos<TAB>ref<TAB>alt<TAB>het".
func writeTruth(path string, truth []gnumap.TruthSNP) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "#pos\tref\talt\thet")
	for _, s := range truth {
		fmt.Fprintf(w, "%d\t%s\t%s\t%v\n", s.Pos, s.Ref, s.Alt, s.Het)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
