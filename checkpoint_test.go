package gnumap

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// ckptDataset is a dataset sized so interval checkpoints fire several
// times before the stream ends.
func ckptDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := SimulateDataset(SimConfig{GenomeLength: 40_000, SNPCount: 4, Coverage: 10, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func callsEqual(t *testing.T, want, got []SNPCall) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("call count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].GlobalPos != got[i].GlobalPos || want[i].Allele != got[i].Allele || want[i].Het != got[i].Het {
			t.Errorf("call %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestPipelineCheckpointResume is the single-process resume invariant
// at the public API level: interrupt a checkpointed streaming run,
// rebuild the pipeline from the file, skip the watermark, finish — the
// calls and cumulative stats match an uninterrupted run.
func TestPipelineCheckpointResume(t *testing.T) {
	ds := ckptDataset(t)
	opts := Options{Engine: EngineConfig{Workers: 4, Batch: 16, Queue: 2}}

	full, err := NewPipeline(ds.Reference, opts)
	if err != nil {
		t.Fatal(err)
	}
	fullSt, err := full.MapReadsFrom(SliceReadSource(ds.Reads))
	if err != nil {
		t.Fatal(err)
	}
	wantCalls, _, err := full.Call()
	if err != nil {
		t.Fatal(err)
	}

	ckPath := filepath.Join(t.TempDir(), "run.ckpt")
	reg := NewMetricsRegistry()
	opts1 := opts
	opts1.Metrics = reg
	p1, err := NewPipeline(ds.Reference, opts1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p1.MapReadsFromCheckpointed(SliceReadSource(ds.Reads), CheckpointConfig{
		Path:          ckPath,
		EveryReads:    150,
		StopRequested: func() bool { return reg.Counter("ckpt.writes").Value() >= 2 },
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("interrupted run returned %v, want ErrStopped", err)
	}
	if w := reg.Counter("ckpt.writes").Value(); w < 2 {
		t.Fatalf("only %d checkpoint writes before stop", w)
	}
	if b := reg.Counter("ckpt.bytes").Value(); b <= 0 {
		t.Errorf("ckpt.bytes = %d", b)
	}

	// Resume in a fresh pipeline, as a restarted process would.
	reg2 := NewMetricsRegistry()
	opts2 := opts
	opts2.Metrics = reg2
	p2, err := NewPipeline(ds.Reference, opts2)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := p2.ResumeCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if skip <= 0 || skip >= int64(len(ds.Reads)) {
		t.Fatalf("watermark %d of %d reads", skip, len(ds.Reads))
	}
	src := SliceReadSource(ds.Reads)
	if err := p2.SkipReads(src, skip); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("ckpt.resume.reads.skipped").Value(); got != skip {
		t.Errorf("ckpt.resume.reads.skipped = %d, want %d", got, skip)
	}
	if _, err := p2.MapReadsFromCheckpointed(src, CheckpointConfig{Path: ckPath, EveryReads: 150}); err != nil {
		t.Fatal(err)
	}
	cum := p2.CumulativeStats()
	if cum.Mapped != fullSt.Mapped || cum.Unmapped != fullSt.Unmapped {
		t.Errorf("cumulative stats %+v, uninterrupted %+v", cum, fullSt)
	}
	if p2.ReadsConsumed() != int64(len(ds.Reads)) {
		t.Errorf("consumed %d reads, want %d", p2.ReadsConsumed(), len(ds.Reads))
	}
	gotCalls, _, err := p2.Call()
	if err != nil {
		t.Fatal(err)
	}
	callsEqual(t, wantCalls, gotCalls)
}

// TestResumeCheckpointMismatch: a checkpoint never loads into a
// pipeline whose call-affecting configuration differs.
func TestResumeCheckpointMismatch(t *testing.T) {
	ds := ckptDataset(t)
	ckPath := filepath.Join(t.TempDir(), "run.ckpt")
	p1, err := NewPipeline(ds.Reference, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.MapReadsFromCheckpointed(SliceReadSource(ds.Reads[:200]), CheckpointConfig{Path: ckPath, EveryReads: 100}); err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]Options{
		"ploidy": {Caller: CallerConfig{Ploidy: Diploid}},
		"band":   {Engine: EngineConfig{Band: 31}},
		"alpha":  {Caller: CallerConfig{Alpha: 0.01}},
		"memory": {Memory: MemCharDisc},
	} {
		p2, err := NewPipeline(ds.Reference, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p2.ResumeCheckpoint(ckPath); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s change: resume returned %v, want ErrCheckpointMismatch", name, err)
		}
	}
	// Execution knobs must NOT invalidate the checkpoint.
	p3, err := NewPipeline(ds.Reference, Options{Engine: EngineConfig{Workers: 2, Batch: 8, PhmmBatch: -1, Accum: AccumStriped}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.ResumeCheckpoint(ckPath); err != nil {
		t.Errorf("execution-knob change rejected the checkpoint: %v", err)
	}
}

// TestLoadStateTypedErrors: the rerouted SaveState/LoadState format
// rejects legacy raw blobs and truncated checkpoints with typed errors
// instead of feeding unvalidated bytes to the gob decoder.
func TestLoadStateTypedErrors(t *testing.T) {
	ds := ckptDataset(t)
	p, err := NewPipeline(ds.Reference, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadState(bytes.NewReader([]byte("not a checkpoint, just bytes"))); !errors.Is(err, ErrNotCheckpoint) {
		t.Errorf("legacy blob: %v, want ErrNotCheckpoint", err)
	}
	if _, err := p.MapReads(ds.Reads[:100]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if err := p.LoadState(bytes.NewReader(full[:len(full)/2])); !errors.Is(err, ErrCheckpointTruncated) {
		t.Errorf("truncated state: %v, want ErrCheckpointTruncated", err)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x40
	err = p.LoadState(bytes.NewReader(corrupt))
	if !errors.Is(err, ErrCheckpointChecksum) && !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("corrupt state: %v, want checksum or fingerprint error", err)
	}
	if err := p.LoadState(bytes.NewReader(full)); err != nil {
		t.Errorf("intact state rejected: %v", err)
	}
}

// TestRunClusterStreamCheckpointResume: the np=4 read-split streaming
// path writes resumable checkpoints; a stopped run picked up with
// Resume=true finishes with the same calls as an uninterrupted run.
func TestRunClusterStreamCheckpointResume(t *testing.T) {
	ds := ckptDataset(t)
	opts := Options{Engine: EngineConfig{Workers: 2, Batch: 8, Queue: 2}}
	wantCalls, wantSt, err := RunClusterStream(4, Channels, ReadSplit, ds.Reference, SliceReadSource(ds.Reads), opts)
	if err != nil {
		t.Fatal(err)
	}

	ckPath := filepath.Join(t.TempDir(), "cluster.ckpt")
	reg := NewMetricsRegistry()
	opts1 := opts
	opts1.Metrics = reg
	opts1.Checkpoint = &CheckpointConfig{
		Path:          ckPath,
		EveryReads:    150,
		Resume:        true, // no file yet: fresh start
		StopRequested: func() bool { return reg.Counter("ckpt.writes").Value() >= 2 },
	}
	// The registry wiring RunClusterReport would do per rank; for the
	// sink metrics we want them on the engine registry rank 0 sees.
	opts1.Engine.Metrics = reg
	_, _, err = RunClusterStream(4, Channels, ReadSplit, ds.Reference, SliceReadSource(ds.Reads), opts1)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("interrupted cluster run returned %v, want ErrStopped", err)
	}

	opts2 := opts
	opts2.Checkpoint = &CheckpointConfig{Path: ckPath, EveryReads: 150, Resume: true}
	gotCalls, gotSt, err := RunClusterStream(4, Channels, ReadSplit, ds.Reference, SliceReadSource(ds.Reads), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if gotSt.Mapped != wantSt.Mapped || gotSt.Unmapped != wantSt.Unmapped {
		t.Errorf("resumed cluster stats %+v, want %+v", gotSt, wantSt)
	}
	callsEqual(t, wantCalls, gotCalls)
}

// TestRunClusterStreamCheckpointRejects: modes whose watermark story
// does not exist refuse checkpointing loudly.
func TestRunClusterStreamCheckpointRejects(t *testing.T) {
	ds := ckptDataset(t)
	ck := &CheckpointConfig{Path: filepath.Join(t.TempDir(), "x.ckpt"), EveryReads: 100}

	opts := Options{Checkpoint: ck}
	if _, _, err := RunClusterStream(2, Channels, GenomeSplit, ds.Reference, SliceReadSource(ds.Reads[:50]), opts); err == nil {
		t.Error("genome-split checkpointing accepted")
	}
	opts = Options{Checkpoint: ck, Cluster: ClusterConfig{OpTimeout: time.Second}}
	if _, _, err := RunClusterStream(2, Channels, ReadSplit, ds.Reference, SliceReadSource(ds.Reads[:50]), opts); err == nil {
		t.Error("fault-tolerant checkpointing accepted")
	}
}
