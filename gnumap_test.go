package gnumap

import (
	"time"

	"bytes"
	"gnumap/internal/obs"
	"strings"
	"testing"
)

func dataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := SimulateDataset(SimConfig{
		GenomeLength: 40000,
		SNPCount:     4,
		Coverage:     12,
		Seed:         101,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSimulateDatasetValidation(t *testing.T) {
	if _, err := SimulateDataset(SimConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := SimulateDataset(SimConfig{GenomeLength: 1000}); err == nil {
		t.Error("zero SNP count accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	ds := dataset(t)
	p, err := NewPipeline(ds.Reference, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.ReferenceLength() != 40000 {
		t.Errorf("reference length = %d", p.ReferenceLength())
	}
	st, err := p.MapReads(ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mapped == 0 {
		t.Fatal("nothing mapped")
	}
	calls, cs, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Tested == 0 {
		t.Error("no positions tested")
	}
	m := Evaluate(calls, ds.Truth)
	if m.TP < 3 {
		t.Errorf("recovered %d/%d SNPs", m.TP, len(ds.Truth))
	}
	var buf bytes.Buffer
	if err := p.WriteVCF(&buf, calls); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "##fileformat=VCFv4.2") {
		t.Error("VCF output malformed")
	}
	if p.AccumulatorMemoryBytes() <= 0 || p.IndexMemoryBytes() <= 0 {
		t.Error("memory accounting non-positive")
	}
}

func TestPipelineIncrementalMapping(t *testing.T) {
	ds := dataset(t)
	whole, err := NewPipeline(ds.Reference, Options{Engine: EngineConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := whole.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	parts, err := NewPipeline(ds.Reference, Options{Engine: EngineConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	half := len(ds.Reads) / 2
	if _, err := parts.MapReads(ds.Reads[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := parts.MapReads(ds.Reads[half:]); err != nil {
		t.Fatal(err)
	}
	cw, _, err := whole.Call()
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := parts.Call()
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != len(cp) {
		t.Fatalf("incremental mapping changed calls: %d vs %d", len(cp), len(cw))
	}
}

func TestPipelineMemoryModes(t *testing.T) {
	ds := dataset(t)
	var mems []int64
	for _, mode := range []MemoryMode{MemNorm, MemCharDisc, MemCentDisc} {
		p, err := NewPipeline(ds.Reference, Options{Memory: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.MapReads(ds.Reads); err != nil {
			t.Fatal(err)
		}
		calls, _, err := p.Call()
		if err != nil {
			t.Fatal(err)
		}
		m := Evaluate(calls, ds.Truth)
		if mode != MemCentDisc && m.TP < 3 {
			t.Errorf("%v recovered %d/%d", mode, m.TP, len(ds.Truth))
		}
		mems = append(mems, p.AccumulatorMemoryBytes())
	}
	if !(mems[0] > mems[1] && mems[1] > mems[2]) {
		t.Errorf("memory ordering: %v", mems)
	}
}

func TestDiploidPipeline(t *testing.T) {
	ds, err := SimulateDataset(SimConfig{
		GenomeLength: 40000,
		SNPCount:     4,
		HetFraction:  1,
		Coverage:     25,
		Seed:         103,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(ds.Reference, Options{Caller: CallerConfig{Ploidy: Diploid}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	calls, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(calls, ds.Truth)
	if m.TP < 3 {
		t.Errorf("diploid recovered %d/%d", m.TP, len(ds.Truth))
	}
}

func TestFileRoundTrips(t *testing.T) {
	ds := dataset(t)
	dir := t.TempDir()
	if err := WriteReference(dir+"/ref.fa", ds.Reference); err != nil {
		t.Fatal(err)
	}
	if err := WriteReads(dir+"/reads.fq", ds.Reads[:100], Sanger); err != nil {
		t.Fatal(err)
	}
	ref, err := LoadReference(dir + "/ref.fa")
	if err != nil {
		t.Fatal(err)
	}
	reads, err := LoadReads(dir+"/reads.fq", Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 1 || len(ref[0].Seq) != 40000 {
		t.Errorf("reference round trip wrong: %d contigs", len(ref))
	}
	if len(reads) != 100 || reads[0].Seq.String() != ds.Reads[0].Seq.String() {
		t.Errorf("reads round trip wrong")
	}
}

func TestRunClusterBothModes(t *testing.T) {
	ds := dataset(t)
	// Single-process reference result.
	p, err := NewPipeline(ds.Reference, Options{Engine: EngineConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	want, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []SplitMode{ReadSplit, GenomeSplit} {
		calls, st, err := RunCluster(3, Channels, mode,
			ds.Reference, ds.Reads, Options{Engine: EngineConfig{Workers: 1}})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if st.Mapped+st.Unmapped != int64(len(ds.Reads)) {
			t.Errorf("%v: stats cover %d reads, want %d", mode, st.Mapped+st.Unmapped, len(ds.Reads))
		}
		if len(calls) != len(want) {
			t.Errorf("%v: %d calls vs single-process %d", mode, len(calls), len(want))
			continue
		}
		for i := range want {
			if calls[i].GlobalPos != want[i].GlobalPos || calls[i].Allele != want[i].Allele {
				t.Errorf("%v: call %d differs", mode, i)
			}
		}
	}
}

func TestRunClusterValidation(t *testing.T) {
	ds := dataset(t)
	if _, _, err := RunCluster(2, Channels, SplitMode(9), ds.Reference, ds.Reads[:10], Options{}); err == nil {
		t.Error("bad split mode accepted")
	}
	if _, _, err := RunCluster(2, Channels, ReadSplit, nil, ds.Reads[:10], Options{}); err == nil {
		t.Error("nil reference accepted")
	}
}

func TestSplitModeString(t *testing.T) {
	if ReadSplit.String() != "read-split" || GenomeSplit.String() != "genome-split" {
		t.Error("split mode names wrong")
	}
	if SplitMode(9).String() != "SplitMode(9)" {
		t.Error("unknown mode formatting wrong")
	}
}

func TestPipelineSAMAndPileup(t *testing.T) {
	ds := dataset(t)
	p, err := NewPipeline(ds.Reference, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads[:500]); err != nil {
		t.Fatal(err)
	}
	var sam bytes.Buffer
	if err := p.WriteSAM(&sam, ds.Reads[:50]); err != nil {
		t.Fatal(err)
	}
	out := sam.String()
	if !strings.Contains(out, "@SQ\tSN:sim\tLN:40000") {
		t.Errorf("SAM header missing:\n%.200s", out)
	}
	dataLines := 0
	for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(l, "@") {
			dataLines++
		}
	}
	if dataLines != 50 {
		t.Errorf("%d SAM records for 50 reads", dataLines)
	}
	var pu bytes.Buffer
	if err := p.WritePileup(&pu, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pu.String(), "#contig\tpos\tref") {
		t.Errorf("pileup header missing:\n%.100s", pu.String())
	}
	if strings.Count(pu.String(), "\n") < 100 {
		t.Errorf("pileup suspiciously small: %d lines", strings.Count(pu.String(), "\n"))
	}
}

func TestPipelineSaveLoadState(t *testing.T) {
	ds := dataset(t)
	p1, err := NewPipeline(ds.Reference, Options{Engine: EngineConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	half := len(ds.Reads) / 2
	if _, err := p1.MapReads(ds.Reads[:half]); err != nil {
		t.Fatal(err)
	}
	var state bytes.Buffer
	if err := p1.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	// Resume in a fresh pipeline and finish the second half.
	p2, err := NewPipeline(ds.Reference, Options{Engine: EngineConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.LoadState(&state); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.MapReads(ds.Reads[half:]); err != nil {
		t.Fatal(err)
	}
	// Compare against an uninterrupted run.
	if _, err := p1.MapReads(ds.Reads[half:]); err != nil {
		t.Fatal(err)
	}
	c1, _, err := p1.Call()
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := p2.Call()
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != len(c2) {
		t.Fatalf("checkpoint/resume changed calls: %d vs %d", len(c2), len(c1))
	}
	for i := range c1 {
		if c1[i].GlobalPos != c2[i].GlobalPos || c1[i].Allele != c2[i].Allele {
			t.Errorf("call %d differs after resume", i)
		}
	}
	// Mismatched pipeline rejects the state.
	other, err := SimulateDataset(SimConfig{GenomeLength: 10_000, SNPCount: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := NewPipeline(other.Reference, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var state2 bytes.Buffer
	if err := p1.SaveState(&state2); err != nil {
		t.Fatal(err)
	}
	if err := p3.LoadState(&state2); err == nil {
		t.Error("state for a different reference accepted")
	}
}

func TestMultiContigPipeline(t *testing.T) {
	// Two contigs, one SNP each; reads simulated per contig so every
	// read belongs unambiguously to one contig.
	dsA, err := SimulateDataset(SimConfig{GenomeLength: 30_000, SNPCount: 2, Coverage: 12, Seed: 201})
	if err != nil {
		t.Fatal(err)
	}
	dsB, err := SimulateDataset(SimConfig{GenomeLength: 20_000, SNPCount: 2, Coverage: 12, Seed: 202})
	if err != nil {
		t.Fatal(err)
	}
	reference := []*Contig{
		{Name: "chrA", Seq: dsA.Reference[0].Seq},
		{Name: "chrB", Seq: dsB.Reference[0].Seq},
	}
	p, err := NewPipeline(reference, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reads := append(append([]*Read{}, dsA.Reads...), dsB.Reads...)
	if _, err := p.MapReads(reads); err != nil {
		t.Fatal(err)
	}
	calls, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	// Expected: dsA's truth at chrA-relative positions, dsB's at chrB.
	byContig := map[string]map[int]bool{"chrA": {}, "chrB": {}}
	for _, c := range calls {
		if byContig[c.Contig] == nil {
			t.Fatalf("call on unknown contig %q", c.Contig)
		}
		byContig[c.Contig][c.Pos] = true
	}
	tp := 0
	for _, s := range dsA.Truth {
		if byContig["chrA"][s.Pos] {
			tp++
		}
	}
	for _, s := range dsB.Truth {
		if byContig["chrB"][s.Pos] {
			tp++
		}
	}
	if tp < 3 {
		t.Errorf("multi-contig recovered %d/4 SNPs; calls=%+v", tp, calls)
	}
	totalFP := len(calls) - tp
	if totalFP > 1 {
		t.Errorf("%d false positives across contigs", totalFP)
	}
	// VCF must carry per-contig coordinates.
	var buf bytes.Buffer
	if err := p.WriteVCF(&buf, calls); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "chrA\t") || !strings.Contains(buf.String(), "chrB\t") {
		t.Errorf("VCF missing contig names:\n%s", buf.String())
	}
}

func TestFitPHMMEndToEnd(t *testing.T) {
	ds := dataset(t)
	params, err := FitPHMM(ds.Reference, ds.Reads[:800], 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := params.Validate(); err != nil {
		t.Fatalf("fitted params invalid: %v", err)
	}
	// The dataset has no indels: fitted gap-open must not exceed the
	// default.
	if params.TMG > DefaultPHMMParams().TMG {
		t.Errorf("fitted TMG %v > default %v on indel-free data", params.TMG, DefaultPHMMParams().TMG)
	}
	// Mapping with the fitted parameters still recovers the SNPs.
	opts := Options{}
	opts.Engine.PHMM = params
	p, err := NewPipeline(ds.Reference, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	calls, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(calls, ds.Truth)
	if m.TP < 3 {
		t.Errorf("fitted-params pipeline recovered %d/%d", m.TP, len(ds.Truth))
	}
}

// The repeats example's claim as a regression test: a SNP inside an
// exact duplication is recovered by the marginal engine (as a het —
// the copies blend) and lost by the MAQ-like baseline, which discards
// every ambiguous read.
func TestRepeatRegionSNPRecovery(t *testing.T) {
	reference, err := SimulateGenome(SimConfig{GenomeLength: 60_000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	g := reference[0].Seq
	copy(g[40_000:41_500], g[20_000:21_500])
	truth, err := PlantSNPs(reference, []int{20_700}, 33)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := SimulateReadsFrom(reference, truth, SimConfig{Coverage: 14, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(reference, Options{Caller: CallerConfig{Ploidy: Diploid}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(reads); err != nil {
		t.Fatal(err)
	}
	calls, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range calls {
		if c.GlobalPos == 20_700 && c.AltAllele() == AlleleOf(truth[0].Alt) {
			found = true
		}
	}
	if !found {
		t.Errorf("marginal engine missed the repeat SNP: %+v", calls)
	}
	bres, err := RunBaseline(reference, reads, BaselineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range bres.Calls {
		if c.GlobalPos == 20_700 {
			t.Errorf("baseline unexpectedly called the repeat SNP (it should have discarded the reads)")
		}
	}
	if bres.Discarded == 0 {
		t.Error("baseline discarded nothing despite the exact duplication")
	}
}

// TestGenomeSplitGlobalFDRMatchesSingleProcess pins the headline PR-3
// bugfix: under Benjamini-Hochberg control the rejection threshold for
// each position depends on the rank of its p-value in the FULL sorted
// list, so applying BH per genome shard (shard-local list, shard-local
// n) produced call sets that changed with the node count. The fix
// gathers LRT candidates to rank 0 and runs one global BH pass, so a
// genome-split run of any size must match a single-process run exactly.
func TestGenomeSplitGlobalFDRMatchesSingleProcess(t *testing.T) {
	ds, err := SimulateDataset(SimConfig{
		GenomeLength: 40000,
		SNPCount:     12,
		Coverage:     5, // thin coverage: borderline p-values near the BH cut
		Seed:         202,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Engine: EngineConfig{Workers: 1},
		Caller: CallerConfig{UseFDR: true},
	}
	p, err := NewPipeline(ds.Reference, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	want, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("single-process FDR run produced no calls; test is vacuous")
	}
	for _, nodes := range []int{1, 4} {
		calls, st, err := RunCluster(nodes, Channels, GenomeSplit, ds.Reference, ds.Reads, opts)
		if err != nil {
			t.Fatalf("np=%d: %v", nodes, err)
		}
		if st.Mapped+st.Unmapped != int64(len(ds.Reads)) {
			t.Errorf("np=%d: stats cover %d reads, want %d", nodes, st.Mapped+st.Unmapped, len(ds.Reads))
		}
		if len(calls) != len(want) {
			t.Fatalf("np=%d: %d calls vs single-process %d", nodes, len(calls), len(want))
		}
		for i := range want {
			if calls[i].GlobalPos != want[i].GlobalPos || calls[i].Allele != want[i].Allele {
				t.Errorf("np=%d: call %d differs: pos %d/%v vs want %d/%v", nodes, i,
					calls[i].GlobalPos, calls[i].Allele, want[i].GlobalPos, want[i].Allele)
			}
		}
	}
}

func TestRunClusterReportHealthy(t *testing.T) {
	ds := dataset(t)
	calls, st, report, err := RunClusterReport(3, Channels, GenomeSplit,
		ds.Reference, ds.Reads, Options{Engine: EngineConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Error("no calls from a healthy run")
	}
	if report == nil {
		t.Fatal("nil metrics report")
	}
	if len(report.DeadRanks) != 0 {
		t.Errorf("healthy run reports dead ranks %v", report.DeadRanks)
	}
	seen := map[int]bool{}
	for _, s := range report.Ranks {
		seen[s.Rank] = true
	}
	for r := 0; r < 3; r++ {
		if !seen[r] {
			t.Errorf("rank %d snapshot missing from report", r)
		}
	}
	m := report.Merged
	if got := m.Counters["map.mapped"] + m.Counters["map.unmapped"]; got != int64(len(ds.Reads)) {
		t.Errorf("merged map.mapped+map.unmapped = %d, want %d", got, len(ds.Reads))
	}
	if m.Counters["map.mapped"] != st.Mapped {
		t.Errorf("merged map.mapped = %d, MapStats.Mapped = %d", m.Counters["map.mapped"], st.Mapped)
	}
	if m.Counters["phmm.cells"] == 0 {
		t.Error("merged phmm.cells is zero: alignment kernel not instrumented")
	}
	if m.Histograms["map.read.seconds"].Count == 0 {
		t.Error("merged map.read.seconds histogram is empty")
	}
	if m.Gauges["comm.packets.sent"] == 0 {
		t.Error("merged comm.packets.sent gauge is zero on a 3-rank run")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReportJSON(buf.Bytes()); err != nil {
		t.Errorf("report JSON fails validation: %v", err)
	}
}

// TestRunClusterReportDegraded kills rank 2 mid read-split run and
// demands a COMPLETE merged metrics report anyway: survivor snapshots
// for ranks 0, 1, 3, the dead rank marked, and the merged mapping
// counters still covering every read exactly once (the coordinator
// reassigned the lost shard).
func TestRunClusterReportDegraded(t *testing.T) {
	ds := dataset(t)
	opts := Options{
		Engine: EngineConfig{Workers: 1},
		Cluster: ClusterConfig{
			OpTimeout: 300 * time.Millisecond,
			Heartbeat: 15 * time.Millisecond,
			Fault:     &FaultConfig{Seed: 9, CrashRank: 2},
		},
	}
	calls, st, report, err := RunClusterReport(4, Channels, ReadSplit,
		ds.Reference, ds.Reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded() {
		t.Fatal("run did not degrade: crash injection not effective")
	}
	if len(calls) == 0 {
		t.Error("degraded run produced no calls")
	}
	if report == nil {
		t.Fatal("nil metrics report")
	}
	if len(report.DeadRanks) != 1 || report.DeadRanks[0] != 2 {
		t.Errorf("DeadRanks = %v, want [2]", report.DeadRanks)
	}
	seen := map[int]bool{}
	for _, s := range report.Ranks {
		seen[s.Rank] = true
	}
	for _, r := range []int{0, 1, 3} {
		if !seen[r] {
			t.Errorf("survivor rank %d snapshot missing from report", r)
		}
	}
	if seen[2] {
		t.Error("dead rank 2 has a snapshot in the report")
	}
	m := report.Merged
	if got := m.Counters["map.mapped"] + m.Counters["map.unmapped"]; got != int64(len(ds.Reads)) {
		t.Errorf("merged survivors mapped %d reads, want %d (lost shard not reassigned?)", got, len(ds.Reads))
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReportJSON(buf.Bytes()); err != nil {
		t.Errorf("degraded report JSON fails validation: %v", err)
	}
	// The human summary must surface the loss.
	buf.Reset()
	if err := report.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DEAD ranks [2]") {
		t.Errorf("text summary does not flag the dead rank:\n%s", buf.String())
	}
}
