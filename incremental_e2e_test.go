package gnumap

import (
	"bytes"
	"strings"
	"testing"

	"gnumap/internal/genome"
	"gnumap/internal/snp"
)

// End-to-end identity: incremental calling overlapped with mapping must
// finish with exactly the calls of the map-then-call flow, while
// producing provisional results during mapping. Runs under -race in CI
// (make race covers the root package).
func TestIncrementalMappingIdentityE2E(t *testing.T) {
	ds := dataset(t)
	engCfg := EngineConfig{Workers: 4, Batch: 32, Queue: 2}
	caller := CallerConfig{UseFDR: true}

	p, err := NewPipeline(ds.Reference, Options{Engine: engCfg, Caller: caller})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	want, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline called no SNPs; dataset too weak for an identity test")
	}

	reg := NewMetricsRegistry()
	incEng := engCfg
	incEng.Metrics = reg
	ip, err := NewPipeline(ds.Reference, Options{Engine: incEng, Caller: caller})
	if err != nil {
		t.Fatal(err)
	}
	var provisional int
	stats, res, err := ip.MapReadsFromIncremental(SliceReadSource(ds.Reads), IncrementalCallConfig{
		EveryReads: 2_000,
		OnProvisional: func(calls []SNPCall, _ CallStats, _ int64) {
			if len(calls) > 0 {
				provisional++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mapped+stats.Unmapped != int64(len(ds.Reads)) {
		t.Fatalf("incremental stats cover %d reads, want %d", stats.Mapped+stats.Unmapped, len(ds.Reads))
	}
	sameCalls(t, "incremental", res.Calls, want)

	// The overlap must actually happen: multiple sweeps, a first
	// provisional call strictly before the last read, and region reuse
	// once the early genome stops changing.
	if res.Sweeps < 2 {
		t.Errorf("only %d sweeps for %d reads at every-2000", res.Sweeps, len(ds.Reads))
	}
	if provisional == 0 {
		t.Error("no provisional call set ever surfaced during mapping")
	}
	if res.FirstCallReads <= 0 || res.FirstCallReads >= int64(len(ds.Reads)) {
		t.Errorf("first provisional call at %d reads, want inside (0, %d)", res.FirstCallReads, len(ds.Reads))
	}
	if res.FirstCallSeconds <= 0 {
		t.Errorf("FirstCallSeconds = %v, want > 0", res.FirstCallSeconds)
	}
	if g := reg.Gauge("call.first.reads").Value(); g != float64(res.FirstCallReads) {
		t.Errorf("call.first.reads gauge = %v, result says %d", g, res.FirstCallReads)
	}
}

// Satellite e2e for the vectorized sweep: a streaming run with
// incremental calling must produce byte-identical provisional AND
// final VCFs whether the sweeps run the vectorized (CallVector 0) or
// scalar (CallVector -1) path — the engine-level form of the
// bit-identity the snp-package property harness asserts. Runs under
// -race in CI (make race covers the root package).
func TestIncrementalVectorVCFByteIdentityE2E(t *testing.T) {
	ds := dataset(t)
	run := func(callVector int) (provisional []string, final string) {
		t.Helper()
		caller := CallerConfig{UseFDR: true, CallVector: callVector}
		p, err := NewPipeline(ds.Reference, Options{
			Engine: EngineConfig{Workers: 4, Batch: 32, Queue: 2},
			Caller: caller,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := p.MapReadsFromIncremental(SliceReadSource(ds.Reads), IncrementalCallConfig{
			EveryReads: 2_000,
			OnProvisional: func(calls []SNPCall, _ CallStats, _ int64) {
				var buf bytes.Buffer
				if err := snp.WriteVCF(&buf, calls, "identity-e2e"); err != nil {
					t.Error(err)
					return
				}
				provisional = append(provisional, buf.String())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := snp.WriteVCF(&buf, res.Calls, "identity-e2e"); err != nil {
			t.Fatal(err)
		}
		return provisional, buf.String()
	}

	scalarProv, scalarFinal := run(-1)
	vectorProv, vectorFinal := run(0)

	if vectorFinal != scalarFinal {
		t.Errorf("final VCF diverges between vectorized and scalar sweeps:\n--- scalar ---\n%s\n--- vector ---\n%s", scalarFinal, vectorFinal)
	}
	if len(vectorProv) != len(scalarProv) {
		t.Fatalf("provisional VCF counts diverge: vector %d, scalar %d", len(vectorProv), len(scalarProv))
	}
	var nonEmpty int
	for i := range scalarProv {
		if vectorProv[i] != scalarProv[i] {
			t.Errorf("provisional VCF %d diverges between vectorized and scalar sweeps", i)
		}
		if strings.Contains(scalarProv[i], "\tPASS\t") {
			nonEmpty++
		}
	}
	if len(scalarProv) < 2 || nonEmpty == 0 {
		t.Fatalf("identity test is vacuous: %d provisional VCFs, %d with calls", len(scalarProv), nonEmpty)
	}
}

// MapReadsFromIncremental and -checkpoint share the quiesce barrier;
// the pipeline must reject running both at once rather than let the
// two schedules interleave.
func TestIncrementalRejectsCheckpointing(t *testing.T) {
	ds := dataset(t)
	ck := &CheckpointConfig{Path: t.TempDir() + "/state.ckpt", EveryReads: 1_000}
	p, err := NewPipeline(ds.Reference, Options{Engine: EngineConfig{Workers: 2, Batch: 8}, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.MapReadsFromIncremental(SliceReadSource(ds.Reads), IncrementalCallConfig{EveryReads: 500}); err == nil {
		t.Fatal("incremental mapping accepted a checkpoint-configured pipeline")
	}
}

// Checkpoint fingerprints must not move under the zero-means-default,
// negative-means-disabled config convention: a zero caller config and
// its explicit defaults fingerprint identically, resolving is
// fingerprint-stable, and disabling a threshold (negative) is a real
// configuration change that does alter the fingerprint.
func TestFingerprintCallerConfigStability(t *testing.T) {
	ds := ckptDataset(t)
	ref, err := genome.NewReference(ds.Reference)
	if err != nil {
		t.Fatal(err)
	}

	zero := fingerprintFor(ref, Options{})
	explicit := fingerprintFor(ref, Options{Caller: CallerConfig{
		Alpha: 0.05, MinDepth: 2, MinHetMinorFraction: 0.25,
	}})
	if zero != explicit {
		t.Error("zero caller config and explicit defaults fingerprint differently")
	}

	neg := Options{Caller: CallerConfig{Alpha: -1, MinDepth: -3, MinHetMinorFraction: -0.5}}
	fp := fingerprintFor(ref, neg)
	resolved := neg
	resolved.Caller = neg.Caller.Resolved()
	if fp != fingerprintFor(ref, resolved) {
		t.Error("resolving a negative caller config moved its fingerprint")
	}
	if fp == zero {
		t.Error("disabled thresholds fingerprint like the defaults; resumes would silently change the call set")
	}
}
