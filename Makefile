GO ?= go

.PHONY: build test race vet bench bench-phmm bench-stream bench-call bench-index fuzz chaos chaos-resume metrics check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine, accumulators, cluster runtime and metrics registry are
# concurrent; -race on the full tree is slow, so the gate covers the
# concurrent packages plus the root package (streaming e2e identity),
# the PHMM and calling-sweep kernels (batched-vs-scalar bit-exactness
# property tests, including the lrt batch evaluator) and the FASTQ
# parser (fuzz seed corpus).
race:
	$(GO) test -race . ./internal/core/... ./internal/phmm/... ./internal/cluster/... ./internal/genome/... ./internal/snp/... ./internal/lrt/... ./internal/obs/... ./internal/fastq/... ./internal/ckpt/... ./internal/kmer/...

vet:
	$(GO) vet ./...

# Kernel + engine benchmarks with allocation accounting (the banded
# speedup and the 0 allocs/op gates live here).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/phmm/
	$(GO) test -bench 'BenchmarkMapRead' -benchmem -benchtime 2000x -run '^$$' ./internal/core/

# Machine-readable kernel trajectory: scalar and batched kernel rows
# (batched verified bit-exact against scalar before timing) plus
# end-to-end engine reads/sec (writes BENCH_phmm.json).
bench-phmm:
	$(GO) run ./cmd/snpbench -exp phmm -length 120000 -coverage 4

# Streaming pipeline vs materialized slice on the same FASTQ (writes
# BENCH_stream.json: reads/sec, peak heap, peak resident reads).
bench-stream:
	$(GO) run ./cmd/snpbench -exp stream -length 120000 -coverage 6

# Parallel post-map phase: scalar and vectorized calling sweeps at
# 1/2/4/8 workers (every row asserted identical to the scalar serial
# reference), prescreen ns/position per sweep flavor with the dispatched
# kernel stamped, plus striped-vs-sharded accumulation throughput
# (writes BENCH_call.json).
bench-call:
	$(GO) run ./cmd/snpbench -exp call -length 150000 -coverage 6

# Large-seed index vs the k=10 direct table: candidate selectivity,
# throughput, accuracy, and the mmap persistence leg (writes
# BENCH_index.json; the CI gate asserts the selectivity ratio, the
# load speedup, and VCF identity through a save/load cycle).
bench-index:
	$(GO) run ./cmd/snpbench -exp index -length 400000 -coverage 12

# Short coverage-guided fuzz passes: the FASTQ parser and the on-disk
# seed-index decoder (both checked-in seed corpora always run as part
# of plain `go test`).
fuzz:
	$(GO) test -fuzz FuzzReaderNext -fuzztime 20s ./internal/fastq/
	$(GO) test -fuzz FuzzDecodeIndex -fuzztime 20s ./internal/kmer/

# Fault-tolerance gate: seeded chaos collectives, crash/heartbeat
# detection, TCP hardening, and degraded-mode read-split — all
# deterministic (fixed seeds live in the tests) and race-checked.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Crash|Heartbeat|RecvPatient|Degraded|FTMatches|Dial|Frame|Hardening|Timeout' ./internal/cluster/ ./internal/core/

# Kill-and-recover gate: the real gnumap-snp binary (race-built),
# SIGKILLed at randomized points after checkpoint commits and relaunched
# with -resume until the VCF matches an uninterrupted run byte-for-byte,
# in single-process and np=4 read-split cluster modes; plus the SIGTERM
# graceful-stop path (drain, final checkpoint, exit code 3, resume).
chaos-resume:
	$(GO) test -count=1 -timeout 20m -run 'ChaosKillResume|GracefulStopResume' ./cmd/

# Observability smoke: a small 2-node cluster run that writes
# metrics.json, schema-checks it, and prints the merged summary.
metrics:
	$(GO) run ./cmd/snpbench -exp metrics -length 60000 -coverage 4 -metrics-out metrics.json

check: build vet test race
