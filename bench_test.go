package gnumap

// Benchmark harness: one benchmark (family) per table and figure of the
// paper's evaluation (§VII), plus ablation benches for the design
// choices listed in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Shapes to expect (see EXPERIMENTS.md for recorded numbers):
//   - Table1: GNUMAP-SNP and the MAQ-like baseline find similar SNP
//     counts; the baseline is faster per CPU (the paper's GNUMAP time
//     advantage came from 30-node parallelism, reproduced in Fig4/Fig5).
//   - Table2/Table3: NORM > CHARDISC > CENTDISC in memory; CENTDISC
//     collapses in precision.
//   - Fig4: read-split outscales genome-split.
//   - Fig5: near-linear scaling for all three memory modes.

import (
	"fmt"
	"sync"
	"testing"

	"gnumap/internal/baseline"
	"gnumap/internal/cluster"
	"gnumap/internal/core"
	"gnumap/internal/experiments"
	"gnumap/internal/genome"
	"gnumap/internal/snp"
)

// benchData is the shared dataset: built once, sized so a single
// mapping pass takes on the order of a second.
var (
	benchOnce sync.Once
	benchDS   *experiments.Dataset
	benchErr  error
)

func benchDataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = experiments.MakeDataset(experiments.DataConfig{
			GenomeLength: 120_000,
			Coverage:     8,
			Seed:         1,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

// reportAccuracy attaches accuracy metrics to a benchmark run.
func reportAccuracy(b *testing.B, m snp.Metrics) {
	b.ReportMetric(float64(m.TP), "TP")
	b.ReportMetric(float64(m.FP), "FP")
	b.ReportMetric(100*m.Precision(), "precision%")
}

// --- Table I -------------------------------------------------------------

func BenchmarkTable1_GNUMAP(b *testing.B) {
	ds := benchDataset(b)
	var m snp.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(ds.Ref, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		acc, err := genome.New(genome.Norm, ds.Ref.Len())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
			b.Fatal(err)
		}
		calls, _, err := snp.CallAll(ds.Ref, acc, snp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		m = snp.Evaluate(calls, ds.Truth)
	}
	b.StopTimer()
	reportAccuracy(b, m)
	b.ReportMetric(float64(len(ds.Reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

func BenchmarkTable1_MAQ(b *testing.B) {
	ds := benchDataset(b)
	var m snp.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := baseline.Run(ds.Ref, ds.Reads, baseline.Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		m = snp.Evaluate(res.Calls, ds.Truth)
	}
	b.StopTimer()
	reportAccuracy(b, m)
	b.ReportMetric(float64(len(ds.Reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// --- Table II ------------------------------------------------------------

func BenchmarkTable2_MemoryFootprint(b *testing.B) {
	for _, mode := range []genome.Mode{genome.Norm, genome.CharDisc, genome.CentDisc} {
		b.Run(mode.String(), func(b *testing.B) {
			const L = 1_000_000
			var acc genome.Accumulator
			var err error
			for i := 0; i < b.N; i++ {
				acc, err = genome.New(mode, L)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(acc.MemoryBytes())/L, "bytes/base")
		})
	}
}

// --- Table III -----------------------------------------------------------

func BenchmarkTable3(b *testing.B) {
	ds := benchDataset(b)
	for _, mode := range []genome.Mode{genome.Norm, genome.CharDisc, genome.CentDisc} {
		b.Run(mode.String(), func(b *testing.B) {
			var m snp.Metrics
			var mem int64
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(ds.Ref, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				acc, err := genome.New(mode, ds.Ref.Len())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
					b.Fatal(err)
				}
				calls, _, err := snp.CallAll(ds.Ref, acc, snp.Config{})
				if err != nil {
					b.Fatal(err)
				}
				m = snp.Evaluate(calls, ds.Truth)
				mem = acc.MemoryBytes()
			}
			b.StopTimer()
			reportAccuracy(b, m)
			b.ReportMetric(float64(mem)/float64(ds.Ref.Len()), "bytes/base")
		})
	}
}

// --- Figure 4 ------------------------------------------------------------

func BenchmarkFig4_ReadSplit(b *testing.B)   { benchFig4(b, true) }
func BenchmarkFig4_GenomeSplit(b *testing.B) { benchFig4(b, false) }

func benchFig4(b *testing.B, readSplit bool) {
	ds := benchDataset(b)
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := cluster.Run(nodes, cluster.Channels, func(c *cluster.Comm) error {
					if readSplit {
						_, _, err := core.RunReadSplit(c, ds.Ref, ds.Reads, genome.Norm, core.Config{Workers: 1})
						return err
					}
					_, _, _, _, err := core.RunGenomeSplit(c, ds.Ref, ds.Reads, genome.Norm, core.Config{Workers: 1})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ds.Reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// --- Figure 5 ------------------------------------------------------------

func BenchmarkFig5(b *testing.B) {
	ds := benchDataset(b)
	for _, mode := range []genome.Mode{genome.Norm, genome.CharDisc, genome.CentDisc} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng, err := core.NewEngine(ds.Ref, core.Config{Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					acc, err := genome.New(mode, ds.Ref.Len())
					if err != nil {
						b.Fatal(err)
					}
					if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(ds.Reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
			})
		}
	}
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// benchAblation runs one engine variant and reports accuracy.
func benchAblation(b *testing.B, cfg core.Config, naiveCaller bool) {
	ds := benchDataset(b)
	var m snp.Metrics
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(ds.Ref, cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc, err := genome.New(genome.Norm, ds.Ref.Len())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
			b.Fatal(err)
		}
		var calls []snp.Call
		if naiveCaller {
			rows, err := experiments.Ablations(ds, 0)
			_ = rows
			if err != nil {
				b.Fatal(err)
			}
			// The naive caller is measured inside experiments.Ablations;
			// here we only time the mapping phase for parity.
			continue
		}
		calls, _, err = snp.CallAll(ds.Ref, acc, snp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		m = snp.Evaluate(calls, ds.Truth)
	}
	b.StopTimer()
	reportAccuracy(b, m)
}

func BenchmarkAblation_FullEngine(b *testing.B) {
	benchAblation(b, core.Config{}, false)
}

func BenchmarkAblation_ViterbiOnly(b *testing.B) {
	benchAblation(b, core.Config{ViterbiOnly: true}, false)
}

func BenchmarkAblation_BestHitOnly(b *testing.B) {
	benchAblation(b, core.Config{BestHitOnly: true}, false)
}

func BenchmarkAblation_PWMEmission(b *testing.B) {
	benchAblation(b, core.Config{IgnoreQualities: true}, false)
}

// BenchmarkAblation_NaiveCaller measures calling with plurality voting
// instead of the LRT (the paper's criticism of existing callers).
func BenchmarkAblation_NaiveCaller(b *testing.B) {
	ds := benchDataset(b)
	eng, err := core.NewEngine(ds.Ref, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, ds.Ref.Len())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
		b.Fatal(err)
	}
	var naive, lrtM snp.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveCalls := experiments.NaiveCalls(ds.Ref, acc)
		naive = snp.Evaluate(naiveCalls, ds.Truth)
		calls, _, err := snp.CallAll(ds.Ref, acc, snp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		lrtM = snp.Evaluate(calls, ds.Truth)
	}
	b.StopTimer()
	b.ReportMetric(float64(naive.FP), "naiveFP")
	b.ReportMetric(float64(lrtM.FP), "lrtFP")
	b.ReportMetric(float64(naive.TP), "naiveTP")
	b.ReportMetric(float64(lrtM.TP), "lrtTP")
}

// --- Accumulation strategy ablation ---------------------------------------

// BenchmarkAblation_Accumulation compares online striped-lock
// accumulation against per-worker private accumulators merged at the
// end (the design alternative DESIGN.md §5 calls out).
func BenchmarkAblation_Accumulation(b *testing.B) {
	const L = 200_000
	const spans = 2_000
	zs := make([]genome.Vec, 62)
	for i := range zs {
		zs[i] = genome.Vec{0.9, 0.05, 0.03, 0.02, 0}
	}
	for _, strategy := range []string{"striped-online", "private-merge"} {
		b.Run(strategy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if strategy == "striped-online" {
					acc, err := genome.New(genome.Norm, L)
					if err != nil {
						b.Fatal(err)
					}
					var wg sync.WaitGroup
					for w := 0; w < 4; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							for s := 0; s < spans/4; s++ {
								acc.AddRange((s*977+w*131)%(L-70), zs, 1)
							}
						}(w)
					}
					wg.Wait()
				} else {
					merged, err := genome.New(genome.Norm, L)
					if err != nil {
						b.Fatal(err)
					}
					parts := make([]genome.Accumulator, 4)
					var wg sync.WaitGroup
					for w := 0; w < 4; w++ {
						parts[w], err = genome.New(genome.Norm, L)
						if err != nil {
							b.Fatal(err)
						}
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							for s := 0; s < spans/4; s++ {
								parts[w].AddRange((s*977+w*131)%(L-70), zs, 1)
							}
						}(w)
					}
					wg.Wait()
					for w := 0; w < 4; w++ {
						if err := merged.Merge(parts[w]); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}
