package gnumap

import (
	"path/filepath"
	"testing"
)

// End-to-end identity: the streaming pipeline (bounded memory, FASTQ
// file source) must produce exactly the SNP calls of the slice-based
// path, single-process and on a 4-node streamed cluster. Runs under
// -race in CI (make race covers the root package).

// sameCalls compares call sets by position and allele (scores are
// float-order sensitive and not part of the identity contract).
func sameCalls(t *testing.T, label string, got, want []SNPCall) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d calls, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].GlobalPos != want[i].GlobalPos || got[i].Allele != want[i].Allele {
			t.Fatalf("%s: call %d = %d/%v, want %d/%v",
				label, i, got[i].GlobalPos, got[i].Allele, want[i].GlobalPos, want[i].Allele)
		}
	}
}

func TestStreamingIdentityE2E(t *testing.T) {
	ds := dataset(t)
	fq := filepath.Join(t.TempDir(), "reads.fq")
	if err := WriteReads(fq, ds.Reads, Sanger); err != nil {
		t.Fatal(err)
	}
	engCfg := EngineConfig{Workers: 4, Batch: 32, Queue: 2}

	// Slice baseline.
	p, err := NewPipeline(ds.Reference, Options{Engine: engCfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	want, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline called no SNPs; dataset too weak for an identity test")
	}

	// np=1: stream the FASTQ file through the bounded pipeline, and
	// assert the acceptance bound via the observability gauge.
	reg := NewMetricsRegistry()
	streamCfg := engCfg
	streamCfg.Metrics = reg
	sp, err := NewPipeline(ds.Reference, Options{Engine: streamCfg})
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenReads(fq, Sanger)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sp.MapReadsFrom(src)
	if cerr := src.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mapped+stats.Unmapped != int64(len(ds.Reads)) {
		t.Fatalf("streaming stats cover %d reads, want %d", stats.Mapped+stats.Unmapped, len(ds.Reads))
	}
	peak := reg.Gauge("stream.peak.resident.reads").Value()
	if peak <= 0 {
		t.Fatal("stream.peak.resident.reads never set")
	}
	if limit := float64(engCfg.Workers * engCfg.Batch * engCfg.Queue); peak > limit {
		t.Errorf("reads in flight peaked at %v, above workers*batch*queue = %v", peak, limit)
	}
	got, _, err := sp.Call()
	if err != nil {
		t.Fatal(err)
	}
	sameCalls(t, "np=1 streaming", got, want)

	// np=4: rank 0 streams the file, shards are dealt round-robin.
	src4, err := OpenReads(fq, Sanger)
	if err != nil {
		t.Fatal(err)
	}
	calls4, st4, err := RunClusterStream(4, Channels, ReadSplit, ds.Reference, src4, Options{Engine: engCfg})
	if cerr := src4.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if st4.Mapped+st4.Unmapped != int64(len(ds.Reads)) {
		t.Fatalf("np=4 stats cover %d reads, want %d", st4.Mapped+st4.Unmapped, len(ds.Reads))
	}
	sameCalls(t, "np=4 streaming", calls4, want)
}

// TestStreamingGenomeSplitFallback: modes that need the whole read set
// (genome-split) must transparently materialize the stream and still
// match the baseline call set.
func TestStreamingGenomeSplitFallback(t *testing.T) {
	ds := dataset(t)
	p, err := NewPipeline(ds.Reference, Options{Engine: EngineConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	want, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	calls, _, err := RunClusterStream(3, Channels, GenomeSplit,
		ds.Reference, SliceReadSource(ds.Reads), Options{Engine: EngineConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	sameCalls(t, "genome-split fallback", calls, want)
}

// TestStreamingReportCarriesStreamMetrics: the per-rank observability
// path must surface the streaming gauges in the merged report.
func TestStreamingReportCarriesStreamMetrics(t *testing.T) {
	ds := dataset(t)
	calls, _, report, err := RunClusterStreamReport(2, Channels, ReadSplit,
		ds.Reference, SliceReadSource(ds.Reads), Options{Engine: EngineConfig{Workers: 2, Batch: 32, Queue: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("no calls from streamed cluster run")
	}
	if report == nil {
		t.Fatal("no metrics report")
	}
	if n := report.Merged.Counters["stream.reads"]; n != int64(len(ds.Reads)) {
		t.Errorf("merged stream.reads = %d, want %d", n, len(ds.Reads))
	}
	if report.Merged.Gauges["stream.peak.resident.reads"] <= 0 {
		t.Error("merged report missing stream.peak.resident.reads")
	}
}
