// Cluster example: run the same mapping job on a simulated
// message-passing cluster in both of the paper's MPI modes (§VI Step 1)
// and verify the distributed results are identical to a single-process
// run — the property Figure 4 takes for granted while measuring
// throughput.
//
//	go run ./examples/cluster [-nodes 4] [-tcp]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gnumap"
)

func main() {
	log.SetFlags(0)
	nodes := flag.Int("nodes", 4, "simulated cluster size")
	tcp := flag.Bool("tcp", false, "communicate over loopback TCP instead of channels")
	flag.Parse()

	ds, err := gnumap.SimulateDataset(gnumap.SimConfig{
		GenomeLength: 200_000,
		SNPCount:     20,
		Coverage:     10,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d reads, %d planted SNPs\n\n", len(ds.Reads), len(ds.Truth))

	// Single-process reference run (one worker, to make the speedup
	// comparison honest).
	opts := gnumap.Options{}
	opts.Engine.Workers = 1
	start := time.Now()
	p, err := gnumap.NewPipeline(ds.Reference, opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		log.Fatal(err)
	}
	want, _, err := p.Call()
	if err != nil {
		log.Fatal(err)
	}
	soloTime := time.Since(start)
	fmt.Printf("%-22s %8s  %5d SNPs\n", "single process", soloTime.Round(time.Millisecond), len(want))

	transport := gnumap.Channels
	if *tcp {
		transport = gnumap.TCP
	}
	for _, mode := range []gnumap.SplitMode{gnumap.ReadSplit, gnumap.GenomeSplit} {
		start := time.Now()
		calls, stats, err := gnumap.RunCluster(*nodes, transport, mode, ds.Reference, ds.Reads, opts)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-22s %8s  %5d SNPs  (%d/%d mapped, speedup %.2fx)\n",
			fmt.Sprintf("%d nodes, %s", *nodes, mode),
			elapsed.Round(time.Millisecond), len(calls),
			stats.Mapped, stats.Mapped+stats.Unmapped,
			soloTime.Seconds()/elapsed.Seconds())
		if !sameCalls(want, calls) {
			log.Fatalf("%s: distributed calls differ from single-process calls", mode)
		}
	}
	fmt.Println("\nall modes produced identical SNP calls ✓")
}

// sameCalls compares call positions and alleles.
func sameCalls(a, b []gnumap.SNPCall) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].GlobalPos != b[i].GlobalPos || a[i].Allele != b[i].Allele || a[i].Het != b[i].Het {
			return false
		}
	}
	return true
}
