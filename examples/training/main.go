// Training example: the paper fixes its Pair-HMM parameters; this
// example fits them to the data with Baum-Welch (gnumap.FitPHMM) and
// shows the fitted parameters tracking the sequencer's actual error
// profile. Two simulated runs — a clean library and a noisy, indel-rich
// one — produce visibly different fitted transition and emission
// parameters, and mapping with matched parameters preserves accuracy.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"

	"gnumap"
)

func main() {
	log.SetFlags(0)

	type scenario struct {
		name string
		cfg  gnumap.SimConfig
	}
	scenarios := []scenario{
		{"clean library (0.2-2% errors)", gnumap.SimConfig{
			GenomeLength: 120_000, SNPCount: 10, Coverage: 10,
			ErrStart: 0.002, ErrEnd: 0.02, Seed: 21,
		}},
		{"noisy library (1-8% errors)", gnumap.SimConfig{
			GenomeLength: 120_000, SNPCount: 10, Coverage: 10,
			ErrStart: 0.01, ErrEnd: 0.08, Seed: 22,
		}},
	}
	def := gnumap.DefaultPHMMParams()
	fmt.Printf("default parameters: TMM=%.4f TMG=%.4f  match diag=%.3f\n\n", def.TMM, def.TMG, def.Match[0][0])

	for _, sc := range scenarios {
		ds, err := gnumap.SimulateDataset(sc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		params, err := gnumap.FitPHMM(ds.Reference, ds.Reads[:1000], 300)
		if err != nil {
			log.Fatal(err)
		}
		diag := (params.Match[0][0] + params.Match[1][1] + params.Match[2][2] + params.Match[3][3]) / 4
		fmt.Printf("%s:\n", sc.name)
		fmt.Printf("  fitted: TMM=%.4f TMG=%.5f  mean match diag=%.3f\n", params.TMM, params.TMG, diag)

		// Map with the fitted parameters and evaluate.
		opts := gnumap.Options{}
		opts.Engine.PHMM = params
		p, err := gnumap.NewPipeline(ds.Reference, opts)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.MapReads(ds.Reads); err != nil {
			log.Fatal(err)
		}
		calls, _, err := p.Call()
		if err != nil {
			log.Fatal(err)
		}
		m := gnumap.Evaluate(calls, ds.Truth)
		fmt.Printf("  mapping with fitted params: TP=%d/%d FP=%d\n\n", m.TP, len(ds.Truth), m.FP)
	}
	fmt.Println("The noisy library fits a visibly lower match diagonal (the model")
	fmt.Println("learned the error rate); accuracy holds because the LRT normalizes")
	fmt.Println("per-position evidence regardless of the absolute emission scale.")
}
