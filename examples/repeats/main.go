// Repeats example: the paper's §II claims GNUMAP-SNP keeps its
// sensitivity "especially in repeat regions" because multi-mapping
// reads contribute marginal evidence to every plausible location,
// while single-alignment pipelines either discard ambiguous reads or
// assign them randomly. This example builds a genome with an exact
// 2 kbp duplication, plants a SNP *inside one copy*, and compares the
// marginal engine (with the diploid LRT, since copy-mixing makes the
// site look heterozygous) against the MAQ-like baseline, which drops
// every ambiguous read and goes blind inside the repeat.
//
//	go run ./examples/repeats
package main

import (
	"fmt"
	"log"

	"gnumap"
)

func main() {
	log.SetFlags(0)

	// 1. Genome with an exact duplication: [70k, 72k) = [30k, 32k).
	reference, err := gnumap.SimulateGenome(gnumap.SimConfig{GenomeLength: 100_000, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	g := reference[0].Seq
	copy(g[70_000:72_000], g[30_000:32_000])

	// 2. Truth: SNPs in unique sequence plus one inside the first copy
	// of the duplication.
	positions := []int{10_000, 31_000, 50_000, 90_000}
	truth, err := gnumap.PlantSNPs(reference, positions, 33)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Sequence the individual from the duplicated, mutated genome.
	reads, err := gnumap.SimulateReadsFrom(reference, truth, gnumap.SimConfig{Coverage: 14, Seed: 34})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genome: 100 kbp with an exact 2 kbp duplication (70k == 30k)\n")
	fmt.Printf("planted SNPs at %v — 31000 sits inside the repeat\n", positions)
	fmt.Printf("reads: %d at 14x\n\n", len(reads))

	report := func(name string, calls []gnumap.SNPCall) {
		m := gnumap.Evaluate(calls, truth)
		repeatHit := "MISSED"
		for _, c := range calls {
			if c.GlobalPos == 31_000 {
				zyg := "hom"
				if c.Het {
					zyg = "het"
				}
				repeatHit = fmt.Sprintf("called %s->%s (%s, depth %.1f)", c.Ref, c.AltAllele(), zyg, c.Depth)
			}
		}
		fmt.Printf("%-28s TP=%d/%d FP=%d; repeat SNP: %s\n", name, m.TP, len(truth), m.FP, repeatHit)
	}

	// GNUMAP-SNP: marginal multi-mapping + diploid LRT. Inside an exact
	// repeat the two copies' contents blend 50/50 at both locations, so
	// the mutated copy reads as ref/alt — exactly the signature the
	// heterozygous alternative detects.
	opts := gnumap.Options{Caller: gnumap.CallerConfig{Ploidy: gnumap.Diploid}}
	p, err := gnumap.NewPipeline(reference, opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.MapReads(reads); err != nil {
		log.Fatal(err)
	}
	calls, _, err := p.Call()
	if err != nil {
		log.Fatal(err)
	}
	report("GNUMAP-SNP (marginal)", calls)

	// MAQ-like baseline: ambiguous reads have mapping quality 0 and are
	// discarded, so the entire duplication loses its coverage.
	bres, err := gnumap.RunBaseline(reference, reads, gnumap.BaselineConfig{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	report("MAQ-like (single best hit)", bres.Calls)
	fmt.Printf("\nbaseline discarded %d/%d reads (every read inside the repeat)\n",
		bres.Discarded, bres.Mapped+bres.Discarded)
	fmt.Println("\nThe marginal engine blends each ambiguous read across both copies,")
	fmt.Println("so the mutated copy keeps half the alternate-allele mass and the")
	fmt.Println("diploid LRT flags it (as a het site — the copies are merged). The")
	fmt.Println("baseline's mapQ filter removes those reads entirely: no call is")
	fmt.Println("possible anywhere inside the duplication.")
}
