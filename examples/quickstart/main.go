// Quickstart: simulate a small dataset, map the reads with the
// probabilistic Pair-HMM engine, call SNPs with the likelihood ratio
// test, and score the calls against the planted truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"gnumap"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate: a 100 kbp genome, 10 planted SNPs, 12x coverage of
	// 62-bp Illumina-like reads (the paper's §VII-A setup, scaled down).
	ds, err := gnumap.SimulateDataset(gnumap.SimConfig{
		GenomeLength: 100_000,
		SNPCount:     10,
		Coverage:     12,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d reads over a %d bp genome with %d SNPs\n",
		len(ds.Reads), 100_000, len(ds.Truth))

	// 2. Build the pipeline (k-mer index + accumulator) and map.
	p, err := gnumap.NewPipeline(ds.Reference, gnumap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := p.MapReads(ds.Reads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %d/%d reads across %d locations\n",
		stats.Mapped, stats.Mapped+stats.Unmapped, stats.Locations)

	// 3. Call SNPs.
	calls, callStats, err := p.Call()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tested %d positions, %d significant, %d SNPs:\n",
		callStats.Tested, callStats.Significant, len(calls))
	for _, c := range calls {
		fmt.Printf("  %s:%d  %s -> %s  (p = %.2e, depth %.1f)\n",
			c.Contig, c.Pos+1, c.Ref, c.AltAllele(), c.PValue, c.Depth)
	}

	// 4. Score against the planted truth.
	m := gnumap.Evaluate(calls, ds.Truth)
	fmt.Printf("TP=%d FP=%d FN=%d  precision=%.1f%%  sensitivity=%.1f%%\n",
		m.TP, m.FP, m.FN, 100*m.Precision(), 100*m.Sensitivity())

	// 5. Emit VCF.
	fmt.Println("\nVCF output:")
	if err := p.WriteVCF(os.Stdout, calls); err != nil {
		log.Fatal(err)
	}
}
