// Memory example: the paper's §VI-B trade-off. Run the same dataset
// through the three accumulator layouts — NORM (5 floats/base),
// CHARDISC (float total + 5 bytes/base), CENTDISC (float total + 1
// codebook byte/base) — and print the memory/accuracy trade Table III
// reports: CHARDISC keeps precision at roughly half the memory, while
// CENTDISC's online re-quantization wrecks precision.
//
//	go run ./examples/memory [-length 300000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gnumap"
)

func main() {
	log.SetFlags(0)
	length := flag.Int("length", 300_000, "simulated genome length")
	flag.Parse()

	ds, err := gnumap.SimulateDataset(gnumap.SimConfig{
		GenomeLength: *length,
		SNPCount:     *length / 10_500,
		Coverage:     12,
		ErrStart:     0.004,
		ErrEnd:       0.04,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d bp, %d SNPs, %d reads\n\n", *length, len(ds.Truth), len(ds.Reads))
	fmt.Printf("%-10s %12s %10s %6s %6s %10s %12s\n",
		"layout", "accumulator", "time", "TP", "FP", "precision", "sensitivity")

	for _, mode := range []gnumap.MemoryMode{gnumap.MemNorm, gnumap.MemCharDisc, gnumap.MemCentDisc} {
		start := time.Now()
		p, err := gnumap.NewPipeline(ds.Reference, gnumap.Options{Memory: mode})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.MapReads(ds.Reads); err != nil {
			log.Fatal(err)
		}
		calls, _, err := p.Call()
		if err != nil {
			log.Fatal(err)
		}
		m := gnumap.Evaluate(calls, ds.Truth)
		fmt.Printf("%-10v %11.1fK %10s %6d %6d %9.1f%% %11.1f%%\n",
			mode,
			float64(p.AccumulatorMemoryBytes())/1024,
			time.Since(start).Round(time.Millisecond),
			m.TP, m.FP, 100*m.Precision(), 100*m.Sensitivity())
	}
	fmt.Println("\n(NORM is exact; CHARDISC quantizes to 1/255 fractions; CENTDISC")
	fmt.Println(" re-quantizes to a 256-entry codebook on every update, the paper's")
	fmt.Println(" 'not recommended for practical use' finding.)")
}
