// Diploid example: the paper's §V-C diploid LRT (Eq. 2). Simulate a
// heterozygous individual — every planted SNP present on only one of
// the two haplotypes — and show that the diploid test recovers the
// heterozygous genotypes while the monoploid test, whose alternative
// hypothesis admits only a single dominant base, misses most of them.
//
//	go run ./examples/diploid
package main

import (
	"fmt"
	"log"

	"gnumap"
)

func main() {
	log.SetFlags(0)

	ds, err := gnumap.SimulateDataset(gnumap.SimConfig{
		GenomeLength: 150_000,
		SNPCount:     15,
		HetFraction:  1.0, // every SNP heterozygous
		Coverage:     20,  // het detection needs more depth
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diploid individual: %d heterozygous SNPs, %d reads\n\n",
		len(ds.Truth), len(ds.Reads))

	for _, ploidy := range []gnumap.Ploidy{gnumap.Monoploid, gnumap.Diploid} {
		opts := gnumap.Options{}
		opts.Caller.Ploidy = ploidy
		p, err := gnumap.NewPipeline(ds.Reference, opts)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.MapReads(ds.Reads); err != nil {
			log.Fatal(err)
		}
		calls, _, err := p.Call()
		if err != nil {
			log.Fatal(err)
		}
		m := gnumap.Evaluate(calls, ds.Truth)
		hets := 0
		for _, c := range calls {
			if c.Het {
				hets++
			}
		}
		fmt.Printf("%-10v test: %2d/%d SNPs recovered (%d flagged heterozygous, %d FP)\n",
			ploidy, m.TP, len(ds.Truth), hets, m.FP)
		if ploidy == gnumap.Diploid {
			fmt.Println("\nheterozygous calls:")
			for _, c := range calls {
				if !c.Het {
					continue
				}
				fmt.Printf("  %s:%d  %s -> %s/%s  (p = %.2e)\n",
					c.Contig, c.Pos+1, c.Ref, c.Allele, c.Allele2, c.PValue)
			}
		}
	}
}
