package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBenjaminiHochbergKnown(t *testing.T) {
	// Hand-worked example (matches R's p.adjust(method="BH")).
	p := []float64{0.01, 0.04, 0.03, 0.005}
	// sorted: 0.005(4/1), 0.01(4/2), 0.03(4/3), 0.04(4/4)
	// raw: 0.02, 0.02, 0.04, 0.04 -> monotone from the top: same.
	q, err := BenjaminiHochberg(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.02, 0.04, 0.04, 0.02}
	for i := range want {
		if math.Abs(q[i]-want[i]) > 1e-12 {
			t.Errorf("q[%d] = %g, want %g", i, q[i], want[i])
		}
	}
}

func TestBenjaminiHochbergMonotoneCap(t *testing.T) {
	q, err := BenjaminiHochberg([]float64{0.9, 0.95, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range q {
		if v > 1 {
			t.Errorf("q[%d] = %g > 1", i, v)
		}
	}
}

func TestBenjaminiHochbergEmptyAndValidation(t *testing.T) {
	q, err := BenjaminiHochberg(nil)
	if err != nil || q != nil {
		t.Errorf("nil input: %v, %v", q, err)
	}
	if _, err := BenjaminiHochberg([]float64{0.5, -0.1}); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := BenjaminiHochberg([]float64{1.5}); err == nil {
		t.Error("p > 1 accepted")
	}
}

// Properties: q >= p elementwise; order of q matches order of p;
// q within [0, 1].
func TestBenjaminiHochbergProperties(t *testing.T) {
	f := func(raw []float64) bool {
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = math.Mod(math.Abs(v), 1)
		}
		q, err := BenjaminiHochberg(p)
		if err != nil {
			return false
		}
		for i := range p {
			if q[i] < p[i]-1e-12 || q[i] > 1+1e-12 {
				return false
			}
		}
		// Sorted p implies sorted q.
		idx := make([]int, len(p))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return p[idx[a]] < p[idx[b]] })
		for k := 1; k < len(idx); k++ {
			if q[idx[k]] < q[idx[k-1]]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Under the global null (uniform p-values) BH should reject ~alpha
// fraction of *experiments*, i.e. rarely anything at all; with strong
// signal mixed in, it should reject most of the signal.
func TestRejectFDRBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 1000
	p := make([]float64, n)
	trueSignal := make([]bool, n)
	for i := range p {
		if i < 100 {
			p[i] = rng.Float64() * 1e-6 // signal
			trueSignal[i] = true
		} else {
			p[i] = rng.Float64() // null
		}
	}
	rej, err := RejectFDR(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	caught, falsePos := 0, 0
	for i, r := range rej {
		if r && trueSignal[i] {
			caught++
		}
		if r && !trueSignal[i] {
			falsePos++
		}
	}
	if caught < 95 {
		t.Errorf("caught %d/100 signals", caught)
	}
	total := caught + falsePos
	if total > 0 && float64(falsePos)/float64(total) > 0.15 {
		t.Errorf("FDP = %d/%d, want <= ~0.05 with slack", falsePos, total)
	}
}

func TestRejectFDRValidation(t *testing.T) {
	if _, err := RejectFDR([]float64{0.5}, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := RejectFDR([]float64{0.5}, 1); err == nil {
		t.Error("alpha=1 accepted")
	}
}

func TestBonferroniAlpha(t *testing.T) {
	v, err := BonferroniAlpha(0.05, 5)
	if err != nil || math.Abs(v-0.01) > 1e-15 {
		t.Errorf("BonferroniAlpha = %v, %v", v, err)
	}
	if _, err := BonferroniAlpha(0, 5); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := BonferroniAlpha(0.05, 0); err == nil {
		t.Error("m=0 accepted")
	}
}
