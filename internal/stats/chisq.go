// Package stats implements the statistical machinery for GNUMAP-SNP's
// likelihood-ratio testing (paper §V-C and §VI Step 3): the chi-square
// distribution (CDF and quantile, built from scratch on the regularized
// incomplete gamma function), p-value helpers, and the
// Benjamini–Hochberg false-discovery-rate procedure that the paper
// offers as an alternative to a fixed p-value cutoff.
//
// Only the standard library is used; the incomplete gamma evaluation
// follows the classical series/continued-fraction split (Abramowitz &
// Stegun §6.5, as popularized by Numerical Recipes) with Lentz's
// algorithm for the continued fraction.
package stats

import (
	"fmt"
	"math"
)

// maxIterations bounds the series and continued-fraction loops; both
// converge in far fewer iterations for the arguments SNP calling uses.
const maxIterations = 500

const convergenceEps = 3e-14

// GammaIncLower returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0.
func GammaIncLower(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("stats: GammaIncLower needs a > 0, got %g", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("stats: GammaIncLower needs x >= 0, got %g", x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		v, err := gammaSeries(a, x)
		return v, err
	}
	v, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - v, nil
}

// GammaIncUpper returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncUpper(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("stats: GammaIncUpper needs a > 0, got %g", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("stats: GammaIncUpper needs x >= 0, got %g", x)
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		v, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - v, nil
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIterations; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*convergenceEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("stats: gamma series failed to converge for a=%g x=%g", a, x)
}

// gammaContinuedFraction evaluates Q(a,x) by Lentz's modified continued
// fraction, accurate for x >= a+1.
func gammaContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < convergenceEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: gamma continued fraction failed to converge for a=%g x=%g", a, x)
}

// ChiSquareCDF returns P(X <= x) for X ~ χ²(df).
func ChiSquareCDF(x float64, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square needs df > 0, got %g", df)
	}
	if x <= 0 {
		return 0, nil
	}
	return GammaIncLower(df/2, x/2)
}

// ChiSquareSF returns the survival function P(X > x) for X ~ χ²(df) —
// the p-value of an observed statistic x.
func ChiSquareSF(x float64, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square needs df > 0, got %g", df)
	}
	if x <= 0 {
		return 1, nil
	}
	return GammaIncUpper(df/2, x/2)
}

// ChiSquareQuantile returns the x with P(X <= x) = p for X ~ χ²(df),
// computed by bisection refined with Newton steps on the CDF. It is the
// critical value the caller compares -2·log λ against.
func ChiSquareQuantile(p float64, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square needs df > 0, got %g", df)
	}
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("stats: quantile needs p in [0,1), got %g", p)
	}
	if p == 0 {
		return 0, nil
	}
	// Bracket the root: the mean is df, the tail decays exponentially.
	lo, hi := 0.0, df
	for {
		cdf, err := ChiSquareCDF(hi, df)
		if err != nil {
			return 0, err
		}
		if cdf >= p {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1e8 {
			return 0, fmt.Errorf("stats: quantile bracket escaped for p=%g df=%g", p, df)
		}
	}
	// Bisection to convergence; 200 iterations halve the bracket far
	// below float64 resolution, and each step is cheap.
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		cdf, err := ChiSquareCDF(mid, df)
		if err != nil {
			return 0, err
		}
		if cdf < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
