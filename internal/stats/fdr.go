package stats

import (
	"fmt"
	"slices"
)

// BenjaminiHochberg computes Benjamini–Hochberg adjusted p-values
// (q-values) for the given raw p-values. Rejecting every hypothesis
// with q <= alpha controls the false discovery rate at alpha. The
// returned slice is index-aligned with the input.
func BenjaminiHochberg(pvalues []float64) ([]float64, error) {
	n := len(pvalues)
	if n == 0 {
		return nil, nil
	}
	type entry struct {
		p   float64
		idx int
	}
	entries := make([]entry, n)
	for i, p := range pvalues {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("stats: p-value %g at index %d out of [0,1]", p, i)
		}
		entries[i] = entry{p, i}
	}
	// Ties may land in either order; the suffix-min walk below assigns
	// equal p-values equal q-values either way, so an unstable sort is
	// fine and the faster non-reflective one is used.
	slices.SortFunc(entries, func(a, b entry) int {
		switch {
		case a.p < b.p:
			return -1
		case a.p > b.p:
			return 1
		default:
			return 0
		}
	})
	q := make([]float64, n)
	// Walk from the largest p down, enforcing monotonicity.
	minSoFar := 1.0
	for rank := n - 1; rank >= 0; rank-- {
		v := entries[rank].p * float64(n) / float64(rank+1)
		if v < minSoFar {
			minSoFar = v
		}
		if minSoFar > 1 {
			minSoFar = 1
		}
		q[entries[rank].idx] = minSoFar
	}
	return q, nil
}

// RejectFDR returns, index-aligned with pvalues, whether each hypothesis
// is rejected under Benjamini–Hochberg control at level alpha.
func RejectFDR(pvalues []float64, alpha float64) ([]bool, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("stats: FDR level alpha = %g out of (0,1)", alpha)
	}
	q, err := BenjaminiHochberg(pvalues)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(q))
	for i, v := range q {
		out[i] = v <= alpha
	}
	return out, nil
}

// BonferroniAlpha returns the per-test significance level for m tests at
// family-wise level alpha; the paper uses this (1 - α/5 quantile) to
// adjust its five per-channel background comparisons.
func BonferroniAlpha(alpha float64, m int) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: alpha = %g out of (0,1)", alpha)
	}
	if m <= 0 {
		return 0, fmt.Errorf("stats: m = %d tests", m)
	}
	return alpha / float64(m), nil
}
