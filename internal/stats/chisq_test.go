package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference values computed with R's pchisq/qchisq.
func TestChiSquareCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, df, want float64
	}{
		{1, 1, 0.6826894921370859},
		{3.841458820694124, 1, 0.95},
		{6.634896601021213, 1, 0.99},
		{2, 2, 0.6321205588285577},
		{5.991464547107979, 2, 0.95},
		{10, 5, 0.9247647538534878},
		{0.5, 3, 0.08110858834532417},
	}
	for _, c := range cases {
		got, err := ChiSquareCDF(c.x, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("CDF(%g, df=%g) = %.15g, want %.15g", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareSFComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 50
		df := 0.5 + rng.Float64()*10
		cdf, err1 := ChiSquareCDF(x, df)
		sf, err2 := ChiSquareSF(x, df)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(cdf+sf-1) > 1e-12 {
			t.Fatalf("CDF+SF = %g at x=%g df=%g", cdf+sf, x, df)
		}
	}
}

func TestChiSquareEdgeCases(t *testing.T) {
	if v, err := ChiSquareCDF(0, 1); err != nil || v != 0 {
		t.Errorf("CDF(0) = %v, %v", v, err)
	}
	if v, err := ChiSquareCDF(-1, 1); err != nil || v != 0 {
		t.Errorf("CDF(-1) = %v, %v", v, err)
	}
	if v, err := ChiSquareSF(0, 1); err != nil || v != 1 {
		t.Errorf("SF(0) = %v, %v", v, err)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("df=0 accepted")
	}
	if _, err := ChiSquareSF(1, -2); err == nil {
		t.Error("negative df accepted")
	}
}

func TestChiSquareQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, df, want float64
	}{
		{0.95, 1, 3.841458820694124},
		{0.99, 1, 6.634896601021213},
		{0.95, 2, 5.991464547107979},
		{0.5, 1, 0.45493642311957283},
		{0.999, 1, 10.827566170662733},
		// The paper's 1 - alpha/5 adjustment at alpha = 0.05:
		{0.99, 1, 6.634896601021213},
	}
	for _, c := range cases {
		got, err := ChiSquareQuantile(c.p, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-8 {
			t.Errorf("Quantile(%g, df=%g) = %.12g, want %.12g", c.p, c.df, got, c.want)
		}
	}
}

func TestQuantileCDFRoundTripProperty(t *testing.T) {
	f := func(rawP, rawDF float64) bool {
		p := math.Mod(math.Abs(rawP), 0.999)
		df := 0.5 + math.Mod(math.Abs(rawDF), 20)
		x, err := ChiSquareQuantile(p, df)
		if err != nil {
			return false
		}
		back, err := ChiSquareCDF(x, df)
		if err != nil {
			return false
		}
		return math.Abs(back-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileValidation(t *testing.T) {
	if _, err := ChiSquareQuantile(1.0, 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := ChiSquareQuantile(-0.1, 1); err == nil {
		t.Error("p<0 accepted")
	}
	if v, err := ChiSquareQuantile(0, 3); err != nil || v != 0 {
		t.Errorf("Quantile(0) = %v, %v", v, err)
	}
	if _, err := ChiSquareQuantile(0.5, 0); err == nil {
		t.Error("df=0 accepted")
	}
}

func TestGammaIncLowerUpperComplementProperty(t *testing.T) {
	f := func(rawA, rawX float64) bool {
		a := 0.1 + math.Mod(math.Abs(rawA), 30)
		x := math.Mod(math.Abs(rawX), 60)
		lo, err1 := GammaIncLower(a, x)
		up, err2 := GammaIncUpper(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(lo+up-1) < 1e-10 && lo >= -1e-15 && lo <= 1+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaIncMonotoneInX(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 20; x += 0.25 {
		v, err := GammaIncLower(2.5, x)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("P(a,x) not monotone at x=%g: %g < %g", x, v, prev)
		}
		prev = v
	}
}

func TestGammaIncValidation(t *testing.T) {
	if _, err := GammaIncLower(0, 1); err == nil {
		t.Error("a=0 accepted")
	}
	if _, err := GammaIncLower(1, -1); err == nil {
		t.Error("x<0 accepted")
	}
	if _, err := GammaIncUpper(-1, 1); err == nil {
		t.Error("a<0 accepted")
	}
	if _, err := GammaIncUpper(1, -1); err == nil {
		t.Error("x<0 accepted for upper")
	}
	if v, err := GammaIncUpper(3, 0); err != nil || v != 1 {
		t.Errorf("Q(a,0) = %v, %v, want 1", v, err)
	}
}

// Gamma(a, x) for integer a has the closed form
// Q(n, x) = e^-x Σ_{k<n} x^k/k!; cross-check against it.
func TestGammaIncIntegerClosedForm(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, x := range []float64{0.1, 1, 3, 7.5, 20} {
			want := 0.0
			term := 1.0
			for k := 0; k < n; k++ {
				if k > 0 {
					term *= x / float64(k)
				}
				want += term
			}
			want *= math.Exp(-x)
			got, err := GammaIncUpper(float64(n), x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("Q(%d, %g) = %.15g, want %.15g", n, x, got, want)
			}
		}
	}
}
