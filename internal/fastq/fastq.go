// Package fastq implements streaming FASTQ readers and writers and the
// Phred quality-score arithmetic the probabilistic mapper depends on.
//
// A FASTQ record carries, for every base, a Phred quality score
// Q = -10·log10(e) where e is the sequencer's estimated probability
// that the base call is wrong. GNUMAP-SNP's novel PHMM extension feeds
// these per-base error probabilities into the emission terms of the
// alignment (see internal/pwm), so the quality decoding here is the
// entry point of the paper's "multiple sources of error" pipeline.
package fastq

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"gnumap/internal/dna"
	"gnumap/internal/obs"
)

// Encoding selects the ASCII offset used to encode Phred scores.
type Encoding int

const (
	// Sanger is Phred+33, the modern standard (and what current
	// Illumina pipelines emit).
	Sanger Encoding = 33
	// Illumina13 is the historical Phred+64 encoding used by Illumina
	// pipeline versions 1.3-1.7, contemporaneous with the paper.
	Illumina13 Encoding = 64
)

// MaxQuality caps decoded scores; qualities above it are clamped. Q=60
// already means a 1-in-a-million error estimate, beyond any real
// short-read chemistry.
const MaxQuality = 60

// Read is a single sequencing read: identifier, base calls, and per-base
// Phred quality scores (decoded, not ASCII).
type Read struct {
	Name string
	Seq  dna.Seq
	Qual []uint8
}

// Validate checks internal consistency.
func (r *Read) Validate() error {
	if len(r.Seq) == 0 {
		return fmt.Errorf("fastq: read %q has empty sequence", r.Name)
	}
	if len(r.Seq) != len(r.Qual) {
		return fmt.Errorf("fastq: read %q: %d bases but %d quality values", r.Name, len(r.Seq), len(r.Qual))
	}
	return nil
}

// ErrorProb returns the error probability 10^(-Q/10) for a Phred score.
func ErrorProb(q uint8) float64 {
	return math.Pow(10, -float64(q)/10)
}

// PhredFromErrorProb converts an error probability back to the nearest
// Phred score, clamped to [0, MaxQuality].
func PhredFromErrorProb(e float64) uint8 {
	if e <= 0 {
		return MaxQuality
	}
	q := -10 * math.Log10(e)
	if q < 0 {
		q = 0
	}
	if q > MaxQuality {
		q = MaxQuality
	}
	return uint8(math.Round(q))
}

// TruncatedError reports a gzipped FASTQ stream that ended mid-member:
// the compressed file was cut off (partial download, interrupted
// write), as opposed to a clean file with a malformed record. Records
// counts the complete reads decoded before the cut, so a caller can
// tell how much of the input survived.
type TruncatedError struct {
	// Path is the input file ("" for an anonymous stream).
	Path string
	// Records is the number of complete records decoded before the cut.
	Records int64
}

func (e *TruncatedError) Error() string {
	where := e.Path
	if where == "" {
		where = "stream"
	}
	return fmt.Sprintf("fastq: truncated gzip input in %s after record %d", where, e.Records)
}

// Unwrap keeps errors.Is(err, io.ErrUnexpectedEOF) working for callers
// that match on the underlying condition rather than the type.
func (e *TruncatedError) Unwrap() error { return io.ErrUnexpectedEOF }

// Reader streams reads from a FASTQ stream.
type Reader struct {
	br        *bufio.Reader
	enc       Encoding
	line      int
	exhausted bool
	records   int64
}

// NewReader returns a Reader decoding qualities with the given encoding.
func NewReader(r io.Reader, enc Encoding) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16), enc: enc}
}

// Next returns the next read or io.EOF. FASTQ is rigidly 4 lines per
// record; a truncated trailing record is an error, not EOF, so silent
// data loss is impossible.
func (r *Reader) Next() (*Read, error) {
	if r.exhausted {
		return nil, io.EOF
	}
	header, err := r.readLine()
	if err == io.EOF {
		r.exhausted = true
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	if len(header) == 0 || header[0] != '@' {
		return nil, fmt.Errorf("fastq: line %d: expected '@' header, got %q", r.line, truncate(header))
	}
	seqLine, err := r.requireLine("sequence")
	if err != nil {
		return nil, err
	}
	if len(seqLine) == 0 {
		// An empty sequence would produce a Read that fails its own
		// Validate; reject it here so Next returns error-or-valid-read.
		return nil, fmt.Errorf("fastq: line %d: empty sequence line", r.line)
	}
	plus, err := r.requireLine("'+' separator")
	if err != nil {
		return nil, err
	}
	if len(plus) == 0 || plus[0] != '+' {
		return nil, fmt.Errorf("fastq: line %d: expected '+' separator, got %q", r.line, truncate(plus))
	}
	qualLine, err := r.requireLine("quality")
	if err != nil {
		return nil, err
	}
	if len(qualLine) != len(seqLine) {
		return nil, fmt.Errorf("fastq: line %d: quality length %d != sequence length %d", r.line, len(qualLine), len(seqLine))
	}
	seq, err := dna.ParseSeqBytes(seqLine)
	if err != nil {
		return nil, fmt.Errorf("fastq: line %d: %v", r.line-2, err)
	}
	qual := make([]uint8, len(qualLine))
	for i, b := range qualLine {
		q := int(b) - int(r.enc)
		if q < 0 {
			return nil, fmt.Errorf("fastq: line %d: quality byte %q below encoding offset %d", r.line, b, r.enc)
		}
		if q > MaxQuality {
			q = MaxQuality
		}
		qual[i] = uint8(q)
	}
	name := string(bytes.TrimSpace(header[1:]))
	if i := bytes.IndexAny(header[1:], " \t"); i >= 0 {
		name = string(bytes.TrimSpace(header[1 : 1+i]))
	}
	r.records++
	return &Read{Name: name, Seq: seq, Qual: qual}, nil
}

// Records returns the number of complete records decoded so far.
func (r *Reader) Records() int64 { return r.records }

// requireLine reads a line that must exist mid-record.
func (r *Reader) requireLine(what string) ([]byte, error) {
	line, err := r.readLine()
	if err == io.EOF {
		return nil, fmt.Errorf("fastq: line %d: truncated record: missing %s line", r.line, what)
	}
	return line, err
}

func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		// %w so a gzip io.ErrUnexpectedEOF stays matchable — the file
		// readers turn it into a TruncatedError naming the path.
		return nil, fmt.Errorf("fastq: read: %w", err)
	}
	r.line++
	line = bytes.TrimRight(line, "\r\n")
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("fastq: read: %w", err)
	}
	return line, nil
}

func truncate(b []byte) string {
	if len(b) > 20 {
		return string(b[:20]) + "..."
	}
	return string(b)
}

// ReadAll parses every read from r.
func ReadAll(r io.Reader, enc Encoding) ([]*Read, error) {
	fr := NewReader(r, enc)
	var reads []*Read
	for {
		rd, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return reads, nil
		}
		if err != nil {
			return nil, err
		}
		reads = append(reads, rd)
	}
}

// ReadFile parses every read from the named file. Files ending in .gz
// are transparently decompressed. Wall time and volume land in the
// process-wide registry as io.fastq.read.{seconds,records,bases}.
func ReadFile(path string, enc Encoding) ([]*Read, error) {
	defer obs.Default().StartTimer("io.fastq.read.seconds")()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	gzipped := strings.HasSuffix(path, ".gz")
	if gzipped {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("fastq: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	fr := NewReader(r, enc)
	var reads []*Read
	for {
		rd, err := fr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if gzipped && errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, &TruncatedError{Path: path, Records: fr.Records()}
			}
			return nil, err
		}
		reads = append(reads, rd)
	}
	bases := 0
	for _, rd := range reads {
		bases += len(rd.Seq)
	}
	obs.Default().Counter("io.fastq.read.records").Add(int64(len(reads)))
	obs.Default().Counter("io.fastq.read.bases").Add(int64(bases))
	return reads, nil
}

// Writer writes FASTQ records.
type Writer struct {
	w   *bufio.Writer
	enc Encoding
}

// NewWriter returns a Writer encoding qualities with enc.
func NewWriter(w io.Writer, enc Encoding) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), enc: enc}
}

// Write emits one read.
func (w *Writer) Write(rd *Read) error {
	if err := rd.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w.w, "@%s\n", rd.Name); err != nil {
		return err
	}
	if _, err := w.w.Write(rd.Seq.Bytes()); err != nil {
		return err
	}
	if _, err := w.w.WriteString("\n+\n"); err != nil {
		return err
	}
	for _, q := range rd.Qual {
		if err := w.w.WriteByte(byte(int(q) + int(w.enc))); err != nil {
			return err
		}
	}
	return w.w.WriteByte('\n')
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteFile writes all reads to the named file. Files ending in .gz
// are transparently compressed. Wall time and volume land in the
// process-wide registry as io.fastq.write.{seconds,records}.
func WriteFile(path string, reads []*Read, enc Encoding) error {
	defer obs.Default().StartTimer("io.fastq.write.seconds")()
	obs.Default().Counter("io.fastq.write.records").Add(int64(len(reads)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var out io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		out = gz
	}
	w := NewWriter(out, enc)
	for _, rd := range reads {
		if err := w.Write(rd); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
