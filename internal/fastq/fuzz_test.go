package fastq

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReaderNext drives the FASTQ parser with arbitrary bytes under
// both quality encodings and asserts the Reader's contract: Next never
// panics and every call returns either an error or a read that passes
// its own Validate (non-empty sequence, matching quality length,
// qualities within [0, MaxQuality]). io.EOF must be sticky, and a
// well-formed stream must round-trip through the Writer.
//
// The checked-in corpus (testdata/fuzz/FuzzReaderNext) seeds the
// historical failure classes: truncated records, CRLF line endings,
// mismatched sequence/quality lengths, bad Phred bytes, and empty
// sequence lines.
func FuzzReaderNext(f *testing.F) {
	f.Add([]byte("@r1\nACGT\n+\nIIII\n"), false)
	f.Add([]byte("@r1\r\nACGT\r\n+\r\nIIII\r\n"), false)     // CRLF endings
	f.Add([]byte("@r1\nACGT\n+\nIII\n"), false)              // qual shorter than seq
	f.Add([]byte("@r1\nACGT\n+\n"), false)                   // truncated: missing qual line
	f.Add([]byte("@r1\nACGT\n"), false)                      // truncated: missing separator
	f.Add([]byte("@r1\n\n+\n\n"), false)                     // empty sequence line
	f.Add([]byte("@r1\nACGT\n+\n\x01\x02\x03\x04\n"), false) // Phred bytes below offset
	f.Add([]byte("@r1\nACGT\n+\nIIII"), false)               // no trailing newline
	f.Add([]byte("@r1\nAXGT\n+\nIIII\n"), false)             // invalid base
	f.Add([]byte("rubbish\nACGT\n+\nIIII\n"), false)         // header without '@'
	f.Add([]byte("@r1\nACGT\n+\nhhhh\n@r2\nAC\n+\nhh\n"), true)
	f.Add([]byte("@r1\nACGT\n+\nIIII\n@r2\nACGTA\n+\nIIIII\n"), false)
	f.Add([]byte(""), false)

	f.Fuzz(func(t *testing.T, data []byte, phred64 bool) {
		enc := Sanger
		if phred64 {
			enc = Illumina13
		}
		r := NewReader(bytes.NewReader(data), enc)
		var parsed []*Read
		for i := 0; i < 10000; i++ {
			rd, err := r.Next()
			if err != nil {
				if rd != nil {
					t.Fatalf("Next returned both a read and error %v", err)
				}
				if errors.Is(err, io.EOF) {
					// EOF must be sticky.
					if _, err2 := r.Next(); !errors.Is(err2, io.EOF) {
						t.Fatalf("Next after EOF = %v, want io.EOF", err2)
					}
				}
				break
			}
			if verr := rd.Validate(); verr != nil {
				t.Fatalf("Next returned an invalid read: %v", verr)
			}
			for _, q := range rd.Qual {
				if q > MaxQuality {
					t.Fatalf("quality %d above MaxQuality %d", q, MaxQuality)
				}
			}
			parsed = append(parsed, rd)
		}
		if len(parsed) == 0 {
			return
		}
		// Round-trip: anything the parser accepts, the writer must emit
		// in a form the parser accepts again, record for record.
		var buf bytes.Buffer
		w := NewWriter(&buf, enc)
		for _, rd := range parsed {
			if err := w.Write(rd); err != nil {
				t.Fatalf("Write of parsed read failed: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(bytes.NewReader(buf.Bytes()), enc)
		if err != nil {
			t.Fatalf("re-parse of written records failed: %v", err)
		}
		if len(again) != len(parsed) {
			t.Fatalf("round-trip lost records: %d -> %d", len(parsed), len(again))
		}
		for i := range parsed {
			if !bytes.Equal(parsed[i].Seq.Bytes(), again[i].Seq.Bytes()) {
				t.Fatalf("record %d: sequence changed in round-trip", i)
			}
			if !bytes.Equal(parsed[i].Qual, again[i].Qual) {
				t.Fatalf("record %d: qualities changed in round-trip", i)
			}
		}
	})
}
