package fastq

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gnumap/internal/dna"
)

// truncatedFixture writes a gzipped FASTQ of n reads, then cuts the
// compressed file down to frac of its bytes — the shape of a partial
// download or an interrupted writer.
func truncatedFixture(t *testing.T, n int, frac float64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	reads := make([]*Read, n)
	for i := range reads {
		seq := make([]byte, 50)
		qual := make([]uint8, 50)
		for j := range seq {
			seq[j] = "ACGT"[rng.Intn(4)]
			qual[j] = uint8(20 + rng.Intn(20))
		}
		s, err := dna.ParseSeqBytes(seq)
		if err != nil {
			t.Fatal(err)
		}
		reads[i] = &Read{Name: fmt.Sprintf("read_%d", i), Seq: s, Qual: qual}
	}
	path := filepath.Join(t.TempDir(), "cut.fq.gz")
	if err := WriteFile(path, reads, Sanger); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := int(float64(len(blob)) * frac)
	if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func checkTruncatedError(t *testing.T, err error, path string) {
	t.Helper()
	if err == nil {
		t.Fatal("truncated gzip accepted without error")
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("error %v (%T), want *TruncatedError", err, err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("error does not unwrap to io.ErrUnexpectedEOF: %v", err)
	}
	if te.Path != path {
		t.Errorf("Path = %q, want %q", te.Path, path)
	}
	if te.Records <= 0 {
		t.Errorf("Records = %d, want > 0 (the cut is past the first record)", te.Records)
	}
	want := fmt.Sprintf("fastq: truncated gzip input in %s after record %d", path, te.Records)
	if te.Error() != want {
		t.Errorf("message %q, want %q", te.Error(), want)
	}
}

// TestReadFileTruncatedGzip: the slice reader turns a mid-member gzip
// cut into the typed error naming the file and the survivor count.
func TestReadFileTruncatedGzip(t *testing.T) {
	path := truncatedFixture(t, 200, 0.6)
	_, err := ReadFile(path, Sanger)
	checkTruncatedError(t, err, path)
}

// TestFileNextTruncatedGzip: the streaming source surfaces the same
// typed error, with Records equal to the reads already yielded.
func TestFileNextTruncatedGzip(t *testing.T) {
	path := truncatedFixture(t, 200, 0.6)
	fl, err := Open(path, Sanger)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	var n int64
	for {
		_, err = fl.Next()
		if err != nil {
			break
		}
		n++
	}
	checkTruncatedError(t, err, path)
	var te *TruncatedError
	errors.As(err, &te)
	if te.Records != n {
		t.Errorf("Records = %d, but %d reads were yielded", te.Records, n)
	}
	// Exhausted source keeps erroring rather than faking EOF.
	if _, err2 := fl.Next(); err2 == nil {
		t.Error("Next after truncation error returned nil error")
	}
}

// TestTruncatedErrorStreamMessage: an anonymous stream (no path) still
// renders a useful message.
func TestTruncatedErrorStreamMessage(t *testing.T) {
	te := &TruncatedError{Records: 42}
	if !strings.Contains(te.Error(), "in stream after record 42") {
		t.Errorf("anonymous-stream message: %q", te.Error())
	}
}

// TestPlainTruncatedFastqStillErrors: a truncated *uncompressed* file
// keeps its pre-existing parse-error behavior — the typed gzip error is
// specifically about compressed transport cuts.
func TestPlainTruncatedFastqStillErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cut.fq")
	if err := os.WriteFile(path, []byte("@r1\nACGT\n+\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path, Sanger)
	if err == nil {
		t.Fatal("truncated plain fastq accepted")
	}
	var te *TruncatedError
	if errors.As(err, &te) {
		t.Errorf("plain-file truncation produced gzip TruncatedError: %v", err)
	}
}
