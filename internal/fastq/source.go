package fastq

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gnumap/internal/obs"
)

// Source yields reads one at a time until io.EOF — the streaming
// counterpart of a materialized []*Read. *Reader satisfies it, so a
// FASTQ stream plugs straight into the engine's bounded pipeline
// without ever holding more than the in-flight batches in memory.
type Source interface {
	// Next returns the next read, io.EOF at the end of the stream, or
	// a parse/transport error. After a non-nil error the source is
	// exhausted; further calls keep returning an error.
	Next() (*Read, error)
}

// sliceSource adapts an in-memory read slice to a Source (tests,
// benchmarks, and callers that already materialized their reads).
type sliceSource struct {
	reads []*Read
	pos   int
}

// SliceSource returns a Source yielding the given reads in order.
func SliceSource(reads []*Read) Source {
	return &sliceSource{reads: reads}
}

func (s *sliceSource) Next() (*Read, error) {
	if s.pos >= len(s.reads) {
		return nil, io.EOF
	}
	rd := s.reads[s.pos]
	s.pos++
	return rd, nil
}

// File is a streaming FASTQ file handle: a Source backed by an open
// file, transparently gunzipping *.gz. It counts records and bases as
// they stream; Close publishes the volume and the open→close wall time
// to the process-wide registry as io.fastq.read.{records,bases} and
// io.fastq.stream.seconds.
type File struct {
	f      *os.File
	gz     *gzip.Reader
	r      *Reader
	path   string
	opened time.Time

	records, bases int64
}

// Open opens the named FASTQ file (or .gz) for streaming.
func Open(path string, enc Encoding) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fl := &File{f: f, path: path, opened: time.Now()}
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fastq: %s: %w", path, err)
		}
		fl.gz = gz
		r = gz
	}
	fl.r = NewReader(r, enc)
	return fl, nil
}

// Next returns the next read or io.EOF.
func (fl *File) Next() (*Read, error) {
	rd, err := fl.r.Next()
	if err != nil {
		if fl.gz != nil && errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, &TruncatedError{Path: fl.path, Records: fl.records}
		}
		return nil, err
	}
	fl.records++
	fl.bases += int64(len(rd.Seq))
	return rd, nil
}

// Records returns the number of reads streamed so far.
func (fl *File) Records() int64 { return fl.records }

// Close closes the file and publishes the streamed volume.
func (fl *File) Close() error {
	obs.Default().Counter("io.fastq.read.records").Add(fl.records)
	obs.Default().Counter("io.fastq.read.bases").Add(fl.bases)
	obs.Default().Timer("io.fastq.stream.seconds").ObserveDuration(time.Since(fl.opened))
	var gzErr error
	if fl.gz != nil {
		gzErr = fl.gz.Close()
	}
	if err := fl.f.Close(); err != nil {
		return err
	}
	return gzErr
}
