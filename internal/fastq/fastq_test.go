package fastq

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadBasic(t *testing.T) {
	in := "@read1 extra metadata\nACGT\n+\nIIII\n"
	reads, err := ReadAll(strings.NewReader(in), Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 1 {
		t.Fatalf("got %d reads, want 1", len(reads))
	}
	r := reads[0]
	if r.Name != "read1" {
		t.Errorf("name = %q, want read1", r.Name)
	}
	if r.Seq.String() != "ACGT" {
		t.Errorf("seq = %q", r.Seq.String())
	}
	for i, q := range r.Qual {
		if q != 40 { // 'I' is 73; 73-33 = 40
			t.Errorf("qual[%d] = %d, want 40", i, q)
		}
	}
}

func TestReadMultipleAndPlusWithName(t *testing.T) {
	in := "@a\nAC\n+a\n!I\n@b\nGT\n+\nII\n"
	reads, err := ReadAll(strings.NewReader(in), Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 {
		t.Fatalf("got %d reads, want 2", len(reads))
	}
	if reads[0].Qual[0] != 0 || reads[0].Qual[1] != 40 {
		t.Errorf("quals = %v", reads[0].Qual)
	}
}

func TestIllumina13Encoding(t *testing.T) {
	// '@' is 64 -> Q0 in Phred+64; 'h' is 104 -> Q40.
	in := "@r\nAC\n+\n@h\n"
	reads, err := ReadAll(strings.NewReader(in), Illumina13)
	if err != nil {
		t.Fatal(err)
	}
	if reads[0].Qual[0] != 0 || reads[0].Qual[1] != 40 {
		t.Errorf("quals = %v, want [0 40]", reads[0].Qual)
	}
}

func TestQualityClamp(t *testing.T) {
	// '~' is 126 -> Q93 in Sanger, clamps to MaxQuality.
	reads, err := ReadAll(strings.NewReader("@r\nA\n+\n~\n"), Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if reads[0].Qual[0] != MaxQuality {
		t.Errorf("qual = %d, want %d", reads[0].Qual[0], MaxQuality)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing @", "read\nACGT\n+\nIIII\n"},
		{"truncated after header", "@r\n"},
		{"truncated after seq", "@r\nACGT\n"},
		{"truncated after plus", "@r\nACGT\n+\n"},
		{"bad separator", "@r\nACGT\nX\nIIII\n"},
		{"qual length mismatch", "@r\nACGT\n+\nII\n"},
		{"invalid base", "@r\nAC!T\n+\nIIII\n"},
		{"qual below offset", "@r\nA\n+\n \n"}, // space=32 < 33
	}
	for _, c := range cases {
		if _, err := ReadAll(strings.NewReader(c.in), Sanger); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEOFBehaviour(t *testing.T) {
	r := NewReader(strings.NewReader(""), Sanger)
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty: %v, want EOF", err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("repeat Next: %v, want EOF", err)
	}
}

func TestNoTrailingNewline(t *testing.T) {
	reads, err := ReadAll(strings.NewReader("@r\nAC\n+\nII"), Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 1 || reads[0].Qual[1] != 40 {
		t.Errorf("parse without trailing newline failed: %+v", reads)
	}
}

func TestErrorProb(t *testing.T) {
	cases := []struct {
		q    uint8
		want float64
	}{
		{0, 1.0}, {10, 0.1}, {20, 0.01}, {30, 0.001}, {40, 0.0001},
	}
	for _, c := range cases {
		if got := ErrorProb(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ErrorProb(%d) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestPhredErrorProbRoundTrip(t *testing.T) {
	f := func(q uint8) bool {
		q = q % (MaxQuality + 1)
		return PhredFromErrorProb(ErrorProb(q)) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if PhredFromErrorProb(0) != MaxQuality {
		t.Error("zero error probability must clamp to MaxQuality")
	}
	if PhredFromErrorProb(2.0) != 0 {
		t.Error("error probability > 1 must clamp to 0")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	orig := "@r1\nACGTN\n+\n!+5?I\n@r2\nTT\n+\nII\n"
	reads, err := ReadAll(strings.NewReader(orig), Sanger)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, Sanger)
	for _, rd := range reads {
		if err := w.Write(rd); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != orig {
		t.Errorf("round trip:\n got %q\nwant %q", buf.String(), orig)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	w := NewWriter(io.Discard, Sanger)
	if err := w.Write(&Read{Name: "x"}); err == nil {
		t.Error("empty read must be rejected")
	}
	bad := &Read{Name: "x", Qual: []uint8{1}}
	bad.Seq = append(bad.Seq, 0, 1)
	if err := w.Write(bad); err == nil {
		t.Error("length mismatch must be rejected")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/reads.fq"
	reads, err := ReadAll(strings.NewReader("@a\nACGT\n+\nIIII\n"), Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, reads, Sanger); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Seq.String() != "ACGT" {
		t.Errorf("file round trip mismatch: %+v", back)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	path := t.TempDir() + "/reads.fq.gz"
	reads, err := ReadAll(strings.NewReader("@a\nACGT\n+\nIIII\n"), Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, reads, Sanger); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("output is not gzip")
	}
	back, err := ReadFile(path, Sanger)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Seq.String() != "ACGT" {
		t.Errorf("gzip round trip mismatch: %+v", back)
	}
}

// The parser must never panic, whatever bytes arrive.
func TestParserRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, err := ReadAll(bytes.NewReader(raw), Sanger)
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
