package genome

import (
	"encoding/binary"
	"fmt"
	"math"

	"gnumap/internal/dna"
)

// Stateful is implemented by accumulators that can serialize their
// per-position state for transport between cluster nodes (the paper's
// MPI genome-state communication). LoadState requires an accumulator of
// the same mode and length; callers must quiesce writers around both
// calls.
type Stateful interface {
	// State serializes the accumulator's per-position state.
	State() ([]byte, error)
	// LoadStateBytes overwrites the accumulator from State output.
	LoadStateBytes(data []byte) error
}

// State blobs use a compact little-endian binary layout rather than
// gob: accumulator state is dominated by large float32/uint8 arrays,
// which gob encodes element-by-element (~5 bytes and ~100ns per float).
// The raw layout is 4 bytes per float, encodes in one pass, and is what
// makes mid-run checkpoint snapshots cheap enough to overlap with
// mapping. Layout:
//
//	magic "GST" + mode tag byte + version byte
//	u64 accumulator length (positions)
//	u64 float count + that many float32 (LE bit patterns)
//	u64 byte count  + that many raw bytes
const (
	stateVersion = 1
	stateHdrLen  = 3 + 1 + 1 + 8
)

var stateMagic = [3]byte{'G', 'S', 'T'}

// encodeState serializes one accumulator's arrays under its mode tag.
func encodeState(tag byte, length int, f []float32, b []uint8) []byte {
	buf := make([]byte, 0, stateHdrLen+16+4*len(f)+len(b))
	buf = append(buf, stateMagic[0], stateMagic[1], stateMagic[2], tag, stateVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(length))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(f)))
	buf = append(buf, make([]byte, 4*len(f))...)
	fb := buf[len(buf)-4*len(f):]
	for i, v := range f {
		binary.LittleEndian.PutUint32(fb[4*i:], math.Float32bits(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(b)))
	return append(buf, b...)
}

// decodeState validates the header against the expected tag and element
// counts and fills f and b in place (copy semantics, like the encoders'
// callers always had).
func decodeState(data []byte, tag byte, length int, f []float32, b []uint8) error {
	if len(data) < stateHdrLen {
		return fmt.Errorf("genome: decode state: %d bytes is shorter than the header", len(data))
	}
	if data[0] != stateMagic[0] || data[1] != stateMagic[1] || data[2] != stateMagic[2] {
		return fmt.Errorf("genome: decode state: bad magic %q", data[:3])
	}
	if data[3] != tag {
		return fmt.Errorf("genome: decode state: mode tag %q, want %q", data[3], tag)
	}
	if data[4] != stateVersion {
		return fmt.Errorf("genome: decode state: version %d, want %d", data[4], stateVersion)
	}
	if got := binary.LittleEndian.Uint64(data[5:]); got != uint64(length) {
		return fmt.Errorf("genome: state for length %d, have %d", got, length)
	}
	rest := data[stateHdrLen:]
	if len(rest) < 8 {
		return fmt.Errorf("genome: decode state: truncated float section")
	}
	nf := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	if nf != uint64(len(f)) || uint64(len(rest)) < 4*nf {
		return fmt.Errorf("genome: decode state: %d floats, want %d", nf, len(f))
	}
	for i := range f {
		f[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
	}
	rest = rest[4*nf:]
	if len(rest) < 8 {
		return fmt.Errorf("genome: decode state: truncated byte section")
	}
	nb := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	if nb != uint64(len(b)) || uint64(len(rest)) != nb {
		return fmt.Errorf("genome: decode state: %d bytes, want %d", nb, len(b))
	}
	copy(b, rest)
	return nil
}

// State implements Stateful. The wire format predates the plane-major
// in-memory layout and stays position-major (five consecutive channel
// floats per position), so state blobs — including checkpoint files
// written before the transpose — remain byte-compatible across
// versions. The transpose costs one pass over an array the encoder
// copies anyway.
func (a *normAcc) State() ([]byte, error) {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	inter := make([]float32, len(a.data))
	for k := 0; k < dna.NumChannels; k++ {
		pk := a.plane(k)
		for pos, v := range pk {
			inter[pos*dna.NumChannels+k] = v
		}
	}
	return encodeState('N', a.length, inter, nil), nil
}

// LoadStateBytes implements Stateful (position-major wire format; see
// State).
func (a *normAcc) LoadStateBytes(data []byte) error {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	inter := make([]float32, len(a.data))
	if err := decodeState(data, 'N', a.length, inter, nil); err != nil {
		return err
	}
	for k := 0; k < dna.NumChannels; k++ {
		pk := a.plane(k)
		for pos := range pk {
			pk[pos] = inter[pos*dna.NumChannels+k]
		}
	}
	return nil
}

// State implements Stateful.
func (a *charDiscAcc) State() ([]byte, error) {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return encodeState('C', a.length, a.total, a.frac), nil
}

// LoadStateBytes implements Stateful.
func (a *charDiscAcc) LoadStateBytes(data []byte) error {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return decodeState(data, 'C', a.length, a.total, a.frac)
}

// State implements Stateful. Codebook bytes travel directly — both ends
// share the deterministic default codebook, the property the paper's
// table-lookup reduction relies on.
func (a *centDiscAcc) State() ([]byte, error) {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return encodeState('D', a.length, a.total, a.code), nil
}

// LoadStateBytes implements Stateful.
func (a *centDiscAcc) LoadStateBytes(data []byte) error {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return decodeState(data, 'D', a.length, a.total, a.code)
}

// CloneEmpty returns a fresh accumulator with the same mode and length.
func CloneEmpty(a Accumulator) (Accumulator, error) {
	return New(a.Mode(), a.Len())
}

// SnapshotState serializes the accumulator's full current state
// WITHOUT consuming it — the mid-run checkpoint primitive. For a
// *Sharded accumulator this matters: Combine/State fold and release
// the outstanding worker shards, but mapping workers resolve their
// shard reference once and keep writing to it across batches, so a
// destructive fold mid-run would silently drop every subsequent write.
// SnapshotState instead merges the base and the live shards into a
// scratch copy and serializes that, leaving every shard in place.
//
// Callers must quiesce writers for the duration of the call (the
// streaming pipeline's checkpoint barrier does exactly that).
func SnapshotState(acc Accumulator) ([]byte, error) {
	if s, ok := acc.(*Sharded); ok {
		return s.snapshotState()
	}
	st, ok := acc.(Stateful)
	if !ok {
		return nil, fmt.Errorf("genome: mode %v is not serializable", acc.Mode())
	}
	return st.State()
}

func (s *Sharded) snapshotState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shards) == 0 {
		return s.base.(Stateful).State()
	}
	scratch, err := New(s.mode, s.length)
	if err != nil {
		return nil, err
	}
	if err := s.snapshotIntoLocked(scratch); err != nil {
		return nil, err
	}
	return scratch.(Stateful).State()
}

// snapshotIntoLocked merges the base and every live shard into scratch,
// in a fixed order (base first, then shards in registration order).
// Incremental calling depends on this order being deterministic across
// a run: a genome region untouched between two snapshots then holds
// bit-identical values in both, so its cached sweep result stays valid.
func (s *Sharded) snapshotIntoLocked(scratch Accumulator) error {
	if err := scratch.Merge(s.base); err != nil {
		return err
	}
	for _, sh := range s.shards {
		if err := scratch.Merge(sh); err != nil {
			return err
		}
	}
	return nil
}

// reset zeroes an accumulator's per-position state in place, so a
// scratch copy can be reused across snapshots without reallocating.
func reset(acc Accumulator) error {
	switch a := acc.(type) {
	case *normAcc:
		clear(a.data)
	case *charDiscAcc:
		clear(a.total)
		clear(a.frac)
	case *centDiscAcc:
		clear(a.total)
		clear(a.code)
	default:
		return fmt.Errorf("genome: %T cannot be reset", acc)
	}
	return nil
}

// SnapshotInto overwrites scratch with acc's full current state WITHOUT
// consuming acc's outstanding worker shards — the non-destructive read
// the incremental caller uses mid-run (a destructive Combine would
// orphan the shard references mapping workers keep across batches, as
// SnapshotState documents). scratch must be a plain (non-sharded)
// accumulator of the same mode and length; writers must be quiesced for
// the duration of the call. For a non-sharded acc this is a plain copy
// (merge into zeroed state), bit-identical to acc for NORM and
// CENTDISC; CHARDISC re-quantizes byte fractions exactly as every
// existing snapshot/merge path does.
func SnapshotInto(acc, scratch Accumulator) error {
	if scratch == nil {
		return fmt.Errorf("genome: nil snapshot scratch")
	}
	if err := reset(scratch); err != nil {
		return err
	}
	if s, ok := acc.(*Sharded); ok {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.snapshotIntoLocked(scratch)
	}
	return scratch.Merge(acc)
}
