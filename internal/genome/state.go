package genome

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Stateful is implemented by accumulators that can serialize their
// per-position state for transport between cluster nodes (the paper's
// MPI genome-state communication). LoadState requires an accumulator of
// the same mode and length; callers must quiesce writers around both
// calls.
type Stateful interface {
	// State serializes the accumulator's per-position state.
	State() ([]byte, error)
	// LoadStateBytes overwrites the accumulator from State output.
	LoadStateBytes(data []byte) error
}

// normState is the gob shape of a NORM accumulator.
type normState struct {
	Length int
	Data   []float32
}

// State implements Stateful.
func (a *normAcc) State() ([]byte, error) {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return gobEncode(normState{Length: a.length, Data: a.data})
}

// LoadStateBytes implements Stateful.
func (a *normAcc) LoadStateBytes(data []byte) error {
	var st normState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if st.Length != a.length || len(st.Data) != len(a.data) {
		return fmt.Errorf("genome: NORM state for length %d, have %d", st.Length, a.length)
	}
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	copy(a.data, st.Data)
	return nil
}

// charDiscState is the gob shape of a CHARDISC accumulator.
type charDiscState struct {
	Length int
	Total  []float32
	Frac   []uint8
}

// State implements Stateful.
func (a *charDiscAcc) State() ([]byte, error) {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return gobEncode(charDiscState{Length: a.length, Total: a.total, Frac: a.frac})
}

// LoadStateBytes implements Stateful.
func (a *charDiscAcc) LoadStateBytes(data []byte) error {
	var st charDiscState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if st.Length != a.length || len(st.Total) != len(a.total) || len(st.Frac) != len(a.frac) {
		return fmt.Errorf("genome: CHARDISC state for length %d, have %d", st.Length, a.length)
	}
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	copy(a.total, st.Total)
	copy(a.frac, st.Frac)
	return nil
}

// centDiscState is the gob shape of a CENTDISC accumulator. Codebook
// bytes travel directly — both ends share the deterministic default
// codebook, the property the paper's table-lookup reduction relies on.
type centDiscState struct {
	Length int
	Total  []float32
	Code   []uint8
}

// State implements Stateful.
func (a *centDiscAcc) State() ([]byte, error) {
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return gobEncode(centDiscState{Length: a.length, Total: a.total, Code: a.code})
}

// LoadStateBytes implements Stateful.
func (a *centDiscAcc) LoadStateBytes(data []byte) error {
	var st centDiscState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if st.Length != a.length || len(st.Total) != len(a.total) || len(st.Code) != len(a.code) {
		return fmt.Errorf("genome: CENTDISC state for length %d, have %d", st.Length, a.length)
	}
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	copy(a.total, st.Total)
	copy(a.code, st.Code)
	return nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("genome: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("genome: decode state: %w", err)
	}
	return nil
}

// CloneEmpty returns a fresh accumulator with the same mode and length.
func CloneEmpty(a Accumulator) (Accumulator, error) {
	return New(a.Mode(), a.Len())
}
