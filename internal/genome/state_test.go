package genome

import (
	"math"
	"testing"
)

func TestStateRoundTripAllModes(t *testing.T) {
	for _, m := range allModes() {
		a, err := New(m, 300)
		if err != nil {
			t.Fatal(err)
		}
		a.AddRange(10, []Vec{{0.7, 0.3, 0, 0, 0}, {0, 0, 1, 0, 0}}, 2)
		st, ok := a.(Stateful)
		if !ok {
			t.Fatalf("%v does not implement Stateful", m)
		}
		data, err := st.State()
		if err != nil {
			t.Fatal(err)
		}
		b, err := CloneEmpty(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.(Stateful).LoadStateBytes(data); err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < 300; pos++ {
			va, vb := a.Vector(pos), b.Vector(pos)
			for k := range va {
				if math.Abs(va[k]-vb[k]) > 1e-9 {
					t.Fatalf("%v pos %d ch %d: %v vs %v", m, pos, k, va[k], vb[k])
				}
			}
		}
	}
}

func TestLoadStateBytesRejectsMismatch(t *testing.T) {
	a, _ := New(Norm, 10)
	b, _ := New(Norm, 20)
	st, _ := a.(Stateful)
	data, err := st.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.(Stateful).LoadStateBytes(data); err == nil {
		t.Error("length mismatch accepted")
	}
	c, _ := New(CharDisc, 10)
	if err := c.(Stateful).LoadStateBytes(data); err == nil {
		t.Error("mode mismatch accepted")
	}
	if err := b.(Stateful).LoadStateBytes([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
}
