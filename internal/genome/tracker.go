package genome

import (
	"fmt"
	"sync/atomic"
)

// RegionTracker counts accumulator writes per fixed-size genome region,
// so the incremental caller can tell which regions changed between two
// quiesce points: a region whose count is equal in two snapshots
// received no writes in between, so its accumulator state — and
// therefore its cached sweep result — is unchanged. Counters are plain
// atomics; Touch sits on the mapper's per-alignment hot path and adds
// one atomic add per spanned region.
type RegionTracker struct {
	length     int
	regionSize int
	counts     []atomic.Int64
}

// NewRegionTracker tracks writes to a genome of the given length in
// regions of regionSize positions (the last region may be short).
func NewRegionTracker(length, regionSize int) (*RegionTracker, error) {
	if length <= 0 || regionSize <= 0 {
		return nil, fmt.Errorf("genome: region tracker length %d, region size %d", length, regionSize)
	}
	n := (length + regionSize - 1) / regionSize
	return &RegionTracker{length: length, regionSize: regionSize, counts: make([]atomic.Int64, n)}, nil
}

// Regions returns the number of tracked regions.
func (t *RegionTracker) Regions() int { return len(t.counts) }

// RegionSize returns the region width in positions.
func (t *RegionTracker) RegionSize() int { return t.regionSize }

// Bounds returns region i's [from, to) position range.
func (t *RegionTracker) Bounds(i int) (from, to int) {
	from = i * t.regionSize
	to = from + t.regionSize
	if to > t.length {
		to = t.length
	}
	return from, to
}

// Touch records a write of n positions starting at start (clamped to
// the genome, mirroring AddRange's out-of-range tolerance).
func (t *RegionTracker) Touch(start, n int) {
	from, to, _, ok := clampRange(start, n, t.length)
	if !ok {
		return
	}
	for r := from / t.regionSize; r <= (to-1)/t.regionSize; r++ {
		t.counts[r].Add(1)
	}
}

// Snapshot copies the current per-region write counts into dst
// (allocating when dst is short). Coherent only while writers are
// quiesced, like every other snapshot in this package.
func (t *RegionTracker) Snapshot(dst []int64) []int64 {
	if cap(dst) < len(t.counts) {
		dst = make([]int64, len(t.counts))
	}
	dst = dst[:len(t.counts)]
	for i := range t.counts {
		dst[i] = t.counts[i].Load()
	}
	return dst
}
