package genome

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"gnumap/internal/dna"
)

func allModes() []Mode { return []Mode{Norm, CharDisc, CentDisc} }

func TestNewValidation(t *testing.T) {
	if _, err := New(Norm, 0); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := New(Mode(9), 10); err == nil {
		t.Error("unknown mode accepted")
	}
	for _, m := range allModes() {
		a, err := New(m, 100)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if a.Len() != 100 || a.Mode() != m {
			t.Errorf("%v: Len/Mode wrong", m)
		}
	}
}

func TestModeString(t *testing.T) {
	if Norm.String() != "NORM" || CharDisc.String() != "CHARDISC" || CentDisc.String() != "CENTDISC" {
		t.Error("mode names wrong")
	}
	if Mode(7).String() != "Mode(7)" {
		t.Error("unknown mode formatting wrong")
	}
}

func TestNormExactAccumulation(t *testing.T) {
	a, err := New(Norm, 10)
	if err != nil {
		t.Fatal(err)
	}
	zs := []Vec{{0.9, 0.1, 0, 0, 0}, {0, 0, 0.5, 0.5, 0}}
	a.AddRange(3, zs, 1.0)
	a.AddRange(3, zs, 0.5)
	v := a.Vector(3)
	if math.Abs(v[dna.ChA]-1.35) > 1e-6 || math.Abs(v[dna.ChC]-0.15) > 1e-6 {
		t.Errorf("pos 3 vector = %v", v)
	}
	v = a.Vector(4)
	if math.Abs(v[dna.ChG]-0.75) > 1e-6 || math.Abs(v[dna.ChT]-0.75) > 1e-6 {
		t.Errorf("pos 4 vector = %v", v)
	}
	if a.Total(0) != 0 {
		t.Error("untouched position has mass")
	}
	if math.Abs(a.Total(3)-1.5) > 1e-6 {
		t.Errorf("Total(3) = %v, want 1.5", a.Total(3))
	}
}

func TestAddRangeClipping(t *testing.T) {
	for _, m := range allModes() {
		a, err := New(m, 5)
		if err != nil {
			t.Fatal(err)
		}
		zs := make([]Vec, 4)
		for i := range zs {
			zs[i] = Vec{1, 0, 0, 0, 0}
		}
		a.AddRange(-2, zs, 1) // covers -2..1, only 0..1 land
		a.AddRange(3, zs, 1)  // covers 3..6, only 3..4 land
		a.AddRange(50, zs, 1) // entirely outside
		for pos, want := range map[int]float64{0: 1, 1: 1, 2: 0, 3: 1, 4: 1} {
			got := a.Total(pos)
			if math.Abs(got-want) > 0.05 {
				t.Errorf("%v: Total(%d) = %v, want %v", m, pos, got, want)
			}
		}
	}
}

// All three modes should agree closely after a handful of updates to a
// lightly covered position.
func TestModesAgreeOnLightCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	accs := make([]Accumulator, 0, 3)
	for _, m := range allModes() {
		a, err := New(m, 50)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	for step := 0; step < 12; step++ {
		start := rng.Intn(30)
		zs := make([]Vec, 10)
		for i := range zs {
			// Each absolute position always receives the same dominant
			// base, as real coverage of a non-SNP site would; CENTDISC
			// is only expected to track such consistent signals (the
			// paper shows it collapses on anything else).
			base := (start + i) % 4
			zs[i][base] = 0.95
			zs[i][(base+1)%4] = 0.05
		}
		for _, a := range accs {
			a.AddRange(start, zs, 1)
		}
	}
	for pos := 0; pos < 50; pos++ {
		ref := accs[0].Vector(pos) // NORM is exact
		total := accs[0].Total(pos)
		for _, a := range accs[1:] {
			v := a.Vector(pos)
			for k := 0; k < dna.NumChannels; k++ {
				// CHARDISC quantizes to total/255 units; CENTDISC to the
				// codebook, whose worst-case cell radius is larger.
				tol := 0.02*total + 0.15*total + 1e-6
				if math.Abs(v[k]-ref[k]) > tol {
					t.Errorf("%v pos %d ch %d: %v vs NORM %v (total %v)",
						a.Mode(), pos, k, v[k], ref[k], total)
				}
			}
		}
	}
}

func TestCharDiscFractionsSumAndReconstruct(t *testing.T) {
	a, err := New(CharDisc, 4)
	if err != nil {
		t.Fatal(err)
	}
	zs := []Vec{{0.9, 0.1, 0, 0, 0}}
	a.AddRange(1, zs, 1)
	v := a.Vector(1)
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("reconstructed sum = %v, want 1", sum)
	}
	if math.Abs(v[dna.ChA]-0.9) > 0.01 {
		t.Errorf("v[A] = %v, want ~0.9", v[dna.ChA])
	}
}

// The paper's saturation analysis: after 254 A's and one T, the T
// signal survives, but sub-1/255 contributions to a huge total vanish.
func TestCharDiscSaturation(t *testing.T) {
	a, err := New(CharDisc, 1)
	if err != nil {
		t.Fatal(err)
	}
	oneA := []Vec{{1, 0, 0, 0, 0}}
	oneT := []Vec{{0, 0, 0, 1, 0}}
	for i := 0; i < 254; i++ {
		a.AddRange(0, oneA, 1)
	}
	a.AddRange(0, oneT, 1)
	v := a.Vector(0)
	if v[dna.ChT] < 0.5 {
		t.Errorf("T signal lost at 255 coverage: %v", v)
	}
	// Push coverage to 2550: each new unit is less than half a
	// quantization step for the T channel, but largest-remainder
	// rounding keeps it alive approximately.
	for i := 0; i < 2295; i++ {
		a.AddRange(0, oneA, 1)
	}
	v = a.Vector(0)
	if a.Total(0) != 2550 {
		t.Fatalf("total = %v", a.Total(0))
	}
	if v[dna.ChA] < 2500 {
		t.Errorf("A mass = %v, want ~2540", v[dna.ChA])
	}
}

// A contribution far smaller than one quantization unit is erased —
// the discretization failure mode the paper warns about.
func TestCharDiscTinyContributionVanishes(t *testing.T) {
	a, err := New(CharDisc, 1)
	if err != nil {
		t.Fatal(err)
	}
	big := []Vec{{1000, 0, 0, 0, 0}}
	a.AddRange(0, big, 1)
	tiny := []Vec{{0, 0.1, 0, 0, 0}} // 0.1/1000.1 << 1/255
	a.AddRange(0, tiny, 1)
	v := a.Vector(0)
	if v[dna.ChC] > 1 {
		// One quantization unit is total/255 ≈ 3.9; losing the 0.1 is
		// expected, gaining phantom mass > 1 unit is not.
		t.Errorf("C mass = %v after sub-unit addition", v[dna.ChC])
	}
}

func TestCentDiscPureBase(t *testing.T) {
	a, err := New(CentDisc, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.AddRange(0, []Vec{{0, 1, 0, 0, 0}}, 1)
	}
	v := a.Vector(0)
	if v[dna.ChC] < 9 {
		t.Errorf("pure C accumulation = %v, want ~10 in C", v)
	}
	if a.Total(0) != 10 {
		t.Errorf("total = %v", a.Total(0))
	}
}

func TestCentDiscTransitionMixtureResolved(t *testing.T) {
	// A 70/30 A/G mixture should land near a transition centroid.
	a, err := New(CentDisc, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.AddRange(0, []Vec{{0.7, 0, 0.3, 0, 0}}, 1)
	}
	v := a.Vector(0)
	if math.Abs(v[dna.ChA]-7) > 1.0 || math.Abs(v[dna.ChG]-3) > 1.0 {
		t.Errorf("A/G mixture = %v, want ~(7,·,3,·,·)", v)
	}
}

func TestCodebookIsStochastic(t *testing.T) {
	cb := DefaultCodebook()
	for i := 0; i < codebookSize; i++ {
		c := cb.Centroid(uint8(i))
		sum := 0.0
		for _, x := range c {
			if x < -1e-12 {
				t.Fatalf("centroid %d has negative weight %v", i, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("centroid %d sums to %v", i, sum)
		}
	}
}

func TestCodebookNearestIsIdempotent(t *testing.T) {
	cb := DefaultCodebook()
	for i := 0; i < codebookSize; i++ {
		c := cb.Centroid(uint8(i))
		n := cb.Nearest(&c, 1)
		// Duplicate centroids may shadow each other; require equal
		// distance, not equal index.
		cn := cb.Centroid(n)
		d := 0.0
		for k := range c {
			diff := c[k] - cn[k]
			d += diff * diff
		}
		if d > 1e-18 {
			t.Errorf("centroid %d maps to %d at distance %g", i, n, d)
		}
	}
}

func TestCodebookMergeTableMatchesDirect(t *testing.T) {
	cb := DefaultCodebook()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		i, j := uint8(rng.Intn(256)), uint8(rng.Intn(256))
		var avg Vec
		ci, cj := cb.Centroid(i), cb.Centroid(j)
		for k := range avg {
			avg[k] = (ci[k] + cj[k]) / 2
		}
		direct := cb.Centroid(cb.Nearest(&avg, 1))
		table := cb.Centroid(cb.MergeEqual(i, j))
		d := 0.0
		for k := range direct {
			diff := direct[k] - table[k]
			d += diff * diff
		}
		if d > 1e-18 {
			t.Errorf("merge table disagrees for (%d,%d)", i, j)
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	const L = 100000
	var mem [3]int64
	for i, m := range allModes() {
		a, err := New(m, L)
		if err != nil {
			t.Fatal(err)
		}
		mem[i] = a.MemoryBytes()
	}
	// Table II ordering: NORM > CHARDISC > CENTDISC.
	if !(mem[0] > mem[1] && mem[1] > mem[2]) {
		t.Errorf("memory ordering violated: NORM=%d CHARDISC=%d CENTDISC=%d", mem[0], mem[1], mem[2])
	}
	// NORM is 20 bytes/base exactly.
	if mem[0] != int64(L)*20 {
		t.Errorf("NORM bytes = %d, want %d", mem[0], L*20)
	}
	// CHARDISC is 9 bytes/base.
	if mem[1] != int64(L)*9 {
		t.Errorf("CHARDISC bytes = %d, want %d", mem[1], L*9)
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, m := range allModes() {
		single, err := New(m, 64)
		if err != nil {
			t.Fatal(err)
		}
		partA, _ := New(m, 64)
		partB, _ := New(m, 64)
		for step := 0; step < 30; step++ {
			start := rng.Intn(60)
			zs := []Vec{{rng.Float64(), rng.Float64(), 0, 0, 0}}
			single.AddRange(start, zs, 1)
			if step%2 == 0 {
				partA.AddRange(start, zs, 1)
			} else {
				partB.AddRange(start, zs, 1)
			}
		}
		if err := partA.Merge(partB); err != nil {
			t.Fatalf("%v merge: %v", m, err)
		}
		for pos := 0; pos < 64; pos++ {
			ts, tm := single.Total(pos), partA.Total(pos)
			if math.Abs(ts-tm) > 1e-4*(1+ts) {
				t.Errorf("%v pos %d: merged total %v vs sequential %v", m, pos, tm, ts)
			}
			if m == Norm {
				vs, vm := single.Vector(pos), partA.Vector(pos)
				for k := range vs {
					if math.Abs(vs[k]-vm[k]) > 1e-4 {
						t.Errorf("NORM pos %d ch %d: %v vs %v", pos, k, vm[k], vs[k])
					}
				}
			}
		}
	}
}

func TestMergeRejectsMismatch(t *testing.T) {
	a, _ := New(Norm, 10)
	b, _ := New(Norm, 20)
	if err := a.Merge(b); err == nil {
		t.Error("length mismatch accepted")
	}
	c, _ := New(CharDisc, 10)
	if err := a.Merge(c); err == nil {
		t.Error("mode mismatch accepted")
	}
}

func TestConcurrentAddRange(t *testing.T) {
	for _, m := range allModes() {
		a, err := New(m, 20000)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		workers := 8
		perWorker := 200
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				zs := make([]Vec, 60)
				for i := range zs {
					zs[i] = Vec{0.25, 0.25, 0.25, 0.25, 0}
				}
				for i := 0; i < perWorker; i++ {
					a.AddRange(rng.Intn(20000-60), zs, 1)
				}
			}(int64(w))
		}
		wg.Wait()
		// Total mass must be conserved exactly for NORM.
		if m == Norm {
			sum := 0.0
			for pos := 0; pos < 20000; pos++ {
				sum += a.Total(pos)
			}
			want := float64(workers * perWorker * 60)
			if math.Abs(sum-want) > 1e-3*want {
				t.Errorf("mass after concurrent adds = %v, want %v", sum, want)
			}
		}
	}
}

func TestNormRawStateRoundTrip(t *testing.T) {
	a := newNormAcc(8)
	a.AddRange(2, []Vec{{1, 2, 3, 4, 5}}, 1)
	b := newNormAcc(8)
	if err := b.LoadState(a.RawState()); err != nil {
		t.Fatal(err)
	}
	if b.Vector(2) != a.Vector(2) {
		t.Errorf("state round trip mismatch: %v vs %v", b.Vector(2), a.Vector(2))
	}
	if err := b.LoadState(make([]float32, 3)); err == nil {
		t.Error("bad state length accepted")
	}
}

// quantize invariants: outputs always sum to fracDenom for positive
// totals, and reconstruct within one quantization unit per channel.
func TestQuantizeProperty(t *testing.T) {
	f := func(a, b, c, d, e float64) bool {
		var v Vec
		total := 0.0
		for i, x := range []float64{a, b, c, d, e} {
			x = math.Abs(x)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			x = math.Mod(x, 1000)
			v[i] = x
			total += x
		}
		var out [5]uint8
		quantize(&v, total, out[:])
		sum := 0
		for _, x := range out {
			sum += int(x)
		}
		if total <= 0 {
			return sum == 0
		}
		if sum != fracDenom {
			return false
		}
		unit := total / fracDenom
		for k := range v {
			rec := total * float64(out[k]) / fracDenom
			if math.Abs(rec-v[k]) > unit+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
