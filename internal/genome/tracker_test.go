package genome

import (
	"sync"
	"testing"
)

func TestRegionTrackerValidation(t *testing.T) {
	if _, err := NewRegionTracker(0, 10); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := NewRegionTracker(100, 0); err == nil {
		t.Error("zero region size accepted")
	}
}

func TestRegionTrackerBounds(t *testing.T) {
	tr, err := NewRegionTracker(100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Regions(); got != 4 {
		t.Fatalf("Regions = %d, want 4", got)
	}
	if got := tr.RegionSize(); got != 30 {
		t.Fatalf("RegionSize = %d, want 30", got)
	}
	cases := [][3]int{{0, 0, 30}, {1, 30, 60}, {2, 60, 90}, {3, 90, 100}}
	for _, c := range cases {
		from, to := tr.Bounds(c[0])
		if from != c[1] || to != c[2] {
			t.Errorf("Bounds(%d) = [%d, %d), want [%d, %d)", c[0], from, to, c[1], c[2])
		}
	}
}

func TestRegionTrackerTouch(t *testing.T) {
	tr, err := NewRegionTracker(100, 30)
	if err != nil {
		t.Fatal(err)
	}
	tr.Touch(5, 10)   // region 0 only
	tr.Touch(25, 10)  // spans regions 0 and 1
	tr.Touch(95, 50)  // clamped to [95, 100): region 3
	tr.Touch(-5, 3)   // entirely before the genome: no-op
	tr.Touch(200, 10) // entirely past the genome: no-op
	tr.Touch(-5, 8)   // clamped to [0, 3): region 0
	got := tr.Snapshot(nil)
	want := []int64{3, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
	// Snapshot reuses a big-enough dst without allocating a new one.
	dst := make([]int64, 4)
	if got2 := tr.Snapshot(dst); &got2[0] != &dst[0] {
		t.Error("Snapshot reallocated despite sufficient dst capacity")
	}
}

// Touch is called concurrently from every mapping worker; counts must
// not be lost (the test runs under -race in the CI gate as well).
func TestRegionTrackerConcurrentTouch(t *testing.T) {
	tr, err := NewRegionTracker(10_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Touch((w*977+i*131)%9_900, 50)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range tr.Snapshot(nil) {
		total += c
	}
	// Every Touch lands in at least one region and at most two.
	if min, max := int64(workers*perWorker), int64(2*workers*perWorker); total < min || total > max {
		t.Fatalf("total touches %d outside [%d, %d]", total, min, max)
	}
}
