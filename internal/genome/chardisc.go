package genome

import (
	"fmt"
	"sync"

	"gnumap/internal/dna"
)

// fracDenom is the denominator of the byte fractions. The paper's text
// mentions both 128 and 255; we use the full byte range 255 for maximum
// resolution and document the choice in DESIGN.md.
const fracDenom = 255

// charDiscAcc is the CHARDISC layout: per position, one float32 total
// plus five byte numerators over fracDenom. The real value of channel k
// is total · frac[k] / 255.
type charDiscAcc struct {
	length int
	total  []float32 // len = length
	frac   []uint8   // len = 5·length
	locks  []sync.Mutex
}

func newCharDiscAcc(length int) *charDiscAcc {
	return &charDiscAcc{
		length: length,
		total:  make([]float32, length),
		frac:   make([]uint8, dna.NumChannels*length),
		locks:  stripes(length),
	}
}

func (a *charDiscAcc) Len() int   { return a.length }
func (a *charDiscAcc) Mode() Mode { return CharDisc }

// quantize converts a non-negative channel vector with the given total
// into byte numerators summing exactly to fracDenom, using
// largest-remainder rounding so no channel is starved systematically.
func quantize(v *Vec, total float64, out []uint8) {
	if total <= 0 {
		for k := range out {
			out[k] = 0
		}
		return
	}
	var floors [dna.NumChannels]int
	var rems [dna.NumChannels]float64
	sum := 0
	for k := 0; k < dna.NumChannels; k++ {
		exact := v[k] / total * fracDenom
		f := int(exact)
		if f > fracDenom {
			f = fracDenom
		}
		floors[k] = f
		rems[k] = exact - float64(f)
		sum += f
	}
	// Distribute the remaining units to the largest remainders.
	for sum < fracDenom {
		best, bestRem := -1, -1.0
		for k := 0; k < dna.NumChannels; k++ {
			if rems[k] > bestRem {
				best, bestRem = k, rems[k]
			}
		}
		if best < 0 {
			break
		}
		floors[best]++
		rems[best] = -2 // consumed
		sum++
	}
	for k := 0; k < dna.NumChannels; k++ {
		out[k] = uint8(floors[k])
	}
}

// realVec reconstructs the real-space channel vector at a position.
// Caller must hold the stripe lock.
func (a *charDiscAcc) realVec(pos int) Vec {
	var v Vec
	t := float64(a.total[pos])
	if t <= 0 {
		return v
	}
	base := pos * dna.NumChannels
	for k := 0; k < dna.NumChannels; k++ {
		v[k] = t * float64(a.frac[base+k]) / fracDenom
	}
	return v
}

func (a *charDiscAcc) AddRange(start int, zs []Vec, weight float64) {
	from, to, zsFrom, ok := clampRange(start, len(zs), a.length)
	if !ok {
		return
	}
	lkFirst, lkLast := lockRange(a.locks, from, to)
	defer unlockRange(a.locks, lkFirst, lkLast)
	for pos := from; pos < to; pos++ {
		z := &zs[zsFrom+pos-from]
		v := a.realVec(pos)
		newTotal := float64(a.total[pos])
		for k := 0; k < dna.NumChannels; k++ {
			d := weight * z[k]
			v[k] += d
			newTotal += d
		}
		a.total[pos] = float32(newTotal)
		quantize(&v, newTotal, a.frac[pos*dna.NumChannels:(pos+1)*dna.NumChannels])
	}
}

func (a *charDiscAcc) Vector(pos int) Vec {
	lkFirst, lkLast := lockRange(a.locks, pos, pos+1)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return a.realVec(pos)
}

func (a *charDiscAcc) Total(pos int) float64 {
	lkFirst, lkLast := lockRange(a.locks, pos, pos+1)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return float64(a.total[pos])
}

func (a *charDiscAcc) MemoryBytes() int64 {
	return int64(len(a.total))*4 + int64(len(a.frac))
}

func (a *charDiscAcc) Merge(other Accumulator) error {
	o, ok := other.(*charDiscAcc)
	if !ok || o.length != a.length {
		return fmt.Errorf("genome: cannot merge %v/%d into CHARDISC/%d", other.Mode(), other.Len(), a.length)
	}
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	for pos := 0; pos < a.length; pos++ {
		ov := o.realVec(pos)
		v := a.realVec(pos)
		t := float64(a.total[pos]) + float64(o.total[pos])
		for k := 0; k < dna.NumChannels; k++ {
			v[k] += ov[k]
		}
		a.total[pos] = float32(t)
		quantize(&v, t, a.frac[pos*dna.NumChannels:(pos+1)*dna.NumChannels])
	}
	return nil
}
