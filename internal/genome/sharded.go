package genome

import (
	"fmt"
	"sync"
)

// ShardProvider is implemented by accumulators that can hand each
// mapping worker a private, lock-free shard. Workers write to their
// shard without any synchronization; the shards are folded into the
// striped base with a parallel tree merge at Combine time. This trades
// memory (one full-genome shard per worker) for the elimination of all
// stripe-lock contention on the mapping hot path.
type ShardProvider interface {
	Accumulator
	// WorkerShard returns a fresh private shard for one worker
	// goroutine. The shard must only ever be written by that worker; it
	// is unlocked internally.
	WorkerShard() Accumulator
	// Combine folds every outstanding shard into the base accumulator
	// (parallel tree merge, reusing each mode's Merge path) and returns
	// the base. After Combine the shards are released; the returned
	// accumulator is the ordinary striped one and can be swept without
	// per-call locking overhead.
	Combine() (Accumulator, error)
	// ShardCount reports the number of outstanding worker shards.
	ShardCount() int
}

// Sharded wraps a striped base accumulator with per-worker lock-free
// shards. It implements Accumulator (reads lazily combine, so it is
// always correct even if a caller forgets Combine) and Stateful (state
// is the combined state). Direct AddRange calls go to the striped base,
// so non-worker writers (e.g. cluster state loads) remain safe.
type Sharded struct {
	mode   Mode
	length int

	mu     sync.Mutex
	shards []Accumulator
	base   Accumulator
	// clean is true when every shard ever handed out has been folded
	// into base (i.e. base alone is the full picture).
	clean bool
}

// NewSharded constructs a sharded accumulator of the given mode and
// length. The base (and therefore the combined result) is the ordinary
// striped accumulator returned by New.
func NewSharded(mode Mode, length int) (*Sharded, error) {
	base, err := New(mode, length)
	if err != nil {
		return nil, err
	}
	return &Sharded{mode: mode, length: length, base: base, clean: true}, nil
}

// newUnlocked builds an accumulator whose stripe locks are nil.
// lockRange/unlockRange on a nil lock slice clamp last to -1 < first
// and degenerate to no-ops, so every AddRange/Merge/State path works
// unchanged — just without atomicity, which a single-owner shard does
// not need.
func newUnlocked(mode Mode, length int) (Accumulator, error) {
	acc, err := New(mode, length)
	if err != nil {
		return nil, err
	}
	switch a := acc.(type) {
	case *normAcc:
		a.locks = nil
	case *charDiscAcc:
		a.locks = nil
	case *centDiscAcc:
		a.locks = nil
	default:
		return nil, fmt.Errorf("genome: mode %v has no unlocked shard form", mode)
	}
	return acc, nil
}

func (s *Sharded) Len() int   { return s.length }
func (s *Sharded) Mode() Mode { return s.mode }

// WorkerShard implements ShardProvider.
func (s *Sharded) WorkerShard() Accumulator {
	shard, err := newUnlocked(s.mode, s.length)
	if err != nil {
		// New succeeded for the base with identical arguments, so this
		// cannot fail; keep the worker functional regardless.
		return s.base
	}
	s.mu.Lock()
	s.shards = append(s.shards, shard)
	s.clean = false
	s.mu.Unlock()
	return shard
}

// Combine implements ShardProvider. Concurrent writers must be
// quiesced (the engine joins its workers before snapshotting).
func (s *Sharded) Combine() (Accumulator, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.combineLocked(); err != nil {
		return nil, err
	}
	return s.base, nil
}

func (s *Sharded) combineLocked() error {
	if s.clean {
		return nil
	}
	shards := s.shards
	s.shards = nil
	if len(shards) > 0 {
		if err := MergeTree(shards); err != nil {
			return err
		}
		if err := s.base.Merge(shards[0]); err != nil {
			return err
		}
	}
	s.clean = true
	return nil
}

// ShardCount implements ShardProvider.
func (s *Sharded) ShardCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// AddRange adds through the striped base: callers that did not take a
// WorkerShard get the same locking semantics as a plain accumulator.
func (s *Sharded) AddRange(start int, zs []Vec, weight float64) {
	s.base.AddRange(start, zs, weight)
}

// Vector lazily combines, then reads the base. The per-call mutex makes
// this correct even mid-pipeline, but sweep-heavy callers should call
// Combine once and read the returned base directly.
func (s *Sharded) Vector(pos int) Vec {
	s.mu.Lock()
	err := s.combineLocked()
	s.mu.Unlock()
	if err != nil {
		return Vec{}
	}
	return s.base.Vector(pos)
}

// Total lazily combines, then reads the base.
func (s *Sharded) Total(pos int) float64 {
	s.mu.Lock()
	err := s.combineLocked()
	s.mu.Unlock()
	if err != nil {
		return 0
	}
	return s.base.Total(pos)
}

// MemoryBytes reports the base plus every outstanding shard — the
// memory cost of sharding is visible, not hidden.
func (s *Sharded) MemoryBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.base.MemoryBytes()
	for _, sh := range s.shards {
		total += sh.MemoryBytes()
	}
	return total
}

// Merge folds another accumulator into this one. Both sides are
// combined first; a *Sharded other contributes its base.
func (s *Sharded) Merge(other Accumulator) error {
	src := other
	if o, ok := other.(*Sharded); ok {
		b, err := o.Combine()
		if err != nil {
			return err
		}
		src = b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.combineLocked(); err != nil {
		return err
	}
	return s.base.Merge(src)
}

// State implements Stateful: the serialized form is the combined base
// state, so striped and sharded accumulators interoperate over the
// cluster transport.
func (s *Sharded) State() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.combineLocked(); err != nil {
		return nil, err
	}
	return s.base.(Stateful).State()
}

// LoadStateBytes implements Stateful. Outstanding shards are dropped:
// the loaded state fully replaces the accumulator, and the contract
// (writers quiesced) means no worker still holds one.
func (s *Sharded) LoadStateBytes(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards = nil
	s.clean = true
	return s.base.(Stateful).LoadStateBytes(data)
}

// MergeTree folds accs[1:]... into accs[0] with ceil(log2(n)) rounds of
// concurrent pairwise merges — the same reduction shape the cluster
// runtime uses across ranks, applied across worker shards. The final
// result is left in accs[0]; the other entries are consumed.
func MergeTree(accs []Accumulator) error {
	var firstErr error
	var errMu sync.Mutex
	for stride := 1; stride < len(accs); stride *= 2 {
		var wg sync.WaitGroup
		for i := 0; i+stride < len(accs); i += 2 * stride {
			dst, src := accs[i], accs[i+stride]
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := dst.Merge(src); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

// EstimateBytes predicts the per-position heap footprint of one
// accumulator of the given mode and length, without allocating it.
// Used by the auto accumulation-strategy heuristic (workers+1 copies
// must fit the memory budget before sharding is worth it).
func EstimateBytes(mode Mode, length int) int64 {
	l := int64(length)
	switch mode {
	case Norm:
		return 20 * l // five float32 per position
	case CharDisc:
		return 9 * l // float32 total + five byte fractions
	case CentDisc:
		return 5 * l // float32 total + one codebook byte
	default:
		return 20 * l
	}
}
