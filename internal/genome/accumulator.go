// Package genome implements the per-position nucleotide-probability
// accumulators at the heart of GNUMAP-SNP's online SNP calling, in the
// paper's three memory layouts:
//
//   - NORM (paper "NORM"): five float32 values per genome position —
//     the straightforward layout, ~20 bytes/base.
//   - CHARDISC (paper §VI-B-1, "nucleotide-byte discretization"): one
//     float32 running total plus five single-byte channel fractions per
//     position, ~9 bytes/base. Fractions quantize to 1/255 units, so
//     late small contributions to a heavily covered position can round
//     to nothing — the saturation behaviour the paper analyzes.
//   - CENTDISC (paper §VI-B-2, "centroid discretization"): one
//     float32 running total plus a single byte indexing a 256-entry
//     codebook of biologically weighted channel distributions,
//     ~5 bytes/base. Every update re-quantizes to the nearest centroid,
//     which is why the paper finds its accuracy collapses.
//
// All accumulators are safe for concurrent use: positions are guarded
// by striped locks, and AddRange locks each stripe once per spanned
// range rather than once per position.
package genome

import (
	"fmt"
	"sync"

	"gnumap/internal/dna"
)

// Vec is a per-position channel accumulation (A, C, G, T, gap).
type Vec = [dna.NumChannels]float64

// Mode selects the accumulator memory layout.
type Mode int

const (
	// Norm stores five float32 per position.
	Norm Mode = iota
	// CharDisc stores a float32 total plus five byte fractions.
	CharDisc
	// CentDisc stores a float32 total plus one codebook byte.
	CentDisc
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case Norm:
		return "NORM"
	case CharDisc:
		return "CHARDISC"
	case CentDisc:
		return "CENTDISC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Accumulator is the per-position probability store shared by all
// memory modes.
type Accumulator interface {
	// Len returns the number of positions.
	Len() int
	// Mode returns the memory layout.
	Mode() Mode
	// AddRange adds weight·zs[k] to position start+k for every k.
	// Positions outside [0, Len) are ignored (reads can hang off the
	// ends of a node's genome slice).
	AddRange(start int, zs []Vec, weight float64)
	// Vector returns the accumulated totals at a position.
	Vector(pos int) Vec
	// Total returns the total accumulated mass at a position.
	Total(pos int) float64
	// MemoryBytes reports the approximate heap footprint of the
	// per-position state (the Table II accounting).
	MemoryBytes() int64
	// Merge folds another accumulator of the same mode and length into
	// this one (the MPI reduction step).
	Merge(other Accumulator) error
}

// New constructs an accumulator of the given mode and length.
func New(mode Mode, length int) (Accumulator, error) {
	if length <= 0 {
		return nil, fmt.Errorf("genome: accumulator length %d", length)
	}
	switch mode {
	case Norm:
		return newNormAcc(length), nil
	case CharDisc:
		return newCharDiscAcc(length), nil
	case CentDisc:
		return newCentDiscAcc(length), nil
	default:
		return nil, fmt.Errorf("genome: unknown mode %d", int(mode))
	}
}

// stripeShift gives 4096-position lock stripes: small enough for low
// contention across workers mapping different genome regions, large
// enough that a read-length range spans at most two stripes.
const stripeShift = 12

// stripes builds the lock set for a given length.
func stripes(length int) []sync.Mutex {
	n := (length >> stripeShift) + 1
	return make([]sync.Mutex, n)
}

// lockRange locks every stripe covering [start, end) and returns the
// stripe span to hand back to unlockRange. Stripes are acquired in
// ascending order, so concurrent overlapping ranges cannot deadlock.
// (Returning the span instead of an unlock closure keeps AddRange off
// the heap — this is the mapper's per-alignment hot path.)
func lockRange(locks []sync.Mutex, start, end int) (first, last int) {
	first = start >> stripeShift
	last = (end - 1) >> stripeShift
	if first < 0 {
		first = 0
	}
	if last >= len(locks) {
		last = len(locks) - 1
	}
	for s := first; s <= last; s++ {
		locks[s].Lock()
	}
	return first, last
}

// unlockRange releases the stripes acquired by the matching lockRange.
func unlockRange(locks []sync.Mutex, first, last int) {
	for s := first; s <= last; s++ {
		locks[s].Unlock()
	}
}

// clampRange clips an update range to [0, length) and returns the
// corresponding slice offsets into zs.
func clampRange(start, n, length int) (from, to, zsFrom int, ok bool) {
	from, to, zsFrom = start, start+n, 0
	if from < 0 {
		zsFrom = -from
		from = 0
	}
	if to > length {
		to = length
	}
	if from >= to {
		return 0, 0, 0, false
	}
	return from, to, zsFrom, true
}

// normAcc is the NORM layout: a flat float32 array, five per position,
// stored plane-major (struct of arrays): channel k occupies
// data[k·length : (k+1)·length]. The post-map LRT sweep, pileup, and
// coverage paths stream whole channel planes through a lock-free frozen
// view (Freeze), so the read side is sequential over contiguous memory
// instead of strided through a position-major interleave. Per-cell
// arithmetic is unchanged by the transpose — each cell accumulates the
// same float32 additions in the same order — so the layouts are
// bit-identical in value. The serialized wire format (State) remains
// position-major for compatibility; see state.go.
type normAcc struct {
	length int
	data   []float32 // len = 5·length, plane-major
	locks  []sync.Mutex
}

func newNormAcc(length int) *normAcc {
	return &normAcc{
		length: length,
		data:   make([]float32, dna.NumChannels*length),
		locks:  stripes(length),
	}
}

func (a *normAcc) Len() int   { return a.length }
func (a *normAcc) Mode() Mode { return Norm }

// plane returns channel k's contiguous per-position slice.
func (a *normAcc) plane(k int) []float32 {
	return a.data[k*a.length : (k+1)*a.length]
}

func (a *normAcc) AddRange(start int, zs []Vec, weight float64) {
	from, to, zsFrom, ok := clampRange(start, len(zs), a.length)
	if !ok {
		return
	}
	lkFirst, lkLast := lockRange(a.locks, from, to)
	defer unlockRange(a.locks, lkFirst, lkLast)
	for k := 0; k < dna.NumChannels; k++ {
		pk := a.plane(k)
		zi := zsFrom - from
		for pos := from; pos < to; pos++ {
			pk[pos] += float32(weight * zs[zi+pos][k])
		}
	}
}

func (a *normAcc) Vector(pos int) Vec {
	lkFirst, lkLast := lockRange(a.locks, pos, pos+1)
	defer unlockRange(a.locks, lkFirst, lkLast)
	var v Vec
	for k := 0; k < dna.NumChannels; k++ {
		v[k] = float64(a.data[k*a.length+pos])
	}
	return v
}

func (a *normAcc) Total(pos int) float64 {
	v := a.Vector(pos)
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}

func (a *normAcc) MemoryBytes() int64 {
	return int64(len(a.data)) * 4
}

func (a *normAcc) Merge(other Accumulator) error {
	o, ok := other.(*normAcc)
	if !ok || o.length != a.length {
		return fmt.Errorf("genome: cannot merge %v/%d into NORM/%d", other.Mode(), other.Len(), a.length)
	}
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	for i := range a.data {
		a.data[i] += o.data[i]
	}
	return nil
}

// RawState exposes the flat channel array in the accumulator's internal
// (plane-major) layout. The returned slice aliases live state; callers
// must quiesce writers first, and must only feed it back to LoadState —
// the cross-process wire format is State (position-major; see state.go).
func (a *normAcc) RawState() []float32 { return a.data }

// LoadState overwrites the accumulator from a RawState array.
func (a *normAcc) LoadState(data []float32) error {
	if len(data) != len(a.data) {
		return fmt.Errorf("genome: NORM state length %d, want %d", len(data), len(a.data))
	}
	copy(a.data, data)
	return nil
}
