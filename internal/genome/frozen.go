package genome

import (
	"fmt"

	"gnumap/internal/dna"
)

// Frozen is a lock-free, read-only view of an accumulator's per-position
// state. It aliases the accumulator's arrays rather than copying them,
// so freezing is O(1); the view is only coherent while writers are
// quiesced (mapping finished, or the streaming pipeline parked at a
// checkpoint barrier). Vector and Total reproduce the locked
// Accumulator paths' arithmetic exactly — same loads, same conversion
// and summation order — so a sweep over a Frozen view is bit-identical
// to one over the locked accumulator, minus the per-position stripe
// lock round trip.
//
// The post-map LRT sweep, the pileup writer, and the coverage summary
// all read through Frozen views; the accumulator's locks exist for the
// mapping phase only.
type Frozen struct {
	mode   Mode
	length int
	// planes are the NORM per-channel position planes (nil otherwise).
	planes [dna.NumChannels][]float32
	// total is the CHARDISC/CENTDISC per-position total plane.
	total []float32
	// frac is the CHARDISC byte-fraction array (5 per position).
	frac []uint8
	// code is the CENTDISC codebook index array, cb its codebook.
	code []uint8
	cb   *Codebook
}

// Freeze returns a frozen view of acc. A *Sharded accumulator is
// combined first (destructively, like its own lazy Vector path — for a
// non-destructive mid-run view, SnapshotInto a scratch accumulator and
// freeze that). Accumulator implementations outside this package have
// no frozen form and return an error; callers fall back to the locked
// interface.
func Freeze(acc Accumulator) (*Frozen, error) {
	switch a := acc.(type) {
	case *Sharded:
		base, err := a.Combine()
		if err != nil {
			return nil, err
		}
		return Freeze(base)
	case *normAcc:
		f := &Frozen{mode: Norm, length: a.length}
		for k := range f.planes {
			f.planes[k] = a.plane(k)
		}
		return f, nil
	case *charDiscAcc:
		return &Frozen{mode: CharDisc, length: a.length, total: a.total, frac: a.frac}, nil
	case *centDiscAcc:
		return &Frozen{mode: CentDisc, length: a.length, total: a.total, code: a.code, cb: a.cb}, nil
	default:
		return nil, fmt.Errorf("genome: %T has no frozen view", acc)
	}
}

// Len returns the number of positions.
func (f *Frozen) Len() int { return f.length }

// Mode returns the underlying accumulator's memory layout.
func (f *Frozen) Mode() Mode { return f.mode }

// Vector returns the accumulated channel totals at a position,
// bit-identical to Accumulator.Vector on the source accumulator.
func (f *Frozen) Vector(pos int) Vec {
	var v Vec
	switch f.mode {
	case Norm:
		for k := 0; k < dna.NumChannels; k++ {
			v[k] = float64(f.planes[k][pos])
		}
	case CharDisc:
		t := float64(f.total[pos])
		if t <= 0 {
			return v
		}
		base := pos * dna.NumChannels
		for k := 0; k < dna.NumChannels; k++ {
			v[k] = t * float64(f.frac[base+k]) / fracDenom
		}
	case CentDisc:
		t := float64(f.total[pos])
		if t <= 0 {
			return v
		}
		c := f.cb.Centroid(f.code[pos])
		for k := 0; k < dna.NumChannels; k++ {
			v[k] = t * c[k]
		}
	}
	return v
}

// Total returns the total accumulated mass at a position, bit-identical
// to Accumulator.Total on the source accumulator.
func (f *Frozen) Total(pos int) float64 {
	switch f.mode {
	case CharDisc, CentDisc:
		return float64(f.total[pos])
	default:
		v := f.Vector(pos)
		t := 0.0
		for _, x := range v {
			t += x
		}
		return t
	}
}

// Plane returns channel k's contiguous NORM position plane (nil for the
// discretized modes, whose channel state is byte-packed — use Vector).
func (f *Frozen) Plane(k int) []float32 {
	if f.mode != Norm {
		return nil
	}
	return f.planes[k]
}

// Planes returns all five channel planes of a NORM view at once, for
// sweeps that stream every channel in lockstep (the vectorized calling
// prescreen). ok is false for the discretized modes, whose channel
// state is byte-packed — such callers fall back to Vector. The slices
// alias the accumulator's arrays, zero-copy, exactly like Plane.
func (f *Frozen) Planes() (planes [dna.NumChannels][]float32, ok bool) {
	if f.mode != Norm {
		return planes, false
	}
	return f.planes, true
}

// PlaneWindow returns the five channel planes sliced to positions
// [lo, hi), the block-iteration form of Planes: a plane-streaming
// sweep asks for exactly the window it is about to classify, and the
// bounds check lives here instead of at every call site. ok is false
// for the discretized modes or an invalid window.
func (f *Frozen) PlaneWindow(lo, hi int) (planes [dna.NumChannels][]float32, ok bool) {
	if f.mode != Norm || lo < 0 || hi > f.length || lo > hi {
		return planes, false
	}
	for k := range planes {
		planes[k] = f.planes[k][lo:hi:hi]
	}
	return planes, true
}

// TotalPlane returns the contiguous per-position total plane of the
// discretized modes (nil for NORM, which stores no separate totals).
func (f *Frozen) TotalPlane() []float32 { return f.total }
