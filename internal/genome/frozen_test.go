package genome

import (
	"math/rand"
	"testing"
)

// Property: a frozen view is bit-identical to the locked interface on
// every position — Vector and Total — for every mode, including after
// a Merge and after a (non-destructive) state snapshot. The post-map
// sweep swaps the locked reads for a Frozen view on exactly this
// guarantee.
func TestFrozenBitIdenticalToAccumulator(t *testing.T) {
	const L = 2048
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			acc := feed(t, mode, L, randomStream(rng, 600, L, L/2))

			requireFrozenEqual(t, acc, "after feed")

			// Merge more state in, snapshot, and re-check: freezing must
			// track every mutation path, not just AddRange.
			other := feed(t, mode, L, randomStream(rng, 300, L, L/2))
			if err := acc.Merge(other); err != nil {
				t.Fatalf("Merge: %v", err)
			}
			if _, err := SnapshotState(acc); err != nil {
				t.Fatalf("SnapshotState: %v", err)
			}
			requireFrozenEqual(t, acc, "after merge+snapshot")
		})
	}
}

// requireFrozenEqual checks Freeze(acc) against acc position by
// position, requiring exact float equality.
func requireFrozenEqual(t *testing.T, acc Accumulator, when string) {
	t.Helper()
	fz, err := Freeze(acc)
	if err != nil {
		t.Fatalf("%s: Freeze: %v", when, err)
	}
	if fz.Len() != acc.Len() {
		t.Fatalf("%s: frozen Len = %d, want %d", when, fz.Len(), acc.Len())
	}
	for pos := 0; pos < acc.Len(); pos++ {
		if got, want := fz.Vector(pos), acc.Vector(pos); got != want {
			t.Fatalf("%s: Vector(%d) = %v via frozen view, %v via locks", when, pos, got, want)
		}
		if got, want := fz.Total(pos), acc.Total(pos); got != want {
			t.Fatalf("%s: Total(%d) = %v via frozen view, %v via locks", when, pos, got, want)
		}
	}
}

// Freezing a sharded accumulator combines it (the same semantics as its
// lazy Vector path) and the view then matches the combined reads.
func TestFrozenSharded(t *testing.T) {
	const L = 1024
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			s, err := NewSharded(mode, L)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			shard := s.WorkerShard()
			for _, ev := range randomStream(rng, 200, L, L/2) {
				shard.AddRange(ev.start, ev.zs, ev.weight)
			}
			for _, ev := range randomStream(rng, 100, L, L/2) {
				s.AddRange(ev.start, ev.zs, ev.weight)
			}
			requireFrozenEqual(t, s, "sharded")
		})
	}
}

func TestFrozenPlaneAccessors(t *testing.T) {
	norm, err := New(Norm, 64)
	if err != nil {
		t.Fatal(err)
	}
	norm.AddRange(3, []Vec{{0.5, 0.2, 0.2, 0.1, 0}}, 2)
	fz, err := Freeze(norm)
	if err != nil {
		t.Fatal(err)
	}
	if fz.Mode() != Norm {
		t.Fatalf("Mode = %v, want Norm", fz.Mode())
	}
	if fz.TotalPlane() != nil {
		t.Error("NORM view has a total plane")
	}
	for k := 0; k < 5; k++ {
		p := fz.Plane(k)
		if len(p) != 64 {
			t.Fatalf("Plane(%d) length %d, want 64", k, len(p))
		}
		if got, want := float64(p[3]), norm.Vector(3)[k]; got != want {
			t.Errorf("Plane(%d)[3] = %v, want %v", k, got, want)
		}
	}

	cd, err := New(CharDisc, 64)
	if err != nil {
		t.Fatal(err)
	}
	cd.AddRange(3, []Vec{{0.5, 0.2, 0.2, 0.1, 0}}, 2)
	cfz, err := Freeze(cd)
	if err != nil {
		t.Fatal(err)
	}
	if cfz.Plane(0) != nil {
		t.Error("CharDisc view has channel planes")
	}
	tp := cfz.TotalPlane()
	if len(tp) != 64 {
		t.Fatalf("TotalPlane length %d, want 64", len(tp))
	}
	if got, want := float64(tp[3]), cd.Total(3); got != want {
		t.Errorf("TotalPlane[3] = %v, want %v", got, want)
	}
}

// The bulk plane accessors feeding the vectorized calling sweep:
// NORM views hand out all five planes (whole or windowed) whose
// converted values match Vector exactly; the discretized modes refuse
// (ok = false) because their channel state is byte-packed — Plane is
// nil there and TotalPlane carries the per-position totals instead.
func TestFrozenPlaneIteration(t *testing.T) {
	const L = 96
	rng := rand.New(rand.NewSource(17))
	norm := feed(t, Norm, L, randomStream(rng, 120, L, L/3))
	fz, err := Freeze(norm)
	if err != nil {
		t.Fatal(err)
	}
	planes, ok := fz.Planes()
	if !ok {
		t.Fatal("NORM view refused Planes")
	}
	for k := range planes {
		if len(planes[k]) != L {
			t.Fatalf("Planes()[%d] length %d, want %d", k, len(planes[k]), L)
		}
	}
	for _, w := range [][2]int{{0, L}, {0, 0}, {5, 5}, {7, 31}, {L - 9, L}} {
		win, ok := fz.PlaneWindow(w[0], w[1])
		if !ok {
			t.Fatalf("PlaneWindow(%d, %d) refused", w[0], w[1])
		}
		for pos := w[0]; pos < w[1]; pos++ {
			want := fz.Vector(pos)
			for k := range win {
				if got := float64(win[k][pos-w[0]]); got != want[k] {
					t.Fatalf("PlaneWindow(%d,%d)[%d][%d] = %v, want %v", w[0], w[1], k, pos-w[0], got, want[k])
				}
			}
		}
	}
	for _, w := range [][2]int{{-1, 4}, {0, L + 1}, {9, 8}} {
		if _, ok := fz.PlaneWindow(w[0], w[1]); ok {
			t.Errorf("PlaneWindow(%d, %d) accepted an invalid window", w[0], w[1])
		}
	}

	for _, mode := range []Mode{CharDisc, CentDisc} {
		t.Run(mode.String(), func(t *testing.T) {
			acc := feed(t, mode, L, randomStream(rng, 120, L, L/3))
			dfz, err := Freeze(acc)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := dfz.Planes(); ok {
				t.Error("discrete view handed out channel planes")
			}
			if _, ok := dfz.PlaneWindow(0, L); ok {
				t.Error("discrete view handed out a plane window")
			}
			for k := 0; k < 5; k++ {
				if dfz.Plane(k) != nil {
					t.Errorf("discrete Plane(%d) non-nil", k)
				}
			}
			tp := dfz.TotalPlane()
			if len(tp) != L {
				t.Fatalf("TotalPlane length %d, want %d", len(tp), L)
			}
			for pos := 0; pos < L; pos++ {
				if got, want := float64(tp[pos]), acc.Total(pos); got != want {
					t.Fatalf("TotalPlane[%d] = %v, want %v", pos, got, want)
				}
			}
		})
	}
}

// SnapshotInto must be deterministic: two snapshots with no writes in
// between are bit-identical, and after writes confined to one area the
// untouched positions keep their exact previous values. The incremental
// caller's region cache is valid only because of this.
func TestSnapshotIntoDeterministic(t *testing.T) {
	const L = 1500
	s, err := NewSharded(Norm, L)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	shardA := s.WorkerShard()
	shardB := s.WorkerShard()
	for _, ev := range randomStream(rng, 400, L, L/2) {
		shardA.AddRange(ev.start, ev.zs, ev.weight)
	}
	for _, ev := range randomStream(rng, 400, L, L/2) {
		shardB.AddRange(ev.start, ev.zs, ev.weight)
	}

	scratch, err := CloneEmpty(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := SnapshotInto(s, scratch); err != nil {
		t.Fatalf("SnapshotInto: %v", err)
	}
	first := make([]Vec, L)
	for pos := 0; pos < L; pos++ {
		first[pos] = scratch.Vector(pos)
	}

	// No writes in between: the second snapshot must be bit-identical.
	if err := SnapshotInto(s, scratch); err != nil {
		t.Fatalf("SnapshotInto: %v", err)
	}
	for pos := 0; pos < L; pos++ {
		if got := scratch.Vector(pos); got != first[pos] {
			t.Fatalf("idle re-snapshot changed position %d: %v -> %v", pos, first[pos], got)
		}
	}

	// Shards must still be live (non-destructive) ...
	if got := s.ShardCount(); got != 2 {
		t.Fatalf("SnapshotInto released shards: ShardCount = %d, want 2", got)
	}
	// ... and writes confined to the front must leave the back half's
	// snapshot values bit-identical.
	shardA.AddRange(10, []Vec{{0.9, 0.1, 0, 0, 0}}, 1)
	if err := SnapshotInto(s, scratch); err != nil {
		t.Fatalf("SnapshotInto: %v", err)
	}
	for pos := 100; pos < L; pos++ {
		if got := scratch.Vector(pos); got != first[pos] {
			t.Fatalf("write at 10 changed snapshot position %d: %v -> %v", pos, first[pos], got)
		}
	}
	if got := scratch.Vector(10); got == first[10] {
		t.Fatal("write at 10 not visible in the new snapshot")
	}
}

// SnapshotInto on a plain (non-sharded) accumulator is a reset + merge:
// the scratch equals the source exactly, and a stale scratch is fully
// overwritten.
func TestSnapshotIntoStriped(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			const L = 256
			rng := rand.New(rand.NewSource(19))
			acc := feed(t, mode, L, randomStream(rng, 150, L, L/2))
			scratch := feed(t, mode, L, randomStream(rng, 50, L, L/2)) // stale content
			if err := SnapshotInto(acc, scratch); err != nil {
				t.Fatalf("SnapshotInto: %v", err)
			}
			for pos := 0; pos < L; pos++ {
				if got, want := scratch.Vector(pos), acc.Vector(pos); got != want {
					t.Fatalf("position %d: snapshot %v, source %v", pos, got, want)
				}
			}
		})
	}
}
