package genome

import (
	"bytes"
	"testing"

	"gnumap/internal/dna"
)

// TestSnapshotStateNonDestructive is the checkpoint-correctness core:
// snapshotting a sharded accumulator mid-run must not release the
// worker shards, and writes made to a shard AFTER the snapshot must
// still land in the final combined result.
func TestSnapshotStateNonDestructive(t *testing.T) {
	for _, mode := range []Mode{Norm, CharDisc, CentDisc} {
		t.Run(mode.String(), func(t *testing.T) {
			const length = 500
			s, err := NewSharded(mode, length)
			if err != nil {
				t.Fatal(err)
			}
			shard := s.WorkerShard()
			zs := make([]Vec, 10)
			for i := range zs {
				zs[i] = Vec{0.5, 0.2, 0.2, 0.1, 0}
			}
			shard.AddRange(40, zs, 1.0)
			s.AddRange(200, zs, 2.0) // through the striped base

			snap, err := SnapshotState(s)
			if err != nil {
				t.Fatalf("SnapshotState: %v", err)
			}
			if got := s.ShardCount(); got != 1 {
				t.Fatalf("snapshot released shards: ShardCount = %d, want 1", got)
			}

			// The snapshot equals the state of an equivalent fed-directly
			// accumulator.
			want, err := New(mode, length)
			if err != nil {
				t.Fatal(err)
			}
			want.AddRange(40, zs, 1.0)
			want.AddRange(200, zs, 2.0)
			wantState, err := want.(Stateful).State()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, wantState) {
				t.Errorf("snapshot state diverges from directly-fed state")
			}

			// Writes after the snapshot still reach the combined result
			// through the SAME shard reference a worker would hold.
			shard.AddRange(300, zs, 3.0)
			combined, err := s.Combine()
			if err != nil {
				t.Fatal(err)
			}
			if got := combined.Total(300); got <= 0 {
				t.Errorf("post-snapshot shard write lost: Total(300) = %v", got)
			}
			if got := combined.Total(40); got <= 0 {
				t.Errorf("pre-snapshot shard write lost: Total(40) = %v", got)
			}
		})
	}
}

// TestSnapshotStateStriped covers the plain (non-sharded) path.
func TestSnapshotStateStriped(t *testing.T) {
	a, err := New(Norm, 100)
	if err != nil {
		t.Fatal(err)
	}
	a.AddRange(10, []Vec{{1, 0, 0, 0, 0}}, 1.0)
	snap, err := SnapshotState(a)
	if err != nil {
		t.Fatalf("SnapshotState: %v", err)
	}
	direct, err := a.(Stateful).State()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, direct) {
		t.Errorf("striped snapshot != State()")
	}
}

// TestSnapshotRoundTripsThroughLoad proves snapshot → LoadStateBytes →
// continue produces the same final state as never snapshotting (the
// resume invariant, at the accumulator level).
func TestSnapshotRoundTripsThroughLoad(t *testing.T) {
	const length = 300
	zs := []Vec{{0.7, 0.1, 0.1, 0.1, 0}, {0.2, 0.6, 0.1, 0.1, 0}}

	// Uninterrupted: all writes into one sharded accumulator.
	full, err := NewSharded(Norm, length)
	if err != nil {
		t.Fatal(err)
	}
	w := full.WorkerShard()
	w.AddRange(50, zs, 1.0)
	w.AddRange(120, zs, 1.5)
	fullState, err := SnapshotState(full)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: snapshot after the first write, load into a fresh
	// accumulator, replay only the second write.
	first, err := NewSharded(Norm, length)
	if err != nil {
		t.Fatal(err)
	}
	w1 := first.WorkerShard()
	w1.AddRange(50, zs, 1.0)
	mid, err := SnapshotState(first)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewSharded(Norm, length)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.LoadStateBytes(mid); err != nil {
		t.Fatal(err)
	}
	w2 := resumed.WorkerShard()
	w2.AddRange(120, zs, 1.5)
	resumedState, err := SnapshotState(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedState, fullState) {
		t.Errorf("resumed state diverges from uninterrupted state")
	}
}

func TestReferenceDigest(t *testing.T) {
	refA, err := NewSingleContig("a", dna.MustParseSeq("ACGTACGTAC"))
	if err != nil {
		t.Fatal(err)
	}
	refA2, err := NewSingleContig("a", dna.MustParseSeq("ACGTACGTAC"))
	if err != nil {
		t.Fatal(err)
	}
	refB, err := NewSingleContig("a", dna.MustParseSeq("ACGTACGTAG"))
	if err != nil {
		t.Fatal(err)
	}
	if refA.Digest() != refA2.Digest() {
		t.Errorf("identical references digest differently")
	}
	if refA.Digest() == refB.Digest() {
		t.Errorf("different references share a digest")
	}
	if refA.Digest() != refA.Digest() {
		t.Errorf("digest not stable across calls")
	}
}
