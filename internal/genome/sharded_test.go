package genome

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"gnumap/internal/dna"
)

// checkEquivalent asserts got matches want position-by-position within
// the mode's representation tolerance — the same bounds the merge
// property tests pin for the cluster reduction (sharded accumulation is
// the same algebra applied across worker shards instead of ranks).
func checkEquivalent(t *testing.T, mode Mode, want, got Accumulator, pureLo int) {
	t.Helper()
	L := want.Len()
	for pos := 0; pos < L; pos++ {
		wantT, gotT := want.Total(pos), got.Total(pos)
		if math.Abs(wantT-gotT) > 1e-3*(1+wantT) {
			t.Fatalf("%v pos %d: total %v (sharded) vs %v (striped)", mode, pos, gotT, wantT)
		}
		wantV, gotV := want.Vector(pos), got.Vector(pos)
		switch mode {
		case Norm:
			for k := 0; k < dna.NumChannels; k++ {
				if math.Abs(wantV[k]-gotV[k]) > 1e-3*(1+wantV[k]) {
					t.Fatalf("Norm pos %d ch %d: %v vs %v", pos, k, gotV[k], wantV[k])
				}
			}
		case CharDisc:
			tol := 0.1*wantT + 0.5
			for k := 0; k < dna.NumChannels; k++ {
				if math.Abs(wantV[k]-gotV[k]) > tol {
					t.Fatalf("CharDisc pos %d ch %d: %v vs %v (total %v)", pos, k, gotV[k], wantV[k], wantT)
				}
			}
		case CentDisc:
			sum := 0.0
			for k := 0; k < dna.NumChannels; k++ {
				sum += gotV[k]
			}
			if math.Abs(sum-gotT) > 1e-3*(1+gotT) {
				t.Fatalf("CentDisc pos %d: vector sums to %v, total %v", pos, sum, gotT)
			}
			if pos >= pureLo && wantT > 0 {
				wantCh := pos % dna.NumChannels
				bestK, bestV := -1, -1.0
				for k := 0; k < dna.NumChannels; k++ {
					if gotV[k] > bestV {
						bestK, bestV = k, gotV[k]
					}
				}
				if bestK != wantCh {
					t.Fatalf("CentDisc pure pos %d: argmax channel %d, want %d (vec %v)", pos, bestK, wantCh, gotV)
				}
			}
		}
	}
}

// TestShardedEqualsStriped: K workers writing concurrently to private
// lock-free shards, combined at the end, must match one striped
// accumulator fed the whole stream — within the per-mode tolerances
// from the PR 4 merge property tests.
func TestShardedEqualsStriped(t *testing.T) {
	const (
		L      = 160
		pureLo = 120
		K      = 4
		events = 2000
	)
	for _, mode := range allModes() {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed * 104729))
			stream := randomStream(rng, events, L, pureLo)

			striped := feed(t, mode, L, stream)

			sh, err := NewSharded(mode, L)
			if err != nil {
				t.Fatal(err)
			}
			parts := make([][]mergeEvent, K)
			for i, ev := range stream {
				parts[i%K] = append(parts[i%K], ev)
			}
			var wg sync.WaitGroup
			for w := 0; w < K; w++ {
				shard := sh.WorkerShard()
				part := parts[w]
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, ev := range part {
						shard.AddRange(ev.start, ev.zs, ev.weight)
					}
				}()
			}
			wg.Wait()
			if got := sh.ShardCount(); got != K {
				t.Fatalf("%v: ShardCount = %d, want %d", mode, got, K)
			}
			base, err := sh.Combine()
			if err != nil {
				t.Fatalf("%v seed %d: combine: %v", mode, seed, err)
			}
			if sh.ShardCount() != 0 {
				t.Fatalf("%v: shards not released after Combine", mode)
			}
			// Both the returned base and the wrapper itself must agree
			// with the striped reference.
			checkEquivalent(t, mode, striped, base, pureLo)
			checkEquivalent(t, mode, striped, sh, pureLo)
		}
	}
}

// TestShardedLazyCombine: reads through the wrapper must fold in shard
// mass even when the caller never invokes Combine explicitly.
func TestShardedLazyCombine(t *testing.T) {
	sh, err := NewSharded(Norm, 32)
	if err != nil {
		t.Fatal(err)
	}
	shard := sh.WorkerShard()
	shard.AddRange(3, []Vec{{1, 0, 0, 0, 0}}, 2)
	// Direct AddRange (no shard) must also land.
	sh.AddRange(3, []Vec{{0, 1, 0, 0, 0}}, 1)
	if got := sh.Total(3); math.Abs(got-3) > 1e-9 {
		t.Fatalf("lazy Total(3) = %v, want 3", got)
	}
	v := sh.Vector(3)
	if math.Abs(v[0]-2) > 1e-9 || math.Abs(v[1]-1) > 1e-9 {
		t.Fatalf("lazy Vector(3) = %v, want [2 1 0 0 0]", v)
	}
}

// TestShardedStateInterop: a sharded accumulator's serialized state
// must load into a plain striped accumulator and vice versa — the
// cluster transport cannot tell the two apart.
func TestShardedStateInterop(t *testing.T) {
	for _, mode := range allModes() {
		const L = 64
		rng := rand.New(rand.NewSource(7))
		stream := randomStream(rng, 300, L, 48)

		sh, err := NewSharded(mode, L)
		if err != nil {
			t.Fatal(err)
		}
		shard := sh.WorkerShard()
		for _, ev := range stream {
			shard.AddRange(ev.start, ev.zs, ev.weight)
		}
		blob, err := sh.State()
		if err != nil {
			t.Fatalf("%v: state: %v", mode, err)
		}
		striped, err := New(mode, L)
		if err != nil {
			t.Fatal(err)
		}
		if err := striped.(Stateful).LoadStateBytes(blob); err != nil {
			t.Fatalf("%v: load into striped: %v", mode, err)
		}
		for pos := 0; pos < L; pos += 7 {
			if a, b := sh.Total(pos), striped.Total(pos); math.Abs(a-b) > 1e-9 {
				t.Fatalf("%v pos %d: sharded %v vs loaded striped %v", mode, pos, a, b)
			}
		}

		// Round-trip back into a fresh sharded wrapper with a stale shard:
		// the load must supersede it.
		sh2, err := NewSharded(mode, L)
		if err != nil {
			t.Fatal(err)
		}
		sh2.WorkerShard().AddRange(0, []Vec{{9, 9, 9, 9, 9}}, 1)
		if err := sh2.LoadStateBytes(blob); err != nil {
			t.Fatalf("%v: load into sharded: %v", mode, err)
		}
		for pos := 0; pos < L; pos += 7 {
			if a, b := sh.Total(pos), sh2.Total(pos); math.Abs(a-b) > 1e-9 {
				t.Fatalf("%v pos %d: round-trip %v vs %v", mode, pos, b, a)
			}
		}
	}
}

// TestShardedMergeSharded: merging one sharded accumulator into another
// combines both sides first.
func TestShardedMergeSharded(t *testing.T) {
	a, err := NewSharded(Norm, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSharded(Norm, 16)
	if err != nil {
		t.Fatal(err)
	}
	a.WorkerShard().AddRange(1, []Vec{{1, 0, 0, 0, 0}}, 1)
	b.WorkerShard().AddRange(1, []Vec{{0, 0, 1, 0, 0}}, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Total(1); math.Abs(got-4) > 1e-9 {
		t.Fatalf("merged total = %v, want 4", got)
	}
}

// TestMergeTreeMatchesSerial: the parallel tree merge must equal a
// serial left fold for every mode (Merge is associative within the
// modes' tolerances; Norm is checked tightly).
func TestMergeTreeMatchesSerial(t *testing.T) {
	const L, K = 96, 5 // odd count exercises the leftover leg
	rng := rand.New(rand.NewSource(11))
	streams := make([][]mergeEvent, K)
	for i := range streams {
		streams[i] = randomStream(rng, 200, L, 64)
	}
	treeAccs := make([]Accumulator, K)
	serial, err := New(Norm, L)
	if err != nil {
		t.Fatal(err)
	}
	for i := range streams {
		treeAccs[i] = feed(t, Norm, L, streams[i])
		if err := serial.Merge(feed(t, Norm, L, streams[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := MergeTree(treeAccs); err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < L; pos++ {
		a, b := serial.Total(pos), treeAccs[0].Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos %d: tree %v vs serial %v", pos, b, a)
		}
	}
}

// TestMergeTreeError: a length mismatch surfaces instead of corrupting.
func TestMergeTreeError(t *testing.T) {
	a, _ := New(Norm, 8)
	b, _ := New(Norm, 9)
	if err := MergeTree([]Accumulator{a, b}); err == nil {
		t.Fatal("expected mode/length mismatch error")
	}
}

// TestEstimateBytes pins the per-position estimates against the real
// allocators (CentDisc adds a shared codebook on top of its 5 B/base).
func TestEstimateBytes(t *testing.T) {
	const L = 10_000
	for _, mode := range allModes() {
		acc, err := New(mode, L)
		if err != nil {
			t.Fatal(err)
		}
		est, real := EstimateBytes(mode, L), acc.MemoryBytes()
		if est > real {
			t.Errorf("%v: estimate %d exceeds real footprint %d", mode, est, real)
		}
		if real > est+512*1024 { // codebook & slack stay well under this
			t.Errorf("%v: estimate %d far below real footprint %d", mode, est, real)
		}
	}
}
