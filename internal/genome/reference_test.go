package genome

import (
	"strings"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/fasta"
)

func refFixture(t *testing.T) *Reference {
	t.Helper()
	r, err := NewReference([]*fasta.Record{
		{Name: "chr1", Seq: dna.MustParseSeq("ACGTACGT")},
		{Name: "chr2", Seq: dna.MustParseSeq("TTTT")},
		{Name: "chr3", Seq: dna.MustParseSeq("GGCCGG")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewReferenceValidation(t *testing.T) {
	if _, err := NewReference(nil); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := NewReference([]*fasta.Record{{Name: "", Seq: dna.MustParseSeq("A")}}); err == nil {
		t.Error("empty contig name accepted")
	}
	if _, err := NewReference([]*fasta.Record{{Name: "x", Seq: nil}}); err == nil {
		t.Error("empty contig accepted")
	}
	if _, err := NewReference([]*fasta.Record{
		{Name: "x", Seq: dna.MustParseSeq("A")},
		{Name: "x", Seq: dna.MustParseSeq("C")},
	}); err == nil {
		t.Error("duplicate contig accepted")
	}
}

func TestReferenceConcat(t *testing.T) {
	r := refFixture(t)
	wantLen := 18 + 2*BoundarySpacer
	if r.Len() != wantLen {
		t.Errorf("Len = %d, want %d", r.Len(), wantLen)
	}
	spacer := strings.Repeat("N", BoundarySpacer)
	want := "ACGTACGT" + spacer + "TTTT" + spacer + "GGCCGG"
	if r.Seq().String() != want {
		t.Errorf("concat = %q", r.Seq().String())
	}
	if len(r.Contigs()) != 3 || r.Contigs()[2].Offset != 12+2*BoundarySpacer {
		t.Errorf("contigs wrong: %+v", r.Contigs())
	}
}

func TestLocateAndGlobalPos(t *testing.T) {
	r := refFixture(t)
	o2 := 8 + BoundarySpacer
	o3 := o2 + 4 + BoundarySpacer
	cases := []struct {
		global int
		contig string
		local  int
	}{
		{0, "chr1", 0},
		{7, "chr1", 7},
		{o2, "chr2", 0},
		{o2 + 3, "chr2", 3},
		{o3, "chr3", 0},
		{o3 + 5, "chr3", 5},
	}
	for _, c := range cases {
		name, local, err := r.Locate(c.global)
		if err != nil || name != c.contig || local != c.local {
			t.Errorf("Locate(%d) = %s:%d,%v want %s:%d", c.global, name, local, err, c.contig, c.local)
		}
		back, err := r.GlobalPos(c.contig, c.local)
		if err != nil || back != c.global {
			t.Errorf("GlobalPos(%s,%d) = %d,%v want %d", c.contig, c.local, back, err, c.global)
		}
	}
	if _, _, err := r.Locate(-1); err == nil {
		t.Error("negative position accepted")
	}
	if _, _, err := r.Locate(r.Len()); err == nil {
		t.Error("past-end position accepted")
	}
	if _, _, err := r.Locate(8); err == nil {
		t.Error("spacer position accepted")
	}
	if _, _, err := r.Locate(o2 + 4); err == nil {
		t.Error("second spacer position accepted")
	}
	if _, err := r.GlobalPos("nope", 0); err == nil {
		t.Error("unknown contig accepted")
	}
	if _, err := r.GlobalPos("chr2", 4); err == nil {
		t.Error("past-contig-end accepted")
	}
}

func TestBase(t *testing.T) {
	r := refFixture(t)
	b, err := r.Base(8 + BoundarySpacer)
	if err != nil || b != dna.T {
		t.Errorf("Base(first of chr2) = %v,%v want T", b, err)
	}
	// Spacer positions read as N.
	b, err = r.Base(8)
	if err != nil || b != dna.N {
		t.Errorf("Base(spacer) = %v,%v want N", b, err)
	}
	if _, err := r.Base(r.Len()); err == nil {
		t.Error("OOB base accepted")
	}
}

func TestWindow(t *testing.T) {
	r := refFixture(t)
	w, start := r.Window(6, 4)
	if start != 6 || w.String() != "GTNN" {
		t.Errorf("Window(6,4) = %q at %d", w.String(), start)
	}
	w, start = r.Window(-3, 5)
	if start != 0 || w.String() != "AC" {
		t.Errorf("Window(-3,5) = %q at %d", w.String(), start)
	}
	end := r.Len() - 2
	w, start = r.Window(end, 10)
	if start != end || w.String() != "GG" {
		t.Errorf("Window(end,10) = %q at %d", w.String(), start)
	}
	w, _ = r.Window(r.Len()+10, 5)
	if w != nil {
		t.Errorf("Window past end = %q", w.String())
	}
}

func TestNewSingleContig(t *testing.T) {
	r, err := NewSingleContig("x", dna.MustParseSeq("ACGT"))
	if err != nil || r.Len() != 4 {
		t.Errorf("NewSingleContig: %v, %v", r, err)
	}
}
