package genome

import (
	"fmt"
	"sync"

	"gnumap/internal/dna"
)

// codebookSize is fixed by the single-byte index.
const codebookSize = 256

// Codebook is the CENTDISC centroid set: 256 channel distributions
// (each summing to 1) sampled with biological weighting — pure-base
// states and transition mixtures (A/G, C/T) are sampled densely,
// transversion mixtures sparsely, following the design of the paper's
// §VI-B-2 (after Lloyd & Snell 2011).
type Codebook struct {
	centroids [codebookSize]Vec
	// mergeTable[i][j] is the nearest centroid to the equal-weight
	// average of centroids i and j — the paper's precomputed reduction
	// lookup for the MPI phase.
	mergeTable [codebookSize][codebookSize]uint8
}

// defaultCodebook is built once; the construction is deterministic.
var defaultCodebook = buildDefaultCodebook()

// DefaultCodebook returns the package-level biologically weighted
// codebook shared by all CENTDISC accumulators.
func DefaultCodebook() *Codebook { return defaultCodebook }

// buildDefaultCodebook enumerates the centroid set. Budget (256):
//   - 1 zero/uniform-free slot: the uniform distribution.
//   - 5 pure states with 5 noise levels each (25).
//   - transition pairs (A,G) and (C,T): 2 pairs × 17 mixture ratios ×
//     3 noise levels = 102 (densest region, as transitions dominate).
//   - transversion pairs (8 pairs: A/C, A/T, C/G, G/T plus the 4
//     base-gap pairs): 8 × 7 ratios × 2 noise = 112.
//   - 16 three-way mixtures for residual coverage.
//
// Total 1 + 25 + 102 + 112 + 16 = 256.
func buildDefaultCodebook() *Codebook {
	cb := &Codebook{}
	idx := 0
	add := func(v Vec) {
		// Normalize defensively; every entry must be a distribution.
		s := 0.0
		for _, x := range v {
			s += x
		}
		if s <= 0 {
			v = Vec{0.2, 0.2, 0.2, 0.2, 0.2}
		} else {
			for k := range v {
				v[k] /= s
			}
		}
		if idx < codebookSize {
			cb.centroids[idx] = v
			idx++
		}
	}
	mix2 := func(a, b int, f, noise float64) Vec {
		var v Vec
		for k := range v {
			v[k] = noise / float64(dna.NumChannels)
		}
		v[a] += (1 - noise) * f
		v[b] += (1 - noise) * (1 - f)
		return v
	}
	// 1: uniform.
	add(Vec{0.2, 0.2, 0.2, 0.2, 0.2})
	// 25: pure states with noise.
	for c := 0; c < dna.NumChannels; c++ {
		for _, noise := range []float64{0, 0.05, 0.1, 0.2, 0.35} {
			add(mix2(c, c, 1, noise))
		}
	}
	// 102: transition mixtures, dense ratios.
	transitions := [][2]int{{int(dna.A), int(dna.G)}, {int(dna.C), int(dna.T)}}
	for _, pr := range transitions {
		for i := 0; i < 17; i++ {
			f := 0.06 + 0.88*float64(i)/16 // 0.06 .. 0.94
			for _, noise := range []float64{0, 0.08, 0.16} {
				add(mix2(pr[0], pr[1], f, noise))
			}
		}
	}
	// 112: transversion and gap mixtures, sparse ratios.
	others := [][2]int{
		{int(dna.A), int(dna.C)}, {int(dna.A), int(dna.T)},
		{int(dna.C), int(dna.G)}, {int(dna.G), int(dna.T)},
		{int(dna.A), int(dna.ChGap)}, {int(dna.C), int(dna.ChGap)},
		{int(dna.G), int(dna.ChGap)}, {int(dna.T), int(dna.ChGap)},
	}
	for _, pr := range others {
		for i := 0; i < 7; i++ {
			f := 0.125 + 0.75*float64(i)/6
			for _, noise := range []float64{0, 0.1} {
				add(mix2(pr[0], pr[1], f, noise))
			}
		}
	}
	// 16: three-way mixtures (two bases + background).
	threeWay := [][2]int{{0, 2}, {1, 3}, {0, 1}, {2, 3}}
	for _, pr := range threeWay {
		for _, f := range []float64{0.4, 0.3} {
			add(addTwo(Vec{0.05, 0.05, 0.05, 0.05, 0.05}, pr[0], pr[1], f))
			add(addTwo(Vec{0.1, 0.1, 0.1, 0.1, 0.1}, pr[0], pr[1], f))
		}
	}
	// Fill any remaining slots (construction drift safety) uniformly.
	for idx < codebookSize {
		add(Vec{0.2, 0.2, 0.2, 0.2, 0.2})
	}
	cb.buildMergeTable()
	return cb
}

// addTwo returns v with (1-sum(v)) split f/(1-f) across channels a
// and b. (Vec is an alias for a plain array type, so this cannot be a
// method.)
func addTwo(v Vec, a, b int, f float64) Vec {
	s := 0.0
	for _, x := range v {
		s += x
	}
	rem := 1 - s
	v[a] += rem * f
	v[b] += rem * (1 - f)
	return v
}

// Nearest returns the codebook index minimizing squared distance to the
// normalized form of v; total is v's mass (0 total maps to uniform).
func (cb *Codebook) Nearest(v *Vec, total float64) uint8 {
	var p Vec
	if total > 0 {
		for k := range p {
			p[k] = v[k] / total
		}
	} else {
		p = Vec{0.2, 0.2, 0.2, 0.2, 0.2}
	}
	best, bestD := 0, 1e30
	for i := 0; i < codebookSize; i++ {
		c := &cb.centroids[i]
		d := 0.0
		for k := 0; k < dna.NumChannels; k++ {
			diff := p[k] - c[k]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return uint8(best)
}

// Centroid returns centroid i (a distribution over five channels).
func (cb *Codebook) Centroid(i uint8) Vec { return cb.centroids[i] }

// buildMergeTable precomputes nearest-centroid results for equal-weight
// pairwise merges (the paper's table-lookup reduction).
func (cb *Codebook) buildMergeTable() {
	for i := 0; i < codebookSize; i++ {
		for j := i; j < codebookSize; j++ {
			var avg Vec
			for k := 0; k < dna.NumChannels; k++ {
				avg[k] = (cb.centroids[i][k] + cb.centroids[j][k]) / 2
			}
			n := cb.Nearest(&avg, 1)
			cb.mergeTable[i][j] = n
			cb.mergeTable[j][i] = n
		}
	}
}

// MergeEqual returns the precomputed nearest centroid for an
// equal-weight merge of centroids i and j.
func (cb *Codebook) MergeEqual(i, j uint8) uint8 { return cb.mergeTable[i][j] }

// MemoryBytes reports the codebook footprint (shared across positions).
func (cb *Codebook) MemoryBytes() int64 {
	return int64(codebookSize)*dna.NumChannels*8 + codebookSize*codebookSize
}

// centDiscAcc is the CENTDISC layout: per position, one float32 total
// plus a single codebook byte.
type centDiscAcc struct {
	length int
	total  []float32
	code   []uint8
	cb     *Codebook
	locks  []sync.Mutex
}

func newCentDiscAcc(length int) *centDiscAcc {
	return &centDiscAcc{
		length: length,
		total:  make([]float32, length),
		code:   make([]uint8, length),
		cb:     DefaultCodebook(),
		locks:  stripes(length),
	}
}

func (a *centDiscAcc) Len() int   { return a.length }
func (a *centDiscAcc) Mode() Mode { return CentDisc }

// AddRange applies the paper's *online* centroid update (§VI-B-2): the
// incoming per-position contribution is itself quantized to a centroid,
// and the new state is the precomputed equal-weight table merge of the
// current and incoming centroids. This is the "significant rounding
// approximations each time a new sequence is added" the paper
// identifies as the method's fatal flaw: the merge ignores how much
// mass the position already holds, so one late discordant read drags
// the distribution halfway toward itself — which is what collapses
// CENTDISC's calling precision in Table III.
func (a *centDiscAcc) AddRange(start int, zs []Vec, weight float64) {
	from, to, zsFrom, ok := clampRange(start, len(zs), a.length)
	if !ok {
		return
	}
	lkFirst, lkLast := lockRange(a.locks, from, to)
	defer unlockRange(a.locks, lkFirst, lkLast)
	for pos := from; pos < to; pos++ {
		z := &zs[zsFrom+pos-from]
		var mass float64
		for k := 0; k < dna.NumChannels; k++ {
			mass += weight * z[k]
		}
		if mass <= 0 {
			continue
		}
		var incoming Vec
		for k := 0; k < dna.NumChannels; k++ {
			incoming[k] = weight * z[k]
		}
		qIn := a.cb.Nearest(&incoming, mass)
		if a.total[pos] == 0 {
			a.code[pos] = qIn
		} else {
			a.code[pos] = a.cb.MergeEqual(a.code[pos], qIn)
		}
		a.total[pos] += float32(mass)
	}
}

func (a *centDiscAcc) Vector(pos int) Vec {
	lkFirst, lkLast := lockRange(a.locks, pos, pos+1)
	defer unlockRange(a.locks, lkFirst, lkLast)
	t := float64(a.total[pos])
	c := a.cb.Centroid(a.code[pos])
	var v Vec
	if t <= 0 {
		return v
	}
	for k := 0; k < dna.NumChannels; k++ {
		v[k] = t * c[k]
	}
	return v
}

func (a *centDiscAcc) Total(pos int) float64 {
	lkFirst, lkLast := lockRange(a.locks, pos, pos+1)
	defer unlockRange(a.locks, lkFirst, lkLast)
	return float64(a.total[pos])
}

func (a *centDiscAcc) MemoryBytes() int64 {
	// Codebook and merge table are shared, amortized across positions;
	// reported once per accumulator as the paper reports per-process
	// virtual memory.
	return int64(len(a.total))*4 + int64(len(a.code)) + a.cb.MemoryBytes()
}

func (a *centDiscAcc) Merge(other Accumulator) error {
	o, ok := other.(*centDiscAcc)
	if !ok || o.length != a.length {
		return fmt.Errorf("genome: cannot merge %v/%d into CENTDISC/%d", other.Mode(), other.Len(), a.length)
	}
	lkFirst, lkLast := lockRange(a.locks, 0, a.length)
	defer unlockRange(a.locks, lkFirst, lkLast)
	for pos := 0; pos < a.length; pos++ {
		ta, to := float64(a.total[pos]), float64(o.total[pos])
		switch {
		case to == 0:
			continue
		case ta == 0:
			a.total[pos] = o.total[pos]
			a.code[pos] = o.code[pos]
		case ta == to:
			// The paper's fast path: equal totals reduce via the
			// precomputed pairwise table.
			a.code[pos] = a.cb.MergeEqual(a.code[pos], o.code[pos])
			a.total[pos] = float32(ta + to)
		default:
			ca := a.cb.Centroid(a.code[pos])
			co := a.cb.Centroid(o.code[pos])
			var v Vec
			for k := 0; k < dna.NumChannels; k++ {
				v[k] = ta*ca[k] + to*co[k]
			}
			t := ta + to
			a.total[pos] = float32(t)
			a.code[pos] = a.cb.Nearest(&v, t)
		}
	}
	return nil
}
