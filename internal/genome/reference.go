package genome

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"gnumap/internal/dna"
	"gnumap/internal/fasta"
)

// Contig is one reference sequence with its offset in the concatenated
// global coordinate space.
type Contig struct {
	Name   string
	Seq    dna.Seq
	Offset int
}

// BoundarySpacer is the number of N bases inserted between contigs in
// the concatenated coordinate space. N runs are never indexed as seed
// k-mers and carry only uniform emission probability, so reads cannot
// map across a contig junction as if the two contigs were adjacent.
// 64 exceeds any realistic read length's seed span.
const BoundarySpacer = 64

// Reference is a multi-contig reference genome addressed by a single
// global coordinate space: the concatenation of its contigs with
// BoundarySpacer N bases between consecutive contigs. The mapper
// indexes and accumulates over global coordinates; Locate maps back to
// contig-relative coordinates for reporting.
type Reference struct {
	contigs []Contig
	concat  dna.Seq

	digestOnce sync.Once
	digest     [32]byte
}

// NewReference builds a Reference from FASTA records.
func NewReference(recs []*fasta.Record) (*Reference, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("genome: reference has no contigs")
	}
	r := &Reference{}
	offset := 0
	seen := make(map[string]bool, len(recs))
	for i, rec := range recs {
		if rec.Name == "" {
			return nil, fmt.Errorf("genome: contig with empty name")
		}
		if seen[rec.Name] {
			return nil, fmt.Errorf("genome: duplicate contig name %q", rec.Name)
		}
		if len(rec.Seq) == 0 {
			return nil, fmt.Errorf("genome: contig %q is empty", rec.Name)
		}
		seen[rec.Name] = true
		if i > 0 {
			offset += BoundarySpacer
		}
		r.contigs = append(r.contigs, Contig{Name: rec.Name, Seq: rec.Seq, Offset: offset})
		offset += len(rec.Seq)
	}
	r.concat = make(dna.Seq, 0, offset)
	for i, c := range r.contigs {
		if i > 0 {
			for k := 0; k < BoundarySpacer; k++ {
				r.concat = append(r.concat, dna.N)
			}
		}
		r.concat = append(r.concat, c.Seq...)
	}
	return r, nil
}

// NewSingleContig wraps one sequence as a Reference.
func NewSingleContig(name string, seq dna.Seq) (*Reference, error) {
	return NewReference([]*fasta.Record{{Name: name, Seq: seq}})
}

// Len returns the total reference length across contigs.
func (r *Reference) Len() int { return len(r.concat) }

// Seq returns the concatenated reference sequence (aliased; read-only).
func (r *Reference) Seq() dna.Seq { return r.concat }

// Contigs returns the contig table (aliased; read-only).
func (r *Reference) Contigs() []Contig { return r.contigs }

// Digest returns the SHA-256 of the concatenated reference sequence
// (one byte per base code, spacers included). It identifies the exact
// coordinate space a checkpoint's accumulator state indexes into;
// computed once and cached.
func (r *Reference) Digest() [32]byte {
	r.digestOnce.Do(func() {
		h := sha256.New()
		buf := make([]byte, 0, 1<<16)
		for i := 0; i < len(r.concat); i += cap(buf) {
			end := i + cap(buf)
			if end > len(r.concat) {
				end = len(r.concat)
			}
			buf = buf[:0]
			for _, c := range r.concat[i:end] {
				buf = append(buf, byte(c))
			}
			h.Write(buf)
		}
		copy(r.digest[:], h.Sum(nil))
	})
	return r.digest
}

// Base returns the reference base at a global position.
func (r *Reference) Base(pos int) (dna.Code, error) {
	if pos < 0 || pos >= len(r.concat) {
		return dna.N, fmt.Errorf("genome: position %d outside reference of length %d", pos, len(r.concat))
	}
	return r.concat[pos], nil
}

// Locate maps a global position to (contig name, contig-relative
// 0-based position). Positions inside an inter-contig spacer return an
// error.
func (r *Reference) Locate(pos int) (string, int, error) {
	if pos < 0 || pos >= len(r.concat) {
		return "", 0, fmt.Errorf("genome: position %d outside reference of length %d", pos, len(r.concat))
	}
	// Binary search for the last contig with Offset <= pos.
	i := sort.Search(len(r.contigs), func(i int) bool { return r.contigs[i].Offset > pos }) - 1
	if i < 0 {
		return "", 0, fmt.Errorf("genome: position %d precedes the first contig", pos)
	}
	c := r.contigs[i]
	if pos-c.Offset >= len(c.Seq) {
		return "", 0, fmt.Errorf("genome: position %d falls in the spacer after contig %q", pos, c.Name)
	}
	return c.Name, pos - c.Offset, nil
}

// GlobalPos maps (contig name, contig-relative position) to a global
// position.
func (r *Reference) GlobalPos(contig string, pos int) (int, error) {
	for _, c := range r.contigs {
		if c.Name == contig {
			if pos < 0 || pos >= len(c.Seq) {
				return 0, fmt.Errorf("genome: position %d outside contig %q of length %d", pos, contig, len(c.Seq))
			}
			return c.Offset + pos, nil
		}
	}
	return 0, fmt.Errorf("genome: unknown contig %q", contig)
}

// Window returns the reference slice [start, start+length) clipped to
// the reference bounds; the returned start is the clipped start.
func (r *Reference) Window(start, length int) (dna.Seq, int) {
	end := start + length
	if start < 0 {
		start = 0
	}
	if end > len(r.concat) {
		end = len(r.concat)
	}
	if start >= end {
		return nil, start
	}
	return r.concat[start:end], start
}
