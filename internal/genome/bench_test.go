package genome

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkAddRange measures the per-mode cost of the accumulation hot
// path: one 62-position read contribution.
func BenchmarkAddRange(b *testing.B) {
	zs := make([]Vec, 62)
	for i := range zs {
		zs[i] = Vec{0.9, 0.05, 0.03, 0.02, 0}
	}
	for _, mode := range allModes() {
		b.Run(mode.String(), func(b *testing.B) {
			acc, err := New(mode, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.AddRange((i*977)%(100_000-70), zs, 1)
			}
		})
	}
}

// BenchmarkAccumulatorContention compares striped-lock accumulation
// against per-worker lock-free shards under concurrent writers. Every
// goroutine hammers AddRange over the same genome; the sharded variant
// pays a final Combine (tree merge), which is included in the measured
// time so the comparison is end-to-end honest.
func BenchmarkAccumulatorContention(b *testing.B) {
	const genomeLen = 100_000
	zs := make([]Vec, 62)
	for i := range zs {
		zs[i] = Vec{0.9, 0.05, 0.03, 0.02, 0}
	}
	run := func(b *testing.B, workers int, makeAcc func() (Accumulator, error)) {
		acc, err := makeAcc()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			target := acc
			if sp, ok := acc.(ShardProvider); ok {
				target = sp.WorkerShard()
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Interleaved positions: all workers touch all stripes,
				// the worst case for striped locking.
				for i := 0; i < b.N; i++ {
					target.AddRange(((i*workers+w)*977)%(genomeLen-70), zs, 1)
				}
			}(w)
		}
		wg.Wait()
		if sp, ok := acc.(ShardProvider); ok {
			if _, err := sp.Combine(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*workers)/b.Elapsed().Seconds(), "adds/s")
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("striped-w%d", workers), func(b *testing.B) {
			run(b, workers, func() (Accumulator, error) { return New(Norm, genomeLen) })
		})
		b.Run(fmt.Sprintf("sharded-w%d", workers), func(b *testing.B) {
			run(b, workers, func() (Accumulator, error) { return NewSharded(Norm, genomeLen) })
		})
	}
}

func BenchmarkMerge(b *testing.B) {
	zs := make([]Vec, 62)
	for i := range zs {
		zs[i] = Vec{0.9, 0.05, 0.03, 0.02, 0}
	}
	for _, mode := range allModes() {
		b.Run(mode.String(), func(b *testing.B) {
			src, err := New(mode, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				src.AddRange((i*977)%(100_000-70), zs, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, err := New(mode, 100_000)
				if err != nil {
					b.Fatal(err)
				}
				if err := dst.Merge(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
