package genome

import "testing"

// BenchmarkAddRange measures the per-mode cost of the accumulation hot
// path: one 62-position read contribution.
func BenchmarkAddRange(b *testing.B) {
	zs := make([]Vec, 62)
	for i := range zs {
		zs[i] = Vec{0.9, 0.05, 0.03, 0.02, 0}
	}
	for _, mode := range allModes() {
		b.Run(mode.String(), func(b *testing.B) {
			acc, err := New(mode, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.AddRange((i*977)%(100_000-70), zs, 1)
			}
		})
	}
}

func BenchmarkMerge(b *testing.B) {
	zs := make([]Vec, 62)
	for i := range zs {
		zs[i] = Vec{0.9, 0.05, 0.03, 0.02, 0}
	}
	for _, mode := range allModes() {
		b.Run(mode.String(), func(b *testing.B) {
			src, err := New(mode, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				src.AddRange((i*977)%(100_000-70), zs, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, err := New(mode, 100_000)
				if err != nil {
					b.Fatal(err)
				}
				if err := dst.Merge(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
