package genome

import (
	"math"
	"math/rand"
	"testing"

	"gnumap/internal/dna"
)

// Property: for every accumulator mode, partitioning a random
// contribution stream across K shard accumulators and merging them
// yields the same state as one accumulator fed the whole stream —
// within the mode's representation tolerance. This is exactly the
// invariant the read-split cluster reduction (and the streaming
// dealer) relies on: shard assignment must not change the result.

// mergeEvent is one AddRange call of the random stream.
type mergeEvent struct {
	start  int
	zs     []Vec
	weight float64
}

// randomStream builds a reproducible stream mixing dense random
// contributions with a pure-channel zone (positions pureLo..L) whose
// events only ever touch one channel, so lossy modes can be checked
// for argmax preservation there.
func randomStream(rng *rand.Rand, n, L, pureLo int) []mergeEvent {
	events := make([]mergeEvent, n)
	for i := range events {
		var ev mergeEvent
		if i%4 == 3 {
			// Pure-channel zone: single-position events, channel fixed
			// by position so every shard agrees on it.
			pos := pureLo + rng.Intn(L-pureLo)
			var z Vec
			z[pos%dna.NumChannels] = 0.2 + rng.Float64()
			ev = mergeEvent{start: pos, zs: []Vec{z}, weight: 0.5 + rng.Float64()}
		} else {
			span := 1 + rng.Intn(3)
			zs := make([]Vec, span)
			for j := range zs {
				for k := 0; k < dna.NumChannels; k++ {
					zs[j][k] = rng.Float64()
				}
			}
			ev = mergeEvent{start: rng.Intn(pureLo - span), zs: zs, weight: 0.1 + 1.5*rng.Float64()}
		}
		events[i] = ev
	}
	return events
}

func feed(t *testing.T, mode Mode, L int, events []mergeEvent) Accumulator {
	t.Helper()
	acc, err := New(mode, L)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		acc.AddRange(ev.start, ev.zs, ev.weight)
	}
	return acc
}

func TestMergePropertyShardsEqualSingle(t *testing.T) {
	const (
		L      = 160
		pureLo = 120
		K      = 4
		events = 2000
	)
	for _, mode := range []Mode{Norm, CharDisc, CentDisc} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed * 7919))
			stream := randomStream(rng, events, L, pureLo)

			single := feed(t, mode, L, stream)

			// Partition round-robin, preserving each shard's stream order.
			parts := make([][]mergeEvent, K)
			for i, ev := range stream {
				parts[i%K] = append(parts[i%K], ev)
			}
			merged := feed(t, mode, L, parts[0])
			for s := 1; s < K; s++ {
				shard := feed(t, mode, L, parts[s])
				if err := merged.Merge(shard); err != nil {
					t.Fatalf("%v seed %d: merge shard %d: %v", mode, seed, s, err)
				}
			}

			for pos := 0; pos < L; pos++ {
				wantT, gotT := single.Total(pos), merged.Total(pos)
				if math.Abs(wantT-gotT) > 1e-3*(1+wantT) {
					t.Fatalf("%v seed %d pos %d: total %v (merged) vs %v (single)", mode, seed, pos, gotT, wantT)
				}
				want, got := single.Vector(pos), merged.Vector(pos)
				switch mode {
				case Norm:
					// Exact up to float32 accumulation order.
					for k := 0; k < dna.NumChannels; k++ {
						if math.Abs(want[k]-got[k]) > 1e-3*(1+want[k]) {
							t.Fatalf("Norm seed %d pos %d ch %d: %v vs %v", seed, pos, k, got[k], want[k])
						}
					}
				case CharDisc:
					// Channel mass is re-quantized to 255ths of the total on
					// every touch; both sides drift, so allow a few percent
					// of the position's mass per channel.
					tol := 0.1*wantT + 0.5
					for k := 0; k < dna.NumChannels; k++ {
						if math.Abs(want[k]-got[k]) > tol {
							t.Fatalf("CharDisc seed %d pos %d ch %d: %v vs %v (total %v)", seed, pos, k, got[k], want[k], wantT)
						}
					}
				case CentDisc:
					// Codebook merges are lossy: check the invariants that
					// must survive — the vector still sums to the total, and
					// pure-channel positions keep their argmax.
					sum := 0.0
					for k := 0; k < dna.NumChannels; k++ {
						sum += got[k]
					}
					if math.Abs(sum-gotT) > 1e-3*(1+gotT) {
						t.Fatalf("CentDisc seed %d pos %d: vector sums to %v, total %v", seed, pos, sum, gotT)
					}
					if pos >= pureLo && wantT > 0 {
						wantCh := pos % dna.NumChannels
						bestK, bestV := -1, -1.0
						for k := 0; k < dna.NumChannels; k++ {
							if got[k] > bestV {
								bestK, bestV = k, got[k]
							}
						}
						if bestK != wantCh {
							t.Fatalf("CentDisc seed %d pure pos %d: argmax channel %d, want %d (vec %v)", seed, pos, bestK, wantCh, got)
						}
					}
				}
			}
		}
	}
}

// TestMergeEmptyShardIsIdentity: merging a never-touched shard must not
// change any mode's state.
func TestMergeEmptyShardIsIdentity(t *testing.T) {
	const L = 64
	rng := rand.New(rand.NewSource(99))
	stream := randomStream(rng, 300, L, 48)
	for _, mode := range []Mode{Norm, CharDisc, CentDisc} {
		acc := feed(t, mode, L, stream)
		before := make([]Vec, L)
		totals := make([]float64, L)
		for pos := 0; pos < L; pos++ {
			before[pos] = acc.Vector(pos)
			totals[pos] = acc.Total(pos)
		}
		empty, err := New(mode, L)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Merge(empty); err != nil {
			t.Fatalf("%v: merge empty: %v", mode, err)
		}
		for pos := 0; pos < L; pos++ {
			if acc.Total(pos) != totals[pos] {
				t.Fatalf("%v pos %d: total changed %v -> %v", mode, pos, totals[pos], acc.Total(pos))
			}
			got := acc.Vector(pos)
			for k := 0; k < dna.NumChannels; k++ {
				if math.Abs(got[k]-before[pos][k]) > 1e-9 {
					t.Fatalf("%v pos %d ch %d: vector changed %v -> %v", mode, pos, k, before[pos][k], got[k])
				}
			}
		}
	}
}

// TestCharDiscMergeSaturation pins the 255-denominator quantization
// edge on the MERGE path (the add path is covered by
// TestCharDiscSaturation): merging a shard holding a huge pure-channel
// mass with a shard holding a tiny different-channel mass re-quantizes
// against the combined total, so the minor channel's share falls below
// half a quantum and vanishes — the dominant channel saturates the
// denominator — while the scalar total still tracks the true mass.
// This is how a rare allele seen by only one cluster shard can be
// erased at reduction time under CHARDISC.
func TestCharDiscMergeSaturation(t *testing.T) {
	acc, err := New(CharDisc, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc.AddRange(0, []Vec{{1000}}, 1) // 1000 units, all channel 0
	minor, err := New(CharDisc, 1)
	if err != nil {
		t.Fatal(err)
	}
	minor.AddRange(0, []Vec{{0, 1}}, 1) // one unit of channel 1
	// Pre-merge, the minor shard's own quantization keeps its mass.
	if v := minor.Vector(0); v[1] != 1 {
		t.Fatalf("minor shard lost its own mass: %v", v)
	}
	if err := acc.Merge(minor); err != nil {
		t.Fatal(err)
	}

	if got, want := acc.Total(0), 1001.0; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("total = %v, want %v", got, want)
	}
	v := acc.Vector(0)
	// Channel 1's exact fraction is 1/1001 of 255 ≈ 0.25 quanta: below
	// half a quantum, largest-remainder rounding hands its unit to the
	// dominant channel, so the reconstructed minor mass is exactly zero.
	if v[1] != 0 {
		t.Errorf("minor channel survived quantization: %v", v[1])
	}
	if math.Abs(v[0]-1001) > 1e-6*1001 {
		t.Errorf("dominant channel = %v, want 1001 (saturated fraction)", v[0])
	}
	// The quantized fractions must still sum to the full denominator —
	// no mass leaks even at saturation.
	sum := 0.0
	for k := 0; k < dna.NumChannels; k++ {
		sum += v[k]
	}
	if math.Abs(sum-1001) > 1e-6*1001 {
		t.Errorf("vector sums to %v, want 1001", sum)
	}
}
