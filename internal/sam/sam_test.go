package sam

import (
	"bytes"
	"strings"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

func TestHeaderAndRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	contigs := []genome.Contig{{Name: "chr1", Seq: dna.MustParseSeq("ACGTACGT")}}
	if err := w.WriteHeader(contigs, "gnumap-snp"); err != nil {
		t.Fatal(err)
	}
	rec := &Record{
		QName: "read one", // space must be sanitized
		Flag:  FlagReverse,
		RName: "chr1",
		Pos:   3,
		MapQ:  42,
		CIGAR: "4M",
		Seq:   dna.MustParseSeq("GTAC"),
		Qual:  []uint8{30, 30, 30, 30},
	}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"@HD\tVN:1.6",
		"@SQ\tSN:chr1\tLN:8",
		"@PG\tID:gnumap-snp",
		"read_one\t16\tchr1\t3\t42\t4M\t*\t0\t0\tGTAC\t????",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if w.NumRecords() != 1 {
		t.Errorf("NumRecords = %d", w.NumRecords())
	}
}

func TestUnmappedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(nil, "p"); err != nil {
		t.Fatal(err)
	}
	rd := &fastq.Read{Name: "u", Seq: dna.MustParseSeq("AC"), Qual: []uint8{10, 20}}
	if err := w.Write(UnmappedRecord(rd)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "u\t4\t*\t0\t0\t*\t*\t0\t0\tAC\t+5") {
		t.Errorf("unmapped record wrong:\n%s", buf.String())
	}
}

func TestWriteOrderEnforced(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(&Record{QName: "x", RName: "c", CIGAR: "1M"}); err == nil {
		t.Error("record before header accepted")
	}
	if err := w.WriteHeader(nil, "p"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(nil, "p"); err == nil {
		t.Error("double header accepted")
	}
	if err := w.Write(&Record{QName: "x", RName: "", CIGAR: "1M"}); err == nil {
		t.Error("mapped record without contig accepted")
	}
}

func TestQualityCapAndEmptyName(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(nil, "p"); err != nil {
		t.Fatal(err)
	}
	rec := &Record{QName: "", RName: "c", Pos: 1, CIGAR: "1M",
		Seq: dna.MustParseSeq("A"), Qual: []uint8{200}}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if !strings.Contains(buf.String(), "unnamed\t") {
		t.Error("empty name not replaced")
	}
	if !strings.Contains(buf.String(), "\t~\n") {
		t.Errorf("quality not capped at '~':\n%s", buf.String())
	}
}
