// Package sam implements a minimal SAM v1.6 writer for the mapper's
// best alignments, providing interoperability with standard genomics
// tooling. Only the subset the mapper produces is supported: single-end
// records, forward/reverse flags, and M/I/D CIGAR operations.
package sam

import (
	"bufio"
	"fmt"
	"io"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

// Flag bits (SAM spec §1.4).
const (
	// FlagUnmapped marks a read without an accepted alignment.
	FlagUnmapped = 0x4
	// FlagReverse marks an alignment to the reverse strand.
	FlagReverse = 0x10
)

// Record is one SAM alignment line.
type Record struct {
	// QName is the read name.
	QName string
	// Flag is the bitwise flag field.
	Flag int
	// RName is the contig name ("*" when unmapped).
	RName string
	// Pos is the 1-based leftmost mapping position (0 when unmapped).
	Pos int
	// MapQ is the mapping quality (255 = unavailable).
	MapQ int
	// CIGAR is the alignment description ("*" when unmapped).
	CIGAR string
	// Seq and Qual are in alignment orientation (reverse-complemented
	// for reverse-strand alignments, per the SAM spec).
	Seq  dna.Seq
	Qual []uint8
}

// Writer emits a SAM header followed by records.
type Writer struct {
	w          *bufio.Writer
	wroteHead  bool
	numRecords int
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// WriteHeader emits @HD, one @SQ per contig, and an @PG line. It must
// be called once, before any record.
func (w *Writer) WriteHeader(contigs []genome.Contig, program string) error {
	if w.wroteHead {
		return fmt.Errorf("sam: header already written")
	}
	if _, err := fmt.Fprintln(w.w, "@HD\tVN:1.6\tSO:unknown"); err != nil {
		return err
	}
	for _, c := range contigs {
		if _, err := fmt.Fprintf(w.w, "@SQ\tSN:%s\tLN:%d\n", c.Name, len(c.Seq)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w.w, "@PG\tID:%s\tPN:%s\n", program, program); err != nil {
		return err
	}
	w.wroteHead = true
	return nil
}

// Write emits one record.
func (w *Writer) Write(r *Record) error {
	if !w.wroteHead {
		return fmt.Errorf("sam: WriteHeader must precede records")
	}
	rname, cigar := r.RName, r.CIGAR
	pos := r.Pos
	if r.Flag&FlagUnmapped != 0 {
		rname, cigar, pos = "*", "*", 0
	}
	if rname == "" {
		return fmt.Errorf("sam: mapped record %q without contig", r.QName)
	}
	qual := make([]byte, len(r.Qual))
	for i, q := range r.Qual {
		if q > 93 {
			q = 93 // SAM caps printable qualities at '~'
		}
		qual[i] = byte(q + 33)
	}
	qualStr := string(qual)
	if len(qual) == 0 {
		qualStr = "*"
	}
	_, err := fmt.Fprintf(w.w, "%s\t%d\t%s\t%d\t%d\t%s\t*\t0\t0\t%s\t%s\n",
		sanitize(r.QName), r.Flag, rname, pos, r.MapQ, cigar, r.Seq.String(), qualStr)
	if err == nil {
		w.numRecords++
	}
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// NumRecords returns the number of records written.
func (w *Writer) NumRecords() int { return w.numRecords }

// sanitize replaces field-breaking characters in read names.
func sanitize(name string) string {
	if name == "" {
		return "unnamed"
	}
	out := []byte(name)
	for i, b := range out {
		if b == '\t' || b == '\n' || b == '\r' || b == ' ' {
			out[i] = '_'
		}
	}
	return string(out)
}

// UnmappedRecord builds the record for a read with no alignment.
func UnmappedRecord(rd *fastq.Read) *Record {
	return &Record{
		QName: rd.Name,
		Flag:  FlagUnmapped,
		RName: "*",
		MapQ:  0,
		CIGAR: "*",
		Seq:   rd.Seq,
		Qual:  rd.Qual,
	}
}
