package lrt

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestBatch must be bit-identical to element-wise Test — it is the
// contract the vectorized calling sweep's identity argument rests on.
func TestBatchMatchesTest(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, ploidy := range []Ploidy{Monoploid, Diploid} {
		zs := make([]Vector, 500)
		for i := range zs {
			switch rng.Intn(5) {
			case 0: // empty
			case 1: // ties
				for k := range zs[i] {
					zs[i][k] = float64(rng.Intn(3))
				}
			case 2: // dominant channel
				zs[i][rng.Intn(len(zs[i]))] = 5 + 20*rng.Float64()
			default:
				for k := range zs[i] {
					zs[i][k] = 10 * rng.Float64()
				}
			}
		}
		out := make([]Result, len(zs))
		n, err := TestBatch(zs, ploidy, out)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(zs) {
			t.Fatalf("ploidy %v: TestBatch wrote %d of %d", ploidy, n, len(zs))
		}
		for i, z := range zs {
			want, err := Test(z, ploidy)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out[i], want) {
				t.Fatalf("ploidy %v element %d: batch %+v, scalar %+v", ploidy, i, out[i], want)
			}
		}
	}
}

// An invalid vector stops the batch at its index with the scalar
// test's exact validation error.
func TestBatchStopsAtInvalidVector(t *testing.T) {
	zs := []Vector{
		{1, 2, 3, 0, 0},
		{4, 0, 0, 0, 0},
		{1, math.NaN(), 0, 0, 0},
		{9, 9, 0, 0, 0},
	}
	out := make([]Result, len(zs))
	n, err := TestBatch(zs, Diploid, out)
	if err == nil {
		t.Fatal("TestBatch accepted a NaN channel")
	}
	if n != 2 {
		t.Fatalf("TestBatch stopped after %d elements, want 2", n)
	}
	_, wantErr := Test(zs[2], Diploid)
	if wantErr == nil || err.Error() != wantErr.Error() {
		t.Fatalf("batch error %v, scalar error %v", err, wantErr)
	}
	for i := 0; i < n; i++ {
		want, terr := Test(zs[i], Diploid)
		if terr != nil {
			t.Fatal(terr)
		}
		if !reflect.DeepEqual(out[i], want) {
			t.Fatalf("element %d written before the error diverges from scalar", i)
		}
	}
}

// An undersized out slice is rejected before any evaluation.
func TestBatchRejectsShortOut(t *testing.T) {
	zs := make([]Vector, 3)
	_, err := TestBatch(zs, Monoploid, make([]Result, 2))
	if err == nil || !strings.Contains(err.Error(), "2 slots for 3 vectors") {
		t.Fatalf("short out error = %v", err)
	}
	if n, err := TestBatch(nil, Diploid, nil); n != 0 || err != nil {
		t.Fatalf("empty batch = (%d, %v), want (0, nil)", n, err)
	}
}
