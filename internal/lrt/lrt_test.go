package lrt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnumap/internal/dna"
	"gnumap/internal/stats"
)

func TestPaperExampleVector(t *testing.T) {
	// The paper's worked example: 20 reads, z = (14, 1, 3, 2, 0).
	res, err := Test(Vector{14, 1, 3, 2, 0}, Monoploid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Top != dna.ChA || res.Second != dna.ChG {
		t.Errorf("ordering: top=%v second=%v", res.Top, res.Second)
	}
	if res.N != 20 {
		t.Errorf("N = %v", res.N)
	}
	// Hand computation:
	// null = 20·log(0.2)
	// alt  = 14·log(14/20) + 6·log(6/80)
	null := 20 * math.Log(0.2)
	alt := 14*math.Log(14.0/20) + 6*math.Log(6.0/80)
	want := -2 * (null - alt)
	if math.Abs(res.Stat-want) > 1e-10 {
		t.Errorf("Stat = %v, want %v", res.Stat, want)
	}
	sig, err := res.Significant(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !sig {
		t.Errorf("14/20 concentration should be significant (p = %g)", res.PValue)
	}
}

func TestZeroMass(t *testing.T) {
	res, err := Test(Vector{}, Monoploid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stat != 0 || res.PValue != 1 || res.N != 0 {
		t.Errorf("zero vector: %+v", res)
	}
}

func TestUniformBackgroundNotSignificant(t *testing.T) {
	res, err := Test(Vector{4, 4, 4, 4, 4}, Monoploid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stat > 1e-9 {
		t.Errorf("uniform vector Stat = %v, want 0", res.Stat)
	}
	if res.PValue < 0.99 {
		t.Errorf("uniform vector p = %v, want ~1", res.PValue)
	}
}

func TestPureBaseFullySignificant(t *testing.T) {
	res, err := Test(Vector{0, 30, 0, 0, 0}, Monoploid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Top != dna.ChC {
		t.Errorf("top = %v, want C", res.Top)
	}
	// Stat = -2(30·log0.2 - 30·log1) = -60·log 0.2.
	want := -60 * math.Log(0.2)
	if math.Abs(res.Stat-want) > 1e-10 {
		t.Errorf("Stat = %v, want %v", res.Stat, want)
	}
	if res.PValue > 1e-12 {
		t.Errorf("p = %v, want ~0", res.PValue)
	}
}

func TestDiploidHeterozygousDetected(t *testing.T) {
	// Two equal channels far above background: het model must win.
	res, err := Test(Vector{10, 0, 10, 0, 0}, Diploid)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Heterozygous {
		t.Error("balanced two-channel vector not flagged heterozygous")
	}
	if res.Top != dna.ChA || res.Second != dna.ChG {
		t.Errorf("top/second = %v/%v", res.Top, res.Second)
	}
	sig, _ := res.Significant(0.05)
	if !sig {
		t.Errorf("het signal not significant (p=%g)", res.PValue)
	}

	// The same vector under a monoploid test must not set the flag.
	mono, err := Test(Vector{10, 0, 10, 0, 0}, Monoploid)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Heterozygous {
		t.Error("monoploid test set Heterozygous")
	}
	// And the diploid statistic must be at least the monoploid one:
	// its alternative family is a superset.
	if res.Stat < mono.Stat-1e-9 {
		t.Errorf("diploid stat %v < monoploid stat %v", res.Stat, mono.Stat)
	}
}

func TestDiploidHomozygousPreferred(t *testing.T) {
	res, err := Test(Vector{20, 1, 1, 1, 1}, Diploid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Heterozygous {
		t.Error("single dominant channel flagged heterozygous")
	}
}

func TestDiploidStatManual(t *testing.T) {
	// z = (8, 6, 1, 1, 0), n = 16.
	z := Vector{8, 6, 1, 1, 0}
	res, err := Test(z, Diploid)
	if err != nil {
		t.Fatal(err)
	}
	n := 16.0
	null := n * math.Log(0.2)
	hom := 8*math.Log(8/n) + 8*math.Log(8/(4*n))
	// Constrained het MLE: p(5) = p(4) = (8+6)/(2·16).
	het := 14*math.Log(14/(2*n)) + 2*math.Log(2/(3*n))
	alt := math.Max(hom, het)
	want := -2 * (null - alt)
	if math.Abs(res.Stat-want) > 1e-10 {
		t.Errorf("Stat = %v, want %v", res.Stat, want)
	}
	if res.Heterozygous != (het > hom) {
		t.Errorf("Heterozygous = %v, het=%v hom=%v", res.Heterozygous, het, hom)
	}
	wantHetStat := math.Max(0, 2*(het-hom))
	if math.Abs(res.HetStat-wantHetStat) > 1e-10 {
		t.Errorf("HetStat = %v, want %v", res.HetStat, wantHetStat)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Test(Vector{-1, 0, 0, 0, 0}, Monoploid); err == nil {
		t.Error("negative mass accepted")
	}
	if _, err := Test(Vector{math.NaN(), 0, 0, 0, 0}, Monoploid); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Test(Vector{math.Inf(1), 0, 0, 0, 0}, Monoploid); err == nil {
		t.Error("Inf accepted")
	}
	if _, err := Test(Vector{1, 0, 0, 0, 0}, Ploidy(7)); err == nil {
		t.Error("bad ploidy accepted")
	}
}

// Properties: statistic is non-negative; scaling total mass up at fixed
// proportions increases (or keeps) the statistic; statistic is invariant
// under channel permutation.
func TestStatProperties(t *testing.T) {
	f := func(a, b, c, d, e float64) bool {
		z := Vector{abs1(a), abs1(b), abs1(c), abs1(d), abs1(e)}
		res, err := Test(z, Monoploid)
		if err != nil || res.Stat < 0 {
			return false
		}
		// Permutation invariance (rotate channels).
		zr := Vector{z[4], z[0], z[1], z[2], z[3]}
		res2, err := Test(zr, Monoploid)
		if err != nil {
			return false
		}
		if math.Abs(res.Stat-res2.Stat) > 1e-9*(1+res.Stat) {
			return false
		}
		// Doubling the evidence at the same proportions doubles the
		// statistic exactly (it is linear in n at fixed proportions).
		z2 := Vector{2 * z[0], 2 * z[1], 2 * z[2], 2 * z[3], 2 * z[4]}
		res3, err := Test(z2, Monoploid)
		if err != nil {
			return false
		}
		return math.Abs(res3.Stat-2*res.Stat) < 1e-9*(1+res.Stat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs1(v float64) float64 {
	v = math.Abs(v)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 50)
}

func TestCriticalValueMatchesQuantile(t *testing.T) {
	cv, err := CriticalValue(0.05)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stats.ChiSquareQuantile(0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cv-want) > 1e-9 {
		t.Errorf("CriticalValue(0.05) = %v, want χ²₁(0.99) = %v", cv, want)
	}
	// Consistency: a statistic exactly at the critical value has
	// p-value exactly α/5.
	p, err := stats.ChiSquareSF(cv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.01) > 1e-9 {
		t.Errorf("SF(critical) = %v, want 0.01", p)
	}
}

func TestSignificantThresholdEdge(t *testing.T) {
	// Find a vector whose p-value straddles the cutoff and check both
	// sides of Significant.
	weak, err := Test(Vector{3, 1, 1, 1, 0}, Monoploid)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Test(Vector{30, 1, 1, 1, 0}, Monoploid)
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := weak.Significant(0.05)
	ss, _ := strong.Significant(0.05)
	if ws {
		t.Errorf("weak evidence significant (p=%g)", weak.PValue)
	}
	if !ss {
		t.Errorf("strong evidence not significant (p=%g)", strong.PValue)
	}
	if _, err := weak.Significant(0); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestPloidyString(t *testing.T) {
	if Monoploid.String() != "monoploid" || Diploid.String() != "diploid" {
		t.Error("ploidy names wrong")
	}
	if Ploidy(9).String() != "Ploidy(9)" {
		t.Error("unknown ploidy formatting wrong")
	}
}

func TestOrderTieBreaking(t *testing.T) {
	res, err := Test(Vector{5, 5, 5, 5, 5}, Monoploid)
	if err != nil {
		t.Fatal(err)
	}
	// Ties resolve in channel order for determinism.
	if res.Top != dna.ChA || res.Second != dna.ChC {
		t.Errorf("tie ordering: top=%v second=%v", res.Top, res.Second)
	}
}

// A single discordant read at an otherwise clean position must NOT be
// called heterozygous: the nested het-vs-hom test lacks significance.
func TestSingleErrorReadNotHeterozygous(t *testing.T) {
	res, err := Test(Vector{19, 1, 0, 0, 0}, Diploid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Heterozygous {
		t.Errorf("19:1 split flagged heterozygous (HetStat=%v)", res.HetStat)
	}
	// The position itself is still significant (hom, matching allele).
	sig, _ := res.Significant(0.05)
	if !sig || res.Top != 0 {
		t.Errorf("19:1 position should be a significant hom call: %+v", res)
	}
	// A balanced split at the same depth IS heterozygous.
	bal, err := Test(Vector{10, 10, 0, 0, 0}, Diploid)
	if err != nil {
		t.Fatal(err)
	}
	if !bal.Heterozygous {
		t.Errorf("10:10 split not heterozygous (HetStat=%v)", bal.HetStat)
	}
}

func TestPolyploidMatchesMonoDiploid(t *testing.T) {
	vectors := []Vector{
		{14, 1, 3, 2, 0},
		{10, 10, 0, 0, 0},
		{19, 1, 0, 0, 0},
		{4, 4, 4, 4, 4},
		{},
		{8, 6, 1, 1, 0},
	}
	for _, z := range vectors {
		mono, err := Test(z, Monoploid)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := TestPolyploid(z, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mono.Stat-p1.Stat) > 1e-10 || mono.Top != p1.Top {
			t.Errorf("z=%v: TestPolyploid(1) Stat %v != monoploid %v", z, p1.Stat, mono.Stat)
		}
		di, err := Test(z, Diploid)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := TestPolyploid(z, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(di.Stat-p2.Stat) > 1e-10 || di.Heterozygous != p2.Heterozygous {
			t.Errorf("z=%v: TestPolyploid(2) = %+v != diploid %+v", z, p2, di)
		}
		if math.Abs(di.HetStat-p2.HetStat) > 1e-10 {
			t.Errorf("z=%v: HetStat %v != %v", z, p2.HetStat, di.HetStat)
		}
	}
}

func TestPolyploidTriallelic(t *testing.T) {
	// A tetraploid-style site with three equal alleles far above
	// background: the j=3 alternative must win.
	res, err := TestPolyploid(Vector{10, 10, 10, 0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alleles != 3 {
		t.Errorf("Alleles = %d, want 3 (%+v)", res.Alleles, res)
	}
	sig, _ := res.Significant(0.05)
	if !sig {
		t.Errorf("triallelic site not significant: %+v", res)
	}
	// A single dominant channel stays hom even with maxAlleles = 4.
	res, err = TestPolyploid(Vector{30, 1, 0, 0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alleles != 1 {
		t.Errorf("clean hom site got Alleles = %d", res.Alleles)
	}
}

func TestPolyploidValidation(t *testing.T) {
	if _, err := TestPolyploid(Vector{1, 0, 0, 0, 0}, 0); err == nil {
		t.Error("maxAlleles 0 accepted")
	}
	if _, err := TestPolyploid(Vector{1, 0, 0, 0, 0}, 5); err == nil {
		t.Error("maxAlleles 5 accepted")
	}
	if _, err := TestPolyploid(Vector{-1, 0, 0, 0, 0}, 2); err == nil {
		t.Error("negative mass accepted")
	}
}

func TestAllelesFieldSetByTest(t *testing.T) {
	hom, _ := Test(Vector{20, 1, 1, 1, 1}, Diploid)
	if hom.Alleles != 1 {
		t.Errorf("hom Alleles = %d", hom.Alleles)
	}
	het, _ := Test(Vector{10, 10, 0, 0, 0}, Diploid)
	if het.Alleles != 2 {
		t.Errorf("het Alleles = %d", het.Alleles)
	}
}

// Statistical calibration under the true null: with counts drawn from
// a uniform multinomial over the five channels, the fraction of
// positions clearing the paper's adjusted cutoff must not exceed the
// nominal family-wise level (the χ²₁ reference with the α/5 adjustment
// is conservative — testing one ordered maximum, adjusted as if five
// independent channels were tested).
func TestNullCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const positions = 4000
	const depth = 20
	alpha := 0.05
	rejects := 0
	for p := 0; p < positions; p++ {
		var z Vector
		for r := 0; r < depth; r++ {
			z[rng.Intn(dna.NumChannels)]++
		}
		res, err := Test(z, Monoploid)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := res.Significant(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if sig {
			rejects++
		}
	}
	fpr := float64(rejects) / positions
	if fpr > alpha {
		t.Errorf("null false-positive rate %.4f exceeds alpha %.2f (%d/%d)", fpr, alpha, rejects, positions)
	}
}

// The same calibration must hold for the diploid family, whose
// alternative is larger.
func TestNullCalibrationDiploid(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	const positions = 4000
	const depth = 20
	rejects := 0
	for p := 0; p < positions; p++ {
		var z Vector
		for r := 0; r < depth; r++ {
			z[rng.Intn(dna.NumChannels)]++
		}
		res, err := Test(z, Diploid)
		if err != nil {
			t.Fatal(err)
		}
		if sig, _ := res.Significant(0.05); sig {
			rejects++
		}
	}
	if fpr := float64(rejects) / positions; fpr > 0.05 {
		t.Errorf("diploid null false-positive rate %.4f exceeds 0.05", fpr)
	}
}
