// Package lrt implements GNUMAP-SNP's likelihood ratio tests for base
// and SNP calling (paper §V-C and §VI Step 3).
//
// For each genomic position the mapper accumulates a vector
// z = (z_A, z_C, z_G, z_T, z_gap) of (continuous) read-base
// contributions. The tests compare the null hypothesis that all five
// channel proportions are equal (pure background: p_k = 0.2 for all k)
// against alternatives in which the top one (monoploid / homozygous) or
// top two (diploid heterozygous) proportions rise above a shared
// background. The statistic -2·log λ(z) is referred to the χ²₁
// distribution, with the paper's α/5 Bonferroni adjustment for testing
// five channels against the background.
package lrt

import (
	"fmt"
	"math"

	"gnumap/internal/dna"
	"gnumap/internal/stats"
)

// Vector is a per-position channel accumulation (A, C, G, T, gap).
type Vector = [dna.NumChannels]float64

// Ploidy selects the hypothesis family.
type Ploidy int

const (
	// Monoploid tests a single dominant channel (paper Eq. 1).
	Monoploid Ploidy = iota
	// Diploid additionally allows two equally dominant channels, the
	// heterozygous alternative (paper Eq. 2).
	Diploid
)

// String returns the ploidy name.
func (p Ploidy) String() string {
	switch p {
	case Monoploid:
		return "monoploid"
	case Diploid:
		return "diploid"
	default:
		return fmt.Sprintf("Ploidy(%d)", int(p))
	}
}

// Result is the outcome of a likelihood ratio test at one position.
type Result struct {
	// Stat is -2·log λ(z), asymptotically χ²₁ under the null.
	Stat float64
	// PValue is the null probability of the observed statistic. For
	// the diploid (and polyploid) tests the alternative is a *union*
	// of k one-parameter families and Stat is their maximum, so the
	// χ²₁ tail is union-bounded: PValue = min(1, k·SF(Stat)). Without
	// this factor the diploid test runs anticonservative under the
	// null (measured ~6.5% rejections at nominal 5%, depth 20); the
	// calibration tests pin the corrected behaviour.
	PValue float64
	// N is the total accumulated mass (the paper's n).
	N float64
	// Top is the channel with the largest contribution, z_(5).
	Top dna.Channel
	// Second is the runner-up channel, z_(4).
	Second dna.Channel
	// HetStat is the het-vs-hom statistic 2·(logLik_het - logLik_hom)
	// under the *constrained* heterozygous model (see Heterozygous).
	// Zero for monoploid tests, and clamped at zero when the
	// homozygous model fits better.
	HetStat float64
	// Alleles is the number of equally dominant channels in the
	// winning alternative (1 for homozygous, 2 for heterozygous, more
	// only under TestPolyploid).
	Alleles int
	// MinorFraction is z(4)/n, the runner-up channel's share of the
	// total mass — the allele balance callers use to separate true
	// heterozygosity (≈0.5) from error pileups (≈ the error rate).
	MinorFraction float64
	// Heterozygous reports that the heterozygous alternative fits
	// better than the homozygous one. The paper's Eq. 2 states the
	// heterozygous hypothesis as p(5) = p(4) > rest, but its MLE
	// formulas leave p̃(5) and p̃(4) unconstrained; the unconstrained
	// family strictly dominates the homozygous one whenever any
	// off-channel mass exists (z₄·log 4 > 0), so a couple of
	// sequencing errors at a clean position would flip every such
	// position to a false heterozygous SNP. We therefore use the MLE
	// of the hypothesis as *stated*: p̃(5) = p̃(4) = (z₅+z₄)/(2n).
	// Both models then have one free parameter and the flag is a
	// straight likelihood comparison. Always false for monoploid
	// tests. (Discrepancy documented in DESIGN.md §3.)
	Heterozygous bool
}

// background is the null proportion for each of the five channels.
const background = 0.2

// xlogy returns x·log(y) with the measure-theoretic convention
// 0·log(0) = 0, which the MLE plug-ins require at the boundary.
func xlogy(x, y float64) float64 {
	if x == 0 {
		return 0
	}
	return x * math.Log(y)
}

// order returns channel indices sorted by descending z, ties broken by
// channel order for determinism.
func order(z Vector) [dna.NumChannels]int {
	idx := [dna.NumChannels]int{0, 1, 2, 3, 4}
	// Insertion sort on five elements.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if z[b] > z[a] {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
	return idx
}

// Test runs the likelihood ratio test for the given ploidy on one
// accumulation vector. A vector with no mass (n = 0) is a valid
// observation of nothing: it returns Stat 0 and PValue 1.
func Test(z Vector, ploidy Ploidy) (Result, error) {
	var res Result
	if err := testInto(z, ploidy, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// TestBatch evaluates the LRT over a dense batch of vectors, writing
// element i's result into out[i]. It exists so batched sweeps can
// gather their prescreen survivors into contiguous lanes and amortize
// the per-position call dispatch; each element runs the exact Test
// expression tree — literally the same code — so out[i] is
// bit-identical to Test(zs[i], ploidy) by construction. Evaluation is
// in order: on an invalid vector it stops and returns the count of
// elements already written alongside the same validation error a
// scalar sweep would surface at that position.
func TestBatch(zs []Vector, ploidy Ploidy, out []Result) (int, error) {
	if len(out) < len(zs) {
		return 0, fmt.Errorf("lrt: batch out has %d slots for %d vectors", len(out), len(zs))
	}
	for i := range zs {
		if err := testInto(zs[i], ploidy, &out[i]); err != nil {
			return i, err
		}
	}
	return len(zs), nil
}

// testInto is the shared body of Test and TestBatch. res is fully
// overwritten on success and unspecified on error.
func testInto(z Vector, ploidy Ploidy, res *Result) error {
	if ploidy != Monoploid && ploidy != Diploid {
		return fmt.Errorf("lrt: unknown ploidy %d", int(ploidy))
	}
	var n float64
	for k, v := range z {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lrt: channel %v has invalid mass %g", dna.Channel(k), v)
		}
		n += v
	}
	idx := order(z)
	*res = Result{
		N:       n,
		Top:     dna.Channel(idx[0]),
		Second:  dna.Channel(idx[1]),
		Alleles: 1,
	}
	if n == 0 {
		res.PValue = 1
		return nil
	}
	z5 := z[idx[0]]
	res.MinorFraction = z[idx[1]] / n
	logNull := n * math.Log(background)

	// Homozygous alternative: p(5) = z5/n, the rest share the remainder
	// across the four other channels.
	p5 := z5 / n
	p4 := (n - z5) / (4 * n)
	logHom := xlogy(z5, p5) + xlogy(n-z5, p4)

	logAlt := logHom
	if ploidy == Diploid {
		// Heterozygous alternative as stated by Eq. 2: the two top
		// channels share a common proportion, remaining three share
		// the rest.
		z4 := z[idx[1]]
		p45 := (z5 + z4) / (2 * n)
		rest := n - z5 - z4
		pt3 := rest / (3 * n)
		logHet := xlogy(z5+z4, p45) + xlogy(rest, pt3)
		if logHet > logAlt {
			logAlt = logHet
			res.Heterozygous = true
			res.Alleles = 2
		}
		res.HetStat = 2 * (logHet - logHom)
		if res.HetStat < 0 {
			res.HetStat = 0
		}
	}
	stat := -2 * (logNull - logAlt) // -2 log λ, λ = null/alt
	if stat < 0 {
		// The alternative families nest the null, so λ <= 1; tiny
		// negative values are pure floating-point noise.
		stat = 0
	}
	res.Stat = stat
	p, err := stats.ChiSquareSF(stat, 1)
	if err != nil {
		return err
	}
	if ploidy == Diploid {
		p *= 2 // union bound over the hom and het families
		if p > 1 {
			p = 1
		}
	}
	res.PValue = p
	return nil
}

// CriticalValue returns the χ²₁ critical value at the paper's adjusted
// level: the (1 - α/5) quantile, accounting for the five per-channel
// background comparisons.
func CriticalValue(alpha float64) (float64, error) {
	adj, err := stats.BonferroniAlpha(alpha, dna.NumChannels)
	if err != nil {
		return 0, err
	}
	return stats.ChiSquareQuantile(1-adj, 1)
}

// AdjustedPValueCutoff returns the per-test p-value threshold matching
// CriticalValue: α/5.
func AdjustedPValueCutoff(alpha float64) (float64, error) {
	return stats.BonferroniAlpha(alpha, dna.NumChannels)
}

// Significant reports whether the result clears the paper's adjusted
// cutoff at family-wise level alpha.
func (r Result) Significant(alpha float64) (bool, error) {
	cut, err := AdjustedPValueCutoff(alpha)
	if err != nil {
		return false, err
	}
	return r.PValue <= cut, nil
}

// TestPolyploid generalizes the test to organisms with up to maxAlleles
// allele copies per site (the paper names "larger polyploid organisms"
// as a target; its Eq. 1/Eq. 2 families are the maxAlleles = 1 and 2
// special cases). The alternative family allows the top j channels,
// for any j <= maxAlleles, to share a common elevated proportion while
// the remaining channels share the background:
//
//	H1(j):  p(5) = ... = p(5-j+1) > p(5-j) = ... = p(1)
//
// Every H1(j) has one free parameter, so the winning j is a plain
// likelihood comparison, and the reported Stat refers the winner to
// χ²₁ against the uniform null exactly as in the diploid case.
func TestPolyploid(z Vector, maxAlleles int) (Result, error) {
	if maxAlleles < 1 || maxAlleles > dna.NumChannels-1 {
		return Result{}, fmt.Errorf("lrt: maxAlleles %d out of [1,%d]", maxAlleles, dna.NumChannels-1)
	}
	var n float64
	for k, v := range z {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Result{}, fmt.Errorf("lrt: channel %v has invalid mass %g", dna.Channel(k), v)
		}
		n += v
	}
	idx := order(z)
	res := Result{
		N:       n,
		Top:     dna.Channel(idx[0]),
		Second:  dna.Channel(idx[1]),
		Alleles: 1,
	}
	if n == 0 {
		res.PValue = 1
		return res, nil
	}
	res.MinorFraction = z[idx[1]] / n
	logNull := n * math.Log(background)
	bestLL := math.Inf(-1)
	var logHom, logHet float64
	topSum := 0.0
	for j := 1; j <= maxAlleles; j++ {
		topSum += z[idx[j-1]]
		rest := n - topSum
		pTop := topSum / (float64(j) * n)
		pRest := rest / (float64(dna.NumChannels-j) * n)
		ll := xlogy(topSum, pTop) + xlogy(rest, pRest)
		if j == 1 {
			logHom = ll
		}
		if j == 2 {
			logHet = ll
		}
		if ll > bestLL {
			bestLL = ll
			res.Alleles = j
		}
	}
	res.Heterozygous = res.Alleles == 2
	if maxAlleles >= 2 {
		res.HetStat = 2 * (logHet - logHom)
		if res.HetStat < 0 {
			res.HetStat = 0
		}
	}
	stat := -2 * (logNull - bestLL)
	if stat < 0 {
		stat = 0
	}
	res.Stat = stat
	p, err := stats.ChiSquareSF(stat, 1)
	if err != nil {
		return Result{}, err
	}
	p *= float64(maxAlleles) // union bound over the k families
	if p > 1 {
		p = 1
	}
	res.PValue = p
	return res, nil
}
