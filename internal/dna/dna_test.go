package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeOf(t *testing.T) {
	cases := []struct {
		in   byte
		want Code
		ok   bool
	}{
		{'A', A, true}, {'a', A, true},
		{'C', C, true}, {'c', C, true},
		{'G', G, true}, {'g', G, true},
		{'T', T, true}, {'t', T, true},
		{'U', T, true}, {'u', T, true},
		{'N', N, true}, {'n', N, true},
		{'R', N, true}, {'y', N, true}, // IUPAC ambiguity degrades to N
		{'X', 0, false}, {' ', 0, false}, {'0', 0, false}, {0, 0, false},
	}
	for _, c := range cases {
		got, ok := CodeOf(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CodeOf(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestCodeByteRoundTrip(t *testing.T) {
	for _, c := range []Code{A, C, G, T, N} {
		back, ok := CodeOf(c.Byte())
		if !ok || back != c {
			t.Errorf("round trip of %v failed: got %v, ok=%v", c, back, ok)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Code]Code{A: T, T: A, C: G, G: C, N: N}
	for in, want := range pairs {
		if got := in.Complement(); got != want {
			t.Errorf("%v.Complement() = %v, want %v", in, got, want)
		}
	}
}

func TestComplementInvolution(t *testing.T) {
	for c := Code(0); c <= N; c++ {
		if c.Complement().Complement() != c {
			t.Errorf("complement not an involution for %v", c)
		}
	}
}

func TestPurinePyrimidine(t *testing.T) {
	if !A.IsPurine() || !G.IsPurine() || A.IsPyrimidine() {
		t.Error("purine classification wrong")
	}
	if !C.IsPyrimidine() || !T.IsPyrimidine() || C.IsPurine() {
		t.Error("pyrimidine classification wrong")
	}
	if N.IsPurine() || N.IsPyrimidine() {
		t.Error("N must be neither purine nor pyrimidine")
	}
}

func TestTransitionTransversion(t *testing.T) {
	if !IsTransition(A, G) || !IsTransition(C, T) || !IsTransition(G, A) {
		t.Error("A<->G and C<->T must be transitions")
	}
	if IsTransition(A, C) || IsTransition(A, T) || IsTransition(G, C) {
		t.Error("purine<->pyrimidine wrongly classified as transition")
	}
	if !IsTransversion(A, C) || !IsTransversion(G, T) {
		t.Error("A->C and G->T must be transversions")
	}
	if IsTransition(A, A) || IsTransversion(A, A) {
		t.Error("identity is neither transition nor transversion")
	}
	if IsTransition(A, N) || IsTransversion(N, C) {
		t.Error("N is neither transition nor transversion partner")
	}
}

func TestParseSeq(t *testing.T) {
	s, err := ParseSeq("ACGTNacgtn")
	if err != nil {
		t.Fatal(err)
	}
	want := Seq{A, C, G, T, N, A, C, G, T, N}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("ParseSeq mismatch at %d: %v != %v", i, s[i], want[i])
		}
	}
	if _, err := ParseSeq("ACGX"); err == nil {
		t.Error("expected error for invalid base X")
	}
	if _, err := ParseSeqBytes([]byte("AC GT")); err == nil {
		t.Error("expected error for embedded space")
	}
}

func TestSeqString(t *testing.T) {
	in := "ACGTN"
	s := MustParseSeq(in)
	if s.String() != in {
		t.Errorf("String() = %q, want %q", s.String(), in)
	}
	if string(s.Bytes()) != in {
		t.Errorf("Bytes() = %q, want %q", s.Bytes(), in)
	}
}

func TestReverseComplement(t *testing.T) {
	s := MustParseSeq("AACGTN")
	rc := s.ReverseComplement()
	if rc.String() != "NACGTT" {
		t.Errorf("ReverseComplement = %q, want NACGTT", rc.String())
	}
}

func TestReverseComplementInvolutionProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := randomSeqFromBytes(raw)
		return s.ReverseComplement().ReverseComplement().String() == s.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomSeqFromBytes deterministically maps arbitrary fuzz bytes onto a
// valid sequence so property tests explore the space of valid inputs.
func randomSeqFromBytes(raw []byte) Seq {
	s := make(Seq, len(raw))
	for i, b := range raw {
		s[i] = Code(b % 5)
	}
	return s
}

func TestGCContent(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"GGCC", 1.0},
		{"AATT", 0.0},
		{"ACGT", 0.5},
		{"NNNN", 0.0},
		{"GCNN", 1.0}, // N excluded from denominator
		{"", 0.0},
	}
	for _, c := range cases {
		if got := MustParseSeq(c.in).GCContent(); got != c.want {
			t.Errorf("GCContent(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCountN(t *testing.T) {
	if got := MustParseSeq("ANNGTN").CountN(); got != 3 {
		t.Errorf("CountN = %d, want 3", got)
	}
}

func TestClone(t *testing.T) {
	s := MustParseSeq("ACGT")
	c := s.Clone()
	c[0] = T
	if s[0] != A {
		t.Error("Clone must not alias the original")
	}
}

func TestPackUnpackKmer(t *testing.T) {
	s := MustParseSeq("ACGTACGTAC")
	for k := 1; k <= len(s); k++ {
		for off := 0; off+k <= len(s); off++ {
			packed, ok := PackKmer(s, off, k)
			if !ok {
				t.Fatalf("PackKmer(%d,%d) unexpectedly failed", off, k)
			}
			got := UnpackKmer(packed, k)
			want := s[off : off+k]
			if got.String() != Seq(want).String() {
				t.Fatalf("round trip k=%d off=%d: %q != %q", k, off, got, want)
			}
		}
	}
}

func TestPackKmerRejects(t *testing.T) {
	s := MustParseSeq("ACNGT")
	if _, ok := PackKmer(s, 0, 3); ok {
		t.Error("k-mer spanning N must not pack")
	}
	if _, ok := PackKmer(s, 3, 3); ok {
		t.Error("k-mer past end must not pack")
	}
	if _, ok := PackKmer(s, -1, 2); ok {
		t.Error("negative offset must not pack")
	}
	if _, ok := PackKmer(s, 0, 0); ok {
		t.Error("k=0 must not pack")
	}
	if _, ok := PackKmer(s, 0, MaxKmerLen+1); ok {
		t.Error("k beyond MaxKmerLen must not pack")
	}
}

func TestNextKmerMatchesRepack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := make(Seq, 200)
	for i := range s {
		s[i] = Code(rng.Intn(4))
	}
	const k = 10
	rolling, ok := PackKmer(s, 0, k)
	if !ok {
		t.Fatal("initial pack failed")
	}
	for off := 1; off+k <= len(s); off++ {
		rolling, ok = NextKmer(rolling, k, s[off+k-1])
		if !ok {
			t.Fatalf("NextKmer failed at off=%d", off)
		}
		direct, _ := PackKmer(s, off, k)
		if rolling != direct {
			t.Fatalf("rolling != direct at off=%d: %x != %x", off, rolling, direct)
		}
	}
}

func TestNextKmerRejectsN(t *testing.T) {
	if _, ok := NextKmer(0, 4, N); ok {
		t.Error("NextKmer must reject N")
	}
}

func TestHamming(t *testing.T) {
	a := MustParseSeq("ACGT")
	b := MustParseSeq("ACCA")
	d, err := Hamming(a, b)
	if err != nil || d != 2 {
		t.Errorf("Hamming = %d,%v want 2,nil", d, err)
	}
	if _, err := Hamming(a, MustParseSeq("AC")); err == nil {
		t.Error("expected length-mismatch error")
	}
	// N mismatches everything, including N.
	d, _ = Hamming(MustParseSeq("NN"), MustParseSeq("NA"))
	if d != 2 {
		t.Errorf("N-vs-N distance = %d, want 2", d)
	}
}

func TestChannelString(t *testing.T) {
	want := []string{"A", "C", "G", "T", "-"}
	for i, w := range want {
		if Channel(i).String() != w {
			t.Errorf("Channel(%d).String() = %q, want %q", i, Channel(i).String(), w)
		}
	}
	if Channel(9).String() != "Channel(9)" {
		t.Errorf("out-of-range channel formatting wrong: %q", Channel(9).String())
	}
}

func TestCodeChannelAlignment(t *testing.T) {
	// The accumulator indexes channels directly with Codes; the two
	// enumerations must stay numerically aligned.
	if Code(ChA) != A || Code(ChC) != C || Code(ChG) != G || Code(ChT) != T {
		t.Fatal("Channel and Code enumerations diverged")
	}
}
