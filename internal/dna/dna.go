// Package dna provides the nucleotide substrate shared by every other
// package in the repository: compact base codes, conversions to and from
// ASCII, complementation, and small sequence utilities (GC content,
// transition/transversion classification, k-mer packing).
//
// Bases are represented by the Code type, a dense 0-based index that is
// also used as the channel index into per-position probability vectors
// throughout the genome accumulator and the Pair-HMM: A=0, C=1, G=2,
// T=3, with N=4 reserved for ambiguous bases. SNP-calling additionally
// tracks a gap channel; see Channel.
package dna

import (
	"fmt"
	"strings"
)

// Code is a dense nucleotide code. Values 0-3 are the concrete bases in
// the fixed order A, C, G, T; 4 is the ambiguity code N.
type Code uint8

// The nucleotide codes. The ordering is load-bearing: it is the channel
// order of every probability vector in the system.
const (
	A Code = iota
	C
	G
	T
	N
)

// NumBases is the number of concrete nucleotide codes (A, C, G, T).
const NumBases = 4

// Channel indexes the five per-position accumulation channels used by
// SNP calling: the four bases plus an alignment gap.
type Channel uint8

// The accumulation channels. ChA..ChT coincide numerically with the
// corresponding Codes so a Code can be used directly as a Channel.
const (
	ChA Channel = iota
	ChC
	ChG
	ChT
	ChGap
)

// NumChannels is the number of accumulation channels (A, C, G, T, gap).
const NumChannels = 5

// channelNames holds the display names of the channels in channel order.
var channelNames = [NumChannels]string{"A", "C", "G", "T", "-"}

// String returns the display name of the channel ("A".."T", or "-" for
// the gap channel).
func (ch Channel) String() string {
	if int(ch) < len(channelNames) {
		return channelNames[ch]
	}
	return fmt.Sprintf("Channel(%d)", uint8(ch))
}

// codeFromASCII maps ASCII bytes to Codes; entries not set explicitly
// map to the sentinel invalidCode.
var codeFromASCII [256]Code

const invalidCode Code = 0xff

func init() {
	for i := range codeFromASCII {
		codeFromASCII[i] = invalidCode
	}
	set := func(b byte, c Code) {
		codeFromASCII[b] = c
		codeFromASCII[b|0x20] = c // lower-case alias
	}
	set('A', A)
	set('C', C)
	set('G', G)
	set('T', T)
	set('U', T) // RNA uracil maps to T
	set('N', N)
	// Remaining IUPAC ambiguity codes degrade to N: the mapper treats
	// any ambiguity as a uniform emission.
	for _, b := range []byte("RYSWKMBDHV") {
		set(b, N)
	}
}

// CodeOf converts an ASCII nucleotide byte (either case; U treated as T;
// IUPAC ambiguity codes treated as N) to its Code. The second result is
// false for bytes that are not nucleotide letters.
func CodeOf(b byte) (Code, bool) {
	c := codeFromASCII[b]
	return c, c != invalidCode
}

// asciiFromCode maps Codes back to upper-case ASCII.
var asciiFromCode = [5]byte{'A', 'C', 'G', 'T', 'N'}

// Byte returns the upper-case ASCII letter for the code.
func (c Code) Byte() byte {
	if c <= N {
		return asciiFromCode[c]
	}
	return '?'
}

// String returns the single-letter name of the code.
func (c Code) String() string { return string(c.Byte()) }

// IsConcrete reports whether the code is one of the four concrete bases.
func (c Code) IsConcrete() bool { return c < N }

// Complement returns the Watson-Crick complement. N complements to N.
func (c Code) Complement() Code {
	switch c {
	case A:
		return T
	case C:
		return G
	case G:
		return C
	case T:
		return A
	default:
		return N
	}
}

// IsPurine reports whether the code is a purine (A or G).
func (c Code) IsPurine() bool { return c == A || c == G }

// IsPyrimidine reports whether the code is a pyrimidine (C or T).
func (c Code) IsPyrimidine() bool { return c == C || c == T }

// IsTransition reports whether a substitution from a to b is a
// transition (purine->purine or pyrimidine->pyrimidine). Identical or
// non-concrete codes are neither transitions nor transversions.
func IsTransition(a, b Code) bool {
	if a == b || !a.IsConcrete() || !b.IsConcrete() {
		return false
	}
	return (a.IsPurine() && b.IsPurine()) || (a.IsPyrimidine() && b.IsPyrimidine())
}

// IsTransversion reports whether a substitution from a to b is a
// transversion (purine<->pyrimidine).
func IsTransversion(a, b Code) bool {
	if a == b || !a.IsConcrete() || !b.IsConcrete() {
		return false
	}
	return !IsTransition(a, b)
}

// Seq is a nucleotide sequence in Code representation.
type Seq []Code

// ParseSeq converts an ASCII nucleotide string to a Seq. It returns an
// error naming the first invalid byte and its offset.
func ParseSeq(s string) (Seq, error) {
	seq := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		c, ok := CodeOf(s[i])
		if !ok {
			return nil, fmt.Errorf("dna: invalid nucleotide %q at offset %d", s[i], i)
		}
		seq[i] = c
	}
	return seq, nil
}

// MustParseSeq is ParseSeq but panics on invalid input. For tests and
// package-level literals only.
func MustParseSeq(s string) Seq {
	seq, err := ParseSeq(s)
	if err != nil {
		panic(err)
	}
	return seq
}

// ParseSeqBytes converts raw ASCII bytes (e.g. a FASTA record body) to a
// Seq, skipping nothing: every byte must be a nucleotide letter.
func ParseSeqBytes(b []byte) (Seq, error) {
	seq := make(Seq, len(b))
	for i, raw := range b {
		c, ok := CodeOf(raw)
		if !ok {
			return nil, fmt.Errorf("dna: invalid nucleotide %q at offset %d", raw, i)
		}
		seq[i] = c
	}
	return seq, nil
}

// String renders the sequence as upper-case ASCII.
func (s Seq) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, c := range s {
		sb.WriteByte(c.Byte())
	}
	return sb.String()
}

// Bytes renders the sequence as upper-case ASCII bytes.
func (s Seq) Bytes() []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[i] = c.Byte()
	}
	return out
}

// Clone returns a deep copy of the sequence.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// ReverseComplement returns the reverse complement as a new sequence.
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c.Complement()
	}
	return out
}

// GCContent returns the fraction of concrete bases that are G or C.
// It returns 0 for sequences with no concrete bases.
func (s Seq) GCContent() float64 {
	gc, total := 0, 0
	for _, c := range s {
		if !c.IsConcrete() {
			continue
		}
		total++
		if c == G || c == C {
			gc++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(gc) / float64(total)
}

// CountN returns the number of ambiguous (N) bases.
func (s Seq) CountN() int {
	n := 0
	for _, c := range s {
		if c == N {
			n++
		}
	}
	return n
}

// Kmer is a 2-bit packed k-mer. With 2 bits per base it holds up to 32
// bases; the mapper's default k is 10.
type Kmer uint64

// MaxKmerLen is the longest k-mer representable by Kmer.
const MaxKmerLen = 32

// PackKmer packs s[offset:offset+k] into a Kmer. It returns ok=false if
// the window extends past the sequence, contains an ambiguous base, or k
// is out of range.
func PackKmer(s Seq, offset, k int) (kmer Kmer, ok bool) {
	if k <= 0 || k > MaxKmerLen || offset < 0 || offset+k > len(s) {
		return 0, false
	}
	for i := 0; i < k; i++ {
		c := s[offset+i]
		if !c.IsConcrete() {
			return 0, false
		}
		kmer = kmer<<2 | Kmer(c)
	}
	return kmer, true
}

// UnpackKmer expands a packed k-mer of length k back to a Seq.
func UnpackKmer(kmer Kmer, k int) Seq {
	out := make(Seq, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = Code(kmer & 3)
		kmer >>= 2
	}
	return out
}

// NextKmer rolls the packed k-mer one base to the right: it drops the
// leading base and appends c. It returns ok=false when c is ambiguous,
// in which case the window must be re-packed after the N run ends.
func NextKmer(kmer Kmer, k int, c Code) (Kmer, bool) {
	if !c.IsConcrete() {
		return 0, false
	}
	mask := Kmer(1)<<(2*uint(k)) - 1
	return (kmer<<2 | Kmer(c)) & mask, true
}

// Hamming returns the Hamming distance between equal-length sequences
// and an error if the lengths differ. N mismatches everything, including
// another N, because an ambiguous base carries no evidence of identity.
func Hamming(a, b Seq) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dna: Hamming length mismatch %d != %d", len(a), len(b))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] || a[i] == N {
			d++
		}
	}
	return d, nil
}
