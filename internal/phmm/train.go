package phmm

import (
	"fmt"
	"math"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// The paper fixes its PHMM parameters; this file adds Baum-Welch
// (EM) estimation of the transition probabilities and the match
// emission matrix from example (read, window) pairs — the standard
// extension from the paper's own citation (Durbin et al., ch. 4).
// Training data comes from trusted alignments (e.g. confidently
// uniquely mapped reads), and the fitted parameters feed back into
// core.Config.PHMM.

// TrainingPair is one example alignment problem.
type TrainingPair struct {
	// X is the read PWM, Y the genome window it maps to.
	X *pwm.Matrix
	Y dna.Seq
}

// TrainOptions tunes Fit.
type TrainOptions struct {
	// MaxIter bounds EM iterations (default 20).
	MaxIter int
	// Tol stops EM when the total log-likelihood improves by less
	// than this (default 1e-3 nats).
	Tol float64
	// Pseudocount regularizes every expected count (default 1.0),
	// keeping rare transitions (gap open on clean data) away from 0.
	Pseudocount float64
	// Mode selects the alignment boundary condition (default
	// SemiGlobal, the mapping configuration).
	Mode Mode
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.MaxIter == 0 {
		o.MaxIter = 20
	}
	if o.Tol == 0 {
		o.Tol = 1e-3
	}
	if o.Pseudocount == 0 {
		o.Pseudocount = 1
	}
	return o
}

// TrainResult reports a fit.
type TrainResult struct {
	Params Params
	// LogLik is the total log-likelihood of the training pairs under
	// the fitted parameters; Iters the EM iterations used.
	LogLik float64
	Iters  int
}

// Fit estimates PHMM parameters from training pairs by Baum-Welch,
// starting from init (use DefaultParams for a neutral start). The gap
// emission q is held fixed (it is a modeling constant, not learnable
// from marginals in this parameterization).
func Fit(pairs []TrainingPair, init Params, opt TrainOptions) (*TrainResult, error) {
	opt = opt.withDefaults()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("phmm: no training pairs")
	}
	if err := init.Validate(); err != nil {
		return nil, err
	}
	cur := init
	prevLL := math.Inf(-1)
	res := &TrainResult{Params: cur}
	for iter := 1; iter <= opt.MaxIter; iter++ {
		al, err := NewAligner(cur, opt.Mode)
		if err != nil {
			return nil, err
		}
		// Expected counts.
		var cMM, cMG, cGM, cGG float64
		var cMatch [dna.NumBases][dna.NumBases]float64
		total := 0.0
		used := 0
		for _, pr := range pairs {
			r, err := al.Align(pr.X, pr.Y)
			if err == ErrNoAlignment {
				continue
			}
			if err != nil {
				return nil, err
			}
			used++
			total += r.LogLik
			accumulateExpectations(r, pr, &cMM, &cMG, &cGM, &cGG, &cMatch)
		}
		if used == 0 {
			return nil, fmt.Errorf("phmm: no training pair admits an alignment")
		}
		// M step with pseudocounts.
		pc := opt.Pseudocount
		mDen := cMM + 2*cMG + 3*pc
		gDen := cGM + cGG + 2*pc
		next := cur
		next.TMM = (cMM + pc) / mDen
		next.TMG = (cMG + pc) / mDen
		// Numerical guard: TMM + 2·TMG must be exactly 1.
		next.TMG = (1 - next.TMM) / 2
		next.TGM = (cGM + pc) / gDen
		next.TGG = 1 - next.TGM
		for y := 0; y < dna.NumBases; y++ {
			den := 0.0
			for k := 0; k < dna.NumBases; k++ {
				den += cMatch[y][k] + pc
			}
			for k := 0; k < dna.NumBases; k++ {
				next.Match[y][k] = (cMatch[y][k] + pc) / den
			}
		}
		if err := next.Validate(); err != nil {
			return nil, fmt.Errorf("phmm: EM produced invalid parameters: %w", err)
		}
		res.Params = next
		res.LogLik = total
		res.Iters = iter
		if total-prevLL < opt.Tol && iter > 1 {
			break
		}
		prevLL = total
		cur = next
	}
	return res, nil
}

// accumulateExpectations adds one pair's exact expected transition and
// emission counts, using the standard edge posteriors
//
//	E[a(i,j) -> b(i',j')] = f_a(i,j) · T_ab · e_b(i',j') · b_b(i',j') / L
//
// evaluated in the Aligner's scaled space (row-scale bookkeeping:
// crossing from row i to i+1 divides by scale[i+1]; within-row GY moves
// carry no scale factor). Emission counts come from the match
// posteriors directly.
func accumulateExpectations(r *Result, pr TrainingPair,
	cMM, cMG, cGM, cGG *float64, cMatch *[dna.NumBases][dna.NumBases]float64) {
	a := r.a
	p := a.params
	n, m := r.N, r.M
	w := m + 1
	invL := 1 / r.lScaled
	for i := 1; i <= n; i++ {
		cur := i * w
		next := (i + 1) * w
		var invS float64
		if i < n {
			invS = 1 / a.scale[i+1]
		}
		for j := 1; j <= m; j++ {
			// Emission counts from the match posterior.
			pm := a.fM[cur+j] * a.bM[cur+j] * invL
			if pm > 0 {
				yj := pr.Y[j-1]
				if yj.IsConcrete() {
					row := pr.X.Row(i - 1)
					for k := 0; k < dna.NumBases; k++ {
						cMatch[yj][k] += pm * row[k]
					}
				}
			}
			// Transitions into row i+1 (consume a read base).
			if i < n {
				if j < m {
					psNext := a.pstar[next+j+1]
					toM := psNext * a.bM[next+j+1] * invS * invL
					*cMM += a.fM[cur+j] * p.TMM * toM
					*cGM += (a.fX[cur+j] + a.fY[cur+j]) * p.TGM * toM
				}
				toX := p.Q * a.bX[next+j] * invS * invL
				*cMG += a.fM[cur+j] * p.TMG * toX
				*cGG += a.fX[cur+j] * p.TGG * toX
			}
			// Within-row GY transitions (consume a genome base).
			if j < m {
				toY := p.Q * a.bY[cur+j+1] * invL
				*cMG += a.fM[cur+j] * p.TMG * toY
				*cGG += a.fY[cur+j] * p.TGG * toY
			}
		}
	}
}
