//go:build amd64

#include "textflag.h"

// AVX2 row kernels for the 8-lane batched Pair-HMM sweeps. Each loop
// iteration advances all 8 lanes of one cell with two 4-wide halves
// (byte offsets +0 and +32 of the 64-byte lane stripe). Only VMULPD /
// VADDPD are used — packed IEEE-754 ops that round identically to the
// scalar expressions in align.go — and the expression trees mirror the
// generic Go loops in batch.go operation for operation, so results are
// bit-identical to the scalar kernel. No FMA, anywhere, ever: the
// scalar kernel does not contract, so neither may we.
//
// Register discipline: R14 and X15/Y15 are reserved by the Go internal
// ABI (g and the zero register) and are not touched.

// func forwardRowAVX2(a *fwdRow8)
//
// One forward row, j ascending over [lo, hi]:
//   mm = tmm*fM[i-1][j-1] + tgm*(fX[i-1][j-1]+fY[i-1][j-1]) + rowEntry
//   fm = ps[i][j] * mm
//   fx = q*(tmg*fM[i-1][j] + tgg*fX[i-1][j])
//   fy = q*(tmg*fM[i][j-1] + tgg*fY[i][j-1])
//   rs += (fm + fx) + fy
// The fy term reads the previous iteration's stores (the serial GY
// chain); interleaving 8 lanes is what makes that chain pipelineable.
TEXT ·forwardRowAVX2(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), R8    // outM  = &fM[(cur+lo)*8]
	MOVQ 8(AX), R9    // outX  = &fX[(cur+lo)*8]
	MOVQ 16(AX), R10  // outY  = &fY[(cur+lo)*8]
	MOVQ 24(AX), R11  // ps    = &pstar[(cur+lo)*8]
	MOVQ 32(AX), R12  // prevM = &fM[(prev+lo)*8]
	MOVQ 40(AX), R13  // prevX = &fX[(prev+lo)*8]
	MOVQ 48(AX), R15  // prevY = &fY[(prev+lo)*8]
	MOVQ 56(AX), DI   // rs
	MOVQ 64(AX), CX   // steps
	VBROADCASTSD 72(AX), Y0   // tmm
	VBROADCASTSD 80(AX), Y1   // tgm
	VBROADCASTSD 88(AX), Y2   // tmg
	VBROADCASTSD 96(AX), Y3   // tgg
	VBROADCASTSD 104(AX), Y4  // q
	VBROADCASTSD 112(AX), Y5  // rowEntry
	VMOVUPD (DI), Y6          // rs, lanes 0-3
	VMOVUPD 32(DI), Y7        // rs, lanes 4-7

fwdloop:
	// ---- lanes 0-3 ----
	VMOVUPD -64(R13), Y8      // fX[i-1][j-1]
	VADDPD  -64(R15), Y8, Y8  // + fY[i-1][j-1]
	VMULPD  Y1, Y8, Y8        // tgm*(...)
	VMOVUPD -64(R12), Y9      // fM[i-1][j-1]
	VMULPD  Y0, Y9, Y9        // tmm*fM
	VADDPD  Y8, Y9, Y9
	VADDPD  Y5, Y9, Y9        // mm
	VMULPD  (R11), Y9, Y9     // fm = ps*mm
	VMOVUPD (R12), Y10        // fM[i-1][j]
	VMULPD  Y2, Y10, Y10      // tmg*fM
	VMOVUPD (R13), Y11        // fX[i-1][j]
	VMULPD  Y3, Y11, Y11      // tgg*fX
	VADDPD  Y11, Y10, Y10
	VMULPD  Y4, Y10, Y10      // fx
	VMOVUPD -64(R8), Y11      // fM[i][j-1]
	VMULPD  Y2, Y11, Y11      // tmg*fM
	VMOVUPD -64(R10), Y12     // fY[i][j-1]
	VMULPD  Y3, Y12, Y12      // tgg*fY
	VADDPD  Y12, Y11, Y11
	VMULPD  Y4, Y11, Y11      // fy
	VMOVUPD Y9, (R8)
	VMOVUPD Y10, (R9)
	VMOVUPD Y11, (R10)
	VADDPD  Y10, Y9, Y9       // fm + fx
	VADDPD  Y11, Y9, Y9       // + fy
	VADDPD  Y9, Y6, Y6        // rs +=

	// ---- lanes 4-7 ----
	VMOVUPD -32(R13), Y8
	VADDPD  -32(R15), Y8, Y8
	VMULPD  Y1, Y8, Y8
	VMOVUPD -32(R12), Y9
	VMULPD  Y0, Y9, Y9
	VADDPD  Y8, Y9, Y9
	VADDPD  Y5, Y9, Y9
	VMULPD  32(R11), Y9, Y9
	VMOVUPD 32(R12), Y10
	VMULPD  Y2, Y10, Y10
	VMOVUPD 32(R13), Y11
	VMULPD  Y3, Y11, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y4, Y10, Y10
	VMOVUPD -32(R8), Y11
	VMULPD  Y2, Y11, Y11
	VMOVUPD -32(R10), Y12
	VMULPD  Y3, Y12, Y12
	VADDPD  Y12, Y11, Y11
	VMULPD  Y4, Y11, Y11
	VMOVUPD Y9, 32(R8)
	VMOVUPD Y10, 32(R9)
	VMOVUPD Y11, 32(R10)
	VADDPD  Y10, Y9, Y9
	VADDPD  Y11, Y9, Y9
	VADDPD  Y9, Y7, Y7

	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	ADDQ $64, R13
	ADDQ $64, R15
	DECQ CX
	JNZ  fwdloop

	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func scaleRowAVX2(a *scaleRow8)
//
// Rescale one row of the three forward planes by the per-lane inverse
// row sum (inv == 0 zeroes a dead lane's row).
TEXT ·scaleRowAVX2(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), R8    // pM
	MOVQ 8(AX), R9    // pX
	MOVQ 16(AX), R10  // pY
	MOVQ 24(AX), R11  // inv
	MOVQ 32(AX), CX   // steps
	VMOVUPD (R11), Y0   // inv, lanes 0-3
	VMOVUPD 32(R11), Y1 // inv, lanes 4-7

scaleloop:
	VMOVUPD (R8), Y2
	VMULPD  Y0, Y2, Y2
	VMOVUPD Y2, (R8)
	VMOVUPD 32(R8), Y3
	VMULPD  Y1, Y3, Y3
	VMOVUPD Y3, 32(R8)
	VMOVUPD (R9), Y2
	VMULPD  Y0, Y2, Y2
	VMOVUPD Y2, (R9)
	VMOVUPD 32(R9), Y3
	VMULPD  Y1, Y3, Y3
	VMOVUPD Y3, 32(R9)
	VMOVUPD (R10), Y2
	VMULPD  Y0, Y2, Y2
	VMOVUPD Y2, (R10)
	VMOVUPD 32(R10), Y3
	VMULPD  Y1, Y3, Y3
	VMOVUPD Y3, 32(R10)
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	DECQ CX
	JNZ  scaleloop

	VZEROUPPER
	RET

// func backwardRowAVX2(a *bwdRow8)
//
// One backward row, j descending over [lo, start]:
//   diag = (ps[i+1][j+1] * bM[i+1][j+1]) * iv
//   bx   = bX[i+1][j] * iv
//   by   = bY[i][j+1]              (previous iteration's store)
//   bM[i][j] = tmm*diag + tmgq*bx + tmgq*by
//   bX[i][j] = tgm*diag + tggq*bx
//   bY[i][j] = tgm*diag + tggq*by
// where tmgq = tmg*q and tggq = tgg*q exactly as the generic loop
// computes p.TMG*p.Q and p.TGG*p.Q (left-associative, one rounding).
TEXT ·backwardRowAVX2(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), R8    // outM  = &bM[(cur+start)*8]
	MOVQ 8(AX), R9    // outX  = &bX[(cur+start)*8]
	MOVQ 16(AX), R10  // outY  = &bY[(cur+start)*8]
	MOVQ 24(AX), R11  // nextM = &bM[(next+start)*8]
	MOVQ 32(AX), R12  // nextX = &bX[(next+start)*8]
	MOVQ 40(AX), R13  // ps    = &pstar[(next+start)*8]
	MOVQ 48(AX), R15  // iv
	MOVQ 56(AX), CX   // steps
	VBROADCASTSD 64(AX), Y0  // tmm
	VBROADCASTSD 72(AX), Y1  // tgm
	VBROADCASTSD 80(AX), Y2  // tmgq
	VBROADCASTSD 88(AX), Y3  // tggq
	VMOVUPD (R15), Y4        // iv, lanes 0-3
	VMOVUPD 32(R15), Y5      // iv, lanes 4-7

bwdloop:
	// ---- lanes 0-3 ----
	VMOVUPD 64(R13), Y8       // ps[i+1][j+1]
	VMULPD  64(R11), Y8, Y8   // * bM[i+1][j+1]
	VMULPD  Y4, Y8, Y8        // * iv = diag
	VMOVUPD (R12), Y9         // bX[i+1][j]
	VMULPD  Y4, Y9, Y9        // bx
	VMOVUPD 64(R10), Y10      // by = bY[i][j+1]
	VMULPD  Y0, Y8, Y11       // tmm*diag
	VMULPD  Y1, Y8, Y8        // tgm*diag
	VMULPD  Y2, Y9, Y12       // tmgq*bx
	VMULPD  Y3, Y9, Y9        // tggq*bx
	VMULPD  Y2, Y10, Y13      // tmgq*by
	VMULPD  Y3, Y10, Y10      // tggq*by
	VADDPD  Y12, Y11, Y11
	VADDPD  Y13, Y11, Y11
	VMOVUPD Y11, (R8)         // bM[i][j]
	VADDPD  Y9, Y8, Y9
	VMOVUPD Y9, (R9)          // bX[i][j]
	VADDPD  Y10, Y8, Y10
	VMOVUPD Y10, (R10)        // bY[i][j]

	// ---- lanes 4-7 ----
	VMOVUPD 96(R13), Y8
	VMULPD  96(R11), Y8, Y8
	VMULPD  Y5, Y8, Y8
	VMOVUPD 32(R12), Y9
	VMULPD  Y5, Y9, Y9
	VMOVUPD 96(R10), Y10
	VMULPD  Y0, Y8, Y11
	VMULPD  Y1, Y8, Y8
	VMULPD  Y2, Y9, Y12
	VMULPD  Y3, Y9, Y9
	VMULPD  Y2, Y10, Y13
	VMULPD  Y3, Y10, Y10
	VADDPD  Y12, Y11, Y11
	VADDPD  Y13, Y11, Y11
	VMOVUPD Y11, 32(R8)
	VADDPD  Y9, Y8, Y9
	VMOVUPD Y9, 32(R9)
	VADDPD  Y10, Y8, Y10
	VMOVUPD Y10, 32(R10)

	SUBQ $64, R8
	SUBQ $64, R9
	SUBQ $64, R10
	SUBQ $64, R11
	SUBQ $64, R12
	SUBQ $64, R13
	DECQ CX
	JNZ  bwdloop

	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
