package phmm

import (
	"fmt"
	"math"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// Op is one step of a Viterbi alignment path.
type Op uint8

const (
	// OpMatch pairs one read base with one genome base.
	OpMatch Op = iota
	// OpInsert consumes a read base against a genome gap (GX state).
	OpInsert
	// OpDelete consumes a genome base against a read gap (GY state).
	OpDelete
)

// String returns the CIGAR-style letter of the op (M, I, D).
func (o Op) String() string {
	switch o {
	case OpMatch:
		return "M"
	case OpInsert:
		return "I"
	case OpDelete:
		return "D"
	default:
		return "?"
	}
}

// Path is a single highest-probability alignment. Paths returned by
// Viterbi are views into the Aligner's buffers: valid only until the
// next Viterbi call on the same Aligner.
type Path struct {
	// LogProb is the natural-log probability of the path.
	LogProb float64
	// Start is the 1-based window column of the first consumed genome
	// base (equals 1 in Global mode).
	Start int
	// End is the 1-based window column of the last consumed genome base.
	End int
	// Ops is the operation sequence from Start.
	Ops []Op
}

// CIGAR renders the path as a run-length encoded CIGAR string.
func (p *Path) CIGAR() string {
	if len(p.Ops) == 0 {
		return ""
	}
	out := ""
	runOp := p.Ops[0]
	runLen := 1
	for _, op := range p.Ops[1:] {
		if op == runOp {
			runLen++
			continue
		}
		out += fmt.Sprintf("%d%s", runLen, runOp)
		runOp, runLen = op, 1
	}
	return out + fmt.Sprintf("%d%s", runLen, runOp)
}

// viterbiState identifies the DP state for traceback.
type viterbiState uint8

const (
	stNone viterbiState = iota
	stM
	stX
	stY
	stBegin
)

// Viterbi computes the single most probable alignment of x against y
// under the aligner's mode, in log space (no scaling needed) over the
// full DP rectangle. It shares the Aligner's buffer discipline: one
// concurrent call per Aligner, and the returned Path is invalidated by
// the next Viterbi call.
//
// Viterbi is used by the single-best-path ablation and by callers that
// need a concrete CIGAR; the mapper itself uses the forward-backward
// marginal (Align), which is the paper's core methodological point.
func (a *Aligner) Viterbi(x *pwm.Matrix, y dna.Seq) (*Path, error) {
	return a.ViterbiBanded(x, y, 0, 0)
}

// ViterbiBanded is Viterbi restricted to a diagonal band, with the same
// band semantics as AlignBanded: only cells with |j - i - diag| <=
// band/2 are computed, and band <= 0 reproduces Viterbi exactly.
func (a *Aligner) ViterbiBanded(x *pwm.Matrix, y dna.Seq, diag, band int) (*Path, error) {
	n, m := x.Len(), len(y)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("phmm: empty read (%d) or window (%d)", n, m)
	}
	a.banded = band > 0
	a.diag = diag
	a.radius = band / 2
	a.cells += int64(BandCells(n, m, diag, band))
	p := a.params
	w := m + 1
	size := (n + 1) * w
	if cap(a.pstar) < size {
		a.pstar = make([]float64, size)
	}
	a.pstar = a.pstar[:size]
	a.fillEmissions(x, y, n, m)
	a.resizeViterbi(size)
	vM, vX, vY := a.vM, a.vX, a.vY
	ptrM, ptrX, ptrY := a.ptrM, a.ptrX, a.ptrY
	negInf := math.Inf(-1)
	logTMM, logTMG := math.Log(p.TMM), math.Log(p.TMG)
	logTGM, logTGG := math.Log(p.TGM), math.Log(p.TGG)
	logQ := math.Log(p.Q)

	// Row-0 border over the cells row 1 reads. Every in-band cell is
	// written unconditionally below, so no bulk -Inf fill is needed —
	// only the borders and per-row band guards (mirroring forward's
	// zero guards, with -Inf as the additive identity).
	lo1, hi1 := a.rowBounds(1, m)
	for j := lo1 - 1; j <= hi1; j++ {
		vM[j], vX[j], vY[j] = negInf, negInf, negInf
	}
	if a.mode == Global {
		vM[0] = 0 // virtual begin
	}
	for i := 1; i <= n; i++ {
		lo, hi := a.rowBounds(i, m)
		if lo > hi {
			return nil, ErrNoAlignment
		}
		prev, cur := (i-1)*w, i*w
		// Left guard (same role as forward's).
		vM[cur+lo-1], vX[cur+lo-1], vY[cur+lo-1] = negInf, negInf, negInf
		for j := lo; j <= hi; j++ {
			lps := math.Log(a.pstar[cur+j])
			// M state.
			best, from := negInf, stNone
			if v := logTMM + vM[prev+j-1]; v > best {
				best, from = v, stM
			}
			if v := logTGM + vX[prev+j-1]; v > best {
				best, from = v, stX
			}
			if v := logTGM + vY[prev+j-1]; v > best {
				best, from = v, stY
			}
			if a.mode == SemiGlobal && i == 1 && best < 0 {
				// Free entry with unit weight (log 0 = 0 contribution).
				best, from = 0, stBegin
			}
			if from != stNone {
				vM[cur+j] = lps + best
				ptrM[cur+j] = from
			} else {
				vM[cur+j] = negInf
			}
			// GX state.
			best, from = negInf, stNone
			if v := logTMG + vM[prev+j]; v > best {
				best, from = v, stM
			}
			if v := logTGG + vX[prev+j]; v > best {
				best, from = v, stX
			}
			if from != stNone {
				vX[cur+j] = logQ + best
				ptrX[cur+j] = from
			} else {
				vX[cur+j] = negInf
			}
			// GY state.
			best, from = negInf, stNone
			if v := logTMG + vM[cur+j-1]; v > best {
				best, from = v, stM
			}
			if v := logTGG + vY[cur+j-1]; v > best {
				best, from = v, stY
			}
			if from != stNone {
				vY[cur+j] = logQ + best
				ptrY[cur+j] = from
			} else {
				vY[cur+j] = negInf
			}
		}
		// Right guard.
		if hi < m {
			vM[cur+hi+1], vX[cur+hi+1], vY[cur+hi+1] = negInf, negInf, negInf
		}
	}
	// Pick the terminal cell.
	last := n * w
	lon, hin := a.rowBounds(n, m)
	bestScore, bestJ, bestState := negInf, 0, stNone
	if a.mode == Global {
		if hin != m {
			return nil, ErrNoAlignment
		}
		bestJ = m
		for _, s := range [...]struct {
			v  float64
			st viterbiState
		}{{vM[last+m], stM}, {vX[last+m], stX}, {vY[last+m], stY}} {
			if s.v > bestScore {
				bestScore, bestState = s.v, s.st
			}
		}
	} else {
		for j := lon; j <= hin; j++ {
			if vM[last+j] > bestScore {
				bestScore, bestJ, bestState = vM[last+j], j, stM
			}
			if vX[last+j] > bestScore {
				bestScore, bestJ, bestState = vX[last+j], j, stX
			}
		}
	}
	if bestState == stNone || math.IsInf(bestScore, -1) {
		return nil, ErrNoAlignment
	}
	// Traceback.
	rev := a.opsRev[:0]
	i, j, st := n, bestJ, bestState
	for {
		var from viterbiState
		switch st {
		case stM:
			from = ptrM[i*w+j]
			rev = append(rev, OpMatch)
			i, j = i-1, j-1
		case stX:
			from = ptrX[i*w+j]
			rev = append(rev, OpInsert)
			i = i - 1
		case stY:
			from = ptrY[i*w+j]
			rev = append(rev, OpDelete)
			j = j - 1
		}
		if from == stBegin || (i == 0 && j == 0) {
			break
		}
		if i < 0 || j < 0 {
			a.opsRev = rev
			return nil, fmt.Errorf("phmm: viterbi traceback escaped the matrix at (%d,%d)", i, j)
		}
		st = from
	}
	a.opsRev = rev
	// Reverse ops into the reusable output slice.
	if cap(a.ops) < len(rev) {
		a.ops = make([]Op, len(rev))
	}
	ops := a.ops[:len(rev)]
	for k := range rev {
		ops[k] = rev[len(rev)-1-k]
	}
	start := j + 1
	a.path = Path{LogProb: bestScore, Start: start, End: bestJ, Ops: ops}
	return &a.path, nil
}

// resizeViterbi grows the Viterbi DP buffers without clearing them; the
// banded sweep writes every cell it later reads.
func (a *Aligner) resizeViterbi(size int) {
	if cap(a.vM) < size {
		a.vM = make([]float64, size)
		a.vX = make([]float64, size)
		a.vY = make([]float64, size)
		a.ptrM = make([]viterbiState, size)
		a.ptrX = make([]viterbiState, size)
		a.ptrY = make([]viterbiState, size)
	}
	a.vM = a.vM[:size]
	a.vX = a.vX[:size]
	a.vY = a.vY[:size]
	a.ptrM = a.ptrM[:size]
	a.ptrX = a.ptrX[:size]
	a.ptrY = a.ptrY[:size]
}
