package phmm

import (
	"math"
	"math/rand"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// makePairs simulates training pairs: reads sampled from a random
// window with the given substitution and indel rates.
func makePairs(t *testing.T, n int, subRate, indelRate float64, seed int64) []TrainingPair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pairs []TrainingPair
	for i := 0; i < n; i++ {
		window := make(dna.Seq, 70)
		for k := range window {
			window[k] = dna.Code(rng.Intn(4))
		}
		// Sequence a 54-base read from window[8:62] with errors.
		var read dna.Seq
		for k := 8; k < 62 && len(read) < 54; k++ {
			if indelRate > 0 && rng.Float64() < indelRate {
				if rng.Intn(2) == 0 {
					read = append(read, dna.Code(rng.Intn(4))) // insertion
				}
				continue // deletion
			}
			b := window[k]
			if rng.Float64() < subRate {
				b = dna.Code((int(b) + 1 + rng.Intn(3)) % 4)
			}
			read = append(read, b)
		}
		if len(read) < 20 {
			continue
		}
		x, err := pwm.FromSeqUniformError(read, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, TrainingPair{X: x, Y: window})
	}
	return pairs
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, DefaultParams(), TrainOptions{}); err == nil {
		t.Error("no pairs accepted")
	}
	bad := DefaultParams()
	bad.TMM = 0.5
	pairs := makePairs(t, 2, 0.01, 0, 1)
	if _, err := Fit(pairs, bad, TrainOptions{}); err == nil {
		t.Error("invalid init accepted")
	}
}

func TestFitCleanDataSharpensParameters(t *testing.T) {
	pairs := makePairs(t, 40, 0.01, 0, 3)
	res, err := Fit(pairs, DefaultParams(), TrainOptions{MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Params.Validate(); err != nil {
		t.Fatalf("fitted params invalid: %v", err)
	}
	// Indel-free data: gap open should shrink below the 0.025 default.
	if res.Params.TMG >= DefaultParams().TMG {
		t.Errorf("TMG = %v, want < default %v on indel-free data", res.Params.TMG, DefaultParams().TMG)
	}
	// 1% substitution: the diagonal should stay high.
	for y := 0; y < dna.NumBases; y++ {
		if res.Params.Match[y][y] < 0.9 {
			t.Errorf("Match[%d][%d] = %v after training on clean data", y, y, res.Params.Match[y][y])
		}
	}
}

func TestFitLearnsIndelRate(t *testing.T) {
	clean := makePairs(t, 40, 0.01, 0, 5)
	indel := makePairs(t, 40, 0.01, 0.03, 7)
	resClean, err := Fit(clean, DefaultParams(), TrainOptions{MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	resIndel, err := Fit(indel, DefaultParams(), TrainOptions{MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resIndel.Params.TMG <= resClean.Params.TMG {
		t.Errorf("indel-rich TMG %v <= clean TMG %v", resIndel.Params.TMG, resClean.Params.TMG)
	}
}

func TestFitLearnsSubstitutionRate(t *testing.T) {
	low := makePairs(t, 40, 0.005, 0, 9)
	high := makePairs(t, 40, 0.10, 0, 11)
	resLow, err := Fit(low, DefaultParams(), TrainOptions{MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	resHigh, err := Fit(high, DefaultParams(), TrainOptions{MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	diagLow, diagHigh := 0.0, 0.0
	for y := 0; y < dna.NumBases; y++ {
		diagLow += resLow.Params.Match[y][y]
		diagHigh += resHigh.Params.Match[y][y]
	}
	if diagHigh >= diagLow {
		t.Errorf("high-error diagonal %v >= low-error diagonal %v", diagHigh/4, diagLow/4)
	}
}

func TestFitImprovesLikelihood(t *testing.T) {
	pairs := makePairs(t, 30, 0.03, 0.01, 13)
	// Start from a deliberately poor parameter set.
	start := DefaultParams()
	for y := 0; y < dna.NumBases; y++ {
		for k := 0; k < dna.NumBases; k++ {
			if y == k {
				start.Match[y][k] = 0.4
			} else {
				start.Match[y][k] = 0.2
			}
		}
	}
	// Likelihood of the data under the start params.
	al, err := NewAligner(start, SemiGlobal)
	if err != nil {
		t.Fatal(err)
	}
	ll0 := 0.0
	for _, pr := range pairs {
		r, err := al.Align(pr.X, pr.Y)
		if err != nil {
			t.Fatal(err)
		}
		ll0 += r.LogLik
	}
	res, err := Fit(pairs, start, TrainOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLik <= ll0 {
		t.Errorf("EM did not improve likelihood: %v -> %v", ll0, res.LogLik)
	}
	if res.Iters < 1 || res.Iters > 10 {
		t.Errorf("Iters = %d", res.Iters)
	}
	// Fitted-parameter alignment of a fresh clean pair still behaves.
	fresh := makePairs(t, 1, 0.01, 0, 15)
	al2, err := NewAligner(res.Params, SemiGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := al2.Align(fresh[0].X, fresh[0].Y); err != nil {
		t.Fatal(err)
	}
}

// The expected transition counts must total what the chain structure
// dictates: every alignment makes exactly n-1 read-consuming moves
// (M->M/GX entries from rows 1..n-1) plus the within-row GY moves;
// here we verify a weaker but exact invariant — counts are finite,
// non-negative, and the M-row total is below n per read.
func TestExpectedCountsSane(t *testing.T) {
	pairs := makePairs(t, 5, 0.02, 0.02, 17)
	al, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		t.Fatal(err)
	}
	var mm, mg, gm, gg float64
	var match [dna.NumBases][dna.NumBases]float64
	for _, pr := range pairs {
		r, err := al.Align(pr.X, pr.Y)
		if err != nil {
			t.Fatal(err)
		}
		accumulateExpectations(r, pr, &mm, &mg, &gm, &gg, &match)
	}
	for _, v := range []float64{mm, mg, gm, gg} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("bad expected count: mm=%v mg=%v gm=%v gg=%v", mm, mg, gm, gg)
		}
	}
	if mm == 0 {
		t.Error("no expected M->M transitions on matching data")
	}
	// Total expected emissions equal total posterior match mass, which
	// is at most n per read (each read base matches at most once).
	emit := 0.0
	for y := range match {
		for k := range match[y] {
			emit += match[y][k]
		}
	}
	if emit <= 0 || emit > float64(len(pairs))*54 {
		t.Errorf("expected emission mass %v out of range", emit)
	}
}
