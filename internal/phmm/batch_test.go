package phmm

import (
	"math/rand"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

func mustBatchAligner(t *testing.T, mode Mode) *BatchAligner {
	t.Helper()
	b, err := NewBatchAligner(DefaultParams(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// batchContribsOf runs BatchResult.ContributionsInto into fresh slices.
func batchContribsOf(t *testing.T, res *BatchResult) ([][dna.NumChannels]float64, []float64) {
	t.Helper()
	dst := make([][dna.NumChannels]float64, res.M)
	totals := make([]float64, res.M)
	if err := res.ContributionsInto(ByCall, dst, totals); err != nil {
		t.Fatal(err)
	}
	return dst, totals
}

// requireLaneExact compares one batch lane against the scalar kernel on
// the same pair: LogLik, contributions, and sampled posteriors must be
// bit-identical (==, not approximately equal).
func requireLaneExact(t *testing.T, label string, scalar *Result, lane *BatchResult) {
	t.Helper()
	if scalar.LogLik != lane.LogLik {
		t.Fatalf("%s: LogLik scalar %v != batch %v", label, scalar.LogLik, lane.LogLik)
	}
	dstS, totS := contribsOf(t, scalar)
	dstB, totB := batchContribsOf(t, lane)
	for j := range dstS {
		if totS[j] != totB[j] {
			t.Fatalf("%s col %d: total scalar %v != batch %v", label, j, totS[j], totB[j])
		}
		if dstS[j] != dstB[j] {
			t.Fatalf("%s col %d: contribs scalar %v != batch %v", label, j, dstS[j], dstB[j])
		}
	}
	for i := 1; i <= scalar.N; i++ {
		for j := 1; j <= scalar.M; j++ {
			if pm, bm := scalar.PostMatch(i, j), lane.PostMatch(i, j); pm != bm {
				t.Fatalf("%s (%d,%d): PostMatch scalar %v != batch %v", label, i, j, pm, bm)
			}
			if px, bx := scalar.PostGapX(i, j), lane.PostGapX(i, j); px != bx {
				t.Fatalf("%s (%d,%d): PostGapX scalar %v != batch %v", label, i, j, px, bx)
			}
			if py, by := scalar.PostGapY(i, j), lane.PostGapY(i, j); py != by {
				t.Fatalf("%s (%d,%d): PostGapY scalar %v != batch %v", label, i, j, py, by)
			}
		}
	}
}

// TestAlignBatchMatchesScalarRandom is the tentpole's bit-exactness
// property test: randomized (read length, window length, diag, band)
// bins in both modes, each batch compared lane-by-lane against scalar
// AlignBanded. Bands include narrow, wide, and full-width (== unbanded)
// geometries, and lane counts vary from 1 to 13.
func TestAlignBatchMatchesScalarRandom(t *testing.T) {
	for _, mode := range []Mode{Global, SemiGlobal} {
		rng := rand.New(rand.NewSource(int64(42 + mode)))
		scalar := mustAligner(t, mode)
		batch := mustBatchAligner(t, mode)
		for trial := 0; trial < 40; trial++ {
			m := 12 + rng.Intn(80)
			n := m // Global: exact-size windows
			diag := 0
			if mode == SemiGlobal {
				n = 4 + rng.Intn(m-3)
				diag = rng.Intn(m - n + 1)
			}
			band := 0 // full kernel
			switch rng.Intn(3) {
			case 0:
				band = 6 + 2*rng.Intn(6) // narrow
			case 1:
				band = fullWidthBand(n, m) // full-width band
			}
			L := 1 + rng.Intn(13)
			xs := make([]*pwm.Matrix, L)
			ys := make([]dna.Seq, L)
			for l := 0; l < L; l++ {
				ys[l] = randomSeq(rng, m)
				xs[l] = randomPWM(rng, n)
			}
			results, err := batch.AlignBatch(xs, ys, diag, band)
			if err != nil {
				t.Fatalf("mode %v trial %d: AlignBatch: %v", mode, trial, err)
			}
			if len(results) != L {
				t.Fatalf("mode %v trial %d: %d results, want %d", mode, trial, len(results), L)
			}
			for l := 0; l < L; l++ {
				resS, errS := scalar.AlignBanded(xs[l], ys[l], diag, band)
				lane := &results[l]
				if (errS == nil) != (lane.Err == nil) {
					t.Fatalf("mode %v trial %d lane %d: scalar err %v, batch err %v",
						mode, trial, l, errS, lane.Err)
				}
				if errS != nil {
					if lane.Err != ErrNoAlignment {
						t.Fatalf("mode %v trial %d lane %d: batch err %v, want ErrNoAlignment",
							mode, trial, l, lane.Err)
					}
					continue
				}
				requireLaneExact(t, "random", resS, lane)
			}
		}
	}
}

// TestAlignBatchMixedDeadLanes builds a Global-mode batch where some
// lanes have zero alignment probability (one-hot reads against
// mismatching windows under a zero-tolerance match matrix): dead lanes
// must report ErrNoAlignment exactly when scalar does, and live lanes
// must stay bit-identical to scalar — lane death may not leak.
func TestAlignBatchMixedDeadLanes(t *testing.T) {
	p := DefaultParams()
	for y := 0; y < dna.NumBases; y++ {
		for k := 0; k < dna.NumBases; k++ {
			if y == k {
				p.Match[y][k] = 1
			} else {
				p.Match[y][k] = 0
			}
		}
	}
	scalar, err := NewAligner(p, Global)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewBatchAligner(p, Global)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 20
	window := randomSeq(rng, n)
	mismatched := window.Clone()
	mismatched[0] = dna.Code((int(mismatched[0]) + 1) % 4) // kills the required first match
	const L = 6
	xs := make([]*pwm.Matrix, L)
	ys := make([]dna.Seq, L)
	for l := 0; l < L; l++ {
		x, err := pwm.FromSeqUniformError(window, 0)
		if err != nil {
			t.Fatal(err)
		}
		xs[l] = x
		if l%2 == 1 {
			ys[l] = mismatched
		} else {
			ys[l] = window
		}
	}
	results, err := batch.AlignBatch(xs, ys, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	deadSeen, liveSeen := 0, 0
	for l := 0; l < L; l++ {
		resS, errS := scalar.AlignBanded(xs[l], ys[l], 0, 0)
		if errS != nil {
			if errS != ErrNoAlignment {
				t.Fatalf("lane %d: unexpected scalar error %v", l, errS)
			}
			if results[l].Err != ErrNoAlignment {
				t.Fatalf("lane %d: batch err %v, want ErrNoAlignment", l, results[l].Err)
			}
			deadSeen++
			continue
		}
		if results[l].Err != nil {
			t.Fatalf("lane %d: batch err %v, scalar succeeded", l, results[l].Err)
		}
		requireLaneExact(t, "mixed", resS, &results[l])
		liveSeen++
	}
	if deadSeen == 0 || liveSeen == 0 {
		t.Fatalf("degenerate test setup: %d dead, %d live lanes", deadSeen, liveSeen)
	}
}

// TestAlignBatchBandOffRectangle: a band that slides off the DP
// rectangle must kill the whole batch, mirroring scalar ErrNoAlignment.
func TestAlignBatchBandOffRectangle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	batch := mustBatchAligner(t, SemiGlobal)
	xs := []*pwm.Matrix{randomPWM(rng, 30), randomPWM(rng, 30)}
	ys := []dna.Seq{randomSeq(rng, 40), randomSeq(rng, 40)}
	results, err := batch.AlignBatch(xs, ys, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	for l := range results {
		if results[l].Err != ErrNoAlignment {
			t.Fatalf("lane %d: err %v, want ErrNoAlignment", l, results[l].Err)
		}
	}
}

// TestAlignBatchShapeMismatch: mixed shapes are a call-level error (the
// engine's binning guarantees uniform shapes; a violation is a bug).
func TestAlignBatchShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	batch := mustBatchAligner(t, SemiGlobal)
	if _, err := batch.AlignBatch(
		[]*pwm.Matrix{randomPWM(rng, 30), randomPWM(rng, 31)},
		[]dna.Seq{randomSeq(rng, 40), randomSeq(rng, 40)}, 5, 18); err == nil {
		t.Fatal("mismatched read lengths accepted")
	}
	if _, err := batch.AlignBatch(
		[]*pwm.Matrix{randomPWM(rng, 30), randomPWM(rng, 30)},
		[]dna.Seq{randomSeq(rng, 40), randomSeq(rng, 41)}, 5, 18); err == nil {
		t.Fatal("mismatched window lengths accepted")
	}
	if _, err := batch.AlignBatch(nil, nil, 0, 0); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestAlignBatchCellsAccounting: a batch must add exactly what the same
// alignments would have added to a scalar Aligner — lanes × band cells,
// dead lanes included (geometry-based, as in the scalar kernel).
func TestAlignBatchCellsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scalar := mustAligner(t, SemiGlobal)
	batch := mustBatchAligner(t, SemiGlobal)
	const n, m, diag, band, L = 30, 46, 8, 18, 5
	xs := make([]*pwm.Matrix, L)
	ys := make([]dna.Seq, L)
	for l := 0; l < L; l++ {
		xs[l] = randomPWM(rng, n)
		ys[l] = randomSeq(rng, m)
	}
	if _, err := batch.AlignBatch(xs, ys, diag, band); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < L; l++ {
		if _, err := scalar.AlignBanded(xs[l], ys[l], diag, band); err != nil {
			t.Fatal(err)
		}
	}
	if batch.CellsComputed() != scalar.CellsComputed() {
		t.Fatalf("batch cells %d != scalar cells %d for the same workload",
			batch.CellsComputed(), scalar.CellsComputed())
	}
	if want := int64(L) * int64(BandCells(n, m, diag, band)); batch.CellsComputed() != want {
		t.Fatalf("batch cells %d, want %d", batch.CellsComputed(), want)
	}
}

// TestAlignBatchReuseAcrossShapes: one BatchAligner must survive
// alternating batch shapes and lane counts (buffer reuse never leaks
// stale state — the same discipline the scalar kernel documents).
func TestAlignBatchReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	scalar := mustAligner(t, SemiGlobal)
	batch := mustBatchAligner(t, SemiGlobal)
	shapes := []struct{ n, m, diag, band, L int }{
		{62, 78, 8, 18, 8},
		{20, 24, 2, 6, 3},
		{62, 78, 8, 18, 8},
		{62, 78, 8, 0, 2}, // full kernel after banded
		{62, 78, 8, 18, 13},
		{8, 90, 40, 10, 1}, // single-lane batch
	}
	for si, sh := range shapes {
		xs := make([]*pwm.Matrix, sh.L)
		ys := make([]dna.Seq, sh.L)
		for l := 0; l < sh.L; l++ {
			xs[l] = randomPWM(rng, sh.n)
			ys[l] = randomSeq(rng, sh.m)
		}
		results, err := batch.AlignBatch(xs, ys, sh.diag, sh.band)
		if err != nil {
			t.Fatalf("shape %d: %v", si, err)
		}
		for l := 0; l < sh.L; l++ {
			resS, errS := scalar.AlignBanded(xs[l], ys[l], sh.diag, sh.band)
			if (errS == nil) != (results[l].Err == nil) {
				t.Fatalf("shape %d lane %d: scalar err %v, batch err %v", si, l, errS, results[l].Err)
			}
			if errS != nil {
				continue
			}
			requireLaneExact(t, "reuse", resS, &results[l])
		}
	}
}

// TestAlignBatchAllocFree: a warm BatchAligner performs no heap
// allocations per sweep — the mapper-owned scratch contract.
func TestAlignBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	batch := mustBatchAligner(t, SemiGlobal)
	const L = 8
	xs := make([]*pwm.Matrix, L)
	ys := make([]dna.Seq, L)
	for l := 0; l < L; l++ {
		xs[l] = randomPWM(rng, 62)
		ys[l] = randomSeq(rng, 78)
	}
	if _, err := batch.AlignBatch(xs, ys, 8, 18); err != nil {
		t.Fatal(err) // warm-up
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := batch.AlignBatch(xs, ys, 8, 18); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm AlignBatch allocates %.1f objects per sweep, want 0", allocs)
	}
}
