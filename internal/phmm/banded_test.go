package phmm

import (
	"math"
	"math/rand"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// fullWidthBand returns a band wide enough that every DP row spans the
// whole window, so AlignBanded must reproduce the full kernel exactly.
func fullWidthBand(n, m int) int { return 2 * (n + m) }

// mutate returns a copy of read with k random point mutations.
func mutate(rng *rand.Rand, read dna.Seq, k int) dna.Seq {
	out := read.Clone()
	for t := 0; t < k; t++ {
		i := rng.Intn(len(out))
		out[i] = dna.Code((int(out[i]) + 1 + rng.Intn(3)) % 4)
	}
	return out
}

// contribsOf runs ContributionsInto and returns fresh slices.
func contribsOf(t *testing.T, res *Result) ([][dna.NumChannels]float64, []float64) {
	t.Helper()
	dst := make([][dna.NumChannels]float64, res.M)
	totals := make([]float64, res.M)
	if err := res.ContributionsInto(ByCall, dst, totals); err != nil {
		t.Fatal(err)
	}
	return dst, totals
}

// TestAlignBandedFullWidthExact is the property test from the issue: a
// band covering the whole window must match Align bit-for-bit — same
// LogLik, same posterior contributions, down to the last ulp.
func TestAlignBandedFullWidthExact(t *testing.T) {
	for _, mode := range []Mode{Global, SemiGlobal} {
		rng := rand.New(rand.NewSource(101))
		full := mustAligner(t, mode)
		banded := mustAligner(t, mode)
		for trial := 0; trial < 30; trial++ {
			m := 10 + rng.Intn(80)
			n := m
			if mode == SemiGlobal {
				n = 2 + rng.Intn(m)
			}
			window := randomSeq(rng, m)
			x := randomPWM(rng, n)

			resF, errF := full.Align(x, window)
			resB, errB := banded.AlignBanded(x, window, 0, fullWidthBand(n, m))
			if (errF == nil) != (errB == nil) {
				t.Fatalf("mode %v trial %d: full err %v, banded err %v", mode, trial, errF, errB)
			}
			if errF != nil {
				continue
			}
			if resF.LogLik != resB.LogLik {
				t.Fatalf("mode %v trial %d: LogLik full %v != banded %v",
					mode, trial, resF.LogLik, resB.LogLik)
			}
			dstF, totF := contribsOf(t, resF)
			dstB, totB := contribsOf(t, resB)
			for j := range dstF {
				if totF[j] != totB[j] {
					t.Fatalf("mode %v trial %d col %d: total full %v != banded %v",
						mode, trial, j, totF[j], totB[j])
				}
				if dstF[j] != dstB[j] {
					t.Fatalf("mode %v trial %d col %d: contribs full %v != banded %v",
						mode, trial, j, dstF[j], dstB[j])
				}
			}
		}
	}
}

// TestAlignBandedRandomIndelReads is the fuzz-style equivalence test:
// reads carved from the window with point mutations and small indels
// (all within the band) must agree with the full kernel to 1e-9 in
// both LogLik and contributions.
func TestAlignBandedRandomIndelReads(t *testing.T) {
	// Radius 16 covers offset<=8 plus <=2bp indels with enough margin
	// that the genuinely excluded off-band path mass sits below 1e-9
	// (empirically ~1e-8 at radius 12: mass decays geometrically with
	// distance from the seed diagonal).
	const band = 32
	const tol = 1e-9
	rng := rand.New(rand.NewSource(211))
	for _, mode := range []Mode{Global, SemiGlobal} {
		full := mustAligner(t, mode)
		banded := mustAligner(t, mode)
		for trial := 0; trial < 60; trial++ {
			m := 62 + rng.Intn(30)
			window := randomSeq(rng, m)
			var read dna.Seq
			diag := 0
			if mode == SemiGlobal {
				diag = rng.Intn(9)
				end := diag + 40 + rng.Intn(m-40-diag+1)
				read = mutate(rng, window[diag:end], 2)
			} else {
				read = mutate(rng, window, 2)
			}
			// Small indels: delete then insert keeps Global lengths
			// balanced and stays well inside the band either way.
			if len(read) > 4 {
				del := rng.Intn(len(read) - 1)
				read = append(read[:del:del], read[del+1:]...)
				if mode == Global || rng.Intn(2) == 0 {
					ins := rng.Intn(len(read))
					read = append(read[:ins:ins],
						append(dna.Seq{dna.Code(rng.Intn(4))}, read[ins:]...)...)
				}
			}
			x, err := pwm.FromSeqUniformError(read, 0.01)
			if err != nil {
				t.Fatal(err)
			}

			resF, errF := full.Align(x, window)
			llF := math.Inf(-1)
			var dstF [][dna.NumChannels]float64
			var totF []float64
			if errF == nil {
				llF = resF.LogLik
				dstF, totF = contribsOf(t, resF)
			}
			resB, errB := banded.AlignBanded(x, window, diag, band)
			if errF != nil || errB != nil {
				// A mapped-shaped read should always align; treat any
				// rejection as a test-setup bug worth seeing.
				t.Fatalf("mode %v trial %d: full err %v, banded err %v", mode, trial, errF, errB)
			}
			if relErr(llF, resB.LogLik) > tol {
				t.Fatalf("mode %v trial %d: LogLik full %v vs banded %v (rel %g)",
					mode, trial, llF, resB.LogLik, relErr(llF, resB.LogLik))
			}
			dstB, totB := contribsOf(t, resB)
			for j := range dstF {
				if d := math.Abs(totF[j] - totB[j]); d > tol {
					t.Fatalf("mode %v trial %d col %d: total full %v vs banded %v",
						mode, trial, j, totF[j], totB[j])
				}
				for ch := range dstF[j] {
					// Compare unnormalized posterior mass (what the
					// accumulator receives): per-column renormalization
					// divides by the total, which can amplify a sub-tol
					// mass difference in lightly grazed padding columns.
					d := math.Abs(dstF[j][ch]*totF[j] - dstB[j][ch]*totB[j])
					if d > tol {
						t.Fatalf("mode %v trial %d col %d ch %d: full %v vs banded %v",
							mode, trial, j, ch, dstF[j][ch]*totF[j], dstB[j][ch]*totB[j])
					}
				}
			}
		}
	}
}

// TestViterbiBandedFullWidthExact mirrors the forward/backward property
// test for the Viterbi kernel: full-width band, identical best path.
func TestViterbiBandedFullWidthExact(t *testing.T) {
	for _, mode := range []Mode{Global, SemiGlobal} {
		rng := rand.New(rand.NewSource(307))
		full := mustAligner(t, mode)
		banded := mustAligner(t, mode)
		for trial := 0; trial < 30; trial++ {
			m := 10 + rng.Intn(60)
			n := m
			if mode == SemiGlobal {
				n = 2 + rng.Intn(m)
			}
			window := randomSeq(rng, m)
			x := randomPWM(rng, n)

			pF, errF := full.Viterbi(x, window)
			// Capture before the banded call invalidates nothing (two
			// aligners), but copy anyway for clarity.
			var lpF float64
			var cigarF string
			var startF, endF int
			if errF == nil {
				lpF, cigarF, startF, endF = pF.LogProb, pF.CIGAR(), pF.Start, pF.End
			}
			pB, errB := banded.ViterbiBanded(x, window, 0, fullWidthBand(n, m))
			if (errF == nil) != (errB == nil) {
				t.Fatalf("mode %v trial %d: full err %v, banded err %v", mode, trial, errF, errB)
			}
			if errF != nil {
				continue
			}
			if lpF != pB.LogProb || startF != pB.Start || endF != pB.End || cigarF != pB.CIGAR() {
				t.Fatalf("mode %v trial %d: full {%v %d-%d %s} vs banded {%v %d-%d %s}",
					mode, trial, lpF, startF, endF, cigarF,
					pB.LogProb, pB.Start, pB.End, pB.CIGAR())
			}
		}
	}
}

// TestViterbiBandedMatchedReads checks the banded Viterbi on
// mapped-shaped reads: the optimal path stays inside the band, so the
// banded and full kernels must find the same path.
func TestViterbiBandedMatchedReads(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	full := mustAligner(t, SemiGlobal)
	banded := mustAligner(t, SemiGlobal)
	for trial := 0; trial < 40; trial++ {
		m := 70 + rng.Intn(20)
		window := randomSeq(rng, m)
		diag := rng.Intn(9)
		read := mutate(rng, window[diag:diag+62], 2)
		x, err := pwm.FromSeqUniformError(read, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		pF, err := full.Viterbi(x, window)
		if err != nil {
			t.Fatal(err)
		}
		lpF, cigarF := pF.LogProb, pF.CIGAR()
		pB, err := banded.ViterbiBanded(x, window, diag, 20)
		if err != nil {
			t.Fatal(err)
		}
		if lpF != pB.LogProb || cigarF != pB.CIGAR() {
			t.Fatalf("trial %d: full {%v %s} vs banded {%v %s}",
				trial, lpF, cigarF, pB.LogProb, pB.CIGAR())
		}
	}
}

// TestBandedOffMatrixErrNoAlignment: a band anchored entirely outside
// the window cannot contain any DP cell and must report ErrNoAlignment
// rather than a bogus score.
func TestBandedOffMatrixErrNoAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	window := randomSeq(rng, 40)
	x := randomPWM(rng, 20)
	for _, mode := range []Mode{Global, SemiGlobal} {
		a := mustAligner(t, mode)
		if _, err := a.AlignBanded(x, window, 1000, 4); err != ErrNoAlignment {
			t.Errorf("mode %v AlignBanded off-matrix: err %v, want ErrNoAlignment", mode, err)
		}
		if _, err := a.ViterbiBanded(x, window, 1000, 4); err != ErrNoAlignment {
			t.Errorf("mode %v ViterbiBanded off-matrix: err %v, want ErrNoAlignment", mode, err)
		}
	}
}

// TestBandCells sanity-checks the cell-count helper used for ns/cell
// benchmark reporting.
func TestBandCells(t *testing.T) {
	if got, want := BandCells(62, 78, 8, 0), 62*78; got != want {
		t.Errorf("full BandCells = %d, want %d", got, want)
	}
	banded := BandCells(62, 78, 8, 18)
	if banded <= 0 || banded >= 62*78 {
		t.Errorf("banded BandCells = %d, want in (0, %d)", banded, 62*78)
	}
	// Narrow band: at most band+1 cells per row (radius on each side).
	if max := 62 * 19; banded > max {
		t.Errorf("banded BandCells = %d, exceeds %d", banded, max)
	}
	if BandCells(20, 40, 1000, 4) != 0 {
		t.Errorf("off-matrix BandCells != 0")
	}
}

// TestAlignBandedBufferReuse interleaves banded and full alignments of
// different geometries on one Aligner to shake out stale-state bugs in
// the guard-cell discipline.
func TestAlignBandedBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	a := mustAligner(t, SemiGlobal)
	ref := mustAligner(t, SemiGlobal)
	for trial := 0; trial < 50; trial++ {
		m := 20 + rng.Intn(70)
		n := 2 + rng.Intn(m)
		window := randomSeq(rng, m)
		x := randomPWM(rng, n)
		band := 0
		diag := 0
		if rng.Intn(2) == 0 {
			band = fullWidthBand(n, m)
			diag = rng.Intn(5)
		}
		resA, errA := a.AlignBanded(x, window, diag, band)
		resR, errR := ref.Align(x, window)
		if (errA == nil) != (errR == nil) {
			t.Fatalf("trial %d: banded err %v, full err %v", trial, errA, errR)
		}
		if errA != nil {
			continue
		}
		if resA.LogLik != resR.LogLik {
			t.Fatalf("trial %d (band %d): LogLik %v != %v", trial, band, resA.LogLik, resR.LogLik)
		}
	}
}
