package phmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gnumap/internal/dna"
)

func TestViterbiPerfectMatch(t *testing.T) {
	a := mustAligner(t, Global)
	s := "ACGTACGT"
	path, err := a.Viterbi(noisy(t, s, 0.01), dna.MustParseSeq(s))
	if err != nil {
		t.Fatal(err)
	}
	if path.CIGAR() != "8M" {
		t.Errorf("CIGAR = %q, want 8M", path.CIGAR())
	}
	if path.Start != 1 || path.End != 8 {
		t.Errorf("span = [%d,%d], want [1,8]", path.Start, path.End)
	}
}

func TestViterbiSemiGlobalOffset(t *testing.T) {
	a := mustAligner(t, SemiGlobal)
	genome := dna.MustParseSeq("TTTTTTACGTACGGTTTTTT")
	path, err := a.Viterbi(noisy(t, "ACGTACGG", 0.01), genome)
	if err != nil {
		t.Fatal(err)
	}
	if path.Start != 7 || path.End != 14 {
		t.Errorf("span = [%d,%d], want [7,14]", path.Start, path.End)
	}
	if path.CIGAR() != "8M" {
		t.Errorf("CIGAR = %q, want 8M", path.CIGAR())
	}
}

func TestViterbiDeletion(t *testing.T) {
	a := mustAligner(t, Global)
	path, err := a.Viterbi(noisy(t, "ACGTCGTA", 0.01), dna.MustParseSeq("ACGTGCGTA"))
	if err != nil {
		t.Fatal(err)
	}
	if path.CIGAR() != "4M1D4M" {
		t.Errorf("CIGAR = %q, want 4M1D4M", path.CIGAR())
	}
}

func TestViterbiInsertion(t *testing.T) {
	a := mustAligner(t, Global)
	path, err := a.Viterbi(noisy(t, "ACGTTTCGTA", 0.01), dna.MustParseSeq("ACGTTCGTA"))
	if err != nil {
		t.Fatal(err)
	}
	// One of the T's is the insertion; run-length form is stable.
	nIns := 0
	for _, op := range path.Ops {
		if op == OpInsert {
			nIns++
		}
	}
	if nIns != 1 {
		t.Errorf("CIGAR = %q, want exactly one insertion", path.CIGAR())
	}
}

// The Viterbi path probability can never exceed the total likelihood,
// and for unambiguous near-exact matches it should dominate it.
func TestViterbiBoundedByForward(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, mode := range []Mode{Global, SemiGlobal} {
		a := mustAligner(t, mode)
		for trial := 0; trial < 20; trial++ {
			n := 2 + rng.Intn(20)
			m := n + rng.Intn(10)
			x := randomPWM(rng, n)
			y := randomSeq(rng, m)
			res, err := a.Align(x, y)
			if err != nil {
				t.Fatal(err)
			}
			path, err := a.Viterbi(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if path.LogProb > res.LogLik+1e-9 {
				t.Fatalf("%v trial %d: viterbi %v > total %v", mode, trial, path.LogProb, res.LogLik)
			}
		}
	}
}

// Path op counts must be consistent: matches+insertions == read length,
// matches+deletions == consumed window span.
func TestViterbiPathConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, mode := range []Mode{Global, SemiGlobal} {
		a := mustAligner(t, mode)
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(15)
			m := n + rng.Intn(8)
			x := randomPWM(rng, n)
			y := randomSeq(rng, m)
			path, err := a.Viterbi(x, y)
			if err != nil {
				t.Fatal(err)
			}
			matches, ins, dels := 0, 0, 0
			for _, op := range path.Ops {
				switch op {
				case OpMatch:
					matches++
				case OpInsert:
					ins++
				case OpDelete:
					dels++
				}
			}
			if matches+ins != n {
				t.Fatalf("%v: consumed %d read bases, want %d (%s)", mode, matches+ins, n, path.CIGAR())
			}
			if span := path.End - path.Start + 1; matches+dels != span {
				t.Fatalf("%v: consumed %d window bases, span %d (%s)", mode, matches+dels, span, path.CIGAR())
			}
			if mode == Global && (path.Start != 1 || path.End != m) {
				t.Fatalf("global path span [%d,%d] != [1,%d]", path.Start, path.End, m)
			}
		}
	}
}

func TestViterbiErrNoAlignment(t *testing.T) {
	p := DefaultParams()
	for y := 0; y < dna.NumBases; y++ {
		for k := 0; k < dna.NumBases; k++ {
			if y == k {
				p.Match[y][k] = 1
			} else {
				p.Match[y][k] = 0
			}
		}
	}
	a, err := NewAligner(p, Global)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Viterbi(onehot(t, "A"), dna.MustParseSeq("C")); !errors.Is(err, ErrNoAlignment) {
		t.Errorf("err = %v, want ErrNoAlignment", err)
	}
}

func TestViterbiInputValidation(t *testing.T) {
	a := mustAligner(t, Global)
	if _, err := a.Viterbi(onehot(t, "A"), nil); err == nil {
		t.Error("empty window accepted")
	}
}

func TestCIGAREncoding(t *testing.T) {
	p := &Path{Ops: []Op{OpMatch, OpMatch, OpInsert, OpMatch, OpDelete, OpDelete}}
	if got := p.CIGAR(); got != "2M1I1M2D" {
		t.Errorf("CIGAR = %q, want 2M1I1M2D", got)
	}
	if (&Path{}).CIGAR() != "" {
		t.Error("empty path CIGAR must be empty")
	}
}

func TestOpString(t *testing.T) {
	if OpMatch.String() != "M" || OpInsert.String() != "I" || OpDelete.String() != "D" || Op(9).String() != "?" {
		t.Error("Op strings wrong")
	}
}

func TestViterbiLogProbMatchesManual(t *testing.T) {
	// Read "AC" vs window "AC" global: path M,M.
	// logProb = log(TMM · p*(1,1)) + log(TMM · p*(2,2)).
	a := mustAligner(t, Global)
	path, err := a.Viterbi(onehot(t, "AC"), dna.MustParseSeq("AC"))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	want := math.Log(p.TMM*p.Match[dna.A][dna.A]) + math.Log(p.TMM*p.Match[dna.C][dna.C])
	if math.Abs(path.LogProb-want) > 1e-12 {
		t.Errorf("LogProb = %v, want %v", path.LogProb, want)
	}
}
