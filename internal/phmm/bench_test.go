package phmm

import (
	"math/rand"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// benchInputs builds a paper-sized alignment problem: a 62-bp read
// against a padded 78-bp window.
func benchInputs(b *testing.B) (*Matrix62, dna.Seq) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	window := make(dna.Seq, 78)
	for i := range window {
		window[i] = dna.Code(rng.Intn(4))
	}
	read := window[8:70].Clone()
	read[30] = dna.Code((int(read[30]) + 1) % 4)
	p, err := pwm.FromSeqUniformError(read, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	return &Matrix62{p}, window
}

// Matrix62 wraps the PWM to keep the helper signature readable.
type Matrix62 struct{ *pwm.Matrix }

func BenchmarkAlignSemiGlobal62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Align(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlignGlobal62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), Global)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Align(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbi62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Viterbi(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContributions62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Align(p.Matrix, window)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 1; j <= res.M; j++ {
			res.Contribution(j, ByCall)
		}
	}
}

// benchBand is the engine's auto band at the default Pad=8.
const benchBand = 18

func BenchmarkAlignBandedSemiGlobal62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AlignBanded(p.Matrix, window, 8, benchBand); err != nil {
			b.Fatal(err)
		}
	}
	reportPerCell(b, 62, len(window), 8, benchBand)
}

// BenchmarkAlignBandedFullWidth62 runs the banded code path with a band
// covering the whole window — the overhead of band bookkeeping relative
// to BenchmarkAlignSemiGlobal62 is the price of the unified kernel.
func BenchmarkAlignBandedFullWidth62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AlignBanded(p.Matrix, window, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	reportPerCell(b, 62, len(window), 0, 0)
}

func BenchmarkViterbiBanded62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ViterbiBanded(p.Matrix, window, 8, benchBand); err != nil {
			b.Fatal(err)
		}
	}
	reportPerCell(b, 62, len(window), 8, benchBand)
}

// reportPerCell adds a ns/cell metric so banded and full runs are
// comparable per unit of DP work.
func reportPerCell(b *testing.B, n, m, diag, band int) {
	cells := BandCells(n, m, diag, band)
	if cells == 0 {
		return
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cells), "ns/cell")
}
