package phmm

import (
	"fmt"
	"math/rand"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// benchInputs builds a paper-sized alignment problem: a 62-bp read
// against a padded 78-bp window.
func benchInputs(b *testing.B) (*Matrix62, dna.Seq) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	window := make(dna.Seq, 78)
	for i := range window {
		window[i] = dna.Code(rng.Intn(4))
	}
	read := window[8:70].Clone()
	read[30] = dna.Code((int(read[30]) + 1) % 4)
	p, err := pwm.FromSeqUniformError(read, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	return &Matrix62{p}, window
}

// Matrix62 wraps the PWM to keep the helper signature readable.
type Matrix62 struct{ *pwm.Matrix }

func BenchmarkAlignSemiGlobal62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Align(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlignGlobal62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), Global)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Align(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbi62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Viterbi(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContributions62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Align(p.Matrix, window)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 1; j <= res.M; j++ {
			res.Contribution(j, ByCall)
		}
	}
}

// benchBand is the engine's auto band at the default Pad=8.
const benchBand = 18

func BenchmarkAlignBandedSemiGlobal62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AlignBanded(p.Matrix, window, 8, benchBand); err != nil {
			b.Fatal(err)
		}
	}
	reportPerCell(b, 62, len(window), 8, benchBand)
}

// BenchmarkAlignBandedFullWidth62 runs the banded code path with a band
// covering the whole window — the overhead of band bookkeeping relative
// to BenchmarkAlignSemiGlobal62 is the price of the unified kernel.
func BenchmarkAlignBandedFullWidth62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AlignBanded(p.Matrix, window, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	reportPerCell(b, 62, len(window), 0, 0)
}

func BenchmarkViterbiBanded62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ViterbiBanded(p.Matrix, window, 8, benchBand); err != nil {
			b.Fatal(err)
		}
	}
	reportPerCell(b, 62, len(window), 8, benchBand)
}

// reportPerCell adds a ns/cell metric so banded and full runs are
// comparable per unit of DP work.
func reportPerCell(b *testing.B, n, m, diag, band int) {
	cells := BandCells(n, m, diag, band)
	if cells == 0 {
		return
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cells), "ns/cell")
}

// batchBenchInputs replicates benchInputs across L lanes with
// independent reads (same shape, different content, as binning
// produces in the engine).
func batchBenchInputs(b *testing.B, L int) ([]*pwm.Matrix, []dna.Seq) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	xs := make([]*pwm.Matrix, L)
	ys := make([]dna.Seq, L)
	for l := 0; l < L; l++ {
		window := make(dna.Seq, 78)
		for i := range window {
			window[i] = dna.Code(rng.Intn(4))
		}
		read := window[8:70].Clone()
		read[30] = dna.Code((int(read[30]) + 1) % 4)
		p, err := pwm.FromSeqUniformError(read, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		xs[l] = p
		ys[l] = window
	}
	return xs, ys
}

func benchmarkAlignBatch(b *testing.B, L, band int) {
	xs, ys := batchBenchInputs(b, L)
	ba, err := NewBatchAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ba.AlignBatch(xs, ys, 8, band); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ba.AlignBatch(xs, ys, 8, band); err != nil {
			b.Fatal(err)
		}
	}
	cells := BandCells(62, 78, 8, band) * L
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cells), "ns/cell")
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// BenchmarkAlignBatch sweeps lane counts at the engine's default band;
// the 0-alloc assertion for the warm path lives in
// TestAlignBatchAllocFree.
func BenchmarkAlignBatch(b *testing.B) {
	for _, L := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("lanes=%d/band=%d", L, benchBand), func(b *testing.B) {
			benchmarkAlignBatch(b, L, benchBand)
		})
	}
	b.Run("lanes=8/band=full", func(b *testing.B) {
		benchmarkAlignBatch(b, 8, 0)
	})
}
