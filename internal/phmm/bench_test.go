package phmm

import (
	"math/rand"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// benchInputs builds a paper-sized alignment problem: a 62-bp read
// against a padded 78-bp window.
func benchInputs(b *testing.B) (*Matrix62, dna.Seq) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	window := make(dna.Seq, 78)
	for i := range window {
		window[i] = dna.Code(rng.Intn(4))
	}
	read := window[8:70].Clone()
	read[30] = dna.Code((int(read[30]) + 1) % 4)
	p, err := pwm.FromSeqUniformError(read, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	return &Matrix62{p}, window
}

// Matrix62 wraps the PWM to keep the helper signature readable.
type Matrix62 struct{ *pwm.Matrix }

func BenchmarkAlignSemiGlobal62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Align(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlignGlobal62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), Global)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Align(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbi62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Viterbi(p.Matrix, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContributions62(b *testing.B) {
	p, window := benchInputs(b)
	a, err := NewAligner(DefaultParams(), SemiGlobal)
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Align(p.Matrix, window)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 1; j <= res.M; j++ {
			res.Contribution(j, ByCall)
		}
	}
}
