//go:build !amd64

package phmm

// Non-amd64 builds always take the generic Go lane loops.

const simdLanes = 8

var batchAVX2 = false

type fwdRow8 struct {
	outM, outX, outY    *float64
	ps                  *float64
	prevM, prevX, prevY *float64
	rs                  *float64
	steps               int64
	tmm, tgm, tmg, tgg  float64
	q, rowEntry         float64
}

type scaleRow8 struct {
	pM, pX, pY *float64
	inv        *float64
	steps      int64
}

type bwdRow8 struct {
	outM, outX, outY     *float64
	nextM, nextX         *float64
	ps                   *float64
	iv                   *float64
	steps                int64
	tmm, tgm, tmgq, tggq float64
}

func forwardRowAVX2(*fwdRow8)  { panic("phmm: no AVX2 kernel on this architecture") }
func scaleRowAVX2(*scaleRow8)  { panic("phmm: no AVX2 kernel on this architecture") }
func backwardRowAVX2(*bwdRow8) { panic("phmm: no AVX2 kernel on this architecture") }
