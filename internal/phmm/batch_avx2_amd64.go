//go:build amd64

package phmm

import "unsafe"

// The AVX2 row kernels below vectorize the batched sweeps across the 8
// lanes of a simdLanes-wide batch: one iteration of the assembly loop
// advances all 8 lanes by one cell using 4-wide VMULPD/VADDPD pairs.
// Packed IEEE-754 multiply and add round identically to their scalar
// counterparts and Go never contracts a*b+c into an FMA, so as long as
// the expression *tree* matches the generic Go loop (it does, operation
// for operation — see batch_amd64.s), the vector path is bit-identical
// to both the generic path and the scalar kernel in align.go. The
// bit-exactness property tests exercise all three against each other.

// simdLanes is the lane count the assembly kernels are specialized for.
const simdLanes = 8

// batchAVX2 gates the assembly kernels on CPU and OS support.
var batchAVX2 = detectAVX2()

// fwdRow8 carries one forward row sweep's operands to assembly. Field
// offsets are fixed by the 8-byte layout and asserted below; the .s
// file indexes them by constant.
type fwdRow8 struct {
	outM, outX, outY    *float64 // +0, +8, +16: &plane[(cur+lo)*8]
	ps                  *float64 // +24: &pstar[(cur+lo)*8]
	prevM, prevX, prevY *float64 // +32, +40, +48: &plane[(prev+lo)*8]
	rs                  *float64 // +56: &rowSum[0] (8 lanes, read-modify-write)
	steps               int64    // +64: hi - lo + 1
	tmm, tgm, tmg, tgg  float64  // +72, +80, +88, +96
	q, rowEntry         float64  // +104, +112
}

// scaleRow8 rescales one row's three planes by the per-lane inverse.
type scaleRow8 struct {
	pM, pX, pY *float64 // +0, +8, +16: &plane[(cur+lo)*8]
	inv        *float64 // +24: &inv[0] (8 lanes)
	steps      int64    // +32: hi - lo + 1
}

// bwdRow8 carries one backward row sweep (descending j) to assembly.
type bwdRow8 struct {
	outM, outX, outY     *float64 // +0, +8, +16: &plane[(cur+start)*8]
	nextM, nextX         *float64 // +24, +32: &bM/&bX[(next+start)*8]
	ps                   *float64 // +40: &pstar[(next+start)*8]
	iv                   *float64 // +48: &inv[0] (8 lanes)
	steps                int64    // +56: start - lo + 1
	tmm, tgm, tmgq, tggq float64  // +64, +72, +80, +88
}

// Compile-time layout assertions: a non-zero difference makes the array
// length negative and the package fails to build.
var (
	_ [unsafe.Offsetof(fwdRow8{}.rs) - 56]struct{}
	_ [unsafe.Offsetof(fwdRow8{}.steps) - 64]struct{}
	_ [unsafe.Offsetof(fwdRow8{}.rowEntry) - 112]struct{}
	_ [unsafe.Offsetof(scaleRow8{}.steps) - 32]struct{}
	_ [unsafe.Offsetof(bwdRow8{}.iv) - 48]struct{}
	_ [unsafe.Offsetof(bwdRow8{}.tggq) - 88]struct{}
)

//go:noescape
func forwardRowAVX2(a *fwdRow8)

//go:noescape
func scaleRowAVX2(a *scaleRow8)

//go:noescape
func backwardRowAVX2(a *bwdRow8)

// cpuidex and xgetbv0 are implemented in batch_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// detectAVX2 reports whether the CPU supports AVX2 and the OS preserves
// YMM state across context switches.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0
}
