package phmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

func mustAligner(t *testing.T, mode Mode) *Aligner {
	t.Helper()
	a, err := NewAligner(DefaultParams(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func onehot(t *testing.T, s string) *pwm.Matrix {
	t.Helper()
	m, err := pwm.FromSeqUniformError(dna.MustParseSeq(s), 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func noisy(t *testing.T, s string, e float64) *pwm.Matrix {
	t.Helper()
	m, err := pwm.FromSeqUniformError(dna.MustParseSeq(s), e)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	base := DefaultParams()

	p := base
	p.TMM = 0.9 // breaks TMM + 2 TMG = 1
	if err := p.Validate(); err == nil {
		t.Error("unbalanced match transitions accepted")
	}
	p = base
	p.TGG, p.TGM = 0.5, 0.6
	if err := p.Validate(); err == nil {
		t.Error("unbalanced gap transitions accepted")
	}
	p = base
	p.Q = 0
	if err := p.Validate(); err == nil {
		t.Error("zero gap emission accepted")
	}
	p = base
	p.Match[0][0] = 0.5 // row no longer sums to 1
	if err := p.Validate(); err == nil {
		t.Error("non-stochastic match row accepted")
	}
	p = base
	p.TMG = -0.025
	if err := p.Validate(); err == nil {
		t.Error("negative transition accepted")
	}
}

func TestNewAlignerRejectsBadMode(t *testing.T) {
	if _, err := NewAligner(DefaultParams(), Mode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestSingleCellGlobalExact(t *testing.T) {
	// Read "A" vs window "A": the only alignment is one match.
	// L = TMM · p*(1,1), p*(1,1) = Match[A][A] = 0.98.
	a := mustAligner(t, Global)
	res, err := a.Align(onehot(t, "A"), dna.MustParseSeq("A"))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	want := math.Log(p.TMM * p.Match[dna.A][dna.A])
	if math.Abs(res.LogLik-want) > 1e-12 {
		t.Errorf("LogLik = %v, want %v", res.LogLik, want)
	}
	if got := res.PostMatch(1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("PostMatch(1,1) = %v, want 1", got)
	}
}

// bruteForce enumerates every alignment path explicitly and sums its
// probability, independent of the DP code.
func bruteForce(t *testing.T, p Params, x *pwm.Matrix, y dna.Seq, mode Mode) float64 {
	t.Helper()
	n, m := x.Len(), len(y)
	pstar := func(i, j int) float64 {
		row := x.Row(i - 1)
		mr := p.Match[y[j-1]]
		s := 0.0
		for k := 0; k < dna.NumBases; k++ {
			s += row[k] * mr[k]
		}
		return s
	}
	type state int
	const (
		M state = iota
		X
		Y
	)
	var total float64
	var walk func(st state, i, j int, prob float64)
	terminal := func(st state, i, j int) bool {
		if mode == Global {
			return i == n && j == m
		}
		return i == n && (st == M || st == X)
	}
	walk = func(st state, i, j int, prob float64) {
		if terminal(st, i, j) {
			total += prob
			// In SemiGlobal a terminal cell may still extend (e.g. via
			// GX); in Global (n,m) is absorbing. Continue exploring in
			// neither case: Global cannot move past (n,m) anyway, and
			// SemiGlobal terminal M/GX states end the path by
			// definition of the terminal sum. But GX at row n can also
			// be *reached through* further read bases — impossible, no
			// read bases remain. So stop.
			return
		}
		if i > n || j > m {
			return
		}
		var tM, tG float64
		switch st {
		case M:
			tM, tG = p.TMM, p.TMG
		default:
			tM, tG = p.TGM, p.TGG
		}
		// -> M(i+1, j+1)
		if i+1 <= n && j+1 <= m {
			walk(M, i+1, j+1, prob*tM*pstar(i+1, j+1))
		}
		// -> GX(i+1, j): only from M or X.
		if (st == M || st == X) && i+1 <= n {
			walk(X, i+1, j, prob*tG*p.Q)
		}
		// -> GY(i, j+1): only from M or Y.
		if (st == M || st == Y) && j+1 <= m {
			walk(Y, i, j+1, prob*tG*p.Q)
		}
	}
	if mode == Global {
		// The paper zeroes the f borders, so every global alignment
		// starts with a match at (1,1): no leading gaps.
		// The begin state behaves like M, so entering M(1,1) costs TMM.
		walk(M, 1, 1, p.TMM*pstar(1, 1))
	} else {
		for j := 1; j <= m; j++ {
			walk(M, 1, j, pstar(1, j))
		}
	}
	return total
}

func TestForwardMatchesBruteForceGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := mustAligner(t, Global)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(4) // insertions make m < n legal
		x := randomPWM(rng, n)
		y := randomSeq(rng, m)
		res, err := a.Align(x, y)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(t, a.params, x, y, Global)
		got := math.Exp(res.LogLik)
		if relErr(got, want) > 1e-9 {
			t.Fatalf("trial %d (n=%d m=%d): DP=%g brute=%g", trial, n, m, got, want)
		}
	}
}

func TestForwardMatchesBruteForceSemiGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := mustAligner(t, SemiGlobal)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		x := randomPWM(rng, n)
		y := randomSeq(rng, m)
		res, err := a.Align(x, y)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(t, a.params, x, y, SemiGlobal)
		got := math.Exp(res.LogLik)
		if relErr(got, want) > 1e-9 {
			t.Fatalf("trial %d (n=%d m=%d): DP=%g brute=%g", trial, n, m, got, want)
		}
	}
}

func randomSeq(rng *rand.Rand, m int) dna.Seq {
	y := make(dna.Seq, m)
	for i := range y {
		y[i] = dna.Code(rng.Intn(4))
	}
	return y
}

func randomPWM(rng *rand.Rand, n int) *pwm.Matrix {
	s := randomSeq(rng, n)
	m, err := pwm.FromSeqUniformError(s, 0.05+0.3*rng.Float64())
	if err != nil {
		panic(err)
	}
	return m
}

func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	den := math.Max(math.Abs(a), math.Abs(b))
	return d / den
}

// Each read base is in exactly one of the M/GX states in any alignment,
// so its posterior row must sum to 1 — in both modes, any inputs.
func TestPosteriorRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, mode := range []Mode{Global, SemiGlobal} {
		a := mustAligner(t, mode)
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(40)
			m := n + rng.Intn(20)
			x := randomPWM(rng, n)
			y := randomSeq(rng, m)
			res, err := a.Align(x, y)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= n; i++ {
				sum := 0.0
				for j := 1; j <= m; j++ {
					sum += res.PostMatch(i, j) + res.PostGapX(i, j)
				}
				// Global mode: GX at column 0 is zeroed per the paper,
				// and GX(i, m) cells are unreachable-to-terminal except
				// through column m; the row sum is still 1 because
				// every path emits read base i somewhere in 1..m.
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("%v trial %d: row %d posterior sum = %v", mode, trial, i, sum)
				}
			}
		}
	}
}

func TestPosteriorPeaksOnPerfectMatch(t *testing.T) {
	a := mustAligner(t, Global)
	s := "ACGTACGTTGCA"
	res, err := a.Align(noisy(t, s, 0.01), dna.MustParseSeq(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= len(s); i++ {
		if got := res.PostMatch(i, i); got < 0.99 {
			t.Errorf("PostMatch(%d,%d) = %v, want > 0.99", i, i, got)
		}
	}
}

func TestSemiGlobalFindsOffsetMatch(t *testing.T) {
	a := mustAligner(t, SemiGlobal)
	genome := dna.MustParseSeq("TTTTTTACGTACGGTTTTTT")
	read := noisy(t, "ACGTACGG", 0.01)
	res, err := a.Align(read, genome)
	if err != nil {
		t.Fatal(err)
	}
	// Read base i should match window position i+6.
	for i := 1; i <= 8; i++ {
		if got := res.PostMatch(i, i+6); got < 0.95 {
			t.Errorf("PostMatch(%d,%d) = %v, want > 0.95", i, i+6, got)
		}
	}
}

func TestDeletionShowsGapPosterior(t *testing.T) {
	// Window has one extra base relative to the read: the alignment
	// must delete it, and PostGapY mass should appear at that column.
	a := mustAligner(t, Global)
	read := noisy(t, "ACGTCGTA", 0.01)
	window := dna.MustParseSeq("ACGTGCGTA") // extra G at column 5
	res, err := a.Align(read, window)
	if err != nil {
		t.Fatal(err)
	}
	gapMass := 0.0
	for i := 1; i <= read.Len(); i++ {
		gapMass += res.PostGapY(i, 5)
	}
	if gapMass < 0.5 {
		t.Errorf("gap posterior at deleted column = %v, want > 0.5", gapMass)
	}
}

func TestInsertionShowsGapXPosterior(t *testing.T) {
	// Read has one extra base: some read base must sit in GX.
	a := mustAligner(t, Global)
	read := noisy(t, "ACGTTCGTA", 0.01) // extra T at read position 5
	window := dna.MustParseSeq("ACGTCGTA")
	res, err := a.Align(read, window)
	if err != nil {
		t.Fatal(err)
	}
	insMass := 0.0
	for i := 1; i <= read.Len(); i++ {
		for j := 1; j <= len(window); j++ {
			insMass += res.PostGapX(i, j)
		}
	}
	if insMass < 0.5 {
		t.Errorf("total insertion posterior = %v, want > 0.5", insMass)
	}
}

func TestContributionByCall(t *testing.T) {
	a := mustAligner(t, Global)
	s := "ACGTACGT"
	res, err := a.Align(noisy(t, s, 0.01), dna.MustParseSeq(s))
	if err != nil {
		t.Fatal(err)
	}
	seq := dna.MustParseSeq(s)
	for j := 1; j <= len(s); j++ {
		z, total := res.Contribution(j, ByCall)
		if total < 0.9 {
			t.Errorf("position %d: total mass %v, want ~1", j, total)
		}
		sum := 0.0
		for k := range z {
			sum += z[k]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("position %d: z sums to %v", j, sum)
		}
		if z[seq[j-1]] < 0.98 {
			t.Errorf("position %d: z[%v] = %v, want > 0.98", j, seq[j-1], z[seq[j-1]])
		}
	}
}

func TestContributionByPWMSpreadsUncertainty(t *testing.T) {
	a := mustAligner(t, Global)
	// Very low-confidence read: e = 0.6 means the called base gets 0.4.
	read, err := pwm.FromSeqUniformError(dna.MustParseSeq("A"), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Align(read, dna.MustParseSeq("A"))
	if err != nil {
		t.Fatal(err)
	}
	zCall, _ := res.Contribution(1, ByCall)
	zPWM, _ := res.Contribution(1, ByPWM)
	if zCall[dna.A] < 0.999 {
		t.Errorf("ByCall z[A] = %v, want 1", zCall[dna.A])
	}
	if zPWM[dna.A] > 0.5 {
		t.Errorf("ByPWM z[A] = %v, want the 0.4 call weight", zPWM[dna.A])
	}
}

func TestContributionOutsideAlignmentIsZero(t *testing.T) {
	a := mustAligner(t, SemiGlobal)
	genome := dna.MustParseSeq("TTTTTTTTTTACGTACGGTTTTTTTTTT")
	res, err := a.Align(noisy(t, "ACGTACGG", 0.01), genome)
	if err != nil {
		t.Fatal(err)
	}
	_, totalFar := res.Contribution(2, ByCall)
	if totalFar > 0.01 {
		t.Errorf("mass at distant position = %v, want ~0", totalFar)
	}
	_, totalIn := res.Contribution(12, ByCall)
	if totalIn < 0.9 {
		t.Errorf("mass inside alignment = %v, want ~1", totalIn)
	}
}

func TestLongReadScalingStable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 2000 // would underflow float64 without scaling (0.25^2000)
	y := randomSeq(rng, n)
	x, err := pwm.FromSeqUniformError(y, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	a := mustAligner(t, Global)
	res, err := a.Align(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.LogLik, 0) || math.IsNaN(res.LogLik) {
		t.Fatalf("LogLik = %v", res.LogLik)
	}
	// Posterior must still be sharp along the diagonal.
	if got := res.PostMatch(n/2, n/2); got < 0.95 {
		t.Errorf("mid posterior = %v, want > 0.95", got)
	}
}

func TestErrNoAlignment(t *testing.T) {
	p := DefaultParams()
	for y := 0; y < dna.NumBases; y++ {
		for k := 0; k < dna.NumBases; k++ {
			if y == k {
				p.Match[y][k] = 1
			} else {
				p.Match[y][k] = 0
			}
		}
	}
	a, err := NewAligner(p, Global)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Align(onehot(t, "A"), dna.MustParseSeq("C"))
	if !errors.Is(err, ErrNoAlignment) {
		t.Errorf("err = %v, want ErrNoAlignment", err)
	}
}

func TestAlignInputValidation(t *testing.T) {
	a := mustAligner(t, Global)
	if _, err := a.Align(onehot(t, "A"), nil); err == nil {
		t.Error("empty window accepted")
	}
	empty, _ := pwm.FromSeqUniformError(nil, 0.1)
	if _, err := a.Align(empty, dna.MustParseSeq("A")); err == nil {
		t.Error("empty read accepted")
	}
}

func TestGenomeNUniformEmission(t *testing.T) {
	a := mustAligner(t, Global)
	res, err := a.Align(onehot(t, "A"), dna.MustParseSeq("N"))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	want := math.Log(p.TMM * p.meanMatch()[dna.A])
	if math.Abs(res.LogLik-want) > 1e-12 {
		t.Errorf("LogLik vs N = %v, want %v", res.LogLik, want)
	}
}

func TestBufferReuseAcrossSizes(t *testing.T) {
	a := mustAligner(t, SemiGlobal)
	// Big alignment then small one: stale buffer contents must not leak.
	if _, err := a.Align(onehot(t, "ACGTACGTACGTACGT"), dna.MustParseSeq("ACGTACGTACGTACGTACGT")); err != nil {
		t.Fatal(err)
	}
	res, err := a.Align(onehot(t, "GG"), dna.MustParseSeq("AGGA"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		sum := 0.0
		for j := 1; j <= 4; j++ {
			sum += res.PostMatch(i, j) + res.PostGapX(i, j)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d posterior sum after reuse = %v", i, sum)
		}
	}
}

// ContributionsInto must agree with per-column Contribution exactly.
func TestContributionsIntoMatchesPerColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, mode := range []Mode{Global, SemiGlobal} {
		for _, attr := range []Attribution{ByCall, ByPWM} {
			a := mustAligner(t, mode)
			n := 5 + rng.Intn(30)
			m := n + rng.Intn(16)
			x := randomPWM(rng, n)
			y := randomSeq(rng, m)
			res, err := a.Align(x, y)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([][dna.NumChannels]float64, m)
			totals := make([]float64, m)
			if err := res.ContributionsInto(attr, dst, totals); err != nil {
				t.Fatal(err)
			}
			for j := 1; j <= m; j++ {
				z, total := res.Contribution(j, attr)
				if math.Abs(total-totals[j-1]) > 1e-9 {
					t.Fatalf("%v/%v col %d: total %v vs %v", mode, attr, j, totals[j-1], total)
				}
				for k := range z {
					if math.Abs(z[k]-dst[j-1][k]) > 1e-9 {
						t.Fatalf("%v/%v col %d ch %d: %v vs %v", mode, attr, j, k, dst[j-1][k], z[k])
					}
				}
			}
			if err := res.ContributionsInto(attr, dst[:1], totals); err == nil {
				t.Fatal("short dst accepted")
			}
		}
	}
}

// Reusing an aligner across many differently-sized alignments must not
// leak stale state now that buffers are not bulk-cleared.
func TestBufferReuseNoStaleState(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, mode := range []Mode{Global, SemiGlobal} {
		reused := mustAligner(t, mode)
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(25)
			m := 1 + rng.Intn(30)
			if mode == Global && m < n {
				m = n // keep global problems well-posed for comparison
			}
			x := randomPWM(rng, n)
			y := randomSeq(rng, m)
			fresh := mustAligner(t, mode)
			rr, err1 := reused.Align(x, y)
			fr, err2 := fresh.Align(x, y)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%v trial %d: err mismatch %v vs %v", mode, trial, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if math.Abs(rr.LogLik-fr.LogLik) > 1e-9*(1+math.Abs(fr.LogLik)) {
				t.Fatalf("%v trial %d: loglik %v vs fresh %v", mode, trial, rr.LogLik, fr.LogLik)
			}
			for i := 1; i <= n; i++ {
				for j := 1; j <= m; j++ {
					if math.Abs(rr.PostMatch(i, j)-fr.PostMatch(i, j)) > 1e-9 ||
						math.Abs(rr.PostGapX(i, j)-fr.PostGapX(i, j)) > 1e-9 ||
						math.Abs(rr.PostGapY(i, j)-fr.PostGapY(i, j)) > 1e-9 {
						t.Fatalf("%v trial %d: posterior mismatch at (%d,%d)", mode, trial, i, j)
					}
				}
			}
		}
	}
}
