// Package phmm implements the probabilistic Pair-Hidden Markov Model at
// the core of GNUMAP-SNP (paper §V-A/B and §VI Step 2).
//
// The model has three states — M (match), GX (read base aligned to a
// genome gap, i.e. an insertion in the read) and GY (genome base aligned
// to a read gap, i.e. a deletion in the read) — with transition
// probabilities T_MM, T_MG, T_GM, T_GG, gap emission probability q, and
// a match emission that is *quality weighted*: for read position i and
// genome base y_j,
//
//	p*(i,j) = Σ_k r_ik · p(k | y_j)
//
// where r_ik is the PWM probability of base k at read position i
// (internal/pwm). The forward-backward algorithm computes, for every
// cell, the marginal posterior probability that the cell's pairing
// appears in the (unknown) true alignment, marginalized over all
// alignments — the property that lets GNUMAP-SNP use sub-optimal
// alignments instead of committing to a single best one.
//
// The forward recursion in the paper's text contains an index typo
// (it reads f_GX(i-1,j) and f_GY(i,j-1) as the M-state predecessors,
// which double-consumes a symbol). We implement the standard recursion
// from the paper's own citation (Durbin et al., Biological Sequence
// Analysis, ch. 4), with all three M-state predecessors at (i-1, j-1).
//
// All dynamic programming is carried out with per-row rescaling so that
// likelihoods of arbitrarily long reads neither underflow nor overflow;
// log-likelihoods are exact up to float64 rounding.
package phmm

import (
	"fmt"
	"math"

	"gnumap/internal/dna"
)

// Params holds the PHMM transition and emission parameters.
type Params struct {
	// TMM is the match→match transition probability. TMM + 2·TMG = 1.
	TMM float64
	// TMG is the match→gap transition probability (gap open), used for
	// both gap states symmetrically, as in the paper.
	TMG float64
	// TGM is the gap→match transition probability (gap close).
	TGM float64
	// TGG is the gap→gap transition probability (gap extend).
	// TGM + TGG = 1.
	TGG float64
	// Q is the emission probability of a nucleotide inside a gap state
	// (the paper's q, usually the uniform 0.25).
	Q float64
	// Match[y][k] is the probability of observing read base k given
	// genome base y. Rows must sum to 1. The default is
	// transition/transversion aware: a transition (A<->G, C<->T) is
	// more probable than either transversion.
	Match [dna.NumBases][dna.NumBases]float64
}

// DefaultParams returns the parameter set used throughout the paper
// reproduction: gap open 0.025, gap extend 0.3 (short-read indels are
// rare and short), uniform gap emission, and a transition-biased match
// matrix with 0.98 identity probability.
func DefaultParams() Params {
	p := Params{
		TMM: 0.95,
		TMG: 0.025,
		TGM: 0.7,
		TGG: 0.3,
		Q:   0.25,
	}
	for y := 0; y < dna.NumBases; y++ {
		for k := 0; k < dna.NumBases; k++ {
			switch {
			case y == k:
				p.Match[y][k] = 0.98
			case dna.IsTransition(dna.Code(y), dna.Code(k)):
				p.Match[y][k] = 0.01
			default:
				p.Match[y][k] = 0.005
			}
		}
	}
	return p
}

// Validate checks stochasticity of the parameter set.
func (p Params) Validate() error {
	if p.TMM <= 0 || p.TMG <= 0 || p.TGM <= 0 || p.TGG <= 0 {
		return fmt.Errorf("phmm: transition probabilities must be positive: %+v", p)
	}
	if d := math.Abs(p.TMM + 2*p.TMG - 1); d > 1e-9 {
		return fmt.Errorf("phmm: TMM + 2·TMG = %g, want 1", p.TMM+2*p.TMG)
	}
	if d := math.Abs(p.TGM + p.TGG - 1); d > 1e-9 {
		return fmt.Errorf("phmm: TGM + TGG = %g, want 1", p.TGM+p.TGG)
	}
	if p.Q <= 0 || p.Q > 1 {
		return fmt.Errorf("phmm: gap emission q = %g out of (0,1]", p.Q)
	}
	for y := 0; y < dna.NumBases; y++ {
		sum := 0.0
		for k := 0; k < dna.NumBases; k++ {
			if p.Match[y][k] < 0 {
				return fmt.Errorf("phmm: Match[%v][%v] negative", dna.Code(y), dna.Code(k))
			}
			sum += p.Match[y][k]
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("phmm: Match row %v sums to %g, want 1", dna.Code(y), sum)
		}
	}
	return nil
}

// meanMatch returns, for each read base k, the emission probability
// averaged over a uniform genome base — the emission used against an
// ambiguous (N) genome position.
func (p Params) meanMatch() [dna.NumBases]float64 {
	var out [dna.NumBases]float64
	for k := 0; k < dna.NumBases; k++ {
		for y := 0; y < dna.NumBases; y++ {
			out[k] += p.Match[y][k]
		}
		out[k] /= dna.NumBases
	}
	return out
}

// Mode selects the alignment boundary condition.
type Mode int

const (
	// SemiGlobal aligns the whole read against any contiguous stretch
	// of the window: leading and trailing genome bases are free. This
	// is the practical read-mapping mode (and the zero-value default),
	// used with a padded window so indels do not push the alignment
	// off the window edge.
	SemiGlobal Mode = iota
	// Global is the paper's exact formulation: the read aligns to the
	// whole candidate window, beginning at (1,1) and ending at (N,M).
	// Use when the window length exactly matches the read span.
	Global
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Global:
		return "global"
	case SemiGlobal:
		return "semiglobal"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}
