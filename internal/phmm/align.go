package phmm

import (
	"errors"
	"fmt"
	"math"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// ErrNoAlignment is returned when the model assigns zero probability to
// every alignment of the read and window (possible with degenerate
// parameters, e.g. a one-hot PWM against a mismatching window in Global
// mode with a zero-probability Match entry, or when a band excludes
// every admissible alignment).
var ErrNoAlignment = errors.New("phmm: no alignment with non-zero probability")

// Aligner runs forward-backward alignments. It owns reusable DP
// buffers: one Aligner per goroutine; Align results are views into
// those buffers and are invalidated by the next Align call.
type Aligner struct {
	params Params
	mode   Mode
	mean   [dna.NumBases]float64

	// DP matrices, flattened row-major with stride m+1; row i spans
	// [i*(m+1), (i+1)*(m+1)). Only the cells each pass writes are
	// (re-)initialized — see forward/backward — so buffer reuse never
	// leaks stale state into cells a pass reads. In banded runs each
	// pass additionally zeroes one guard cell on each side of a row's
	// band, so band-edge reads of out-of-band neighbours see zero.
	fM, fX, fY []float64
	bM, bX, bY []float64
	// pstar caches the quality-weighted emissions p*(i,j) for all
	// in-band cells, filled once per Align and shared by both passes
	// (row i spans the same flat layout as the DP matrices).
	pstar []float64
	// scale[i] is the forward scaling factor of row i (scale[0] = 1).
	scale []float64

	// band geometry of the current run: when banded, only cells with
	// |j - i - diag| <= radius are computed. Set per Align/Viterbi call.
	banded bool
	diag   int
	radius int

	// cells accumulates the DP cells computed (per pass geometry, not
	// per pass count) across the aligner's lifetime — the kernel-work
	// measure observability reports as phmm.cells.
	cells int64

	// res is the reusable Result returned by Align; vres/path/ops are
	// the Viterbi DP state and reusable output (see viterbi.go).
	res Result

	vM, vX, vY       []float64
	ptrM, ptrX, ptrY []viterbiState
	path             Path
	ops, opsRev      []Op
}

// NewAligner returns an Aligner with validated parameters.
func NewAligner(p Params, mode Mode) (*Aligner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mode != Global && mode != SemiGlobal {
		return nil, fmt.Errorf("phmm: unknown mode %d", int(mode))
	}
	return &Aligner{params: p, mode: mode, mean: p.meanMatch()}, nil
}

// Params returns the aligner's parameter set.
func (a *Aligner) Params() Params { return a.params }

// Mode returns the aligner's boundary-condition mode.
func (a *Aligner) Mode() Mode { return a.mode }

// CellsComputed returns the cumulative DP cells this aligner has
// computed across all Align/Viterbi calls (band geometry per call, so a
// banded call counts only its in-band cells). Callers tracking per-read
// work should difference successive values.
func (a *Aligner) CellsComputed() int64 { return a.cells }

// Result is a completed forward-backward alignment. It is a view into
// the Aligner's buffers: valid only until the next Align call on the
// same Aligner (the Result struct itself is also reused).
type Result struct {
	a *Aligner
	// N is the read length, M the window length.
	N, M int
	// LogLik is the natural-log total alignment likelihood, summed
	// over all alignments admitted by the mode's boundary conditions
	// (and, in banded runs, by the band).
	LogLik float64
	// lScaled is the terminal sum in scaled space; posteriors divide
	// by it.
	lScaled float64
	x       *pwm.Matrix
	y       dna.Seq
	// band geometry snapshot (see Aligner).
	banded       bool
	diag, radius int
}

// bandRowBounds returns the inclusive column range [lo, hi] of row i
// that a banded run computes: the cells with |j - i - diag| <= radius,
// clipped to [1, m]. An empty intersection returns lo > hi. With
// banded == false the whole row [1, m] is returned.
func bandRowBounds(i, m, diag, radius int, banded bool) (lo, hi int) {
	if !banded {
		return 1, m
	}
	lo = i + diag - radius
	hi = i + diag + radius
	if lo < 1 {
		lo = 1
	}
	if hi > m {
		hi = m
	}
	return lo, hi
}

// rowBounds is bandRowBounds under the aligner's current geometry.
func (a *Aligner) rowBounds(i, m int) (lo, hi int) {
	return bandRowBounds(i, m, a.diag, a.radius, a.banded)
}

// rowBounds is bandRowBounds under the result's geometry.
func (r *Result) rowBounds(i int) (lo, hi int) {
	return bandRowBounds(i, r.M, r.diag, r.radius, r.banded)
}

// inBand reports whether cell (i, j) was computed by the run.
func (r *Result) inBand(i, j int) bool {
	lo, hi := r.rowBounds(i)
	return j >= lo && j <= hi
}

// BandCells returns the number of DP cells one pass of a banded
// alignment of an n-base read against an m-base window computes — the
// full n·m rectangle when band <= 0. Benchmarks use it to report
// ns/cell.
func BandCells(n, m, diag, band int) int {
	if band <= 0 {
		return n * m
	}
	cells := 0
	for i := 1; i <= n; i++ {
		lo, hi := bandRowBounds(i, m, diag, band/2, true)
		if lo <= hi {
			cells += hi - lo + 1
		}
	}
	return cells
}

// Align runs the scaled forward and backward algorithms for read PWM x
// against genome window y over the full DP rectangle and returns the
// posterior view.
func (a *Aligner) Align(x *pwm.Matrix, y dna.Seq) (*Result, error) {
	return a.AlignBanded(x, y, 0, 0)
}

// AlignBanded is Align restricted to a diagonal band: only cells with
// |j - i - diag| <= band/2 are computed, where diag is the expected
// offset between window column j and read row i (for a window that
// starts pad bases before the read's seeded position, diag = pad).
// band is the total band width in DP cells; band <= 0 disables banding
// and reproduces Align bit-for-bit. The likelihood is then marginal
// over in-band alignments only — for a band wide enough to contain the
// probable alignments the difference is negligible, while the DP cost
// drops from n·m to ~n·band.
func (a *Aligner) AlignBanded(x *pwm.Matrix, y dna.Seq, diag, band int) (*Result, error) {
	n, m := x.Len(), len(y)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("phmm: empty read (%d) or window (%d)", n, m)
	}
	a.banded = band > 0
	a.diag = diag
	a.radius = band / 2
	a.cells += int64(BandCells(n, m, diag, band))
	a.resize(n, m)
	a.fillEmissions(x, y, n, m)
	if err := a.forward(n, m); err != nil {
		return nil, err
	}
	lScaled := a.terminalSum(n, m)
	if lScaled <= 0 {
		return nil, ErrNoAlignment
	}
	a.backward(n, m)
	logLik := math.Log(lScaled)
	for i := 1; i <= n; i++ {
		logLik += math.Log(a.scale[i])
	}
	a.res = Result{
		a: a, N: n, M: m, LogLik: logLik, lScaled: lScaled, x: x, y: y,
		banded: a.banded, diag: a.diag, radius: a.radius,
	}
	return &a.res, nil
}

// resize grows the DP buffers to (n+1)×(m+1) without clearing them;
// forward and backward initialize exactly the cells they depend on.
func (a *Aligner) resize(n, m int) {
	need := (n + 1) * (m + 1)
	if cap(a.fM) < need {
		a.fM = make([]float64, need)
		a.fX = make([]float64, need)
		a.fY = make([]float64, need)
		a.bM = make([]float64, need)
		a.bX = make([]float64, need)
		a.bY = make([]float64, need)
		a.pstar = make([]float64, need)
	}
	a.fM = a.fM[:need]
	a.fX = a.fX[:need]
	a.fY = a.fY[:need]
	a.bM = a.bM[:need]
	a.bX = a.bX[:need]
	a.bY = a.bY[:need]
	a.pstar = a.pstar[:need]
	if cap(a.scale) < n+1 {
		a.scale = make([]float64, n+1)
	}
	a.scale = a.scale[:n+1]
}

// fillEmissions computes p*(i,j) = Σ_k r_ik·p(k|y_j) for every in-band
// cell, shared by the forward and backward passes. Out-of-band pstar
// cells may hold stale values from earlier runs; every read of such a
// cell is multiplied by a zeroed DP guard, so stale (always finite)
// emissions never contribute.
func (a *Aligner) fillEmissions(x *pwm.Matrix, y dna.Seq, n, m int) {
	w := m + 1
	for i := 1; i <= n; i++ {
		lo, hi := a.rowBounds(i, m)
		if lo > hi {
			continue
		}
		row := x.Row(i - 1) // PWM is 0-based
		out := a.pstar[i*w+lo : i*w+hi+1]
		for jj := range out {
			yj := y[lo-1+jj]
			if yj.IsConcrete() {
				mr := &a.params.Match[yj]
				out[jj] = row[dna.A]*mr[dna.A] + row[dna.C]*mr[dna.C] + row[dna.G]*mr[dna.G] + row[dna.T]*mr[dna.T]
			} else {
				out[jj] = row[dna.A]*a.mean[dna.A] + row[dna.C]*a.mean[dna.C] + row[dna.G]*a.mean[dna.G] + row[dna.T]*a.mean[dna.T]
			}
		}
	}
}

// forward fills the scaled forward matrices and a.scale over the band.
func (a *Aligner) forward(n, m int) error {
	p := a.params
	w := m + 1
	a.scale[0] = 1
	fM, fX, fY, ps := a.fM, a.fX, a.fY, a.pstar
	// Initialize the row-0 border cells row 1 reads: columns
	// [lo(1)-1, hi(1)] (the recursion reads (0, j-1) and (0, j)).
	lo1, hi1 := a.rowBounds(1, m)
	for j := lo1 - 1; j <= hi1; j++ {
		fM[j], fX[j], fY[j] = 0, 0, 0
	}
	if a.mode == Global {
		fM[0] = 1 // virtual begin at (0,0)
	}
	entry := 0.0
	if a.mode == SemiGlobal {
		// Free entry: the first read base may match any window
		// position with unit prior weight.
		entry = 1
	}
	for i := 1; i <= n; i++ {
		lo, hi := a.rowBounds(i, m)
		if lo > hi {
			// The band slid off the DP rectangle: no admissible path.
			return ErrNoAlignment
		}
		prev := (i - 1) * w
		cur := i * w
		// Left guard: the GY recursion reads (i, lo-1), and row i+1
		// reads (i, lo(i+1)-1) which is at least lo-1. (At lo == 1
		// this is the column-0 border the full kernel zeroes.)
		fM[cur+lo-1], fX[cur+lo-1], fY[cur+lo-1] = 0, 0, 0
		rowSum := 0.0
		rowEntry := 0.0
		if i == 1 {
			rowEntry = entry
		}
		for j := lo; j <= hi; j++ {
			// Match: all predecessors at (i-1, j-1).
			mm := p.TMM*fM[prev+j-1] + p.TGM*(fX[prev+j-1]+fY[prev+j-1]) + rowEntry
			fm := ps[cur+j] * mm
			// GX consumes a read base: predecessors at (i-1, j).
			fx := p.Q * (p.TMG*fM[prev+j] + p.TGG*fX[prev+j])
			// GY consumes a genome base: predecessors at (i, j-1),
			// within the current row (already computed this sweep).
			fy := p.Q * (p.TMG*fM[cur+j-1] + p.TGG*fY[cur+j-1])
			fM[cur+j] = fm
			fX[cur+j] = fx
			fY[cur+j] = fy
			rowSum += fm + fx + fy
		}
		// GX at column 0 (read base before any genome base) is only
		// reachable in Global mode from the virtual begin; the paper
		// zeroes the border, and we follow it: nothing to compute.
		if rowSum <= 0 {
			return ErrNoAlignment
		}
		a.scale[i] = rowSum
		inv := 1 / rowSum
		for j := lo; j <= hi; j++ {
			fM[cur+j] *= inv
			fX[cur+j] *= inv
			fY[cur+j] *= inv
		}
		// Right guard: row i+1's band may extend one column past hi
		// and read (i, hi+1); out-of-band means zero.
		if hi < m {
			fM[cur+hi+1], fX[cur+hi+1], fY[cur+hi+1] = 0, 0, 0
		}
	}
	return nil
}

// terminalSum returns the scaled-space total likelihood: the sum over
// terminal cells admitted by the mode (and the band).
func (a *Aligner) terminalSum(n, m int) float64 {
	w := m + 1
	last := n * w
	lo, hi := a.rowBounds(n, m)
	if a.mode == Global {
		if hi != m {
			// The terminal cell (n, m) is outside the band.
			return 0
		}
		return a.fM[last+m] + a.fX[last+m] + a.fY[last+m]
	}
	// SemiGlobal: read fully consumed, trailing genome free. Terminal
	// states are M and GX at any column (a terminal GY would be a paid
	// deletion followed by free bases — pointless, excluded).
	sum := 0.0
	for j := lo; j <= hi; j++ {
		sum += a.fM[last+j] + a.fX[last+j]
	}
	return sum
}

// backward fills the backward matrices over the band, scaled with the
// forward row scales so that posterior(i,j) = f(i,j)·b(i,j)/lScaled
// directly.
func (a *Aligner) backward(n, m int) {
	p := a.params
	w := m + 1
	lastRow := n * w
	bM, bX, bY, ps := a.bM, a.bX, a.bY, a.pstar
	lon, hin := a.rowBounds(n, m)
	// Terminal conditions on row n. Every row-n cell this pass (or the
	// posterior accessors) reads is set explicitly here, including the
	// zeros — buffers are reused across alignments.
	if a.mode == Global {
		// terminalSum already required hin == m here.
		for j := lon; j < m; j++ {
			bM[lastRow+j], bX[lastRow+j], bY[lastRow+j] = 0, 0, 0
		}
		bM[lastRow+m] = 1
		bX[lastRow+m] = 1
		bY[lastRow+m] = 1
		// Row n, right-to-left: trailing genome bases must still be
		// consumed through GY (no GX→GY transition exists, so bX
		// stays 0 left of column m).
		for j := m - 1; j >= lon; j-- {
			bY[lastRow+j] = p.TGG * p.Q * bY[lastRow+j+1]
			bM[lastRow+j] = p.TMG * p.Q * bY[lastRow+j+1]
		}
	} else {
		for j := lon; j <= hin; j++ {
			bM[lastRow+j] = 1
			bX[lastRow+j] = 1
			// GY is not a terminal state in SemiGlobal.
			bY[lastRow+j] = 0
		}
	}
	// Row-n band guards for row n-1's reads at (n, lo(n-1)..hi(n-1)+1).
	bM[lastRow+lon-1], bX[lastRow+lon-1], bY[lastRow+lon-1] = 0, 0, 0
	if hin < m {
		bM[lastRow+hin+1], bX[lastRow+hin+1], bY[lastRow+hin+1] = 0, 0, 0
	}
	for i := n - 1; i >= 1; i-- {
		lo, hi := a.rowBounds(i, m)
		cur := i * w
		next := (i + 1) * w
		invS := 1 / a.scale[i+1]
		start := hi
		if hi == m {
			// Column m has no diagonal or GY continuation.
			bxm := bX[next+m] * invS
			bM[cur+m] = p.TMG * p.Q * bxm
			bX[cur+m] = p.TGG * p.Q * bxm
			bY[cur+m] = 0
			start = m - 1
		} else {
			// Right guard: this row's GY term reads (i, hi+1), and row
			// i-1 may read it too; out-of-band means zero.
			bM[cur+hi+1], bX[cur+hi+1], bY[cur+hi+1] = 0, 0, 0
		}
		for j := start; j >= lo; j-- {
			diag := ps[next+j+1] * bM[next+j+1] * invS // through M at (i+1, j+1)
			bx := bX[next+j] * invS                    // through GX at (i+1, j)
			by := bY[cur+j+1]                          // through GY at (i, j+1), same row
			bM[cur+j] = p.TMM*diag + p.TMG*p.Q*bx + p.TMG*p.Q*by
			bX[cur+j] = p.TGM*diag + p.TGG*p.Q*bx
			bY[cur+j] = p.TGM*diag + p.TGG*p.Q*by
		}
		// Left guard for row i-1's reads at (i, lo(i-1)..).
		bM[cur+lo-1], bX[cur+lo-1], bY[cur+lo-1] = 0, 0, 0
	}
}

// PostMatch returns the posterior probability that read base i is
// aligned to window base j (both 1-based), marginalized over all
// alignments: P(x_i ◇ y_j | x, y) = f_M(i,j)·b_M(i,j)/P(x,y).
// Out-of-band cells of a banded run carry no posterior mass.
func (r *Result) PostMatch(i, j int) float64 {
	if !r.inBand(i, j) {
		return 0
	}
	idx := i*(r.M+1) + j
	return r.a.fM[idx] * r.a.bM[idx] / r.lScaled
}

// PostGapX returns the posterior probability that read base i is
// aligned to a gap between window bases j and j+1 (an insertion in the
// read): P(x_i ◇ G_j | x, y).
func (r *Result) PostGapX(i, j int) float64 {
	if !r.inBand(i, j) {
		return 0
	}
	idx := i*(r.M+1) + j
	return r.a.fX[idx] * r.a.bX[idx] / r.lScaled
}

// PostGapY returns the posterior probability that window base j is
// aligned to a gap between read bases i and i+1 (a deletion in the
// read): P(y_j ◇ G_i | x, y).
func (r *Result) PostGapY(i, j int) float64 {
	if !r.inBand(i, j) {
		return 0
	}
	idx := i*(r.M+1) + j
	return r.a.fY[idx] * r.a.bY[idx] / r.lScaled
}

// Attribution selects how posterior match mass at a genome position is
// attributed to nucleotide channels.
type Attribution int

const (
	// ByCall attributes each read position's posterior mass entirely
	// to its called base — the paper's z_kA = Σ_{i: x_i=A} P(x_i◇y_j)
	// formulation.
	ByCall Attribution = iota
	// ByPWM splits each read position's posterior mass across bases in
	// proportion to the position's quality-derived PWM row, so a
	// low-confidence call spreads its evidence.
	ByPWM
)

// Contribution computes the z-vector of this read at window position j
// (1-based): the five channel probabilities (A, C, G, T, gap) that the
// read aligns each to the position, normalized to sum to 1 when the
// position receives any mass (paper §VI Step 2). The returned total is
// the unnormalized mass, used by callers to skip untouched positions.
func (r *Result) Contribution(j int, attr Attribution) (z [dna.NumChannels]float64, total float64) {
	for i := 1; i <= r.N; i++ {
		pm := r.PostMatch(i, j)
		if pm > 0 {
			switch attr {
			case ByPWM:
				row := r.x.Row(i - 1)
				for k := 0; k < dna.NumBases; k++ {
					z[k] += pm * row[k]
				}
			default:
				call := r.x.Call(i - 1)
				if call.IsConcrete() {
					z[call] += pm
				} else {
					for k := 0; k < dna.NumBases; k++ {
						z[k] += pm / dna.NumBases
					}
				}
			}
		}
		// A read-gap (GY) at (i, j) aligns window base j to a gap.
		z[dna.ChGap] += r.PostGapY(i, j)
	}
	for k := range z {
		total += z[k]
	}
	if total > 1e-12 {
		inv := 1 / total
		for k := range z {
			z[k] *= inv
		}
	} else {
		z = [dna.NumChannels]float64{}
	}
	return z, total
}

// ContributionsInto fills dst[j-1] with the normalized z-vector for
// every window position j and totals[j-1] with its unnormalized mass —
// equivalent to calling Contribution for every j but in one row-major
// sweep over the in-band posterior cells (the mapper's hot path). dst
// and totals must have length M.
func (r *Result) ContributionsInto(attr Attribution, dst [][dna.NumChannels]float64, totals []float64) error {
	if len(dst) != r.M || len(totals) != r.M {
		return fmt.Errorf("phmm: ContributionsInto needs length %d, got %d/%d", r.M, len(dst), len(totals))
	}
	for j := range dst {
		dst[j] = [dna.NumChannels]float64{}
	}
	w := r.M + 1
	inv := 1 / r.lScaled
	fM, bM, fY, bY := r.a.fM, r.a.bM, r.a.fY, r.a.bY
	for i := 1; i <= r.N; i++ {
		lo, hi := r.rowBounds(i)
		base := i * w
		var row [dna.NumBases]float64
		var call dna.Code
		if attr == ByPWM {
			row = r.x.Row(i - 1)
		} else {
			call = r.x.Call(i - 1)
		}
		for j := lo; j <= hi; j++ {
			pm := fM[base+j] * bM[base+j] * inv
			if pm > 0 {
				z := &dst[j-1]
				if attr == ByPWM {
					for k := 0; k < dna.NumBases; k++ {
						z[k] += pm * row[k]
					}
				} else if call.IsConcrete() {
					z[call] += pm
				} else {
					for k := 0; k < dna.NumBases; k++ {
						z[k] += pm / dna.NumBases
					}
				}
			}
			if gy := fY[base+j] * bY[base+j]; gy > 0 {
				dst[j-1][dna.ChGap] += gy * inv
			}
		}
	}
	for j := range dst {
		total := 0.0
		for _, v := range dst[j] {
			total += v
		}
		totals[j] = total
		if total > 1e-12 {
			invT := 1 / total
			for k := range dst[j] {
				dst[j][k] *= invT
			}
		} else {
			dst[j] = [dna.NumChannels]float64{}
		}
	}
	return nil
}
