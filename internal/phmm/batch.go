package phmm

import (
	"fmt"
	"math"

	"gnumap/internal/dna"
	"gnumap/internal/pwm"
)

// BatchAligner is the wavefront-batched forward-backward kernel: it
// evaluates many same-shape (read, window) pairs — lanes — in one
// sweep. DP state is laid out struct-of-arrays and lane-striped (cell
// (i, j) of lane l lives at ((i·(m+1))+j)·lanes + l), so the inner loop
// of every anti-diagonal step is one contiguous, branch-free pass over
// all lanes of the batch: each step advances every lane's recurrence by
// one cell, interleaving the lanes' serial GY/rescale dependency chains
// into independent work the CPU can overlap.
//
// Per-lane arithmetic is kept expression-for-expression identical to
// the scalar kernel in align.go (same operand order, same
// parenthesization, same per-row rescaling and summation order), so a
// batched lane's scores, scale factors, and posteriors are bit-identical
// to a scalar AlignBanded call on the same pair — the PR 1 exactness
// harness gates this. One BatchAligner per goroutine; results are views
// into its buffers and are invalidated by the next AlignBatch call.
type BatchAligner struct {
	params Params
	mode   Mode
	mean   [dna.NumBases]float64

	// Lane-striped DP planes, indexed ((i*(m+1))+j)*lanes + l. Only the
	// cells each pass writes are (re-)initialized, with one guard cell
	// zeroed on each side of a row's band — exactly the scalar kernel's
	// reuse discipline, replicated per lane.
	fM, fX, fY []float64
	bM, bX, bY []float64
	pstar      []float64
	// scale[i*lanes+l] is lane l's forward scaling factor of row i.
	scale []float64

	// Per-lane scratch (length = lanes of the current batch).
	rowSum, inv, lScaled []float64
	// dead marks lanes with no in-band alignment of non-zero
	// probability; their rows are zeroed (inv = 0) so the sweep stays
	// branch-free while the lane's state can never leak across lanes.
	dead []bool

	// Geometry of the current batch.
	lanes        int
	n, m         int
	banded       bool
	diag, radius int

	// cells accumulates DP cells computed (band geometry × lanes, the
	// same accounting as Aligner.cells) across the aligner's lifetime.
	cells int64

	// Reusable per-call views of the batch inputs and outputs.
	xs      []*pwm.Matrix
	ys      []dna.Seq
	results []BatchResult
}

// NewBatchAligner returns a BatchAligner with validated parameters.
func NewBatchAligner(p Params, mode Mode) (*BatchAligner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mode != Global && mode != SemiGlobal {
		return nil, fmt.Errorf("phmm: unknown mode %d", int(mode))
	}
	return &BatchAligner{params: p, mode: mode, mean: p.meanMatch()}, nil
}

// Params returns the aligner's parameter set.
func (b *BatchAligner) Params() Params { return b.params }

// Mode returns the aligner's boundary-condition mode.
func (b *BatchAligner) Mode() Mode { return b.mode }

// CellsComputed returns the cumulative DP cells this aligner has
// computed across all AlignBatch calls: every lane of a batch counts
// its full band geometry, matching what the same alignments would have
// added to Aligner.CellsComputed one call at a time.
func (b *BatchAligner) CellsComputed() int64 { return b.cells }

// BatchResult is one lane's completed alignment: a view into the
// BatchAligner's striped buffers, valid until the next AlignBatch call.
type BatchResult struct {
	b    *BatchAligner
	lane int
	// N is the read length, M the window length (shared by the batch).
	N, M int
	// Err is ErrNoAlignment for lanes whose pair admits no in-band
	// alignment of non-zero probability; all other fields of such a
	// lane are meaningless. Call-level failures (shape mismatches)
	// surface as AlignBatch errors instead.
	Err error
	// LogLik is the natural-log total alignment likelihood of the lane.
	LogLik float64
	// lScaled is the terminal sum in scaled space; posteriors divide
	// by it.
	lScaled float64
	x       *pwm.Matrix
	y       dna.Seq
	// band geometry snapshot (shared by the batch).
	banded       bool
	diag, radius int
}

// AlignBatch runs the scaled forward and backward wavefront sweeps for
// every lane (xs[l], ys[l]) under one shared band geometry and returns
// per-lane posterior views. All lanes must share the read length,
// window length, diag, and band — the shape key the engine bins
// candidate windows by; a mismatch is an error. The returned slice is
// reused by the next AlignBatch call.
func (b *BatchAligner) AlignBatch(xs []*pwm.Matrix, ys []dna.Seq, diag, band int) ([]BatchResult, error) {
	L := len(xs)
	if L == 0 || len(ys) != L {
		return nil, fmt.Errorf("phmm: batch of %d reads vs %d windows", L, len(ys))
	}
	n, m := xs[0].Len(), len(ys[0])
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("phmm: empty read (%d) or window (%d)", n, m)
	}
	for l := 1; l < L; l++ {
		if xs[l].Len() != n || len(ys[l]) != m {
			return nil, fmt.Errorf("phmm: batch lane %d shape (%d,%d), want (%d,%d)",
				l, xs[l].Len(), len(ys[l]), n, m)
		}
	}
	b.lanes = L
	b.n, b.m = n, m
	b.banded = band > 0
	b.diag = diag
	b.radius = band / 2
	b.cells += int64(L) * int64(BandCells(n, m, diag, band))
	b.resize(n, m, L)
	b.xs = append(b.xs[:0], xs...)
	b.ys = append(b.ys[:0], ys...)

	results := b.results[:0]
	for l := 0; l < L; l++ {
		results = append(results, BatchResult{
			b: b, lane: l, N: n, M: m, x: xs[l], y: ys[l],
			banded: b.banded, diag: diag, radius: b.radius,
		})
	}
	b.results = results

	b.fillEmissions(n, m)
	b.forward(n, m)
	b.terminalSums(n, m)
	anyLive := false
	for l := 0; l < L; l++ {
		if b.dead[l] {
			results[l].Err = ErrNoAlignment
		} else {
			anyLive = true
		}
	}
	if !anyLive {
		return results, nil
	}
	b.backward(n, m)
	for l := 0; l < L; l++ {
		if b.dead[l] {
			continue
		}
		logLik := math.Log(b.lScaled[l])
		for i := 1; i <= n; i++ {
			logLik += math.Log(b.scale[i*L+l])
		}
		results[l].LogLik = logLik
		results[l].lScaled = b.lScaled[l]
	}
	return results, nil
}

// resize grows the striped buffers to (n+1)×(m+1)×L without clearing
// them; the passes initialize exactly the cells they depend on.
func (b *BatchAligner) resize(n, m, L int) {
	need := (n + 1) * (m + 1) * L
	if cap(b.fM) < need {
		b.fM = make([]float64, need)
		b.fX = make([]float64, need)
		b.fY = make([]float64, need)
		b.bM = make([]float64, need)
		b.bX = make([]float64, need)
		b.bY = make([]float64, need)
		b.pstar = make([]float64, need)
	}
	b.fM = b.fM[:need]
	b.fX = b.fX[:need]
	b.fY = b.fY[:need]
	b.bM = b.bM[:need]
	b.bX = b.bX[:need]
	b.bY = b.bY[:need]
	b.pstar = b.pstar[:need]
	if cap(b.scale) < (n+1)*L {
		b.scale = make([]float64, (n+1)*L)
	}
	b.scale = b.scale[:(n+1)*L]
	if cap(b.rowSum) < L {
		b.rowSum = make([]float64, L)
		b.inv = make([]float64, L)
		b.lScaled = make([]float64, L)
		b.dead = make([]bool, L)
	}
	b.rowSum = b.rowSum[:L]
	b.inv = b.inv[:L]
	b.lScaled = b.lScaled[:L]
	b.dead = b.dead[:L]
	if cap(b.results) < L {
		b.results = make([]BatchResult, 0, L)
	}
}

// fillEmissions computes each lane's p*(i,j) for every in-band cell —
// the scalar fillEmissions expression per lane, written lane-major so
// each lane's PWM row is fetched once per DP row.
func (b *BatchAligner) fillEmissions(n, m int) {
	w := m + 1
	L := b.lanes
	ps := b.pstar
	// Row-outer so each sweep stays inside one row's striped region
	// ((hi-lo+1)·L cells), which fits L1 even for wide bands; a
	// lane-outer walk of the whole plane would touch one cache line per
	// cell, L times over. Per (row, lane), the emission can only take
	// one value per genome base, so the dot products are hoisted into a
	// 5-entry table (A, C, G, T, ambiguous) — the same expressions the
	// scalar kernel evaluates per cell, computed once and looked up.
	for i := 1; i <= n; i++ {
		lo, hi := bandRowBounds(i, m, b.diag, b.radius, b.banded)
		if lo > hi {
			continue
		}
		for l := 0; l < L; l++ {
			x, y := b.xs[l], b.ys[l]
			row := x.Row(i - 1) // PWM is 0-based
			var e [dna.NumBases + 1]float64
			for v := 0; v < dna.NumBases; v++ {
				mr := &b.params.Match[v]
				e[v] = row[dna.A]*mr[dna.A] + row[dna.C]*mr[dna.C] + row[dna.G]*mr[dna.G] + row[dna.T]*mr[dna.T]
			}
			e[dna.NumBases] = row[dna.A]*b.mean[dna.A] + row[dna.C]*b.mean[dna.C] + row[dna.G]*b.mean[dna.G] + row[dna.T]*b.mean[dna.T]
			base := i*w*L + l
			ys := y[lo-1 : hi]
			for o, yj := range ys {
				idx := int(yj)
				if idx >= dna.NumBases {
					idx = dna.NumBases // any non-concrete code
				}
				ps[base+(lo+o)*L] = e[idx]
			}
		}
	}
}

// zeroLanes zeroes one striped cell (all lanes) of the three planes.
func zeroLanes(pM, pX, pY []float64, at, L int) {
	clear(pM[at : at+L])
	clear(pX[at : at+L])
	clear(pY[at : at+L])
}

// forward fills the scaled forward planes and b.scale over the band,
// sweeping rows and advancing all lanes one cell per step. Lanes whose
// row sum hits zero are marked dead and their rows zeroed (inv = 0), so
// the remaining sweep needs no per-cell liveness branches.
func (b *BatchAligner) forward(n, m int) {
	p := b.params
	L := b.lanes
	w := m + 1
	fM, fX, fY, ps := b.fM, b.fX, b.fY, b.pstar
	for l := 0; l < L; l++ {
		b.scale[l] = 1
		b.dead[l] = false
	}
	// Initialize the row-0 border cells row 1 reads: columns
	// [lo(1)-1, hi(1)] (the recursion reads (0, j-1) and (0, j)).
	lo1, hi1 := bandRowBounds(1, m, b.diag, b.radius, b.banded)
	for j := lo1 - 1; j <= hi1; j++ {
		zeroLanes(fM, fX, fY, j*L, L)
	}
	if b.mode == Global {
		for l := 0; l < L; l++ {
			fM[l] = 1 // virtual begin at (0,0)
		}
	}
	entry := 0.0
	if b.mode == SemiGlobal {
		// Free entry: the first read base may match any window
		// position with unit prior weight.
		entry = 1
	}
	rs := b.rowSum
	useAsm := batchAVX2 && L == simdLanes
	var a fwdRow8
	if useAsm {
		a.rs = &rs[0]
		a.tmm, a.tgm, a.tmg, a.tgg, a.q = p.TMM, p.TGM, p.TMG, p.TGG, p.Q
	}
	for i := 1; i <= n; i++ {
		lo, hi := bandRowBounds(i, m, b.diag, b.radius, b.banded)
		if lo > hi {
			// The band slid off the DP rectangle: no admissible path
			// for any lane (geometry is shared).
			for l := 0; l < L; l++ {
				b.dead[l] = true
			}
			return
		}
		prev := (i - 1) * w
		cur := i * w
		// Left guard (see the scalar kernel for the reads it covers).
		zeroLanes(fM, fX, fY, (cur+lo-1)*L, L)
		rowEntry := 0.0
		if i == 1 {
			rowEntry = entry
		}
		for l := range rs {
			rs[l] = 0
		}
		if useAsm {
			// Vectorized row sweep: same expression tree, 4-wide.
			a.outM, a.outX, a.outY = &fM[(cur+lo)*L], &fX[(cur+lo)*L], &fY[(cur+lo)*L]
			a.ps = &ps[(cur+lo)*L]
			a.prevM, a.prevX, a.prevY = &fM[(prev+lo)*L], &fX[(prev+lo)*L], &fY[(prev+lo)*L]
			a.steps = int64(hi - lo + 1)
			a.rowEntry = rowEntry
			forwardRowAVX2(&a)
			b.finishForwardRow(i, lo, hi, cur)
			continue
		}
		for j := lo; j <= hi; j++ {
			c := (cur + j) * L
			// Slice every operand stream to the output's length so the
			// lane loop compiles without bounds checks.
			outM := fM[c : c+L : c+L]
			outX := fX[c : c+L : c+L]
			outY := fY[c : c+L : c+L]
			psc := ps[c : c+L]
			pd := (prev + j - 1) * L
			fMpd := fM[pd : pd+L]
			fXpd := fX[pd : pd+L]
			fYpd := fY[pd : pd+L]
			pu := (prev + j) * L
			fMpu := fM[pu : pu+L]
			fXpu := fX[pu : pu+L]
			lf := (cur + j - 1) * L
			fMlf := fM[lf : lf+L]
			fYlf := fY[lf : lf+L]
			sum := rs[:L]
			_ = psc[L-1]
			_ = fMpd[L-1]
			_ = fXpd[L-1]
			_ = fYpd[L-1]
			_ = fMpu[L-1]
			_ = fXpu[L-1]
			_ = fMlf[L-1]
			_ = fYlf[L-1]
			_ = sum[L-1]
			for l := range outM {
				// Match: all predecessors at (i-1, j-1).
				mm := p.TMM*fMpd[l] + p.TGM*(fXpd[l]+fYpd[l]) + rowEntry
				fm := psc[l] * mm
				// GX consumes a read base: predecessors at (i-1, j).
				fx := p.Q * (p.TMG*fMpu[l] + p.TGG*fXpu[l])
				// GY consumes a genome base: predecessors at (i, j-1),
				// within the current row (the previous wavefront step).
				fy := p.Q * (p.TMG*fMlf[l] + p.TGG*fYlf[l])
				outM[l] = fm
				outX[l] = fx
				outY[l] = fy
				sum[l] += fm + fx + fy
			}
		}
		b.finishForwardRow(i, lo, hi, cur)
	}
}

// finishForwardRow turns the row sums into scale factors (marking
// dead lanes), rescales the row's three planes, and zeroes the right
// band guard for row i+1 — the tail of one forward row, shared by the
// generic and vectorized sweeps.
func (b *BatchAligner) finishForwardRow(i, lo, hi, cur int) {
	L := b.lanes
	fM, fX, fY := b.fM, b.fX, b.fY
	rs, inv := b.rowSum, b.inv
	scaleRow := b.scale[i*L : i*L+L]
	for l := 0; l < L; l++ {
		if b.dead[l] || rs[l] <= 0 {
			// Zero the lane's row via inv = 0: every later row of
			// the lane then sums to zero too, keeping it dead
			// without any branch in the sweep itself.
			b.dead[l] = true
			scaleRow[l] = 1
			inv[l] = 0
			continue
		}
		scaleRow[l] = rs[l]
		inv[l] = 1 / rs[l]
	}
	if batchAVX2 && L == simdLanes {
		a := scaleRow8{
			pM: &fM[(cur+lo)*L], pX: &fX[(cur+lo)*L], pY: &fY[(cur+lo)*L],
			inv:   &inv[0],
			steps: int64(hi - lo + 1),
		}
		scaleRowAVX2(&a)
	} else {
		for j := lo; j <= hi; j++ {
			c := (cur + j) * L
			outM := fM[c : c+L : c+L]
			outX := fX[c : c+L : c+L]
			outY := fY[c : c+L : c+L]
			iv := inv[:L]
			_ = iv[L-1]
			for l := range outM {
				outM[l] *= iv[l]
				outX[l] *= iv[l]
				outY[l] *= iv[l]
			}
		}
	}
	// Right guard: row i+1's band may extend one column past hi.
	if hi < b.m {
		zeroLanes(fM, fX, fY, (cur+hi+1)*L, L)
	}
}

// terminalSums computes each live lane's scaled-space total likelihood
// (the scalar terminalSum, per lane) and marks zero-likelihood lanes
// dead.
func (b *BatchAligner) terminalSums(n, m int) {
	w := m + 1
	L := b.lanes
	last := n * w
	lo, hi := bandRowBounds(n, m, b.diag, b.radius, b.banded)
	if b.mode == Global {
		if hi != m {
			// The terminal cell (n, m) is outside the band: the whole
			// batch shares the geometry, so every lane is dead.
			for l := 0; l < L; l++ {
				b.dead[l] = true
			}
			return
		}
		c := (last + m) * L
		for l := 0; l < L; l++ {
			b.lScaled[l] = b.fM[c+l] + b.fX[c+l] + b.fY[c+l]
		}
	} else {
		// SemiGlobal: read fully consumed, trailing genome free.
		for l := 0; l < L; l++ {
			b.lScaled[l] = 0
		}
		for j := lo; j <= hi; j++ {
			c := (last + j) * L
			for l := 0; l < L; l++ {
				b.lScaled[l] += b.fM[c+l] + b.fX[c+l]
			}
		}
	}
	for l := 0; l < L; l++ {
		if b.lScaled[l] <= 0 {
			b.dead[l] = true
		}
	}
}

// backward fills the backward planes over the band, scaled with each
// lane's forward row scales — the scalar backward pass swept across all
// lanes per step. Dead lanes carry zeros (forward-dead) or unused
// finite values (terminal-dead); either way their state stays
// lane-local and is never exposed through a live result.
func (b *BatchAligner) backward(n, m int) {
	p := b.params
	L := b.lanes
	w := m + 1
	lastRow := n * w
	bM, bX, bY, ps := b.bM, b.bX, b.bY, b.pstar
	lon, hin := bandRowBounds(n, m, b.diag, b.radius, b.banded)
	// Terminal conditions on row n, exactly as in the scalar kernel.
	if b.mode == Global {
		// terminalSums already required hin == m here.
		for j := lon; j < m; j++ {
			zeroLanes(bM, bX, bY, (lastRow+j)*L, L)
		}
		c := (lastRow + m) * L
		for l := 0; l < L; l++ {
			bM[c+l] = 1
			bX[c+l] = 1
			bY[c+l] = 1
		}
		// Row n, right-to-left: trailing genome bases must still be
		// consumed through GY.
		for j := m - 1; j >= lon; j-- {
			at := (lastRow + j) * L
			nx := (lastRow + j + 1) * L
			outY := bY[at : at+L : at+L]
			outM := bM[at : at+L : at+L]
			bYnx := bY[nx : nx+L]
			_ = bYnx[L-1]
			for l := range outY {
				outY[l] = p.TGG * p.Q * bYnx[l]
				outM[l] = p.TMG * p.Q * bYnx[l]
			}
		}
	} else {
		for j := lon; j <= hin; j++ {
			c := (lastRow + j) * L
			for l := 0; l < L; l++ {
				bM[c+l] = 1
				bX[c+l] = 1
				// GY is not a terminal state in SemiGlobal.
				bY[c+l] = 0
			}
		}
	}
	// Row-n band guards for row n-1's reads.
	zeroLanes(bM, bX, bY, (lastRow+lon-1)*L, L)
	if hin < m {
		zeroLanes(bM, bX, bY, (lastRow+hin+1)*L, L)
	}
	iv := b.inv
	// tmgq and tggq match the scalar kernel's inline p.TMG*p.Q and
	// p.TGG*p.Q exactly: * is left-associative, so hoisting the first
	// product changes no rounding.
	tmgq := p.TMG * p.Q
	tggq := p.TGG * p.Q
	useAsm := batchAVX2 && L == simdLanes
	var a bwdRow8
	if useAsm {
		a.iv = &iv[0]
		a.tmm, a.tgm, a.tmgq, a.tggq = p.TMM, p.TGM, tmgq, tggq
	}
	for i := n - 1; i >= 1; i-- {
		lo, hi := bandRowBounds(i, m, b.diag, b.radius, b.banded)
		cur := i * w
		next := (i + 1) * w
		scaleNext := b.scale[(i+1)*L : (i+1)*L+L]
		for l := 0; l < L; l++ {
			iv[l] = 1 / scaleNext[l]
		}
		start := hi
		if hi == m {
			// Column m has no diagonal or GY continuation.
			cm := (cur + m) * L
			nm := (next + m) * L
			outM := bM[cm : cm+L : cm+L]
			outX := bX[cm : cm+L : cm+L]
			outY := bY[cm : cm+L : cm+L]
			bXnm := bX[nm : nm+L]
			ivs := iv[:L]
			_ = bXnm[L-1]
			_ = ivs[L-1]
			for l := range outM {
				bxm := bXnm[l] * ivs[l]
				outM[l] = p.TMG * p.Q * bxm
				outX[l] = p.TGG * p.Q * bxm
				outY[l] = 0
			}
			start = m - 1
		} else {
			// Right guard: the GY term reads (i, hi+1), and row i-1 may
			// read it too; out-of-band means zero.
			zeroLanes(bM, bX, bY, (cur+hi+1)*L, L)
		}
		if useAsm && start >= lo {
			a.outM, a.outX, a.outY = &bM[(cur+start)*L], &bX[(cur+start)*L], &bY[(cur+start)*L]
			a.nextM, a.nextX = &bM[(next+start)*L], &bX[(next+start)*L]
			a.ps = &ps[(next+start)*L]
			a.steps = int64(start - lo + 1)
			backwardRowAVX2(&a)
		} else {
			for j := start; j >= lo; j-- {
				c := (cur + j) * L
				outM := bM[c : c+L : c+L]
				outX := bX[c : c+L : c+L]
				outY := bY[c : c+L : c+L]
				nd := (next + j + 1) * L
				psnd := ps[nd : nd+L]
				bMnd := bM[nd : nd+L]
				nu := (next + j) * L
				bXnu := bX[nu : nu+L]
				rt := (cur + j + 1) * L
				bYrt := bY[rt : rt+L]
				ivs := iv[:L]
				_ = psnd[L-1]
				_ = bMnd[L-1]
				_ = bXnu[L-1]
				_ = bYrt[L-1]
				_ = ivs[L-1]
				for l := range outM {
					diag := psnd[l] * bMnd[l] * ivs[l] // through M at (i+1, j+1)
					bx := bXnu[l] * ivs[l]             // through GX at (i+1, j)
					by := bYrt[l]                      // through GY at (i, j+1), same row
					outM[l] = p.TMM*diag + tmgq*bx + tmgq*by
					outX[l] = p.TGM*diag + tggq*bx
					outY[l] = p.TGM*diag + tggq*by
				}
			}
		}
		// Left guard for row i-1's reads.
		zeroLanes(bM, bX, bY, (cur+lo-1)*L, L)
	}
}

// idx returns the striped flat index of the lane's cell (i, j).
func (r *BatchResult) idx(i, j int) int {
	return (i*(r.M+1)+j)*r.b.lanes + r.lane
}

// rowBounds is bandRowBounds under the result's geometry.
func (r *BatchResult) rowBounds(i int) (lo, hi int) {
	return bandRowBounds(i, r.M, r.diag, r.radius, r.banded)
}

// inBand reports whether cell (i, j) was computed by the run.
func (r *BatchResult) inBand(i, j int) bool {
	lo, hi := r.rowBounds(i)
	return j >= lo && j <= hi
}

// PostMatch returns the posterior probability that read base i is
// aligned to window base j (both 1-based) — see Result.PostMatch.
func (r *BatchResult) PostMatch(i, j int) float64 {
	if !r.inBand(i, j) {
		return 0
	}
	at := r.idx(i, j)
	return r.b.fM[at] * r.b.bM[at] / r.lScaled
}

// PostGapX returns the posterior probability that read base i is
// aligned to a gap (an insertion in the read) — see Result.PostGapX.
func (r *BatchResult) PostGapX(i, j int) float64 {
	if !r.inBand(i, j) {
		return 0
	}
	at := r.idx(i, j)
	return r.b.fX[at] * r.b.bX[at] / r.lScaled
}

// PostGapY returns the posterior probability that window base j is
// aligned to a gap (a deletion in the read) — see Result.PostGapY.
func (r *BatchResult) PostGapY(i, j int) float64 {
	if !r.inBand(i, j) {
		return 0
	}
	at := r.idx(i, j)
	return r.b.fY[at] * r.b.bY[at] / r.lScaled
}

// ContributionsInto fills dst[j-1] with the normalized z-vector for
// every window position j and totals[j-1] with its unnormalized mass —
// Result.ContributionsInto over the lane's striped posterior cells,
// with the same row-major accumulation order so the output is
// bit-identical to the scalar path's.
func (r *BatchResult) ContributionsInto(attr Attribution, dst [][dna.NumChannels]float64, totals []float64) error {
	if r.Err != nil {
		return r.Err
	}
	if len(dst) != r.M || len(totals) != r.M {
		return fmt.Errorf("phmm: ContributionsInto needs length %d, got %d/%d", r.M, len(dst), len(totals))
	}
	for j := range dst {
		dst[j] = [dna.NumChannels]float64{}
	}
	w := r.M + 1
	L := r.b.lanes
	inv := 1 / r.lScaled
	fM, bM, fY, bY := r.b.fM, r.b.bM, r.b.fY, r.b.bY
	for i := 1; i <= r.N; i++ {
		lo, hi := r.rowBounds(i)
		base := i*w*L + r.lane
		var row [dna.NumBases]float64
		var call dna.Code
		if attr == ByPWM {
			row = r.x.Row(i - 1)
		} else {
			call = r.x.Call(i - 1)
		}
		for j := lo; j <= hi; j++ {
			at := base + j*L
			pm := fM[at] * bM[at] * inv
			if pm > 0 {
				z := &dst[j-1]
				if attr == ByPWM {
					for k := 0; k < dna.NumBases; k++ {
						z[k] += pm * row[k]
					}
				} else if call.IsConcrete() {
					z[call] += pm
				} else {
					for k := 0; k < dna.NumBases; k++ {
						z[k] += pm / dna.NumBases
					}
				}
			}
			if gy := fY[at] * bY[at]; gy > 0 {
				dst[j-1][dna.ChGap] += gy * inv
			}
		}
	}
	for j := range dst {
		total := 0.0
		for _, v := range dst[j] {
			total += v
		}
		totals[j] = total
		if total > 1e-12 {
			invT := 1 / total
			for k := range dst[j] {
				dst[j][k] *= invT
			}
		} else {
			dst[j] = [dna.NumChannels]float64{}
		}
	}
	return nil
}
