package baseline

import (
	"math"
	"sync"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/snp"
)

// The paper's second comparator, SOAPsnp (Li et al. 2009), is a
// Bayesian consensus caller over a quality-aware pileup: each diploid
// genotype G receives a likelihood from the observed bases and their
// Phred error probabilities, a prior biased heavily toward the
// homozygous-reference genotype, and a call is emitted when the MAP
// genotype differs from reference with sufficient posterior odds.
// (The paper "made an attempt to use SOAPsnp but were unable to produce
// any SNPs under several model conditions" — reproducing that anecdote
// is neither possible nor useful, so this implements the published
// model, giving the repository a second working comparator.)
//
// Per-position sufficient statistics (the likelihoods factorize):
//
//	n_b            count of observed base b
//	S1_b = Σ log(1 - e_i)        over reads with base b
//	S2_b = Σ log(e_i)            over reads with base b
//	S3_b = Σ log(1 - 2e_i/3)     over reads with base b
//
// giving, for genotypes with alleles g (hom) or g1,g2 (het):
//
//	logL(hom g)     = S1_g + Σ_{b≠g}(S2_b - n_b·log 3)
//	logL(het g1,g2) = Σ_{b∈{g1,g2}}(S3_b - n_b·log 2) + Σ_{b∉}(S2_b - n_b·log 3)

// bayesPileup accumulates the sufficient statistics.
type bayesPileup struct {
	length int
	n      []int32   // length·4
	s1     []float64 // length·4
	s2     []float64
	s3     []float64
	locks  []sync.Mutex
}

const bayesStripeShift = 12

func newBayesPileup(length int) *bayesPileup {
	return &bayesPileup{
		length: length,
		n:      make([]int32, length*dna.NumBases),
		s1:     make([]float64, length*dna.NumBases),
		s2:     make([]float64, length*dna.NumBases),
		s3:     make([]float64, length*dna.NumBases),
		locks:  make([]sync.Mutex, (length>>bayesStripeShift)+1),
	}
}

// add records one observed base with error probability e at pos.
func (bp *bayesPileup) add(pos int, b dna.Code, e float64) {
	if pos < 0 || pos >= bp.length || !b.IsConcrete() {
		return
	}
	if e < 1e-6 {
		e = 1e-6 // a quality can never promise perfection
	}
	if e > 0.75 {
		e = 0.75
	}
	idx := pos*dna.NumBases + int(b)
	lock := &bp.locks[pos>>bayesStripeShift]
	lock.Lock()
	bp.n[idx]++
	bp.s1[idx] += math.Log(1 - e)
	bp.s2[idx] += math.Log(e)
	bp.s3[idx] += math.Log(1 - 2*e/3)
	lock.Unlock()
}

// SoapConfig tunes the Bayesian caller.
type SoapConfig struct {
	// HetPrior is the prior probability of a heterozygous site
	// (default 1e-3, SOAPsnp's default for novel SNPs).
	HetPrior float64
	// HomPrior is the prior probability of a homozygous non-reference
	// site (default 5e-4).
	HomPrior float64
	// MinQuality is the minimum Phred-scaled posterior for a call
	// (default 20, i.e. 99% genotype confidence).
	MinQuality float64
	// MinDepth is the minimum pileup depth (default 3).
	MinDepth int
}

func (c SoapConfig) withDefaults() SoapConfig {
	if c.HetPrior == 0 {
		c.HetPrior = 1e-3
	}
	if c.HomPrior == 0 {
		c.HomPrior = 5e-4
	}
	if c.MinQuality == 0 {
		c.MinQuality = 20
	}
	if c.MinDepth == 0 {
		c.MinDepth = 3
	}
	return c
}

// genotype is an unordered diploid allele pair (a <= b).
type genotype struct{ a, b dna.Code }

// genotypes enumerates the ten diploid genotypes.
var genotypes = func() []genotype {
	var gs []genotype
	for a := dna.Code(0); a < dna.NumBases; a++ {
		for b := a; b < dna.NumBases; b++ {
			gs = append(gs, genotype{a, b})
		}
	}
	return gs
}()

// call runs the MAP genotype decision at one position.
func (bp *bayesPileup) call(pos int, refBase dna.Code, cfg SoapConfig) (best genotype, phred float64, depth int, ok bool) {
	base := pos * dna.NumBases
	var n [dna.NumBases]int32
	var s1, s2, s3 [dna.NumBases]float64
	lock := &bp.locks[pos>>bayesStripeShift]
	lock.Lock()
	for k := 0; k < dna.NumBases; k++ {
		n[k] = bp.n[base+k]
		s1[k] = bp.s1[base+k]
		s2[k] = bp.s2[base+k]
		s3[k] = bp.s3[base+k]
		depth += int(n[k])
	}
	lock.Unlock()
	if depth < cfg.MinDepth || !refBase.IsConcrete() {
		return genotype{}, 0, depth, false
	}
	log3 := math.Log(3)
	log2 := math.Log(2)
	// Mismatch term for "every base not in the genotype".
	mismatch := func(in [dna.NumBases]bool) float64 {
		t := 0.0
		for k := 0; k < dna.NumBases; k++ {
			if !in[k] {
				t += s2[k] - float64(n[k])*log3
			}
		}
		return t
	}
	logPost := make([]float64, len(genotypes))
	for gi, g := range genotypes {
		var in [dna.NumBases]bool
		in[g.a], in[g.b] = true, true
		var ll float64
		if g.a == g.b {
			ll = s1[g.a] + mismatch(in)
		} else {
			ll = s3[g.a] - float64(n[g.a])*log2 +
				s3[g.b] - float64(n[g.b])*log2 +
				mismatch(in)
		}
		// Prior.
		var prior float64
		switch {
		case g.a == refBase && g.b == refBase:
			prior = 1 - 1.5*cfg.HetPrior - 3*cfg.HomPrior
		case g.a == g.b:
			prior = cfg.HomPrior
		case g.a == refBase || g.b == refBase:
			prior = cfg.HetPrior
		default:
			// Het of two non-reference alleles: doubly unlikely.
			prior = cfg.HetPrior * cfg.HomPrior
		}
		logPost[gi] = ll + math.Log(prior)
	}
	// Normalize with log-sum-exp; find the MAP genotype.
	maxLP, bestIdx := math.Inf(-1), 0
	for gi, lp := range logPost {
		if lp > maxLP {
			maxLP, bestIdx = lp, gi
		}
	}
	sum := 0.0
	for _, lp := range logPost {
		sum += math.Exp(lp - maxLP)
	}
	post := 1 / sum // posterior of the MAP genotype
	if post >= 1 {
		phred = 99
	} else {
		phred = -10 * math.Log10(1-post)
	}
	return genotypes[bestIdx], phred, depth, true
}

// callSoap scans the Bayesian pileup and emits SNP calls.
func callSoap(ref *genome.Reference, bp *bayesPileup, cfg SoapConfig) []snp.Call {
	cfg = cfg.withDefaults()
	var calls []snp.Call
	g := ref.Seq()
	for pos := 0; pos < ref.Len(); pos++ {
		refBase := g[pos]
		gt, phred, depth, ok := bp.call(pos, refBase, cfg)
		if !ok || phred < cfg.MinQuality {
			continue
		}
		if gt.a == refBase && gt.b == refBase {
			continue // confident reference genotype
		}
		contig, local, err := ref.Locate(pos)
		if err != nil {
			continue
		}
		call := snp.Call{
			Contig:    contig,
			Pos:       local,
			GlobalPos: pos,
			Ref:       refBase,
			Allele:    dna.Channel(gt.a),
			Allele2:   dna.Channel(gt.b),
			Het:       gt.a != gt.b,
			Stat:      phred,
			PValue:    math.Pow(10, -phred/10),
			Depth:     float64(depth),
		}
		if gt.a != gt.b {
			// Order alleles so Allele is the one matching reference
			// when present (AltAllele then reports the variant).
			if dna.Code(call.Allele2) == refBase {
				call.Allele, call.Allele2 = call.Allele2, call.Allele
			}
		}
		calls = append(calls, call)
	}
	return calls
}
