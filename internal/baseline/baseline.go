// Package baseline implements a MAQ-like read mapper and SNP caller —
// the comparison system of the paper's Table I. MAQ itself (Li, Ruan &
// Durbin 2008) is an external C program; this package reproduces its
// algorithmic skeleton so the paper's behavioural contrasts can be
// measured:
//
//   - seeded, *ungapped* alignment scored by the sum of Phred qualities
//     at mismatching bases (lower is better);
//   - each read is assigned to its single best location; ties are
//     broken uniformly at random (the multi-mapping policy the paper
//     criticizes);
//   - a mapping quality derived from the gap between the best and
//     second-best hits, with low-mapping-quality reads discarded;
//   - consensus/SNP calling on a quality-sum pileup with fixed ("ad
//     hoc") cutoffs, with no background-noise comparison.
//
// The contrast with the GNUMAP-SNP engine is the paper's point: hard
// assignment and hard cutoffs versus marginalized alignments and a
// background-aware likelihood ratio test.
package baseline

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/kmer"
	"gnumap/internal/snp"
)

// Config tunes the baseline pipeline. Zero values select MAQ-flavoured
// defaults.
type Config struct {
	// K is the seed k-mer length (default kmer.DefaultK).
	K int
	// MaxMismatches rejects alignments with more mismatching bases
	// (default 5 — MAQ's 2-in-seed plus tolerance for 62 bp reads).
	MaxMismatches int
	// MapQThreshold discards reads whose mapping quality is below this
	// (default 10).
	MapQThreshold int
	// MinDepth is the minimum pileup depth to call a base (default 3).
	MinDepth int
	// MinQualSum is the minimum winning-base quality sum to call a SNP
	// (default 60, i.e. roughly three Q20 bases).
	MinQualSum int
	// MaxCandidates caps seed candidates examined per strand
	// (default 32).
	MaxCandidates int
	// Workers sets mapping concurrency (default 1, matching the
	// paper's single-processor MAQ runs; raise for throughput).
	Workers int
	// Seed drives random tie-breaking among equally scoring locations.
	Seed int64
	// Consensus selects the calling model applied to the pileup:
	// the MAQ-style fixed cutoffs (default) or the SOAPsnp-style
	// Bayesian genotype posterior.
	Consensus Consensus
	// Soap tunes the Bayesian caller when Consensus is SoapConsensus.
	Soap SoapConfig
}

// Consensus selects the baseline's calling model.
type Consensus int

const (
	// MAQConsensus is the quality-sum plurality rule with fixed
	// cutoffs (Li, Ruan & Durbin 2008).
	MAQConsensus Consensus = iota
	// SoapConsensus is the Bayesian diploid genotype model
	// (Li et al. 2009); see soapsnp.go.
	SoapConsensus
)

// String names the consensus model.
func (c Consensus) String() string {
	switch c {
	case MAQConsensus:
		return "MAQ"
	case SoapConsensus:
		return "SOAPsnp"
	default:
		return fmt.Sprintf("Consensus(%d)", int(c))
	}
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = kmer.DefaultK
	}
	if c.MaxMismatches == 0 {
		c.MaxMismatches = 5
	}
	if c.MapQThreshold == 0 {
		c.MapQThreshold = 10
	}
	if c.MinDepth == 0 {
		c.MinDepth = 3
	}
	if c.MinQualSum == 0 {
		c.MinQualSum = 60
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 32
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Result is the pipeline outcome.
type Result struct {
	// Calls are the SNPs, sorted by position, in the shared snp.Call
	// shape so the same evaluation harness scores both systems.
	Calls []snp.Call
	// Mapped counts reads assigned to a location; Discarded counts
	// reads dropped for low mapping quality or no acceptable hit;
	// TieBroken counts reads whose location was chosen at random among
	// equal best scores.
	Mapped, Discarded, TieBroken int64
}

// alignment is one scored candidate placement.
type alignment struct {
	pos        int
	qualSum    int // sum of qualities at mismatches; lower is better
	mismatches int
	minus      bool
}

// Run maps all reads and calls SNPs against the reference.
func Run(ref *genome.Reference, reads []*fastq.Read, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if ref == nil || ref.Len() == 0 {
		return nil, fmt.Errorf("baseline: empty reference")
	}
	idx, err := kmer.New(ref.Seq(), cfg.K)
	if err != nil {
		return nil, err
	}
	L := ref.Len()
	// Pileup state: per position, per base, quality sums plus depth.
	qualSum := make([]int32, L*dna.NumBases)
	depth := make([]int32, L)
	var bp *bayesPileup
	if cfg.Consensus == SoapConsensus {
		bp = newBayesPileup(L)
	}

	res := &Result{}
	var wg sync.WaitGroup
	chunk := (len(reads) + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(reads) {
			hi = len(reads)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker int, batch []*fastq.Read) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
			for _, rd := range batch {
				mapOne(ref, idx, rd, cfg, rng, qualSum, depth, bp, res)
			}
		}(w, reads[lo:hi])
	}
	wg.Wait()

	if cfg.Consensus == SoapConsensus {
		res.Calls = callSoap(ref, bp, cfg.Soap)
	} else {
		res.Calls = callConsensus(ref, qualSum, depth, cfg)
	}
	return res, nil
}

// mapOne aligns one read and, if accepted, adds it to the pileup.
func mapOne(ref *genome.Reference, idx *kmer.Index, rd *fastq.Read, cfg Config,
	rng *rand.Rand, qualSum []int32, depth []int32, bp *bayesPileup, res *Result) {
	if err := rd.Validate(); err != nil {
		atomic.AddInt64(&res.Discarded, 1)
		return
	}
	fwd := rd.Seq
	rev := rd.Seq.ReverseComplement()
	revQual := reverseQual(rd.Qual)

	var hits []alignment
	opts := kmer.CandidateOptions{
		MaxCandidates: cfg.MaxCandidates,
		MinVotes:      1,
		MaxBucket:     256,
	}
	for _, strand := range []struct {
		seq   dna.Seq
		qual  []uint8
		minus bool
	}{{fwd, rd.Qual, false}, {rev, revQual, true}} {
		for _, cand := range idx.Candidates(strand.seq, opts) {
			a, ok := scoreUngapped(ref, int(cand.Start), strand.seq, strand.qual, cfg.MaxMismatches)
			if ok {
				a.minus = strand.minus
				hits = append(hits, a)
			}
		}
	}
	if len(hits) == 0 {
		atomic.AddInt64(&res.Discarded, 1)
		return
	}
	// Sort by score; find the best group and the runner-up score.
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].qualSum != hits[j].qualSum {
			return hits[i].qualSum < hits[j].qualSum
		}
		return hits[i].pos < hits[j].pos
	})
	// Deduplicate identical placements (same pos+strand can arrive via
	// several seeds — kmer.Candidates already merges diagonals, but a
	// forward and reverse hit at one pos are distinct).
	best := hits[0]
	nTies := 1
	for _, h := range hits[1:] {
		if h.qualSum == best.qualSum && (h.pos != best.pos || h.minus != best.minus) {
			nTies++
			// Reservoir-sample among ties: the MAQ "random assignment".
			if rng.Intn(nTies) == 0 {
				best = h
			}
		} else if h.qualSum != best.qualSum {
			break
		}
	}
	secondScore := -1
	for _, h := range hits {
		if h.qualSum > best.qualSum {
			secondScore = h.qualSum
			break
		}
	}
	mapQ := mappingQuality(best.qualSum, secondScore, nTies)
	if mapQ < cfg.MapQThreshold {
		atomic.AddInt64(&res.Discarded, 1)
		return
	}
	if nTies > 1 {
		atomic.AddInt64(&res.TieBroken, 1)
	}
	atomic.AddInt64(&res.Mapped, 1)
	// Pile the read up at its single chosen location.
	seq, qual := rd.Seq, rd.Qual
	if best.minus {
		seq, qual = rd.Seq.ReverseComplement(), reverseQual(rd.Qual)
	}
	for i, b := range seq {
		pos := best.pos + i
		if pos < 0 || pos >= ref.Len() || !b.IsConcrete() {
			continue
		}
		atomic.AddInt32(&qualSum[pos*dna.NumBases+int(b)], int32(qual[i]))
		atomic.AddInt32(&depth[pos], 1)
		if bp != nil {
			bp.add(pos, b, fastq.ErrorProb(qual[i]))
		}
	}
}

// reverseQual returns the quality string reversed (for the reverse
// complement orientation).
func reverseQual(q []uint8) []uint8 {
	out := make([]uint8, len(q))
	for i, v := range q {
		out[len(q)-1-i] = v
	}
	return out
}

// scoreUngapped computes the sum-of-mismatch-qualities score of the
// read placed at pos, rejecting placements that run off the reference
// or exceed the mismatch budget.
func scoreUngapped(ref *genome.Reference, pos int, seq dna.Seq, qual []uint8, maxMM int) (alignment, bool) {
	if pos < 0 || pos+len(seq) > ref.Len() {
		return alignment{}, false
	}
	g := ref.Seq()
	a := alignment{pos: pos}
	for i, b := range seq {
		rb := g[pos+i]
		if b != rb || !b.IsConcrete() || !rb.IsConcrete() {
			a.mismatches++
			if a.mismatches > maxMM {
				return alignment{}, false
			}
			a.qualSum += int(qual[i])
		}
	}
	return a, true
}

// mappingQuality is the MAQ-flavoured phred-scaled confidence that the
// chosen location is correct: the score gap to the runner-up, capped,
// and zero when the best score is shared by multiple locations.
func mappingQuality(best, second, nTies int) int {
	if nTies > 1 {
		return 0
	}
	if second < 0 {
		return 60 // unique hit, nothing else within the budget
	}
	q := second - best
	if q > 60 {
		q = 60
	}
	if q < 0 {
		q = 0
	}
	return q
}

// callConsensus scans the pileup and emits SNP calls with MAQ-style
// fixed cutoffs.
func callConsensus(ref *genome.Reference, qualSum []int32, depth []int32, cfg Config) []snp.Call {
	var calls []snp.Call
	g := ref.Seq()
	for pos := 0; pos < ref.Len(); pos++ {
		if int(depth[pos]) < cfg.MinDepth {
			continue
		}
		refBase := g[pos]
		if !refBase.IsConcrete() {
			continue
		}
		base := pos * dna.NumBases
		bestBase, bestQ, secondQ := 0, int32(-1), int32(-1)
		for k := 0; k < dna.NumBases; k++ {
			q := qualSum[base+k]
			if q > bestQ {
				secondQ = bestQ
				bestBase, bestQ = k, q
			} else if q > secondQ {
				secondQ = q
			}
		}
		if dna.Code(bestBase) == refBase {
			continue
		}
		if int(bestQ) < cfg.MinQualSum {
			continue
		}
		// Require the winner to dominate the runner-up (consensus
		// confidence), MAQ's hard margin.
		if bestQ < 2*secondQ {
			continue
		}
		contig, local, err := ref.Locate(pos)
		if err != nil {
			continue
		}
		calls = append(calls, snp.Call{
			Contig:    contig,
			Pos:       local,
			GlobalPos: pos,
			Ref:       refBase,
			Allele:    dna.Channel(bestBase),
			Allele2:   dna.Channel(bestBase),
			Stat:      float64(bestQ),
			PValue:    0,
			Depth:     float64(depth[pos]),
		})
	}
	return calls
}
