package baseline

import (
	"math"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/simulate"
	"gnumap/internal/snp"
)

func TestConsensusString(t *testing.T) {
	if MAQConsensus.String() != "MAQ" || SoapConsensus.String() != "SOAPsnp" {
		t.Error("consensus names wrong")
	}
	if Consensus(9).String() != "Consensus(9)" {
		t.Error("unknown consensus formatting wrong")
	}
}

// Direct unit test of the genotype decision on hand-built pileups.
func TestBayesCallDecisions(t *testing.T) {
	bp := newBayesPileup(4)
	e := 0.001 // Q30
	// Position 0: 15 clean reads of the reference base A -> hom ref.
	for i := 0; i < 15; i++ {
		bp.add(0, dna.A, e)
	}
	// Position 1: 15 reads of C against reference A -> hom non-ref.
	for i := 0; i < 15; i++ {
		bp.add(1, dna.C, e)
	}
	// Position 2: 8 A + 8 G against reference A -> het.
	for i := 0; i < 8; i++ {
		bp.add(2, dna.A, e)
		bp.add(2, dna.G, e)
	}
	// Position 3: 14 A + 1 C (one error read) -> hom ref, not het.
	for i := 0; i < 14; i++ {
		bp.add(3, dna.A, e)
	}
	bp.add(3, dna.C, 0.01)

	cfg := SoapConfig{}.withDefaults()
	gt, phred, depth, ok := bp.call(0, dna.A, cfg)
	if !ok || gt != (genotype{dna.A, dna.A}) || phred < 20 || depth != 15 {
		t.Errorf("pos 0: gt=%v phred=%v depth=%d ok=%v", gt, phred, depth, ok)
	}
	gt, phred, _, ok = bp.call(1, dna.A, cfg)
	if !ok || gt != (genotype{dna.C, dna.C}) || phred < 20 {
		t.Errorf("pos 1: gt=%v phred=%v", gt, phred)
	}
	gt, phred, _, ok = bp.call(2, dna.A, cfg)
	if !ok || gt != (genotype{dna.A, dna.G}) || phred < 20 {
		t.Errorf("pos 2: gt=%v phred=%v", gt, phred)
	}
	gt, _, _, ok = bp.call(3, dna.A, cfg)
	if !ok || gt != (genotype{dna.A, dna.A}) {
		t.Errorf("pos 3: single error read produced gt=%v", gt)
	}
	// Thin coverage refuses to call.
	if _, _, _, ok := bp.call(0, dna.A, SoapConfig{MinDepth: 30}); ok {
		t.Error("MinDepth not enforced")
	}
}

func TestGenotypeEnumeration(t *testing.T) {
	if len(genotypes) != 10 {
		t.Fatalf("%d genotypes, want 10", len(genotypes))
	}
	seen := map[genotype]bool{}
	for _, g := range genotypes {
		if g.b < g.a {
			t.Errorf("unordered genotype %v", g)
		}
		if seen[g] {
			t.Errorf("duplicate genotype %v", g)
		}
		seen[g] = true
	}
}

func TestSoapConsensusEndToEnd(t *testing.T) {
	ref, cat, reads := simData(t, 60000, 6, 15)
	res, err := Run(ref, reads, Config{Workers: 4, Consensus: SoapConsensus})
	if err != nil {
		t.Fatal(err)
	}
	m := snp.Evaluate(res.Calls, cat)
	if m.TP < 4 {
		t.Errorf("SOAPsnp-like recovered %d/%d (FP=%d)", m.TP, len(cat), m.FP)
	}
	if m.Precision() < 0.6 {
		t.Errorf("precision = %v", m.Precision())
	}
}

func TestSoapConsensusDiploid(t *testing.T) {
	g, err := simulate.Genome(simulate.GenomeConfig{Length: 40000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := simulate.Catalog(g, simulate.CatalogConfig{Count: 4, HetFraction: 1, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := simulate.Mutate(g, cat, true)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := simulate.Reads(ind, simulate.ReadConfig{Length: 62, Coverage: 25, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	ref := mustRef(t, g)
	res, err := Run(ref, reads, Config{Consensus: SoapConsensus})
	if err != nil {
		t.Fatal(err)
	}
	m := snp.Evaluate(res.Calls, cat)
	if m.TP < 3 {
		t.Errorf("diploid SOAPsnp recovered %d/%d (FP=%d)", m.TP, len(cat), m.FP)
	}
	hets := 0
	for _, c := range res.Calls {
		if c.Het {
			hets++
		}
	}
	if hets < 3 {
		t.Errorf("only %d het genotypes for %d het sites", hets, len(cat))
	}
}

func TestBayesPileupErrorClamping(t *testing.T) {
	bp := newBayesPileup(1)
	bp.add(0, dna.A, 0)   // must clamp, not log(0)
	bp.add(0, dna.A, 1.0) // must clamp below 1
	bp.add(-1, dna.A, 0.1)
	bp.add(5, dna.A, 0.1)
	bp.add(0, dna.N, 0.1)
	idx := 0*dna.NumBases + int(dna.A)
	if bp.n[idx] != 2 {
		t.Errorf("n = %d, want 2 (OOB and N adds ignored)", bp.n[idx])
	}
	if math.IsInf(bp.s2[idx], 0) || math.IsNaN(bp.s1[idx]) {
		t.Errorf("unclamped stats: s1=%v s2=%v", bp.s1[idx], bp.s2[idx])
	}
}
