package baseline

import (
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/simulate"
	"gnumap/internal/snp"
)

func mustRef(t *testing.T, g dna.Seq) *genome.Reference {
	t.Helper()
	ref, err := genome.NewSingleContig("chrS", g)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func simData(t *testing.T, length, nSNPs int, coverage float64) (*genome.Reference, []simulate.SNP, []*fastq.Read) {
	t.Helper()
	g, err := simulate.Genome(simulate.GenomeConfig{Length: length, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := simulate.Catalog(g, simulate.CatalogConfig{Count: nSNPs, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := simulate.Mutate(g, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := simulate.Reads(ind, simulate.ReadConfig{Length: 62, Coverage: coverage, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := genome.NewSingleContig("chrS", g)
	if err != nil {
		t.Fatal(err)
	}
	return ref, cat, reads
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, nil, Config{}); err == nil {
		t.Error("nil reference accepted")
	}
}

func TestMapsCleanReads(t *testing.T) {
	ref, _, _ := simData(t, 20000, 1, 1)
	// Perfect reads straight off the reference.
	var reads []*fastq.Read
	for _, start := range []int{100, 5000, 12345} {
		seq := ref.Seq()[start : start+62].Clone()
		qual := make([]uint8, 62)
		for i := range qual {
			qual[i] = 30
		}
		reads = append(reads, &fastq.Read{Name: "clean", Seq: seq, Qual: qual})
	}
	res, err := Run(ref, reads, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapped != 3 || res.Discarded != 0 {
		t.Errorf("mapped=%d discarded=%d, want 3/0", res.Mapped, res.Discarded)
	}
	if len(res.Calls) != 0 {
		t.Errorf("clean reads produced %d SNP calls", len(res.Calls))
	}
}

func TestMinusStrandMapping(t *testing.T) {
	ref, _, _ := simData(t, 20000, 1, 1)
	start := 7000
	seq := ref.Seq()[start : start+62].ReverseComplement()
	qual := make([]uint8, 62)
	for i := range qual {
		qual[i] = 30
	}
	res, err := Run(ref, []*fastq.Read{{Name: "rc", Seq: seq, Qual: qual}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapped != 1 {
		t.Errorf("reverse-complement read not mapped: %+v", res)
	}
}

func TestRecoversPlantedSNPs(t *testing.T) {
	ref, cat, reads := simData(t, 60000, 6, 15)
	res, err := Run(ref, reads, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapped < int64(len(reads)*8/10) {
		t.Fatalf("only %d/%d reads mapped", res.Mapped, len(reads))
	}
	m := snp.Evaluate(res.Calls, cat)
	if m.TP < 4 {
		t.Errorf("recovered %d/%d SNPs (FP=%d)", m.TP, len(cat), m.FP)
	}
	if m.Precision() < 0.6 {
		t.Errorf("precision = %v (TP=%d FP=%d)", m.Precision(), m.TP, m.FP)
	}
}

func TestMultiMappedReadsTieBroken(t *testing.T) {
	// A reference with two identical 200bp blocks: reads from the
	// block must tie and be randomly assigned.
	g, err := simulate.Genome(simulate.GenomeConfig{Length: 5000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	copy(g[3000:3200], g[1000:1200])
	ref, err := genome.NewSingleContig("dup", g)
	if err != nil {
		t.Fatal(err)
	}
	qual := make([]uint8, 62)
	for i := range qual {
		qual[i] = 30
	}
	var reads []*fastq.Read
	for i := 0; i < 20; i++ {
		reads = append(reads, &fastq.Read{
			Name: "dup",
			Seq:  g[1050 : 1050+62].Clone(),
			Qual: qual,
		})
	}
	res, err := Run(ref, reads, Config{MapQThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TieBroken != 20 {
		t.Errorf("TieBroken = %d, want 20", res.TieBroken)
	}
	// With the default threshold the ambiguous reads are discarded
	// instead (mapping quality 0 < 10).
	res2, err := Run(ref, reads, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mapped != 0 || res2.Discarded != 20 {
		t.Errorf("ambiguous reads: mapped=%d discarded=%d, want 0/20", res2.Mapped, res2.Discarded)
	}
}

func TestRejectsGarbageReads(t *testing.T) {
	ref, _, _ := simData(t, 20000, 1, 1)
	qual := make([]uint8, 62)
	seq := make(dna.Seq, 62)
	for i := range seq {
		seq[i] = dna.Code(i % 4)
		qual[i] = 30
	}
	res, err := Run(ref, []*fastq.Read{
		{Name: "garbage", Seq: seq, Qual: qual},
		{Name: "invalid", Seq: seq[:10], Qual: qual}, // length mismatch
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapped != 0 || res.Discarded != 2 {
		t.Errorf("mapped=%d discarded=%d, want 0/2", res.Mapped, res.Discarded)
	}
}

func TestWorkersProduceSameCalls(t *testing.T) {
	ref, cat, reads := simData(t, 40000, 4, 12)
	res1, err := Run(ref, reads, Config{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res8, err := Run(ref, reads, Config{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m1 := snp.Evaluate(res1.Calls, cat)
	m8 := snp.Evaluate(res8.Calls, cat)
	// Tie-breaking RNG streams differ across worker counts, so calls
	// can differ slightly at repeats; headline metrics must agree.
	if m1.TP != m8.TP {
		t.Errorf("worker-count changed TP: %d vs %d", m1.TP, m8.TP)
	}
}

func TestMappingQuality(t *testing.T) {
	if mappingQuality(0, -1, 1) != 60 {
		t.Error("unique hit should have mapQ 60")
	}
	if mappingQuality(10, 40, 1) != 30 {
		t.Error("gap-based mapQ wrong")
	}
	if mappingQuality(10, 200, 1) != 60 {
		t.Error("mapQ not capped")
	}
	if mappingQuality(10, 20, 3) != 0 {
		t.Error("ties must zero mapQ")
	}
}

func TestScoreUngapped(t *testing.T) {
	g, _ := simulate.Genome(simulate.GenomeConfig{Length: 1000, Seed: 2})
	ref, _ := genome.NewSingleContig("x", g)
	seq := g[100:120].Clone()
	qual := make([]uint8, 20)
	for i := range qual {
		qual[i] = 25
	}
	a, ok := scoreUngapped(ref, 100, seq, qual, 3)
	if !ok || a.qualSum != 0 || a.mismatches != 0 {
		t.Errorf("perfect placement scored %+v ok=%v", a, ok)
	}
	seq[5] = dna.Code((int(seq[5]) + 1) % 4)
	a, ok = scoreUngapped(ref, 100, seq, qual, 3)
	if !ok || a.qualSum != 25 || a.mismatches != 1 {
		t.Errorf("one-mismatch placement scored %+v ok=%v", a, ok)
	}
	if _, ok := scoreUngapped(ref, 995, seq, qual, 3); ok {
		t.Error("off-end placement accepted")
	}
	if _, ok := scoreUngapped(ref, -1, seq, qual, 3); ok {
		t.Error("negative placement accepted")
	}
}
