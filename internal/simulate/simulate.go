// Package simulate generates the synthetic data the reproduction uses
// in place of the paper's inputs: the hg19 X chromosome, the dbSNP
// build-37 catalog, and MetaSim's Illumina read simulator (paper
// §VII-A). It provides:
//
//   - reference genomes with controllable GC content and planted repeat
//     structure (tandem and dispersed), since the paper emphasizes SNP
//     calling inside repeat regions;
//   - evenly spaced SNP catalogs with a transition bias, mirroring the
//     paper's 14,501 evenly spaced dbSNP sites;
//   - mutated individuals (monoploid or diploid with heterozygous
//     sites);
//   - Illumina-profile reads: position-dependent substitution error
//     rising toward the 3' end, Phred qualities consistent with the
//     injected error rates, both strands, optional low-rate indels.
//
// Everything is deterministic given the seeds in the configs.
package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
)

// GenomeConfig controls reference generation.
type GenomeConfig struct {
	// Length is the reference length in bases.
	Length int
	// GC is the target GC fraction; 0 defaults to 0.41 (human-like).
	GC float64
	// TandemRepeatFraction is the fraction of the genome covered by
	// short tandem repeats (microsatellite-like).
	TandemRepeatFraction float64
	// DispersedRepeatFraction is the fraction covered by copies of a
	// few kilobase-scale segments (Alu/LINE-like), the regions where
	// single-alignment mappers struggle.
	DispersedRepeatFraction float64
	// Seed drives all randomness.
	Seed int64
}

// Genome generates a reference per the config.
func Genome(cfg GenomeConfig) (dna.Seq, error) {
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("simulate: genome length %d", cfg.Length)
	}
	gc := cfg.GC
	if gc == 0 {
		gc = 0.41
	}
	if gc < 0 || gc > 1 {
		return nil, fmt.Errorf("simulate: GC fraction %g out of [0,1]", gc)
	}
	if cfg.TandemRepeatFraction < 0 || cfg.DispersedRepeatFraction < 0 ||
		cfg.TandemRepeatFraction+cfg.DispersedRepeatFraction > 0.9 {
		return nil, fmt.Errorf("simulate: repeat fractions (%g, %g) invalid",
			cfg.TandemRepeatFraction, cfg.DispersedRepeatFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := make(dna.Seq, cfg.Length)
	for i := range g {
		g[i] = randBase(rng, gc)
	}
	// Tandem repeats: pick random loci, tile a 2-6bp unit for 30-200bp.
	tandemBudget := int(float64(cfg.Length) * cfg.TandemRepeatFraction)
	for tandemBudget > 0 && cfg.Length > 16 {
		unitLen := 2 + rng.Intn(5)
		unit := make(dna.Seq, unitLen)
		for i := range unit {
			unit[i] = randBase(rng, gc)
		}
		span := 30 + rng.Intn(171)
		if span > tandemBudget+30 {
			span = tandemBudget + 30
		}
		start := rng.Intn(cfg.Length - span)
		for i := 0; i < span; i++ {
			g[start+i] = unit[i%unitLen]
		}
		tandemBudget -= span
	}
	// Dispersed repeats: generate a few master segments and paste
	// slightly mutated copies around the genome.
	dispersedBudget := int(float64(cfg.Length) * cfg.DispersedRepeatFraction)
	if dispersedBudget > 0 {
		segLen := 300
		if segLen > cfg.Length/4 {
			segLen = cfg.Length / 4
		}
		if segLen >= 10 {
			master := make(dna.Seq, segLen)
			for i := range master {
				master[i] = randBase(rng, gc)
			}
			for dispersedBudget >= segLen {
				start := rng.Intn(cfg.Length - segLen)
				for i := 0; i < segLen; i++ {
					b := master[i]
					if rng.Float64() < 0.02 { // 2% divergence between copies
						b = dna.Code((int(b) + 1 + rng.Intn(3)) % 4)
					}
					g[start+i] = b
				}
				dispersedBudget -= segLen
			}
		}
	}
	return g, nil
}

// randBase draws one base honouring the GC target.
func randBase(rng *rand.Rand, gc float64) dna.Code {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return dna.G
		}
		return dna.C
	}
	if rng.Intn(2) == 0 {
		return dna.A
	}
	return dna.T
}

// SNP is one planted variant.
type SNP struct {
	// Pos is the 0-based reference position.
	Pos int
	// Ref is the reference allele.
	Ref dna.Code
	// Alt is the alternate allele.
	Alt dna.Code
	// Het marks the site heterozygous in a diploid individual: one
	// haplotype carries Alt, the other keeps Ref.
	Het bool
}

// CatalogConfig controls SNP catalog generation.
type CatalogConfig struct {
	// Count is the number of SNPs; they are evenly spaced as in the
	// paper's simulation design.
	Count int
	// TransitionBias is the probability that the alternate allele is a
	// transition rather than a transversion; 0 defaults to 2.0/3
	// (the empirical ~2:1 Ti/Tv genome-wide ratio).
	TransitionBias float64
	// HetFraction is the fraction of sites made heterozygous; use 0
	// for a monoploid individual.
	HetFraction float64
	// Seed drives allele and zygosity choices.
	Seed int64
}

// Catalog plants Count evenly spaced SNPs on the reference.
func Catalog(ref dna.Seq, cfg CatalogConfig) ([]SNP, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("simulate: catalog count %d", cfg.Count)
	}
	if cfg.Count > len(ref) {
		return nil, fmt.Errorf("simulate: %d SNPs on a %d-base reference", cfg.Count, len(ref))
	}
	bias := cfg.TransitionBias
	if bias == 0 {
		bias = 2.0 / 3
	}
	if bias < 0 || bias > 1 {
		return nil, fmt.Errorf("simulate: transition bias %g out of [0,1]", bias)
	}
	if cfg.HetFraction < 0 || cfg.HetFraction > 1 {
		return nil, fmt.Errorf("simulate: het fraction %g out of [0,1]", cfg.HetFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	spacing := float64(len(ref)) / float64(cfg.Count)
	out := make([]SNP, 0, cfg.Count)
	lastPos := -1
	for i := 0; i < cfg.Count; i++ {
		pos := int(spacing*float64(i) + spacing/2)
		if pos <= lastPos {
			pos = lastPos + 1
		}
		if pos >= len(ref) {
			break
		}
		refBase := ref[pos]
		// Skip onto the next concrete base if needed.
		for !refBase.IsConcrete() && pos+1 < len(ref) {
			pos++
			refBase = ref[pos]
		}
		if !refBase.IsConcrete() {
			continue
		}
		out = append(out, SNP{
			Pos: pos,
			Ref: refBase,
			Alt: altAllele(rng, refBase, bias),
			Het: rng.Float64() < cfg.HetFraction,
		})
		lastPos = pos
	}
	return out, nil
}

// altAllele draws an alternate allele with the given transition bias.
func altAllele(rng *rand.Rand, ref dna.Code, bias float64) dna.Code {
	if rng.Float64() < bias {
		return transitionOf(ref)
	}
	// Two transversions per base; pick one.
	var tv [2]dna.Code
	n := 0
	for k := dna.Code(0); k < dna.NumBases; k++ {
		if k != ref && !dna.IsTransition(ref, k) {
			tv[n] = k
			n++
		}
	}
	return tv[rng.Intn(n)]
}

// transitionOf returns the unique transition partner of a base.
func transitionOf(b dna.Code) dna.Code {
	switch b {
	case dna.A:
		return dna.G
	case dna.G:
		return dna.A
	case dna.C:
		return dna.T
	default:
		return dna.C
	}
}

// Individual holds the genome(s) of a simulated individual.
type Individual struct {
	// HapA always carries every alternate allele.
	HapA dna.Seq
	// HapB carries alternate alleles only at homozygous sites; nil for
	// a monoploid individual.
	HapB dna.Seq
}

// Mutate applies a catalog to the reference. diploid selects whether a
// second haplotype is produced (required if any catalog entry is Het).
func Mutate(ref dna.Seq, catalog []SNP, diploid bool) (*Individual, error) {
	hapA := ref.Clone()
	var hapB dna.Seq
	if diploid {
		hapB = ref.Clone()
	}
	for _, s := range catalog {
		if s.Pos < 0 || s.Pos >= len(ref) {
			return nil, fmt.Errorf("simulate: SNP position %d outside reference", s.Pos)
		}
		if ref[s.Pos] != s.Ref {
			return nil, fmt.Errorf("simulate: SNP at %d expects ref %v, genome has %v", s.Pos, s.Ref, ref[s.Pos])
		}
		if s.Alt == s.Ref {
			return nil, fmt.Errorf("simulate: SNP at %d has identical alleles", s.Pos)
		}
		if s.Het && !diploid {
			return nil, fmt.Errorf("simulate: heterozygous SNP at %d in monoploid individual", s.Pos)
		}
		hapA[s.Pos] = s.Alt
		if diploid && !s.Het {
			hapB[s.Pos] = s.Alt
		}
	}
	return &Individual{HapA: hapA, HapB: hapB}, nil
}

// ReadConfig controls read simulation.
type ReadConfig struct {
	// Length is the read length (the paper simulates 62 bp).
	Length int
	// Coverage is the mean fold-coverage of the genome (paper: ~12x).
	Coverage float64
	// ErrStart and ErrEnd set the per-base substitution error rate at
	// the 5' and 3' read ends; the rate interpolates linearly between
	// them (Illumina's characteristic 3'-degradation). Defaults
	// 0.002 → 0.02 when both are zero.
	ErrStart, ErrEnd float64
	// IndelRate is the per-base probability of opening a 1-base indel
	// (Illumina indels are rare; default 0).
	IndelRate float64
	// Seed drives sampling.
	Seed int64
}

// Reads simulates shotgun reads from the individual. For a diploid
// individual each read draws its haplotype uniformly. Reads come from
// both strands; minus-strand reads are reverse-complemented into read
// orientation, exactly as a sequencer would deliver them.
func Reads(ind *Individual, cfg ReadConfig) ([]*fastq.Read, error) {
	if ind == nil || len(ind.HapA) == 0 {
		return nil, fmt.Errorf("simulate: empty individual")
	}
	if cfg.Length <= 0 || cfg.Length > len(ind.HapA) {
		return nil, fmt.Errorf("simulate: read length %d on a %d-base genome", cfg.Length, len(ind.HapA))
	}
	if cfg.Coverage <= 0 {
		return nil, fmt.Errorf("simulate: coverage %g", cfg.Coverage)
	}
	errStart, errEnd := cfg.ErrStart, cfg.ErrEnd
	if errStart == 0 && errEnd == 0 {
		errStart, errEnd = 0.002, 0.02
	}
	if errStart < 0 || errEnd < 0 || errStart >= 1 || errEnd >= 1 {
		return nil, fmt.Errorf("simulate: error rates (%g, %g) invalid", errStart, errEnd)
	}
	if cfg.IndelRate < 0 || cfg.IndelRate > 0.1 {
		return nil, fmt.Errorf("simulate: indel rate %g invalid", cfg.IndelRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nReads := int(cfg.Coverage * float64(len(ind.HapA)) / float64(cfg.Length))
	if nReads < 1 {
		nReads = 1
	}
	reads := make([]*fastq.Read, 0, nReads)
	for r := 0; r < nReads; r++ {
		hap := ind.HapA
		hapName := "A"
		if ind.HapB != nil && rng.Intn(2) == 1 {
			hap = ind.HapB
			hapName = "B"
		}
		// Sample a template slightly longer than the read so indels
		// do not run off the end.
		tmplLen := cfg.Length + 8
		if tmplLen > len(hap) {
			tmplLen = len(hap)
		}
		start := rng.Intn(len(hap) - tmplLen + 1)
		tmpl := hap[start : start+tmplLen]
		minus := rng.Intn(2) == 1
		if minus {
			tmpl = tmpl.ReverseComplement()
		}
		seq, qual := sequenceTemplate(rng, tmpl, cfg.Length, errStart, errEnd, cfg.IndelRate)
		strand := "+"
		if minus {
			strand = "-"
		}
		reads = append(reads, &fastq.Read{
			Name: fmt.Sprintf("sim_%d_pos%d_%s_hap%s", r, start, strand, hapName),
			Seq:  seq,
			Qual: qual,
		})
	}
	return reads, nil
}

// sequenceTemplate applies the error model to a template, producing
// exactly length bases with matching qualities.
func sequenceTemplate(rng *rand.Rand, tmpl dna.Seq, length int, errStart, errEnd, indelRate float64) (dna.Seq, []uint8) {
	seq := make(dna.Seq, 0, length)
	qual := make([]uint8, 0, length)
	ti := 0
	for len(seq) < length {
		i := len(seq)
		frac := 0.0
		if length > 1 {
			frac = float64(i) / float64(length-1)
		}
		e := errStart + (errEnd-errStart)*frac
		if indelRate > 0 && rng.Float64() < indelRate {
			if rng.Intn(2) == 0 {
				// Insertion: emit a random base, do not consume template.
				seq = append(seq, dna.Code(rng.Intn(4)))
				qual = append(qual, jitteredQuality(rng, e))
				continue
			}
			// Deletion: skip one template base.
			ti++
		}
		var b dna.Code
		if ti < len(tmpl) {
			b = tmpl[ti]
			ti++
		} else {
			b = dna.Code(rng.Intn(4)) // ran off template: random fill
		}
		if !b.IsConcrete() {
			b = dna.Code(rng.Intn(4))
		}
		if rng.Float64() < e {
			b = dna.Code((int(b) + 1 + rng.Intn(3)) % 4)
		}
		seq = append(seq, b)
		qual = append(qual, jitteredQuality(rng, e))
	}
	return seq, qual
}

// jitteredQuality converts an error rate to a Phred score with ±2 of
// integer jitter, as real basecallers scatter around the true rate.
func jitteredQuality(rng *rand.Rand, e float64) uint8 {
	q := float64(fastq.PhredFromErrorProb(e)) + float64(rng.Intn(5)-2)
	q = math.Max(2, math.Min(q, fastq.MaxQuality))
	return uint8(q)
}

// CatalogAt plants SNPs at explicit reference positions (for
// hand-constructed scenarios such as a SNP inside a repeat copy).
// Alleles are drawn with the same transition bias as Catalog; positions
// must be strictly increasing, in range, and on concrete bases.
func CatalogAt(ref dna.Seq, positions []int, cfg CatalogConfig) ([]SNP, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("simulate: no positions")
	}
	bias := cfg.TransitionBias
	if bias == 0 {
		bias = 2.0 / 3
	}
	if bias < 0 || bias > 1 {
		return nil, fmt.Errorf("simulate: transition bias %g out of [0,1]", bias)
	}
	if cfg.HetFraction < 0 || cfg.HetFraction > 1 {
		return nil, fmt.Errorf("simulate: het fraction %g out of [0,1]", cfg.HetFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]SNP, 0, len(positions))
	last := -1
	for _, pos := range positions {
		if pos <= last {
			return nil, fmt.Errorf("simulate: positions not strictly increasing at %d", pos)
		}
		last = pos
		if pos < 0 || pos >= len(ref) {
			return nil, fmt.Errorf("simulate: position %d outside reference of length %d", pos, len(ref))
		}
		refBase := ref[pos]
		if !refBase.IsConcrete() {
			return nil, fmt.Errorf("simulate: position %d is an ambiguous base", pos)
		}
		out = append(out, SNP{
			Pos: pos,
			Ref: refBase,
			Alt: altAllele(rng, refBase, bias),
			Het: rng.Float64() < cfg.HetFraction,
		})
	}
	return out, nil
}
