package simulate

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"gnumap/internal/dna"
)

func TestGenomeValidation(t *testing.T) {
	if _, err := Genome(GenomeConfig{Length: 0}); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := Genome(GenomeConfig{Length: 100, GC: 1.5}); err == nil {
		t.Error("GC > 1 accepted")
	}
	if _, err := Genome(GenomeConfig{Length: 100, TandemRepeatFraction: 0.8, DispersedRepeatFraction: 0.5}); err == nil {
		t.Error("repeat fractions > 0.9 accepted")
	}
}

func TestGenomeDeterministic(t *testing.T) {
	cfg := GenomeConfig{Length: 5000, Seed: 7, TandemRepeatFraction: 0.05, DispersedRepeatFraction: 0.1}
	a, err := Genome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different genomes")
	}
	c, err := Genome(GenomeConfig{Length: 5000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical genomes")
	}
}

func TestGenomeGCContent(t *testing.T) {
	for _, gc := range []float64{0.3, 0.41, 0.6} {
		g, err := Genome(GenomeConfig{Length: 200000, GC: gc, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got := g.GCContent(); math.Abs(got-gc) > 0.01 {
			t.Errorf("GC = %v, want %v", got, gc)
		}
	}
}

func TestGenomeHasRepeats(t *testing.T) {
	g, err := Genome(GenomeConfig{Length: 50000, Seed: 5, DispersedRepeatFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Count 20-mers occurring >= 5 times; dispersed repeats guarantee
	// some, a random genome of this size essentially none.
	counts := map[string]int{}
	for i := 0; i+20 <= len(g); i += 7 {
		counts[g[i:i+20].String()]++
	}
	repeats := 0
	for _, c := range counts {
		if c >= 5 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Error("no repeated 20-mers in a 20% dispersed-repeat genome")
	}
	plain, _ := Genome(GenomeConfig{Length: 50000, Seed: 5})
	counts = map[string]int{}
	for i := 0; i+20 <= len(plain); i += 7 {
		counts[plain[i:i+20].String()]++
	}
	for k, c := range counts {
		if c >= 5 {
			t.Errorf("random genome has high-frequency 20-mer %q ×%d", k, c)
		}
	}
}

func TestCatalogSpacingAndContent(t *testing.T) {
	g, err := Genome(GenomeConfig{Length: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Catalog(g, CatalogConfig{Count: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 100 {
		t.Fatalf("catalog size %d, want 100", len(cat))
	}
	for i, s := range cat {
		if g[s.Pos] != s.Ref {
			t.Fatalf("SNP %d: catalog ref %v but genome has %v", i, s.Ref, g[s.Pos])
		}
		if s.Alt == s.Ref || !s.Alt.IsConcrete() {
			t.Fatalf("SNP %d: bad alt %v", i, s.Alt)
		}
		if s.Het {
			t.Fatalf("SNP %d: het in default (monoploid) catalog", i)
		}
		if i > 0 && s.Pos <= cat[i-1].Pos {
			t.Fatalf("catalog not strictly increasing at %d", i)
		}
	}
	// Spacing approximately even: every gap within 3x of the mean.
	mean := float64(len(g)) / 100
	for i := 1; i < len(cat); i++ {
		gap := float64(cat[i].Pos - cat[i-1].Pos)
		if gap > 3*mean {
			t.Errorf("gap %v at %d far from mean %v", gap, i, mean)
		}
	}
}

func TestCatalogTransitionBias(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 200000, Seed: 1})
	cat, err := Catalog(g, CatalogConfig{Count: 2000, TransitionBias: 2.0 / 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ti := 0
	for _, s := range cat {
		if dna.IsTransition(s.Ref, s.Alt) {
			ti++
		}
	}
	frac := float64(ti) / float64(len(cat))
	if math.Abs(frac-2.0/3) > 0.04 {
		t.Errorf("transition fraction = %v, want ~0.667", frac)
	}
}

func TestCatalogHetFraction(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 100000, Seed: 1})
	cat, err := Catalog(g, CatalogConfig{Count: 1000, HetFraction: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	het := 0
	for _, s := range cat {
		if s.Het {
			het++
		}
	}
	if het < 400 || het > 600 {
		t.Errorf("het count = %d/1000, want ~500", het)
	}
}

func TestCatalogValidation(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 1000, Seed: 1})
	if _, err := Catalog(g, CatalogConfig{Count: 0}); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := Catalog(g, CatalogConfig{Count: 2000}); err == nil {
		t.Error("more SNPs than bases accepted")
	}
	if _, err := Catalog(g, CatalogConfig{Count: 10, TransitionBias: 2}); err == nil {
		t.Error("bias > 1 accepted")
	}
	if _, err := Catalog(g, CatalogConfig{Count: 10, HetFraction: -1}); err == nil {
		t.Error("negative het fraction accepted")
	}
}

func TestMutateMonoploid(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 10000, Seed: 1})
	cat, _ := Catalog(g, CatalogConfig{Count: 10, Seed: 2})
	ind, err := Mutate(g, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	if ind.HapB != nil {
		t.Error("monoploid individual has a second haplotype")
	}
	diffs := 0
	for i := range g {
		if g[i] != ind.HapA[i] {
			diffs++
		}
	}
	if diffs != len(cat) {
		t.Errorf("%d differences, want %d", diffs, len(cat))
	}
	for _, s := range cat {
		if ind.HapA[s.Pos] != s.Alt {
			t.Errorf("position %d not mutated", s.Pos)
		}
	}
}

func TestMutateDiploid(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 10000, Seed: 1})
	cat, _ := Catalog(g, CatalogConfig{Count: 20, HetFraction: 0.5, Seed: 9})
	ind, err := Mutate(g, cat, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cat {
		if ind.HapA[s.Pos] != s.Alt {
			t.Errorf("hapA at %d not mutated", s.Pos)
		}
		wantB := s.Alt
		if s.Het {
			wantB = s.Ref
		}
		if ind.HapB[s.Pos] != wantB {
			t.Errorf("hapB at %d = %v, want %v (het=%v)", s.Pos, ind.HapB[s.Pos], wantB, s.Het)
		}
	}
}

func TestMutateValidation(t *testing.T) {
	g := dna.MustParseSeq("ACGT")
	if _, err := Mutate(g, []SNP{{Pos: 9, Ref: dna.A, Alt: dna.C}}, false); err == nil {
		t.Error("OOB SNP accepted")
	}
	if _, err := Mutate(g, []SNP{{Pos: 0, Ref: dna.C, Alt: dna.G}}, false); err == nil {
		t.Error("ref mismatch accepted")
	}
	if _, err := Mutate(g, []SNP{{Pos: 0, Ref: dna.A, Alt: dna.A}}, false); err == nil {
		t.Error("identical alleles accepted")
	}
	if _, err := Mutate(g, []SNP{{Pos: 0, Ref: dna.A, Alt: dna.C, Het: true}}, false); err == nil {
		t.Error("het SNP in monoploid accepted")
	}
}

func TestReadsBasicProperties(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 20000, Seed: 1})
	ind, _ := Mutate(g, nil, false)
	cfg := ReadConfig{Length: 62, Coverage: 10, Seed: 3}
	reads, err := Reads(ind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantN := int(cfg.Coverage * float64(len(g)) / float64(cfg.Length))
	if len(reads) != wantN {
		t.Errorf("%d reads, want %d", len(reads), wantN)
	}
	for _, r := range reads[:50] {
		if len(r.Seq) != 62 || len(r.Qual) != 62 {
			t.Fatalf("read %s has %d bases, %d quals", r.Name, len(r.Seq), len(r.Qual))
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Determinism.
	again, _ := Reads(ind, cfg)
	if again[7].Seq.String() != reads[7].Seq.String() {
		t.Error("same seed produced different reads")
	}
}

func TestReadsErrorRateMatchesProfile(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 50000, Seed: 2})
	ind, _ := Mutate(g, nil, false)
	cfg := ReadConfig{Length: 62, Coverage: 20, ErrStart: 0.002, ErrEnd: 0.03, Seed: 5}
	reads, err := Reads(ind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Measure empirical mismatch rate in the first and last 10 read
	// positions by realigning to the known origin (parse from name).
	firstErr, lastErr, firstN, lastN := 0, 0, 0, 0
	for _, r := range reads {
		start, minus := parseName(t, r.Name)
		tmpl := g[start : start+70]
		if minus {
			tmpl = tmpl.ReverseComplement()
		}
		for i := 0; i < 62; i++ {
			if i < 10 {
				firstN++
				if r.Seq[i] != tmpl[i] {
					firstErr++
				}
			}
			if i >= 52 {
				lastN++
				if r.Seq[i] != tmpl[i] {
					lastErr++
				}
			}
		}
	}
	fRate := float64(firstErr) / float64(firstN)
	lRate := float64(lastErr) / float64(lastN)
	if fRate > 0.012 {
		t.Errorf("5' error rate = %v, want ~0.004", fRate)
	}
	if lRate < 0.015 || lRate > 0.05 {
		t.Errorf("3' error rate = %v, want ~0.028", lRate)
	}
	if lRate <= fRate {
		t.Errorf("error profile not rising: %v -> %v", fRate, lRate)
	}
}

func parseName(t *testing.T, name string) (start int, minus bool) {
	t.Helper()
	parts := strings.Split(name, "_")
	if len(parts) != 5 || !strings.HasPrefix(parts[2], "pos") {
		t.Fatalf("unparseable read name %q", name)
	}
	v, err := strconv.Atoi(parts[2][3:])
	if err != nil {
		t.Fatalf("unparseable position in %q: %v", name, err)
	}
	return v, parts[3] == "-"
}

func TestReadsDiploidUsesBothHaplotypes(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 5000, Seed: 3})
	cat, _ := Catalog(g, CatalogConfig{Count: 5, HetFraction: 1, Seed: 4})
	ind, _ := Mutate(g, cat, true)
	reads, err := Reads(ind, ReadConfig{Length: 50, Coverage: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	a, b := 0, 0
	for _, r := range reads {
		if r.Name[len(r.Name)-1] == 'A' {
			a++
		} else {
			b++
		}
	}
	if a == 0 || b == 0 {
		t.Errorf("haplotype draw skewed: A=%d B=%d", a, b)
	}
}

func TestReadsIndels(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 10000, Seed: 3})
	ind, _ := Mutate(g, nil, false)
	reads, err := Reads(ind, ReadConfig{Length: 50, Coverage: 5, IndelRate: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if len(r.Seq) != 50 {
			t.Fatalf("indel read has length %d", len(r.Seq))
		}
	}
}

func TestReadsValidation(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 100, Seed: 1})
	ind, _ := Mutate(g, nil, false)
	if _, err := Reads(nil, ReadConfig{Length: 10, Coverage: 1}); err == nil {
		t.Error("nil individual accepted")
	}
	if _, err := Reads(ind, ReadConfig{Length: 0, Coverage: 1}); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := Reads(ind, ReadConfig{Length: 200, Coverage: 1}); err == nil {
		t.Error("read longer than genome accepted")
	}
	if _, err := Reads(ind, ReadConfig{Length: 10, Coverage: 0}); err == nil {
		t.Error("coverage 0 accepted")
	}
	if _, err := Reads(ind, ReadConfig{Length: 10, Coverage: 1, ErrStart: 2}); err == nil {
		t.Error("error rate >= 1 accepted")
	}
	if _, err := Reads(ind, ReadConfig{Length: 10, Coverage: 1, IndelRate: 0.5}); err == nil {
		t.Error("huge indel rate accepted")
	}
}

func TestCatalogAt(t *testing.T) {
	g, _ := Genome(GenomeConfig{Length: 1000, Seed: 1})
	cat, err := CatalogAt(g, []int{10, 500, 999}, CatalogConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 3 || cat[0].Pos != 10 || cat[2].Pos != 999 {
		t.Fatalf("catalog = %+v", cat)
	}
	for _, s := range cat {
		if s.Ref != g[s.Pos] || s.Alt == s.Ref {
			t.Errorf("bad SNP %+v", s)
		}
	}
	if _, err := CatalogAt(g, nil, CatalogConfig{}); err == nil {
		t.Error("empty positions accepted")
	}
	if _, err := CatalogAt(g, []int{5, 5}, CatalogConfig{}); err == nil {
		t.Error("non-increasing positions accepted")
	}
	if _, err := CatalogAt(g, []int{2000}, CatalogConfig{}); err == nil {
		t.Error("OOB position accepted")
	}
	gn := g.Clone()
	gn[7] = dna.N
	if _, err := CatalogAt(gn, []int{7}, CatalogConfig{}); err == nil {
		t.Error("N position accepted")
	}
}
