package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	cp := &Checkpoint{
		ReadsConsumed: 12345,
		Mapped:        12000,
		Unmapped:      345,
		Locations:     17890,
		State:         []byte("gob-encoded accumulator state stand-in"),
	}
	cp.Fingerprint = Fingerprint{
		RefDigest:    DigestParams("reference bytes"),
		RefLen:       120000,
		Memory:       1,
		Band:         18,
		Ploidy:       2,
		ParamsDigest: DigestParams("params rendering"),
	}
	return cp
}

func TestRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	data := Encode(cp)
	got, err := Decode(data, MaxPayloadFor(120000))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Fingerprint != cp.Fingerprint {
		t.Errorf("fingerprint mismatch: %+v != %+v", got.Fingerprint, cp.Fingerprint)
	}
	if got.ReadsConsumed != cp.ReadsConsumed || got.Mapped != cp.Mapped ||
		got.Unmapped != cp.Unmapped || got.Locations != cp.Locations {
		t.Errorf("watermark mismatch: %+v", got)
	}
	if !bytes.Equal(got.State, cp.State) {
		t.Errorf("state mismatch")
	}
}

func TestRoundTripStream(t *testing.T) {
	cp := sampleCheckpoint()
	var buf bytes.Buffer
	n, err := WriteTo(&buf, cp)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadFrom(&buf, MaxPayloadFor(120000))
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.Fingerprint != cp.Fingerprint || !bytes.Equal(got.State, cp.State) {
		t.Errorf("stream round trip mismatch")
	}
}

func TestEmptyState(t *testing.T) {
	cp := sampleCheckpoint()
	cp.State = nil
	got, err := Decode(Encode(cp), 1)
	if err != nil {
		t.Fatalf("Decode empty state: %v", err)
	}
	if len(got.State) != 0 {
		t.Errorf("state = %q, want empty", got.State)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	valid := Encode(sampleCheckpoint())
	maxP := MaxPayloadFor(120000)

	t.Run("not-checkpoint", func(t *testing.T) {
		for _, data := range [][]byte{nil, []byte("x"), []byte("gob-like legacy blob that is long enough")} {
			if _, err := Decode(data, maxP); !errors.Is(err, ErrNotCheckpoint) {
				t.Errorf("Decode(%q) = %v, want ErrNotCheckpoint", data, err)
			}
		}
	})

	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[8] = 99 // version low byte
		if _, err := Decode(bad, maxP); !errors.Is(err, ErrVersion) {
			t.Errorf("got %v, want ErrVersion", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{9, 13, 20, len(valid) / 2, len(valid) - 1} {
			if _, err := Decode(valid[:cut], maxP); err == nil {
				t.Errorf("Decode(valid[:%d]) succeeded", cut)
			} else if !errors.Is(err, ErrTruncated) {
				t.Errorf("Decode(valid[:%d]) = %v, want ErrTruncated", cut, err)
			}
		}
	})

	t.Run("bit-flips", func(t *testing.T) {
		// Flip one bit at every offset past the version field; every
		// variant must be rejected (header CRC, payload CRC, or a
		// length that no longer frames).
		for off := 10; off < len(valid); off++ {
			bad := append([]byte(nil), valid...)
			bad[off] ^= 0x40
			if _, err := Decode(bad, maxP); err == nil {
				t.Fatalf("bit flip at offset %d decoded successfully", off)
			}
		}
	})

	t.Run("too-large", func(t *testing.T) {
		if _, err := Decode(valid, 4); !errors.Is(err, ErrTooLarge) {
			t.Errorf("got %v, want ErrTooLarge", err)
		}
		if _, err := Decode(valid, 0); !errors.Is(err, ErrTooLarge) {
			t.Errorf("maxPayload=0: got %v, want ErrTooLarge", err)
		}
	})
}

func TestFingerprintCheck(t *testing.T) {
	base := sampleCheckpoint().Fingerprint
	if err := base.Check(base); err != nil {
		t.Fatalf("self check: %v", err)
	}
	mutations := []func(*Fingerprint){
		func(f *Fingerprint) { f.RefDigest[0] ^= 1 },
		func(f *Fingerprint) { f.RefLen++ },
		func(f *Fingerprint) { f.Memory++ },
		func(f *Fingerprint) { f.Band++ },
		func(f *Fingerprint) { f.Ploidy++ },
		func(f *Fingerprint) { f.ParamsDigest[0] ^= 1 },
	}
	for i, mut := range mutations {
		got := base
		mut(&got)
		if err := base.Check(got); !errors.Is(err, ErrMismatch) {
			t.Errorf("mutation %d: got %v, want ErrMismatch", i, err)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	cp := sampleCheckpoint()
	n, err := WriteFile(path, cp)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if fi.Size() != n {
		t.Errorf("size %d, WriteFile reported %d", fi.Size(), n)
	}

	// Overwrite with a newer checkpoint; the old one is fully replaced.
	cp2 := sampleCheckpoint()
	cp2.ReadsConsumed = 99999
	if _, err := WriteFile(path, cp2); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err := ReadFile(path, MaxPayloadFor(120000))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.ReadsConsumed != 99999 {
		t.Errorf("ReadsConsumed = %d, want 99999", got.ReadsConsumed)
	}

	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		t.Errorf("directory litter: %v", entries)
	}
}

// TestCrashMidWriteLeavesPriorCheckpoint simulates the torn-write crash
// window: a partial "next" checkpoint exists only as a temp file, never
// renamed. The prior checkpoint at the real path must stay loadable and
// the temp must never be picked up.
func TestCrashMidWriteLeavesPriorCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	prior := sampleCheckpoint()
	if _, err := WriteFile(path, prior); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// A crash mid-write leaves a half-written temp file alongside.
	next := sampleCheckpoint()
	next.ReadsConsumed = 55555
	torn := Encode(next)
	if err := os.WriteFile(filepath.Join(dir, "run.ckpt.tmp.123"), torn[:len(torn)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, MaxPayloadFor(120000))
	if err != nil {
		t.Fatalf("prior checkpoint unreadable after simulated crash: %v", err)
	}
	if got.ReadsConsumed != prior.ReadsConsumed {
		t.Errorf("ReadsConsumed = %d, want prior %d", got.ReadsConsumed, prior.ReadsConsumed)
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "absent.ckpt"), 1024)
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("got %v, want os.ErrNotExist", err)
	}
}
