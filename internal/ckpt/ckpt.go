// Package ckpt implements the durable checkpoint file format that makes
// a long mapping run killable and resumable. A checkpoint carries three
// things:
//
//   - a config fingerprint (reference digest, memory mode, effective
//     band, ploidy, and a digest over the remaining call-affecting
//     parameters) so a checkpoint can never be silently loaded into a
//     pipeline that would produce different calls;
//   - a source watermark (reads consumed from the input stream) plus
//     the mapping statistics at that point, so a resumed run can skip
//     exactly the already-mapped prefix and keep its counters honest;
//   - the serialized accumulator state (genome.Stateful blob).
//
// The on-disk layout is versioned, length-prefixed, and checksummed so
// every failure mode — truncation, bit rot, version skew, a file that
// is not a checkpoint at all — surfaces as a typed error instead of
// undefined behavior:
//
//	magic   [8]byte  "GNUMAPCP"
//	version uint16   (little-endian; currently 1)
//	hlen    uint32   header length
//	header  [hlen]byte (fixed v1 binary layout, see encodeHeader)
//	hcrc    uint32   CRC-32 (IEEE) of header
//	plen    uint64   payload length
//	payload [plen]byte (accumulator state blob)
//	pcrc    uint32   CRC-32 (IEEE) of payload
//
// WriteFile is atomic: the bytes go to a temp file in the destination
// directory, are fsynced, and are renamed over the destination (then
// the directory is fsynced), so a crash at any instant leaves either
// the previous complete checkpoint or the new complete checkpoint —
// never a torn file.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint file.
var Magic = [8]byte{'G', 'N', 'U', 'M', 'A', 'P', 'C', 'P'}

// Version is the current format version.
const Version = 1

// v1HeaderLen is the exact encoded header size of version 1.
const v1HeaderLen = 32 + 8 + 4 + 4 + 4 + 32 + 8 + 8 + 8 + 8

// maxHeaderLen bounds the declared header length before allocation.
const maxHeaderLen = 1 << 12

// Typed failure modes. Every decode error wraps exactly one of these,
// so callers distinguish "not a checkpoint" from "damaged checkpoint"
// from "checkpoint for a different run" with errors.Is.
var (
	// ErrNotCheckpoint: the data does not start with the magic bytes.
	ErrNotCheckpoint = errors.New("ckpt: not a checkpoint file")
	// ErrVersion: the format version is not supported by this build.
	ErrVersion = errors.New("ckpt: unsupported checkpoint version")
	// ErrTruncated: the data ends before a declared section does.
	ErrTruncated = errors.New("ckpt: truncated checkpoint")
	// ErrChecksum: a section's CRC does not match its contents.
	ErrChecksum = errors.New("ckpt: checksum mismatch")
	// ErrTooLarge: a declared section length exceeds the caller's bound.
	ErrTooLarge = errors.New("ckpt: declared length exceeds limit")
	// ErrMismatch: the checkpoint's config fingerprint does not match
	// the pipeline trying to load it.
	ErrMismatch = errors.New("ckpt: config fingerprint mismatch")
)

// Fingerprint pins a checkpoint to the run configuration that produced
// it. Only call-affecting parameters participate: execution knobs
// (worker count, batch size, queue depth) are free to change across a
// resume.
type Fingerprint struct {
	// RefDigest is the SHA-256 of the concatenated reference sequence.
	RefDigest [32]byte
	// RefLen is the concatenated reference length.
	RefLen int64
	// Memory is the accumulator layout (genome.Mode).
	Memory int32
	// Band is the effective Pair-HMM band width.
	Band int32
	// Ploidy is the LRT hypothesis family.
	Ploidy int32
	// ParamsDigest hashes the remaining call-affecting configuration
	// (PHMM parameters, seeding/filter thresholds, caller settings).
	ParamsDigest [32]byte
}

// Check returns nil when got matches f, or an error wrapping
// ErrMismatch naming the first differing field.
func (f Fingerprint) Check(got Fingerprint) error {
	switch {
	case f.RefDigest != got.RefDigest:
		return fmt.Errorf("%w: reference digest %x != %x", ErrMismatch, got.RefDigest[:8], f.RefDigest[:8])
	case f.RefLen != got.RefLen:
		return fmt.Errorf("%w: reference length %d != %d", ErrMismatch, got.RefLen, f.RefLen)
	case f.Memory != got.Memory:
		return fmt.Errorf("%w: memory mode %d != %d", ErrMismatch, got.Memory, f.Memory)
	case f.Band != got.Band:
		return fmt.Errorf("%w: band width %d != %d", ErrMismatch, got.Band, f.Band)
	case f.Ploidy != got.Ploidy:
		return fmt.Errorf("%w: ploidy %d != %d", ErrMismatch, got.Ploidy, f.Ploidy)
	case f.ParamsDigest != got.ParamsDigest:
		return fmt.Errorf("%w: parameter digest %x != %x", ErrMismatch, got.ParamsDigest[:8], f.ParamsDigest[:8])
	}
	return nil
}

// DigestParams hashes an arbitrary canonical parameter rendering into a
// ParamsDigest. Callers are responsible for a deterministic rendering
// (e.g. fmt over a fixed field list).
func DigestParams(canonical string) [32]byte {
	return sha256.Sum256([]byte(canonical))
}

// Checkpoint is the decoded content of a checkpoint file.
type Checkpoint struct {
	Fingerprint Fingerprint
	// ReadsConsumed is the source watermark: every read with ordinal
	// < ReadsConsumed (0-based) is fully accumulated in State.
	ReadsConsumed int64
	// Mapped/Unmapped/Locations are the mapping statistics at the
	// watermark (Mapped + Unmapped == ReadsConsumed).
	Mapped, Unmapped, Locations int64
	// State is the accumulator state blob (genome.Stateful.State).
	State []byte
}

// MaxPayloadFor bounds the declared payload length for a reference of
// the given length: the largest accumulator state (NORM, five float32
// per position) encodes to well under 64 bytes/position in the genome
// package's raw layout, plus a fixed allowance for framing.
func MaxPayloadFor(refLen int) int64 {
	return 64*int64(refLen) + 1<<20
}

// Encode serializes a checkpoint.
func Encode(cp *Checkpoint) []byte {
	header := encodeHeader(cp)
	buf := make([]byte, 0, len(header)+len(cp.State)+8+2+4+4+8+4)
	buf = append(buf, Magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(header)))
	buf = append(buf, header...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(header))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(cp.State)))
	buf = append(buf, cp.State...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(cp.State))
	return buf
}

func encodeHeader(cp *Checkpoint) []byte {
	b := make([]byte, 0, v1HeaderLen)
	b = append(b, cp.Fingerprint.RefDigest[:]...)
	b = binary.LittleEndian.AppendUint64(b, uint64(cp.Fingerprint.RefLen))
	b = binary.LittleEndian.AppendUint32(b, uint32(cp.Fingerprint.Memory))
	b = binary.LittleEndian.AppendUint32(b, uint32(cp.Fingerprint.Band))
	b = binary.LittleEndian.AppendUint32(b, uint32(cp.Fingerprint.Ploidy))
	b = append(b, cp.Fingerprint.ParamsDigest[:]...)
	b = binary.LittleEndian.AppendUint64(b, uint64(cp.ReadsConsumed))
	b = binary.LittleEndian.AppendUint64(b, uint64(cp.Mapped))
	b = binary.LittleEndian.AppendUint64(b, uint64(cp.Unmapped))
	b = binary.LittleEndian.AppendUint64(b, uint64(cp.Locations))
	return b
}

func decodeHeader(h []byte) (*Checkpoint, error) {
	if len(h) < v1HeaderLen {
		return nil, fmt.Errorf("%w: header %d bytes, need %d", ErrTruncated, len(h), v1HeaderLen)
	}
	cp := &Checkpoint{}
	copy(cp.Fingerprint.RefDigest[:], h[0:32])
	cp.Fingerprint.RefLen = int64(binary.LittleEndian.Uint64(h[32:40]))
	cp.Fingerprint.Memory = int32(binary.LittleEndian.Uint32(h[40:44]))
	cp.Fingerprint.Band = int32(binary.LittleEndian.Uint32(h[44:48]))
	cp.Fingerprint.Ploidy = int32(binary.LittleEndian.Uint32(h[48:52]))
	copy(cp.Fingerprint.ParamsDigest[:], h[52:84])
	cp.ReadsConsumed = int64(binary.LittleEndian.Uint64(h[84:92]))
	cp.Mapped = int64(binary.LittleEndian.Uint64(h[92:100]))
	cp.Unmapped = int64(binary.LittleEndian.Uint64(h[100:108]))
	cp.Locations = int64(binary.LittleEndian.Uint64(h[108:116]))
	return cp, nil
}

// Decode parses a checkpoint from data. maxPayload bounds the declared
// payload length (use MaxPayloadFor; <= 0 rejects any payload). Decode
// never panics on hostile input; every failure wraps one of the typed
// sentinel errors.
func Decode(data []byte, maxPayload int64) (*Checkpoint, error) {
	if len(data) < len(Magic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrNotCheckpoint, len(data))
	}
	if !bytes.Equal(data[:len(Magic)], Magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotCheckpoint, data[:len(Magic)])
	}
	rest := data[len(Magic):]
	if len(rest) < 2+4 {
		return nil, fmt.Errorf("%w: missing version/header length", ErrTruncated)
	}
	ver := binary.LittleEndian.Uint16(rest[0:2])
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, ver, Version)
	}
	hlen := int64(binary.LittleEndian.Uint32(rest[2:6]))
	if hlen > maxHeaderLen {
		return nil, fmt.Errorf("%w: header %d bytes > %d", ErrTooLarge, hlen, maxHeaderLen)
	}
	rest = rest[6:]
	if int64(len(rest)) < hlen+4 {
		return nil, fmt.Errorf("%w: header section", ErrTruncated)
	}
	header := rest[:hlen]
	hcrc := binary.LittleEndian.Uint32(rest[hlen : hlen+4])
	if crc32.ChecksumIEEE(header) != hcrc {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	cp, err := decodeHeader(header)
	if err != nil {
		return nil, err
	}
	rest = rest[hlen+4:]
	if len(rest) < 8 {
		return nil, fmt.Errorf("%w: missing payload length", ErrTruncated)
	}
	plen := binary.LittleEndian.Uint64(rest[0:8])
	if plen > uint64(maxPayload) || maxPayload <= 0 {
		return nil, fmt.Errorf("%w: payload %d bytes > %d", ErrTooLarge, plen, maxPayload)
	}
	rest = rest[8:]
	if uint64(len(rest)) < plen+4 {
		return nil, fmt.Errorf("%w: payload section", ErrTruncated)
	}
	payload := rest[:plen]
	pcrc := binary.LittleEndian.Uint32(rest[plen : plen+4])
	if crc32.ChecksumIEEE(payload) != pcrc {
		return nil, fmt.Errorf("%w: payload", ErrChecksum)
	}
	// Copy so the checkpoint does not alias the caller's buffer.
	cp.State = append([]byte(nil), payload...)
	return cp, nil
}

// ReadFrom decodes a checkpoint from a stream, reading section by
// section so the declared payload length is validated against
// maxPayload before any large allocation.
func ReadFrom(r io.Reader, maxPayload int64) (*Checkpoint, error) {
	var pre [8 + 2 + 4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, readErr(err, ErrNotCheckpoint, "preamble")
	}
	if !bytes.Equal(pre[:8], Magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotCheckpoint, pre[:8])
	}
	ver := binary.LittleEndian.Uint16(pre[8:10])
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, ver, Version)
	}
	hlen := int64(binary.LittleEndian.Uint32(pre[10:14]))
	if hlen > maxHeaderLen {
		return nil, fmt.Errorf("%w: header %d bytes > %d", ErrTooLarge, hlen, maxHeaderLen)
	}
	header := make([]byte, hlen+4)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, readErr(err, ErrTruncated, "header")
	}
	hcrc := binary.LittleEndian.Uint32(header[hlen:])
	header = header[:hlen]
	if crc32.ChecksumIEEE(header) != hcrc {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	cp, err := decodeHeader(header)
	if err != nil {
		return nil, err
	}
	var plenBuf [8]byte
	if _, err := io.ReadFull(r, plenBuf[:]); err != nil {
		return nil, readErr(err, ErrTruncated, "payload length")
	}
	plen := binary.LittleEndian.Uint64(plenBuf[:])
	if maxPayload <= 0 || plen > uint64(maxPayload) {
		return nil, fmt.Errorf("%w: payload %d bytes > %d", ErrTooLarge, plen, maxPayload)
	}
	payload := make([]byte, plen+4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, readErr(err, ErrTruncated, "payload")
	}
	pcrc := binary.LittleEndian.Uint32(payload[plen:])
	payload = payload[:plen]
	if crc32.ChecksumIEEE(payload) != pcrc {
		return nil, fmt.Errorf("%w: payload", ErrChecksum)
	}
	cp.State = payload
	return cp, nil
}

func readErr(err error, sentinel error, what string) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %s", sentinel, what)
	}
	return fmt.Errorf("ckpt: read %s: %w", what, err)
}

// WriteTo encodes cp to w and returns the byte count.
func WriteTo(w io.Writer, cp *Checkpoint) (int64, error) {
	data := Encode(cp)
	n, err := w.Write(data)
	return int64(n), err
}

// WriteFile atomically replaces path with the encoded checkpoint:
// temp file in the same directory, fsync, rename, directory fsync. A
// crash at any point leaves either the old complete file or the new
// complete file. Returns the encoded size.
func WriteFile(path string, cp *Checkpoint) (int64, error) {
	data := Encode(cp)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp.*")
	if err != nil {
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) (int64, error) {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	// Durability of the rename itself: fsync the directory. Failure
	// here does not invalidate the (already complete) file contents.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return int64(len(data)), nil
}

// ReadFile reads and decodes the checkpoint at path.
func ReadFile(path string, maxPayload int64) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp, err := ReadFrom(f, maxPayload)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cp, nil
}
