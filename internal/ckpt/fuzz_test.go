package ckpt

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the checkpoint decoder with arbitrary bytes: bit
// flips, truncations, version skew, hostile lengths. The invariant is
// the robustness contract of the format — the decoder never panics,
// never allocates past the declared bound, and anything it does accept
// re-encodes to a decodable checkpoint (no silently half-parsed state).
func FuzzDecode(f *testing.F) {
	// Seed with valid checkpoints from the round-trip shapes...
	cp := sampleCheckpoint()
	f.Add(Encode(cp))
	empty := sampleCheckpoint()
	empty.State = nil
	f.Add(Encode(empty))
	big := sampleCheckpoint()
	big.State = bytes.Repeat([]byte{0xAB}, 4096)
	f.Add(Encode(big))
	// ...and with near-misses the unit tests cover.
	valid := Encode(cp)
	skew := append([]byte(nil), valid...)
	skew[8] = 2
	f.Add(skew)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("GNUMAPCP"))
	f.Add([]byte{})

	const maxPayload = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data, maxPayload)
		if err != nil {
			if cp != nil {
				t.Fatalf("Decode returned non-nil checkpoint alongside error %v", err)
			}
			return
		}
		if int64(len(cp.State)) > maxPayload {
			t.Fatalf("accepted payload of %d bytes past the %d bound", len(cp.State), maxPayload)
		}
		// Anything accepted must round-trip exactly.
		again, err := Decode(Encode(cp), maxPayload)
		if err != nil {
			t.Fatalf("re-decode of accepted checkpoint failed: %v", err)
		}
		if again.Fingerprint != cp.Fingerprint || again.ReadsConsumed != cp.ReadsConsumed ||
			!bytes.Equal(again.State, cp.State) {
			t.Fatalf("re-encode round trip diverged")
		}
		// The streaming decoder must agree with the slice decoder.
		fromStream, err := ReadFrom(bytes.NewReader(data), maxPayload)
		if err != nil {
			t.Fatalf("ReadFrom rejected what Decode accepted: %v", err)
		}
		if fromStream.Fingerprint != cp.Fingerprint || !bytes.Equal(fromStream.State, cp.State) {
			t.Fatalf("ReadFrom and Decode disagree")
		}
	})
}
