package cluster

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultConfig parameterizes deterministic fault injection. All
// probabilities are per-packet in [0, 1]; the seeded RNG makes a given
// (seed, schedule) reproducible, so chaos runs are testable. Heartbeat
// packets are subject to the same faults as data packets — that is the
// point: the failure detector must tolerate a lossy network.
type FaultConfig struct {
	// Seed seeds the fault RNG; runs with the same seed and the same
	// packet schedule inject the same faults.
	Seed int64
	// DropProb silently discards a packet (models loss; senders see
	// success, receivers see nothing — only deadlines recover).
	DropProb float64
	// DupProb delivers a packet twice (models retransmit storms;
	// delivery is at-least-once under duplication).
	DupProb float64
	// ReorderProb holds a packet back and delivers it asynchronously
	// after up to MaxDelay, letting later packets overtake it.
	ReorderProb float64
	// DelayProb stalls the sender inline for up to MaxDelay (models a
	// slow link; per-pair ordering is preserved).
	DelayProb float64
	// MaxDelay bounds both delay kinds (0 = default 2 ms).
	MaxDelay time.Duration
	// CrashRank, when >= 0, permanently kills that rank after it has
	// issued CrashAfterSends successful sends: its further sends fail
	// with ErrCrashed and packets addressed to it vanish.
	CrashRank int
	// CrashAfterSends is the crash trigger point (0 = crashed from the
	// first send attempt).
	CrashAfterSends int
}

// withDefaults normalizes the zero value.
func (c FaultConfig) withDefaults() FaultConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	return c
}

// NewFaultConfig returns a config with no faults enabled and no crash
// rank, ready for selective field setting.
func NewFaultConfig(seed int64) FaultConfig {
	return FaultConfig{Seed: seed, CrashRank: -1}
}

// FaultTransport decorates another Transport with seeded fault
// injection: drops, duplicates, delays, reorders, and rank crashes.
// Faults apply on the send path, modeling an unreliable network between
// well-behaved endpoints.
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	sends   []int64 // successful sends per origin rank
	crashed bool    // CrashRank has died

	// Injected-fault counters, for assertions and operator visibility.
	drops, dups, delays, reorders int64
}

// NewFaultTransport wraps inner for a cluster of size ranks.
func NewFaultTransport(inner Transport, size int, cfg FaultConfig) *FaultTransport {
	return &FaultTransport{
		inner: inner,
		cfg:   cfg.withDefaults(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		sends: make([]int64, size),
	}
}

// Send implements Transport, rolling the fault dice before forwarding.
func (t *FaultTransport) Send(from, to int, p packet, timeout time.Duration) error {
	t.mu.Lock()
	if t.cfg.CrashRank >= 0 && !t.crashed && from == t.cfg.CrashRank &&
		t.sends[from] >= int64(t.cfg.CrashAfterSends) {
		t.crashed = true
	}
	if t.crashed && from == t.cfg.CrashRank {
		t.mu.Unlock()
		return rankErr(from, "send", ErrCrashed)
	}
	if t.crashed && to == t.cfg.CrashRank {
		// The destination process is gone; the network "delivers" into
		// the void.
		t.mu.Unlock()
		return nil
	}
	t.sends[from]++
	roll := t.rng.Float64()
	var delay time.Duration
	mode := "deliver"
	switch {
	case roll < t.cfg.DropProb:
		mode = "drop"
		t.drops++
	case roll < t.cfg.DropProb+t.cfg.DupProb:
		mode = "dup"
		t.dups++
	case roll < t.cfg.DropProb+t.cfg.DupProb+t.cfg.ReorderProb:
		mode = "reorder"
		t.reorders++
		delay = time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay))) + time.Microsecond
	case roll < t.cfg.DropProb+t.cfg.DupProb+t.cfg.ReorderProb+t.cfg.DelayProb:
		mode = "delay"
		t.delays++
		delay = time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay))) + time.Microsecond
	}
	t.mu.Unlock()

	switch mode {
	case "drop":
		return nil
	case "dup":
		if err := t.inner.Send(from, to, p, timeout); err != nil {
			return err
		}
		return t.inner.Send(from, to, p, timeout)
	case "reorder":
		// Deliver asynchronously after a short hold so packets sent in
		// the meantime overtake this one. Delivery errors are dropped:
		// the packet raced transport shutdown, which is a legal loss.
		go func() {
			time.Sleep(delay)
			_ = t.inner.Send(from, to, p, timeout)
		}()
		return nil
	case "delay":
		time.Sleep(delay)
	}
	return t.inner.Send(from, to, p, timeout)
}

// Inbox implements Transport.
func (t *FaultTransport) Inbox(rank int) <-chan packet { return t.inner.Inbox(rank) }

// Done implements Transport.
func (t *FaultTransport) Done() <-chan struct{} { return t.inner.Done() }

// LocalCrashed reports whether fault injection has killed rank: Comm
// uses it to fail a dead rank's receives with ErrCrashed, mirroring
// the sends.
func (t *FaultTransport) LocalCrashed(rank int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashed && rank == t.cfg.CrashRank
}

// Close implements Transport.
func (t *FaultTransport) Close() error { return t.inner.Close() }

// Injected reports how many faults of each kind fired.
func (t *FaultTransport) Injected() (drops, dups, delays, reorders int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops, t.dups, t.delays, t.reorders
}

// ParseFaultSpec parses the CLI chaos spec: a comma-separated list of
// key=value pairs. Keys: seed=<int>, drop=<p>, dup=<p>, reorder=<p>,
// delay=<p>, maxdelay=<duration>, crash=<rank>[@<sends>]. Example:
//
//	seed=42,drop=0.02,dup=0.01,crash=2@100
func ParseFaultSpec(spec string) (FaultConfig, error) {
	cfg := NewFaultConfig(1)
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("cluster: empty chaos spec")
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("cluster: chaos field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			cfg.DropProb, err = parseProb(val)
		case "dup":
			cfg.DupProb, err = parseProb(val)
		case "reorder":
			cfg.ReorderProb, err = parseProb(val)
		case "delay":
			cfg.DelayProb, err = parseProb(val)
		case "maxdelay":
			cfg.MaxDelay, err = time.ParseDuration(val)
		case "crash":
			rank, after, hasAfter := strings.Cut(val, "@")
			cfg.CrashRank, err = strconv.Atoi(rank)
			if err == nil && hasAfter {
				cfg.CrashAfterSends, err = strconv.Atoi(after)
			}
		default:
			return cfg, fmt.Errorf("cluster: unknown chaos key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("cluster: chaos field %q: %w", field, err)
		}
	}
	if p := cfg.DropProb + cfg.DupProb + cfg.ReorderProb + cfg.DelayProb; p > 1 {
		return cfg, fmt.Errorf("cluster: chaos probabilities sum to %v > 1", p)
	}
	return cfg, nil
}

// parseProb parses a probability in [0, 1].
func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}
