package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func transports() []TransportKind { return []TransportKind{Channels, TCP} }

func TestRunValidation(t *testing.T) {
	if err := Run(0, Channels, func(c *Comm) error { return nil }); err == nil {
		t.Error("size 0 accepted")
	}
	if err := Run(2, TransportKind(9), func(c *Comm) error { return nil }); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestTransportKindString(t *testing.T) {
	if Channels.String() != "channels" || TCP.String() != "tcp" {
		t.Error("transport names wrong")
	}
}

func TestSingleRank(t *testing.T) {
	for _, tk := range transports() {
		err := Run(1, tk, func(c *Comm) error {
			if c.Rank() != 0 || c.Size() != 1 {
				return fmt.Errorf("rank/size wrong")
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			v, err := c.Broadcast(0, "hello")
			if err != nil || v.(string) != "hello" {
				return fmt.Errorf("broadcast: %v %v", v, err)
			}
			r, err := c.Allreduce([]float64{1, 2}, SumFloat64s)
			if err != nil {
				return err
			}
			got := r.([]float64)
			if got[0] != 1 || got[1] != 2 {
				return fmt.Errorf("allreduce: %v", got)
			}
			return nil
		})
		if err != nil {
			t.Errorf("%v: %v", tk, err)
		}
	}
}

func TestPointToPoint(t *testing.T) {
	for _, tk := range transports() {
		err := Run(4, tk, func(c *Comm) error {
			// Ring: each rank sends its rank to the next, receives from
			// the previous.
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			if err := c.Send(next, 7, c.Rank()); err != nil {
				return err
			}
			v, err := c.Recv(prev, 7)
			if err != nil {
				return err
			}
			if v.(int) != prev {
				return fmt.Errorf("rank %d got %v from %d", c.Rank(), v, prev)
			}
			return nil
		})
		if err != nil {
			t.Errorf("%v: %v", tk, err)
		}
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	for _, tk := range transports() {
		err := Run(2, tk, func(c *Comm) error {
			if c.Rank() == 0 {
				// Send two tagged messages; receiver asks for them in
				// the opposite order.
				if err := c.Send(1, 1, "first"); err != nil {
					return err
				}
				if err := c.Send(1, 2, "second"); err != nil {
					return err
				}
				return nil
			}
			v2, err := c.Recv(0, 2)
			if err != nil {
				return err
			}
			v1, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if v1.(string) != "first" || v2.(string) != "second" {
				return fmt.Errorf("got %v/%v", v1, v2)
			}
			return nil
		})
		if err != nil {
			t.Errorf("%v: %v", tk, err)
		}
	}
}

func TestSendRecvValidation(t *testing.T) {
	err := Run(2, Channels, func(c *Comm) error {
		if err := c.Send(5, 0, 1); err == nil {
			return fmt.Errorf("send to bad rank accepted")
		}
		if err := c.Send(c.Rank(), 0, 1); err == nil {
			return fmt.Errorf("self-send accepted")
		}
		if err := c.Send((c.Rank()+1)%2, -1, 1); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if _, err := c.Recv(9, 0); err == nil {
			return fmt.Errorf("recv from bad rank accepted")
		}
		if _, err := c.Recv(0, -3); err == nil {
			return fmt.Errorf("negative recv tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	for _, tk := range transports() {
		var before, after int32
		err := Run(4, tk, func(c *Comm) error {
			atomic.AddInt32(&before, 1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if v := atomic.LoadInt32(&before); v != 4 {
				return fmt.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), v)
			}
			atomic.AddInt32(&after, 1)
			return nil
		})
		if err != nil {
			t.Errorf("%v: %v", tk, err)
		}
		if after != 4 {
			t.Errorf("%v: %d ranks finished", tk, after)
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, tk := range transports() {
		err := Run(3, tk, func(c *Comm) error {
			var payload any
			if c.Rank() == 1 {
				payload = []float64{3, 1, 4}
			}
			v, err := c.Broadcast(1, payload)
			if err != nil {
				return err
			}
			got := v.([]float64)
			if len(got) != 3 || got[0] != 3 || got[2] != 4 {
				return fmt.Errorf("rank %d broadcast = %v", c.Rank(), got)
			}
			// Successive collectives must not cross-match.
			v2, err := c.Broadcast(0, func() any {
				if c.Rank() == 0 {
					return "round2"
				}
				return nil
			}())
			if err != nil || v2.(string) != "round2" {
				return fmt.Errorf("second broadcast: %v %v", v2, err)
			}
			return nil
		})
		if err != nil {
			t.Errorf("%v: %v", tk, err)
		}
	}
}

func TestBroadcastValidation(t *testing.T) {
	err := Run(2, Channels, func(c *Comm) error {
		if _, err := c.Broadcast(5, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestGatherScatter(t *testing.T) {
	for _, tk := range transports() {
		err := Run(4, tk, func(c *Comm) error {
			vals, err := c.Gather(2, c.Rank()*10)
			if err != nil {
				return err
			}
			if c.Rank() == 2 {
				for r := 0; r < 4; r++ {
					if vals[r].(int) != r*10 {
						return fmt.Errorf("gather[%d] = %v", r, vals[r])
					}
				}
			} else if vals != nil {
				return fmt.Errorf("non-root got gather result")
			}
			var parts []any
			if c.Rank() == 0 {
				parts = []any{"p0", "p1", "p2", "p3"}
			}
			mine, err := c.Scatter(0, parts)
			if err != nil {
				return err
			}
			if mine.(string) != fmt.Sprintf("p%d", c.Rank()) {
				return fmt.Errorf("scatter gave %v to rank %d", mine, c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Errorf("%v: %v", tk, err)
		}
	}
}

func TestScatterValidation(t *testing.T) {
	err := Run(2, Channels, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, []any{"only-one"}); err == nil {
				return fmt.Errorf("wrong part count accepted")
			}
			// Unblock peer: it is waiting in its Scatter recv; send it
			// the matching collective tag via a real scatter.
			_, err := c.Scatter(0, []any{"a", "b"})
			return err
		}
		// First scatter fails at root before sending, so the second
		// scatter's tag must be what this rank waits for. Consume the
		// failed collective's tag slot to stay in SPMD sync.
		c.nextCollTag()
		v, err := c.Scatter(0, nil)
		if err != nil {
			return err
		}
		if v.(string) != "b" {
			return fmt.Errorf("got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, tk := range transports() {
		err := Run(4, tk, func(c *Comm) error {
			mine := []float64{float64(c.Rank()), 1}
			v, err := c.Reduce(0, mine, SumFloat64s)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got := v.([]float64)
				if got[0] != 6 || got[1] != 4 {
					return fmt.Errorf("reduce = %v", got)
				}
			}
			// Allreduce == Reduce + Broadcast (the algebra property).
			all, err := c.Allreduce(mine, SumFloat64s)
			if err != nil {
				return err
			}
			got := all.([]float64)
			if got[0] != 6 || got[1] != 4 {
				return fmt.Errorf("allreduce at rank %d = %v", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Errorf("%v: %v", tk, err)
		}
	}
}

func TestSumFloat32s(t *testing.T) {
	v, err := SumFloat32s([]float32{1, 2}, []float32{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	got := v.([]float32)
	if got[0] != 4 || got[1] != 6 {
		t.Errorf("sum = %v", got)
	}
	if _, err := SumFloat32s([]float32{1}, []float32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SumFloat32s("x", []float32{1}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := SumFloat64s([]float64{1}, 3); err == nil {
		t.Error("float64 type mismatch accepted")
	}
}

func TestNodeErrorPropagates(t *testing.T) {
	for _, tk := range transports() {
		sentinel := errors.New("node 2 exploded")
		err := Run(3, tk, func(c *Comm) error {
			if c.Rank() == 2 {
				return sentinel
			}
			// These ranks block in a barrier that can never complete;
			// the teardown must unblock them with an error.
			err := c.Barrier()
			if err == nil {
				return fmt.Errorf("barrier succeeded despite dead peer")
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("%v: err = %v, want sentinel", tk, err)
		}
	}
}

func TestLargePayloadTCP(t *testing.T) {
	// A NORM-accumulator-sized float32 slice across real sockets.
	big := make([]float32, 1<<20) // 4 MiB
	for i := range big {
		big[i] = float32(i % 1000)
	}
	err := Run(2, TCP, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, big)
		}
		v, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		got := v.([]float32)
		if len(got) != len(big) {
			return fmt.Errorf("len %d", len(got))
		}
		for i := 0; i < len(got); i += 100000 {
			if math.Abs(float64(got[i]-big[i])) > 0 {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestManyRanksChannels(t *testing.T) {
	err := Run(16, Channels, func(c *Comm) error {
		v, err := c.Allreduce([]float64{1}, SumFloat64s)
		if err != nil {
			return err
		}
		if v.([]float64)[0] != 16 {
			return fmt.Errorf("allreduce = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestMaxFloat64s(t *testing.T) {
	v, err := MaxFloat64s([]float64{1, 9, -3}, []float64{4, 2, -1})
	if err != nil {
		t.Fatal(err)
	}
	got := v.([]float64)
	if got[0] != 4 || got[1] != 9 || got[2] != -1 {
		t.Errorf("max = %v", got)
	}
	if _, err := MaxFloat64s([]float64{1}, "x"); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestReduceTreeMatchesLinear(t *testing.T) {
	for _, tk := range transports() {
		for _, size := range []int{1, 2, 3, 4, 5, 8} {
			for root := 0; root < size; root += 2 {
				err := Run(size, tk, func(c *Comm) error {
					mine := []float64{float64(c.Rank() + 1), 2}
					linear, err := c.Reduce(root, mine, SumFloat64s)
					if err != nil {
						return err
					}
					tree, err := c.ReduceTree(root, mine, SumFloat64s)
					if err != nil {
						return err
					}
					if c.Rank() == root {
						lv, tv := linear.([]float64), tree.([]float64)
						if lv[0] != tv[0] || lv[1] != tv[1] {
							return fmt.Errorf("tree %v != linear %v", tv, lv)
						}
						wantSum := float64(size*(size+1)) / 2
						if tv[0] != wantSum {
							return fmt.Errorf("tree sum %v, want %v", tv[0], wantSum)
						}
					} else if tree != nil {
						return fmt.Errorf("non-root got a tree-reduce result")
					}
					return nil
				})
				if err != nil {
					t.Fatalf("%v size=%d root=%d: %v", tk, size, root, err)
				}
			}
		}
	}
}

func TestAllreduceTree(t *testing.T) {
	err := Run(6, Channels, func(c *Comm) error {
		v, err := c.AllreduceTree([]float64{1}, SumFloat64s)
		if err != nil {
			return err
		}
		if v.([]float64)[0] != 6 {
			return fmt.Errorf("allreduce tree = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestReduceTreeValidation(t *testing.T) {
	err := Run(2, Channels, func(c *Comm) error {
		if _, err := c.ReduceTree(9, 1, SumFloat64s); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}
