package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// defaultMaxFrame bounds a single TCP message; genome-state reductions
// on laptop-scale references fit comfortably, and anything larger is
// almost certainly a corrupt length prefix — the reader rejects it
// instead of allocating unbounded memory.
const defaultMaxFrame = 1 << 30

// Defaults for dial hardening: transient listen/accept races on a busy
// host resolve well within a few backoff rounds.
const (
	defaultDialAttempts = 5
	defaultDialBackoff  = 20 * time.Millisecond
)

// TCPConfig tunes transport hardening. The zero value picks safe
// defaults (5 dial attempts with 20 ms exponential backoff + jitter,
// 1 GiB max frame, no idle read deadline).
type TCPConfig struct {
	// DialAttempts is the number of connection attempts per peer
	// before giving up (0 = default 5).
	DialAttempts int
	// DialBackoff is the base backoff between attempts; attempt i
	// sleeps DialBackoff<<i plus up to DialBackoff of jitter
	// (0 = default 20 ms).
	DialBackoff time.Duration
	// ReadTimeout, when > 0, is applied as a read deadline on every
	// frame read. An idle timeout (no bytes arrived) keeps the reader
	// polling; a mid-frame stall tears the connection down.
	ReadTimeout time.Duration
	// MaxFrame bounds one message's payload (0 = default 1 GiB).
	// Length prefixes above it are treated as corruption.
	MaxFrame int
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialAttempts <= 0 {
		c.DialAttempts = defaultDialAttempts
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = defaultDialBackoff
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = defaultMaxFrame
	}
	return c
}

// TCPTransport connects size ranks over loopback TCP with a full mesh
// of connections. Each rank owns one endpoint per peer: rank i's
// traffic to rank j is written on endpoint[i][j] and arrives at rank
// j's endpoint[j][i]. Frames are length-prefixed:
//
//	uint32 from | uint32 tag (two's complement) | uint32 len | len bytes
//
// A reader goroutine per endpoint routes inbound frames to the owning
// rank's inbox channel.
type TCPTransport struct {
	size    int
	cfg     TCPConfig
	inboxes []chan packet
	// endpoint[i][j] is the conn rank i uses to reach rank j.
	endpoint [][]net.Conn
	sendMu   [][]sync.Mutex
	closed   chan struct{}
	once     sync.Once
	wg       sync.WaitGroup

	dialRetries  atomic.Int64
	frameRejects atomic.Int64
}

// NewTCPTransport builds the full mesh on 127.0.0.1 ephemeral ports
// with default hardening.
func NewTCPTransport(size int) (*TCPTransport, error) {
	return NewTCPTransportConfig(size, TCPConfig{})
}

// NewTCPTransportConfig builds the mesh with explicit hardening knobs.
func NewTCPTransportConfig(size int, cfg TCPConfig) (*TCPTransport, error) {
	if size <= 0 {
		return nil, fmt.Errorf("cluster: tcp size %d", size)
	}
	t := &TCPTransport{
		size:     size,
		cfg:      cfg.withDefaults(),
		inboxes:  make([]chan packet, size),
		endpoint: make([][]net.Conn, size),
		sendMu:   make([][]sync.Mutex, size),
		closed:   make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		t.inboxes[i] = make(chan packet, inboxDepth)
		t.endpoint[i] = make([]net.Conn, size)
		t.sendMu[i] = make([]sync.Mutex, size)
	}
	if size == 1 {
		return t, nil
	}
	// One listener per rank; every higher rank dials every lower rank
	// and announces itself with a 4-byte rank header.
	listeners := make([]net.Listener, size)
	for i := 0; i < size; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners {
				if l != nil {
					l.Close()
				}
			}
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		listeners[i] = ln
	}
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()

	var mu sync.Mutex
	var firstErr error
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	// Acceptors: rank j accepts size-1-j connections (from ranks > j).
	for j := 0; j < size-1; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for k := 0; k < size-1-j; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					record(fmt.Errorf("cluster: accept at rank %d: %w", j, err))
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					record(fmt.Errorf("cluster: handshake at rank %d: %w", j, err))
					return
				}
				peer := int(binary.BigEndian.Uint32(hdr[:]))
				if peer <= j || peer >= size {
					record(fmt.Errorf("cluster: bogus handshake rank %d at %d", peer, j))
					return
				}
				mu.Lock()
				t.endpoint[j][peer] = conn
				mu.Unlock()
			}
		}(j)
	}
	// Dialers: rank i dials every lower rank j, retrying with backoff.
	for i := 1; i < size; i++ {
		for j := 0; j < i; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				conn, err := dialRetry(listeners[j].Addr().String(), t.cfg.DialAttempts, t.cfg.DialBackoff, &t.dialRetries)
				if err != nil {
					record(fmt.Errorf("cluster: dial %d->%d: %w", i, j, err))
					return
				}
				var hdr [4]byte
				binary.BigEndian.PutUint32(hdr[:], uint32(i))
				if _, err := conn.Write(hdr[:]); err != nil {
					record(fmt.Errorf("cluster: handshake %d->%d: %w", i, j, err))
					return
				}
				mu.Lock()
				t.endpoint[i][j] = conn
				mu.Unlock()
			}(i, j)
		}
	}
	wg.Wait()
	if firstErr != nil {
		t.Close()
		return nil, firstErr
	}
	for a := 0; a < size; a++ {
		for b := 0; b < size; b++ {
			if a != b && t.endpoint[a][b] == nil {
				t.Close()
				return nil, fmt.Errorf("cluster: mesh incomplete at (%d,%d)", a, b)
			}
		}
	}
	// One reader per endpoint: everything read there belongs to rank a.
	for a := 0; a < size; a++ {
		for b := 0; b < size; b++ {
			if a == b {
				continue
			}
			t.wg.Add(1)
			go t.readLoop(t.endpoint[a][b], a)
		}
	}
	return t, nil
}

// dialRetry dials addr up to attempts times with exponential backoff
// plus jitter, counting retries (not first attempts) into counter.
func dialRetry(addr string, attempts int, backoff time.Duration, counter *atomic.Int64) (net.Conn, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			counter.Add(1)
			sleep := backoff<<(a-1) + time.Duration(rand.Int63n(int64(backoff)))
			time.Sleep(sleep)
		}
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: dial %s failed after %d attempts: %w", addr, attempts, lastErr)
}

// parseFrameHeader decodes the 12-byte frame header and validates the
// length against limit; a prefix above limit is treated as corruption.
func parseFrameHeader(hdr []byte, limit int) (from, tag int, n uint32, err error) {
	from = int(int32(binary.BigEndian.Uint32(hdr[0:4])))
	tag = int(int32(binary.BigEndian.Uint32(hdr[4:8])))
	n = binary.BigEndian.Uint32(hdr[8:12])
	if int64(n) > int64(limit) {
		return 0, 0, 0, fmt.Errorf("cluster: frame of %d bytes (limit %d): %w", n, limit, ErrFrameTooLarge)
	}
	return from, tag, n, nil
}

// isTimeout reports whether err is a network read/write deadline miss.
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// readLoop parses frames arriving at owner's endpoint and delivers them
// to owner's inbox.
func (t *TCPTransport) readLoop(conn net.Conn, owner int) {
	defer t.wg.Done()
	for {
		if t.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(t.cfg.ReadTimeout))
		}
		var hdr [12]byte
		if n, err := io.ReadFull(conn, hdr[:]); err != nil {
			// An idle deadline miss (no bytes at all) is just a quiet
			// link: keep polling unless we are shutting down. A partial
			// header or any other error means the stream is broken.
			if n == 0 && isTimeout(err) {
				select {
				case <-t.closed:
					return
				default:
					continue
				}
			}
			return
		}
		from, tag, n, err := parseFrameHeader(hdr[:], t.cfg.MaxFrame)
		if err != nil {
			t.frameRejects.Add(1)
			return
		}
		data := make([]byte, n)
		if t.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(t.cfg.ReadTimeout))
		}
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		select {
		case t.inboxes[owner] <- packet{From: from, Tag: tag, Data: data}:
		case <-t.closed:
			return
		}
	}
}

// Send implements Transport. With timeout > 0 the socket writes run
// under a write deadline.
func (t *TCPTransport) Send(from, to int, p packet, timeout time.Duration) error {
	if to < 0 || to >= t.size || from < 0 || from >= t.size || from == to {
		return fmt.Errorf("cluster: tcp send %d->%d of %d", from, to, t.size)
	}
	if len(p.Data) > t.cfg.MaxFrame {
		return fmt.Errorf("cluster: send of %d bytes (limit %d): %w", len(p.Data), t.cfg.MaxFrame, ErrFrameTooLarge)
	}
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	conn := t.endpoint[from][to]
	if conn == nil {
		return fmt.Errorf("cluster: no connection %d->%d", from, to)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(int32(p.From)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(p.Tag)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(p.Data)))
	t.sendMu[from][to].Lock()
	defer t.sendMu[from][to].Unlock()
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	if _, err := conn.Write(hdr[:]); err != nil {
		if isTimeout(err) {
			return fmt.Errorf("cluster: tcp write: %w", ErrTimeout)
		}
		return fmt.Errorf("cluster: tcp write: %w", err)
	}
	if _, err := conn.Write(p.Data); err != nil {
		if isTimeout(err) {
			return fmt.Errorf("cluster: tcp write: %w", ErrTimeout)
		}
		return fmt.Errorf("cluster: tcp write: %w", err)
	}
	return nil
}

// Inbox implements Transport.
func (t *TCPTransport) Inbox(rank int) <-chan packet { return t.inboxes[rank] }

// Done implements Transport.
func (t *TCPTransport) Done() <-chan struct{} { return t.closed }

// DialRetries reports how many dial attempts beyond the first were
// needed to build the mesh.
func (t *TCPTransport) DialRetries() int64 { return t.dialRetries.Load() }

// FrameRejects reports how many inbound frames were rejected for
// exceeding MaxFrame (corrupt length prefixes).
func (t *TCPTransport) FrameRejects() int64 { return t.frameRejects.Load() }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		for a := range t.endpoint {
			for b := range t.endpoint[a] {
				if c := t.endpoint[a][b]; c != nil {
					c.Close()
				}
			}
		}
		t.wg.Wait()
		for _, ch := range t.inboxes {
			close(ch)
		}
	})
	return nil
}
