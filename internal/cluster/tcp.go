package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrame bounds a single TCP message; genome-state reductions on
// laptop-scale references fit comfortably, and anything larger is
// almost certainly a bug.
const maxFrame = 1 << 30

// TCPTransport connects size ranks over loopback TCP with a full mesh
// of connections. Each rank owns one endpoint per peer: rank i's
// traffic to rank j is written on endpoint[i][j] and arrives at rank
// j's endpoint[j][i]. Frames are length-prefixed:
//
//	uint32 from | uint32 tag (two's complement) | uint32 len | len bytes
//
// A reader goroutine per endpoint routes inbound frames to the owning
// rank's inbox channel.
type TCPTransport struct {
	size    int
	inboxes []chan packet
	// endpoint[i][j] is the conn rank i uses to reach rank j.
	endpoint [][]net.Conn
	sendMu   [][]sync.Mutex
	closed   chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
}

// NewTCPTransport builds the full mesh on 127.0.0.1 ephemeral ports.
func NewTCPTransport(size int) (*TCPTransport, error) {
	if size <= 0 {
		return nil, fmt.Errorf("cluster: tcp size %d", size)
	}
	t := &TCPTransport{
		size:     size,
		inboxes:  make([]chan packet, size),
		endpoint: make([][]net.Conn, size),
		sendMu:   make([][]sync.Mutex, size),
		closed:   make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		t.inboxes[i] = make(chan packet, inboxDepth)
		t.endpoint[i] = make([]net.Conn, size)
		t.sendMu[i] = make([]sync.Mutex, size)
	}
	if size == 1 {
		return t, nil
	}
	// One listener per rank; every higher rank dials every lower rank
	// and announces itself with a 4-byte rank header.
	listeners := make([]net.Listener, size)
	for i := 0; i < size; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners {
				if l != nil {
					l.Close()
				}
			}
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		listeners[i] = ln
	}
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()

	var mu sync.Mutex
	var firstErr error
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	// Acceptors: rank j accepts size-1-j connections (from ranks > j).
	for j := 0; j < size-1; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for k := 0; k < size-1-j; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					record(fmt.Errorf("cluster: accept at rank %d: %w", j, err))
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					record(fmt.Errorf("cluster: handshake at rank %d: %w", j, err))
					return
				}
				peer := int(binary.BigEndian.Uint32(hdr[:]))
				if peer <= j || peer >= size {
					record(fmt.Errorf("cluster: bogus handshake rank %d at %d", peer, j))
					return
				}
				mu.Lock()
				t.endpoint[j][peer] = conn
				mu.Unlock()
			}
		}(j)
	}
	// Dialers: rank i dials every lower rank j.
	for i := 1; i < size; i++ {
		for j := 0; j < i; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", listeners[j].Addr().String())
				if err != nil {
					record(fmt.Errorf("cluster: dial %d->%d: %w", i, j, err))
					return
				}
				var hdr [4]byte
				binary.BigEndian.PutUint32(hdr[:], uint32(i))
				if _, err := conn.Write(hdr[:]); err != nil {
					record(fmt.Errorf("cluster: handshake %d->%d: %w", i, j, err))
					return
				}
				mu.Lock()
				t.endpoint[i][j] = conn
				mu.Unlock()
			}(i, j)
		}
	}
	wg.Wait()
	if firstErr != nil {
		t.Close()
		return nil, firstErr
	}
	for a := 0; a < size; a++ {
		for b := 0; b < size; b++ {
			if a != b && t.endpoint[a][b] == nil {
				t.Close()
				return nil, fmt.Errorf("cluster: mesh incomplete at (%d,%d)", a, b)
			}
		}
	}
	// One reader per endpoint: everything read there belongs to rank a.
	for a := 0; a < size; a++ {
		for b := 0; b < size; b++ {
			if a == b {
				continue
			}
			t.wg.Add(1)
			go t.readLoop(t.endpoint[a][b], a)
		}
	}
	return t, nil
}

// readLoop parses frames arriving at owner's endpoint and delivers them
// to owner's inbox.
func (t *TCPTransport) readLoop(conn net.Conn, owner int) {
	defer t.wg.Done()
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		from := int(int32(binary.BigEndian.Uint32(hdr[0:4])))
		tag := int(int32(binary.BigEndian.Uint32(hdr[4:8])))
		n := binary.BigEndian.Uint32(hdr[8:12])
		if n > maxFrame {
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		select {
		case t.inboxes[owner] <- packet{From: from, Tag: tag, Data: data}:
		case <-t.closed:
			return
		}
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(from, to int, p packet) error {
	if to < 0 || to >= t.size || from < 0 || from >= t.size || from == to {
		return fmt.Errorf("cluster: tcp send %d->%d of %d", from, to, t.size)
	}
	select {
	case <-t.closed:
		return fmt.Errorf("cluster: transport closed")
	default:
	}
	conn := t.endpoint[from][to]
	if conn == nil {
		return fmt.Errorf("cluster: no connection %d->%d", from, to)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(int32(p.From)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(p.Tag)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(p.Data)))
	t.sendMu[from][to].Lock()
	defer t.sendMu[from][to].Unlock()
	if _, err := conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: tcp write: %w", err)
	}
	if _, err := conn.Write(p.Data); err != nil {
		return fmt.Errorf("cluster: tcp write: %w", err)
	}
	return nil
}

// Inbox implements Transport.
func (t *TCPTransport) Inbox(rank int) <-chan packet { return t.inboxes[rank] }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		for a := range t.endpoint {
			for b := range t.endpoint[a] {
				if c := t.endpoint[a][b]; c != nil {
					c.Close()
				}
			}
		}
		t.wg.Wait()
		for _, ch := range t.inboxes {
			close(ch)
		}
	})
	return nil
}
