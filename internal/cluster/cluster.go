// Package cluster is the message-passing substrate standing in for MPI
// (paper §VI Step 1). It provides rank-addressed point-to-point
// messaging plus the collectives GNUMAP-SNP's two parallel modes need
// (Barrier, Broadcast, Gather, Scatter, Reduce, Allreduce), over two
// interchangeable transports:
//
//   - ChannelTransport: goroutine "nodes" exchanging serialized
//     messages over Go channels — the default for experiments.
//   - TCPTransport: the same node program communicating over real
//     loopback TCP sockets with length-framed messages, exercising a
//     genuine network stack (serialization, framing, kernel buffers).
//
// Payloads are gob-serialized in both transports, so the communication
// volume — the quantity that differentiates the paper's read-split and
// genome-split modes — is identical across transports. Common payload
// types are registered in init; callers register their own structs with
// gob.Register.
//
// The programming model is SPMD, as with MPI: Run launches one copy of
// the node function per rank, and every rank must execute the same
// sequence of collective operations.
//
// # Fault tolerance
//
// RunWithConfig layers a fault model on top: an op timeout turns every
// blocking Send/Recv/collective into a bounded wait that fails with a
// typed *RankError instead of deadlocking; a heartbeat interval starts
// a per-rank heartbeater feeding a last-seen failure detector
// (Alive/DeadRanks); and a FaultConfig wraps the transport in a seeded
// FaultTransport injecting drops, duplicates, delays, reorders, and
// rank crashes. A node function returning an error wrapping ErrCrashed
// is treated as a simulated process death: the run continues without it
// rather than tearing the transport down, so coordinators can detect
// the loss and degrade gracefully.
package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnumap/internal/obs"
)

func init() {
	gob.Register([]float64{})
	gob.Register([]float32{})
	gob.Register([]int{})
	gob.Register([]int32{})
	gob.Register([5]float64{})
	gob.Register([][5]float64{})
	gob.Register(map[int]float64{})
	gob.Register("")
	gob.Register(0)
	gob.Register(int64(0))
	gob.Register(0.0)
	gob.Register(false)
}

// packet is the wire unit.
type packet struct {
	From int
	Tag  int
	Data []byte
}

// hbTag marks heartbeat packets. It sits far below any collective tag
// (collectives count down from -1) so the two can never collide; recv
// consumes heartbeats as liveness evidence instead of queueing them.
const hbTag = -1 << 30

// maxPending bounds the out-of-order pending queue; beyond it the
// receiver is matching against tags that will never arrive (or a
// duplication storm is underway) and failing beats exhausting memory.
const maxPending = 1 << 16

// Transport moves packets between ranks.
type Transport interface {
	// Send delivers a packet from rank `from` to rank `to`. It may
	// block for backpressure but must not drop packets (fault-injecting
	// decorators excepted). A timeout > 0 bounds the blocking; 0 means
	// wait indefinitely.
	Send(from, to int, p packet, timeout time.Duration) error
	// Inbox returns the receive channel of a rank.
	Inbox(rank int) <-chan packet
	// Done is closed when the transport shuts down; receivers select
	// on it alongside their inbox. Inboxes with concurrent senders
	// cannot be closed safely, so shutdown is signalled here instead.
	Done() <-chan struct{}
	// Close tears the transport down, unblocking all receivers.
	Close() error
}

// CommStats is a snapshot of one rank's communication counters.
type CommStats struct {
	// SentTo / RecvFrom count data packets exchanged with each peer
	// rank (heartbeats excluded from RecvFrom's matching but counted
	// in HeartbeatsSeen).
	SentTo, RecvFrom []int64
	// Retries counts deadline-extension rounds granted because the
	// peer's heartbeats showed it alive.
	Retries int64
	// Timeouts counts operations that failed with ErrTimeout.
	Timeouts int64
	// HeartbeatsSent / HeartbeatsSeen count heartbeat traffic.
	HeartbeatsSent, HeartbeatsSeen int64
}

// Comm is one rank's endpoint, analogous to an MPI communicator.
type Comm struct {
	rank, size int
	tr         Transport
	// pending holds packets received while waiting for a different
	// (from, tag) match.
	pending []packet
	// collSeq numbers collective operations so that consecutive
	// collectives cannot cross-match; SPMD execution keeps it in sync
	// across ranks.
	collSeq int

	// opTimeout bounds every blocking operation (0 = wait forever).
	opTimeout time.Duration
	// hbInterval is the heartbeat period (0 = no failure detection).
	hbInterval time.Duration
	// lastSeen[r] is the unix-nano arrival time of the latest packet
	// from rank r (heartbeat or data). Written from the recv path and
	// the heartbeater's start; atomic for safety.
	lastSeen []atomic.Int64
	hbStop   chan struct{}
	hbDone   chan struct{}

	sentTo   []atomic.Int64
	recvFrom []atomic.Int64
	retries  atomic.Int64
	timeouts atomic.Int64
	hbSent   atomic.Int64
	hbSeen   atomic.Int64

	// met holds the observability handles installed by SetMetrics (nil
	// = instrumentation off; the messaging paths pay one pointer check).
	met *commMetrics
}

// commMetrics pre-resolves the point-to-point handles (hot path) and
// keeps the registry for the per-collective timers (cold path).
type commMetrics struct {
	reg       *obs.Registry
	sendSec   *obs.Histogram
	recvSec   *obs.Histogram
	sendBytes *obs.Counter
	recvBytes *obs.Counter
	sendCount *obs.Counter
	recvCount *obs.Counter
}

// SetMetrics installs a metrics registry on this endpoint. Point-to-
// point traffic records comm.send.seconds / comm.recv.seconds latency
// histograms and comm.send.bytes / comm.recv.bytes / comm.send.count /
// comm.recv.count counters; each collective records a wall-time
// histogram comm.coll.<name>.seconds. Pass nil to disable.
func (c *Comm) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		c.met = nil
		return
	}
	c.met = &commMetrics{
		reg:       reg,
		sendSec:   reg.Timer("comm.send.seconds"),
		recvSec:   reg.Timer("comm.recv.seconds"),
		sendBytes: reg.Counter("comm.send.bytes"),
		recvBytes: reg.Counter("comm.recv.bytes"),
		sendCount: reg.Counter("comm.send.count"),
		recvCount: reg.Counter("comm.recv.count"),
	}
}

// collTimer returns a stop func timing one collective (no-op when
// instrumentation is off). Collectives are per-batch, not per-message,
// so the registry lookup here is off the hot path.
func (c *Comm) collTimer(name string) func() {
	if c.met == nil {
		return func() {}
	}
	return c.met.reg.StartTimer("comm.coll." + name + ".seconds")
}

// PublishStats bridges the CommStats counters into the installed
// registry as gauges (comm.retries, comm.timeouts, comm.heartbeats.*,
// comm.packets.*), so a snapshot carries the full communication
// picture. Call once per rank, just before snapshotting.
func (c *Comm) PublishStats() {
	if c.met == nil {
		return
	}
	st := c.Stats()
	var sent, recvd int64
	for r := 0; r < c.size; r++ {
		sent += st.SentTo[r]
		recvd += st.RecvFrom[r]
	}
	reg := c.met.reg
	reg.Gauge("comm.packets.sent").Set(float64(sent))
	reg.Gauge("comm.packets.recv").Set(float64(recvd))
	reg.Gauge("comm.retries").Set(float64(st.Retries))
	reg.Gauge("comm.timeouts").Set(float64(st.Timeouts))
	reg.Gauge("comm.heartbeats.sent").Set(float64(st.HeartbeatsSent))
	reg.Gauge("comm.heartbeats.seen").Set(float64(st.HeartbeatsSeen))
}

// newComm builds a rank endpoint with the run's fault-model settings.
func newComm(rank, size int, tr Transport, opTimeout, hbInterval time.Duration) *Comm {
	c := &Comm{
		rank: rank, size: size, tr: tr,
		opTimeout:  opTimeout,
		hbInterval: hbInterval,
		lastSeen:   make([]atomic.Int64, size),
		sentTo:     make([]atomic.Int64, size),
		recvFrom:   make([]atomic.Int64, size),
	}
	now := time.Now().UnixNano()
	for r := range c.lastSeen {
		c.lastSeen[r].Store(now)
	}
	return c
}

// Rank returns this node's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// OpTimeout returns the configured per-operation deadline (0 = none).
func (c *Comm) OpTimeout() time.Duration { return c.opTimeout }

// HeartbeatInterval returns the heartbeat period (0 = detection off).
func (c *Comm) HeartbeatInterval() time.Duration { return c.hbInterval }

// Stats snapshots this rank's communication counters.
func (c *Comm) Stats() CommStats {
	st := CommStats{
		SentTo:         make([]int64, c.size),
		RecvFrom:       make([]int64, c.size),
		Retries:        c.retries.Load(),
		Timeouts:       c.timeouts.Load(),
		HeartbeatsSent: c.hbSent.Load(),
		HeartbeatsSeen: c.hbSeen.Load(),
	}
	for r := 0; r < c.size; r++ {
		st.SentTo[r] = c.sentTo[r].Load()
		st.RecvFrom[r] = c.recvFrom[r].Load()
	}
	return st
}

// noteSeen records liveness evidence from rank r.
func (c *Comm) noteSeen(r int) {
	if r >= 0 && r < c.size {
		c.lastSeen[r].Store(time.Now().UnixNano())
	}
}

// Alive reports whether rank r's heartbeats (or any traffic) have been
// seen recently. Without a heartbeat interval there is no evidence
// either way and every rank is presumed alive.
func (c *Comm) Alive(r int) bool {
	if c.hbInterval <= 0 || r == c.rank {
		return true
	}
	staleAfter := 4 * c.hbInterval
	return time.Now().UnixNano()-c.lastSeen[r].Load() < int64(staleAfter)
}

// DeadRanks lists peers the failure detector currently considers dead.
func (c *Comm) DeadRanks() []int {
	var dead []int
	for r := 0; r < c.size; r++ {
		if r != c.rank && !c.Alive(r) {
			dead = append(dead, r)
		}
	}
	return dead
}

// startHeartbeat launches the heartbeater; stopHeartbeat must be called
// before the node function returns.
func (c *Comm) startHeartbeat() {
	if c.hbInterval <= 0 || c.size == 1 {
		return
	}
	c.hbStop = make(chan struct{})
	c.hbDone = make(chan struct{})
	go func() {
		defer close(c.hbDone)
		ticker := time.NewTicker(c.hbInterval)
		defer ticker.Stop()
		for {
			select {
			case <-c.hbStop:
				return
			case <-ticker.C:
				for r := 0; r < c.size; r++ {
					if r == c.rank {
						continue
					}
					// Failures here are the failure detector's business,
					// not ours: a dead link shows up as missed beats at
					// the peer.
					if c.tr.Send(c.rank, r, packet{From: c.rank, Tag: hbTag}, c.hbInterval) == nil {
						c.hbSent.Add(1)
					}
				}
			}
		}
	}()
}

// stopHeartbeat halts the heartbeater and waits it out.
func (c *Comm) stopHeartbeat() {
	if c.hbStop != nil {
		close(c.hbStop)
		<-c.hbDone
		c.hbStop = nil
	}
}

// encode gob-serializes a payload (as interface, so concrete type
// information travels with it).
func encode(payload any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&payload); err != nil {
		return nil, fmt.Errorf("cluster: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decode reverses encode.
func decode(data []byte) (any, error) {
	var payload any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("cluster: decode: %w", err)
	}
	return payload, nil
}

// Send transmits payload to rank `to` with a non-negative user tag.
func (c *Comm) Send(to, tag int, payload any) error {
	if tag < 0 {
		return fmt.Errorf("cluster: negative tags are reserved for collectives")
	}
	return c.send(to, tag, payload, "send")
}

func (c *Comm) send(to, tag int, payload any, op string) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("cluster: send to rank %d of %d", to, c.size)
	}
	if to == c.rank {
		return fmt.Errorf("cluster: rank %d sending to itself", c.rank)
	}
	var t0 time.Time
	if c.met != nil {
		t0 = time.Now()
	}
	data, err := encode(payload)
	if err != nil {
		return rankErr(to, op, err)
	}
	if err := c.tr.Send(c.rank, to, packet{From: c.rank, Tag: tag, Data: data}, c.opTimeout); err != nil {
		if errors.Is(err, ErrTimeout) {
			c.timeouts.Add(1)
		}
		return rankErr(to, op, err)
	}
	c.sentTo[to].Add(1)
	if c.met != nil {
		c.met.sendSec.ObserveDuration(time.Since(t0))
		c.met.sendBytes.Add(int64(len(data)))
		c.met.sendCount.Inc()
	}
	return nil
}

// Recv blocks until a message with the given sender and non-negative
// user tag arrives and returns its payload. With an op timeout
// configured, waiting is bounded and failure is a *RankError wrapping
// ErrTimeout.
func (c *Comm) Recv(from, tag int) (any, error) {
	if tag < 0 {
		return nil, fmt.Errorf("cluster: negative tags are reserved for collectives")
	}
	return c.recv(from, tag, "recv")
}

// RecvTimeout is Recv with an explicit deadline overriding the
// configured op timeout (0 = wait forever).
func (c *Comm) RecvTimeout(from, tag int, timeout time.Duration) (any, error) {
	if tag < 0 {
		return nil, fmt.Errorf("cluster: negative tags are reserved for collectives")
	}
	return c.recvTimeout(from, tag, timeout, "recv")
}

func (c *Comm) recv(from, tag int, op string) (any, error) {
	return c.recvTimeout(from, tag, c.opTimeout, op)
}

// localCrashed reports whether fault injection has killed this rank:
// a dead process can neither send nor receive.
func (c *Comm) localCrashed() bool {
	if cc, ok := c.tr.(interface{ LocalCrashed(rank int) bool }); ok {
		return cc.LocalCrashed(c.rank)
	}
	return false
}

// recvTimeout is the matching engine behind every receive: scan the
// pending queue, then drain the inbox — consuming heartbeats as
// liveness evidence, queueing non-matching packets (bounded), and
// returning a typed error on deadline or teardown.
func (c *Comm) recvTimeout(from, tag int, timeout time.Duration, op string) (any, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("cluster: recv from rank %d of %d", from, c.size)
	}
	if c.localCrashed() {
		return nil, rankErr(c.rank, op, ErrCrashed)
	}
	var t0 time.Time
	if c.met != nil {
		t0 = time.Now()
	}
	for i, p := range c.pending {
		if p.From == from && p.Tag == tag {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.recvFrom[from].Add(1)
			c.noteRecvMetrics(t0, len(p.Data))
			v, err := decode(p.Data)
			return v, rankErr(from, op, err)
		}
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	inbox := c.tr.Inbox(c.rank)
	done := c.tr.Done()
	for {
		select {
		case <-done:
			return nil, rankErr(from, op, ErrClosed)
		case p, ok := <-inbox:
			if !ok {
				return nil, rankErr(from, op, ErrClosed)
			}
			c.noteSeen(p.From)
			if p.Tag == hbTag {
				c.hbSeen.Add(1)
				continue
			}
			if p.From == from && p.Tag == tag {
				c.recvFrom[from].Add(1)
				c.noteRecvMetrics(t0, len(p.Data))
				v, err := decode(p.Data)
				return v, rankErr(from, op, err)
			}
			if len(c.pending) >= maxPending {
				return nil, rankErr(from, op, ErrPendingOverflow)
			}
			c.pending = append(c.pending, p)
		case <-timeoutCh:
			if c.localCrashed() {
				return nil, rankErr(c.rank, op, ErrCrashed)
			}
			c.timeouts.Add(1)
			return nil, rankErr(from, op, ErrTimeout)
		}
	}
}

// noteRecvMetrics records one matched receive (latency from recv entry
// to match, plus payload size).
func (c *Comm) noteRecvMetrics(t0 time.Time, nbytes int) {
	if c.met == nil {
		return
	}
	c.met.recvSec.ObserveDuration(time.Since(t0))
	c.met.recvBytes.Add(int64(nbytes))
	c.met.recvCount.Inc()
}

// RecvPatient receives like RecvTimeout but, when heartbeats are
// enabled, extends the deadline as long as the peer's heartbeats keep
// arriving (a slow rank is not a dead rank), up to maxExtensions extra
// rounds. On giving up it reports ErrRankDead if the detector agrees
// the peer is gone, ErrTimeout otherwise.
func (c *Comm) RecvPatient(from, tag int, timeout time.Duration, maxExtensions int) (any, error) {
	if timeout <= 0 {
		return c.recvTimeout(from, tag, 0, "recv")
	}
	for ext := 0; ; ext++ {
		v, err := c.recvTimeout(from, tag, timeout, "recv")
		if err == nil || !errors.Is(err, ErrTimeout) {
			return v, err
		}
		if c.hbInterval > 0 && c.Alive(from) && ext < maxExtensions {
			c.retries.Add(1)
			continue
		}
		if c.hbInterval > 0 && !c.Alive(from) {
			return nil, rankErr(from, "recv", ErrRankDead)
		}
		return nil, err
	}
}

// nextCollTag reserves a fresh negative tag for one collective phase.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return -c.collSeq
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	defer c.collTimer("barrier")()
	tagUp := c.nextCollTag()
	tagDown := c.nextCollTag()
	if c.size == 1 {
		return nil
	}
	if c.rank == 0 {
		for r := 1; r < c.size; r++ {
			if _, err := c.recv(r, tagUp, "barrier"); err != nil {
				return err
			}
		}
		for r := 1; r < c.size; r++ {
			if err := c.send(r, tagDown, true, "barrier"); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(0, tagUp, true, "barrier"); err != nil {
		return err
	}
	_, err := c.recv(0, tagDown, "barrier")
	return err
}

// Broadcast distributes root's payload to every rank; every rank
// returns the (decoded) value. Non-root ranks may pass nil.
func (c *Comm) Broadcast(root int, payload any) (any, error) {
	defer c.collTimer("broadcast")()
	tag := c.nextCollTag()
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("cluster: broadcast root %d of %d", root, c.size)
	}
	if c.size == 1 {
		return payload, nil
	}
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, payload, "broadcast"); err != nil {
				return nil, err
			}
		}
		return payload, nil
	}
	return c.recv(root, tag, "broadcast")
}

// Gather collects every rank's payload at root. At root the returned
// slice is indexed by rank; elsewhere it is nil.
func (c *Comm) Gather(root int, payload any) ([]any, error) {
	defer c.collTimer("gather")()
	tag := c.nextCollTag()
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("cluster: gather root %d of %d", root, c.size)
	}
	if c.rank == root {
		out := make([]any, c.size)
		out[c.rank] = payload
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			v, err := c.recv(r, tag, "gather")
			if err != nil {
				return nil, err
			}
			out[r] = v
		}
		return out, nil
	}
	return nil, c.send(root, tag, payload, "gather")
}

// Scatter distributes parts[r] from root to each rank r; every rank
// returns its own part. parts is only read at root and must have one
// entry per rank there.
func (c *Comm) Scatter(root int, parts []any) (any, error) {
	defer c.collTimer("scatter")()
	tag := c.nextCollTag()
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("cluster: scatter root %d of %d", root, c.size)
	}
	if c.rank == root {
		if len(parts) != c.size {
			return nil, fmt.Errorf("cluster: scatter with %d parts for %d ranks", len(parts), c.size)
		}
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, parts[r], "scatter"); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	return c.recv(root, tag, "scatter")
}

// ReduceOp folds b into a and returns the result. It must be
// associative; Reduce applies it in ascending rank order.
type ReduceOp func(a, b any) (any, error)

// Reduce folds every rank's payload at root with op; the result is
// returned at root (nil elsewhere).
func (c *Comm) Reduce(root int, payload any, op ReduceOp) (any, error) {
	vals, err := c.Gather(root, payload)
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	acc := vals[0]
	for r := 1; r < c.size; r++ {
		acc, err = op(acc, vals[r])
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Allreduce folds every rank's payload and returns the result on every
// rank (Reduce to rank 0, then Broadcast).
func (c *Comm) Allreduce(payload any, op ReduceOp) (any, error) {
	v, err := c.Reduce(0, payload, op)
	if err != nil {
		return nil, err
	}
	return c.Broadcast(0, v)
}

// SumFloat64s is a ReduceOp summing []float64 elementwise.
func SumFloat64s(a, b any) (any, error) {
	av, aok := a.([]float64)
	bv, bok := b.([]float64)
	if !aok || !bok || len(av) != len(bv) {
		return nil, fmt.Errorf("cluster: SumFloat64s on %T/%T", a, b)
	}
	out := make([]float64, len(av))
	for i := range av {
		out[i] = av[i] + bv[i]
	}
	return out, nil
}

// SumFloat32s is a ReduceOp summing []float32 elementwise — the
// reduction used for NORM accumulator state.
func SumFloat32s(a, b any) (any, error) {
	av, aok := a.([]float32)
	bv, bok := b.([]float32)
	if !aok || !bok || len(av) != len(bv) {
		return nil, fmt.Errorf("cluster: SumFloat32s on %T/%T", a, b)
	}
	out := make([]float32, len(av))
	for i := range av {
		out[i] = av[i] + bv[i]
	}
	return out, nil
}

// TransportKind selects the transport for Run.
type TransportKind int

const (
	// Channels runs nodes as goroutines exchanging messages in-process.
	Channels TransportKind = iota
	// TCP runs nodes as goroutines communicating over loopback sockets.
	TCP
)

// String names the transport kind.
func (k TransportKind) String() string {
	switch k {
	case Channels:
		return "channels"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// RunConfig configures a cluster run's transport and fault model.
type RunConfig struct {
	// Kind selects the transport (Channels or TCP).
	Kind TransportKind
	// OpTimeout bounds every Send/Recv/collective (0 = block forever,
	// the historical behavior).
	OpTimeout time.Duration
	// Heartbeat, when > 0, starts a heartbeater per rank and enables
	// the Alive/DeadRanks failure detector.
	Heartbeat time.Duration
	// Fault, when non-nil, wraps the transport in a FaultTransport
	// injecting the configured chaos.
	Fault *FaultConfig
	// TCP tunes TCP-transport hardening (ignored for Channels).
	TCP TCPConfig
}

// Run launches size SPMD node functions and waits for them all. It
// returns the first error any node produced; when a node fails, the
// transport is torn down so the remaining nodes unblock with errors
// rather than deadlocking.
func Run(size int, kind TransportKind, fn func(c *Comm) error) error {
	return RunWithConfig(size, RunConfig{Kind: kind}, fn)
}

// RunWithConfig is Run with an explicit fault model. Node functions
// returning an error wrapping ErrCrashed are treated as simulated
// process deaths: they neither tear the transport down nor fail the
// run, so surviving ranks can detect the loss (deadlines, heartbeats)
// and complete degraded. Any other node error still aborts the run.
func RunWithConfig(size int, cfg RunConfig, fn func(c *Comm) error) error {
	if size <= 0 {
		return fmt.Errorf("cluster: size %d", size)
	}
	var tr Transport
	var err error
	switch cfg.Kind {
	case Channels:
		tr = NewChannelTransport(size)
	case TCP:
		tr, err = NewTCPTransportConfig(size, cfg.TCP)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("cluster: unknown transport %d", int(cfg.Kind))
	}
	if cfg.Fault != nil {
		f := *cfg.Fault
		tr = NewFaultTransport(tr, size, f)
		// A crashing rank with unbounded waits would deadlock the
		// survivors; injecting crashes forces a deadline.
		if f.CrashRank >= 0 && cfg.OpTimeout <= 0 {
			cfg.OpTimeout = 5 * time.Second
		}
	}
	defer tr.Close()

	errs := make([]error, size)
	crashed := make([]error, size)
	var wg sync.WaitGroup
	var closeOnce sync.Once
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := newComm(rank, size, tr, cfg.OpTimeout, cfg.Heartbeat)
			comm.startHeartbeat()
			defer comm.stopHeartbeat()
			if err := fn(comm); err != nil {
				if errors.Is(err, ErrCrashed) {
					// Simulated process death: survivors detect and
					// degrade; do not tear the cluster down.
					crashed[rank] = err
					return
				}
				errs[rank] = err
				// Unblock peers waiting on this failed node.
				closeOnce.Do(func() { tr.Close() })
			}
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// MaxFloat64s is a ReduceOp taking the elementwise maximum of
// []float64 — used for the global log-sum-exp normalization in
// genome-split mapping.
func MaxFloat64s(a, b any) (any, error) {
	av, aok := a.([]float64)
	bv, bok := b.([]float64)
	if !aok || !bok || len(av) != len(bv) {
		return nil, fmt.Errorf("cluster: MaxFloat64s on %T/%T", a, b)
	}
	out := make([]float64, len(av))
	for i := range av {
		if av[i] >= bv[i] {
			out[i] = av[i]
		} else {
			out[i] = bv[i]
		}
	}
	return out, nil
}

// ReduceTree folds every rank's payload at root with op along a
// binomial tree: ⌈log2(N)⌉ rounds instead of the linear Gather-based
// Reduce, with the fold work distributed across internal tree nodes —
// how production MPI implements MPI_Reduce. op must be associative and
// commutative (pairings depend on tree shape). The result is returned
// at root and nil elsewhere.
func (c *Comm) ReduceTree(root int, payload any, op ReduceOp) (any, error) {
	defer c.collTimer("reduce-tree")()
	tag := c.nextCollTag()
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("cluster: reduce root %d of %d", root, c.size)
	}
	// Rotate ranks so the tree is rooted at 0.
	vrank := (c.rank - root + c.size) % c.size
	acc := payload
	var err error
	for step := 1; step < c.size; step <<= 1 {
		if vrank&step != 0 {
			// Send accumulated value to the partner below and exit.
			partner := ((vrank - step) + root) % c.size
			return nil, c.send(partner, tag, acc, "reduce-tree")
		}
		if vrank+step < c.size {
			partner := (vrank + step + root) % c.size
			v, err2 := c.recv(partner, tag, "reduce-tree")
			if err2 != nil {
				return nil, err2
			}
			acc, err = op(acc, v)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// AllreduceTree is ReduceTree to rank 0 followed by Broadcast.
func (c *Comm) AllreduceTree(payload any, op ReduceOp) (any, error) {
	v, err := c.ReduceTree(0, payload, op)
	if err != nil {
		return nil, err
	}
	return c.Broadcast(0, v)
}
