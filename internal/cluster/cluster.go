// Package cluster is the message-passing substrate standing in for MPI
// (paper §VI Step 1). It provides rank-addressed point-to-point
// messaging plus the collectives GNUMAP-SNP's two parallel modes need
// (Barrier, Broadcast, Gather, Scatter, Reduce, Allreduce), over two
// interchangeable transports:
//
//   - ChannelTransport: goroutine "nodes" exchanging serialized
//     messages over Go channels — the default for experiments.
//   - TCPTransport: the same node program communicating over real
//     loopback TCP sockets with length-framed messages, exercising a
//     genuine network stack (serialization, framing, kernel buffers).
//
// Payloads are gob-serialized in both transports, so the communication
// volume — the quantity that differentiates the paper's read-split and
// genome-split modes — is identical across transports. Common payload
// types are registered in init; callers register their own structs with
// gob.Register.
//
// The programming model is SPMD, as with MPI: Run launches one copy of
// the node function per rank, and every rank must execute the same
// sequence of collective operations.
package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

func init() {
	gob.Register([]float64{})
	gob.Register([]float32{})
	gob.Register([]int{})
	gob.Register([]int32{})
	gob.Register([5]float64{})
	gob.Register([][5]float64{})
	gob.Register(map[int]float64{})
	gob.Register("")
	gob.Register(0)
	gob.Register(int64(0))
	gob.Register(0.0)
	gob.Register(false)
}

// packet is the wire unit.
type packet struct {
	From int
	Tag  int
	Data []byte
}

// Transport moves packets between ranks.
type Transport interface {
	// Send delivers a packet from rank `from` to rank `to`. It may
	// block for backpressure but must not drop packets.
	Send(from, to int, p packet) error
	// Inbox returns the receive channel of a rank. The transport
	// closes it on shutdown.
	Inbox(rank int) <-chan packet
	// Close tears the transport down, unblocking all receivers.
	Close() error
}

// Comm is one rank's endpoint, analogous to an MPI communicator.
type Comm struct {
	rank, size int
	tr         Transport
	// pending holds packets received while waiting for a different
	// (from, tag) match.
	pending []packet
	// collSeq numbers collective operations so that consecutive
	// collectives cannot cross-match; SPMD execution keeps it in sync
	// across ranks.
	collSeq int
}

// Rank returns this node's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// encode gob-serializes a payload (as interface, so concrete type
// information travels with it).
func encode(payload any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&payload); err != nil {
		return nil, fmt.Errorf("cluster: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decode reverses encode.
func decode(data []byte) (any, error) {
	var payload any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("cluster: decode: %w", err)
	}
	return payload, nil
}

// Send transmits payload to rank `to` with a non-negative user tag.
func (c *Comm) Send(to, tag int, payload any) error {
	if tag < 0 {
		return fmt.Errorf("cluster: negative tags are reserved for collectives")
	}
	return c.send(to, tag, payload)
}

func (c *Comm) send(to, tag int, payload any) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("cluster: send to rank %d of %d", to, c.size)
	}
	if to == c.rank {
		return fmt.Errorf("cluster: rank %d sending to itself", c.rank)
	}
	data, err := encode(payload)
	if err != nil {
		return err
	}
	return c.tr.Send(c.rank, to, packet{From: c.rank, Tag: tag, Data: data})
}

// Recv blocks until a message with the given sender and non-negative
// user tag arrives and returns its payload.
func (c *Comm) Recv(from, tag int) (any, error) {
	if tag < 0 {
		return nil, fmt.Errorf("cluster: negative tags are reserved for collectives")
	}
	return c.recv(from, tag)
}

func (c *Comm) recv(from, tag int) (any, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("cluster: recv from rank %d of %d", from, c.size)
	}
	for i, p := range c.pending {
		if p.From == from && p.Tag == tag {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return decode(p.Data)
		}
	}
	inbox := c.tr.Inbox(c.rank)
	for p := range inbox {
		if p.From == from && p.Tag == tag {
			return decode(p.Data)
		}
		c.pending = append(c.pending, p)
	}
	return nil, fmt.Errorf("cluster: rank %d: transport closed while waiting for (from=%d, tag=%d)", c.rank, from, tag)
}

// nextCollTag reserves a fresh negative tag for one collective phase.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return -c.collSeq
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	tagUp := c.nextCollTag()
	tagDown := c.nextCollTag()
	if c.size == 1 {
		return nil
	}
	if c.rank == 0 {
		for r := 1; r < c.size; r++ {
			if _, err := c.recv(r, tagUp); err != nil {
				return err
			}
		}
		for r := 1; r < c.size; r++ {
			if err := c.send(r, tagDown, true); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(0, tagUp, true); err != nil {
		return err
	}
	_, err := c.recv(0, tagDown)
	return err
}

// Broadcast distributes root's payload to every rank; every rank
// returns the (decoded) value. Non-root ranks may pass nil.
func (c *Comm) Broadcast(root int, payload any) (any, error) {
	tag := c.nextCollTag()
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("cluster: broadcast root %d of %d", root, c.size)
	}
	if c.size == 1 {
		return payload, nil
	}
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, payload); err != nil {
				return nil, err
			}
		}
		return payload, nil
	}
	return c.recv(root, tag)
}

// Gather collects every rank's payload at root. At root the returned
// slice is indexed by rank; elsewhere it is nil.
func (c *Comm) Gather(root int, payload any) ([]any, error) {
	tag := c.nextCollTag()
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("cluster: gather root %d of %d", root, c.size)
	}
	if c.rank == root {
		out := make([]any, c.size)
		out[c.rank] = payload
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			v, err := c.recv(r, tag)
			if err != nil {
				return nil, err
			}
			out[r] = v
		}
		return out, nil
	}
	return nil, c.send(root, tag, payload)
}

// Scatter distributes parts[r] from root to each rank r; every rank
// returns its own part. parts is only read at root and must have one
// entry per rank there.
func (c *Comm) Scatter(root int, parts []any) (any, error) {
	tag := c.nextCollTag()
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("cluster: scatter root %d of %d", root, c.size)
	}
	if c.rank == root {
		if len(parts) != c.size {
			return nil, fmt.Errorf("cluster: scatter with %d parts for %d ranks", len(parts), c.size)
		}
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, parts[r]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	return c.recv(root, tag)
}

// ReduceOp folds b into a and returns the result. It must be
// associative; Reduce applies it in ascending rank order.
type ReduceOp func(a, b any) (any, error)

// Reduce folds every rank's payload at root with op; the result is
// returned at root (nil elsewhere).
func (c *Comm) Reduce(root int, payload any, op ReduceOp) (any, error) {
	vals, err := c.Gather(root, payload)
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	acc := vals[0]
	for r := 1; r < c.size; r++ {
		acc, err = op(acc, vals[r])
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Allreduce folds every rank's payload and returns the result on every
// rank (Reduce to rank 0, then Broadcast).
func (c *Comm) Allreduce(payload any, op ReduceOp) (any, error) {
	v, err := c.Reduce(0, payload, op)
	if err != nil {
		return nil, err
	}
	return c.Broadcast(0, v)
}

// SumFloat64s is a ReduceOp summing []float64 elementwise.
func SumFloat64s(a, b any) (any, error) {
	av, aok := a.([]float64)
	bv, bok := b.([]float64)
	if !aok || !bok || len(av) != len(bv) {
		return nil, fmt.Errorf("cluster: SumFloat64s on %T/%T", a, b)
	}
	out := make([]float64, len(av))
	for i := range av {
		out[i] = av[i] + bv[i]
	}
	return out, nil
}

// SumFloat32s is a ReduceOp summing []float32 elementwise — the
// reduction used for NORM accumulator state.
func SumFloat32s(a, b any) (any, error) {
	av, aok := a.([]float32)
	bv, bok := b.([]float32)
	if !aok || !bok || len(av) != len(bv) {
		return nil, fmt.Errorf("cluster: SumFloat32s on %T/%T", a, b)
	}
	out := make([]float32, len(av))
	for i := range av {
		out[i] = av[i] + bv[i]
	}
	return out, nil
}

// TransportKind selects the transport for Run.
type TransportKind int

const (
	// Channels runs nodes as goroutines exchanging messages in-process.
	Channels TransportKind = iota
	// TCP runs nodes as goroutines communicating over loopback sockets.
	TCP
)

// String names the transport kind.
func (k TransportKind) String() string {
	switch k {
	case Channels:
		return "channels"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// Run launches size SPMD node functions and waits for them all. It
// returns the first error any node produced; when a node fails, the
// transport is torn down so the remaining nodes unblock with errors
// rather than deadlocking.
func Run(size int, kind TransportKind, fn func(c *Comm) error) error {
	if size <= 0 {
		return fmt.Errorf("cluster: size %d", size)
	}
	var tr Transport
	var err error
	switch kind {
	case Channels:
		tr = NewChannelTransport(size)
	case TCP:
		tr, err = NewTCPTransport(size)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("cluster: unknown transport %d", int(kind))
	}
	defer tr.Close()

	errs := make([]error, size)
	var wg sync.WaitGroup
	var closeOnce sync.Once
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := &Comm{rank: rank, size: size, tr: tr}
			if err := fn(comm); err != nil {
				errs[rank] = err
				// Unblock peers waiting on this failed node.
				closeOnce.Do(func() { tr.Close() })
			}
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// MaxFloat64s is a ReduceOp taking the elementwise maximum of
// []float64 — used for the global log-sum-exp normalization in
// genome-split mapping.
func MaxFloat64s(a, b any) (any, error) {
	av, aok := a.([]float64)
	bv, bok := b.([]float64)
	if !aok || !bok || len(av) != len(bv) {
		return nil, fmt.Errorf("cluster: MaxFloat64s on %T/%T", a, b)
	}
	out := make([]float64, len(av))
	for i := range av {
		if av[i] >= bv[i] {
			out[i] = av[i]
		} else {
			out[i] = bv[i]
		}
	}
	return out, nil
}

// ReduceTree folds every rank's payload at root with op along a
// binomial tree: ⌈log2(N)⌉ rounds instead of the linear Gather-based
// Reduce, with the fold work distributed across internal tree nodes —
// how production MPI implements MPI_Reduce. op must be associative and
// commutative (pairings depend on tree shape). The result is returned
// at root and nil elsewhere.
func (c *Comm) ReduceTree(root int, payload any, op ReduceOp) (any, error) {
	tag := c.nextCollTag()
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("cluster: reduce root %d of %d", root, c.size)
	}
	// Rotate ranks so the tree is rooted at 0.
	vrank := (c.rank - root + c.size) % c.size
	acc := payload
	var err error
	for step := 1; step < c.size; step <<= 1 {
		if vrank&step != 0 {
			// Send accumulated value to the partner below and exit.
			partner := ((vrank - step) + root) % c.size
			return nil, c.send(partner, tag, acc)
		}
		if vrank+step < c.size {
			partner := (vrank + step + root) % c.size
			v, err2 := c.recv(partner, tag)
			if err2 != nil {
				return nil, err2
			}
			acc, err = op(acc, v)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// AllreduceTree is ReduceTree to rank 0 followed by Broadcast.
func (c *Comm) AllreduceTree(payload any, op ReduceOp) (any, error) {
	v, err := c.ReduceTree(0, payload, op)
	if err != nil {
		return nil, err
	}
	return c.Broadcast(0, v)
}
