package cluster

import (
	"errors"
	"fmt"
)

// Sentinel causes for cluster failures. They are always wrapped in a
// *RankError carrying the peer rank and the operation, so callers test
// with errors.Is (for the cause) or errors.As (for the context):
//
//	var re *cluster.RankError
//	if errors.As(err, &re) && errors.Is(err, cluster.ErrTimeout) { ... }
var (
	// ErrTimeout: an operation exceeded its configured deadline.
	ErrTimeout = errors.New("operation timed out")
	// ErrClosed: the transport was torn down under the operation.
	ErrClosed = errors.New("transport closed")
	// ErrCrashed: the local rank has been crashed by fault injection.
	// Run treats node functions returning this as simulated process
	// deaths: the run continues degraded instead of tearing down.
	ErrCrashed = errors.New("rank crashed")
	// ErrRankDead: a peer rank was declared dead by the failure
	// detector (missed heartbeats past the deadline).
	ErrRankDead = errors.New("peer rank declared dead")
	// ErrFrameTooLarge: a length-framed message exceeded the maximum
	// frame size (corrupt length prefix or oversized payload).
	ErrFrameTooLarge = errors.New("frame exceeds maximum size")
	// ErrPendingOverflow: the out-of-order pending queue overflowed,
	// indicating a tag-matching bug or unbounded duplication.
	ErrPendingOverflow = errors.New("pending message queue overflow")
)

// RankError is the typed error for every failed communication
// operation: which peer rank it concerned, which operation, and the
// underlying cause (often one of the sentinels above).
type RankError struct {
	// Rank is the peer the operation addressed (the remote side of a
	// send/recv, or the rank a collective was waiting on).
	Rank int
	// Op names the failing operation, e.g. "send", "recv", "barrier",
	// "gather", "allreduce".
	Op string
	// Cause is the underlying error.
	Cause error
}

// Error implements error.
func (e *RankError) Error() string {
	return fmt.Sprintf("cluster: rank %d: %s: %v", e.Rank, e.Op, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RankError) Unwrap() error { return e.Cause }

// rankErr wraps cause with rank/op context; it keeps an existing
// *RankError untouched so the innermost context (closest to the wire)
// wins and double-wrapping does not obscure it.
func rankErr(rank int, op string, cause error) error {
	if cause == nil {
		return nil
	}
	var re *RankError
	if errors.As(cause, &re) {
		return cause
	}
	return &RankError{Rank: rank, Op: op, Cause: cause}
}
