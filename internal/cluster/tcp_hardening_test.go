package cluster

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseFrameHeader(t *testing.T) {
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint32(hdr[0:4], 3)
	negTag := int32(-7) // collective tags are negative
	binary.BigEndian.PutUint32(hdr[4:8], uint32(negTag))
	binary.BigEndian.PutUint32(hdr[8:12], 512)
	from, tag, n, err := parseFrameHeader(hdr, 1024)
	if err != nil || from != 3 || tag != -7 || n != 512 {
		t.Fatalf("got from=%d tag=%d n=%d err=%v", from, tag, n, err)
	}
	// A corrupt length prefix past the limit is rejected, not allocated.
	binary.BigEndian.PutUint32(hdr[8:12], 4<<20)
	if _, _, _, err := parseFrameHeader(hdr, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestDialRetryDeadPort(t *testing.T) {
	// Grab a port and close it so nothing is listening there.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	var retries atomic.Int64
	start := time.Now()
	if _, err := dialRetry(addr, 3, time.Millisecond, &retries); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if got := retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2 (3 attempts)", got)
	}
	// Backoff 1ms<<0 + 1ms<<1 plus jitter — well under a second.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("retry loop took %v", elapsed)
	}
}

func TestDialRetryEventualSuccess(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	// Re-listen on the same port shortly after the first attempt fails.
	go func() {
		time.Sleep(20 * time.Millisecond)
		if l2, err := net.Listen("tcp", addr); err == nil {
			defer l2.Close()
			if c, err := l2.Accept(); err == nil {
				c.Close()
			}
		}
	}()
	var retries atomic.Int64
	conn, err := dialRetry(addr, 6, 10*time.Millisecond, &retries)
	if err != nil {
		t.Skipf("port %s not rebindable in time: %v", addr, err) // scheduling-dependent
	}
	conn.Close()
	if retries.Load() == 0 {
		t.Error("expected at least one retry before success")
	}
}

func TestTCPSendRejectsOversizedFrame(t *testing.T) {
	tr, err := NewTCPTransportConfig(2, TCPConfig{MaxFrame: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	big := packet{From: 0, Tag: 1, Data: make([]byte, 4096)}
	if err := tr.Send(0, 1, big, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized send: got %v, want ErrFrameTooLarge", err)
	}
	// Small frames still flow.
	small := packet{From: 0, Tag: 1, Data: []byte("ok")}
	if err := tr.Send(0, 1, small, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-tr.Inbox(1):
		if string(p.Data) != "ok" {
			t.Errorf("got %q", p.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("small frame never arrived")
	}
}

// TestTCPIdleReadTimeoutKeepsConnection: the per-frame read deadline
// exists to detect dead peers, not to kill idle-but-healthy links.
func TestTCPIdleReadTimeoutKeepsConnection(t *testing.T) {
	tr, err := NewTCPTransportConfig(2, TCPConfig{ReadTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	time.Sleep(80 * time.Millisecond) // several idle deadline expiries
	if err := tr.Send(0, 1, packet{From: 0, Tag: 2, Data: []byte("after idle")}, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-tr.Inbox(1):
		if string(p.Data) != "after idle" {
			t.Errorf("got %q", p.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frame lost after idle period — read deadline killed the link")
	}
}

func TestTCPRunWithHardening(t *testing.T) {
	rc := RunConfig{
		Kind:      TCP,
		OpTimeout: 2 * time.Second,
		TCP:       TCPConfig{ReadTimeout: 50 * time.Millisecond, MaxFrame: 1 << 20},
	}
	err := RunWithConfig(3, rc, func(c *Comm) error {
		v, err := c.Allreduce([]float64{float64(c.Rank() + 1)}, SumFloat64s)
		if err != nil {
			return err
		}
		if v.([]float64)[0] != 6 {
			return errors.New("bad allreduce under hardened TCP")
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorMessageFormat(t *testing.T) {
	msg := rankErr(2, "gather", ErrTimeout).Error()
	for _, want := range []string{"rank 2", "gather", "timed out"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
