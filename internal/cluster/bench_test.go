package cluster

import (
	"fmt"
	"testing"
)

// BenchmarkAllreduce measures the per-collective cost of the
// genome-split mode's normalization rounds.
func BenchmarkAllreduce(b *testing.B) {
	for _, tk := range []TransportKind{Channels, TCP} {
		for _, nodes := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s/nodes=%d", tk, nodes), func(b *testing.B) {
				payload := make([]float64, 256)
				err := Run(nodes, tk, func(c *Comm) error {
					for i := 0; i < b.N; i++ {
						if _, err := c.Allreduce(payload, SumFloat64s); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkPointToPoint measures raw message throughput.
func BenchmarkPointToPoint(b *testing.B) {
	for _, tk := range []TransportKind{Channels, TCP} {
		b.Run(tk.String(), func(b *testing.B) {
			payload := make([]float32, 1<<14) // 64 KiB
			err := Run(2, tk, func(c *Comm) error {
				if c.Rank() == 0 {
					for i := 0; i < b.N; i++ {
						if err := c.Send(1, 5, payload); err != nil {
							return err
						}
					}
					return nil
				}
				for i := 0; i < b.N; i++ {
					if _, err := c.Recv(0, 5); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)) * 4)
		})
	}
}
