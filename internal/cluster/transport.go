package cluster

import (
	"fmt"
	"sync"
	"time"
)

// inboxDepth bounds per-rank in-flight packets before senders block;
// it models finite network buffering and provides backpressure.
const inboxDepth = 4096

// ChannelTransport delivers packets through in-process channels.
type ChannelTransport struct {
	inboxes []chan packet
	// done signals shutdown. Inbox channels have many concurrent
	// senders so they are never closed; receivers and blocked senders
	// observe shutdown through done instead.
	done chan struct{}
	once sync.Once
}

// NewChannelTransport creates a transport for size ranks.
func NewChannelTransport(size int) *ChannelTransport {
	t := &ChannelTransport{
		inboxes: make([]chan packet, size),
		done:    make(chan struct{}),
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan packet, inboxDepth)
	}
	return t
}

// Send implements Transport. With timeout > 0 a full inbox only blocks
// for that long before returning ErrTimeout.
func (t *ChannelTransport) Send(from, to int, p packet, timeout time.Duration) error {
	if to < 0 || to >= len(t.inboxes) {
		return fmt.Errorf("cluster: channel send to rank %d of %d", to, len(t.inboxes))
	}
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	if timeout <= 0 {
		select {
		case t.inboxes[to] <- p:
			return nil
		case <-t.done:
			return ErrClosed
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case t.inboxes[to] <- p:
		return nil
	case <-t.done:
		return ErrClosed
	case <-timer.C:
		return ErrTimeout
	}
}

// Inbox implements Transport.
func (t *ChannelTransport) Inbox(rank int) <-chan packet { return t.inboxes[rank] }

// Done implements Transport.
func (t *ChannelTransport) Done() <-chan struct{} { return t.done }

// Close implements Transport: signals shutdown, unblocking receivers
// and senders. The inbox channels themselves stay open because sends
// may still be in flight.
func (t *ChannelTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
