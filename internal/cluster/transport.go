package cluster

import (
	"fmt"
	"sync"
)

// inboxDepth bounds per-rank in-flight packets before senders block;
// it models finite network buffering and provides backpressure.
const inboxDepth = 4096

// ChannelTransport delivers packets through in-process channels.
type ChannelTransport struct {
	inboxes []chan packet
	mu      sync.Mutex
	closed  bool
}

// NewChannelTransport creates a transport for size ranks.
func NewChannelTransport(size int) *ChannelTransport {
	t := &ChannelTransport{inboxes: make([]chan packet, size)}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan packet, inboxDepth)
	}
	return t
}

// Send implements Transport.
func (t *ChannelTransport) Send(from, to int, p packet) (err error) {
	if to < 0 || to >= len(t.inboxes) {
		return fmt.Errorf("cluster: channel send to rank %d of %d", to, len(t.inboxes))
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("cluster: transport closed")
	}
	defer func() {
		// A concurrent Close can close the inbox while we block on the
		// send; recover converts the panic into an orderly error path.
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: transport closed during send")
		}
	}()
	t.inboxes[to] <- p
	return nil
}

// Inbox implements Transport.
func (t *ChannelTransport) Inbox(rank int) <-chan packet { return t.inboxes[rank] }

// Close implements Transport: closes all inboxes, unblocking receivers.
func (t *ChannelTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, ch := range t.inboxes {
		close(ch)
	}
	return nil
}
