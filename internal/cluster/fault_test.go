package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// chaosOpTimeout is the deadline used across the chaos suite; bounds
// below are expressed in multiples of it.
const chaosOpTimeout = 300 * time.Millisecond

func TestRankErrorWrapping(t *testing.T) {
	err := rankErr(3, "gather", ErrTimeout)
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("not a RankError: %v", err)
	}
	if re.Rank != 3 || re.Op != "gather" {
		t.Errorf("context lost: %+v", re)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Error("cause lost")
	}
	// Re-wrapping keeps the innermost (closest to the wire) context.
	outer := rankErr(0, "barrier", err)
	if !errors.As(outer, &re) || re.Rank != 3 || re.Op != "gather" {
		t.Errorf("double wrap clobbered context: %v", outer)
	}
	if rankErr(1, "send", nil) != nil {
		t.Error("nil cause should wrap to nil")
	}
}

func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=42,drop=0.02,dup=0.01,reorder=0.1,delay=0.05,maxdelay=3ms,crash=2@100")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.DropProb != 0.02 || cfg.DupProb != 0.01 ||
		cfg.ReorderProb != 0.1 || cfg.DelayProb != 0.05 ||
		cfg.MaxDelay != 3*time.Millisecond || cfg.CrashRank != 2 || cfg.CrashAfterSends != 100 {
		t.Errorf("parsed %+v", cfg)
	}
	if cfg, err := ParseFaultSpec("crash=1"); err != nil || cfg.CrashRank != 1 || cfg.CrashAfterSends != 0 {
		t.Errorf("bare crash: %+v %v", cfg, err)
	}
	for _, bad := range []string{"", "drop", "drop=2", "drop=-0.1", "nope=1", "drop=0.6,dup=0.6", "maxdelay=xyz", "crash=a"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFaultTransportDeterministic: the same seed over the same
// single-goroutine schedule injects exactly the same faults.
func TestFaultTransportDeterministic(t *testing.T) {
	inject := func(seed int64) (drops, dups, delays, reorders int64) {
		inner := NewChannelTransport(2)
		defer inner.Close()
		cfg := NewFaultConfig(seed)
		cfg.DropProb, cfg.DupProb, cfg.ReorderProb, cfg.DelayProb = 0.1, 0.1, 0.1, 0.1
		cfg.MaxDelay = 100 * time.Microsecond
		ft := NewFaultTransport(inner, 2, cfg)
		for i := 0; i < 500; i++ {
			if err := ft.Send(0, 1, packet{From: 0, Tag: 1}, 0); err != nil {
				t.Fatal(err)
			}
			// Drain to keep the inbox from filling.
			for len(inner.Inbox(1)) > 0 {
				<-inner.inboxes[1]
			}
		}
		return ft.Injected()
	}
	a1, b1, c1, d1 := inject(7)
	a2, b2, c2, d2 := inject(7)
	if a1 != a2 || b1 != b2 || c1 != c2 || d1 != d2 {
		t.Errorf("same seed diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", a1, b1, c1, d1, a2, b2, c2, d2)
	}
	if a1+b1+c1+d1 == 0 {
		t.Error("no faults injected at 40% total probability over 500 sends")
	}
}

// TestChaosLosslessFaultsStillComplete: duplication, reordering, and
// delays never lose data, so collectives must finish with correct
// results despite them.
func TestChaosLosslessFaultsStillComplete(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := NewFaultConfig(seed)
		cfg.DupProb, cfg.ReorderProb, cfg.DelayProb = 0.15, 0.15, 0.1
		cfg.MaxDelay = time.Millisecond
		rc := RunConfig{Kind: Channels, OpTimeout: chaosOpTimeout, Heartbeat: 20 * time.Millisecond, Fault: &cfg}
		err := RunWithConfig(4, rc, func(c *Comm) error {
			for round := 0; round < 8; round++ {
				if err := c.Barrier(); err != nil {
					return fmt.Errorf("round %d barrier: %w", round, err)
				}
				v, err := c.Allreduce([]float64{1}, SumFloat64s)
				if err != nil {
					return fmt.Errorf("round %d allreduce: %w", round, err)
				}
				if got := v.([]float64)[0]; got != 4 {
					return fmt.Errorf("round %d allreduce = %v", round, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestChaosCollectivesCompleteOrFailInDeadline is the tentpole
// guarantee: under lossy chaos (drops included) every collective
// either completes or returns a typed *RankError, and never blocks
// past its deadline budget.
func TestChaosCollectivesCompleteOrFailInDeadline(t *testing.T) {
	const size = 4
	// A barrier is 2 phases; root waits size-1 recvs per phase. Budget
	// generously: every op timing out sequentially, plus scheduling.
	budget := time.Duration(2*size+2) * chaosOpTimeout
	for _, seed := range []int64{11, 12, 13, 14, 15} {
		cfg := NewFaultConfig(seed)
		cfg.DropProb = 0.08
		cfg.DupProb = 0.05
		cfg.ReorderProb = 0.05
		cfg.MaxDelay = time.Millisecond
		rc := RunConfig{Kind: Channels, OpTimeout: chaosOpTimeout, Heartbeat: 20 * time.Millisecond, Fault: &cfg}
		err := RunWithConfig(size, rc, func(c *Comm) error {
			for round := 0; round < 4; round++ {
				start := time.Now()
				_, err := c.Allreduce([]float64{float64(c.Rank())}, SumFloat64s)
				elapsed := time.Since(start)
				if elapsed > budget {
					return fmt.Errorf("round %d blocked %v (> %v budget)", round, elapsed, budget)
				}
				if err != nil {
					var re *RankError
					if !errors.As(err, &re) {
						return fmt.Errorf("round %d: untyped error %v", round, err)
					}
					// Once a collective fails the SPMD tag sequence is
					// broken; stop cleanly.
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestCrashedRankFailsFastAndPeersTimeOut: a crashed rank's operations
// fail with ErrCrashed; survivors waiting on it get ErrTimeout within
// the deadline; the run as a whole is not torn down by the crash.
func TestCrashedRankFailsFastAndPeersTimeOut(t *testing.T) {
	cfg := NewFaultConfig(1)
	cfg.CrashRank = 2
	rc := RunConfig{Kind: Channels, OpTimeout: 150 * time.Millisecond, Heartbeat: 10 * time.Millisecond, Fault: &cfg}
	start := time.Now()
	err := RunWithConfig(3, rc, func(c *Comm) error {
		err := c.Barrier()
		if c.Rank() == 2 {
			if !errors.Is(err, ErrCrashed) {
				return fmt.Errorf("crashed rank got %v, want ErrCrashed", err)
			}
			return err // simulated process death
		}
		if err == nil {
			return fmt.Errorf("rank %d: barrier succeeded despite dead peer", c.Rank())
		}
		var re *RankError
		if !errors.As(err, &re) || !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("rank %d: want RankError(ErrTimeout), got %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("crash handling took %v", elapsed)
	}
}

// TestHeartbeatFailureDetector: a crashed rank's heartbeats stop and
// the detector declares it dead while live ranks stay alive.
func TestHeartbeatFailureDetector(t *testing.T) {
	cfg := NewFaultConfig(1)
	cfg.CrashRank = 2
	rc := RunConfig{Kind: Channels, OpTimeout: 2 * time.Second, Heartbeat: 10 * time.Millisecond, Fault: &cfg}
	err := RunWithConfig(3, rc, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// Rank 1 reports in after the detector has had time to see
			// heartbeats (rank 1) and miss them (rank 2); draining the
			// inbox while waiting is what feeds the detector.
			if _, err := c.RecvTimeout(1, 5, 2*time.Second); err != nil {
				return err
			}
			if !c.Alive(1) {
				return fmt.Errorf("live rank 1 declared dead")
			}
			if c.Alive(2) {
				return fmt.Errorf("crashed rank 2 still considered alive")
			}
			if d := c.DeadRanks(); len(d) != 1 || d[0] != 2 {
				return fmt.Errorf("DeadRanks = %v", d)
			}
			st := c.Stats()
			if st.HeartbeatsSeen == 0 {
				return fmt.Errorf("no heartbeats observed")
			}
			return nil
		case 1:
			time.Sleep(150 * time.Millisecond)
			return c.Send(0, 5, "alive")
		default:
			// Crashed from the start: even its sends fail.
			time.Sleep(200 * time.Millisecond)
			return rankErr(c.Rank(), "send", ErrCrashed)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvPatientExtendsForSlowPeer: heartbeats distinguish slow from
// dead — a rank that misses the first deadline but keeps heartbeating
// gets extensions instead of being declared dead.
func TestRecvPatientExtendsForSlowPeer(t *testing.T) {
	rc := RunConfig{Kind: Channels, Heartbeat: 10 * time.Millisecond}
	err := RunWithConfig(2, rc, func(c *Comm) error {
		if c.Rank() == 1 {
			time.Sleep(200 * time.Millisecond)
			return c.Send(0, 9, "slow but alive")
		}
		v, err := c.RecvPatient(1, 9, 50*time.Millisecond, 20)
		if err != nil {
			return fmt.Errorf("patient recv failed: %w", err)
		}
		if v.(string) != "slow but alive" {
			return fmt.Errorf("got %v", v)
		}
		if st := c.Stats(); st.Retries == 0 {
			return fmt.Errorf("no extensions recorded for a slow peer")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvTimeoutNoHeartbeat: with detection off, a recv deadline is a
// hard deadline.
func TestRecvTimeoutNoHeartbeat(t *testing.T) {
	rc := RunConfig{Kind: Channels, OpTimeout: 60 * time.Millisecond}
	err := RunWithConfig(2, rc, func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // never sends
		}
		start := time.Now()
		_, err := c.Recv(1, 3)
		if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrClosed) {
			return fmt.Errorf("want timeout/closed, got %v", err)
		}
		if time.Since(start) > time.Second {
			return fmt.Errorf("recv blocked %v", time.Since(start))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendTimeoutOnBackpressure: a full inbox with a deadline fails
// the sender with ErrTimeout instead of blocking forever.
func TestSendTimeoutOnBackpressure(t *testing.T) {
	rc := RunConfig{Kind: Channels, OpTimeout: 40 * time.Millisecond}
	err := RunWithConfig(2, rc, func(c *Comm) error {
		if c.Rank() == 1 {
			time.Sleep(300 * time.Millisecond) // never receives meanwhile
			return nil
		}
		for i := 0; ; i++ {
			if err := c.Send(1, 4, 0); err != nil {
				if !errors.Is(err, ErrTimeout) {
					return fmt.Errorf("want ErrTimeout, got %v", err)
				}
				return nil
			}
			if i > inboxDepth+8 {
				return fmt.Errorf("no backpressure after %d sends", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCommCounters: the per-rank send/recv counters track traffic.
func TestCommCounters(t *testing.T) {
	err := Run(2, Channels, func(c *Comm) error {
		peer := 1 - c.Rank()
		for i := 0; i < 5; i++ {
			if err := c.Send(peer, 8, i); err != nil {
				return err
			}
		}
		for i := 0; i < 5; i++ {
			if _, err := c.Recv(peer, 8); err != nil {
				return err
			}
		}
		st := c.Stats()
		if st.SentTo[peer] != 5 || st.RecvFrom[peer] != 5 {
			return fmt.Errorf("rank %d counters: sent %v recv %v", c.Rank(), st.SentTo, st.RecvFrom)
		}
		if st.SentTo[c.Rank()] != 0 || st.Timeouts != 0 {
			return fmt.Errorf("rank %d spurious counters: %+v", c.Rank(), st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosOverTCP: the fault decorator composes with the real-socket
// transport too.
func TestChaosOverTCP(t *testing.T) {
	cfg := NewFaultConfig(5)
	cfg.DupProb, cfg.DelayProb = 0.1, 0.1
	cfg.MaxDelay = time.Millisecond
	rc := RunConfig{Kind: TCP, OpTimeout: chaosOpTimeout, Heartbeat: 20 * time.Millisecond, Fault: &cfg}
	err := RunWithConfig(3, rc, func(c *Comm) error {
		v, err := c.Allreduce([]float64{2}, SumFloat64s)
		if err != nil {
			return err
		}
		if v.([]float64)[0] != 6 {
			return fmt.Errorf("allreduce = %v", v)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
