//go:build !unix

package kmer

import (
	"errors"
	"os"
)

// mmapSupported gates the zero-copy load path in LoadIndexFile; on
// platforms without syscall.Mmap the loader always takes the portable
// read + decode-copy path.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("kmer: mmap unsupported on this platform")
}

func munmap(b []byte) error { return nil }
