package kmer

import (
	"math/rand"
	"testing"

	"gnumap/internal/dna"
)

func benchGenome(b *testing.B, n int) dna.Seq {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	g := make(dna.Seq, n)
	for i := range g {
		g[i] = dna.Code(rng.Intn(4))
	}
	return g
}

func BenchmarkIndexBuild1M(b *testing.B) {
	g := benchGenome(b, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(g, DefaultK); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g))*float64(b.N)/b.Elapsed().Seconds(), "bases/s")
}

func BenchmarkCandidates62(b *testing.B) {
	g := benchGenome(b, 1_000_000)
	idx, err := New(g, DefaultK)
	if err != nil {
		b.Fatal(err)
	}
	read := g[500_000:500_062].Clone()
	read[31] = dna.Code((int(read[31]) + 1) % 4)
	opts := CandidateOptions{MaxCandidates: 8, MinVotes: 2, MaxBucket: 1024, Slack: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Candidates(read, opts); len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}
