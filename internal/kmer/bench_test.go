package kmer

import (
	"math/rand"
	"slices"
	"testing"

	"gnumap/internal/dna"
)

func benchGenome(b *testing.B, n int) dna.Seq {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	g := make(dna.Seq, n)
	for i := range g {
		g[i] = dna.Code(rng.Intn(4))
	}
	return g
}

func BenchmarkIndexBuild1M(b *testing.B) {
	g := benchGenome(b, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(g, DefaultK); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g))*float64(b.N)/b.Elapsed().Seconds(), "bases/s")
}

func BenchmarkCandidates62(b *testing.B) {
	g := benchGenome(b, 1_000_000)
	idx, err := New(g, DefaultK)
	if err != nil {
		b.Fatal(err)
	}
	read := g[500_000:500_062].Clone()
	read[31] = dna.Code((int(read[31]) + 1) % 4)
	opts := CandidateOptions{MaxCandidates: 8, MinVotes: 2, MaxBucket: 1024, Slack: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Candidates(read, opts); len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// legacyCandidatesInto is the pre-open-addressing implementation
// (map-based vote table, clamp inside the voting loop), kept here only
// as the before/after baseline for BenchmarkCandidatesInto.
func legacyCandidatesInto(ix *Index, read dna.Seq, opt CandidateOptions, votes map[int32]int32, out []Candidate) []Candidate {
	stride := opt.Stride
	if stride <= 0 {
		stride = 1
	}
	minVotes := opt.MinVotes
	if minVotes <= 0 {
		minVotes = 1
	}
	clear(votes)
	for off := 0; off+ix.k <= len(read); off += stride {
		m, ok := dna.PackKmer(read, off, ix.k)
		if !ok {
			continue
		}
		hits := ix.Lookup(m)
		if opt.MaxBucket > 0 && len(hits) > opt.MaxBucket {
			continue
		}
		for _, p := range hits {
			start := p - int32(off)
			if opt.Slack > 0 {
				start -= start % int32(opt.Slack+1)
			}
			if start < 0 {
				start = 0
			}
			votes[start]++
		}
	}
	cands := out[:0]
	for start, v := range votes {
		if int(v) >= minVotes {
			cands = append(cands, Candidate{Start: start, Votes: v})
		}
	}
	slices.SortFunc(cands, func(a, b Candidate) int {
		if a.Votes != b.Votes {
			return int(b.Votes - a.Votes)
		}
		return int(a.Start - b.Start)
	})
	if opt.MaxCandidates > 0 && len(cands) > opt.MaxCandidates {
		cands = cands[:opt.MaxCandidates]
	}
	return cands
}

// BenchmarkCandidatesInto compares the open-addressing epoch-cleared
// vote table against the previous map[int32]int32 implementation on the
// steady-state (warm scratch) candidate-generation path.
func BenchmarkCandidatesInto(b *testing.B) {
	g := benchGenome(b, 1_000_000)
	idx, err := New(g, DefaultK)
	if err != nil {
		b.Fatal(err)
	}
	read := g[500_000:500_062].Clone()
	read[31] = dna.Code((int(read[31]) + 1) % 4)
	opts := CandidateOptions{MaxCandidates: 8, MinVotes: 2, MaxBucket: 1024, Slack: 2}

	b.Run("table", func(b *testing.B) {
		var buf CandidateBuf
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := idx.CandidatesInto(read, opts, &buf); len(got) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
	b.Run("legacy-map", func(b *testing.B) {
		votes := make(map[int32]int32, 64)
		out := make([]Candidate, 0, 64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got := legacyCandidatesInto(idx, read, opts, votes, out)
			if len(got) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}
