package kmer

import (
	"crypto/sha256"
	"errors"
	"math/rand"
	"testing"

	"gnumap/internal/dna"
)

// FuzzDecodeIndex: whatever bytes arrive, DecodeIndex must either
// return an index that survives lookups and candidate generation, or an
// error wrapping exactly one of the typed sentinels — never a panic,
// never an unclassified failure. Mirrors ckpt.FuzzDecode.
func FuzzDecodeIndex(f *testing.F) {
	rng := rand.New(rand.NewSource(55))
	seq := randSeq(rng, 600, 0.01)
	ix, err := NewLargeWith(seq, 18, LargeConfig{MaxStore: 4})
	if err != nil {
		f.Fatal(err)
	}
	digest := sha256.Sum256([]byte("fuzz-reference"))
	img := EncodeIndex(ix, digest, int64(len(seq)))
	f.Add(img)
	f.Add(img[:len(img)-3])
	f.Add(img[:ixPage])
	f.Add(img[:50])
	f.Add([]byte{})
	f.Add([]byte("GNUMAPIX"))
	flip := append([]byte(nil), img...)
	flip[ixPage+9] ^= 0x40
	f.Add(flip)
	shift := append([]byte(nil), img...)
	shift[9] = 0x02 // version field
	f.Add(shift)

	sentinels := []error{ErrNotIndex, ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt, ErrRefMismatch}
	read := randSeq(rand.New(rand.NewSource(2)), 40, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeIndex(data)
		if err != nil {
			for _, s := range sentinels {
				if errors.Is(err, s) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// A decode that succeeds must be safe to query.
		for _, m := range []dna.Kmer{0, 1, dna.Kmer(1)<<35 - 1} {
			got.Lookup(m)
			got.BucketSize(m)
		}
		got.Candidates(read, CandidateOptions{MinVotes: 1, MaxBucket: 100, MaxCandidates: 4})
		got.Summary()
		got.MemoryBytes()
	})
}
