package kmer

import (
	"crypto/sha256"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gnumap/internal/dna"
)

// buildTestIndex returns a built index plus its reference fingerprint,
// sized so every section is non-trivial and at least one seed is capped.
func buildTestIndex(t *testing.T) (*LargeIndex, [32]byte, int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	seq := randSeq(rng, 12000, 0.01)
	// A repeat run so the cap path serializes too.
	for i := 4000; i < 4200; i++ {
		seq[i] = dna.Code(3)
	}
	ix, err := NewLargeWith(seq, 20, LargeConfig{MaxStore: 8})
	if err != nil {
		t.Fatal(err)
	}
	digest := sha256.Sum256([]byte("test-reference"))
	return ix, digest, int64(len(seq))
}

func sameIndex(t *testing.T, a, b *LargeIndex) {
	t.Helper()
	if a.k != b.k || a.seqLen != b.seqLen || a.maxStore != b.maxStore || a.partBits != b.partBits {
		t.Fatalf("scalar fields differ: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.k, a.seqLen, a.maxStore, a.partBits, b.k, b.seqLen, b.maxStore, b.partBits)
	}
	if !reflect.DeepEqual(a.slotOff, b.slotOff) || !reflect.DeepEqual(a.keys, b.keys) ||
		!reflect.DeepEqual(a.starts, b.starts) || !reflect.DeepEqual(a.counts, b.counts) ||
		!reflect.DeepEqual(a.positions, b.positions) {
		t.Fatal("section arrays differ after reload")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	ix, digest, refLen := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "ref.gnix")
	n, err := WriteIndexFile(path, ix, digest, refLen)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != n {
		t.Fatalf("reported %d bytes, file has %d", n, st.Size())
	}
	opt := LoadOptions{RefDigest: digest, RefLen: refLen}
	for _, tc := range []struct {
		name string
		opt  LoadOptions
	}{
		{"mmap", opt},
		{"mmap-verify", LoadOptions{RefDigest: digest, RefLen: refLen, Verify: true}},
		{"copy", LoadOptions{RefDigest: digest, RefLen: refLen, NoMmap: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := LoadIndexFile(path, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			sameIndex(t, ix, got)
			// Candidate generation must be identical through the reload.
			rng := rand.New(rand.NewSource(9))
			read := randSeq(rng, 62, 0)
			qo := CandidateOptions{MinVotes: 1, MaxBucket: 1024, MaxCandidates: 8}
			if !reflect.DeepEqual(ix.Candidates(read, qo), got.Candidates(read, qo)) {
				t.Fatal("candidates diverge after reload")
			}
		})
	}
	// Double-close must be safe.
	got, err := LoadIndexFile(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeIndex(t *testing.T) {
	ix, digest, refLen := buildTestIndex(t)
	img := EncodeIndex(ix, digest, refLen)
	got, err := DecodeIndex(img)
	if err != nil {
		t.Fatal(err)
	}
	sameIndex(t, ix, got)
}

func TestReadIndexInfo(t *testing.T) {
	ix, digest, refLen := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "ref.gnix")
	n, err := WriteIndexFile(path, ix, digest, refLen)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ReadIndexInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.RefDigest != digest || info.RefLen != refLen ||
		info.K != 20 || info.MaxStore != 8 ||
		info.SeqLen != int64(ix.seqLen) ||
		info.Slots != int64(len(ix.keys)) ||
		info.Positions != int64(len(ix.positions)) ||
		info.FileBytes != n {
		t.Fatalf("info = %+v", info)
	}
}

func TestLoadRefMismatch(t *testing.T) {
	ix, digest, refLen := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "ref.gnix")
	if _, err := WriteIndexFile(path, ix, digest, refLen); err != nil {
		t.Fatal(err)
	}
	wrong := digest
	wrong[0] ^= 0xff
	if _, err := LoadIndexFile(path, LoadOptions{RefDigest: wrong, RefLen: refLen}); !errors.Is(err, ErrRefMismatch) {
		t.Fatalf("wrong digest: err = %v, want ErrRefMismatch", err)
	}
	if _, err := LoadIndexFile(path, LoadOptions{RefDigest: digest, RefLen: refLen + 1}); !errors.Is(err, ErrRefMismatch) {
		t.Fatalf("wrong length: err = %v, want ErrRefMismatch", err)
	}
	// Zero fingerprint skips the check (inspection tooling).
	got, err := LoadIndexFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got.Close()
}

// corruptLoad writes a mutated copy of a valid image and loads it both
// ways, asserting each returns an error wrapping want.
func corruptLoad(t *testing.T, img []byte, want error, name string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bad.gnix")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, opt := range []LoadOptions{{Verify: true}, {NoMmap: true}} {
		ix, err := LoadIndexFile(path, opt)
		if ix != nil {
			ix.Close()
		}
		if !errors.Is(err, want) {
			t.Fatalf("%s (NoMmap=%v): err = %v, want %v", name, opt.NoMmap, err, want)
		}
	}
}

func TestLoadTypedErrors(t *testing.T) {
	ix, digest, refLen := buildTestIndex(t)
	img := EncodeIndex(ix, digest, refLen)

	bad := append([]byte(nil), img...)
	bad[0] = 'X'
	corruptLoad(t, bad, ErrNotIndex, "bad magic")

	bad = append([]byte(nil), img...)
	bad[8] = IndexVersion + 1 // version is outside the header CRC
	corruptLoad(t, bad, ErrVersion, "future version")

	corruptLoad(t, img[:len(img)-5], ErrTruncated, "truncated body")
	corruptLoad(t, img[:100], ErrTruncated, "truncated header")
	corruptLoad(t, append(append([]byte(nil), img...), 0), ErrCorrupt, "trailing bytes")

	bad = append([]byte(nil), img...)
	bad[40] ^= 0x01 // inside the CRC-guarded header (refLen field)
	corruptLoad(t, bad, ErrChecksum, "header bit-flip")

	bad = append([]byte(nil), img...)
	bad[len(bad)-1] ^= 0x01 // last positions byte
	corruptLoad(t, bad, ErrChecksum, "section bit-flip")

	if _, err := DecodeIndex([]byte("short")); !errors.Is(err, ErrNotIndex) {
		t.Fatalf("not an index: %v", err)
	}
}

// TestMmapSkipsSectionCRC documents the trust model: without Verify the
// mmap path accepts a section bit-flip (only the header is checked) but
// lookups still never panic; the copy path always catches it.
func TestMmapSkipsSectionCRC(t *testing.T) {
	if !mmapSupported || !hostLittle {
		t.Skip("no mmap fast path on this host")
	}
	ix, digest, refLen := buildTestIndex(t)
	img := EncodeIndex(ix, digest, refLen)
	img[len(img)-1] ^= 0x01
	path := filepath.Join(t.TempDir(), "flip.gnix")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIndexFile(path, LoadOptions{})
	if err != nil {
		t.Fatalf("mmap fast path rejected a section flip it does not check: %v", err)
	}
	defer got.Close()
	rng := rand.New(rand.NewSource(3))
	read := randSeq(rng, 62, 0)
	got.Candidates(read, CandidateOptions{MinVotes: 1, MaxBucket: 1024})
}

func TestWriteRefusesMappedIndex(t *testing.T) {
	ix, digest, refLen := buildTestIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "ref.gnix")
	if _, err := WriteIndexFile(path, ix, digest, refLen); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIndexFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.mapped == nil {
		t.Skip("load took the copy path on this host")
	}
	if _, err := WriteIndexFile(filepath.Join(dir, "again.gnix"), got, digest, refLen); err == nil {
		t.Fatal("WriteIndexFile accepted an mmap-loaded index")
	}
}
