package kmer

import (
	"math/rand"
	"testing"

	"gnumap/internal/dna"
)

func TestNewRejectsBadK(t *testing.T) {
	s := dna.MustParseSeq("ACGT")
	for _, k := range []int{0, -1, MaxDirectK + 1} {
		if _, err := New(s, k); err == nil {
			t.Errorf("k=%d: expected error", k)
		}
	}
}

func TestLookupExactness(t *testing.T) {
	// Brute-force comparison on a random sequence.
	rng := rand.New(rand.NewSource(42))
	seq := make(dna.Seq, 500)
	for i := range seq {
		seq[i] = dna.Code(rng.Intn(4))
	}
	const k = 4
	ix, err := New(seq, k)
	if err != nil {
		t.Fatal(err)
	}
	// Build expectations by brute force.
	want := make(map[dna.Kmer][]int32)
	for off := 0; off+k <= len(seq); off++ {
		m, ok := dna.PackKmer(seq, off, k)
		if !ok {
			continue
		}
		want[m] = append(want[m], int32(off))
	}
	for m, positions := range want {
		got := ix.Lookup(m)
		if len(got) != len(positions) {
			t.Fatalf("kmer %v: got %d hits, want %d", m, len(got), len(positions))
		}
		for i := range got {
			if got[i] != positions[i] {
				t.Fatalf("kmer %v hit %d: got %d, want %d", m, i, got[i], positions[i])
			}
		}
	}
	// Total position count must equal the number of windows.
	total := 0
	for _, p := range want {
		total += len(p)
	}
	if len(ix.positions) != total {
		t.Errorf("index holds %d positions, want %d", len(ix.positions), total)
	}
}

func TestAmbiguousBasesNotIndexed(t *testing.T) {
	seq := dna.MustParseSeq("ACGTNACGT")
	ix, err := New(seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	// "GTN", "TNA", "NAC" must be absent; "ACG" occurs at 0 and 5.
	m, _ := dna.PackKmer(dna.MustParseSeq("ACG"), 0, 3)
	hits := ix.Lookup(m)
	if len(hits) != 2 || hits[0] != 0 || hits[1] != 5 {
		t.Errorf("ACG hits = %v, want [0 5]", hits)
	}
	count := 0
	for b := 0; b < 1<<6; b++ {
		count += ix.BucketSize(dna.Kmer(b))
	}
	if count != 4 { // ACG, CGT, ACG, CGT
		t.Errorf("total indexed k-mers = %d, want 4", count)
	}
}

func TestShortSequence(t *testing.T) {
	ix, err := New(dna.MustParseSeq("AC"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.positions) != 0 {
		t.Error("sequence shorter than k must index nothing")
	}
	if got := ix.Candidates(dna.MustParseSeq("ACGTACGT"), CandidateOptions{}); len(got) != 0 {
		t.Errorf("candidates on empty index = %v", got)
	}
}

func TestCandidatesExactMatch(t *testing.T) {
	genome := dna.MustParseSeq("TTTTTTTTTTACGTACGGCCATTTTTTTTTT")
	read := dna.MustParseSeq("ACGTACGGCCA")
	ix, err := New(genome, 4)
	if err != nil {
		t.Fatal(err)
	}
	cands := ix.Candidates(read, CandidateOptions{})
	if len(cands) == 0 {
		t.Fatal("no candidates for exact substring")
	}
	if cands[0].Start != 10 {
		t.Errorf("top candidate start = %d, want 10", cands[0].Start)
	}
	// Every k-mer of the read votes for diagonal 10.
	if int(cands[0].Votes) != len(read)-4+1 {
		t.Errorf("votes = %d, want %d", cands[0].Votes, len(read)-4+1)
	}
}

func TestCandidatesWithMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome := make(dna.Seq, 2000)
	for i := range genome {
		genome[i] = dna.Code(rng.Intn(4))
	}
	read := genome[700:762].Clone()
	read[30] = dna.Code((int(read[30]) + 1) % 4) // one SNP mid-read
	ix, err := New(genome, DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	cands := ix.Candidates(read, CandidateOptions{MinVotes: 2})
	if len(cands) == 0 || cands[0].Start != 700 {
		t.Fatalf("candidates = %v, want top at 700", cands)
	}
}

func TestCandidatesRepeatMasking(t *testing.T) {
	// Genome of all A's: the poly-A k-mer occurs everywhere.
	genome := make(dna.Seq, 300) // all A (zero value)
	read := make(dna.Seq, 20)
	ix, err := New(genome, 5)
	if err != nil {
		t.Fatal(err)
	}
	unmasked := ix.Candidates(read, CandidateOptions{})
	if len(unmasked) == 0 {
		t.Fatal("expected candidates without masking")
	}
	masked := ix.Candidates(read, CandidateOptions{MaxBucket: 10})
	if len(masked) != 0 {
		t.Errorf("repeat masking failed: %d candidates", len(masked))
	}
}

func TestCandidatesCapAndOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	genome := make(dna.Seq, 5000)
	for i := range genome {
		genome[i] = dna.Code(rng.Intn(4))
	}
	// Plant the read at two locations, one with a mismatch so votes differ.
	read := genome[1000:1040].Clone()
	copy(genome[3000:3040], read)
	genome[3005] = dna.Code((int(genome[3005]) + 1) % 4)
	ix, err := New(genome, DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	cands := ix.Candidates(read, CandidateOptions{MinVotes: 2})
	if len(cands) < 2 {
		t.Fatalf("want >=2 candidates, got %v", cands)
	}
	if cands[0].Start != 1000 {
		t.Errorf("best candidate = %d, want 1000 (perfect copy)", cands[0].Start)
	}
	if cands[0].Votes < cands[1].Votes {
		t.Error("candidates not sorted by votes")
	}
	capped := ix.Candidates(read, CandidateOptions{MinVotes: 2, MaxCandidates: 1})
	if len(capped) != 1 || capped[0].Start != 1000 {
		t.Errorf("cap kept %v, want only 1000", capped)
	}
}

func TestCandidateStride(t *testing.T) {
	genome := dna.MustParseSeq("TTTTTTTTTTACGTACGGCCATTTTTTTTTT")
	read := dna.MustParseSeq("ACGTACGGCCA")
	ix, err := New(genome, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := ix.Candidates(read, CandidateOptions{Stride: 1})
	strided := ix.Candidates(read, CandidateOptions{Stride: 4})
	if len(strided) == 0 || strided[0].Start != full[0].Start {
		t.Errorf("strided candidates lost the hit: %v vs %v", strided, full)
	}
	if strided[0].Votes >= full[0].Votes {
		t.Errorf("stride must reduce votes: %d >= %d", strided[0].Votes, full[0].Votes)
	}
}

func TestNegativeDiagonalClamped(t *testing.T) {
	// Read hangs off the start of the genome: diagonal would be negative.
	genome := dna.MustParseSeq("ACGGCCATTAACGGTT")
	read := append(dna.MustParseSeq("TTTT"), genome[:8]...)
	ix, err := New(genome, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ix.Candidates(read, CandidateOptions{}) {
		if c.Start < 0 {
			t.Errorf("negative candidate start %d", c.Start)
		}
	}
}

// TestNegativeDiagonalVotesNotPooled: distinct negative implied starts
// must NOT pool their votes into one inflated position-0 candidate.
// Position 0 gets the *best* negative/zero diagonal's votes, not the sum.
func TestNegativeDiagonalVotesNotPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	genome := make(dna.Seq, 40)
	for i := range genome {
		genome[i] = dna.Code(rng.Intn(4))
	}
	const k = 4
	ix, err := New(genome, k)
	if err != nil {
		t.Fatal(err)
	}
	// read[8:16] matches genome[1:9]  -> implied start 1-8  = -7
	// read[16:24] matches genome[12:20] -> implied start 12-16 = -4
	// The N prefix keeps those k-mers from voting anywhere else.
	read := dna.MustParseSeq("NNNNNNNN")
	read = append(read, genome[1:9].Clone()...)
	read = append(read, genome[12:20].Clone()...)

	// Independent oracle: vote on true diagonals with a plain map; the
	// position-0 candidate must carry the best non-positive diagonal's
	// votes, not their sum.
	votes := map[int32]int32{}
	for off := 0; off+k <= len(read); off++ {
		m, ok := dna.PackKmer(read, off, k)
		if !ok {
			continue
		}
		for _, p := range ix.Lookup(m) {
			votes[p-int32(off)]++
		}
	}
	var wantZero, sumNonPos int32
	negDiags := 0
	for d, v := range votes {
		if d <= 0 {
			sumNonPos += v
			if d < 0 {
				negDiags++
			}
			if v > wantZero {
				wantZero = v
			}
		}
	}
	if negDiags < 2 {
		t.Fatalf("construction broken: %d negative diagonals voted, want >=2", negDiags)
	}
	if sumNonPos <= wantZero {
		t.Fatalf("construction broken: pooling would be invisible (sum %d, max %d)", sumNonPos, wantZero)
	}

	cands := ix.Candidates(read, CandidateOptions{})
	zeros := 0
	for _, c := range cands {
		if c.Start == 0 {
			zeros++
			if c.Votes != wantZero {
				t.Errorf("position-0 votes = %d, want max %d (pooled sum would be %d)",
					c.Votes, wantZero, sumNonPos)
			}
		}
	}
	if zeros != 1 {
		t.Errorf("%d candidates at position 0, want exactly 1", zeros)
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	ix, err := New(dna.MustParseSeq("ACGTACGTACGT"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if ix.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
	if ix.K() != 4 || ix.SeqLen() != 12 {
		t.Errorf("K/SeqLen wrong: %d/%d", ix.K(), ix.SeqLen())
	}
}

// TestCandidatesIntoMatchesCandidates: the buffered query must return
// the same candidates as the allocating one, and repeated calls on one
// CandidateBuf must not allocate or carry state across reads.
func TestCandidatesIntoMatchesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	seq := make(dna.Seq, 4000)
	for i := range seq {
		seq[i] = dna.Code(rng.Intn(4))
	}
	ix, err := New(seq, 6)
	if err != nil {
		t.Fatal(err)
	}
	opt := CandidateOptions{MaxCandidates: 8, MinVotes: 2, Slack: 2}
	var buf CandidateBuf
	reads := make([]dna.Seq, 20)
	for r := range reads {
		start := rng.Intn(len(seq) - 40)
		reads[r] = seq[start : start+40]
	}
	for r, read := range reads {
		want := ix.Candidates(read, opt)
		got := ix.CandidatesInto(read, opt, &buf)
		if len(got) != len(want) {
			t.Fatalf("read %d: %d candidates via buf, %d fresh", r, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("read %d cand %d: %+v vs %+v", r, i, got[i], want[i])
			}
		}
	}
	// Steady state: the warm buffer must not allocate.
	read := reads[0]
	avg := testing.AllocsPerRun(20, func() {
		ix.CandidatesInto(read, opt, &buf)
	})
	if avg > 0 {
		t.Errorf("warm CandidatesInto allocates %.1f/op, want 0", avg)
	}
}
