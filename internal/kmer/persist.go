// On-disk persistence for the large-seed index: an mmap-friendly,
// little-endian, page-aligned format so a genome-scale index loads in
// milliseconds instead of being rebuilt per run.
//
// Layout (all integers little-endian):
//
//	magic    [8]byte  "GNUMAPIX"
//	version  uint16   (currently 1)
//	hlen     uint32   header length (v1: exactly 108)
//	header   [hlen]   fixed v1 layout, see encodeIndexHeader — the
//	                  reference fingerprint (SHA-256 + length), seed
//	                  parameters, section element counts, and one
//	                  CRC-32C per section
//	hcrc     uint32   CRC-32C of header
//	-- zero padding to offset 4096 --
//	slotOff  [(nParts+1) * 8]   partition directory
//	keys     [nSlots * 8]
//	starts   [nSlots * 4]       (padded to an 8-byte boundary)
//	counts   [nSlots * 4]       (padded to an 8-byte boundary)
//	positions[nPos * 4]
//
// Every section starts 8-byte aligned at a fixed offset computable from
// the header, so on a little-endian host the mmap'd file is used
// zero-copy: the slot arrays are reinterpreted views of the mapping.
// Big-endian hosts and non-mmap platforms fall back to a read + decode
// copy. The header CRC is always verified; section CRCs are verified on
// the copy path and on demand (LoadOptions.Verify) for the mmap path —
// full-file checksumming on every load would cost as much as the
// rebuild the format exists to avoid, which is the same trust model
// every mmap'd genomics index (SNAP, BWA) uses. Structural validation
// (directory shape, bounds) always runs, and lookups bounds-guard, so
// a torn file can degrade lookups but never corrupt memory.
//
// WriteIndexFile is atomic exactly like ckpt.WriteFile: temp file in
// the destination directory, fsync, rename, directory fsync.
package kmer

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"unsafe"
)

// IndexMagic identifies a persisted seed-index file.
var IndexMagic = [8]byte{'G', 'N', 'U', 'M', 'A', 'P', 'I', 'X'}

// IndexVersion is the current on-disk format version.
const IndexVersion = 1

// ixHeaderLen is the exact v1 header size.
const ixHeaderLen = 32 + 8 + 8 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 5*4

// ixPage is the header block size; the first section starts here so
// every section offset is page-aligned relative to the mmap base.
const ixPage = 4096

// Typed failure modes of the index loader, mirroring package ckpt:
// every load error wraps exactly one of these.
var (
	// ErrNotIndex: the data does not start with the magic bytes.
	ErrNotIndex = errors.New("kmer: not a seed-index file")
	// ErrVersion: the format version is not supported by this build.
	ErrVersion = errors.New("kmer: unsupported seed-index version")
	// ErrTruncated: the data ends before a declared section does.
	ErrTruncated = errors.New("kmer: truncated seed-index")
	// ErrChecksum: a section's CRC does not match its contents.
	ErrChecksum = errors.New("kmer: seed-index checksum mismatch")
	// ErrCorrupt: the checksummed framing parses but the declared
	// structure is impossible (directory not power-of-two sized, counts
	// out of range, trailing bytes).
	ErrCorrupt = errors.New("kmer: corrupt seed-index structure")
	// ErrRefMismatch: the index was built for a different reference (or
	// different seed parameters) than the one being mapped.
	ErrRefMismatch = errors.New("kmer: seed-index reference mismatch")
)

// hostLittle reports whether this host stores integers little-endian —
// the precondition for zero-copy reinterpretation of the on-disk
// sections.
var hostLittle = binary.NativeEndian.Uint16([]byte{0x01, 0x02}) == 0x0201

// indexHeader is the decoded fixed header.
type indexHeader struct {
	refDigest          [32]byte
	refLen, seqLen     int64
	k, maxStore        int
	partBits           uint
	nParts             int64
	nSlots, nPos       int64
	crcSlotOff         uint32
	crcKeys, crcStarts uint32
	crcCounts, crcPos  uint32
}

// IndexInfo is the publicly inspectable part of a persisted index
// header (ReadIndexInfo) — enough for a CLI to adopt the stored seed
// length and to explain fingerprint mismatches.
type IndexInfo struct {
	RefDigest [32]byte
	RefLen    int64
	SeqLen    int64
	K         int
	MaxStore  int
	Slots     int64
	Positions int64
	FileBytes int64
}

// indexLayout maps a header to section byte offsets.
type indexLayout struct {
	slotOff, keys, starts, counts, positions int64
	size                                     int64
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// layoutFor derives section offsets, rejecting headers whose declared
// counts are impossible (overflow, int32 position cursors exceeded).
func layoutFor(h *indexHeader) (indexLayout, error) {
	var l indexLayout
	if h.partBits < 1 || h.partBits > 16 || h.nParts != 1<<h.partBits {
		return l, fmt.Errorf("%w: %d partitions for %d partition bits", ErrCorrupt, h.nParts, h.partBits)
	}
	if h.k < 1 || h.k > 32 {
		return l, fmt.Errorf("%w: seed length %d", ErrCorrupt, h.k)
	}
	if h.maxStore < 1 {
		return l, fmt.Errorf("%w: max-store %d", ErrCorrupt, h.maxStore)
	}
	if h.seqLen < 0 || h.seqLen > 1<<31-1 || h.refLen < 0 {
		return l, fmt.Errorf("%w: sequence length %d", ErrCorrupt, h.seqLen)
	}
	// starts index positions with int32, and slots can be at most 4x
	// the distinct seed count, itself bounded by the sequence length.
	if h.nPos < 0 || h.nPos > 1<<31-1 || h.nSlots < 0 || h.nSlots > 1<<33 {
		return l, fmt.Errorf("%w: %d slots / %d positions", ErrCorrupt, h.nSlots, h.nPos)
	}
	l.slotOff = ixPage
	l.keys = l.slotOff + (h.nParts+1)*8
	l.starts = l.keys + h.nSlots*8
	l.counts = align8(l.starts + h.nSlots*4)
	l.positions = align8(l.counts + h.nSlots*4)
	l.size = l.positions + h.nPos*4
	return l, nil
}

var crcTab = crc32.MakeTable(crc32.Castagnoli)

func crcOf(b []byte) uint32 { return crc32.Checksum(b, crcTab) }

// viewBytes reinterprets a slice's backing memory as raw bytes. Only
// meaningful on little-endian hosts, where the in-memory layout equals
// the on-disk layout.
func viewBytes[E int32 | int64 | uint64](s []E) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// sectionBytes renders a slice in the on-disk (little-endian) layout:
// zero-copy on little-endian hosts, an encoded copy elsewhere.
func i64LE(s []int64) []byte {
	if hostLittle {
		return viewBytes(s)
	}
	b := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b
}

func u64LE(s []uint64) []byte {
	if hostLittle {
		return viewBytes(s)
	}
	b := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func i32LE(s []int32) []byte {
	if hostLittle {
		return viewBytes(s)
	}
	b := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return b
}

// aligned reports whether b's backing memory is n-byte aligned.
func aligned(b []byte, n uintptr) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%n == 0
}

// decI64 decodes a little-endian int64 section: a zero-copy
// reinterpretation of b when host endianness and alignment allow, an
// element-wise copy otherwise. The result may alias b.
func decI64(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func decU64(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func decI32(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// encodeIndexHeader renders the fixed v1 header.
func encodeIndexHeader(h *indexHeader) []byte {
	b := make([]byte, 0, ixHeaderLen)
	b = append(b, h.refDigest[:]...)
	b = binary.LittleEndian.AppendUint64(b, uint64(h.refLen))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.seqLen))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.k))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.maxStore))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.partBits))
	b = binary.LittleEndian.AppendUint32(b, 0) // reserved
	b = binary.LittleEndian.AppendUint64(b, uint64(h.nParts))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.nSlots))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.nPos))
	b = binary.LittleEndian.AppendUint32(b, h.crcSlotOff)
	b = binary.LittleEndian.AppendUint32(b, h.crcKeys)
	b = binary.LittleEndian.AppendUint32(b, h.crcStarts)
	b = binary.LittleEndian.AppendUint32(b, h.crcCounts)
	b = binary.LittleEndian.AppendUint32(b, h.crcPos)
	return b
}

// parseIndexHeader validates the preamble and the CRC-guarded header
// from the first bytes of a file (at least the first ixPage bytes, or
// the whole file when smaller).
func parseIndexHeader(block []byte) (*indexHeader, error) {
	if len(block) < len(IndexMagic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrNotIndex, len(block))
	}
	if string(block[:len(IndexMagic)]) != string(IndexMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotIndex, block[:len(IndexMagic)])
	}
	if len(block) < 14 {
		return nil, fmt.Errorf("%w: missing version/header length", ErrTruncated)
	}
	ver := binary.LittleEndian.Uint16(block[8:10])
	if ver != IndexVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, ver, IndexVersion)
	}
	hlen := int64(binary.LittleEndian.Uint32(block[10:14]))
	if hlen != ixHeaderLen {
		return nil, fmt.Errorf("%w: header length %d, v1 is %d", ErrCorrupt, hlen, ixHeaderLen)
	}
	if int64(len(block)) < 14+hlen+4 {
		return nil, fmt.Errorf("%w: header section", ErrTruncated)
	}
	hb := block[14 : 14+hlen]
	hcrc := binary.LittleEndian.Uint32(block[14+hlen : 14+hlen+4])
	if crcOf(hb) != hcrc {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	h := &indexHeader{}
	copy(h.refDigest[:], hb[0:32])
	h.refLen = int64(binary.LittleEndian.Uint64(hb[32:40]))
	h.seqLen = int64(binary.LittleEndian.Uint64(hb[40:48]))
	h.k = int(int32(binary.LittleEndian.Uint32(hb[48:52])))
	h.maxStore = int(int32(binary.LittleEndian.Uint32(hb[52:56])))
	h.partBits = uint(binary.LittleEndian.Uint32(hb[56:60]))
	h.nParts = int64(binary.LittleEndian.Uint64(hb[64:72]))
	h.nSlots = int64(binary.LittleEndian.Uint64(hb[72:80]))
	h.nPos = int64(binary.LittleEndian.Uint64(hb[80:88]))
	h.crcSlotOff = binary.LittleEndian.Uint32(hb[88:92])
	h.crcKeys = binary.LittleEndian.Uint32(hb[92:96])
	h.crcStarts = binary.LittleEndian.Uint32(hb[96:100])
	h.crcCounts = binary.LittleEndian.Uint32(hb[100:104])
	h.crcPos = binary.LittleEndian.Uint32(hb[104:108])
	return h, nil
}

// EncodeIndex serializes a built index for the given reference
// fingerprint. Large indexes should prefer WriteIndexFile, which
// streams sections without concatenating the whole file in memory.
func EncodeIndex(ix *LargeIndex, refDigest [32]byte, refLen int64) []byte {
	h, secs := indexSections(ix, refDigest, refLen)
	lay, err := layoutFor(h)
	if err != nil {
		// A built index always lays out; this is unreachable.
		panic(err)
	}
	out := make([]byte, lay.size)
	copy(out, IndexMagic[:])
	binary.LittleEndian.PutUint16(out[8:10], IndexVersion)
	binary.LittleEndian.PutUint32(out[10:14], ixHeaderLen)
	hb := encodeIndexHeader(h)
	copy(out[14:], hb)
	binary.LittleEndian.PutUint32(out[14+ixHeaderLen:], crcOf(hb))
	for i, off := range []int64{lay.slotOff, lay.keys, lay.starts, lay.counts, lay.positions} {
		copy(out[off:], secs[i])
	}
	return out
}

// indexSections renders the five section byte images and the header
// carrying their CRCs.
func indexSections(ix *LargeIndex, refDigest [32]byte, refLen int64) (*indexHeader, [5][]byte) {
	secs := [5][]byte{
		i64LE(ix.slotOff), u64LE(ix.keys), i32LE(ix.starts),
		i32LE(ix.counts), i32LE(ix.positions),
	}
	h := &indexHeader{
		refDigest: refDigest, refLen: refLen, seqLen: int64(ix.seqLen),
		k: ix.k, maxStore: ix.maxStore, partBits: ix.partBits,
		nParts: int64(len(ix.slotOff)) - 1,
		nSlots: int64(len(ix.keys)), nPos: int64(len(ix.positions)),
		crcSlotOff: crcOf(secs[0]), crcKeys: crcOf(secs[1]),
		crcStarts: crcOf(secs[2]), crcCounts: crcOf(secs[3]),
		crcPos: crcOf(secs[4]),
	}
	return h, secs
}

// WriteIndexFile atomically persists the index for the reference with
// the given fingerprint: sections stream through a buffered writer to a
// temp file in the destination directory, which is fsynced and renamed
// over path (then the directory is fsynced). Returns the file size.
func WriteIndexFile(path string, ix *LargeIndex, refDigest [32]byte, refLen int64) (int64, error) {
	if ix.mapped != nil {
		return 0, fmt.Errorf("kmer: refusing to rewrite an mmap-loaded index")
	}
	h, secs := indexSections(ix, refDigest, refLen)
	lay, err := layoutFor(h)
	if err != nil {
		return 0, fmt.Errorf("kmer: write %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp.*")
	if err != nil {
		return 0, fmt.Errorf("kmer: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (int64, error) {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("kmer: write %s: %w", path, err)
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	hb := encodeIndexHeader(h)
	block := make([]byte, ixPage)
	copy(block, IndexMagic[:])
	binary.LittleEndian.PutUint16(block[8:10], IndexVersion)
	binary.LittleEndian.PutUint32(block[10:14], ixHeaderLen)
	copy(block[14:], hb)
	binary.LittleEndian.PutUint32(block[14+ixHeaderLen:], crcOf(hb))
	if _, err := w.Write(block); err != nil {
		return fail(err)
	}
	offs := []int64{lay.slotOff, lay.keys, lay.starts, lay.counts, lay.positions}
	written := int64(ixPage)
	var pad [8]byte
	for i, sec := range secs {
		if gap := offs[i] - written; gap > 0 {
			if _, err := w.Write(pad[:gap]); err != nil {
				return fail(err)
			}
			written += gap
		}
		if _, err := w.Write(sec); err != nil {
			return fail(err)
		}
		written += int64(len(sec))
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("kmer: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("kmer: write %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return written, nil
}

// LoadOptions controls LoadIndexFile.
type LoadOptions struct {
	// RefDigest/RefLen pin the index to the reference about to be
	// mapped; a mismatch returns ErrRefMismatch. Both zero skips the
	// check (inspection tooling).
	RefDigest [32]byte
	RefLen    int64
	// Verify additionally checks every section CRC on the mmap path
	// (the copy path always verifies). Costs a full file scan.
	Verify bool
	// NoMmap forces the portable read + decode-copy path.
	NoMmap bool
}

// LoadIndexFile opens a persisted index. On little-endian unix hosts
// the file is mmap'd and the slot arrays are zero-copy views of the
// mapping (close the index to release it); elsewhere — or with NoMmap —
// the file is read and decoded with full CRC verification. Every
// failure wraps one of the typed sentinel errors.
func LoadIndexFile(path string, opt LoadOptions) (*LargeIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("kmer: %s: %w", path, err)
	}
	size := st.Size()
	blockLen := int64(ixPage)
	if size < blockLen {
		blockLen = size
	}
	block := make([]byte, blockLen)
	if _, err := io.ReadFull(f, block); err != nil {
		return nil, fmt.Errorf("%s: %w: header block", path, ErrTruncated)
	}
	h, err := parseIndexHeader(block)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	lay, err := layoutFor(h)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case size < lay.size:
		return nil, fmt.Errorf("%s: %w: %d bytes of %d", path, ErrTruncated, size, lay.size)
	case size > lay.size:
		return nil, fmt.Errorf("%s: %w: %d trailing bytes", path, ErrCorrupt, size-lay.size)
	}
	if err := checkRef(h, opt); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !opt.NoMmap && mmapSupported && hostLittle {
		if b, merr := mmapFile(f, size); merr == nil {
			ix, err := indexFromBytes(h, lay, b, b, opt.Verify)
			if err != nil {
				munmap(b)
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return ix, nil
		}
		// mmap unavailable for this file: fall through to the copy path.
	}
	data := make([]byte, size)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("kmer: %s: %w", path, err)
	}
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, fmt.Errorf("%s: %w: body", path, ErrTruncated)
	}
	ix, err := indexFromBytes(h, lay, data, nil, true)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ix, nil
}

// checkRef validates the reference fingerprint against expectations.
func checkRef(h *indexHeader, opt LoadOptions) error {
	if opt.RefLen == 0 && opt.RefDigest == ([32]byte{}) {
		return nil
	}
	if h.refDigest != opt.RefDigest {
		return fmt.Errorf("%w: reference digest %x != %x", ErrRefMismatch, h.refDigest[:8], opt.RefDigest[:8])
	}
	if h.refLen != opt.RefLen {
		return fmt.Errorf("%w: reference length %d != %d", ErrRefMismatch, h.refLen, opt.RefLen)
	}
	return nil
}

// DecodeIndex parses an index from an in-memory image with full
// section CRC verification — the portable load path and the fuzz
// surface. The returned index may alias data; callers must not mutate
// it afterwards.
func DecodeIndex(data []byte) (*LargeIndex, error) {
	h, err := parseIndexHeader(data)
	if err != nil {
		return nil, err
	}
	lay, err := layoutFor(h)
	if err != nil {
		return nil, err
	}
	switch {
	case int64(len(data)) < lay.size:
		return nil, fmt.Errorf("%w: %d bytes of %d", ErrTruncated, len(data), lay.size)
	case int64(len(data)) > lay.size:
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, int64(len(data))-lay.size)
	}
	return indexFromBytes(h, lay, data, nil, true)
}

// indexFromBytes builds the index over an on-disk image (an mmap or a
// read buffer), optionally CRC-verifying sections, and always
// validating the directory structure.
func indexFromBytes(h *indexHeader, lay indexLayout, data, mapped []byte, verify bool) (*LargeIndex, error) {
	sl := data[lay.slotOff : lay.slotOff+(h.nParts+1)*8]
	kb := data[lay.keys : lay.keys+h.nSlots*8]
	sb := data[lay.starts : lay.starts+h.nSlots*4]
	cb := data[lay.counts : lay.counts+h.nSlots*4]
	pb := data[lay.positions : lay.positions+h.nPos*4]
	if verify {
		for _, s := range []struct {
			name string
			b    []byte
			want uint32
		}{
			{"slotOff", sl, h.crcSlotOff}, {"keys", kb, h.crcKeys},
			{"starts", sb, h.crcStarts}, {"counts", cb, h.crcCounts},
			{"positions", pb, h.crcPos},
		} {
			if crcOf(s.b) != s.want {
				return nil, fmt.Errorf("%w: %s section", ErrChecksum, s.name)
			}
		}
	}
	ix := &LargeIndex{
		k: h.k, seqLen: int(h.seqLen), maxStore: h.maxStore, partBits: h.partBits,
		slotOff: decI64(sl), keys: decU64(kb),
		starts: decI32(sb), counts: decI32(cb), positions: decI32(pb),
		mapped: mapped,
	}
	// Directory structure: monotone, power-of-two (or empty) partition
	// regions covering exactly the slot array. With this validated,
	// lookupTotal's probe arithmetic stays inside the arrays for any
	// section contents.
	if ix.slotOff[0] != 0 || ix.slotOff[h.nParts] != h.nSlots {
		return nil, fmt.Errorf("%w: directory bounds", ErrCorrupt)
	}
	for p := int64(0); p < h.nParts; p++ {
		size := ix.slotOff[p+1] - ix.slotOff[p]
		if size < 0 || (size != 0 && size&(size-1) != 0) {
			return nil, fmt.Errorf("%w: partition %d size %d", ErrCorrupt, p, size)
		}
	}
	return ix, nil
}

// ReadIndexInfo reads and validates only the header of a persisted
// index — cheap inspection for CLIs (adopting the stored seed length,
// explaining mismatches) without loading the sections.
func ReadIndexInfo(path string) (IndexInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return IndexInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return IndexInfo{}, fmt.Errorf("kmer: %s: %w", path, err)
	}
	blockLen := int64(ixPage)
	if st.Size() < blockLen {
		blockLen = st.Size()
	}
	block := make([]byte, blockLen)
	if _, err := io.ReadFull(f, block); err != nil {
		return IndexInfo{}, fmt.Errorf("%s: %w: header block", path, ErrTruncated)
	}
	h, err := parseIndexHeader(block)
	if err != nil {
		return IndexInfo{}, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := layoutFor(h); err != nil {
		return IndexInfo{}, fmt.Errorf("%s: %w", path, err)
	}
	return IndexInfo{
		RefDigest: h.refDigest, RefLen: h.refLen, SeqLen: h.seqLen,
		K: h.k, MaxStore: h.maxStore, Slots: h.nSlots, Positions: h.nPos,
		FileBytes: st.Size(),
	}, nil
}

// Close releases the mmap backing of a file-loaded index; it is a
// no-op for heap-built indexes. The index must not be used afterwards.
func (ix *LargeIndex) Close() error {
	if ix.mapped == nil {
		return nil
	}
	b := ix.mapped
	ix.mapped = nil
	ix.slotOff, ix.keys, ix.starts, ix.counts, ix.positions = nil, nil, nil, nil, nil
	return munmap(b)
}
