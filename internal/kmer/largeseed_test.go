package kmer

import (
	"math/rand"
	"reflect"
	"testing"

	"gnumap/internal/dna"
)

// randSeq builds a random sequence with occasional ambiguous bases so
// the rolling-scan restart logic is exercised.
func randSeq(rng *rand.Rand, n int, nFrac float64) dna.Seq {
	seq := make(dna.Seq, n)
	for i := range seq {
		if rng.Float64() < nFrac {
			seq[i] = dna.N
		} else {
			seq[i] = dna.Code(rng.Intn(4))
		}
	}
	return seq
}

// TestLargeIndexMatchesDirect: at any k both representations index, the
// hashed index must return exactly the direct index's buckets and vote
// exactly the same candidates — the default-path bit-identity claim.
func TestLargeIndexMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seq := randSeq(rng, 4000, 0.01)
	for _, k := range []int{4, 10, 12} {
		direct, err := New(seq, k)
		if err != nil {
			t.Fatal(err)
		}
		large, err := NewLarge(seq, k)
		if err != nil {
			t.Fatal(err)
		}
		if large.SeqLen() != direct.SeqLen() || large.K() != direct.K() {
			t.Fatalf("k=%d: shape mismatch", k)
		}
		// Full bucket sweep for small k; for larger k compare every
		// k-mer present in the sequence plus random absent ones.
		var probe []dna.Kmer
		if k <= 8 {
			for b := 0; b < 1<<(2*k); b++ {
				probe = append(probe, dna.Kmer(b))
			}
		} else {
			forEachKmer(seq, k, func(m dna.Kmer, _ int32) { probe = append(probe, m) })
			for i := 0; i < 20000; i++ {
				probe = append(probe, dna.Kmer(rng.Int63())&(1<<(2*k)-1))
			}
		}
		for _, m := range probe {
			want := direct.Lookup(m)
			got, total := large.lookupTotal(m)
			if total != len(want) || !equalI32(got, want) {
				t.Fatalf("k=%d kmer %v: large %v/%d != direct %v", k, m, got, total, want)
			}
		}
		for trial := 0; trial < 50; trial++ {
			start := rng.Intn(len(seq) - 80)
			read := seq[start : start+62].Clone()
			read[rng.Intn(62)] = dna.Code(rng.Intn(4))
			opt := CandidateOptions{MinVotes: 2, MaxBucket: 1024, MaxCandidates: 8, Slack: 2}
			dc := direct.Candidates(read, opt)
			lc := large.Candidates(read, opt)
			if !reflect.DeepEqual(dc, lc) {
				t.Fatalf("k=%d read@%d: candidates diverge\ndirect: %v\nlarge:  %v", k, start, dc, lc)
			}
		}
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLargeIndexBigK: seeds beyond the direct ceiling still find a
// planted read, and New refuses where NewLarge works.
func TestLargeIndexBigK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := randSeq(rng, 20000, 0)
	for _, k := range []int{15, 20, 32} {
		if _, err := New(seq, k); err == nil {
			t.Fatalf("direct index accepted k=%d", k)
		}
		ix, err := NewLarge(seq, k)
		if err != nil {
			t.Fatal(err)
		}
		read := seq[7000:7062].Clone()
		cands := ix.Candidates(read, CandidateOptions{MinVotes: 2})
		if len(cands) == 0 || cands[0].Start != 7000 {
			t.Fatalf("k=%d: candidates = %v, want top at 7000", k, cands)
		}
	}
	if _, err := NewLarge(seq, 33); err == nil {
		t.Fatal("accepted k above dna.MaxKmerLen")
	}
}

// TestLargeIndexFrequencyCap: a hot seed's stored sample is truncated
// but its true count survives, so MaxBucket masking still fires and an
// unmasked query is bounded by the cap instead of the repeat size.
func TestLargeIndexFrequencyCap(t *testing.T) {
	seq := make(dna.Seq, 500) // poly-A
	const k = 16
	ix, err := NewLargeWith(seq, k, LargeConfig{MaxStore: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := dna.PackKmer(seq, 0, k)
	if !ok {
		t.Fatal("pack failed")
	}
	wantTotal := len(seq) - k + 1
	if got := ix.BucketSize(m); got != wantTotal {
		t.Fatalf("true count = %d, want %d", got, wantTotal)
	}
	hits := ix.Lookup(m)
	if len(hits) != 4 || !equalI32(hits, []int32{0, 1, 2, 3}) {
		t.Fatalf("capped sample = %v, want first 4 positions", hits)
	}
	// Masking tests the true count, not the sample size.
	read := make(dna.Seq, 30)
	if got := ix.Candidates(read, CandidateOptions{MaxBucket: 100}); len(got) != 0 {
		t.Fatalf("repeat not masked through the cap: %v", got)
	}
	// Unmasked, the voter sees at most MaxStore positions per seed.
	var buf CandidateBuf
	ix.CandidatesInto(read, CandidateOptions{}, &buf)
	if buf.Stats.Hits > int64(4*(len(read)-k+1)) {
		t.Fatalf("cap leaked: %d hits voted", buf.Stats.Hits)
	}
	sum := ix.Summary()
	if sum.Seeds != 1 || sum.Capped != 1 || sum.Positions != 4 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestLargeIndexParallelDeterminism: the layout must not depend on the
// build worker count.
func TestLargeIndexParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seq := randSeq(rng, 30000, 0.005)
	base, err := NewLargeWith(seq, 18, LargeConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 7, 16} {
		ix, err := NewLargeWith(seq, 18, LargeConfig{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.slotOff, ix.slotOff) ||
			!reflect.DeepEqual(base.keys, ix.keys) ||
			!reflect.DeepEqual(base.starts, ix.starts) ||
			!reflect.DeepEqual(base.counts, ix.counts) ||
			!reflect.DeepEqual(base.positions, ix.positions) {
			t.Fatalf("workers=%d: layout differs from serial build", w)
		}
	}
}

// TestForEachKmerRangeChunks: chunked scans must emit exactly the
// full-scan k-mer set, including around ambiguous-base restarts and
// chunk boundaries.
func TestForEachKmerRangeChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seq := randSeq(rng, 997, 0.05)
	const k = 7
	type occ struct {
		m   dna.Kmer
		pos int32
	}
	var want []occ
	forEachKmer(seq, k, func(m dna.Kmer, pos int32) { want = append(want, occ{m, pos}) })
	for _, chunks := range []int{1, 2, 5, 13} {
		var got []occ
		n := len(seq) - k + 1
		for c := 0; c < chunks; c++ {
			forEachKmerRange(seq, k, c*n/chunks, (c+1)*n/chunks, func(m dna.Kmer, pos int32) {
				got = append(got, occ{m, pos})
			})
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d chunks: %d k-mers, want %d", chunks, len(got), len(want))
		}
	}
}

// TestSeedStats: the per-call stats must count seeds, masked seeds and
// voted positions.
func TestSeedStats(t *testing.T) {
	genome := dna.MustParseSeq("TTTTTTTTTTACGTACGGCCATTTTTTTTTT")
	read := dna.MustParseSeq("ACGTACGGCCA")
	ix, err := New(genome, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf CandidateBuf
	ix.CandidatesInto(read, CandidateOptions{}, &buf)
	if buf.Stats.Seeds != int64(len(read)-4+1) {
		t.Fatalf("seeds = %d, want %d", buf.Stats.Seeds, len(read)-4+1)
	}
	if buf.Stats.Hits == 0 {
		t.Fatal("no hits counted")
	}
	// A read carrying the hot poly-T seed: masking it must show up in
	// Masked and shrink Hits.
	read = dna.MustParseSeq("TTTTTTACGTACGGCCA")
	ix.CandidatesInto(read, CandidateOptions{}, &buf)
	unmaskedHits := buf.Stats.Hits
	ix.CandidatesInto(read, CandidateOptions{MaxBucket: 3}, &buf)
	if buf.Stats.Masked == 0 {
		t.Fatal("no masked seeds counted")
	}
	if buf.Stats.Hits >= unmaskedHits {
		t.Fatalf("masking did not reduce hits: %d >= %d", buf.Stats.Hits, unmaskedHits)
	}
}
