// Large-seed index: the SNAP-style candidate generator for seeds beyond
// the direct-addressing ceiling (paper front end is k = 10; SNAP shows
// s ~ 20 seeds cut candidate alignments by orders of magnitude at
// genome scale because random seed collisions scale as L/4^s).
//
// A direct offset table is impossible above MaxDirectK (4^s buckets),
// so the LargeIndex is a two-level hash: the top partBits bits of a
// mixed 64-bit seed hash select a partition, and each partition owns a
// power-of-two open-addressed (linear probing) region of one shared
// slot array. Slots carry the seed key, the seed's TRUE occurrence
// count, and the start of its stored positions in one shared position
// array. High-occurrence seeds keep only the first MaxStore positions
// (a capped sample) but the true count is retained, so MaxBucket repeat
// masking behaves exactly like the direct index and a microsatellite
// can never flood CandidatesInto through the cap.
//
// Construction is parallel and deterministic: chunked rolling scans
// radix-partition (key, pos) pairs by hash prefix, partitions are
// sorted and filled independently, and the layout depends only on the
// sorted pair order — never on worker count or scheduling.
package kmer

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"gnumap/internal/dna"
)

// DefaultMaxStore is the default per-seed stored-position cap. It
// matches the engine's default MaxBucket, so with default query options
// a capped bucket is either masked outright (true count > MaxBucket) or
// stored in full — the large index then votes bit-identically to a
// direct index at the same k.
const DefaultMaxStore = 1024

// largePartBits selects the partition by the top 8 hash bits: 256
// partitions is enough parallelism for construction and keeps the
// partition directory (slotOff) at a few KiB.
const largePartBits = 8

// LargeConfig tunes LargeIndex construction. Zero values are defaults.
type LargeConfig struct {
	// MaxStore caps the stored positions per seed (0 = DefaultMaxStore;
	// negative = store every occurrence).
	MaxStore int
	// Workers bounds construction parallelism (0 = GOMAXPROCS).
	Workers int
}

// LargeIndex is an immutable frequency-capped seed index for
// k in (MaxDirectK, dna.MaxKmerLen]. Safe for concurrent lookups.
// A LargeIndex is either heap-built (NewLarge) or backed by an
// mmap-persisted file (Load); Close releases the mapping.
type LargeIndex struct {
	k        int
	seqLen   int
	maxStore int
	partBits uint
	// slotOff has 1<<partBits+1 entries: partition p's slots occupy
	// [slotOff[p], slotOff[p+1]), a power-of-two-sized (possibly empty)
	// probe region.
	slotOff []int64
	// Parallel slot arrays. A slot is empty iff counts[i] == 0 (every
	// stored seed occurs at least once), which leaves the full 64-bit
	// key space usable — at k = 32 every bit pattern is a valid seed.
	keys   []uint64
	starts []int32
	counts []int32
	// positions stores, per seed, the first min(count, maxStore)
	// occurrence positions in ascending order.
	positions []int32
	// mapped is the mmap backing when file-loaded (nil when heap-built).
	mapped []byte
}

// mix64 is the splitmix64 finalizer: a cheap invertible mix whose high
// bits (partition selector) and low bits (probe start) are both
// well-distributed even for the low-entropy packed seed values.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// seedPair is one (seed, start position) occurrence during build.
type seedPair struct {
	key uint64
	pos int32
}

// NewLarge builds a large-seed index with default configuration.
func NewLarge(seq dna.Seq, k int) (*LargeIndex, error) {
	return NewLargeWith(seq, k, LargeConfig{})
}

// NewLargeWith builds a large-seed index of every k-mer in seq. K-mers
// containing an ambiguous base are not indexed, exactly as in New.
func NewLargeWith(seq dna.Seq, k int, cfg LargeConfig) (*LargeIndex, error) {
	if k <= 0 || k > dna.MaxKmerLen {
		return nil, fmt.Errorf("kmer: large-seed k=%d out of range [1,%d]", k, dna.MaxKmerLen)
	}
	if len(seq) > 1<<31-1 {
		return nil, fmt.Errorf("kmer: sequence length %d exceeds int32 positions", len(seq))
	}
	maxStore := cfg.MaxStore
	switch {
	case maxStore == 0:
		maxStore = DefaultMaxStore
	case maxStore < 0:
		maxStore = math.MaxInt32
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nStarts := len(seq) - k + 1
	if nStarts < 0 {
		nStarts = 0
	}
	if workers > nStarts {
		workers = nStarts
	}
	if workers < 1 {
		workers = 1
	}
	const nParts = 1 << largePartBits
	ix := &LargeIndex{
		k: k, seqLen: len(seq), maxStore: maxStore, partBits: largePartBits,
		slotOff: make([]int64, nParts+1),
	}

	// Pass 1: per-(worker, partition) pair counts. Chunks split the
	// k-mer start positions; each chunk rolls independently (restarting
	// at its first base), so no state crosses chunk boundaries.
	chunk := func(w int) (int, int) {
		lo := w * nStarts / workers
		hi := (w + 1) * nStarts / workers
		return lo, hi
	}
	counts := make([][nParts]int64, workers)
	parallel(workers, func(w int) {
		lo, hi := chunk(w)
		c := &counts[w]
		forEachKmerRange(seq, k, lo, hi, func(m dna.Kmer, pos int32) {
			c[mix64(uint64(m))>>(64-largePartBits)]++
		})
	})

	// Cursor layout: pairs grouped by partition, and within a partition
	// by worker (ascending chunk, hence ascending position).
	var cursors [][nParts]int64
	cursors = make([][nParts]int64, workers)
	total := int64(0)
	for p := 0; p < nParts; p++ {
		for w := 0; w < workers; w++ {
			cursors[w][p] = total
			total += counts[w][p]
		}
	}
	partPair := make([]int64, nParts+1) // pair region per partition
	{
		off := int64(0)
		for p := 0; p < nParts; p++ {
			partPair[p] = off
			for w := 0; w < workers; w++ {
				off += counts[w][p]
			}
		}
		partPair[nParts] = off
	}
	pairs := make([]seedPair, total)

	// Pass 2: write pairs through the per-worker cursors.
	parallel(workers, func(w int) {
		lo, hi := chunk(w)
		cur := &cursors[w]
		forEachKmerRange(seq, k, lo, hi, func(m dna.Kmer, pos int32) {
			p := mix64(uint64(m)) >> (64 - largePartBits)
			pairs[cur[p]] = seedPair{key: uint64(m), pos: pos}
			cur[p]++
		})
	})

	// Per-partition sort + sizing. Sorting by (key, pos) makes the
	// layout independent of worker count and keeps each seed's stored
	// positions ascending, matching the direct index's bucket order.
	type partMeta struct{ unique, retained int64 }
	meta := make([]partMeta, nParts)
	parallel(workers, func(w int) {
		for p := w; p < nParts; p += workers {
			span := pairs[partPair[p]:partPair[p+1]]
			slices.SortFunc(span, func(a, b seedPair) int {
				switch {
				case a.key != b.key:
					if a.key < b.key {
						return -1
					}
					return 1
				default:
					return int(a.pos - b.pos)
				}
			})
			var unique, retained int64
			for i := 0; i < len(span); {
				j := i + 1
				for j < len(span) && span[j].key == span[i].key {
					j++
				}
				unique++
				n := int64(j - i)
				if n > int64(maxStore) {
					n = int64(maxStore)
				}
				retained += n
				i = j
			}
			meta[p] = partMeta{unique: unique, retained: retained}
		}
	})

	// Directory prefix sums: each non-empty partition gets a
	// power-of-two probe region at most half full (load factor <= 0.5
	// keeps probes short and guarantees an empty stop slot).
	nSlots, nPos := int64(0), int64(0)
	partSlots := make([]int64, nParts)
	for p := 0; p < nParts; p++ {
		ix.slotOff[p] = nSlots
		if meta[p].unique > 0 {
			partSlots[p] = nextPow2(2 * meta[p].unique)
			nSlots += partSlots[p]
		}
		nPos += meta[p].retained
	}
	ix.slotOff[nParts] = nSlots
	ix.keys = make([]uint64, nSlots)
	ix.starts = make([]int32, nSlots)
	ix.counts = make([]int32, nSlots)
	ix.positions = make([]int32, nPos)

	// Position-array base per partition (same order as the directory).
	posBase := make([]int64, nParts)
	{
		off := int64(0)
		for p := 0; p < nParts; p++ {
			posBase[p] = off
			off += meta[p].retained
		}
	}

	// Fill: insert each partition's distinct seeds in sorted-key order.
	// counts was just zero-allocated, so "counts == 0" marks free slots
	// during probing as well as at query time.
	parallel(workers, func(w int) {
		for p := w; p < nParts; p += workers {
			span := pairs[partPair[p]:partPair[p+1]]
			base, size := ix.slotOff[p], partSlots[p]
			posCur := posBase[p]
			for i := 0; i < len(span); {
				j := i + 1
				for j < len(span) && span[j].key == span[i].key {
					j++
				}
				key := span[i].key
				mask := uint64(size - 1)
				s := base + int64(mix64(key)&mask)
				for ix.counts[s] != 0 {
					s = base + int64((uint64(s-base)+1)&mask)
				}
				ix.keys[s] = key
				ix.counts[s] = int32(j - i)
				ix.starts[s] = int32(posCur)
				store := j - i
				if store > maxStore {
					store = maxStore
				}
				for t := 0; t < store; t++ {
					ix.positions[posCur] = span[i+t].pos
					posCur++
				}
				i = j
			}
		}
	})
	return ix, nil
}

// parallel runs fn(0..n-1) on n goroutines and waits.
func parallel(n int, fn func(i int)) {
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int64) int64 {
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// forEachKmerRange calls fn for every packable k-mer whose start
// position lies in [lo, hi), rolling independently of any other range
// so chunked scans partition the work with no shared state: a k-mer
// starting at p only reads bases p..p+k-1, all >= lo.
func forEachKmerRange(seq dna.Seq, k, lo, hi int, fn func(m dna.Kmer, pos int32)) {
	if hi > len(seq)-k+1 {
		hi = len(seq) - k + 1
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return
	}
	var m dna.Kmer
	valid := 0
	mask := dna.Kmer(1)<<(2*uint(k)) - 1
	for i := lo; i < hi+k-1; i++ {
		c := seq[i]
		if !c.IsConcrete() {
			valid = 0
			m = 0
			continue
		}
		m = (m<<2 | dna.Kmer(c)) & mask
		valid++
		if valid >= k {
			if p := i - k + 1; p < hi {
				fn(m, int32(p))
			}
		}
	}
}

// K returns the indexed mer size.
func (ix *LargeIndex) K() int { return ix.k }

// SeqLen returns the length of the indexed sequence.
func (ix *LargeIndex) SeqLen() int { return ix.seqLen }

// MaxStore returns the per-seed stored-position cap.
func (ix *LargeIndex) MaxStore() int { return ix.maxStore }

// MemoryBytes reports the footprint of every retained array — the
// directory, all three slot arrays, and the position array. For an
// mmap-loaded index this equals the bytes of the mapping actually
// referenced (the file pages back the slices).
func (ix *LargeIndex) MemoryBytes() int64 {
	return int64(len(ix.slotOff))*8 +
		int64(len(ix.keys))*8 +
		int64(len(ix.starts))*4 +
		int64(len(ix.counts))*4 +
		int64(len(ix.positions))*4
}

// lookupTotal implements seedSource: the stored sample (at most
// MaxStore positions, ascending) plus the seed's true occurrence
// count. Absent seeds return (nil, 0). The bounds guards make lookups
// on a structurally corrupt mapping return "absent" instead of
// panicking; the probe counter bounds the scan on a table with no free
// slots (impossible for a built index, reachable only via corruption).
func (ix *LargeIndex) lookupTotal(m dna.Kmer) ([]int32, int) {
	h := mix64(uint64(m))
	p := h >> (64 - ix.partBits)
	lo, hi := ix.slotOff[p], ix.slotOff[p+1]
	size := hi - lo
	if size <= 0 {
		return nil, 0
	}
	mask := uint64(size - 1)
	i := h & mask
	for probes := int64(0); probes < size; probes++ {
		s := lo + int64(i)
		c := ix.counts[s]
		if c <= 0 { // 0 = free slot; negative only via a corrupt file
			return nil, 0
		}
		if ix.keys[s] == uint64(m) {
			stored := int64(c)
			if ms := int64(ix.maxStore); stored > ms {
				stored = ms
			}
			st := int64(ix.starts[s])
			if st < 0 || st+stored > int64(len(ix.positions)) {
				return nil, 0
			}
			return ix.positions[st : st+stored], int(c)
		}
		i = (i + 1) & mask
	}
	return nil, 0
}

// Lookup returns the stored position sample of the packed k-mer (at
// most MaxStore entries, ascending). The slice aliases the index.
func (ix *LargeIndex) Lookup(m dna.Kmer) []int32 {
	hits, _ := ix.lookupTotal(m)
	return hits
}

// BucketSize returns the true occurrence count of the packed k-mer,
// even when the stored sample is capped below it.
func (ix *LargeIndex) BucketSize(m dna.Kmer) int {
	_, total := ix.lookupTotal(m)
	return total
}

// Candidates votes the read's seeds into mapping regions; see
// Index.Candidates.
func (ix *LargeIndex) Candidates(read dna.Seq, opt CandidateOptions) []Candidate {
	return ix.CandidatesInto(read, opt, &CandidateBuf{})
}

// CandidatesInto is Candidates with caller-owned scratch; the voting
// loop is shared with the direct index (candidatesInto).
func (ix *LargeIndex) CandidatesInto(read dna.Seq, opt CandidateOptions, buf *CandidateBuf) []Candidate {
	return candidatesInto(ix, read, opt, buf)
}

// LargeSummary describes a built index for benches and reports.
type LargeSummary struct {
	// Seeds is the number of distinct indexed seeds, Capped how many of
	// them stored a truncated sample, Slots the open-addressing table
	// size, Positions the stored position count.
	Seeds, Capped int64
	Slots         int64
	Positions     int64
}

// Summary scans the slot arrays (O(slots); not for hot paths).
func (ix *LargeIndex) Summary() LargeSummary {
	s := LargeSummary{Slots: int64(len(ix.keys)), Positions: int64(len(ix.positions))}
	for _, c := range ix.counts {
		if c != 0 {
			s.Seeds++
			if int(c) > ix.maxStore {
				s.Capped++
			}
		}
	}
	return s
}
