//go:build unix

package kmer

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy load path in LoadIndexFile.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared, so the kernel
// page cache backs the index and repeated runs share one copy.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size > int64(^uint(0)>>1) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
