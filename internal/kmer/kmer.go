// Package kmer implements the genomic k-mer hash index GNUMAP-SNP uses
// to find putative mapping regions (paper §V, step 1; default k = 10).
//
// The index is built over a reference sequence with a two-pass
// counting-sort layout: a flat offset table of 4^k buckets pointing into
// one shared position array. For the default k = 10 the offset table has
// ~1M entries and construction is a single O(L) scan, which is what
// makes indexing a full chromosome practical. Buckets larger than a
// configurable threshold (repeat k-mers) can be masked out at query
// time so a single microsatellite does not flood the candidate list.
package kmer

import (
	"fmt"
	"slices"

	"gnumap/internal/dna"
)

// DefaultK is the paper's default mer size.
const DefaultK = 10

// maxDirectK bounds the direct-addressed offset table at 4^14 entries
// (~1 GiB of int32 would be 4^15; 4^14 = 268M entries is already the
// practical ceiling, and the mapper never needs more).
const maxDirectK = 14

// Index is an immutable k-mer position index over one reference
// sequence. It is safe for concurrent lookups.
type Index struct {
	k int
	// offsets has 4^k+1 entries; bucket m occupies
	// positions[offsets[m]:offsets[m+1]].
	offsets   []int32
	positions []int32
	seqLen    int
}

// New builds an index of every k-mer in seq. K-mers containing an
// ambiguous base are not indexed (the mapper re-seeds around them).
func New(seq dna.Seq, k int) (*Index, error) {
	if k <= 0 || k > maxDirectK {
		return nil, fmt.Errorf("kmer: k=%d out of range [1,%d]", k, maxDirectK)
	}
	if len(seq) > 1<<31-1 {
		return nil, fmt.Errorf("kmer: sequence length %d exceeds int32 positions", len(seq))
	}
	nBuckets := 1 << (2 * uint(k))
	offsets := make([]int32, nBuckets+1)

	// Pass 1: bucket counts.
	forEachKmer(seq, k, func(m dna.Kmer, pos int32) {
		offsets[m+1]++
	})
	// Prefix-sum into offsets.
	for i := 1; i <= nBuckets; i++ {
		offsets[i] += offsets[i-1]
	}
	positions := make([]int32, offsets[nBuckets])

	// Pass 2: fill. next tracks the write cursor per bucket.
	next := make([]int32, nBuckets)
	copy(next, offsets[:nBuckets])
	forEachKmer(seq, k, func(m dna.Kmer, pos int32) {
		positions[next[m]] = pos
		next[m]++
	})
	return &Index{k: k, offsets: offsets, positions: positions, seqLen: len(seq)}, nil
}

// forEachKmer calls fn for every packable k-mer window in seq, using a
// rolling pack that restarts after ambiguous bases.
func forEachKmer(seq dna.Seq, k int, fn func(m dna.Kmer, pos int32)) {
	if len(seq) < k {
		return
	}
	var m dna.Kmer
	valid := 0 // number of consecutive concrete bases ending at i
	mask := dna.Kmer(1)<<(2*uint(k)) - 1
	for i := 0; i < len(seq); i++ {
		c := seq[i]
		if !c.IsConcrete() {
			valid = 0
			m = 0
			continue
		}
		m = (m<<2 | dna.Kmer(c)) & mask
		valid++
		if valid >= k {
			fn(m, int32(i-k+1))
		}
	}
}

// K returns the indexed mer size.
func (ix *Index) K() int { return ix.k }

// SeqLen returns the length of the indexed sequence.
func (ix *Index) SeqLen() int { return ix.seqLen }

// Lookup returns the sorted start positions of the packed k-mer. The
// returned slice aliases the index; callers must not mutate it.
func (ix *Index) Lookup(m dna.Kmer) []int32 {
	if int(m) >= len(ix.offsets)-1 {
		return nil
	}
	return ix.positions[ix.offsets[m]:ix.offsets[m+1]]
}

// BucketSize returns the number of occurrences of the packed k-mer.
func (ix *Index) BucketSize(m dna.Kmer) int { return len(ix.Lookup(m)) }

// MemoryBytes reports the approximate heap footprint of the index,
// used by the Table II memory accounting.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.offsets))*4 + int64(len(ix.positions))*4
}

// Candidate is a putative mapping region: the genome offset at which the
// read would start, and the number of seed k-mers voting for it.
type Candidate struct {
	Start int32
	Votes int32
}

// CandidateOptions tunes candidate-region generation.
type CandidateOptions struct {
	// Stride is the spacing between sampled seed offsets within the
	// read; 1 samples every offset. Larger strides trade sensitivity
	// for speed. Zero means 1.
	Stride int
	// MaxBucket masks k-mers occurring more often than this in the
	// reference (repeat masking). Zero means no masking.
	MaxBucket int
	// MaxCandidates caps the number of returned regions, keeping the
	// highest-voted. Zero means no cap.
	MaxCandidates int
	// MinVotes drops regions with fewer seed votes. Zero means 1.
	MinVotes int
	// Slack merges candidate starts within this many bases of each
	// other into one region (indels shift the implied start). Zero
	// means exact-diagonal voting.
	Slack int
}

// CandidateBuf is reusable scratch for CandidatesInto, letting a
// per-worker caller run candidate generation without steady-state heap
// allocations. The zero value is ready to use.
type CandidateBuf struct {
	votes map[int32]int32
	out   []Candidate
}

// Candidates seeds every (strided) k-mer of the read into the index and
// votes on implied read start positions ("diagonals"). It returns
// candidates sorted by descending votes, ties by ascending start.
func (ix *Index) Candidates(read dna.Seq, opt CandidateOptions) []Candidate {
	return ix.CandidatesInto(read, opt, &CandidateBuf{})
}

// CandidatesInto is Candidates with caller-owned scratch: the returned
// slice aliases buf and is invalidated by the next CandidatesInto call
// with the same buf.
func (ix *Index) CandidatesInto(read dna.Seq, opt CandidateOptions, buf *CandidateBuf) []Candidate {
	stride := opt.Stride
	if stride <= 0 {
		stride = 1
	}
	minVotes := opt.MinVotes
	if minVotes <= 0 {
		minVotes = 1
	}
	if buf.votes == nil {
		buf.votes = make(map[int32]int32, 64)
	}
	votes := buf.votes
	clear(votes)
	for off := 0; off+ix.k <= len(read); off += stride {
		m, ok := dna.PackKmer(read, off, ix.k)
		if !ok {
			continue
		}
		hits := ix.Lookup(m)
		if opt.MaxBucket > 0 && len(hits) > opt.MaxBucket {
			continue
		}
		for _, p := range hits {
			start := p - int32(off)
			if opt.Slack > 0 {
				// Snap the diagonal to a grid so small indel shifts
				// coalesce into the same candidate region.
				start -= start % int32(opt.Slack+1)
			}
			if start < 0 {
				start = 0
			}
			votes[start]++
		}
	}
	cands := buf.out[:0]
	for start, v := range votes {
		if int(v) >= minVotes {
			cands = append(cands, Candidate{Start: start, Votes: v})
		}
	}
	slices.SortFunc(cands, func(a, b Candidate) int {
		if a.Votes != b.Votes {
			return int(b.Votes - a.Votes)
		}
		return int(a.Start - b.Start)
	})
	buf.out = cands
	if opt.MaxCandidates > 0 && len(cands) > opt.MaxCandidates {
		cands = cands[:opt.MaxCandidates]
	}
	return cands
}
