// Package kmer implements the genomic k-mer hash index GNUMAP-SNP uses
// to find putative mapping regions (paper §V, step 1; default k = 10).
//
// The index is built over a reference sequence with a two-pass
// counting-sort layout: a flat offset table of 4^k buckets pointing into
// one shared position array. For the default k = 10 the offset table has
// ~1M entries and construction is a single O(L) scan, which is what
// makes indexing a full chromosome practical. Buckets larger than a
// configurable threshold (repeat k-mers) can be masked out at query
// time so a single microsatellite does not flood the candidate list.
package kmer

import (
	"fmt"
	"slices"

	"gnumap/internal/dna"
)

// DefaultK is the paper's default mer size.
const DefaultK = 10

// MaxDirectK bounds the direct-addressed offset table at 4^14 entries
// (~1 GiB of int32 would be 4^15; 4^14 = 268M entries is already the
// practical ceiling). Longer seeds use the two-level hashed LargeIndex
// (largeseed.go) instead.
const MaxDirectK = 14

// SeedIndex is the candidate-generation interface shared by the
// direct-addressed Index (k <= MaxDirectK) and the hashed LargeIndex.
// Implementations are immutable after construction and safe for
// concurrent lookups.
type SeedIndex interface {
	// K returns the indexed mer size.
	K() int
	// SeqLen returns the length of the indexed sequence.
	SeqLen() int
	// MemoryBytes reports the footprint of every retained array.
	MemoryBytes() int64
	// Candidates votes the read's seeds into mapping regions.
	Candidates(read dna.Seq, opt CandidateOptions) []Candidate
	// CandidatesInto is Candidates with caller-owned scratch.
	CandidatesInto(read dna.Seq, opt CandidateOptions, buf *CandidateBuf) []Candidate
}

// seedSource is the per-seed lookup behind the shared voting loop:
// positions is the stored (possibly frequency-capped) sample for the
// seed, total its true occurrence count in the reference. The direct
// Index always stores every occurrence (total == len(positions)); the
// LargeIndex may truncate hot seeds but still reports the true total so
// repeat masking sees the real frequency.
type seedSource interface {
	K() int
	lookupTotal(m dna.Kmer) (positions []int32, total int)
}

// Build constructs the appropriate index representation for k: the
// direct-addressed Index up to MaxDirectK, the hashed LargeIndex above
// it (SNAP-style large seeds, up to dna.MaxKmerLen).
func Build(seq dna.Seq, k int) (SeedIndex, error) {
	if k > MaxDirectK {
		return NewLarge(seq, k)
	}
	return New(seq, k)
}

// Index is an immutable k-mer position index over one reference
// sequence. It is safe for concurrent lookups.
type Index struct {
	k int
	// offsets has 4^k+1 entries; bucket m occupies
	// positions[offsets[m]:offsets[m+1]].
	offsets   []int32
	positions []int32
	seqLen    int
}

// New builds an index of every k-mer in seq. K-mers containing an
// ambiguous base are not indexed (the mapper re-seeds around them).
func New(seq dna.Seq, k int) (*Index, error) {
	if k <= 0 || k > MaxDirectK {
		return nil, fmt.Errorf("kmer: k=%d out of range [1,%d]", k, MaxDirectK)
	}
	if len(seq) > 1<<31-1 {
		return nil, fmt.Errorf("kmer: sequence length %d exceeds int32 positions", len(seq))
	}
	nBuckets := 1 << (2 * uint(k))
	offsets := make([]int32, nBuckets+1)

	// Pass 1: bucket counts.
	forEachKmer(seq, k, func(m dna.Kmer, pos int32) {
		offsets[m+1]++
	})
	// Prefix-sum into offsets.
	for i := 1; i <= nBuckets; i++ {
		offsets[i] += offsets[i-1]
	}
	positions := make([]int32, offsets[nBuckets])

	// Pass 2: fill. next tracks the write cursor per bucket.
	next := make([]int32, nBuckets)
	copy(next, offsets[:nBuckets])
	forEachKmer(seq, k, func(m dna.Kmer, pos int32) {
		positions[next[m]] = pos
		next[m]++
	})
	return &Index{k: k, offsets: offsets, positions: positions, seqLen: len(seq)}, nil
}

// forEachKmer calls fn for every packable k-mer window in seq, using a
// rolling pack that restarts after ambiguous bases.
func forEachKmer(seq dna.Seq, k int, fn func(m dna.Kmer, pos int32)) {
	if len(seq) < k {
		return
	}
	var m dna.Kmer
	valid := 0 // number of consecutive concrete bases ending at i
	mask := dna.Kmer(1)<<(2*uint(k)) - 1
	for i := 0; i < len(seq); i++ {
		c := seq[i]
		if !c.IsConcrete() {
			valid = 0
			m = 0
			continue
		}
		m = (m<<2 | dna.Kmer(c)) & mask
		valid++
		if valid >= k {
			fn(m, int32(i-k+1))
		}
	}
}

// K returns the indexed mer size.
func (ix *Index) K() int { return ix.k }

// SeqLen returns the length of the indexed sequence.
func (ix *Index) SeqLen() int { return ix.seqLen }

// Lookup returns the sorted start positions of the packed k-mer. The
// returned slice aliases the index; callers must not mutate it.
func (ix *Index) Lookup(m dna.Kmer) []int32 {
	if int(m) >= len(ix.offsets)-1 {
		return nil
	}
	return ix.positions[ix.offsets[m]:ix.offsets[m+1]]
}

// BucketSize returns the number of occurrences of the packed k-mer.
func (ix *Index) BucketSize(m dna.Kmer) int { return len(ix.Lookup(m)) }

// lookupTotal implements seedSource: the direct index stores every
// occurrence, so the sample is the bucket and the total its length.
func (ix *Index) lookupTotal(m dna.Kmer) ([]int32, int) {
	hits := ix.Lookup(m)
	return hits, len(hits)
}

// MemoryBytes reports the approximate heap footprint of the index,
// used by the Table II memory accounting.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.offsets))*4 + int64(len(ix.positions))*4
}

// Candidate is a putative mapping region: the genome offset at which the
// read would start, and the number of seed k-mers voting for it.
type Candidate struct {
	Start int32
	Votes int32
}

// CandidateOptions tunes candidate-region generation.
type CandidateOptions struct {
	// Stride is the spacing between sampled seed offsets within the
	// read; 1 samples every offset. Larger strides trade sensitivity
	// for speed. Zero means 1.
	Stride int
	// MaxBucket masks k-mers occurring more often than this in the
	// reference (repeat masking). Zero means no masking.
	MaxBucket int
	// MaxCandidates caps the number of returned regions, keeping the
	// highest-voted. Zero means no cap.
	MaxCandidates int
	// MinVotes drops regions with fewer seed votes. Zero means 1.
	MinVotes int
	// Slack merges candidate starts within this many bases of each
	// other into one region (indels shift the implied start). Zero
	// means exact-diagonal voting.
	Slack int
}

// CandidateBuf is reusable scratch for CandidatesInto, letting a
// per-worker caller run candidate generation without steady-state heap
// allocations. The zero value is ready to use.
//
// The diagonal-voting table is open-addressed (linear probing) rather
// than a Go map: per read it is cleared by bumping an epoch counter
// instead of rehashing or rezeroing, so the steady-state cost per read
// is a handful of cache-line touches with no map-bucket churn.
type CandidateBuf struct {
	// Slot i is live iff epoch[i] == cur; keys/vals are only meaningful
	// for live slots. used lists the live slots for O(live) emission.
	keys  []int32
	vals  []int32
	epoch []uint32
	used  []int32
	cur   uint32
	out   []Candidate
	// Stats describes the call that last used this buffer; it is reset
	// at the top of every CandidatesInto, so callers that want
	// per-strand selectivity read it between calls.
	Stats SeedStats
}

// SeedStats is the selectivity record of one CandidatesInto call: how
// many seeds were looked up, how many were masked as over-frequent
// (true occurrence count above MaxBucket), and how many index positions
// were voted. Hits is the work the diagonal voter actually did — the
// number the large-seed index exists to shrink.
type SeedStats struct {
	Seeds, Masked, Hits int64
}

// minVoteTable is the initial open-addressing table size; must be a
// power of two.
const minVoteTable = 64

// beginRead prepares the table for a new read's votes by advancing the
// epoch. On the (rare) uint32 wraparound the epoch array is rezeroed so
// stale epochs can never alias the new one.
func (b *CandidateBuf) beginRead() {
	if len(b.keys) == 0 {
		b.keys = make([]int32, minVoteTable)
		b.vals = make([]int32, minVoteTable)
		b.epoch = make([]uint32, minVoteTable)
	}
	b.used = b.used[:0]
	b.cur++
	if b.cur == 0 {
		clear(b.epoch)
		b.cur = 1
	}
}

// vote adds one vote for the (possibly negative) diagonal key.
func (b *CandidateBuf) vote(key int32) {
	mask := uint32(len(b.keys) - 1)
	// Fibonacci-style multiplicative hash; the table size is a power of
	// two so the low bits of the product index it directly.
	for i := uint32(key) * 2654435761 & mask; ; i = (i + 1) & mask {
		if b.epoch[i] != b.cur {
			b.epoch[i] = b.cur
			b.keys[i] = key
			b.vals[i] = 1
			b.used = append(b.used, int32(i))
			if 4*len(b.used) >= 3*len(b.keys) {
				b.growTable()
			}
			return
		}
		if b.keys[i] == key {
			b.vals[i]++
			return
		}
	}
}

// growTable doubles the table and reinserts the live slots. Growth
// allocates, but the table never shrinks, so a warm buffer reaches its
// high-water size once and then runs allocation-free.
func (b *CandidateBuf) growTable() {
	oldKeys, oldVals, oldUsed := b.keys, b.vals, b.used
	n := 2 * len(oldKeys)
	b.keys = make([]int32, n)
	b.vals = make([]int32, n)
	b.epoch = make([]uint32, n)
	b.used = make([]int32, 0, len(oldUsed)*2)
	b.cur = 1
	mask := uint32(n - 1)
	for _, slot := range oldUsed {
		key, val := oldKeys[slot], oldVals[slot]
		for i := uint32(key) * 2654435761 & mask; ; i = (i + 1) & mask {
			if b.epoch[i] != b.cur {
				b.epoch[i] = b.cur
				b.keys[i] = key
				b.vals[i] = val
				b.used = append(b.used, int32(i))
				break
			}
		}
	}
}

// Candidates seeds every (strided) k-mer of the read into the index and
// votes on implied read start positions ("diagonals"). It returns
// candidates sorted by descending votes, ties by ascending start.
func (ix *Index) Candidates(read dna.Seq, opt CandidateOptions) []Candidate {
	return ix.CandidatesInto(read, opt, &CandidateBuf{})
}

// CandidatesInto is Candidates with caller-owned scratch: the returned
// slice aliases buf and is invalidated by the next CandidatesInto call
// with the same buf.
func (ix *Index) CandidatesInto(read dna.Seq, opt CandidateOptions, buf *CandidateBuf) []Candidate {
	return candidatesInto(ix, read, opt, buf)
}

// candidatesInto is the diagonal-voting loop shared by every index
// representation. The source supplies, per seed, a stored position
// sample plus the seed's true occurrence count; repeat masking
// (MaxBucket) tests the true count so a frequency-capped index masks
// exactly the seeds the direct index would.
func candidatesInto(ix seedSource, read dna.Seq, opt CandidateOptions, buf *CandidateBuf) []Candidate {
	stride := opt.Stride
	if stride <= 0 {
		stride = 1
	}
	minVotes := opt.MinVotes
	if minVotes <= 0 {
		minVotes = 1
	}
	k := ix.K()
	buf.beginRead()
	buf.Stats = SeedStats{}
	for off := 0; off+k <= len(read); off += stride {
		m, ok := dna.PackKmer(read, off, k)
		if !ok {
			continue
		}
		buf.Stats.Seeds++
		hits, total := ix.lookupTotal(m)
		if opt.MaxBucket > 0 && total > opt.MaxBucket {
			buf.Stats.Masked++
			continue
		}
		buf.Stats.Hits += int64(len(hits))
		for _, p := range hits {
			start := p - int32(off)
			if opt.Slack > 0 {
				// Snap the diagonal to a grid so small indel shifts
				// coalesce into the same candidate region. Go's % keeps
				// the sign, so negative diagonals land on a uniform grid
				// too (-6, -3, 0, 3 for slack 2).
				start -= start % int32(opt.Slack+1)
			}
			// Vote on the true (possibly negative) diagonal. Clamping
			// here used to pool every read-hangs-off-the-left-edge
			// diagonal into position 0, inflating its vote count.
			buf.vote(start)
		}
	}
	cands := buf.out[:0]
	for _, slot := range buf.used {
		if v := buf.vals[slot]; int(v) >= minVotes {
			cands = append(cands, Candidate{Start: buf.keys[slot], Votes: v})
		}
	}
	slices.SortFunc(cands, func(a, b Candidate) int {
		if a.Votes != b.Votes {
			return int(b.Votes - a.Votes)
		}
		return int(a.Start - b.Start)
	})
	// Clamp negative implied starts to 0 only now, after voting. The
	// clamp can make several candidates collide at start 0; keep the
	// best-voted one (they describe the same leftmost alignment window,
	// and summing would reintroduce the pooling bug).
	kept := cands[:0]
	zeroSeen := false
	for _, c := range cands {
		if c.Start <= 0 {
			if zeroSeen {
				continue
			}
			zeroSeen = true
			c.Start = 0
		}
		kept = append(kept, c)
	}
	cands = kept
	buf.out = cands
	if opt.MaxCandidates > 0 && len(cands) > opt.MaxCandidates {
		cands = cands[:opt.MaxCandidates]
	}
	return cands
}
