package experiments

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gnumap/internal/core"
	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/phmm"
	"gnumap/internal/pwm"
)

// PhmmBenchRow is one Pair-HMM kernel measurement, emitted by snpbench
// as machine-readable BENCH_phmm.json so successive PRs can track the
// kernel's trajectory (ns/cell, allocation behaviour, cells computed).
type PhmmBenchRow struct {
	// Name identifies the kernel variant (align_full, align_banded,
	// align_banded_narrow, align_batch, viterbi_full, viterbi_banded).
	Name string `json:"name"`
	// Mode is the alignment mode the variant ran in.
	Mode string `json:"mode"`
	// Band is the band width in DP cells (0 = full kernel).
	Band int `json:"band"`
	// Batch is the number of lanes one op aligns (0 = scalar kernel).
	Batch int `json:"batch,omitempty"`
	// Cells is the number of DP cells one op computes, summed over
	// lanes for the batched kernel.
	Cells int `json:"cells"`
	// NsPerOp and NsPerCell are wall time per op and per cell.
	NsPerOp   float64 `json:"ns_per_op"`
	NsPerCell float64 `json:"ns_per_cell"`
	// MCellsPerSec is throughput in millions of DP cells per second.
	MCellsPerSec float64 `json:"mcells_per_sec"`
	// Exact is set on batched rows after every lane's log-likelihood
	// was verified bit-identical to a scalar AlignBanded call on the
	// same pair; the benchmark hard-fails if any lane diverges.
	Exact bool `json:"exact,omitempty"`
	// AllocsPerOp and BytesPerOp come from the Go benchmark allocator
	// accounting; both must be 0 for a warm aligner.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// phmmBenchShape is the paper-shaped kernel input: 62-bp reads against
// 78-bp padded windows at seed diagonal 8 (the default Pad).
const (
	phmmBenchReadLen   = 62
	phmmBenchWindowLen = 78
	phmmBenchDiag      = 8
	phmmBenchBand      = 18 // the engine's auto band at the default Pad=8
)

// phmmBenchPairs builds L distinct read/window pairs of the bench shape
// from a fixed seed, each read a mutated slice of its window.
func phmmBenchPairs(L int) ([]*pwm.Matrix, []dna.Seq, error) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]*pwm.Matrix, L)
	ys := make([]dna.Seq, L)
	for l := 0; l < L; l++ {
		window := make(dna.Seq, phmmBenchWindowLen)
		for i := range window {
			window[i] = dna.Code(rng.Intn(4))
		}
		read := window[phmmBenchDiag : phmmBenchDiag+phmmBenchReadLen].Clone()
		at := 20 + l%20
		read[at] = dna.Code((int(read[at]) + 1) % 4)
		x, err := pwm.FromSeqUniformError(read, 0.01)
		if err != nil {
			return nil, nil, err
		}
		xs[l], ys[l] = x, window
	}
	return xs, ys, nil
}

// PhmmKernelBench benchmarks the PHMM kernel variants at the
// paper-shaped input using the standard library's benchmark runner:
// the scalar forward-backward and Viterbi kernels at several band
// widths, and the batched wavefront kernel at several batch sizes and
// band widths. Every batched variant is verified bit-exact against the
// scalar kernel (per-lane log-likelihoods compared with ==) before it
// is timed; a mismatch is a hard error, which is what the CI smoke
// asserts on.
func PhmmKernelBench() ([]PhmmBenchRow, error) {
	xs, ys, err := phmmBenchPairs(1)
	if err != nil {
		return nil, err
	}
	x, window := xs[0], ys[0]
	n, m := x.Len(), len(window)
	const diag = phmmBenchDiag

	scalars := []struct {
		name    string
		band    int
		viterbi bool
	}{
		{"align_full", 0, false},
		{"align_banded", phmmBenchBand, false},
		{"align_banded_narrow", 8, false},
		{"viterbi_full", 0, true},
		{"viterbi_banded", phmmBenchBand, true},
	}
	var rows []PhmmBenchRow
	for _, v := range scalars {
		a, err := phmm.NewAligner(phmm.DefaultParams(), phmm.SemiGlobal)
		if err != nil {
			return nil, err
		}
		// Warm the aligner's buffers so the measurement is steady-state.
		if v.viterbi {
			_, err = a.ViterbiBanded(x, window, diag, v.band)
		} else {
			_, err = a.AlignBanded(x, window, diag, v.band)
		}
		if err != nil {
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v.viterbi {
					_, err = a.ViterbiBanded(x, window, diag, v.band)
				} else {
					_, err = a.AlignBanded(x, window, diag, v.band)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, phmmRow(v.name, v.band, 0, phmm.BandCells(n, m, diag, v.band), r, false))
	}

	// Batched wavefront kernel: batch sizes × band widths, each
	// verified bit-exact against the scalar kernel before timing.
	for _, band := range []int{phmmBenchBand, 8, 0} {
		for _, L := range []int{4, 8, 16} {
			row, err := phmmBatchRow(L, band)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// phmmBatchRow verifies the batched kernel against the scalar one on L
// fresh pairs, then times it warm.
func phmmBatchRow(L, band int) (PhmmBenchRow, error) {
	xs, ys, err := phmmBenchPairs(L)
	if err != nil {
		return PhmmBenchRow{}, err
	}
	scalar, err := phmm.NewAligner(phmm.DefaultParams(), phmm.SemiGlobal)
	if err != nil {
		return PhmmBenchRow{}, err
	}
	ba, err := phmm.NewBatchAligner(phmm.DefaultParams(), phmm.SemiGlobal)
	if err != nil {
		return PhmmBenchRow{}, err
	}
	const diag = phmmBenchDiag
	results, err := ba.AlignBatch(xs, ys, diag, band)
	if err != nil {
		return PhmmBenchRow{}, err
	}
	for l := range results {
		ref, err := scalar.AlignBanded(xs[l], ys[l], diag, band)
		if err != nil {
			return PhmmBenchRow{}, err
		}
		if results[l].Err != nil {
			return PhmmBenchRow{}, fmt.Errorf("experiments: batch lane %d failed where scalar aligned: %v", l, results[l].Err)
		}
		if results[l].LogLik != ref.LogLik {
			return PhmmBenchRow{}, fmt.Errorf("experiments: batch lane %d (L=%d band=%d) LogLik %v != scalar %v",
				l, L, band, results[l].LogLik, ref.LogLik)
		}
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ba.AlignBatch(xs, ys, diag, band); err != nil {
				b.Fatal(err)
			}
		}
	})
	cells := L * phmm.BandCells(xs[0].Len(), len(ys[0]), diag, band)
	return phmmRow("align_batch", band, L, cells, r, true), nil
}

// phmmRow converts one benchmark result into a report row.
func phmmRow(name string, band, batch, cells int, r testing.BenchmarkResult, exact bool) PhmmBenchRow {
	nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
	nsCell := nsOp / float64(cells)
	return PhmmBenchRow{
		Name: name, Mode: phmm.SemiGlobal.String(), Band: band, Batch: batch,
		Cells: cells, NsPerOp: nsOp, NsPerCell: nsCell,
		MCellsPerSec: 1e3 / nsCell, Exact: exact,
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}
}

// PhmmEngineBenchRow is one end-to-end mapping measurement comparing
// the batched and scalar kernels through the full engine.
type PhmmEngineBenchRow struct {
	// Name identifies the configuration (engine_scalar, engine_batchN).
	Name string `json:"name"`
	// PhmmBatch is the Config.PhmmBatch value (-1 = scalar kernel).
	PhmmBatch int `json:"phmm_batch"`
	// Reads, Mapped, and Locations summarize the mapping outcome; they
	// must match across rows (checked by PhmmEngineBench).
	Reads     int   `json:"reads"`
	Mapped    int64 `json:"mapped"`
	Locations int64 `json:"locations"`
	// WallNs and ReadsPerSec measure end-to-end mapping throughput.
	WallNs      int64   `json:"wall_ns"`
	ReadsPerSec float64 `json:"reads_per_sec"`
}

// PhmmEngineBench maps the dataset once per kernel configuration —
// scalar, then each batch width in widths — and reports end-to-end
// reads/sec. Mapping outcomes (mapped reads, accepted locations) must
// be identical across configurations; a divergence is an error.
func PhmmEngineBench(ds *Dataset, workers int, widths []int) ([]PhmmEngineBenchRow, error) {
	configs := []struct {
		name  string
		width int
	}{{"engine_scalar", -1}}
	for _, w := range widths {
		if w >= 2 {
			configs = append(configs, struct {
				name  string
				width int
			}{fmt.Sprintf("engine_batch%d", w), w})
		}
	}
	var rows []PhmmEngineBenchRow
	for _, c := range configs {
		eng, err := core.NewEngine(ds.Ref, core.Config{Workers: workers, PhmmBatch: c.width})
		if err != nil {
			return nil, err
		}
		acc, err := genome.New(genome.Norm, ds.Ref.Len())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		st, err := eng.MapReads(ds.Reads, acc, 0)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		rows = append(rows, PhmmEngineBenchRow{
			Name: c.name, PhmmBatch: c.width,
			Reads: len(ds.Reads), Mapped: st.Mapped, Locations: st.Locations,
			WallNs:      wall.Nanoseconds(),
			ReadsPerSec: float64(len(ds.Reads)) / wall.Seconds(),
		})
	}
	for _, r := range rows[1:] {
		if r.Mapped != rows[0].Mapped || r.Locations != rows[0].Locations {
			return nil, fmt.Errorf("experiments: %s mapping outcome (%d mapped, %d locations) diverges from scalar (%d, %d)",
				r.Name, r.Mapped, r.Locations, rows[0].Mapped, rows[0].Locations)
		}
	}
	return rows, nil
}
