package experiments

import (
	"math/rand"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/phmm"
	"gnumap/internal/pwm"
)

// PhmmBenchRow is one Pair-HMM kernel measurement, emitted by snpbench
// as machine-readable BENCH_phmm.json so successive PRs can track the
// kernel's trajectory (ns/cell, allocation behaviour, cells computed).
type PhmmBenchRow struct {
	// Name identifies the kernel variant (align_full, align_banded,
	// viterbi_full, viterbi_banded).
	Name string `json:"name"`
	// Mode is the alignment mode the variant ran in.
	Mode string `json:"mode"`
	// Band is the band width in DP cells (0 = full kernel).
	Band int `json:"band"`
	// Cells is the number of DP cells one alignment computes.
	Cells int `json:"cells"`
	// NsPerOp and NsPerCell are wall time per alignment and per cell.
	NsPerOp   float64 `json:"ns_per_op"`
	NsPerCell float64 `json:"ns_per_cell"`
	// AllocsPerOp and BytesPerOp come from the Go benchmark allocator
	// accounting; both must be 0 for a warm aligner.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// PhmmKernelBench benchmarks the PHMM kernel variants at the
// paper-shaped input — a 62-bp read against a 78-bp padded window,
// seed diagonal 8 (the default Pad) — using the standard library's
// benchmark runner.
func PhmmKernelBench() ([]PhmmBenchRow, error) {
	rng := rand.New(rand.NewSource(1))
	window := make(dna.Seq, 78)
	for i := range window {
		window[i] = dna.Code(rng.Intn(4))
	}
	read := window[8:70].Clone()
	read[30] = dna.Code((int(read[30]) + 1) % 4)
	x, err := pwm.FromSeqUniformError(read, 0.01)
	if err != nil {
		return nil, err
	}
	const diag = 8
	const band = 18 // the engine's auto band at the default Pad=8
	n, m := x.Len(), len(window)

	variants := []struct {
		name    string
		band    int
		viterbi bool
	}{
		{"align_full", 0, false},
		{"align_banded", band, false},
		{"viterbi_full", 0, true},
		{"viterbi_banded", band, true},
	}
	rows := make([]PhmmBenchRow, 0, len(variants))
	for _, v := range variants {
		a, err := phmm.NewAligner(phmm.DefaultParams(), phmm.SemiGlobal)
		if err != nil {
			return nil, err
		}
		// Warm the aligner's buffers so the measurement is steady-state.
		if v.viterbi {
			_, err = a.ViterbiBanded(x, window, diag, v.band)
		} else {
			_, err = a.AlignBanded(x, window, diag, v.band)
		}
		if err != nil {
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v.viterbi {
					_, err = a.ViterbiBanded(x, window, diag, v.band)
				} else {
					_, err = a.AlignBanded(x, window, diag, v.band)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		cells := phmm.BandCells(n, m, diag, v.band)
		nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
		rows = append(rows, PhmmBenchRow{
			Name: v.name, Mode: phmm.SemiGlobal.String(), Band: v.band,
			Cells: cells, NsPerOp: nsOp, NsPerCell: nsOp / float64(cells),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
	}
	return rows, nil
}
