// Index benchmark: the SNAP-style large-seed index against the paper's
// k = 10 direct table. Two datasets separate the two claims:
//
//   - selectivity/throughput needs a genome large enough that random
//     k = 10 seed collisions (expected hits/seed ~ L/4^k) dominate the
//     seed phase — a few Mbp at low coverage keeps the read count, and
//     the run time, bounded while the per-read seed work is realistic;
//   - accuracy (SNP precision/recall must not regress) needs real
//     coverage, so it runs on the standard evaluation dataset.
//
// The persistence leg times build vs WriteIndexFile vs mmap
// LoadIndexFile on the large genome, and proves byte-identical VCF
// output through a save/load cycle on the accuracy dataset.
package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gnumap/internal/core"
	"gnumap/internal/genome"
	"gnumap/internal/kmer"
	"gnumap/internal/obs"
	"gnumap/internal/simulate"
	"gnumap/internal/snp"
)

// IndexBenchConfig sizes the index benchmark. Zero values are defaults.
type IndexBenchConfig struct {
	Workers      int
	LargeSeedLen int     // default 20
	SelGenomeLen int     // selectivity genome length (default 12 Mbp)
	SelCoverage  float64 // selectivity coverage (default 0.25)
	Dir          string  // scratch dir for the persisted index (default temp)
}

func (c IndexBenchConfig) withDefaults() IndexBenchConfig {
	if c.LargeSeedLen == 0 {
		c.LargeSeedLen = 20
	}
	if c.SelGenomeLen == 0 {
		c.SelGenomeLen = 12_000_000
	}
	if c.SelCoverage == 0 {
		c.SelCoverage = 0.25
	}
	return c
}

// makeSelectivityDataset builds a REPEAT-FREE genome: the selectivity
// claim under test is that random seed collisions scale as L/4^s, and
// the simulator's perfect repeat families would drown that signal —
// an exact repeat copy matches any seed length, so it measures repeat
// structure, not index selectivity (a separate accuracy dataset keeps
// the paper's repeat fractions).
func makeSelectivityDataset(genomeLen int, coverage float64) (*Dataset, error) {
	g, err := simulate.Genome(simulate.GenomeConfig{Length: genomeLen, Seed: 7})
	if err != nil {
		return nil, err
	}
	cat, err := simulate.Catalog(g, simulate.CatalogConfig{Count: genomeLen / 10_500, Seed: 8})
	if err != nil {
		return nil, err
	}
	ind, err := simulate.Mutate(g, cat, false)
	if err != nil {
		return nil, err
	}
	reads, err := simulate.Reads(ind, simulate.ReadConfig{
		Length: 62, Coverage: coverage,
		ErrStart: 0.004, ErrEnd: 0.04, Seed: 9,
	})
	if err != nil {
		return nil, err
	}
	ref, err := genome.NewSingleContig("sel", g)
	if err != nil {
		return nil, err
	}
	return &Dataset{Ref: ref, Truth: cat, Reads: reads}, nil
}

// IndexBenchRow is one (dataset, seed length) mapping configuration.
type IndexBenchRow struct {
	Dataset      string  `json:"dataset"`
	SeedLen      int     `json:"seed_len"`
	Reads        int     `json:"reads"`
	BuildSeconds float64 `json:"build_seconds"`
	IndexBytes   int64   `json:"index_bytes"`
	// Per-read seed selectivity: index positions voted, read seeds
	// masked by MaxBucket, candidate windows kept, PHMM alignments run.
	SeedHitsPerRead   float64 `json:"seed_hits_per_read"`
	SeedMaskedPerRead float64 `json:"seed_masked_per_read"`
	CandidatesPerRead float64 `json:"candidates_per_read"`
	AlignmentsPerRead float64 `json:"alignments_per_read"`
	WallNs            int64   `json:"wall_ns"`
	ReadsPerSec       float64 `json:"reads_per_sec"`
	TP                int     `json:"tp"`
	FP                int     `json:"fp"`
	FN                int     `json:"fn"`
	Precision         float64 `json:"precision"`
	Recall            float64 `json:"recall"`
}

// IndexPersistRow records the persistence leg.
type IndexPersistRow struct {
	SeedLen      int     `json:"seed_len"`
	GenomeLen    int     `json:"genome_len"`
	FileBytes    int64   `json:"file_bytes"`
	BuildSeconds float64 `json:"build_seconds"`
	WriteSeconds float64 `json:"write_seconds"`
	LoadSeconds  float64 `json:"load_seconds"`
	// LoadSpeedup is build time over mmap-load time — the "instant
	// startup" claim.
	LoadSpeedup float64 `json:"load_speedup"`
	// VCFIdentical: calls through a save/load cycle render byte-equal
	// VCF to calls from the freshly built index.
	VCFIdentical bool `json:"vcf_identical"`
}

// IndexBenchReport is the machine-readable result (BENCH_index.json).
type IndexBenchReport struct {
	Rows    []IndexBenchRow `json:"rows"`
	Persist IndexPersistRow `json:"persist"`
}

// runWithIndex maps ds.Reads through a prebuilt index and calls SNPs,
// returning the instrumented row (Dataset/SeedLen/Build left for the
// caller) and the call set.
func runWithIndex(ds *Dataset, ix kmer.SeedIndex, workers int) (IndexBenchRow, []snp.Call, error) {
	reg := obs.NewRegistry()
	eng, err := core.NewEngine(ds.Ref, core.Config{
		Workers: workers, K: ix.K(), SeedIndex: ix, Metrics: reg,
	})
	if err != nil {
		return IndexBenchRow{}, nil, err
	}
	acc, err := genome.New(genome.Norm, ds.Ref.Len())
	if err != nil {
		return IndexBenchRow{}, nil, err
	}
	start := time.Now()
	if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
		return IndexBenchRow{}, nil, err
	}
	wall := time.Since(start)
	calls, _, err := snp.CallAll(ds.Ref, acc, snp.Config{})
	if err != nil {
		return IndexBenchRow{}, nil, err
	}
	m := snp.Evaluate(calls, ds.Truth)
	n := float64(len(ds.Reads))
	row := IndexBenchRow{
		Reads:             len(ds.Reads),
		IndexBytes:        ix.MemoryBytes(),
		SeedHitsPerRead:   float64(reg.Counter("map.seed.hits").Value()) / n,
		SeedMaskedPerRead: float64(reg.Counter("map.seed.masked").Value()) / n,
		CandidatesPerRead: float64(reg.Counter("map.candidates").Value()) / n,
		AlignmentsPerRead: float64(reg.Counter("map.alignments").Value()) / n,
		WallNs:            wall.Nanoseconds(),
		ReadsPerSec:       n / wall.Seconds(),
		TP:                m.TP, FP: m.FP, FN: m.FN,
		Precision: m.Precision(), Recall: m.Sensitivity(),
	}
	return row, calls, nil
}

// benchConfig builds the seed index for one configuration and runs the
// mapping `repeats` times, keeping the fastest wall clock (accuracy
// fields are identical across repeats by construction).
func benchConfig(ds *Dataset, name string, k, workers, repeats int) (IndexBenchRow, []snp.Call, error) {
	t0 := time.Now()
	ix, err := kmer.Build(ds.Ref.Seq(), k)
	if err != nil {
		return IndexBenchRow{}, nil, err
	}
	buildSec := time.Since(t0).Seconds()
	var best IndexBenchRow
	var calls []snp.Call
	for r := 0; r < repeats; r++ {
		row, c, err := runWithIndex(ds, ix, workers)
		if err != nil {
			return IndexBenchRow{}, nil, err
		}
		if r == 0 || row.WallNs < best.WallNs {
			best, calls = row, c
		}
	}
	best.Dataset, best.SeedLen, best.BuildSeconds = name, k, buildSec
	return best, calls, nil
}

// IndexBench runs the full index evaluation: selectivity/throughput on
// a dedicated large genome, accuracy on the shared dataset ds, and the
// persistence leg (timings + VCF identity through a save/load cycle).
func IndexBench(ds *Dataset, cfg IndexBenchConfig) (*IndexBenchReport, error) {
	cfg = cfg.withDefaults()
	sel, err := makeSelectivityDataset(cfg.SelGenomeLen, cfg.SelCoverage)
	if err != nil {
		return nil, err
	}
	rep := &IndexBenchReport{}
	selName := fmt.Sprintf("selectivity-%dbp", cfg.SelGenomeLen)
	accName := fmt.Sprintf("accuracy-%dbp", ds.Ref.Len())
	for _, c := range []struct {
		ds      *Dataset
		name    string
		k       int
		repeats int
	}{
		{sel, selName, kmer.DefaultK, 2},
		{sel, selName, cfg.LargeSeedLen, 2},
		{ds, accName, kmer.DefaultK, 1},
		{ds, accName, cfg.LargeSeedLen, 1},
	} {
		row, _, err := benchConfig(c.ds, c.name, c.k, cfg.Workers, c.repeats)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}

	// Persistence: build/write/load timings on the large genome...
	dir := cfg.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "gnumap-indexbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	t0 := time.Now()
	big, err := kmer.NewLarge(sel.Ref.Seq(), cfg.LargeSeedLen)
	if err != nil {
		return nil, err
	}
	buildSec := time.Since(t0).Seconds()
	path := filepath.Join(dir, "sel.gnix")
	t0 = time.Now()
	fileBytes, err := kmer.WriteIndexFile(path, big, sel.Ref.Digest(), int64(sel.Ref.Len()))
	if err != nil {
		return nil, err
	}
	writeSec := time.Since(t0).Seconds()
	t0 = time.Now()
	loaded, err := kmer.LoadIndexFile(path, kmer.LoadOptions{
		RefDigest: sel.Ref.Digest(), RefLen: int64(sel.Ref.Len()),
	})
	if err != nil {
		return nil, err
	}
	loadSec := time.Since(t0).Seconds()
	loaded.Close()
	rep.Persist = IndexPersistRow{
		SeedLen: cfg.LargeSeedLen, GenomeLen: sel.Ref.Len(),
		FileBytes: fileBytes, BuildSeconds: buildSec,
		WriteSeconds: writeSec, LoadSeconds: loadSec,
		LoadSpeedup: buildSec / loadSec,
	}

	// ...and VCF identity through a save/load cycle on the accuracy
	// dataset: fresh-build calls vs loaded-index calls must render
	// byte-equal VCF.
	fresh, err := kmer.NewLarge(ds.Ref.Seq(), cfg.LargeSeedLen)
	if err != nil {
		return nil, err
	}
	accPath := filepath.Join(dir, "acc.gnix")
	if _, err := kmer.WriteIndexFile(accPath, fresh, ds.Ref.Digest(), int64(ds.Ref.Len())); err != nil {
		return nil, err
	}
	_, freshCalls, err := runWithIndex(ds, fresh, cfg.Workers)
	if err != nil {
		return nil, err
	}
	reloaded, err := kmer.LoadIndexFile(accPath, kmer.LoadOptions{
		RefDigest: ds.Ref.Digest(), RefLen: int64(ds.Ref.Len()),
	})
	if err != nil {
		return nil, err
	}
	_, loadedCalls, err := runWithIndex(ds, reloaded, cfg.Workers)
	reloaded.Close()
	if err != nil {
		return nil, err
	}
	var a, b bytes.Buffer
	if err := snp.WriteVCF(&a, freshCalls, "gnumap-snp"); err != nil {
		return nil, err
	}
	if err := snp.WriteVCF(&b, loadedCalls, "gnumap-snp"); err != nil {
		return nil, err
	}
	rep.Persist.VCFIdentical = bytes.Equal(a.Bytes(), b.Bytes())
	return rep, nil
}
