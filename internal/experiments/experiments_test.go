package experiments

import (
	"testing"

	"gnumap/internal/cluster"
	"gnumap/internal/genome"
)

// smallData builds a fast dataset shared by the tests.
func smallData(t *testing.T) *Dataset {
	t.Helper()
	ds, err := MakeDataset(DataConfig{GenomeLength: 60_000, SNPCount: 5, Coverage: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestMakeDatasetDefaults(t *testing.T) {
	ds, err := MakeDataset(DataConfig{GenomeLength: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Truth) != 30_000/10_500 {
		t.Errorf("default SNP density wrong: %d SNPs", len(ds.Truth))
	}
	if ds.Ref.Len() != 30_000 {
		t.Errorf("reference length %d", ds.Ref.Len())
	}
	wantReads := int(12 * 30_000 / 62)
	if len(ds.Reads) != wantReads {
		t.Errorf("%d reads, want %d", len(ds.Reads), wantReads)
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	ds := smallData(t)
	rows, err := Table1(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Program != "MAQ-like" || rows[1].Program != "SOAPsnp-like" || rows[2].Program != "GNUMAP-SNP" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		// Both programs must be decent on this easy dataset (the
		// paper's Table I: similar accuracy for both).
		if r.TP < len(ds.Truth)-2 {
			t.Errorf("%s recovered %d/%d", r.Program, r.TP, len(ds.Truth))
		}
		if r.Precision < 0.7 {
			t.Errorf("%s precision %v", r.Program, r.Precision)
		}
		if r.Wall <= 0 {
			t.Errorf("%s has no wall time", r.Program)
		}
	}
}

func TestTable2Ordering(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if !(rows[0].Mode == genome.Norm && rows[1].Mode == genome.CharDisc && rows[2].Mode == genome.CentDisc) {
		t.Fatalf("row order wrong: %+v", rows)
	}
	// The paper's Table II ordering: NORM > CHARDISC > CENTDISC.
	if !(rows[0].BytesPerBase > rows[1].BytesPerBase && rows[1].BytesPerBase > rows[2].BytesPerBase) {
		t.Errorf("memory ordering violated: %+v", rows)
	}
	// NORM is exactly 20 bytes/base; extrapolations scale linearly.
	if rows[0].BytesPerBase != 20 {
		t.Errorf("NORM bytes/base = %v", rows[0].BytesPerBase)
	}
	if rows[0].HumanBytes != 20*humanBases {
		t.Errorf("human extrapolation = %d", rows[0].HumanBytes)
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	ds := smallData(t)
	rows, err := Table3(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byMode := map[genome.Mode]Table3Row{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	// Memory ordering as Table II.
	if !(byMode[genome.Norm].MemBytes > byMode[genome.CharDisc].MemBytes &&
		byMode[genome.CharDisc].MemBytes > byMode[genome.CentDisc].MemBytes) {
		t.Errorf("memory ordering violated: %+v", rows)
	}
	// The paper's headline: NORM and CHARDISC accurate, CENTDISC's
	// precision collapses.
	if byMode[genome.Norm].Precision < 0.7 || byMode[genome.CharDisc].Precision < 0.7 {
		t.Errorf("NORM/CHARDISC precision too low: %+v", rows)
	}
	if byMode[genome.CentDisc].Precision > 0.5 {
		t.Errorf("CENTDISC precision = %v, expected collapse (paper Table III)",
			byMode[genome.CentDisc].Precision)
	}
	if byMode[genome.CentDisc].FP <= byMode[genome.Norm].FP {
		t.Errorf("CENTDISC FP (%d) not worse than NORM (%d)",
			byMode[genome.CentDisc].FP, byMode[genome.Norm].FP)
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	ds, err := MakeDataset(DataConfig{GenomeLength: 40_000, SNPCount: 3, Coverage: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	points, err := Fig4(ds, 3, cluster.Channels)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points", len(points))
	}
	rate := map[string]map[int]Fig4Point{}
	for _, p := range points {
		if rate[p.Mode] == nil {
			rate[p.Mode] = map[int]Fig4Point{}
		}
		rate[p.Mode][p.Nodes] = p
	}
	// Modeled read-split throughput grows with nodes (near-linear).
	rs := rate["read-split"]
	if !(rs[3].ModeledRate > rs[2].ModeledRate && rs[2].ModeledRate > rs[1].ModeledRate) {
		t.Errorf("read-split modeled rate not increasing: %+v", rs)
	}
	if speedup := rs[3].ModeledRate / rs[1].ModeledRate; speedup < 2.2 {
		t.Errorf("read-split 3-node modeled speedup %v, want near 3x", speedup)
	}
	// Genome-split scales less efficiently than read-split (paper
	// Figure 4's message): every node repeats the seed scan of all
	// reads, so its speedup curve sits below read-split's. (Absolute
	// rates can cross at toy scales where read-split's state reduction
	// dominates, so the assertion is on scaling efficiency.)
	gs := rate["genome-split"]
	gsSpeedup := gs[3].ModeledRate / gs[1].ModeledRate
	rsSpeedup := rs[3].ModeledRate / rs[1].ModeledRate
	if gsSpeedup >= rsSpeedup {
		t.Errorf("genome-split modeled speedup %v >= read-split %v", gsSpeedup, rsSpeedup)
	}
	// Measured (serialized) genome-split throughput decreases with
	// nodes: the total work grows.
	if gs[3].MeasuredRate >= gs[1].MeasuredRate {
		t.Errorf("genome-split measured rate did not decrease: %v -> %v",
			gs[1].MeasuredRate, gs[3].MeasuredRate)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	ds, err := MakeDataset(DataConfig{GenomeLength: 40_000, SNPCount: 3, Coverage: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	points, err := Fig5(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points", len(points))
	}
	var normRate, centRate float64
	for _, p := range points {
		if p.Workers == 1 {
			switch p.Mode {
			case genome.Norm:
				normRate = p.MeasuredRate
			case genome.CentDisc:
				centRate = p.MeasuredRate
			}
		}
		if p.ModeledRate <= 0 || p.MeasuredRate <= 0 {
			t.Errorf("non-positive rate: %+v", p)
		}
	}
	// Figure 5's secondary claim: CENTDISC is the slowest mode (its
	// nearest-centroid search runs on every update). Wall-clock
	// comparisons on a shared machine are noisy, so allow 25% slack —
	// the steady-state gap is far larger.
	if centRate >= 1.25*normRate {
		t.Errorf("CENTDISC rate %v >= NORM rate %v", centRate, normRate)
	}
}

func TestAblationsShapeHolds(t *testing.T) {
	ds := smallData(t)
	rows, err := Ablations(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full, ok := byName["full-engine"]
	if !ok {
		t.Fatal("no full-engine row")
	}
	if full.TP < len(ds.Truth)-1 {
		t.Errorf("full engine recovered %d/%d", full.TP, len(ds.Truth))
	}
	// The naive caller (no LRT background test) must produce more
	// false positives than the full engine — the paper's core claim
	// about ad hoc cutoffs.
	naive, ok := byName["naive-caller"]
	if !ok {
		t.Fatal("no naive-caller row")
	}
	if naive.FP <= full.FP {
		t.Errorf("naive caller FP (%d) not worse than LRT caller (%d)", naive.FP, full.FP)
	}
}

func TestCutoffSweepMonotone(t *testing.T) {
	ds := smallData(t)
	rows, err := CutoffSweep(ds, 2, []float64{0.001, 0.05, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Within each control style, loosening alpha must not lose TPs.
	for _, fdr := range []bool{false, true} {
		var prev *SweepRow
		for i := range rows {
			r := rows[i]
			if r.FDR != fdr {
				continue
			}
			if prev != nil {
				if r.TP < prev.TP {
					t.Errorf("fdr=%v: TP dropped from %d to %d as alpha rose", fdr, prev.TP, r.TP)
				}
				if r.FP < prev.FP {
					t.Errorf("fdr=%v: FP dropped from %d to %d as alpha rose", fdr, prev.FP, r.FP)
				}
			}
			prev = &rows[i]
		}
	}
}
