// Package experiments regenerates every table and figure of the
// paper's evaluation section (§VII) on simulated data. Each experiment
// returns structured rows; cmd/snpbench renders them as the paper's
// tables, and the repository-root benchmarks wrap them in testing.B.
//
// Experiment-to-paper map:
//
//	Table1 — §VII-A Table I:   GNUMAP-SNP vs the MAQ-like baseline
//	                           (time, TP, FP, FN, precision)
//	Table2 — §VII-B Table II:  accumulator memory per layout,
//	                           extrapolated to chrX (155 Mbp) and the
//	                           human genome (3.1 Gbp)
//	Table3 — §VII-B Table III: memory, wall clock, and accuracy per
//	                           memory layout on one dataset
//	Fig4   — §VI     Figure 4: sequences/second vs node count for the
//	                           read-split ("shared memory") and
//	                           genome-split ("spread memory") modes
//	Fig5   — §VII-B Figure 5:  sequences/second vs processor count per
//	                           memory layout
package experiments

import (
	"fmt"
	"time"

	"gnumap/internal/baseline"
	"gnumap/internal/cluster"
	"gnumap/internal/core"
	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/kmer"
	"gnumap/internal/simulate"
	"gnumap/internal/snp"
)

// Dataset bundles one simulated experiment input.
type Dataset struct {
	Ref   *genome.Reference
	Truth []simulate.SNP
	Reads []*fastq.Read
}

// DataConfig sizes the simulated dataset shared by Table I, Table III,
// Figure 4, and Figure 5. Zero values scale the paper's setup down to
// laptop size: the paper used a 153 Mbp chromosome with 14,501 SNPs
// (1 per ~10.5 kbp) at 12x coverage of 62-bp reads.
type DataConfig struct {
	GenomeLength int     // default 400_000
	SNPCount     int     // default GenomeLength/10_500
	Coverage     float64 // default 12
	ReadLength   int     // default 62
	Seed         int64   // default 1
}

func (c DataConfig) withDefaults() DataConfig {
	if c.GenomeLength == 0 {
		c.GenomeLength = 400_000
	}
	if c.SNPCount == 0 {
		c.SNPCount = c.GenomeLength / 10_500
		if c.SNPCount < 1 {
			c.SNPCount = 1
		}
	}
	if c.Coverage == 0 {
		c.Coverage = 12
	}
	if c.ReadLength == 0 {
		c.ReadLength = 62
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// MakeDataset builds the simulated genome/catalog/reads, with repeat
// structure matching the paper's emphasis on repeat regions.
func MakeDataset(cfg DataConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	g, err := simulate.Genome(simulate.GenomeConfig{
		Length:                  cfg.GenomeLength,
		TandemRepeatFraction:    0.03,
		DispersedRepeatFraction: 0.08,
		Seed:                    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	cat, err := simulate.Catalog(g, simulate.CatalogConfig{Count: cfg.SNPCount, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	ind, err := simulate.Mutate(g, cat, false)
	if err != nil {
		return nil, err
	}
	reads, err := simulate.Reads(ind, simulate.ReadConfig{
		Length:   cfg.ReadLength,
		Coverage: cfg.Coverage,
		// The paper's Solexa/Illumina profile: noticeably degraded
		// 3' ends.
		ErrStart: 0.004,
		ErrEnd:   0.04,
		Seed:     cfg.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	ref, err := genome.NewSingleContig("sim", g)
	if err != nil {
		return nil, err
	}
	return &Dataset{Ref: ref, Truth: cat, Reads: reads}, nil
}

// Table1Row is one program's line of Table I.
type Table1Row struct {
	Program    string
	Wall       time.Duration
	TP, FP, FN int
	Precision  float64
}

// Table1 runs GNUMAP-SNP (parallel, as in the paper's cluster run) and
// the two comparator baselines (single worker, as in the paper's
// single-processor MAQ run) on the same dataset. The paper could not
// get SOAPsnp to emit any calls; our SOAPsnp-like Bayesian caller works
// and is reported as a third row for completeness.
func Table1(ds *Dataset, gnumapWorkers int) ([]Table1Row, error) {
	if gnumapWorkers <= 0 {
		gnumapWorkers = 0 // engine default (GOMAXPROCS)
	}
	var rows []Table1Row

	for _, consensus := range []baseline.Consensus{baseline.MAQConsensus, baseline.SoapConsensus} {
		start := time.Now()
		bres, err := baseline.Run(ds.Ref, ds.Reads, baseline.Config{Workers: 1, Consensus: consensus})
		if err != nil {
			return nil, err
		}
		bm := snp.Evaluate(bres.Calls, ds.Truth)
		rows = append(rows, Table1Row{
			Program: consensus.String() + "-like", Wall: time.Since(start),
			TP: bm.TP, FP: bm.FP, FN: bm.FN, Precision: bm.Precision(),
		})
	}

	// GNUMAP-SNP.
	start := time.Now()
	eng, err := core.NewEngine(ds.Ref, core.Config{Workers: gnumapWorkers})
	if err != nil {
		return nil, err
	}
	acc, err := genome.New(genome.Norm, ds.Ref.Len())
	if err != nil {
		return nil, err
	}
	if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
		return nil, err
	}
	calls, _, err := snp.CallAll(ds.Ref, acc, snp.Config{})
	if err != nil {
		return nil, err
	}
	gm := snp.Evaluate(calls, ds.Truth)
	rows = append(rows, Table1Row{
		Program: "GNUMAP-SNP", Wall: time.Since(start),
		TP: gm.TP, FP: gm.FP, FN: gm.FN, Precision: gm.Precision(),
	})
	return rows, nil
}

// Table2Row is one memory layout's line of Table II.
type Table2Row struct {
	Mode         genome.Mode
	BytesPerBase float64
	// ChrX and Human extrapolate the accumulator to the paper's
	// genome sizes (155 Mbp and 3.1 Gbp).
	ChrXBytes, HumanBytes int64
}

// Paper genome sizes for the Table II extrapolation.
const (
	chrXBases  = 155_000_000
	humanBases = 3_100_000_000
)

// Table2 measures per-base accumulator memory for each layout and
// extrapolates to the paper's genome sizes.
func Table2() ([]Table2Row, error) {
	const probe = 1_000_000
	var rows []Table2Row
	for _, mode := range []genome.Mode{genome.Norm, genome.CharDisc, genome.CentDisc} {
		acc, err := genome.New(mode, probe)
		if err != nil {
			return nil, err
		}
		perBase := float64(acc.MemoryBytes()) / probe
		rows = append(rows, Table2Row{
			Mode:         mode,
			BytesPerBase: perBase,
			ChrXBytes:    int64(perBase * chrXBases),
			HumanBytes:   int64(perBase * humanBases),
		})
	}
	return rows, nil
}

// Table3Row is one memory layout's line of Table III.
type Table3Row struct {
	Mode      genome.Mode
	MemBytes  int64
	Wall      time.Duration
	TP, FP    int
	Precision float64
}

// Table3 runs the full engine once per memory layout on the dataset.
func Table3(ds *Dataset, workers int) ([]Table3Row, error) {
	var rows []Table3Row
	for _, mode := range []genome.Mode{genome.Norm, genome.CharDisc, genome.CentDisc} {
		start := time.Now()
		eng, err := core.NewEngine(ds.Ref, core.Config{Workers: workers})
		if err != nil {
			return nil, err
		}
		acc, err := genome.New(mode, ds.Ref.Len())
		if err != nil {
			return nil, err
		}
		if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
			return nil, err
		}
		calls, _, err := snp.CallAll(ds.Ref, acc, snp.Config{})
		if err != nil {
			return nil, err
		}
		m := snp.Evaluate(calls, ds.Truth)
		rows = append(rows, Table3Row{
			Mode:     mode,
			MemBytes: acc.MemoryBytes(),
			Wall:     time.Since(start),
			TP:       m.TP, FP: m.FP,
			Precision: m.Precision(),
		})
	}
	return rows, nil
}

// Fig4Point is one measurement of Figure 4.
type Fig4Point struct {
	Nodes int
	// Mode is "read-split" (the paper's "shared memory" series) or
	// "genome-split" (the paper's "spread memory" series).
	Mode string
	// MeasuredRate is reads/second of the actual run. On a single-CPU
	// host all node goroutines serialize, so this stays roughly flat
	// for read-split and *decreases* for genome-split (whose total
	// work grows with node count) — the relative ordering of the two
	// curves is still the paper's Figure 4 shape.
	MeasuredRate float64
	// ModeledRate is reads/second under critical-path accounting:
	// per-node compute calibrated from the single-node run, plus the
	// measured cost of the mode's communication phases (state
	// reduction for read-split; 3 collectives per read batch plus the
	// spill exchange for genome-split). On a real N-CPU cluster the
	// measured and modeled curves coincide up to scheduling noise.
	ModeledRate float64
}

// Fig4 measures sequence processing rate against node count for both
// distributed modes on an in-process cluster (one mapping worker per
// node, as with MPI ranks). See Fig4Point for the measured/modeled
// distinction.
func Fig4(ds *Dataset, maxNodes int, transport cluster.TransportKind) ([]Fig4Point, error) {
	if maxNodes <= 0 {
		maxNodes = 4
	}
	R := len(ds.Reads)

	// Calibration 1: single-node read-split wall -> per-read compute
	// cost (the genome-replicated mapping cost).
	wall1, err := timeClusterRun(1, transport, func(c *cluster.Comm) error {
		_, _, err := core.RunReadSplit(c, ds.Ref, ds.Reads, genome.Norm, core.Config{Workers: 1})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("fig4 calibration read-split: %w", err)
	}
	tRead := wall1.Seconds() / float64(R)

	// Calibration 2: single-node genome-split wall. Its compute has a
	// non-scaling part (every node seed-scans every read) and a
	// scaling part (alignments of the 1/N owned slice).
	wall1g, err := timeClusterRun(1, transport, func(c *cluster.Comm) error {
		_, _, _, _, err := core.RunGenomeSplit(c, ds.Ref, ds.Reads, genome.Norm, core.Config{Workers: 1})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("fig4 calibration genome-split: %w", err)
	}
	// Calibration 3: scan-only cost (index lookups without alignment).
	tScanTotal, err := scanOnlySeconds(ds)
	if err != nil {
		return nil, err
	}
	alignSeconds := wall1g.Seconds() - tScanTotal
	if alignSeconds < 0 {
		alignSeconds = 0
	}

	// Calibration 4: communication micro-costs.
	tStateReduce, err := stateReduceSeconds(ds.Ref.Len())
	if err != nil {
		return nil, err
	}

	var points []Fig4Point
	for nodes := 1; nodes <= maxNodes; nodes++ {
		// Read-split: measured.
		wall, err := timeClusterRun(nodes, transport, func(c *cluster.Comm) error {
			_, _, err := core.RunReadSplit(c, ds.Ref, ds.Reads, genome.Norm, core.Config{Workers: 1})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 read-split nodes=%d: %w", nodes, err)
		}
		// Read-split: modeled = biggest shard's compute + the root's
		// serialized state reduction ((N-1) decode+merge rounds).
		maxShard := (R + nodes - 1) / nodes
		model := tRead*float64(maxShard) + float64(nodes-1)*tStateReduce
		points = append(points, Fig4Point{
			Nodes: nodes, Mode: "read-split",
			MeasuredRate: float64(R) / wall.Seconds(),
			ModeledRate:  float64(R) / model,
		})

		// Genome-split: measured.
		wall, err = timeClusterRun(nodes, transport, func(c *cluster.Comm) error {
			_, _, _, _, err := core.RunGenomeSplit(c, ds.Ref, ds.Reads, genome.Norm, core.Config{Workers: 1})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 genome-split nodes=%d: %w", nodes, err)
		}
		// Genome-split: modeled = full scan + 1/N of alignment work +
		// three collectives per read batch (max, sum, survivor mass).
		nBatches := (R + core.GenomeSplitBatch - 1) / core.GenomeSplitBatch
		tColl, err := allreduceSeconds(nodes, transport)
		if err != nil {
			return nil, err
		}
		model = tScanTotal + alignSeconds/float64(nodes) + float64(3*nBatches)*tColl
		points = append(points, Fig4Point{
			Nodes: nodes, Mode: "genome-split",
			MeasuredRate: float64(R) / wall.Seconds(),
			ModeledRate:  float64(R) / model,
		})
	}
	return points, nil
}

// timeClusterRun times one cluster execution.
func timeClusterRun(nodes int, transport cluster.TransportKind, fn func(*cluster.Comm) error) (time.Duration, error) {
	start := time.Now()
	if err := cluster.Run(nodes, transport, fn); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// scanOnlySeconds measures the seed-scanning cost over all reads (both
// strands), the non-scaling component of genome-split compute.
func scanOnlySeconds(ds *Dataset) (float64, error) {
	idx, err := kmer.New(ds.Ref.Seq(), kmer.DefaultK)
	if err != nil {
		return 0, err
	}
	opts := kmer.CandidateOptions{MaxCandidates: 8, MinVotes: 2, MaxBucket: 1024, Slack: 2}
	start := time.Now()
	for _, rd := range ds.Reads {
		idx.Candidates(rd.Seq, opts)
		idx.Candidates(rd.Seq.ReverseComplement(), opts)
	}
	return time.Since(start).Seconds(), nil
}

// stateReduceSeconds measures one serialize+transfer+deserialize+merge
// round of a NORM accumulator of the given length — the unit cost of
// the read-split reduction.
func stateReduceSeconds(length int) (float64, error) {
	a, err := genome.New(genome.Norm, length)
	if err != nil {
		return 0, err
	}
	b, err := genome.New(genome.Norm, length)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	data, err := a.(genome.Stateful).State()
	if err != nil {
		return 0, err
	}
	tmp, err := genome.CloneEmpty(a)
	if err != nil {
		return 0, err
	}
	if err := tmp.(genome.Stateful).LoadStateBytes(data); err != nil {
		return 0, err
	}
	if err := b.Merge(tmp); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// allreduceSeconds measures the per-collective cost of an Allreduce of
// one GenomeSplitBatch-sized float64 vector on an N-node cluster.
func allreduceSeconds(nodes int, transport cluster.TransportKind) (float64, error) {
	const rounds = 20
	payload := make([]float64, core.GenomeSplitBatch)
	start := time.Now()
	err := cluster.Run(nodes, transport, func(c *cluster.Comm) error {
		for i := 0; i < rounds; i++ {
			if _, err := c.Allreduce(payload, cluster.SumFloat64s); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return time.Since(start).Seconds() / rounds, nil
}

// Fig5Point is one measurement of Figure 5.
type Fig5Point struct {
	Workers int
	Mode    genome.Mode
	// MeasuredRate is reads/second of the actual run (flat on a
	// single-CPU host).
	MeasuredRate float64
	// ModeledRate assumes the workers' independent read shards run
	// concurrently (they interact only through striped accumulator
	// locks): single-worker rate × workers. The per-mode *ordering* —
	// CENTDISC slowest because of its nearest-centroid search on every
	// update — is measured, not modeled.
	ModeledRate float64
}

// Fig5 measures shared-memory throughput against worker count for each
// memory layout.
func Fig5(ds *Dataset, maxWorkers int) ([]Fig5Point, error) {
	if maxWorkers <= 0 {
		maxWorkers = 4
	}
	base := map[genome.Mode]float64{}
	var points []Fig5Point
	for workers := 1; workers <= maxWorkers; workers++ {
		for _, mode := range []genome.Mode{genome.Norm, genome.CharDisc, genome.CentDisc} {
			eng, err := core.NewEngine(ds.Ref, core.Config{Workers: workers})
			if err != nil {
				return nil, err
			}
			acc, err := genome.New(mode, ds.Ref.Len())
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
				return nil, err
			}
			rate := float64(len(ds.Reads)) / time.Since(start).Seconds()
			if workers == 1 {
				base[mode] = rate
			}
			points = append(points, Fig5Point{
				Workers: workers, Mode: mode,
				MeasuredRate: rate,
				ModeledRate:  base[mode] * float64(workers),
			})
		}
	}
	return points, nil
}

// AblationRow is one engine-variant's accuracy line.
type AblationRow struct {
	Variant   string
	TP, FP    int
	Precision float64
	Wall      time.Duration
}

// Ablations isolates the engine's design choices (DESIGN.md §5): the
// full engine, called-base vs PWM attribution off, Viterbi-only
// accumulation, best-hit-only location assignment, and a naive
// majority-vote caller without the LRT.
func Ablations(ds *Dataset, workers int) ([]AblationRow, error) {
	type variant struct {
		name  string
		cfg   core.Config
		naive bool
	}
	variants := []variant{
		{name: "full-engine", cfg: core.Config{Workers: workers}},
		{name: "viterbi-only", cfg: core.Config{Workers: workers, ViterbiOnly: true}},
		{name: "best-hit-only", cfg: core.Config{Workers: workers, BestHitOnly: true}},
		{name: "naive-caller", cfg: core.Config{Workers: workers}, naive: true},
	}
	var rows []AblationRow
	for _, v := range variants {
		start := time.Now()
		eng, err := core.NewEngine(ds.Ref, v.cfg)
		if err != nil {
			return nil, err
		}
		acc, err := genome.New(genome.Norm, ds.Ref.Len())
		if err != nil {
			return nil, err
		}
		if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
			return nil, err
		}
		var calls []snp.Call
		if v.naive {
			calls = NaiveCalls(ds.Ref, acc)
		} else {
			calls, _, err = snp.CallAll(ds.Ref, acc, snp.Config{})
			if err != nil {
				return nil, err
			}
		}
		m := snp.Evaluate(calls, ds.Truth)
		rows = append(rows, AblationRow{
			Variant: v.name, TP: m.TP, FP: m.FP,
			Precision: m.Precision(), Wall: time.Since(start),
		})
	}
	return rows, nil
}

// NaiveCalls is the LRT ablation: call a SNP wherever the plurality
// channel differs from the reference and depth >= 2 — the "ad hoc
// cutoff without background comparison" calling style the paper
// criticizes.
func NaiveCalls(ref *genome.Reference, acc genome.Accumulator) []snp.Call {
	var calls []snp.Call
	for pos := 0; pos < ref.Len(); pos++ {
		v := acc.Vector(pos)
		depth := 0.0
		best := 0
		for k, x := range v {
			depth += x
			if x > v[best] {
				best = k
			}
		}
		if depth < 2 {
			continue
		}
		refBase, err := ref.Base(pos)
		if err != nil || !refBase.IsConcrete() || best == int(refBase) || best == 4 {
			continue
		}
		contig, local, err := ref.Locate(pos)
		if err != nil {
			continue
		}
		calls = append(calls, snp.Call{
			Contig: contig, Pos: local, GlobalPos: pos,
			Ref: refBase, Allele: dna.Channel(best), Allele2: dna.Channel(best),
			Depth: depth,
		})
	}
	return calls
}

// SweepRow is one operating point of the significance-cutoff sweep.
type SweepRow struct {
	// Alpha is the family-wise level; FDR marks Benjamini-Hochberg
	// control instead of the fixed α/5 cutoff.
	Alpha     float64
	FDR       bool
	TP, FP    int
	Precision float64
	// Sensitivity is TP over planted SNPs.
	Sensitivity float64
}

// CutoffSweep exercises the paper's headline usability claim — that the
// LRT gives researchers "straightforward SNP calling cutoffs based on a
// p-value cutoff or a false discovery control" — by mapping once and
// then calling at a range of α levels under both control styles.
func CutoffSweep(ds *Dataset, workers int, alphas []float64) ([]SweepRow, error) {
	if len(alphas) == 0 {
		alphas = []float64{0.001, 0.01, 0.05, 0.1, 0.25}
	}
	eng, err := core.NewEngine(ds.Ref, core.Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	acc, err := genome.New(genome.Norm, ds.Ref.Len())
	if err != nil {
		return nil, err
	}
	if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, fdr := range []bool{false, true} {
		for _, alpha := range alphas {
			calls, _, err := snp.CallAll(ds.Ref, acc, snp.Config{Alpha: alpha, UseFDR: fdr})
			if err != nil {
				return nil, err
			}
			m := snp.Evaluate(calls, ds.Truth)
			rows = append(rows, SweepRow{
				Alpha: alpha, FDR: fdr,
				TP: m.TP, FP: m.FP,
				Precision:   m.Precision(),
				Sensitivity: m.Sensitivity(),
			})
		}
	}
	return rows, nil
}
