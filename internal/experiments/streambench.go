package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"gnumap/internal/ckpt"
	"gnumap/internal/core"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
	"gnumap/internal/obs"
	"gnumap/internal/snp"
)

// StreamBenchRow is one mapping-path measurement, emitted by snpbench
// as machine-readable BENCH_stream.json so successive PRs can track the
// streaming pipeline against the materialized baseline.
type StreamBenchRow struct {
	// Path identifies the execution path: "slice" (ReadFile + MapReads)
	// or "stream" (Open + MapReadsFrom).
	Path string `json:"path"`
	// Reads is the number of reads mapped; WallNs the end-to-end wall
	// time including the FASTQ I/O; ReadsPerSec the throughput.
	Reads       int     `json:"reads"`
	WallNs      int64   `json:"wall_ns"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	// PeakHeapBytes is the sampled live-heap high-water mark over the
	// run (runtime.ReadMemStats HeapAlloc) — the portable stand-in for
	// peak RSS.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// PeakResidentReads is the streaming pipeline's
	// stream.peak.resident.reads gauge (0 on the slice path, which
	// holds every read at once).
	PeakResidentReads int64 `json:"peak_resident_reads"`
	// The streaming configuration the row ran under.
	Workers int `json:"workers"`
	Batch   int `json:"batch"`
	Queue   int `json:"queue"`
	// Checkpointing cost, set only on the "stream+ckpt" row: the
	// read-count interval, durable writes performed, and bytes
	// committed.
	CkptEveryReads int64 `json:"ckpt_every_reads,omitempty"`
	CkptWrites     int64 `json:"ckpt_writes,omitempty"`
	CkptBytes      int64 `json:"ckpt_bytes,omitempty"`
	// CkptStallFrac is the checkpoint overhead: the fraction of the
	// row's wall time spent with the pipeline fully stalled for
	// checkpointing (quiesced snapshot + sink handoff, measured by the
	// stream.ckpt.stall.seconds timer). The durable write itself
	// overlaps resumed mapping, so this direct measurement — not
	// wall-clock differencing against the "stream" row, whose run-to-run
	// noise exceeds the effect — is the feature's critical-path cost.
	CkptStallFrac float64 `json:"ckpt_stall_frac,omitempty"`
	// CkptOverheadFrac is the noisy secondary indicator: this row's wall
	// time relative to the best "stream" row. Treat ±10% as measurement
	// noise on a shared host.
	CkptOverheadFrac float64 `json:"ckpt_overhead_frac,omitempty"`
	// Incremental-calling fields, set only on the "stream+inc" row
	// (mapping with the SNP caller overlapped at quiesce barriers).
	// CallFirstSeconds is the wall time from mapping start to the first
	// provisional sweep that produced at least one call — the
	// time-to-first-call headline, by construction smaller than the
	// row's total WallNs when coverage arrives before the stream ends.
	// CallFirstReads is the source watermark at that sweep; the Inc*
	// fields expose the per-region sweep cache behaviour and the final
	// call count (asserted identical to the one-shot post-map sweep).
	CallFirstSeconds float64 `json:"call_first_seconds,omitempty"`
	CallFirstReads   int64   `json:"call_first_reads,omitempty"`
	IncSweeps        int64   `json:"inc_sweeps,omitempty"`
	IncRegionsSwept  int64   `json:"inc_regions_swept,omitempty"`
	IncRegionsReused int64   `json:"inc_regions_reused,omitempty"`
	IncCalls         int     `json:"inc_calls,omitempty"`
}

// heapSampler polls the live heap on a short period and keeps the
// high-water mark. Sampling (rather than a single post-run read) is
// needed because the interesting peak is mid-run, before the GC
// reclaims the transient read slice.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	runtime.GC() // level the baseline between rows
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak {
					s.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return s
}

func (s *heapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// streamBenchIters is the repeat count per row; each row reports its
// fastest repeat. Single ~700ms runs on a shared host carry ±20% wall
// noise — far more than the few-percent checkpoint overhead the rows
// exist to measure — and best-of-N under identical work converges on
// the true cost from above.
const streamBenchIters = 3

// StreamBench maps the dataset from an on-disk FASTQ four ways —
// materialized (ReadFile + MapReads), through the bounded streaming
// pipeline (Open + MapReadsFrom), streaming with periodic durable
// checkpoints every ckptEvery reads, and streaming with incremental
// SNP calling overlapped at the same cadence (ckptEvery 0 skips both
// extra rows) — and reports
// wall time, throughput, sampled peak heap, the pipeline's
// resident-reads high-water mark, and the checkpointing overhead.
// Every row is the best of streamBenchIters repeats, and identical
// accumulator mass is asserted, so the rows always compare equivalent
// work.
func StreamBench(ds *Dataset, workers, batch, queue int, ckptEvery int64) ([]StreamBenchRow, error) {
	dir, err := os.MkdirTemp("", "streambench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fq := filepath.Join(dir, "reads.fq")
	if err := fastq.WriteFile(fq, ds.Reads, fastq.Sanger); err != nil {
		return nil, err
	}
	cfg := core.Config{Workers: workers, Batch: batch, Queue: queue}

	// best runs one row's measurement streamBenchIters times and keeps
	// the fastest repeat (and that repeat's accumulator for the
	// equivalence checks below).
	best := func(measure func() (StreamBenchRow, genome.Accumulator, error)) (StreamBenchRow, genome.Accumulator, error) {
		var bestRow StreamBenchRow
		var bestAcc genome.Accumulator
		for i := 0; i < streamBenchIters; i++ {
			row, acc, err := measure()
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			if bestAcc == nil || row.WallNs < bestRow.WallNs {
				bestRow, bestAcc = row, acc
			}
		}
		return bestRow, bestAcc, nil
	}

	// Slice path: materialize, then map.
	sliceRow, sliceAcc, err := best(func() (StreamBenchRow, genome.Accumulator, error) {
		acc, err := genome.New(genome.Norm, ds.Ref.Len())
		if err != nil {
			return StreamBenchRow{}, nil, err
		}
		eng, err := core.NewEngine(ds.Ref, cfg)
		if err != nil {
			return StreamBenchRow{}, nil, err
		}
		sampler := startHeapSampler()
		start := time.Now()
		reads, err := fastq.ReadFile(fq, fastq.Sanger)
		if err != nil {
			return StreamBenchRow{}, nil, err
		}
		if _, err := eng.MapReads(reads, acc, 0); err != nil {
			return StreamBenchRow{}, nil, err
		}
		wall := time.Since(start)
		return StreamBenchRow{
			Path:          "slice",
			Reads:         len(reads),
			WallNs:        wall.Nanoseconds(),
			ReadsPerSec:   float64(len(reads)) / wall.Seconds(),
			PeakHeapBytes: sampler.Stop(),
			Workers:       workers, Batch: batch, Queue: queue,
		}, acc, nil
	})
	if err != nil {
		return nil, err
	}

	// Streaming path: bounded pipeline straight off the file.
	streamRow, streamAcc, err := best(func() (StreamBenchRow, genome.Accumulator, error) {
		acc, err := genome.New(genome.Norm, ds.Ref.Len())
		if err != nil {
			return StreamBenchRow{}, nil, err
		}
		reg := obs.NewRegistry()
		scfg := cfg
		scfg.Metrics = reg
		eng, err := core.NewEngine(ds.Ref, scfg)
		if err != nil {
			return StreamBenchRow{}, nil, err
		}
		sampler := startHeapSampler()
		start := time.Now()
		src, err := fastq.Open(fq, fastq.Sanger)
		if err != nil {
			return StreamBenchRow{}, nil, err
		}
		_, err = eng.MapReadsFrom(src, acc, 0)
		if cerr := src.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return StreamBenchRow{}, nil, err
		}
		wall := time.Since(start)
		return StreamBenchRow{
			Path:              "stream",
			Reads:             int(src.Records()),
			WallNs:            wall.Nanoseconds(),
			ReadsPerSec:       float64(src.Records()) / wall.Seconds(),
			PeakHeapBytes:     sampler.Stop(),
			PeakResidentReads: int64(reg.Gauge("stream.peak.resident.reads").Value()),
			Workers:           workers, Batch: batch, Queue: queue,
		}, acc, nil
	})
	if err != nil {
		return nil, err
	}

	rows := []StreamBenchRow{sliceRow, streamRow}

	// Streaming path with periodic durable checkpoints: the same
	// pipeline plus a quiesce + snapshot + atomic file commit every
	// ckptEvery reads — the number the <5% overhead budget is about.
	if ckptEvery > 0 {
		ckptRow, ckptAcc, err := best(func() (StreamBenchRow, genome.Accumulator, error) {
			acc, err := genome.New(genome.Norm, ds.Ref.Len())
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			reg := obs.NewRegistry()
			ccfg := cfg
			ccfg.Metrics = reg
			eng, err := core.NewEngine(ds.Ref, ccfg)
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			ckPath := filepath.Join(dir, "bench.ckpt")
			fp := ckpt.Fingerprint{RefLen: int64(ds.Ref.Len())}
			var writes, wrote int64
			// Same overlap discipline as the production committer: the
			// sink (running during the quiesce) only hands the snapshot
			// off; the durable write proceeds while mapping resumes, one
			// in flight.
			pending := make(chan error, 1)
			pending <- nil
			policy := &core.CheckpointPolicy{
				EveryReads: ckptEvery,
				Sink: func(consumed int64, st core.Stats, state []byte) error {
					if err := <-pending; err != nil {
						return err
					}
					cp := &ckpt.Checkpoint{
						Fingerprint:   fp,
						ReadsConsumed: consumed,
						Mapped:        st.Mapped,
						Unmapped:      st.Unmapped,
						Locations:     st.Locations,
						State:         state,
					}
					go func() {
						n, err := ckpt.WriteFile(ckPath, cp)
						writes++
						wrote += n
						pending <- err
					}()
					return nil
				},
			}
			sampler := startHeapSampler()
			start := time.Now()
			src, err := fastq.Open(fq, fastq.Sanger)
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			_, err = eng.MapReadsFromCkpt(src, acc, 0, policy)
			if ferr := <-pending; err == nil { // final commit must be durable
				err = ferr
			}
			if cerr := src.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			wall := time.Since(start)
			return StreamBenchRow{
				Path:              "stream+ckpt",
				Reads:             int(src.Records()),
				WallNs:            wall.Nanoseconds(),
				ReadsPerSec:       float64(src.Records()) / wall.Seconds(),
				PeakHeapBytes:     sampler.Stop(),
				PeakResidentReads: int64(reg.Gauge("stream.peak.resident.reads").Value()),
				Workers:           workers, Batch: batch, Queue: queue,
				CkptEveryReads: ckptEvery,
				CkptWrites:     writes,
				CkptBytes:      wrote,
				CkptStallFrac:  reg.Timer("stream.ckpt.stall.seconds").Sum() / wall.Seconds(),
			}, acc, nil
		})
		if err != nil {
			return nil, err
		}
		ckptRow.CkptOverheadFrac = float64(ckptRow.WallNs-streamRow.WallNs) / float64(streamRow.WallNs)
		rows = append(rows, ckptRow)
		for pos := 0; pos < ds.Ref.Len(); pos += 211 {
			a, b := sliceAcc.Total(pos), ckptAcc.Total(pos)
			if diff := a - b; diff > 1e-3*(1+a) || diff < -1e-3*(1+a) {
				return nil, fmt.Errorf("experiments: ckpt/slice accumulators diverge at %d: %v vs %v", pos, b, a)
			}
		}
	}

	// Streaming path with calling overlapped: the same pipeline plus an
	// incremental per-region SNP sweep hung off a quiesce barrier every
	// ckptEvery reads. The row's headline is CallFirstSeconds —
	// provisional calls exist while mapping is still running, so it must
	// land strictly inside the row's wall time — and the final call set
	// is asserted identical to the one-shot post-map sweep over the same
	// accumulator.
	if ckptEvery > 0 {
		callCfg := snp.Config{Ploidy: lrt.Diploid, UseFDR: true}
		incRow, _, err := best(func() (StreamBenchRow, genome.Accumulator, error) {
			acc, err := genome.New(genome.Norm, ds.Ref.Len())
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			reg := obs.NewRegistry()
			icfg := cfg
			icfg.Metrics = reg
			eng, err := core.NewEngine(ds.Ref, icfg)
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			ic, err := snp.NewIncrementalCaller(ds.Ref, acc, 0, callCfg)
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			eng.SetRegionTracker(ic.Tracker())
			row := StreamBenchRow{
				Path: "stream+inc", Workers: workers, Batch: batch, Queue: queue,
				CkptEveryReads: ckptEvery,
			}
			sampler := startHeapSampler()
			start := time.Now()
			policy := &core.CheckpointPolicy{
				EveryReads: ckptEvery,
				Quiesced: func(consumed int64) error {
					if err := ic.Sweep(); err != nil {
						return err
					}
					calls, _, err := ic.Provisional()
					if err != nil {
						return err
					}
					if len(calls) > 0 && row.CallFirstSeconds == 0 {
						row.CallFirstSeconds = time.Since(start).Seconds()
						row.CallFirstReads = consumed
					}
					return nil
				},
			}
			src, err := fastq.Open(fq, fastq.Sanger)
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			_, err = eng.MapReadsFromCkpt(src, acc, 0, policy)
			if cerr := src.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			calls, _, err := ic.Finalize()
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			// Wall covers everything through the definitive call set; the
			// verification sweep below is excluded.
			wall := time.Since(start)
			want, _, err := snp.CallAll(ds.Ref, acc, callCfg)
			if err != nil {
				return StreamBenchRow{}, nil, err
			}
			if !reflect.DeepEqual(calls, want) {
				return StreamBenchRow{}, nil, fmt.Errorf("experiments: incremental final calls diverge from one-shot sweep (%d vs %d)", len(calls), len(want))
			}
			row.Reads = int(src.Records())
			row.WallNs = wall.Nanoseconds()
			row.ReadsPerSec = float64(src.Records()) / wall.Seconds()
			row.PeakHeapBytes = sampler.Stop()
			row.PeakResidentReads = int64(reg.Gauge("stream.peak.resident.reads").Value())
			row.IncSweeps = ic.Sweeps()
			row.IncRegionsSwept = ic.RegionsSwept()
			row.IncRegionsReused = ic.RegionsReused()
			row.IncCalls = len(calls)
			return row, acc, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, incRow)
	}

	// The slice and stream rows must describe the same mapping result.
	for pos := 0; pos < ds.Ref.Len(); pos += 211 {
		a, b := sliceAcc.Total(pos), streamAcc.Total(pos)
		if diff := a - b; diff > 1e-3*(1+a) || diff < -1e-3*(1+a) {
			return nil, fmt.Errorf("experiments: stream/slice accumulators diverge at %d: %v vs %v", pos, b, a)
		}
	}
	return rows, nil
}
