package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gnumap/internal/core"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/obs"
)

// StreamBenchRow is one mapping-path measurement, emitted by snpbench
// as machine-readable BENCH_stream.json so successive PRs can track the
// streaming pipeline against the materialized baseline.
type StreamBenchRow struct {
	// Path identifies the execution path: "slice" (ReadFile + MapReads)
	// or "stream" (Open + MapReadsFrom).
	Path string `json:"path"`
	// Reads is the number of reads mapped; WallNs the end-to-end wall
	// time including the FASTQ I/O; ReadsPerSec the throughput.
	Reads       int     `json:"reads"`
	WallNs      int64   `json:"wall_ns"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	// PeakHeapBytes is the sampled live-heap high-water mark over the
	// run (runtime.ReadMemStats HeapAlloc) — the portable stand-in for
	// peak RSS.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// PeakResidentReads is the streaming pipeline's
	// stream.peak.resident.reads gauge (0 on the slice path, which
	// holds every read at once).
	PeakResidentReads int64 `json:"peak_resident_reads"`
	// The streaming configuration the row ran under.
	Workers int `json:"workers"`
	Batch   int `json:"batch"`
	Queue   int `json:"queue"`
}

// heapSampler polls the live heap on a short period and keeps the
// high-water mark. Sampling (rather than a single post-run read) is
// needed because the interesting peak is mid-run, before the GC
// reclaims the transient read slice.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	runtime.GC() // level the baseline between rows
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak {
					s.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return s
}

func (s *heapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// StreamBench maps the dataset from an on-disk FASTQ twice — once
// materialized (ReadFile + MapReads), once through the bounded
// streaming pipeline (Open + MapReadsFrom) — and reports wall time,
// throughput, sampled peak heap, and the pipeline's resident-reads
// high-water mark. Identical accumulator mass is asserted, so the rows
// always compare equivalent work.
func StreamBench(ds *Dataset, workers, batch, queue int) ([]StreamBenchRow, error) {
	dir, err := os.MkdirTemp("", "streambench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fq := filepath.Join(dir, "reads.fq")
	if err := fastq.WriteFile(fq, ds.Reads, fastq.Sanger); err != nil {
		return nil, err
	}
	cfg := core.Config{Workers: workers, Batch: batch, Queue: queue}

	var rows []StreamBenchRow

	// Slice path: materialize, then map.
	sliceAcc, err := genome.New(genome.Norm, ds.Ref.Len())
	if err != nil {
		return nil, err
	}
	{
		eng, err := core.NewEngine(ds.Ref, cfg)
		if err != nil {
			return nil, err
		}
		sampler := startHeapSampler()
		start := time.Now()
		reads, err := fastq.ReadFile(fq, fastq.Sanger)
		if err != nil {
			return nil, err
		}
		if _, err := eng.MapReads(reads, sliceAcc, 0); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		rows = append(rows, StreamBenchRow{
			Path:          "slice",
			Reads:         len(reads),
			WallNs:        wall.Nanoseconds(),
			ReadsPerSec:   float64(len(reads)) / wall.Seconds(),
			PeakHeapBytes: sampler.Stop(),
			Workers:       workers, Batch: batch, Queue: queue,
		})
	}

	// Streaming path: bounded pipeline straight off the file.
	streamAcc, err := genome.New(genome.Norm, ds.Ref.Len())
	if err != nil {
		return nil, err
	}
	{
		reg := obs.NewRegistry()
		scfg := cfg
		scfg.Metrics = reg
		eng, err := core.NewEngine(ds.Ref, scfg)
		if err != nil {
			return nil, err
		}
		sampler := startHeapSampler()
		start := time.Now()
		src, err := fastq.Open(fq, fastq.Sanger)
		if err != nil {
			return nil, err
		}
		_, err = eng.MapReadsFrom(src, streamAcc, 0)
		if cerr := src.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		rows = append(rows, StreamBenchRow{
			Path:              "stream",
			Reads:             int(src.Records()),
			WallNs:            wall.Nanoseconds(),
			ReadsPerSec:       float64(src.Records()) / wall.Seconds(),
			PeakHeapBytes:     sampler.Stop(),
			PeakResidentReads: int64(reg.Gauge("stream.peak.resident.reads").Value()),
			Workers:           workers, Batch: batch, Queue: queue,
		})
	}

	// The two rows must describe the same mapping result.
	for pos := 0; pos < ds.Ref.Len(); pos += 211 {
		a, b := sliceAcc.Total(pos), streamAcc.Total(pos)
		if diff := a - b; diff > 1e-3*(1+a) || diff < -1e-3*(1+a) {
			return nil, fmt.Errorf("experiments: stream/slice accumulators diverge at %d: %v vs %v", pos, b, a)
		}
	}
	return rows, nil
}
