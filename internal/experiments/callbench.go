package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"gnumap/internal/core"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
	"gnumap/internal/snp"
)

// CallBenchRow is one calling-sweep measurement, emitted by snpbench as
// part of BENCH_call.json so successive PRs can track the parallel
// post-map phase. Identical must be true on every row: both the
// parallel and the vectorized sweeps are bit-identical to the serial
// scalar one by construction, and the benchmark re-verifies every row
// against that single reference on the real accumulator.
type CallBenchRow struct {
	// Sweep is the inner-loop flavor: "scalar" (per-position loop) or
	// "vector" (plane-streaming prescreen + lane-batched LRT).
	Sweep string `json:"sweep"`
	// VectorKernel stamps which prescreen kernel the row dispatched —
	// "avx2" or "generic" (the runtime cpuid probe's verdict) on vector
	// rows, "off" on scalar rows — so cross-host comparisons are never
	// silently mixing code paths.
	VectorKernel string `json:"vector_kernel"`
	// Workers is the Caller.CallWorkers setting (1 = serial baseline).
	Workers int `json:"workers"`
	// Positions is the swept range length; Calls/Tested the outcome.
	Positions int `json:"positions"`
	Calls     int `json:"calls"`
	Tested    int `json:"tested"`
	// WallNs is the CallAll wall time; PosPerSec the sweep throughput.
	WallNs    int64   `json:"wall_ns"`
	PosPerSec float64 `json:"pos_per_sec"`
	// MeasuredSpeedup is the SCALAR serial wall / this wall — a shared
	// baseline across both sweep flavors, so vector rows state their
	// gain over the per-position loop directly and the vector-vs-scalar
	// comparison at equal worker counts is a plain column compare.
	// ModeledSpeedup is the
	// Amdahl projection for a host with Workers independent cores, using
	// the measured serial fraction (the global FinalizeCalls pass that
	// cannot be chunked). ModeledSpeedupHost is the same projection
	// capped at this host's physical parallelism, min(Workers, NumCPU) —
	// the number MeasuredSpeedup should actually track, and the one CI
	// gates against on small runners.
	MeasuredSpeedup    float64 `json:"measured_speedup"`
	ModeledSpeedup     float64 `json:"modeled_speedup"`
	ModeledSpeedupHost float64 `json:"modeled_speedup_host"`
	// GoMaxProcs is the effective runtime.GOMAXPROCS the row ran under.
	// CallBench raises it to the sweep maximum before timing — sweeping
	// 1..8 workers under an inherited GOMAXPROCS=1 timeshares one core
	// and silently measures nothing — and errors out rather than emit a
	// row whose Workers exceed it.
	GoMaxProcs int `json:"gomaxprocs"`
	// NumCPU is the host's physical parallelism (runtime.NumCPU).
	NumCPU int `json:"numcpu"`
	// Identical reports whether calls and stats matched the serial run
	// exactly (DeepEqual).
	Identical bool `json:"identical"`
}

// ScreenBenchRow is one serial sweep-throughput measurement in
// ns/position, one row per sweep flavor: the per-position cost of the
// collect phase (prescreen + surviving LRT evaluations) with the
// dispatched kernel stamped, so BENCH_call.json records the measured
// prescreen improvement and its provenance on this host.
type ScreenBenchRow struct {
	Sweep        string  `json:"sweep"`
	VectorKernel string  `json:"vector_kernel"`
	Positions    int     `json:"positions"`
	WallNs       int64   `json:"wall_ns"`
	NsPerPos     float64 `json:"ns_per_pos"`
}

// AccumBenchRow is one accumulation-strategy measurement: G goroutines
// issuing interleaved AddRange windows against one striped accumulator
// or private per-goroutine shards (combine included in the wall time).
type AccumBenchRow struct {
	Strategy   string  `json:"strategy"` // "striped" or "sharded"
	Goroutines int     `json:"goroutines"`
	Adds       int     `json:"adds"`
	WallNs     int64   `json:"wall_ns"`
	AddsPerSec float64 `json:"adds_per_sec"`
	// MergeNs is the sharded tree-merge cost folded into WallNs
	// (0 on the striped rows, which have nothing to merge).
	MergeNs int64 `json:"merge_ns"`
}

// callWorkerSweep is the CallWorkers ladder CallBench measures; the
// first entry is the serial baseline.
var callWorkerSweep = []int{1, 2, 4, 8}

// CallBench maps the dataset once into a striped accumulator, then
// measures the LRT calling sweep serially and at each worker count —
// under both the scalar per-position loop and the vectorized
// plane-streaming sweep — asserting the call set never changes from
// the scalar serial reference. It also reports serial sweep throughput
// per flavor (the ns/position ScreenBenchRows) and raw AddRange
// throughput under both accumulation strategies at 1/4/8 goroutines.
//
// The sweep only measures anything if the scheduler can actually run
// the workers in parallel: an inherited GOMAXPROCS below the sweep
// maximum (the snpbench default before this was fixed) timeshares the
// goroutines on too few threads and every measured speedup flattens to
// ~1 even on a big host. CallBench raises GOMAXPROCS to the sweep
// maximum for the duration (restoring it on return), stamps the
// effective value on every row, and fails loudly rather than emit a
// row whose worker count exceeds it. On a host with fewer CPUs than
// the sweep maximum the measured column is still capped by the
// hardware; ModeledSpeedupHost is the honest target for that case.
func CallBench(ds *Dataset, workers int) ([]CallBenchRow, []ScreenBenchRow, []AccumBenchRow, error) {
	maxW := callWorkerSweep[len(callWorkerSweep)-1]
	if prev := runtime.GOMAXPROCS(0); prev < maxW {
		runtime.GOMAXPROCS(maxW)
		defer runtime.GOMAXPROCS(prev)
	}
	procs := runtime.GOMAXPROCS(0)
	ncpu := runtime.NumCPU()

	eng, err := core.NewEngine(ds.Ref, core.Config{Workers: workers})
	if err != nil {
		return nil, nil, nil, err
	}
	acc, err := genome.New(genome.Norm, ds.Ref.Len())
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := eng.MapReads(ds.Reads, acc, 0); err != nil {
		return nil, nil, nil, err
	}

	n := ds.Ref.Len()
	var callRows []CallBenchRow
	var screenRows []ScreenBenchRow
	// The scalar serial run is the identity reference every other row —
	// parallel or vectorized — is checked against, and the shared
	// MeasuredSpeedup baseline.
	var wantCalls []snp.Call
	var wantSt snp.Stats
	var scalarSerialWall time.Duration

	for _, sweep := range []string{"scalar", "vector"} {
		ccfg := snp.Config{Ploidy: lrt.Diploid, UseFDR: true, CallWorkers: 1}
		kernel := "off"
		if sweep == "vector" {
			kernel = snp.VectorKernel()
		} else {
			ccfg.CallVector = -1
		}

		// Warm the caches so the serial baseline is not penalized for
		// going first.
		if _, _, err := snp.CollectRange(ds.Ref, acc, 0, 0, n, ccfg); err != nil {
			return nil, nil, nil, err
		}
		// Serial baseline, timing the two halves separately: the sweep
		// parallelizes, the finalize (sort + one global BH pass) cannot
		// be chunked and is the Amdahl serial fraction.
		sweepStart := time.Now()
		cands, sweepSt, err := snp.CollectRange(ds.Ref, acc, 0, 0, n, ccfg)
		if err != nil {
			return nil, nil, nil, err
		}
		sweepWall := time.Since(sweepStart)
		finStart := time.Now()
		calls, st, err := snp.FinalizeCalls(cands, ccfg)
		if err != nil {
			return nil, nil, nil, err
		}
		finWall := time.Since(finStart)
		// Mirror CallRange: Tested is the sweep's count (prescreened
		// positions included), not the candidate count FinalizeCalls sees.
		st.Tested = sweepSt.Tested
		serialWall := sweepWall + finWall
		serialFrac := finWall.Seconds() / serialWall.Seconds()

		if sweep == "scalar" {
			wantCalls, wantSt, scalarSerialWall = calls, st, serialWall
		} else if !reflect.DeepEqual(calls, wantCalls) || !reflect.DeepEqual(st, wantSt) {
			return nil, nil, nil, fmt.Errorf("experiments: vectorized sweep diverged from the scalar reference")
		}
		screenRows = append(screenRows, ScreenBenchRow{
			Sweep: sweep, VectorKernel: kernel, Positions: n,
			WallNs:   sweepWall.Nanoseconds(),
			NsPerPos: float64(sweepWall.Nanoseconds()) / float64(n),
		})

		// hostModel caps the Amdahl projection at the host's physical
		// parallelism: workers beyond NumCPU timeshare and add nothing.
		hostModel := func(w int) float64 {
			p := w
			if ncpu < p {
				p = ncpu
			}
			if p < 1 {
				p = 1
			}
			return 1 / (serialFrac + (1-serialFrac)/float64(p))
		}

		callRows = append(callRows, CallBenchRow{
			Sweep: sweep, VectorKernel: kernel,
			Workers: 1, Positions: n, Calls: len(calls), Tested: st.Tested,
			WallNs: serialWall.Nanoseconds(), PosPerSec: float64(n) / serialWall.Seconds(),
			MeasuredSpeedup: scalarSerialWall.Seconds() / serialWall.Seconds(),
			ModeledSpeedup:  1, ModeledSpeedupHost: 1,
			GoMaxProcs: procs, NumCPU: ncpu, Identical: true,
		})
		for _, w := range callWorkerSweep[1:] {
			if w > procs {
				return nil, nil, nil, fmt.Errorf("experiments: sweep workers=%d exceed GOMAXPROCS=%d: the row would timeshare and measure nothing", w, procs)
			}
			cfg := ccfg
			cfg.CallWorkers = w
			start := time.Now()
			calls, st, err := snp.CallAll(ds.Ref, acc, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			wall := time.Since(start)
			identical := reflect.DeepEqual(calls, wantCalls) && reflect.DeepEqual(st, wantSt)
			if !identical {
				return nil, nil, nil, fmt.Errorf("experiments: %s caller (workers=%d) diverged from the scalar serial reference", sweep, w)
			}
			callRows = append(callRows, CallBenchRow{
				Sweep: sweep, VectorKernel: kernel,
				Workers: w, Positions: n, Calls: len(calls), Tested: st.Tested,
				WallNs: wall.Nanoseconds(), PosPerSec: float64(n) / wall.Seconds(),
				MeasuredSpeedup:    scalarSerialWall.Seconds() / wall.Seconds(),
				ModeledSpeedup:     1 / (serialFrac + (1-serialFrac)/float64(w)),
				ModeledSpeedupHost: hostModel(w),
				GoMaxProcs:         procs, NumCPU: ncpu,
				Identical: identical,
			})
		}
	}

	accumRows, err := accumBench(ds.Ref.Len())
	if err != nil {
		return nil, nil, nil, err
	}
	return callRows, screenRows, accumRows, nil
}

// accumBench times interleaved AddRange windows against both strategies
// at several goroutine counts. Every configuration performs the same
// total adds; sharded rows include the tree merge.
func accumBench(length int) ([]AccumBenchRow, error) {
	const totalAdds = 100_000
	window := make([]genome.Vec, 62)
	for i := range window {
		window[i] = genome.Vec{0.25, 0.25, 0.25, 0.24, 0.01}
	}
	span := length - len(window) - 1
	if span < 1 {
		return nil, fmt.Errorf("experiments: genome too short for accum bench")
	}

	var rows []AccumBenchRow
	for _, strategy := range []string{"striped", "sharded"} {
		for _, g := range []int{1, 4, 8} {
			var acc genome.Accumulator
			var err error
			if strategy == "sharded" {
				acc, err = genome.NewSharded(genome.Norm, length)
			} else {
				acc, err = genome.New(genome.Norm, length)
			}
			if err != nil {
				return nil, err
			}
			perG := totalAdds / g
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					target := acc
					if sp, ok := acc.(genome.ShardProvider); ok {
						target = sp.WorkerShard()
					}
					for i := 0; i < perG; i++ {
						pos := ((i*g + w) * 977) % span
						target.AddRange(pos, window, 1)
					}
				}(w)
			}
			wg.Wait()
			var mergeNs int64
			if sp, ok := acc.(genome.ShardProvider); ok {
				mStart := time.Now()
				if _, err := sp.Combine(); err != nil {
					return nil, err
				}
				mergeNs = time.Since(mStart).Nanoseconds()
			}
			wall := time.Since(start)
			rows = append(rows, AccumBenchRow{
				Strategy: strategy, Goroutines: g, Adds: perG * g,
				WallNs:     wall.Nanoseconds(),
				AddsPerSec: float64(perG*g) / wall.Seconds(),
				MergeNs:    mergeNs,
			})
		}
	}
	return rows, nil
}
