package snp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gnumap/internal/genome"
)

// The parallel calling sweep. The LRT is a pure per-position function
// of the accumulator state, so [from, to) can be cut into chunks swept
// independently by a worker pool; concatenating the chunk results in
// genome order reproduces the serial CollectRange output bit for bit.
// The significance decision (FinalizeCalls — one fixed cutoff or ONE
// global Benjamini–Hochberg pass) runs after concatenation, exactly as
// in the serial path, so parallelism never changes the tested family.

// minParallelRange is the sweep length below which the dispatch
// overhead of the worker pool cannot pay for itself.
const minParallelRange = 16_384

// minCallChunk floors the auto chunk size.
const minCallChunk = 2048

// CollectRangeParallel is CollectRange with the sweep spread over
// cfg.CallWorkers workers in cfg.CallChunk-position chunks. Results are
// identical to CollectRange (same candidates in the same order, same
// Stats); errors are reported deterministically (the lowest-positioned
// failing chunk wins). Reads against a sharded accumulator should
// combine it first — the wrapper's per-position lazy path is correct
// but serializes on a mutex.
func CollectRangeParallel(ref *genome.Reference, acc genome.Accumulator, offset, from, to int, cfg Config) ([]Candidate, Stats, error) {
	cfg = cfg.withDefaults()
	var st Stats
	if ref == nil || acc == nil {
		return nil, st, fmt.Errorf("snp: nil reference or accumulator")
	}
	// Clamp exactly as CollectRange does (shared helper), so chunking
	// sees final bounds.
	from, to = clampSweep(ref, acc.Len(), offset, from, to)
	workers := cfg.CallWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := to - from
	if workers <= 1 || n < minParallelRange {
		return CollectRange(ref, acc, offset, from, to, cfg)
	}
	chunk := cfg.CallChunk
	if chunk <= 0 {
		// ~4 chunks per worker balances load without oversubscribing
		// the dispatch path.
		chunk = (n + 4*workers - 1) / (4 * workers)
		if chunk < minCallChunk {
			chunk = minCallChunk
		}
	}
	nChunks := (n + chunk - 1) / chunk
	if nChunks < workers {
		workers = nChunks
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Gauge("call.workers").Set(float64(workers))
		reg.Counter("call.chunks").Add(int64(nChunks))
	}

	type chunkResult struct {
		cands []Candidate
		st    Stats
		err   error
	}
	results := make([]chunkResult, nChunks)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1))
				if ci >= nChunks {
					return
				}
				lo := from + ci*chunk
				hi := lo + chunk
				if hi > to {
					hi = to
				}
				stop := cfg.Metrics.StartTimer("call.sweep.seconds")
				cands, cst, err := CollectRange(ref, acc, offset, lo, hi, cfg)
				stop()
				results[ci] = chunkResult{cands: cands, st: cst, err: err}
			}
		}()
	}
	wg.Wait()

	// Deterministic assembly: first error by chunk order wins; candidate
	// slices concatenate in genome order.
	total := 0
	for ci := range results {
		if err := results[ci].err; err != nil {
			return nil, st, err
		}
		total += len(results[ci].cands)
	}
	candidates := make([]Candidate, 0, total)
	for ci := range results {
		candidates = append(candidates, results[ci].cands...)
		st.Tested += results[ci].st.Tested
	}
	return candidates, st, nil
}
