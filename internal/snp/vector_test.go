package snp

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/fasta"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
)

// The batch-vs-scalar identity harness for the vectorized calling
// sweep (screen_vector.go). The vector path claims bit-identity with
// the scalar per-position loop by construction; these tests enforce it
// empirically across every axis a caller can vary — accumulator mode,
// accumulator source, worker count, significance machinery, and the
// negative-disables config convention — plus lane-exact equivalence of
// the three prescreen kernels (scalar, generic block, AVX2).

// opaqueAcc hides the concrete accumulator type from genome.Freeze, so
// the sweep exercises its locked (non-frozen, scalar-only) fallback.
type opaqueAcc struct{ genome.Accumulator }

// vectorFixture plants pseudo-random evidence on a two-contig
// reference — so the sweep crosses an inter-contig N spacer — backed
// by the requested accumulator mode and source. Some evidence lands
// inside the spacer to exercise the uncallable-position paths.
func vectorFixture(t *testing.T, mode genome.Mode, source string, length int, seed int64) (*genome.Reference, genome.Accumulator) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	half := length / 2
	mkSeq := func() dna.Seq {
		s := make(dna.Seq, half)
		for i := range s {
			s[i] = dna.Code(rng.Intn(4))
		}
		return s
	}
	ref, err := genome.NewReference([]*fasta.Record{
		{Name: "chrL", Seq: mkSeq()},
		{Name: "chrR", Seq: mkSeq()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var acc genome.Accumulator
	switch source {
	case "striped":
		acc, err = genome.New(mode, ref.Len())
	case "sharded":
		acc, err = genome.NewSharded(mode, ref.Len())
	case "opaque":
		var base genome.Accumulator
		base, err = genome.New(mode, ref.Len())
		acc = opaqueAcc{base}
	default:
		t.Fatalf("unknown source %q", source)
	}
	if err != nil {
		t.Fatal(err)
	}
	seq := ref.Seq()
	vecFor := func(ch dna.Channel) genome.Vec {
		var v genome.Vec
		for k := range v {
			v[k] = 0.01
		}
		v[ch] = 0.96
		return v
	}
	for pos := 0; pos < ref.Len(); pos += 1 + rng.Intn(6) {
		refCh := dna.Channel(rng.Intn(4))
		if seq[pos].IsConcrete() {
			refCh = dna.Channel(seq[pos])
		}
		altCh := dna.Channel((int(refCh) + 1 + rng.Intn(3)) % 4)
		depth := 1 + rng.Intn(16)
		var v genome.Vec
		switch rng.Intn(5) {
		case 0: // hom alt
			v = vecFor(altCh)
		case 1: // ref confirming
			v = vecFor(refCh)
		case 2: // het: half ref, half alt
			half := vecFor(refCh)
			for i := 0; i < depth/2; i++ {
				acc.AddRange(pos, []genome.Vec{half}, 1)
			}
			v = vecFor(altCh)
			depth -= depth / 2
		case 3: // gap-heavy (indel signal)
			v = genome.Vec{0.05, 0.05, 0.05, 0.05, 0.8}
		default: // noisy
			v = genome.Vec{0.3, 0.3, 0.2, 0.15, 0.05}
		}
		for i := 0; i < depth; i++ {
			acc.AddRange(pos, []genome.Vec{v}, 1)
		}
	}
	return ref, acc
}

// Tentpole harness: the vectorized sweep must be DeepEqual-identical
// to the scalar one — candidates, calls, and stats — across
// accumulator modes, sources, 1..8 call workers, fixed-cutoff and FDR
// finalization, and the negative-disables configs.
func TestVectorSweepIdentityRandomized(t *testing.T) {
	const length = 20_000
	configs := []struct {
		name string
		cfg  Config
	}{
		{"diploid-fixed", Config{Ploidy: lrt.Diploid}},
		{"diploid-fdr", Config{Ploidy: lrt.Diploid, UseFDR: true}},
		{"monoploid-fixed", Config{Ploidy: lrt.Monoploid}},
		{"alpha-disabled", Config{Ploidy: lrt.Diploid, Alpha: -1}},
		{"mindepth-disabled", Config{Ploidy: lrt.Diploid, MinDepth: -1, UseFDR: true}},
		{"het-disabled", Config{Ploidy: lrt.Diploid, MinHetMinorFraction: -1}},
	}
	seed := int64(4000)
	for _, mode := range []genome.Mode{genome.Norm, genome.CharDisc, genome.CentDisc} {
		for _, source := range []string{"striped", "sharded", "opaque"} {
			// Discrete modes and opaque sources take the scalar path under
			// both knob settings (vectorEligible); run a reduced matrix
			// there — the interesting surface is NORM.
			cfgs, maxWorkers := configs, 8
			if mode != genome.Norm || source == "opaque" {
				cfgs, maxWorkers = configs[:2], 4
			}
			seed++
			ref, acc := vectorFixture(t, mode, source, length, seed)
			for _, tc := range cfgs {
				scalar := tc.cfg
				scalar.CallVector = -1
				scalar.CallWorkers = 1
				wantCands, wantSt, err := CollectRange(ref, acc, 0, 0, ref.Len(), scalar)
				if err != nil {
					t.Fatal(err)
				}
				wantCalls, wantFSt, err := FinalizeCalls(wantCands, scalar)
				if err != nil {
					t.Fatal(err)
				}
				if mode == genome.Norm && (len(wantCands) == 0 || wantSt.Tested == 0) {
					t.Fatalf("%v/%s/%s: fixture produced no candidates; test is vacuous", mode, source, tc.name)
				}
				for workers := 1; workers <= maxWorkers; workers++ {
					vec := tc.cfg
					vec.CallWorkers = workers
					vec.CallChunk = 3072
					name := fmt.Sprintf("%v/%s/%s/w%d", mode, source, tc.name, workers)
					gotCands, gotSt, err := CollectRangeParallel(ref, acc, 0, 0, ref.Len(), vec)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if !reflect.DeepEqual(gotCands, wantCands) {
						t.Fatalf("%s: candidates diverge from scalar (%d vs %d)", name, len(gotCands), len(wantCands))
					}
					if !reflect.DeepEqual(gotSt, wantSt) {
						t.Fatalf("%s: stats %+v, want %+v", name, gotSt, wantSt)
					}
					gotCalls, gotFSt, err := FinalizeCalls(gotCands, vec)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if !reflect.DeepEqual(gotCalls, wantCalls) || !reflect.DeepEqual(gotFSt, wantFSt) {
						t.Fatalf("%s: finalized calls diverge from scalar", name)
					}
				}
			}
		}
	}
}

// scalarLaneMasks classifies one 8-position block with the scalar
// sweep's own code (fz.Vector, depth sum, prescreenSkip), producing
// the tested/keep/valid bytes the kernels must reproduce exactly.
func scalarLaneMasks(fz *genome.Frozen, start int, refc []dna.Code, cfg *Config) (tested, keep, valid uint8) {
	for lane := 0; lane < screenLanes; lane++ {
		v := fz.Vector(start + lane)
		var depth float64
		for _, x := range v {
			depth += x
		}
		lvalid := true
		for _, x := range v {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				lvalid = false
			}
		}
		bit := uint8(1) << lane
		if lvalid {
			valid |= bit
		}
		if depth < cfg.MinDepth {
			continue
		}
		tested |= bit
		if !prescreenSkip(v, depth, refc[lane], cfg) {
			keep |= bit
		}
	}
	return tested, keep, valid
}

// randomScreenAcc fills a NORM accumulator with adversarial lane
// values: ties, zeros, signed zeros, sub-minimum depths, and invalid
// (negative/NaN/Inf) channels.
func randomScreenAcc(t *testing.T, rng *rand.Rand, length int) *genome.Frozen {
	t.Helper()
	acc, err := genome.New(genome.Norm, length)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < length; pos++ {
		var v genome.Vec
		switch rng.Intn(8) {
		case 0: // all zero
		case 1: // small-int ties
			for k := range v {
				v[k] = float64(rng.Intn(3))
			}
		case 2: // ref/gap dominant
			v = genome.Vec{8, 0.5, 0.5, 0.5, 0.25}
		case 3: // gap dominant
			v = genome.Vec{0.5, 0.5, 0.5, 0.5, 9}
		case 4: // thin coverage (below MinDepth)
			v = genome.Vec{0.25, 0.25, 0, 0, 0}
		case 5: // invalid channel
			bad := []float64{-1, math.NaN(), math.Inf(1)}[rng.Intn(3)]
			for k := range v {
				v[k] = 2 * rng.Float64()
			}
			v[rng.Intn(len(v))] = bad
		default:
			for k := range v {
				v[k] = 20 * rng.Float64()
			}
		}
		acc.AddRange(pos, []genome.Vec{v}, 1)
	}
	fz, err := genome.Freeze(acc)
	if err != nil {
		t.Fatal(err)
	}
	return fz
}

// The block kernels must classify every lane exactly as the scalar
// code does — and the AVX2 kernel must be byte-identical to the
// generic loop whenever the host dispatches it.
func TestVectorKernelMatchesScalarScreen(t *testing.T) {
	const blocks = 256
	const length = blocks * screenLanes
	rng := rand.New(rand.NewSource(77))
	t.Logf("dispatching kernel: %s", VectorKernel())
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"diploid", Config{Ploidy: lrt.Diploid}},
		{"monoploid", Config{Ploidy: lrt.Monoploid}},
		{"het-off", Config{Ploidy: lrt.Diploid, MinHetMinorFraction: -1}},
		{"depth-off", Config{Ploidy: lrt.Diploid, MinDepth: -1}},
	} {
		cfg := tc.cfg.withDefaults()
		fz := randomScreenAcc(t, rng, length)
		planes, ok := fz.PlaneWindow(0, length)
		if !ok {
			t.Fatal("NORM freeze lost its planes")
		}
		refc := make([]dna.Code, length)
		for i := range refc {
			refc[i] = dna.Code(rng.Intn(5)) // includes N references
		}
		diploid := cfg.Ploidy == lrt.Diploid
		generic := make([]uint8, blocks*screenMaskBytes)
		prescreenBlocksGeneric(&planes, 0, refc, generic, blocks, cfg.MinDepth, cfg.MinHetMinorFraction, diploid)
		for b := 0; b < blocks; b++ {
			wantT, wantK, wantV := scalarLaneMasks(fz, b*screenLanes, refc[b*screenLanes:], &cfg)
			gotT := generic[b*screenMaskBytes+0]
			gotK := generic[b*screenMaskBytes+1]
			gotV := generic[b*screenMaskBytes+2]
			if gotT != wantT || gotK != wantK || gotV != wantV {
				t.Fatalf("%s block %d: generic masks (%08b,%08b,%08b), scalar (%08b,%08b,%08b)",
					tc.name, b, gotT, gotK, gotV, wantT, wantK, wantV)
			}
		}
		simd := make([]uint8, blocks*screenMaskBytes)
		if prescreenBlocksSIMD(&planes, 0, refc, simd, blocks, cfg.MinDepth, cfg.MinHetMinorFraction, diploid) {
			if !reflect.DeepEqual(simd, generic) {
				t.Fatalf("%s: AVX2 kernel masks diverge from the generic loop", tc.name)
			}
		}
	}
}

// A vector with invalid mass must surface the identical lrt validation
// error — same message, same partial Stats, nil candidates — from both
// sweeps.
func TestVectorSweepErrorIdentity(t *testing.T) {
	const length = 4096
	ref, acc := vectorFixture(t, genome.Norm, "striped", length, 9)
	// Plant a negative channel with enough depth to pass every filter.
	acc.AddRange(1234, []genome.Vec{{6, 6, -3, 0, 0}}, 1)
	scalar := Config{Ploidy: lrt.Diploid, CallVector: -1}
	wantCands, wantSt, wantErr := CollectRange(ref, acc, 0, 0, ref.Len(), scalar)
	if wantErr == nil {
		t.Fatal("scalar sweep accepted a negative channel")
	}
	if wantCands != nil {
		t.Fatal("scalar sweep returned candidates alongside its error")
	}
	gotCands, gotSt, gotErr := CollectRange(ref, acc, 0, 0, ref.Len(), Config{Ploidy: lrt.Diploid})
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("vector error %v, want %v", gotErr, wantErr)
	}
	if gotCands != nil {
		t.Fatal("vector sweep returned candidates alongside its error")
	}
	if !reflect.DeepEqual(gotSt, wantSt) {
		t.Fatalf("vector error stats %+v, want %+v", gotSt, wantSt)
	}
}

// Sub-block windows, unaligned bounds, and non-zero offsets must hit
// the scalar tail path and still match exactly.
func TestVectorSweepUnalignedWindows(t *testing.T) {
	const length = 8192
	ref, acc := vectorFixture(t, genome.Norm, "striped", length, 11)
	cfg := Config{Ploidy: lrt.Diploid, UseFDR: true}
	for _, w := range [][2]int{{0, 5}, {3, 11}, {100, 1003}, {8, 8}, {4091, ref.Len()}, {0, ref.Len() - 1}} {
		scalar := cfg
		scalar.CallVector = -1
		wantCands, wantSt, err := CollectRange(ref, acc, 0, w[0], w[1], scalar)
		if err != nil {
			t.Fatal(err)
		}
		gotCands, gotSt, err := CollectRange(ref, acc, 0, w[0], w[1], cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotCands, wantCands) || !reflect.DeepEqual(gotSt, wantSt) {
			t.Fatalf("window %v: vector sweep diverges (%d/%+v vs %d/%+v)",
				w, len(gotCands), gotSt, len(wantCands), wantSt)
		}
	}
}
