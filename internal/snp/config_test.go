package snp

import (
	"reflect"
	"testing"

	"gnumap/internal/genome"
	"gnumap/internal/lrt"
)

// windowOf copies positions [offset, offset+length) of a NORM
// accumulator into a fresh accumulator of that length, emulating the
// genome-split mode's windowed accumulators.
func windowOf(t *testing.T, acc genome.Accumulator, offset, length int) genome.Accumulator {
	t.Helper()
	w, err := genome.New(genome.Norm, length)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < length; i++ {
		if v := acc.Vector(offset + i); v != (genome.Vec{}) {
			w.AddRange(i, []genome.Vec{v}, 1)
		}
	}
	return w
}

// Every range-taking sweep clamps through clampSweep; the boundary
// cases (negative from, to past the accumulator and reference, empty
// and inverted ranges) must behave identically in the serial and
// parallel sweeps.
func TestCollectRangeBoundaryClamps(t *testing.T) {
	ref, acc := fixture(t)
	cfg := Config{Ploidy: lrt.Monoploid}

	full, fullSt, err := CollectRange(ref, acc, 0, 0, ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("fixture produced no candidates")
	}

	cases := []struct {
		name     string
		from, to int
	}{
		{"from negative", -100, ref.Len()},
		{"to past end", 0, ref.Len() + 100},
		{"both out of range", -7, ref.Len() + 7},
	}
	for _, c := range cases {
		got, st, err := CollectRange(ref, acc, 0, c.from, c.to, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !reflect.DeepEqual(got, full) || st != fullSt {
			t.Errorf("%s: clamped sweep differs from full sweep", c.name)
		}
		pgot, pst, err := CollectRangeParallel(ref, acc, 0, c.from, c.to, cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", c.name, err)
		}
		if !reflect.DeepEqual(pgot, full) || pst != fullSt {
			t.Errorf("%s: clamped parallel sweep differs from full sweep", c.name)
		}
	}

	for _, c := range []struct {
		name     string
		from, to int
	}{
		{"empty", 10, 10},
		{"inverted", 30, 10},
		{"entirely past end", ref.Len() + 5, ref.Len() + 25},
		{"entirely before start", -25, -5},
	} {
		got, st, err := CollectRange(ref, acc, 0, c.from, c.to, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(got) != 0 || st.Tested != 0 {
			t.Errorf("%s: got %d candidates, %d tested; want none", c.name, len(got), st.Tested)
		}
	}
}

// With a windowed accumulator (genome-split mode) the sweep clamps to
// the accumulator's window, not just the reference.
func TestCollectRangeClampsToAccumulatorWindow(t *testing.T) {
	ref, acc := fixture(t) // ref.Len() == acc.Len() == 50
	cfg := Config{Ploidy: lrt.Monoploid}
	// Pretend the accumulator covers only [10, 40): offset 10, len 30.
	// Sweeping the whole reference must equal sweeping exactly [10, 40).
	windowed, wst, err := CollectRange(ref, windowOf(t, acc, 10, 30), 10, 0, ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, est, err := CollectRange(ref, windowOf(t, acc, 10, 30), 10, 10, 40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(windowed, exact) || wst != est {
		t.Fatal("whole-reference sweep over a windowed accumulator differs from the exact window sweep")
	}
	for _, c := range windowed {
		if c.Call.GlobalPos < 10 || c.Call.GlobalPos >= 40 {
			t.Errorf("candidate at %d outside the accumulator window [10, 40)", c.Call.GlobalPos)
		}
	}
}

// Zero means default, negative disables — the convention every filter
// threshold follows, resolving idempotently so checkpoint fingerprints
// never move.
func TestConfigNegativeDisables(t *testing.T) {
	zero := Config{}.withDefaults()
	if zero.Alpha != 0.05 || zero.MinDepth != 2 || zero.MinHetMinorFraction != 0.25 {
		t.Fatalf("zero config resolved to %+v", zero)
	}
	if again := zero.withDefaults(); again != zero {
		t.Fatalf("resolving is not idempotent: %+v vs %+v", again, zero)
	}
	neg := Config{Alpha: -1, MinDepth: -2, MinHetMinorFraction: -0.5}
	if got := neg.withDefaults(); got != neg {
		t.Fatalf("negative values must pass through unchanged: %+v vs %+v", got, neg)
	}

	ref, acc := fixture(t)
	// MinDepth < 0 disables the depth filter: every accumulator position
	// is tested, including the thin site at 40 and the uncovered ones.
	_, stDef, err := CallAll(ref, acc, Config{Ploidy: lrt.Monoploid})
	if err != nil {
		t.Fatal(err)
	}
	_, stAll, err := CallAll(ref, acc, Config{Ploidy: lrt.Monoploid, MinDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if stAll.Tested != ref.Len() {
		t.Errorf("MinDepth=-1: tested %d, want every position (%d)", stAll.Tested, ref.Len())
	}
	if stAll.Tested <= stDef.Tested {
		t.Errorf("MinDepth=-1 tested %d, no more than the default's %d", stAll.Tested, stDef.Tested)
	}

	// Alpha < 0 disables the significance filter: the call set is a
	// superset of the default's, and UseFDR is irrelevant (the FDR pass
	// would reject a negative alpha).
	callsDef, _, err := CallAll(ref, acc, Config{Ploidy: lrt.Monoploid})
	if err != nil {
		t.Fatal(err)
	}
	callsAll, _, err := CallAll(ref, acc, Config{Ploidy: lrt.Monoploid, Alpha: -1})
	if err != nil {
		t.Fatal(err)
	}
	callsAllFDR, _, err := CallAll(ref, acc, Config{Ploidy: lrt.Monoploid, Alpha: -1, UseFDR: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(callsAll, callsAllFDR) {
		t.Error("Alpha=-1 must bypass the FDR pass entirely")
	}
	have := map[int]bool{}
	for _, c := range callsAll {
		have[c.GlobalPos] = true
	}
	for _, c := range callsDef {
		if !have[c.GlobalPos] {
			t.Errorf("default call at %d missing with the significance filter disabled", c.GlobalPos)
		}
	}
}
