package snp

import (
	"math"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
)

// The coverage/allele prescreen in front of the LRT.
//
// Under this LRT the null is the uniform background (p_k = 0.2 ∀k), so
// essentially every covered position — including clean homozygous-
// reference ones — rejects it decisively; a screen that preserved
// "would test significant" would skip almost nothing. What actually
// makes the sweep cheap is the converse observation: a position whose
// strongest non-reference evidence cannot beat the reference can never
// become a SNP *call*, at any significance threshold. The screen skips
// exactly those positions, so the χ² machinery and candidate
// allocation run only on loci with a variant signal.
//
// The skipped positions still count toward Stats.Tested, but produce no
// Candidate — the candidate family (and with UseFDR, the Benjamini–
// Hochberg family) is the screen-passing loci. Calls under the fixed
// cutoff are provably unchanged (theorem below). Under FDR the family
// shrinks by the certain-rejection hom-ref mass that previously dragged
// the BH pivot toward "reject everything", so borderline p-values now
// face an honest threshold — a statistical fix, not a regression; the
// planted-truth experiments (EXPERIMENTS.md) are unaffected.
//
// Theorem (conservativeness). Let v be the position's channel vector
// with all entries finite and non-negative, r its concrete reference
// channel, n = Σv. Write S = channels ∉ {r, gap},
// B = max_{k∈S} v[k], and m = max(v[r], v[gap]). If
//
//	B < m, and
//	  · ploidy ≠ Diploid, or
//	  · B = 0, or
//	  · MinHetMinorFraction > 0 and B/n < MinHetMinorFraction,
//
// then FinalizeCalls can never emit a call for the position:
//
//  1. B < m ⟹ the order statistic's top channel is in {r, gap} (ties
//     between r and gap break to a channel still in {r, gap}; no S
//     channel ties m because the inequality is strict), so a
//     homozygous call fails isSNP.
//  2. A heterozygous call therefore needs Second ∈ S — in which case
//     z(4) = v[Second] = B exactly (Second is the largest non-top
//     channel, and every channel outside S is ≤ m = z(5)):
//     · ploidy ≠ Diploid: Result.Heterozygous is always false.
//     · B = 0: z(4) = 0 forces n = z(5), and the stated-Eq.-2 het
//     likelihood is then z(5)·log(1/2) below the homozygous one, so
//     Heterozygous is false.
//     · otherwise MinorFraction = z(4)/n = B/n < MinHetMinorFraction
//     (the same floats and the same strict compare as the demotion in
//     FinalizeCalls, because lrt.Test sums n in the same channel
//     order as the sweep's depth) demotes the call to homozygous
//     top-allele, which is in {r, gap} and fails isSNP.
//     If instead Second ∉ S, both alleles are in {r, gap} and isSNP
//     fails directly.
//
// A non-concrete reference base (N) is skipped unconditionally: isSNP
// is constitutively false there. Vectors with a negative, NaN or Inf
// channel are never skipped, so lrt.Test surfaces the same validation
// error the unscreened sweep reported. All-zero and tied vectors are
// kept (the conditions are strict). The skip condition never consults
// Alpha, so it holds for the fixed cutoff, FDR, and a disabled
// (negative-Alpha) filter alike.

// prescreenSkip reports that the position provably cannot produce a SNP
// call (see the theorem above). cfg must be resolved (withDefaults).
func prescreenSkip(v genome.Vec, depth float64, refBase dna.Code, cfg *Config) bool {
	for _, x := range v {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return false // keep: lrt.Test must surface its validation error
		}
	}
	if !refBase.IsConcrete() {
		return true // reference N: isSNP is always false
	}
	r := int(dna.Channel(refBase))
	m := v[r]
	if v[dna.ChGap] > m {
		m = v[dna.ChGap]
	}
	b := 0.0
	for k := 0; k < int(dna.ChGap); k++ {
		if k != r && v[k] > b {
			b = v[k]
		}
	}
	if b >= m {
		return false // a variant channel can top the order statistic
	}
	if cfg.Ploidy != lrt.Diploid {
		return true
	}
	if b == 0 {
		return true
	}
	// Identical floats, identical strict compare as the het demotion.
	return cfg.MinHetMinorFraction > 0 && b/depth < cfg.MinHetMinorFraction
}
