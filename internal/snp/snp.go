// Package snp turns accumulated per-position nucleotide probabilities
// into SNP calls via the paper's likelihood-ratio framework (§VI Step
// 3), and provides the evaluation harness (true/false positives against
// a planted truth set) used by the Table I and Table III experiments,
// plus a minimal VCF writer for interoperability.
package snp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
	"gnumap/internal/obs"
	"gnumap/internal/simulate"
	"gnumap/internal/stats"
)

// Call is one called variant.
type Call struct {
	// Contig and Pos are the contig-relative (0-based) location.
	Contig string
	Pos    int
	// GlobalPos is the position in the reference's concatenated
	// coordinate space.
	GlobalPos int
	// Ref is the reference base.
	Ref dna.Code
	// Allele is the dominant called channel.
	Allele dna.Channel
	// Allele2 is the second allele for heterozygous calls (equals
	// Allele otherwise).
	Allele2 dna.Channel
	// Het marks a heterozygous diploid call.
	Het bool
	// Stat and PValue are the LRT statistic and its χ²₁ p-value.
	Stat   float64
	PValue float64
	// Depth is the total accumulated mass at the position (the
	// effective coverage).
	Depth float64
}

// Config controls calling.
type Config struct {
	// Ploidy selects the hypothesis family (default Monoploid).
	Ploidy lrt.Ploidy
	// Alpha is the family-wise significance level (default 0.05); the
	// per-test cutoff is the paper's α/5 adjustment. Zero selects the
	// default; a negative value disables the significance filter
	// entirely (every tested candidate passes — only the variant and
	// allele-balance filters apply).
	Alpha float64
	// UseFDR switches from the fixed cutoff to Benjamini–Hochberg
	// control at level Alpha across all tested positions.
	UseFDR bool
	// MinDepth skips positions with less accumulated mass (default 2):
	// below it the LRT has essentially no power and the χ²
	// approximation is poor. Zero selects the default; a negative value
	// disables the depth filter (every position is tested).
	MinDepth float64
	// MinHetMinorFraction demotes heterozygous calls whose minor
	// allele holds less than this share of the position's mass to
	// homozygous top-allele calls (default 0.25; negative disables).
	// At short-read error rates a handful of same-base errors can
	// out-fit the homozygous model on raw counts alone; true
	// heterozygotes sit near 0.5. This is the allele-balance filter
	// every production genotyper applies in some form.
	MinHetMinorFraction float64
	// CallWorkers sets the calling sweep's worker count: 0 uses
	// GOMAXPROCS, 1 or negative forces the serial sweep. The parallel
	// sweep is bit-identical to the serial one — chunks are
	// concatenated in genome order before the single global
	// significance pass.
	CallWorkers int
	// CallChunk is the chunk size, in genome positions, of the
	// parallel calling sweep (0 picks range/(4·workers), floored at
	// 2048, so chunks stay large enough to amortize dispatch but small
	// enough to balance load).
	CallChunk int
	// CallVector selects the plane-streaming vectorized sweep
	// (screen_vector.go): 0 (the default) uses it wherever the frozen
	// view exposes NORM planes, a negative value forces the scalar
	// per-position loop everywhere. The vectorized sweep is
	// bit-identical to the scalar one by construction, so this is an
	// execution knob like CallWorkers — it is deliberately absent from
	// checkpoint fingerprints and may change freely across a resume.
	CallVector int
	// Metrics, when non-nil, receives the caller's stage timers and
	// counters (call.collect.seconds, call.finalize.seconds,
	// call.tested, call.prescreened, call.significant, call.snps; the
	// parallel sweep adds call.workers, call.chunks and per-chunk
	// call.sweep.seconds).
	Metrics *obs.Registry

	// noPrescreen bypasses the coverage/allele prescreen (see
	// prescreen.go). Test-only: the prescreen property tests compare the
	// screened sweep against this exhaustive one.
	noPrescreen bool
}

// withDefaults fills zero values. Every filter threshold follows one
// convention: zero selects the documented default, a negative value
// disables the filter. (A literal zero cannot mean "no filter" —
// Go's zero value must keep selecting the default — so disabling is
// spelled with a negative, as MinHetMinorFraction always did.)
// Negative values pass through unchanged, so resolving is idempotent
// and checkpoint fingerprints of existing configs are unaffected.
func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.MinDepth == 0 {
		c.MinDepth = 2
	}
	if c.MinHetMinorFraction == 0 {
		c.MinHetMinorFraction = 0.25
	}
	return c
}

// Resolved returns the config with every default filled in, so
// equivalent configurations (zero value vs explicit defaults) render
// identically — checkpoint fingerprints hash the resolved form.
func (c Config) Resolved() Config { return c.withDefaults() }

// Stats summarizes a calling run.
type Stats struct {
	// Tested is the number of positions with enough depth to test.
	Tested int
	// Significant is the number of positions whose LRT cleared the
	// cutoff (whether or not they differ from the reference).
	Significant int
	// SNPs is the number of significant positions differing from the
	// reference (len of the returned calls).
	SNPs int
}

// Candidate is one tested position awaiting the significance
// decision: the provisional call plus the LRT fields finalization
// needs (runner-up allele, allele balance). Candidates are plain data
// so a distributed run can gather every shard's candidates at rank 0
// and apply ONE global multiple-testing correction — Benjamini–
// Hochberg depends on the full ranked p-value list, so a per-shard
// pass changes the calls with the shard count.
type Candidate struct {
	Call          Call
	Second        dna.Channel
	MinorFraction float64
}

// clampSweep clips a global sweep range [from, to) to the intersection
// of the accumulator's window (offset maps accumulator index 0 to
// global position offset) and the reference. Every range-taking sweep —
// CollectRange, CollectRangeParallel's pre-chunking bounds, WritePileup
// — clamps through this one helper: the parallel sweep chunks the
// clamped range, so any divergence between its clamp and the serial
// one would silently change the chunk boundaries and the tested family.
func clampSweep(ref *genome.Reference, accLen, offset, from, to int) (int, int) {
	if from < offset {
		from = offset
	}
	if to > offset+accLen {
		to = offset + accLen
	}
	if to > ref.Len() {
		to = ref.Len()
	}
	return from, to
}

// CollectRange runs the LRT over global positions [from, to) of the
// accumulator, offset mapping accumulator index 0 to global position
// `offset` (non-zero in genome-split mode), and returns every
// screen-passing tested position as a Candidate. Stats has Tested
// filled (every depth-passing position, screened or not); significance
// is decided by FinalizeCalls.
//
// The sweep reads through a lock-free frozen view when the accumulator
// supports one (every in-tree layout does), falling back to the locked
// per-position interface otherwise, and runs the conservative
// prescreen (prescreen.go) in front of the LRT. Both paths and the
// parallel sweep screen identically, so serial and parallel results
// stay bit-identical.
func CollectRange(ref *genome.Reference, acc genome.Accumulator, offset, from, to int, cfg Config) ([]Candidate, Stats, error) {
	cfg = cfg.withDefaults()
	var st Stats
	if ref == nil || acc == nil {
		return nil, st, fmt.Errorf("snp: nil reference or accumulator")
	}
	defer cfg.Metrics.StartTimer("call.collect.seconds")()
	from, to = clampSweep(ref, acc.Len(), offset, from, to)
	// A frozen view reads the quiesced accumulator without the stripe
	// locks; non-freezable implementations keep the locked path.
	fz, fzErr := genome.Freeze(acc)
	if fzErr != nil {
		fz = nil
	}
	if vectorEligible(&cfg, fz) {
		// Plane-streaming vectorized sweep: classifies 8-position lane
		// blocks straight off the frozen NORM planes and batches the
		// LRT over the survivors. Bit-identical to the loop below by
		// construction (see screen_vector.go).
		candidates, tested, screened, err := collectRangeVector(ref, fz, offset, from, to, &cfg)
		st.Tested = tested
		if err != nil {
			return nil, st, err
		}
		cfg.Metrics.Counter("call.tested").Add(int64(tested))
		cfg.Metrics.Counter("call.prescreened").Add(screened)
		return candidates, st, nil
	}
	var candidates []Candidate
	var screened int64
	for g := from; g < to; g++ {
		var v genome.Vec
		if fz != nil {
			v = fz.Vector(g - offset)
		} else {
			v = acc.Vector(g - offset)
		}
		var depth float64
		for _, x := range v {
			depth += x
		}
		if depth < cfg.MinDepth {
			continue
		}
		refBase, err := ref.Base(g)
		if err != nil {
			return nil, st, err
		}
		if !cfg.noPrescreen && prescreenSkip(v, depth, refBase, &cfg) {
			// Provably cannot produce a SNP call at any significance
			// threshold; counted as tested, never a candidate.
			st.Tested++
			screened++
			continue
		}
		res, err := lrt.Test(v, cfg.Ploidy)
		if err != nil {
			return nil, st, err
		}
		st.Tested++
		contig, local, err := ref.Locate(g)
		if err != nil {
			// Inter-contig spacer positions are not callable.
			continue
		}
		candidates = append(candidates, Candidate{
			Call: Call{
				Contig:    contig,
				Pos:       local,
				GlobalPos: g,
				Ref:       refBase,
				Allele:    res.Top,
				Allele2:   res.Top,
				Het:       res.Heterozygous,
				Stat:      res.Stat,
				PValue:    res.PValue,
				Depth:     depth,
			},
			Second:        res.Second,
			MinorFraction: res.MinorFraction,
		})
	}
	cfg.Metrics.Counter("call.tested").Add(int64(st.Tested))
	cfg.Metrics.Counter("call.prescreened").Add(screened)
	return candidates, st, nil
}

// FinalizeCalls applies the significance decision — the fixed
// adjusted cutoff, or one Benjamini–Hochberg pass across ALL given
// candidates — plus the het allele-balance filter, and returns the
// SNP calls sorted by position. The candidate set must cover the
// whole tested family: in a distributed run, gather every shard's
// candidates before calling this (BH's per-hypothesis threshold
// depends on the global ranked p-value list).
func FinalizeCalls(candidates []Candidate, cfg Config) ([]Call, Stats, error) {
	cfg = cfg.withDefaults()
	st := Stats{Tested: len(candidates)}
	defer cfg.Metrics.StartTimer("call.finalize.seconds")()
	significant := make([]bool, len(candidates))
	switch {
	case cfg.Alpha < 0:
		// Negative Alpha disables the significance filter (see Config):
		// every candidate passes; only the variant and allele-balance
		// filters below apply.
		for i := range significant {
			significant[i] = true
		}
	case cfg.UseFDR:
		ps := make([]float64, len(candidates))
		for i, c := range candidates {
			ps[i] = c.Call.PValue
		}
		var err error
		significant, err = stats.RejectFDR(ps, cfg.Alpha)
		if err != nil {
			return nil, st, err
		}
	default:
		cutoff, err := lrt.AdjustedPValueCutoff(cfg.Alpha)
		if err != nil {
			return nil, st, err
		}
		for i, c := range candidates {
			significant[i] = c.Call.PValue <= cutoff
		}
	}
	var calls []Call
	for i, c := range candidates {
		if !significant[i] {
			continue
		}
		st.Significant++
		call := c.Call
		if call.Het {
			call.Allele2 = c.Second
			if cfg.MinHetMinorFraction > 0 && c.MinorFraction < cfg.MinHetMinorFraction {
				// Allele balance too skewed for a genuine het: demote
				// to the homozygous top allele.
				call.Het = false
				call.Allele2 = call.Allele
			}
		}
		if isSNP(call) {
			st.SNPs++
			calls = append(calls, call)
		}
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].GlobalPos < calls[j].GlobalPos })
	cfg.Metrics.Counter("call.significant").Add(int64(st.Significant))
	cfg.Metrics.Counter("call.snps").Add(int64(st.SNPs))
	return calls, st, nil
}

// CallRange runs the LRT caller over global positions [from, to) of the
// accumulator, offset mapping accumulator index 0 to global position
// `offset` (non-zero in genome-split mode). It returns SNP calls sorted
// by position. The tested family — over which FDR control applies — is
// exactly the positions of [from, to); distributed callers whose family
// spans several accumulators must use CollectRange + FinalizeCalls.
func CallRange(ref *genome.Reference, acc genome.Accumulator, offset, from, to int, cfg Config) ([]Call, Stats, error) {
	candidates, st, err := CollectRangeParallel(ref, acc, offset, from, to, cfg)
	if err != nil {
		return nil, st, err
	}
	calls, fst, err := FinalizeCalls(candidates, cfg)
	if err != nil {
		return nil, st, err
	}
	// Tested counts positions the LRT ran on (including inter-contig
	// spacers that produced no candidate); keep CollectRange's count.
	fst.Tested = st.Tested
	return calls, fst, err
}

// Call runs CallRange over the whole reference with a full-length
// accumulator.
func CallAll(ref *genome.Reference, acc genome.Accumulator, cfg Config) ([]Call, Stats, error) {
	if ref == nil || acc == nil {
		return nil, Stats{}, fmt.Errorf("snp: nil reference or accumulator")
	}
	return CallRange(ref, acc, 0, 0, ref.Len(), cfg)
}

// isSNP reports whether a significant call differs from the reference.
// A gap-dominant position is an indel signal, not a SNP; the paper's
// caller reports SNPs, so gap calls are excluded.
func isSNP(c Call) bool {
	refCh := dna.Channel(c.Ref)
	if !c.Ref.IsConcrete() {
		// Reference N: any confident base is a "difference", but it is
		// not a meaningful SNP; skip.
		return false
	}
	if c.Het {
		// Heterozygous: a SNP if either allele differs from reference.
		aDiff := c.Allele != refCh && c.Allele != dna.ChGap
		bDiff := c.Allele2 != refCh && c.Allele2 != dna.ChGap
		return aDiff || bDiff
	}
	return c.Allele != refCh && c.Allele != dna.ChGap
}

// AltAllele returns the called variant allele: for a heterozygous call
// whose top allele matches the reference, the second allele.
func (c Call) AltAllele() dna.Channel {
	refCh := dna.Channel(c.Ref)
	if c.Het && c.Allele == refCh {
		return c.Allele2
	}
	return c.Allele
}

// Metrics is the Table I / Table III accuracy accounting.
type Metrics struct {
	TP, FP, FN int
	// WrongAllele counts calls at a true SNP position with the wrong
	// alternate allele (counted in FP and FN, reported for diagnosis).
	WrongAllele int
}

// Precision returns TP/(TP+FP), 0 when nothing was called.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Sensitivity returns TP/(TP+FN), 0 when the truth set is empty.
func (m Metrics) Sensitivity() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// Evaluate scores calls against a planted truth catalog (positions in
// global coordinates). A call is a true positive when its position is
// in the catalog and its alternate allele matches the planted one.
func Evaluate(calls []Call, truth []simulate.SNP) Metrics {
	var m Metrics
	byPos := make(map[int]simulate.SNP, len(truth))
	for _, s := range truth {
		byPos[s.Pos] = s
	}
	matched := make(map[int]bool, len(truth))
	for _, c := range calls {
		s, ok := byPos[c.GlobalPos]
		if !ok {
			m.FP++
			continue
		}
		if dna.Channel(s.Alt) == c.AltAllele() {
			if !matched[c.GlobalPos] {
				m.TP++
				matched[c.GlobalPos] = true
			}
			continue
		}
		m.WrongAllele++
		m.FP++
	}
	m.FN = len(truth) - m.TP
	return m
}

// WriteVCF emits calls as minimal VCF 4.2.
func WriteVCF(w io.Writer, calls []Call, source string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "##fileformat=VCFv4.2\n##source=%s\n", source); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "##INFO=<ID=DP,Number=1,Type=Float,Description=\"Accumulated probability depth\">"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "##INFO=<ID=LRT,Number=1,Type=Float,Description=\"-2 log likelihood ratio\">"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO"); err != nil {
		return err
	}
	for _, c := range calls {
		qual := 0.0
		if c.PValue > 0 {
			qual = -10 * math.Log10(c.PValue)
		} else {
			qual = 999
		}
		alt := c.AltAllele().String()
		if c.Het && c.Allele != dna.Channel(c.Ref) && c.Allele2 != dna.Channel(c.Ref) &&
			c.Allele2 != c.Allele && c.Allele2 != dna.ChGap {
			// Triallelic het: both alleles differ from the reference.
			alt = c.Allele.String() + "," + c.Allele2.String()
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t.\t%s\t%s\t%.1f\tPASS\tDP=%.2f;LRT=%.3f\n",
			c.Contig, c.Pos+1, c.Ref, alt, qual, c.Depth, c.Stat); err != nil {
			return err
		}
	}
	return bw.Flush()
}
