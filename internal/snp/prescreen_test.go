package snp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
	"gnumap/internal/obs"
)

// Property (the prescreen theorem, fuzzed): any vector the screen
// skips, run through the full lrt.Test + het-demotion + isSNP chain
// with significance FORCED to pass, must never yield a SNP call. This
// is exactly the conservativeness claim — the screen is valid at every
// significance threshold, so forcing significance is the adversarial
// worst case.
func TestPrescreenSkipImpliesNoCall(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfgs := []Config{
		{Ploidy: lrt.Monoploid},
		{Ploidy: lrt.Diploid},
		{Ploidy: lrt.Diploid, MinHetMinorFraction: 0.4},
		{Ploidy: lrt.Diploid, MinHetMinorFraction: -1},
	}
	for i := range cfgs {
		cfgs[i] = cfgs[i].withDefaults()
	}
	skips := 0
	for trial := 0; trial < 50_000; trial++ {
		cfg := &cfgs[trial%len(cfgs)]
		refBase := dna.Code(rng.Intn(4))
		if trial%17 == 0 {
			refBase = dna.N
		}
		var v genome.Vec
		for k := range v {
			switch rng.Intn(5) {
			case 0:
				// leave zero
			case 1:
				v[k] = float64(rng.Intn(4)) // small integers force ties
			default:
				v[k] = 10 * rng.Float64()
			}
		}
		if refBase.IsConcrete() && rng.Intn(2) == 0 {
			v[dna.Channel(refBase)] += 5 * rng.Float64() // often ref-dominant
		}
		if rng.Intn(4) == 0 {
			v[dna.ChGap] += 5 * rng.Float64() // sometimes gap-dominant
		}
		// Depth summed in the same channel order as the sweep.
		depth := 0.0
		for _, x := range v {
			depth += x
		}
		if !prescreenSkip(v, depth, refBase, cfg) {
			continue
		}
		skips++
		res, err := lrt.Test(v, cfg.Ploidy)
		if err != nil {
			t.Fatalf("screen skipped a vector lrt.Test rejects: %v (%v)", v, err)
		}
		// Mirror CollectRange + FinalizeCalls exactly, with the
		// significance decision replaced by "always pass".
		call := Call{Ref: refBase, Allele: res.Top, Allele2: res.Top, Het: res.Heterozygous}
		if call.Het {
			call.Allele2 = res.Second
			if cfg.MinHetMinorFraction > 0 && res.MinorFraction < cfg.MinHetMinorFraction {
				call.Het = false
				call.Allele2 = call.Allele
			}
		}
		if isSNP(call) {
			t.Fatalf("screen dropped a callable position: v=%v ref=%v ploidy=%v hetFrac=%v -> %+v",
				v, refBase, cfg.Ploidy, cfg.MinHetMinorFraction, call)
		}
	}
	if skips < 5_000 {
		t.Fatalf("vacuous fuzz: only %d/50000 trials skipped", skips)
	}
}

// Invalid vectors must never be screened out: the unscreened sweep
// surfaces lrt.Test's validation error and the screened one must too.
func TestPrescreenKeepsInvalidVectors(t *testing.T) {
	cfg := Config{Ploidy: lrt.Diploid}.withDefaults()
	bad := []genome.Vec{
		{5, -1, 0, 0, 0},
		{5, math.NaN(), 0, 0, 0},
		{5, 0, math.Inf(1), 0, 0},
		{5, 0, 0, math.Inf(-1), 0},
	}
	for _, v := range bad {
		depth := 0.0
		for _, x := range v {
			depth += x
		}
		if prescreenSkip(v, depth, dna.A, &cfg) {
			t.Errorf("screen skipped invalid vector %v", v)
		}
	}
}

// End-to-end identity: under the fixed cutoff (and with the
// significance filter disabled) the screened sweep's call set is
// bit-identical to the exhaustive sweep's, across ploidies and filter
// settings, and the screen actually fires (non-vacuous). Under FDR the
// candidate family itself is redefined (see prescreen.go), so no
// identity is asserted there — serial-vs-parallel FDR identity, where
// both sides screen, lives in parallel_test.go.
func TestPrescreenEndToEndCallIdentity(t *testing.T) {
	ref, acc := bigFixture(t, 40_000, 29)
	cfgs := []Config{
		{Ploidy: lrt.Monoploid},
		{Ploidy: lrt.Diploid},
		{Ploidy: lrt.Diploid, MinHetMinorFraction: 0.4},
		{Ploidy: lrt.Diploid, MinHetMinorFraction: -1},
		{Ploidy: lrt.Diploid, Alpha: -1},
		{Ploidy: lrt.Diploid, MinDepth: -1},
	}
	for _, cfg := range cfgs {
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		got, gotSt, err := CallAll(ref, acc, cfg)
		if err != nil {
			t.Fatalf("%+v: screened: %v", cfg, err)
		}
		raw := cfg
		raw.noPrescreen = true
		raw.Metrics = nil
		want, wantSt, err := CallAll(ref, acc, raw)
		if err != nil {
			t.Fatalf("%+v: exhaustive: %v", cfg, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ploidy=%v hetFrac=%v alpha=%v: screened sweep changed the call set: %d vs %d calls",
				cfg.Ploidy, cfg.MinHetMinorFraction, cfg.Alpha, len(got), len(want))
		}
		// Tested keeps its meaning (depth-passing positions, screened
		// included) and the SNP count matches; Significant legitimately
		// differs (screened positions are no longer candidates).
		if gotSt.Tested != wantSt.Tested || gotSt.SNPs != wantSt.SNPs {
			t.Fatalf("%+v: stats diverged: %+v vs %+v", cfg, gotSt, wantSt)
		}
		// Non-vacuity — except with het demotion disabled (hetFrac < 0),
		// where the diploid screen may only skip zero-minor positions
		// and a noisy fixture legitimately never triggers it.
		if cfg.MinHetMinorFraction >= 0 && reg.Counter("call.prescreened").Value() == 0 {
			t.Fatalf("%+v: vacuous: prescreen skipped nothing", cfg)
		}
	}
}

// The parallel sweep must screen identically to the serial one — the
// existing bit-identity property, re-checked with the screen's counter
// to prove both sides actually screened.
func TestPrescreenSerialParallelIdentical(t *testing.T) {
	ref, acc := bigFixture(t, 50_000, 31)
	cfg := Config{Ploidy: lrt.Diploid, UseFDR: true}
	serial, sst, err := CollectRange(ref, acc, 0, 0, ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.CallWorkers = 5
	parallel, pst, err := CollectRangeParallel(ref, acc, 0, 0, ref.Len(), par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) || sst != pst {
		t.Fatalf("parallel screened sweep diverged: %d/%+v vs %d/%+v",
			len(parallel), pst, len(serial), sst)
	}
}
