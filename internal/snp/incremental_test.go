package snp

import (
	"math/rand"
	"reflect"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
)

// Incremental calling in waves against a striped accumulator: every
// AddRange is mirrored by a tracker Touch (exactly what the engine
// does), sweeps run at quiesce points, and the final call set must be
// bit-identical to a one-shot CallAll over the same state. Regions
// untouched between sweeps must be reused, not re-swept.
func TestIncrementalMatchesCallAll(t *testing.T) {
	const length = 40_000
	rng := rand.New(rand.NewSource(37))
	seq := make(dna.Seq, length)
	for i := range seq {
		seq[i] = dna.Code(rng.Intn(4))
	}
	ref, err := genome.NewSingleContig("chrInc", seq)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, length)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ploidy: lrt.Diploid, UseFDR: true}
	ic, err := NewIncrementalCaller(ref, acc, 4_000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracker := ic.Tracker()
	if got := tracker.Regions(); got != 10 {
		t.Fatalf("Regions = %d, want 10", got)
	}

	add := func(lo, hi, n int) {
		for i := 0; i < n; i++ {
			pos := lo + rng.Intn(hi-lo-4)
			zs := make([]genome.Vec, 1+rng.Intn(4))
			for j := range zs {
				var z genome.Vec
				z[rng.Intn(5)] = 0.5 + rng.Float64()
				z[rng.Intn(4)] += 0.3
				zs[j] = z
			}
			acc.AddRange(pos, zs, 0.5+rng.Float64())
			tracker.Touch(pos, len(zs))
		}
	}

	// plant drops clear homozygous-alt evidence at pos so the waves
	// produce real calls, not just noise.
	plant := func(pos int) {
		alt := (int(seq[pos]) + 1) % 4
		var z genome.Vec
		z[alt] = 3
		for i := 0; i < 3; i++ {
			acc.AddRange(pos, []genome.Vec{z}, 1)
			tracker.Touch(pos, 1)
		}
	}

	// Wave 1: the front half of the genome, with planted SNP sites.
	add(0, length/2, 3_000)
	for p := 100; p < length/2; p += 997 {
		plant(p)
	}
	if err := ic.Sweep(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ic.Provisional(); err != nil {
		t.Fatal(err)
	}
	sweptAfter1 := ic.RegionsSwept()
	if sweptAfter1 == 0 {
		t.Fatal("first sweep touched no regions")
	}

	// Idle sweep: nothing written, everything must be reused.
	reusedBefore := ic.RegionsReused()
	if err := ic.Sweep(); err != nil {
		t.Fatal(err)
	}
	if ic.RegionsSwept() != sweptAfter1 {
		t.Fatalf("idle sweep re-swept regions: %d -> %d", sweptAfter1, ic.RegionsSwept())
	}
	if ic.RegionsReused() != reusedBefore+int64(tracker.Regions()) {
		t.Fatalf("idle sweep reused %d regions, want all %d", ic.RegionsReused()-reusedBefore, tracker.Regions())
	}

	// Wave 2: a single back-half region; the next sweep must only touch
	// the written region(s).
	add(length-6_000, length-1_000, 400)
	sweptBefore := ic.RegionsSwept()
	if err := ic.Sweep(); err != nil {
		t.Fatal(err)
	}
	if delta := ic.RegionsSwept() - sweptBefore; delta < 1 || delta > 3 {
		t.Fatalf("localized wave re-swept %d regions, want 1-3", delta)
	}

	// Wave 3 then finalize: bit-identical to the one-shot sweep.
	add(0, length, 1_500)
	for p := length/2 + 250; p < length; p += 1_501 {
		plant(p)
	}
	calls, st, err := ic.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	want, wantSt, err := CallAll(ref, acc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("incremental final calls diverge from CallAll: %d vs %d", len(calls), len(want))
	}
	if st != wantSt {
		t.Fatalf("incremental stats %+v, CallAll %+v", st, wantSt)
	}
	if len(calls) == 0 {
		t.Fatal("vacuous: no calls produced")
	}
	if ic.Sweeps() != 4 {
		t.Fatalf("Sweeps = %d, want 4", ic.Sweeps())
	}
}

// The incremental caller must also track a sharded accumulator
// non-destructively: worker shards stay live across sweeps, and the
// final calls match CallAll over the same (combined) state.
func TestIncrementalSharded(t *testing.T) {
	const length = 20_000
	rng := rand.New(rand.NewSource(41))
	seq := make(dna.Seq, length)
	for i := range seq {
		seq[i] = dna.Code(rng.Intn(4))
	}
	ref, err := genome.NewSingleContig("chrShard", seq)
	if err != nil {
		t.Fatal(err)
	}
	s, err := genome.NewSharded(genome.Norm, length)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ploidy: lrt.Diploid}
	ic, err := NewIncrementalCaller(ref, s, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shard := s.WorkerShard()
	for i := 0; i < 2_000; i++ {
		pos := rng.Intn(length - 2)
		var z genome.Vec
		z[rng.Intn(4)] = 0.9
		shard.AddRange(pos, []genome.Vec{z}, 1)
		ic.Tracker().Touch(pos, 1)
	}
	if err := ic.Sweep(); err != nil {
		t.Fatal(err)
	}
	if got := s.ShardCount(); got != 1 {
		t.Fatalf("sweep released worker shards: ShardCount = %d, want 1", got)
	}
	shard.AddRange(500, []genome.Vec{{0, 0.9, 0, 0, 0}}, 10)
	ic.Tracker().Touch(500, 1)
	calls, _, err := ic.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := CallAll(ref, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("sharded incremental calls diverge: %d vs %d", len(calls), len(want))
	}
}

func TestIncrementalCallerValidation(t *testing.T) {
	ref, acc := fixture(t)
	if _, err := NewIncrementalCaller(nil, acc, 0, Config{}); err == nil {
		t.Error("nil reference accepted")
	}
	if _, err := NewIncrementalCaller(ref, nil, 0, Config{}); err == nil {
		t.Error("nil accumulator accepted")
	}
}
