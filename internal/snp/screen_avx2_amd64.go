//go:build amd64

package snp

import (
	"unsafe"

	"gnumap/internal/dna"
)

// The AVX2 prescreen kernel classifies 8 positions per iteration
// straight off the five float32 planes: validity and max/compare logic
// in packed float32, depth accumulation in packed float64 with the
// scalar sweep's conversion-and-add order, and the diploid
// minor-fraction ratio in packed float64 — every compare resolves
// exactly as prescreenBlocksGeneric's (see screen_amd64.s, which
// mirrors that loop operation for operation). Packed IEEE-754 ops
// round identically to scalar ones and nothing is contracted into an
// FMA, so the three mask bytes per block are bit-identical across the
// assembly, the generic loop, and the scalar prescreen; the property
// tests compare all three.

// screenAVX2 gates the assembly kernel on CPU and OS support.
var screenAVX2 = detectScreenAVX2()

// screen8 carries one prescreen sweep's operands to assembly. Field
// offsets are fixed by the 8-byte layout and asserted below; the .s
// file indexes them by constant.
type screen8 struct {
	p0, p1, p2, p3, p4 *float32  // +0..+32: channel planes at the window start
	refc               *dna.Code // +40: reference codes, one byte per position
	out                *uint8    // +48: tested/keep/valid bytes, 3 per block
	blocks             int64     // +56
	minDepth           float64   // +64
	hetFrac            float64   // +72
	diploid            int64     // +80: 1 when ploidy is diploid
	hetOn              int64     // +88: 1 when hetFrac > 0
	maxf               float32   // +96: math.MaxFloat32 (validity upper bound)
}

// Compile-time layout assertions: a non-zero difference makes the array
// length negative and the package fails to build.
var (
	_ [unsafe.Offsetof(screen8{}.refc) - 40]struct{}
	_ [unsafe.Offsetof(screen8{}.out) - 48]struct{}
	_ [unsafe.Offsetof(screen8{}.blocks) - 56]struct{}
	_ [unsafe.Offsetof(screen8{}.minDepth) - 64]struct{}
	_ [unsafe.Offsetof(screen8{}.diploid) - 80]struct{}
	_ [unsafe.Offsetof(screen8{}.maxf) - 96]struct{}
)

//go:noescape
func prescreenBlocksAVX2(a *screen8)

// cpuidex and xgetbv0 are implemented in screen_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// detectScreenAVX2 reports whether the CPU supports AVX2 and the OS
// preserves YMM state across context switches (the same probe the
// batched PHMM kernels use).
func detectScreenAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0
}

// prescreenBlocksSIMD runs the AVX2 kernel when the host supports it,
// reporting false (untouched out) otherwise so the caller falls back
// to the generic loop.
func prescreenBlocksSIMD(planes *[dna.NumChannels][]float32, start int, refc []dna.Code, out []uint8, blocks int, minDepth, hetFrac float64, diploid bool) bool {
	if !screenAVX2 {
		return false
	}
	if blocks == 0 {
		return true
	}
	a := screen8{
		p0:       &planes[0][start],
		p1:       &planes[1][start],
		p2:       &planes[2][start],
		p3:       &planes[3][start],
		p4:       &planes[4][start],
		refc:     &refc[0],
		out:      &out[0],
		blocks:   int64(blocks),
		minDepth: minDepth,
		hetFrac:  hetFrac,
		maxf:     maxFinite32,
	}
	if diploid {
		a.diploid = 1
	}
	if hetFrac > 0 {
		a.hetOn = 1
	}
	prescreenBlocksAVX2(&a)
	return true
}
