package snp

import (
	"bufio"
	"fmt"
	"io"

	"gnumap/internal/genome"
	"gnumap/internal/lrt"
)

// WritePileup emits a per-position TSV of the accumulated probability
// pileup over global positions [from, to): contig, 1-based position,
// reference base, total mass, the five channel masses, and the
// monoploid LRT p-value. Positions with total mass below minDepth are
// skipped (the whole-genome table would be dominated by empty rows).
//
// This is the paper's "probability that a given nucleotide..." output
// (Figure 3's per-position totals) in machine-readable form.
func WritePileup(w io.Writer, ref *genome.Reference, acc genome.Accumulator, offset, from, to int, minDepth float64) error {
	if ref == nil || acc == nil {
		return fmt.Errorf("snp: nil reference or accumulator")
	}
	from, to = clampSweep(ref, acc.Len(), offset, from, to)
	// Writers are quiesced by the time a pileup is written; read through
	// a lock-free frozen view when the accumulator has one.
	fz, err := genome.Freeze(acc)
	if err != nil {
		fz = nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintln(bw, "#contig\tpos\tref\ttotal\tA\tC\tG\tT\tgap\tp_value"); err != nil {
		return err
	}
	for g := from; g < to; g++ {
		var v genome.Vec
		if fz != nil {
			v = fz.Vector(g - offset)
		} else {
			v = acc.Vector(g - offset)
		}
		total := 0.0
		for _, x := range v {
			total += x
		}
		if total < minDepth {
			continue
		}
		res, err := lrt.Test(v, lrt.Monoploid)
		if err != nil {
			return err
		}
		contig, local, err := ref.Locate(g)
		if err != nil {
			// Inter-contig spacer positions are not reportable.
			continue
		}
		refBase, err := ref.Base(g)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3e\n",
			contig, local+1, refBase, total, v[0], v[1], v[2], v[3], v[4], res.PValue); err != nil {
			return err
		}
	}
	return bw.Flush()
}
