package snp

import (
	"fmt"

	"gnumap/internal/genome"
)

// IncrementalCaller overlaps SNP calling with mapping. The streaming
// pipeline already quiesces every writer at checkpoint barriers; at
// each barrier the caller snapshots the accumulator (non-destructively,
// leaving live worker shards in place), consults a RegionTracker for
// which fixed-size genome regions received writes since the previous
// barrier, and re-sweeps only those regions — unchanged regions reuse
// their cached candidates, which stay bit-valid because SnapshotInto
// merges base and shards in a fixed order, so an untouched region's
// scratch values are identical across snapshots. Provisional call sets
// are then one FinalizeCalls pass over the concatenated caches, and the
// final set (after the last batch retires) reuses everything already
// swept — time-to-first-call moves from "after mapping" to "during
// mapping", and the final sweep touches only the regions the tail of
// the read stream wrote.
//
// The caller assumes a full-genome accumulator (offset 0); the
// distributed genome-split path keeps its own collect/gather flow.
// All methods must run with accumulator writers quiesced (between
// mapping runs, or inside the streaming pipeline's quiesce window) —
// the caller itself is not safe for concurrent use.
type IncrementalCaller struct {
	ref     *genome.Reference
	acc     genome.Accumulator
	cfg     Config // resolved; Metrics stripped (sweeps re-run per barrier)
	tracker *genome.RegionTracker
	scratch genome.Accumulator
	prev    []int64 // per-region tracker counts at last sweep (-1 = never)
	cur     []int64
	cands   [][]Candidate
	tested  []int
	sweeps  int64
	reswept int64
	reused  int64
}

// DefaultRegionSize is the default incremental sweep granularity: large
// enough that Touch adds at most a couple of atomic increments per
// alignment, small enough that a barrier's re-sweep tracks the mapped
// working set rather than the whole genome.
const DefaultRegionSize = 16_384

// NewIncrementalCaller builds an incremental caller over acc. Register
// the Tracker() with the mapping engine before mapping starts;
// regionSize <= 0 selects DefaultRegionSize.
func NewIncrementalCaller(ref *genome.Reference, acc genome.Accumulator, regionSize int, cfg Config) (*IncrementalCaller, error) {
	if ref == nil || acc == nil {
		return nil, fmt.Errorf("snp: nil reference or accumulator")
	}
	if regionSize <= 0 {
		regionSize = DefaultRegionSize
	}
	tracker, err := genome.NewRegionTracker(acc.Len(), regionSize)
	if err != nil {
		return nil, err
	}
	scratch, err := genome.CloneEmpty(acc)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	// Per-region sweeps repeat across barriers; the one-shot sweep
	// counters (call.tested etc.) would double-count, so the incremental
	// path reports through its own gauges (see Sweeps/RegionsSwept).
	cfg.Metrics = nil
	n := tracker.Regions()
	prev := make([]int64, n)
	for i := range prev {
		prev[i] = -1
	}
	return &IncrementalCaller{
		ref: ref, acc: acc, cfg: cfg, tracker: tracker, scratch: scratch,
		prev: prev, cands: make([][]Candidate, n), tested: make([]int, n),
	}, nil
}

// Tracker returns the per-region write tracker to register with the
// mapping engine (core.Engine.SetRegionTracker).
func (ic *IncrementalCaller) Tracker() *genome.RegionTracker { return ic.tracker }

// Sweep refreshes the candidate caches of every region written since
// the last Sweep. Writers must be quiesced.
func (ic *IncrementalCaller) Sweep() error {
	ic.cur = ic.tracker.Snapshot(ic.cur)
	if err := genome.SnapshotInto(ic.acc, ic.scratch); err != nil {
		return err
	}
	ic.sweeps++
	for i := range ic.cur {
		if ic.cur[i] == ic.prev[i] {
			ic.reused++
			continue
		}
		from, to := ic.tracker.Bounds(i)
		cands, st, err := CollectRange(ic.ref, ic.scratch, 0, from, to, ic.cfg)
		if err != nil {
			return err
		}
		ic.cands[i] = cands
		ic.tested[i] = st.Tested
		ic.prev[i] = ic.cur[i]
		ic.reswept++
	}
	return nil
}

// Provisional finalizes the current caches into a call set: one
// FinalizeCalls pass (the single global significance decision) over the
// region caches concatenated in genome order, exactly like the one-shot
// sweep. Stats.Tested covers every region's last sweep.
func (ic *IncrementalCaller) Provisional() ([]Call, Stats, error) {
	total, tested := 0, 0
	for i := range ic.cands {
		total += len(ic.cands[i])
		tested += ic.tested[i]
	}
	all := make([]Candidate, 0, total)
	for _, cs := range ic.cands {
		all = append(all, cs...)
	}
	calls, st, err := FinalizeCalls(all, ic.cfg)
	if err != nil {
		return nil, st, err
	}
	st.Tested = tested
	return calls, st, nil
}

// Finalize runs a last Sweep (writers must have quiesced for good) and
// returns the final call set. On a striped accumulator the result is
// bit-identical to CallAll over the same state; sharded accumulators
// can differ by float-merge-order ulps, the same tolerance every
// sharded path already carries.
func (ic *IncrementalCaller) Finalize() ([]Call, Stats, error) {
	if err := ic.Sweep(); err != nil {
		return nil, Stats{}, err
	}
	return ic.Provisional()
}

// Sweeps returns how many Sweep passes have run.
func (ic *IncrementalCaller) Sweeps() int64 { return ic.sweeps }

// RegionsSwept returns the cumulative count of region sweeps executed.
func (ic *IncrementalCaller) RegionsSwept() int64 { return ic.reswept }

// RegionsReused returns the cumulative count of cache hits — regions a
// Sweep skipped because no write touched them since their last sweep.
func (ic *IncrementalCaller) RegionsReused() int64 { return ic.reused }
