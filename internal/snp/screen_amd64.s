//go:build amd64

#include "textflag.h"

// AVX2 calling prescreen: 8 positions per iteration, classified into
// three mask bytes (tested, keep, valid) per block. The loop mirrors
// prescreenBlocksGeneric operation for operation — float32 compares
// for validity and the max/compare screen, float64 conversion + adds
// (in channel order) for depth, float64 division for the diploid
// minor-fraction ratio — so the masks are bit-identical to the generic
// loop and to the scalar prescreen by construction. No FMA, no
// reassociation.
//
// Register plan (R14/X15 untouched — reserved by the Go ABI):
//   AX          &screen8
//   R8..R12     plane pointers p0..p4 (advance 32 bytes/block)
//   R13         refc pointer (advance 8)
//   DI          out pointer (advance 3)
//   CX          remaining blocks
//   BX,DX,SI,R15  GP scratch (mask combining)
//   Y0  zero (float32 0.0 and int32 0, same bits)
//   Y1  maxf broadcast (float32)
//   Y2  minDepth broadcast (float64)
//   Y3  hetFrac broadcast (float64)
//   Y4,Y5,Y6  int32 broadcasts 3, 1, 2 (reference-code compares)
//   Y8  codes (8 × int32, zero-extended from refc bytes)
//   Y9  valid accumulator
//   Y10 vr, then m = max(vr, v4)
//   Y11 bmax (max non-{ref,gap} channel, 0 where masked)
//   Y12 depth lanes 0-3 (float64)   Y13 depth lanes 4-7
//   Y7,Y14 scratch

// func prescreenBlocksAVX2(a *screen8)
TEXT ·prescreenBlocksAVX2(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), R8    // p0
	MOVQ 8(AX), R9    // p1
	MOVQ 16(AX), R10  // p2
	MOVQ 24(AX), R11  // p3
	MOVQ 32(AX), R12  // p4
	MOVQ 40(AX), R13  // refc
	MOVQ 48(AX), DI   // out
	MOVQ 56(AX), CX   // blocks

	VXORPS       Y0, Y0, Y0
	VBROADCASTSS 96(AX), Y1 // maxf
	VBROADCASTSD 64(AX), Y2 // minDepth
	VBROADCASTSD 72(AX), Y3 // hetFrac
	MOVQ         $3, BX
	VMOVQ        BX, X4
	VPBROADCASTD X4, Y4
	MOVQ         $1, BX
	VMOVQ        BX, X5
	VPBROADCASTD X5, Y5
	MOVQ         $2, BX
	VMOVQ        BX, X6
	VPBROADCASTD X6, Y6

blockloop:
	VPMOVZXBD (R13), Y8 // 8 reference codes → int32 lanes

	// Channel 0 (A): validity, depth init, vr/bmax init.
	VMOVUPS      (R8), Y14
	VCMPPS       $0x1D, Y0, Y14, Y7 // v >= 0 (GE_OQ)
	VCMPPS       $0x12, Y1, Y14, Y9 // v <= maxf (LE_OQ)
	VANDPS       Y7, Y9, Y9
	VCVTPS2PD    X14, Y12           // depth = float64(v0), lanes 0-3
	VEXTRACTF128 $1, Y14, X7
	VCVTPS2PD    X7, Y13            // lanes 4-7
	VPCMPEQD     Y0, Y8, Y7         // code == 0
	VANDNPS      Y14, Y7, Y11       // bmax = v0 where code != 0, else 0
	VXORPS       Y11, Y14, Y10      // vr = v0 where code == 0, else 0

	// Channel 1 (C).
	VMOVUPS      (R9), Y14
	VCMPPS       $0x1D, Y0, Y14, Y7
	VANDPS       Y7, Y9, Y9
	VCMPPS       $0x12, Y1, Y14, Y7
	VANDPS       Y7, Y9, Y9
	VCVTPS2PD    X14, Y7
	VADDPD       Y7, Y12, Y12       // depth += float64(v1)
	VEXTRACTF128 $1, Y14, X7
	VCVTPS2PD    X7, Y7
	VADDPD       Y7, Y13, Y13
	VPCMPEQD     Y5, Y8, Y7         // code == 1
	VANDNPS      Y14, Y7, Y7        // v1 where code != 1, else 0
	VMAXPS       Y7, Y11, Y11
	VXORPS       Y14, Y7, Y7        // v1 where code == 1, else 0
	VORPS        Y7, Y10, Y10

	// Channel 2 (G).
	VMOVUPS      (R10), Y14
	VCMPPS       $0x1D, Y0, Y14, Y7
	VANDPS       Y7, Y9, Y9
	VCMPPS       $0x12, Y1, Y14, Y7
	VANDPS       Y7, Y9, Y9
	VCVTPS2PD    X14, Y7
	VADDPD       Y7, Y12, Y12
	VEXTRACTF128 $1, Y14, X7
	VCVTPS2PD    X7, Y7
	VADDPD       Y7, Y13, Y13
	VPCMPEQD     Y6, Y8, Y7         // code == 2
	VANDNPS      Y14, Y7, Y7
	VMAXPS       Y7, Y11, Y11
	VXORPS       Y14, Y7, Y7
	VORPS        Y7, Y10, Y10

	// Channel 3 (T).
	VMOVUPS      (R11), Y14
	VCMPPS       $0x1D, Y0, Y14, Y7
	VANDPS       Y7, Y9, Y9
	VCMPPS       $0x12, Y1, Y14, Y7
	VANDPS       Y7, Y9, Y9
	VCVTPS2PD    X14, Y7
	VADDPD       Y7, Y12, Y12
	VEXTRACTF128 $1, Y14, X7
	VCVTPS2PD    X7, Y7
	VADDPD       Y7, Y13, Y13
	VPCMPEQD     Y4, Y8, Y7         // code == 3
	VANDNPS      Y14, Y7, Y7
	VMAXPS       Y7, Y11, Y11
	VXORPS       Y14, Y7, Y7
	VORPS        Y7, Y10, Y10

	// Channel 4 (gap): validity, depth, m = max(vr, v4).
	VMOVUPS      (R12), Y14
	VCMPPS       $0x1D, Y0, Y14, Y7
	VANDPS       Y7, Y9, Y9
	VCMPPS       $0x12, Y1, Y14, Y7
	VANDPS       Y7, Y9, Y9
	VCVTPS2PD    X14, Y7
	VADDPD       Y7, Y12, Y12
	VEXTRACTF128 $1, Y14, X7
	VCVTPS2PD    X7, Y7
	VADDPD       Y7, Y13, Y13
	VMAXPS       Y14, Y10, Y10      // m

	// Diploid minor-fraction ratio: float64(bmax)/depth < hetFrac,
	// computed only when the clause can matter (diploid && hetOn);
	// its lanes are otherwise dead under the mask algebra below.
	XORQ  BX, BX
	MOVQ  80(AX), SI // diploid
	TESTQ SI, SI
	JZ    noratio
	MOVQ  88(AX), SI // hetOn
	TESTQ SI, SI
	JZ    noratio
	VCVTPS2PD    X11, Y7
	VDIVPD       Y12, Y7, Y7        // float64(bmax) / depth, lanes 0-3
	VCMPPD       $0x11, Y3, Y7, Y7  // ratio < hetFrac (LT_OQ)
	VMOVMSKPD    Y7, BX
	VEXTRACTF128 $1, Y11, X7
	VCVTPS2PD    X7, Y7
	VDIVPD       Y13, Y7, Y7
	VCMPPD       $0x11, Y3, Y7, Y7
	VMOVMSKPD    Y7, SI
	SHLQ         $4, SI
	ORQ          SI, BX             // ratioM

noratio:
	// skip = valid & (nc | (skipA & (notDip | zeroB | ratioM))).
	VCMPPS    $0x00, Y0, Y11, Y7 // bmax == 0 (EQ_OQ)
	VMOVMSKPS Y7, SI
	ORQ       SI, BX
	MOVQ      80(AX), SI
	DECQ      SI                 // diploid: 1 → 0, 0 → all-ones
	ORQ       SI, BX             // dipTerm
	VCMPPS    $0x11, Y10, Y11, Y7 // bmax < m (LT_OQ)
	VMOVMSKPS Y7, SI
	ANDQ      SI, BX             // skipA & dipTerm (also clamps to 8 bits)
	VPCMPGTD  Y4, Y8, Y7         // code > 3: non-concrete reference
	VMOVMSKPS Y7, SI
	ORQ       SI, BX
	VMOVMSKPS Y9, DX             // validM
	ANDQ      DX, BX             // skipM

	// tested = !(depth < minDepth); NaN depth passes, as in Go.
	VCMPPD    $0x11, Y2, Y12, Y7
	VMOVMSKPD Y7, SI
	VCMPPD    $0x11, Y2, Y13, Y7
	VMOVMSKPD Y7, R15
	SHLQ      $4, R15
	ORQ       R15, SI
	NOTQ      SI
	ANDQ      $0xFF, SI          // testedM

	NOTQ BX
	ANDQ SI, BX // keepM = testedM &^ skipM

	MOVB SI, (DI)
	MOVB BX, 1(DI)
	MOVB DX, 2(DI)

	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $8, R13
	ADDQ $3, DI
	DECQ CX
	JNZ  blockloop

	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
