package snp

import (
	"math/rand"
	"reflect"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
	"gnumap/internal/obs"
)

// bigFixture plants pseudo-random evidence across a genome long enough
// to clear minParallelRange, mixing hom-alt, het, ref-confirming, and
// thin-coverage sites so every caller branch is exercised.
func bigFixture(t *testing.T, length int, seed int64) (*genome.Reference, genome.Accumulator) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seq := make(dna.Seq, length)
	for i := range seq {
		seq[i] = dna.Code(rng.Intn(4))
	}
	ref, err := genome.NewSingleContig("chrBig", seq)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, length)
	if err != nil {
		t.Fatal(err)
	}
	vecFor := func(ch dna.Channel) genome.Vec {
		var v genome.Vec
		for k := range v {
			v[k] = 0.01
		}
		v[ch] = 0.96
		return v
	}
	for pos := 0; pos < length; pos += 3 + rng.Intn(5) {
		refCh := dna.Channel(seq[pos])
		altCh := dna.Channel((int(refCh) + 1 + rng.Intn(3)) % 4)
		depth := 1 + rng.Intn(20)
		var v genome.Vec
		switch rng.Intn(4) {
		case 0: // hom alt
			v = vecFor(altCh)
		case 1: // ref confirming
			v = vecFor(refCh)
		case 2: // het: half ref, half alt
			half := vecFor(refCh)
			for i := 0; i < depth/2; i++ {
				acc.AddRange(pos, []genome.Vec{half}, 1)
			}
			v = vecFor(altCh)
			depth -= depth / 2
		default: // noisy
			v = genome.Vec{0.3, 0.3, 0.2, 0.15, 0.05}
		}
		for i := 0; i < depth; i++ {
			acc.AddRange(pos, []genome.Vec{v}, 1)
		}
	}
	return ref, acc
}

// Satellite: the parallel caller must be bit-identical to the serial
// one — candidates, calls, stats, and FDR decisions — at several worker
// counts, including one (7) that does not divide the chunk count.
func TestCollectRangeParallelBitIdentical(t *testing.T) {
	const length = 20_000
	ref, acc := bigFixture(t, length, 42)
	base := Config{Ploidy: lrt.Diploid}

	wantCands, wantSt, err := CollectRange(ref, acc, 0, 0, length, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantCands) == 0 || wantSt.Tested == 0 {
		t.Fatal("fixture produced no candidates; test is vacuous")
	}

	for _, workers := range []int{1, 4, 7} {
		cfg := base
		cfg.CallWorkers = workers
		cfg.CallChunk = 1009 // prime, so chunks straddle evidence sites unevenly
		gotCands, gotSt, err := CollectRangeParallel(ref, acc, 0, 0, length, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotCands, wantCands) {
			t.Fatalf("workers=%d: candidates diverge from serial (%d vs %d)", workers, len(gotCands), len(wantCands))
		}
		if !reflect.DeepEqual(gotSt, wantSt) {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, gotSt, wantSt)
		}
	}
}

// The full CallRange path (parallel sweep + the single global FDR pass)
// must match the serial caller exactly, including which candidates the
// Benjamini–Hochberg step keeps.
func TestCallRangeParallelFDRIdentical(t *testing.T) {
	const length = 24_000
	ref, acc := bigFixture(t, length, 7)
	serial := Config{Ploidy: lrt.Diploid, UseFDR: true, CallWorkers: 1}
	wantCalls, wantSt, err := CallRange(ref, acc, 0, 0, length, serial)
	if err != nil {
		t.Fatal(err)
	}
	if wantSt.Significant == 0 {
		t.Fatal("fixture produced no significant calls; test is vacuous")
	}
	for _, workers := range []int{4, 7} {
		cfg := serial
		cfg.CallWorkers = workers
		cfg.CallChunk = 2048
		gotCalls, gotSt, err := CallRange(ref, acc, 0, 0, length, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotCalls, wantCalls) {
			t.Fatalf("workers=%d: calls diverge from serial", workers)
		}
		if !reflect.DeepEqual(gotSt, wantSt) {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, gotSt, wantSt)
		}
	}
}

// Windowed sweeps with deliberately out-of-range bounds (the
// genome-split shard shape) must clamp and chunk identically to the
// serial path.
func TestCollectRangeParallelOffset(t *testing.T) {
	const length = 40_000
	ref, full := bigFixture(t, length, 99)
	const offset, subLen = 10_000, 20_000
	cfg := Config{Ploidy: lrt.Diploid}
	wantCands, wantSt, err := CollectRange(ref, full, 0, offset-500, offset+subLen+999, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CallWorkers = 4
	cfg.CallChunk = 1536
	gotCands, gotSt, err := CollectRangeParallel(ref, full, 0, offset-500, offset+subLen+999, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCands, wantCands) || !reflect.DeepEqual(gotSt, wantSt) {
		t.Fatalf("windowed sweep diverges: %d/%+v vs %d/%+v", len(gotCands), gotSt, len(wantCands), wantSt)
	}
}

// The sweep must publish call.workers / call.chunks / call.sweep.seconds
// when a registry is attached, and fall back to the serial path (no
// metrics beyond what CollectRange emits) for short ranges.
func TestCollectRangeParallelMetrics(t *testing.T) {
	const length = 20_000
	ref, acc := bigFixture(t, length, 5)
	reg := obs.NewRegistry()
	cfg := Config{Ploidy: lrt.Diploid, CallWorkers: 4, CallChunk: 2048, Metrics: reg}
	if _, _, err := CollectRangeParallel(ref, acc, 0, 0, length, cfg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot(0)
	if got := snap.Gauges["call.workers"]; got != 4 {
		t.Errorf("call.workers = %v, want 4", got)
	}
	wantChunks := (length + 2048 - 1) / 2048
	if got := snap.Counters["call.chunks"]; got != int64(wantChunks) {
		t.Errorf("call.chunks = %v, want %d", got, wantChunks)
	}
	if h, ok := snap.Histograms["call.sweep.seconds"]; !ok || h.Count != int64(wantChunks) {
		t.Errorf("call.sweep.seconds observations = %+v, want %d", h, wantChunks)
	}
}
