package snp

import (
	"bytes"
	"strings"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
	"gnumap/internal/simulate"
)

// fixture builds a tiny reference plus an accumulator with hand-planted
// evidence: a hom SNP at 10 (ref A, reads say C), a confirmed ref base
// at 20, a het site at 30 (ref G, reads split G/T), thin coverage at 40.
func fixture(t *testing.T) (*genome.Reference, genome.Accumulator) {
	t.Helper()
	seq := make(dna.Seq, 50) // all A by zero value
	seq[30] = dna.G
	ref, err := genome.NewSingleContig("chrT", seq)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, 50)
	if err != nil {
		t.Fatal(err)
	}
	add := func(pos int, v genome.Vec, times int) {
		for i := 0; i < times; i++ {
			acc.AddRange(pos, []genome.Vec{v}, 1)
		}
	}
	add(10, genome.Vec{0.02, 0.95, 0.02, 0.01, 0}, 15) // C evidence
	add(20, genome.Vec{0.97, 0.01, 0.01, 0.01, 0}, 15) // A evidence (ref)
	add(30, genome.Vec{0, 0, 0.98, 0.02, 0}, 8)        // G (ref allele)
	add(30, genome.Vec{0, 0, 0.02, 0.98, 0}, 8)        // T (alt allele)
	add(40, genome.Vec{0, 0.9, 0.1, 0, 0}, 1)          // below MinDepth
	return ref, acc
}

func TestCallAllMonoploid(t *testing.T) {
	ref, acc := fixture(t)
	calls, st, err := CallAll(ref, acc, Config{Ploidy: lrt.Monoploid})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tested != 3 {
		t.Errorf("Tested = %d, want 3 (pos 40 below MinDepth)", st.Tested)
	}
	// Position 10 must be called C; position 20 is significant but
	// matches the reference; position 30 is a 50/50 split, weak under
	// the monoploid alternative but the top base T or G still beats
	// uniform background strongly at depth 16.
	byPos := map[int]Call{}
	for _, c := range calls {
		byPos[c.GlobalPos] = c
	}
	c10, ok := byPos[10]
	if !ok {
		t.Fatal("no call at 10")
	}
	if c10.Allele != dna.ChC || c10.Ref != dna.A || c10.Het {
		t.Errorf("call at 10 = %+v", c10)
	}
	if c10.Contig != "chrT" || c10.Pos != 10 {
		t.Errorf("coordinates wrong: %+v", c10)
	}
	if _, ok := byPos[20]; ok {
		t.Error("reference-matching position 20 called as SNP")
	}
	if _, ok := byPos[40]; ok {
		t.Error("thin position 40 called")
	}
}

func TestCallAllDiploidHet(t *testing.T) {
	ref, acc := fixture(t)
	calls, _, err := CallAll(ref, acc, Config{Ploidy: lrt.Diploid})
	if err != nil {
		t.Fatal(err)
	}
	var c30 *Call
	for i := range calls {
		if calls[i].GlobalPos == 30 {
			c30 = &calls[i]
		}
	}
	if c30 == nil {
		t.Fatal("het site at 30 not called")
	}
	if !c30.Het {
		t.Errorf("call at 30 not heterozygous: %+v", c30)
	}
	alt := c30.AltAllele()
	if alt != dna.ChT {
		t.Errorf("alt allele = %v, want T", alt)
	}
}

func TestCallRangeOffsets(t *testing.T) {
	ref, acc := fixture(t)
	// Use a shifted accumulator covering only [5, 35): global pos 10
	// maps to accumulator index 5.
	sub, err := genome.New(genome.Norm, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		v := acc.Vector(5 + i)
		sub.AddRange(i, []genome.Vec{v}, 1)
	}
	calls, _, err := CallRange(ref, sub, 5, 0, ref.Len(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range calls {
		if c.GlobalPos == 10 && c.Allele == dna.ChC {
			found = true
		}
	}
	if !found {
		t.Errorf("offset calling missed the SNP: %+v", calls)
	}
}

func TestCallValidation(t *testing.T) {
	ref, acc := fixture(t)
	if _, _, err := CallAll(nil, acc, Config{}); err == nil {
		t.Error("nil ref accepted")
	}
	if _, _, err := CallAll(ref, nil, Config{}); err == nil {
		t.Error("nil accumulator accepted")
	}
}

func TestFDRMode(t *testing.T) {
	ref, acc := fixture(t)
	calls, _, err := CallAll(ref, acc, Config{UseFDR: true, Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range calls {
		if c.GlobalPos == 10 {
			found = true
		}
	}
	if !found {
		t.Error("FDR mode missed the strong SNP at 10")
	}
}

func TestEvaluate(t *testing.T) {
	calls := []Call{
		{GlobalPos: 10, Ref: dna.A, Allele: dna.ChC, Allele2: dna.ChC},            // TP
		{GlobalPos: 20, Ref: dna.A, Allele: dna.ChG, Allele2: dna.ChG},            // FP (not in truth)
		{GlobalPos: 30, Ref: dna.G, Allele: dna.ChT, Allele2: dna.ChT},            // wrong allele
		{GlobalPos: 40, Ref: dna.G, Allele: dna.ChG, Allele2: dna.ChA, Het: true}, // TP via Allele2
	}
	truth := []simulate.SNP{
		{Pos: 10, Ref: dna.A, Alt: dna.C},
		{Pos: 30, Ref: dna.G, Alt: dna.A},
		{Pos: 40, Ref: dna.G, Alt: dna.A, Het: true},
		{Pos: 99, Ref: dna.A, Alt: dna.T}, // missed -> FN
	}
	m := Evaluate(calls, truth)
	if m.TP != 2 || m.FP != 2 || m.FN != 2 || m.WrongAllele != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Precision() != 0.5 {
		t.Errorf("precision = %v", m.Precision())
	}
	if m.Sensitivity() != 0.5 {
		t.Errorf("sensitivity = %v", m.Sensitivity())
	}
}

func TestEvaluateDuplicateCallsCountOnce(t *testing.T) {
	calls := []Call{
		{GlobalPos: 10, Ref: dna.A, Allele: dna.ChC, Allele2: dna.ChC},
		{GlobalPos: 10, Ref: dna.A, Allele: dna.ChC, Allele2: dna.ChC},
	}
	truth := []simulate.SNP{{Pos: 10, Ref: dna.A, Alt: dna.C}}
	m := Evaluate(calls, truth)
	if m.TP != 1 || m.FN != 0 {
		t.Errorf("duplicate handling wrong: %+v", m)
	}
}

func TestMetricsZeroDivision(t *testing.T) {
	var m Metrics
	if m.Precision() != 0 || m.Sensitivity() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
}

func TestWriteVCF(t *testing.T) {
	ref, acc := fixture(t)
	calls, _, err := CallAll(ref, acc, Config{Ploidy: lrt.Diploid})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVCF(&buf, calls, "gnumap-snp-test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "##fileformat=VCFv4.2\n") {
		t.Error("missing VCF header")
	}
	if !strings.Contains(out, "#CHROM\tPOS\tID\tREF\tALT") {
		t.Error("missing column header")
	}
	// The hom SNP at global 10 -> VCF POS 11, REF A, ALT C.
	if !strings.Contains(out, "chrT\t11\t.\tA\tC\t") {
		t.Errorf("missing expected record in:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	dataLines := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			dataLines++
		}
	}
	if dataLines != len(calls) {
		t.Errorf("%d VCF records for %d calls", dataLines, len(calls))
	}
}

func TestIsSNPGapAndNRef(t *testing.T) {
	if isSNP(Call{Ref: dna.A, Allele: dna.ChGap, Allele2: dna.ChGap}) {
		t.Error("gap-dominant position called as SNP")
	}
	if isSNP(Call{Ref: dna.N, Allele: dna.ChC, Allele2: dna.ChC}) {
		t.Error("N-reference position called as SNP")
	}
	if !isSNP(Call{Ref: dna.A, Allele: dna.ChA, Allele2: dna.ChT, Het: true}) {
		t.Error("ref/alt het not called as SNP")
	}
	if isSNP(Call{Ref: dna.A, Allele: dna.ChA, Allele2: dna.ChGap, Het: true}) {
		t.Error("ref/gap het called as SNP")
	}
}

func TestWritePileup(t *testing.T) {
	ref, acc := fixture(t)
	var buf bytes.Buffer
	if err := WritePileup(&buf, ref, acc, 0, 0, ref.Len(), 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "#contig\tpos") {
		t.Errorf("header wrong: %q", lines[0])
	}
	// Fixture has mass >= 2 at positions 10, 20, 30 only.
	if len(lines) != 4 {
		t.Fatalf("%d data lines, want 3 (+header):\n%s", len(lines)-1, buf.String())
	}
	if !strings.HasPrefix(lines[1], "chrT\t11\tA\t") {
		t.Errorf("first pileup row wrong: %q", lines[1])
	}
	// The C channel at position 10 must dominate.
	f := strings.Split(lines[1], "\t")
	if f[5] <= f[4] { // C column > A column (string compare works for %.3f of these magnitudes)
		t.Errorf("C mass %s not dominant over A %s", f[5], f[4])
	}
	if err := WritePileup(&buf, nil, acc, 0, 0, 10, 1); err == nil {
		t.Error("nil ref accepted")
	}
}

func TestWritePileupRangeClamping(t *testing.T) {
	ref, acc := fixture(t)
	var buf bytes.Buffer
	// Deliberately out-of-bounds range must clamp, not panic.
	if err := WritePileup(&buf, ref, acc, 0, -100, 1<<20, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "chrT\t31\t") {
		t.Errorf("clamped pileup missing rows:\n%s", buf.String())
	}
}

func TestHetAlleleBalanceFilter(t *testing.T) {
	// Ref A with a 16:4 A/T split: the raw diploid LRT prefers het
	// (hom: 16·log(0.8) + 4·log(0.05) ≈ -15.6 < het: 20·log(0.5) ≈
	// -13.9), but the 20% minor fraction is error-pileup territory and
	// must be demoted to a (non-SNP) homozygous-reference call.
	seq := make(dna.Seq, 10) // all A
	ref, err := genome.NewSingleContig("bal", seq)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := genome.New(genome.Norm, 10)
	for i := 0; i < 16; i++ {
		acc.AddRange(5, []genome.Vec{{1, 0, 0, 0, 0}}, 1)
	}
	for i := 0; i < 4; i++ {
		acc.AddRange(5, []genome.Vec{{0, 0, 0, 1, 0}}, 1)
	}
	calls, _, err := CallAll(ref, acc, Config{Ploidy: lrt.Diploid})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range calls {
		if c.GlobalPos == 5 {
			t.Errorf("skewed 16:4 position called: %+v", c)
		}
	}
	// Disabling the filter restores the raw behaviour.
	calls, _, err = CallAll(ref, acc, Config{Ploidy: lrt.Diploid, MinHetMinorFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range calls {
		if c.GlobalPos == 5 && c.Het {
			found = true
		}
	}
	if !found {
		t.Error("filter-disabled run did not call the skewed het")
	}
	// A balanced 10:10 het passes the filter.
	acc2, _ := genome.New(genome.Norm, 10)
	for i := 0; i < 10; i++ {
		acc2.AddRange(5, []genome.Vec{{1, 0, 0, 0, 0}}, 1)
		acc2.AddRange(5, []genome.Vec{{0, 0, 0, 1, 0}}, 1)
	}
	calls, _, err = CallAll(ref, acc2, Config{Ploidy: lrt.Diploid})
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, c := range calls {
		if c.GlobalPos == 5 && c.Het && c.AltAllele() == dna.ChT {
			found = true
		}
	}
	if !found {
		t.Errorf("balanced het not called: %+v", calls)
	}
}

// TestFinalizeCallsGlobalVsPerShardFDR pins the distributed-caller FDR
// semantics: one Benjamini–Hochberg pass over the full candidate family
// is NOT equivalent to a BH pass per genome shard. The construction is
// the minimal diverging case: shard A carries 79 overwhelming SNPs,
// shard B carries one borderline SNP (p = 0.04) among null positions.
// Globally the borderline candidate ranks 80/100, threshold
// α·80/100 = 0.04, so it is called; inside its own shard it ranks 1/21,
// threshold α/21 ≈ 0.0024, so a per-shard pass silently drops it.
func TestFinalizeCallsGlobalVsPerShardFDR(t *testing.T) {
	mk := func(pos int, p float64, alt bool) Candidate {
		c := Call{Contig: "chrT", Pos: pos, GlobalPos: pos, Ref: dna.A, PValue: p, Depth: 10}
		c.Allele, c.Allele2 = dna.ChA, dna.ChA
		if alt {
			c.Allele, c.Allele2 = dna.ChC, dna.ChC
		}
		return Candidate{Call: c, Second: c.Allele}
	}
	var shardA, shardB []Candidate
	for i := 0; i < 79; i++ {
		shardA = append(shardA, mk(i, 1e-10, true))
	}
	const borderline = 1000
	shardB = append(shardB, mk(borderline, 0.04, true))
	for i := 1; i <= 20; i++ {
		shardB = append(shardB, mk(borderline+i, 0.9, false))
	}
	cfg := Config{UseFDR: true} // Alpha defaults to 0.05

	global, _, err := FinalizeCalls(append(append([]Candidate{}, shardA...), shardB...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	callsA, _, err := FinalizeCalls(shardA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	callsB, _, err := FinalizeCalls(shardB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perShard := append(callsA, callsB...)

	if len(global) != 80 {
		t.Fatalf("global FDR pass called %d SNPs, want 80 (79 strong + 1 borderline)", len(global))
	}
	hasBorderline := func(calls []Call) bool {
		for _, c := range calls {
			if c.GlobalPos == borderline {
				return true
			}
		}
		return false
	}
	if !hasBorderline(global) {
		t.Errorf("global pass missing the borderline call at %d", borderline)
	}
	if hasBorderline(perShard) {
		t.Errorf("per-shard pass unexpectedly called position %d: shard-local BH should reject it", borderline)
	}
	if len(perShard) != 79 {
		t.Errorf("per-shard passes called %d SNPs, want 79", len(perShard))
	}
}
