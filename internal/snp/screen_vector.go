package snp

import (
	"math"
	"math/bits"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
)

// The plane-streaming vectorized calling sweep.
//
// The scalar sweep (CollectRange's per-position loop) gathers a
// [5]float64 vector, sums its depth, screens it, and only rarely — at
// loci with a variant signal — pays for lrt.Test. The vectorized path
// restructures exactly that work around the frozen NORM planes
// (genome.Frozen.PlaneWindow): a kernel classifies 8 positions per
// lane-block straight off the contiguous float32 planes, surviving
// positions are gathered into dense batches, and their log-likelihoods
// are evaluated through lrt.TestBatch. An AVX2 kernel
// (screen_amd64.s) runs beside the generic Go loop behind the same
// runtime cpuid dispatch the batched PHMM uses.
//
// Bit-identity by construction. The kernel makes the scalar sweep's
// *decisions*, not an approximation of them:
//
//   - depth is accumulated in float64, converting each float32 plane
//     value and adding in channel order k=0..4 — the scalar sweep's
//     exact expression tree — so the `depth < MinDepth` test (NaN
//     depth passes, matching Go's compare) is the same float compare
//     on the same bits;
//   - the prescreen's max/compare logic (prescreen.go's theorem) runs
//     on the raw float32 values; float32→float64 conversion is exact
//     and monotone, so every compare resolves identically to the
//     scalar screen's float64 version, and the diploid minor-fraction
//     ratio is divided in float64 from the same converted operands;
//   - survivors re-read their five plane values through the identical
//     conversion into lrt.TestBatch, which runs Test's expression tree
//     per element (literally the same code), and candidates are
//     appended in genome order before the single global FinalizeCalls
//     pass.
//
// Invalid lanes (a negative, NaN or Inf channel) are never screened
// out; the sweep surfaces the same lrt validation error, at the same
// position, with the same partial Stats as the scalar path.

// screenLanes is the position count each kernel block classifies; the
// AVX2 kernel is specialized for 8-wide float32 lanes.
const screenLanes = 8

// screenMaskBytes is the size of one block's classification record in
// the kernel's out buffer: tested, keep, valid bitmask bytes (bit i =
// lane i).
const screenMaskBytes = 3

// screenTileBlocks bounds the blocks classified per kernel call, so
// the mask scratch stays cache-resident regardless of sweep length.
const screenTileBlocks = 512

// lrtBatchSize is the dense survivor batch handed to lrt.TestBatch.
const lrtBatchSize = 64

// maxFinite32 is the largest finite float32; kernel lanes outside
// [0, maxFinite32] are invalid (negative, NaN or ±Inf — NaN fails
// both ordered compares) and must reach lrt.Test for its error.
const maxFinite32 = float32(math.MaxFloat32)

// VectorKernel reports which prescreen kernel the vectorized sweep
// dispatches on this host: "avx2" when the cpuid probe (CPU AVX2 + OS
// YMM state support) passes, "generic" otherwise. Benchmarks stamp it
// on their rows so cross-host comparisons don't silently mix code
// paths.
func VectorKernel() string {
	if screenAVX2 {
		return "avx2"
	}
	return "generic"
}

// vectorEligible reports whether the plane-streaming sweep can replace
// the scalar loop: the knob is on (non-negative), the prescreen is not
// bypassed (the test-only exhaustive sweep stays scalar), and the
// frozen view exposes NORM channel planes.
func vectorEligible(cfg *Config, fz *genome.Frozen) bool {
	return cfg.CallVector >= 0 && !cfg.noPrescreen && fz != nil && fz.Mode() == genome.Norm
}

// prescreenBlocks classifies blocks×8 consecutive positions, writing
// one screenMaskBytes record per block into out: tested (depth-passing
// lanes), keep (lanes needing lrt.Test: screen survivors plus invalid
// vectors), valid (lanes with all-finite non-negative channels).
// start indexes the planes; refc holds the same positions' reference
// codes. Dispatches to the AVX2 kernel when the host supports it.
func prescreenBlocks(planes *[dna.NumChannels][]float32, start int, refc []dna.Code, out []uint8, blocks int, minDepth, hetFrac float64, diploid bool) {
	if prescreenBlocksSIMD(planes, start, refc, out, blocks, minDepth, hetFrac, diploid) {
		return
	}
	prescreenBlocksGeneric(planes, start, refc, out, blocks, minDepth, hetFrac, diploid)
}

// prescreenBlocksGeneric is the portable kernel: the same lane-block
// structure as the assembly, in plain Go. Every decision mirrors the
// scalar sweep exactly (see the package comment above); the AVX2
// kernel in turn mirrors this loop operation for operation, and the
// property tests compare all three.
func prescreenBlocksGeneric(planes *[dna.NumChannels][]float32, start int, refc []dna.Code, out []uint8, blocks int, minDepth, hetFrac float64, diploid bool) {
	hetOn := hetFrac > 0
	for b := 0; b < blocks; b++ {
		var testedM, keepM, validM uint8
		off := start + b*screenLanes
		for lane := 0; lane < screenLanes; lane++ {
			pos := off + lane
			v0 := planes[0][pos]
			v1 := planes[1][pos]
			v2 := planes[2][pos]
			v3 := planes[3][pos]
			v4 := planes[4][pos]

			// Validity in float32: conversion to float64 preserves
			// negative/NaN/Inf, so these ordered compares decide exactly
			// what prescreenSkip's float64 checks decide.
			valid := v0 >= 0 && v0 <= maxFinite32 &&
				v1 >= 0 && v1 <= maxFinite32 &&
				v2 >= 0 && v2 <= maxFinite32 &&
				v3 >= 0 && v3 <= maxFinite32 &&
				v4 >= 0 && v4 <= maxFinite32

			// Depth in float64, the scalar sweep's exact summation: each
			// float32 converted, then added in channel order.
			d := float64(v0) + float64(v1)
			d += float64(v2)
			d += float64(v3)
			d += float64(v4)
			tested := !(d < minDepth) // NaN depth passes, as in the scalar sweep

			skip := false
			if valid {
				code := refc[b*screenLanes+lane]
				if !code.IsConcrete() {
					skip = true // reference N: isSNP is always false
				} else {
					// prescreenSkip's m and b on the raw float32s:
					// conversion is monotone and exact, so every compare
					// matches the scalar screen's float64 version.
					r := int(code)
					m := planes[r][pos]
					if v4 > m {
						m = v4
					}
					var bmax float32
					if r != 0 && v0 > bmax {
						bmax = v0
					}
					if r != 1 && v1 > bmax {
						bmax = v1
					}
					if r != 2 && v2 > bmax {
						bmax = v2
					}
					if r != 3 && v3 > bmax {
						bmax = v3
					}
					if bmax < m {
						switch {
						case !diploid:
							skip = true
						case bmax == 0:
							skip = true
						default:
							// Identical floats, identical strict compare
							// as the scalar screen's het-demotion clause.
							skip = hetOn && float64(bmax)/d < hetFrac
						}
					}
				}
			}
			bit := uint8(1) << lane
			if tested {
				testedM |= bit
			}
			if tested && !skip {
				keepM |= bit
			}
			if valid {
				validM |= bit
			}
		}
		out[b*screenMaskBytes+0] = testedM
		out[b*screenMaskBytes+1] = keepM
		out[b*screenMaskBytes+2] = validM
	}
}

// collectRangeVector is CollectRange's plane-streaming body: classify
// whole lane-blocks through prescreenBlocks, gather survivors into
// dense batches for lrt.TestBatch, and fall back to the scalar
// per-position code only for the sub-block tail. Returns the
// candidates in genome order plus the tested and screened counts;
// on error the counts cover exactly the positions the scalar sweep
// would have processed before failing.
func collectRangeVector(ref *genome.Reference, fz *genome.Frozen, offset, from, to int, cfg *Config) ([]Candidate, int, int64, error) {
	planes, ok := fz.PlaneWindow(0, fz.Len())
	if !ok {
		// vectorEligible guarantees NORM; an impossible window is a
		// programming error, not a user input — fail loudly.
		panic("snp: vector sweep on a plane-less frozen view")
	}
	refSeq := ref.Seq()
	var (
		candidates []Candidate
		tested     int
		screened   int64
	)

	// Dense survivor batch for the lane-batched LRT.
	var (
		batchZ [lrtBatchSize]lrt.Vector
		batchG [lrtBatchSize]int
		batchD [lrtBatchSize]float64
		batchR [lrtBatchSize]lrt.Result
		nb     int
	)
	flush := func() error {
		if nb == 0 {
			return nil
		}
		if _, err := lrt.TestBatch(batchZ[:nb], cfg.Ploidy, batchR[:nb]); err != nil {
			// Unreachable for screen-validated vectors; surfaced verbatim
			// if a kernel ever mis-classifies.
			return err
		}
		for i := 0; i < nb; i++ {
			tested++
			g := batchG[i]
			contig, local, err := ref.Locate(g)
			if err != nil {
				// Inter-contig spacer positions are not callable.
				continue
			}
			res := &batchR[i]
			candidates = append(candidates, Candidate{
				Call: Call{
					Contig:    contig,
					Pos:       local,
					GlobalPos: g,
					Ref:       refSeq[g],
					Allele:    res.Top,
					Allele2:   res.Top,
					Het:       res.Heterozygous,
					Stat:      res.Stat,
					PValue:    res.PValue,
					Depth:     batchD[i],
				},
				Second:        res.Second,
				MinorFraction: res.MinorFraction,
			})
		}
		nb = 0
		return nil
	}
	// gather re-reads a survivor's five plane values through the scalar
	// sweep's exact conversion and summation.
	gather := func(g int) (lrt.Vector, float64) {
		pos := g - offset
		var z lrt.Vector
		for k := 0; k < dna.NumChannels; k++ {
			z[k] = float64(planes[k][pos])
		}
		depth := 0.0
		for _, x := range z {
			depth += x
		}
		return z, depth
	}

	n := to - from
	nBlocks := n / screenLanes
	var masks [screenTileBlocks * screenMaskBytes]uint8
	for t0 := 0; t0 < nBlocks; t0 += screenTileBlocks {
		tb := nBlocks - t0
		if tb > screenTileBlocks {
			tb = screenTileBlocks
		}
		g0 := from + t0*screenLanes
		prescreenBlocks(&planes, g0-offset, refSeq[g0:g0+tb*screenLanes],
			masks[:tb*screenMaskBytes], tb, cfg.MinDepth, cfg.MinHetMinorFraction, cfg.Ploidy == lrt.Diploid)
		for b := 0; b < tb; b++ {
			testedM := masks[b*screenMaskBytes+0]
			keepM := masks[b*screenMaskBytes+1]
			validM := masks[b*screenMaskBytes+2]
			if keepM == 0 {
				// The common all-screened block: nothing survives, count
				// in bulk. No keep lane means no error is possible here.
				sc := bits.OnesCount8(testedM)
				tested += sc
				screened += int64(sc)
				continue
			}
			// A block with survivors walks its lanes in genome order, so
			// an error's partial Stats match the scalar sweep exactly.
			for lane := 0; lane < screenLanes; lane++ {
				bit := uint8(1) << lane
				if testedM&bit == 0 {
					continue
				}
				if keepM&bit == 0 {
					// Screened: tested but provably uncallable.
					tested++
					screened++
					continue
				}
				g := g0 + b*screenLanes + lane
				if validM&bit == 0 {
					// Invalid vector: drain the pending (earlier) batch so
					// Stats match the scalar sweep at the error position,
					// then surface lrt.Test's own validation error.
					if err := flush(); err != nil {
						return nil, tested, screened, err
					}
					z, _ := gather(g)
					if _, err := lrt.Test(z, cfg.Ploidy); err != nil {
						return nil, tested, screened, err
					}
					// A "valid after all" lane means the kernels disagree
					// with lrt's validation — impossible by construction.
					panic("snp: screen flagged a vector lrt.Test accepts")
				}
				z, depth := gather(g)
				batchZ[nb], batchG[nb], batchD[nb] = z, g, depth
				nb++
				if nb == lrtBatchSize {
					if err := flush(); err != nil {
						return nil, tested, screened, err
					}
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, tested, screened, err
	}

	// Sub-block tail: the scalar per-position path, byte for byte.
	for g := from + nBlocks*screenLanes; g < to; g++ {
		v := fz.Vector(g - offset)
		var depth float64
		for _, x := range v {
			depth += x
		}
		if depth < cfg.MinDepth {
			continue
		}
		refBase := refSeq[g]
		if prescreenSkip(v, depth, refBase, cfg) {
			tested++
			screened++
			continue
		}
		res, err := lrt.Test(v, cfg.Ploidy)
		if err != nil {
			return nil, tested, screened, err
		}
		tested++
		contig, local, err := ref.Locate(g)
		if err != nil {
			continue
		}
		candidates = append(candidates, Candidate{
			Call: Call{
				Contig:    contig,
				Pos:       local,
				GlobalPos: g,
				Ref:       refBase,
				Allele:    res.Top,
				Allele2:   res.Top,
				Het:       res.Heterozygous,
				Stat:      res.Stat,
				PValue:    res.PValue,
				Depth:     depth,
			},
			Second:        res.Second,
			MinorFraction: res.MinorFraction,
		})
	}
	return candidates, tested, screened, nil
}
