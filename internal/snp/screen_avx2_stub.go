//go:build !amd64

package snp

import "gnumap/internal/dna"

// screenAVX2 is always false off amd64: the generic prescreen loop is
// the only kernel.
const screenAVX2 = false

// prescreenBlocksSIMD reports false so the dispatcher falls back to
// prescreenBlocksGeneric.
func prescreenBlocksSIMD(planes *[dna.NumChannels][]float32, start int, refc []dna.Code, out []uint8, blocks int, minDepth, hetFrac float64, diploid bool) bool {
	return false
}
