package snp

import (
	"encoding/binary"
	"math"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
)

// fuzzBlockBytes encodes one 8-lane screen block for the fuzzer: 8
// lanes × 5 float32 channel values, 8 reference code bytes, one config
// byte (bit 0 diploid, bit 1 disables the het filter, bit 2 disables
// the depth filter).
const fuzzBlockBytes = screenLanes*dna.NumChannels*4 + screenLanes + 1

// encodeFuzzBlock packs lane vectors, codes, and a config byte into
// the fuzz input format; used to seed the corpus with the scalar
// prescreen property test's vector shapes.
func encodeFuzzBlock(lanes [screenLanes][dna.NumChannels]float32, codes [screenLanes]byte, cfgBits byte) []byte {
	data := make([]byte, 0, fuzzBlockBytes)
	for lane := range lanes {
		for _, v := range lanes[lane] {
			data = binary.LittleEndian.AppendUint32(data, math.Float32bits(v))
		}
	}
	data = append(data, codes[:]...)
	return append(data, cfgBits)
}

// FuzzPrescreenVector drives one arbitrary 8-lane block through the
// scalar prescreen, the generic block kernel, and (when dispatched)
// the AVX2 kernel, asserting lane-exact mask equality — and, as a
// separately stated direction, that the vectorized screen never skips
// a position the scalar screen keeps: a vector-side false "keep" only
// costs an extra lrt.Test, but a false "skip" would silently change
// the tested family.
func FuzzPrescreenVector(f *testing.F) {
	// Corpus: the scalar prescreen property test's trial shapes —
	// zeros, small-integer ties, ref-dominant, gap-dominant, invalid
	// channels, thin coverage — plus N references and signed zeros.
	flat := func(x float32) (v [dna.NumChannels]float32) {
		for k := range v {
			v[k] = x
		}
		return v
	}
	var zeros [screenLanes][dna.NumChannels]float32
	acgt := [screenLanes]byte{0, 1, 2, 3, 0, 1, 2, 3}
	f.Add(encodeFuzzBlock(zeros, acgt, 1))
	f.Add(encodeFuzzBlock([screenLanes][dna.NumChannels]float32{
		flat(1), flat(2), {1, 2, 1, 2, 0}, {2, 2, 2, 2, 2},
		{8, 0.5, 0.5, 0.5, 0.25}, {0.5, 8, 0.5, 0.5, 0.25},
		{0.5, 0.5, 0.5, 0.5, 9}, {0.25, 0.25, 0, 0, 0},
	}, acgt, 1))
	f.Add(encodeFuzzBlock([screenLanes][dna.NumChannels]float32{
		{float32(math.NaN()), 1, 1, 1, 1}, {-1, 2, 2, 2, 2},
		{float32(math.Inf(1)), 1, 1, 1, 1}, {1, 1, 1, 1, float32(math.Inf(-1))},
		{float32(math.Copysign(0, -1)), 0, 0, 0, 0}, flat(0.1),
		{3, 1, 0.74, 0, 0}, {3, 1, 0.76, 0, 0},
	}, [screenLanes]byte{4, 0, 4, 1, 2, 3, 0, 0}, 1))
	f.Add(encodeFuzzBlock([screenLanes][dna.NumChannels]float32{
		flat(1), flat(1), flat(1), flat(1), flat(1), flat(1), flat(1), flat(1),
	}, [screenLanes]byte{4, 4, 4, 4, 7, 9, 255, 0}, 0))
	f.Add(encodeFuzzBlock(zeros, acgt, 2))
	f.Add(encodeFuzzBlock(zeros, acgt, 4))
	f.Add(encodeFuzzBlock(zeros, acgt, 7))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < fuzzBlockBytes {
			t.Skip()
		}
		cfg := Config{}
		cfgBits := data[fuzzBlockBytes-1]
		if cfgBits&1 != 0 {
			cfg.Ploidy = lrt.Diploid
		}
		if cfgBits&2 != 0 {
			cfg.MinHetMinorFraction = -1
		}
		if cfgBits&4 != 0 {
			cfg.MinDepth = -1
		}
		cfg = cfg.withDefaults()

		var planes [dna.NumChannels][]float32
		for k := range planes {
			planes[k] = make([]float32, screenLanes)
		}
		for lane := 0; lane < screenLanes; lane++ {
			for k := 0; k < dna.NumChannels; k++ {
				bits := binary.LittleEndian.Uint32(data[(lane*dna.NumChannels+k)*4:])
				planes[k][lane] = math.Float32frombits(bits)
			}
		}
		refc := make([]dna.Code, screenLanes)
		for lane := range refc {
			refc[lane] = dna.Code(data[screenLanes*dna.NumChannels*4+lane])
		}

		// The scalar sweep's per-lane decisions, from its own code path.
		var wantT, wantK, wantV uint8
		for lane := 0; lane < screenLanes; lane++ {
			var v genome.Vec
			for k := 0; k < dna.NumChannels; k++ {
				v[k] = float64(planes[k][lane])
			}
			var depth float64
			for _, x := range v {
				depth += x
			}
			valid := true
			for _, x := range v {
				if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
					valid = false
				}
			}
			bit := uint8(1) << lane
			if valid {
				wantV |= bit
			}
			if depth < cfg.MinDepth {
				continue
			}
			wantT |= bit
			if !prescreenSkip(v, depth, refc[lane], &cfg) {
				wantK |= bit
			}
		}

		diploid := cfg.Ploidy == lrt.Diploid
		var generic [screenMaskBytes]uint8
		prescreenBlocksGeneric(&planes, 0, refc, generic[:], 1, cfg.MinDepth, cfg.MinHetMinorFraction, diploid)
		gotT, gotK, gotV := generic[0], generic[1], generic[2]

		// Directional conservativeness first: a scalar-kept lane must
		// survive the vectorized screen (keep ⊇ scalar keep).
		if missed := wantK &^ gotK; missed != 0 {
			t.Fatalf("vector screen skips scalar-kept lanes %08b (cfg %03b)", missed, cfgBits)
		}
		// And in fact the direction is an equality: the kernels make
		// the scalar decisions bit for bit.
		if gotT != wantT || gotK != wantK || gotV != wantV {
			t.Fatalf("generic masks (%08b,%08b,%08b), scalar (%08b,%08b,%08b) (cfg %03b)",
				gotT, gotK, gotV, wantT, wantK, wantV, cfgBits)
		}

		var simd [screenMaskBytes]uint8
		if prescreenBlocksSIMD(&planes, 0, refc, simd[:], 1, cfg.MinDepth, cfg.MinHetMinorFraction, diploid) {
			if simd != generic {
				t.Fatalf("AVX2 masks %08b, generic %08b (cfg %03b)", simd, generic, cfgBits)
			}
		}
	})
}
