// Package obs is the pipeline's observability substrate: a
// stdlib-only metrics registry of atomic counters, gauges, and
// fixed-bucket latency histograms, with mergeable snapshots so a
// distributed run can aggregate every rank's metrics at the root into
// one report (report.go).
//
// Design constraints, in order:
//
//  1. Hot-path safety: Counter.Add and Histogram.Observe are single
//     atomic operations (plus a branchless bucket search); no locks,
//     no allocation. The registry lock is only taken when *resolving*
//     a metric by name, which instrumented code does once and caches.
//  2. Nil tolerance: every method is a no-op on a nil receiver, so
//     un-instrumented runs (Registry pointer left nil) pay only a nil
//     check — call sites need no conditionals.
//  3. Mergeability: snapshots are plain data (maps of int64/float64)
//     that gob- and JSON-serialize as-is, and merge by summation, so
//     per-rank registries gathered at rank 0 collapse into one global
//     view. Histogram bounds are part of the snapshot and must match
//     to merge — mismatches are configuration bugs and fail loudly.
//
// Naming convention: dot-separated lowercase paths, coarse subsystem
// first — "map.align.seconds", "comm.send.bytes", "call.tested". The
// ".seconds" suffix marks duration histograms, ".bytes" byte counters.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ProcessRank tags a snapshot with process-wide (rank-independent)
// metrics — file I/O, setup — as opposed to a cluster rank's registry.
// Merged snapshots also carry it.
const ProcessRank = -1

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 level (a "last observed
// value": queue depth, memory footprint, band width). Gauges merge by
// summation — for per-rank resource gauges (bytes held, goroutines)
// the cluster-wide total is the meaningful aggregate.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observation v lands in the
// first bucket whose upper bound is >= v, or the overflow bucket. The
// bounds are fixed at creation so snapshots from different ranks merge
// bucket-by-bucket.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	total  atomic.Int64
	sumBts atomic.Uint64 // float64 bits of the running sum (CAS loop)
}

// DurationBuckets is the default latency bucket ladder: powers of 4
// from 1 µs to ~17 s. Thirteen bounds cover seed lookups (~µs) through
// whole cluster phases (~s) with <= 2x relative error per bucket pair.
var DurationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
	1.024e-3, 4.096e-3, 16.384e-3, 65.536e-3, 262.144e-3,
	1.048576, 4.194304, 16.777216,
}

// CountBuckets is the default ladder for small-count distributions
// (candidates per read, hits per seed): 0, then powers of two to 4096.
var CountBuckets = []float64{
	0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBts.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBts.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBts.Load())
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid
// "observability off" value: every method returns a nil metric whose
// operations are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry collects process-wide metrics (file I/O, setup) that
// have no natural per-rank owner.
var defaultRegistry = NewRegistry()

// Default returns the shared process-wide registry. Library code with
// no registry plumbed in (file I/O) records here; the CLI folds it
// into the final report as the ProcessRank snapshot.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Bounds must be ascending; a later call with
// different bounds returns the existing histogram (first creation
// wins), so resolve histograms from one place per name.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named duration histogram (DurationBuckets bounds).
func (r *Registry) Timer(name string) *Histogram {
	return r.Histogram(name, DurationBuckets)
}

// StartTimer starts a stage timer: the returned stop function records
// the elapsed time into the named duration histogram. For coarse
// stages (whole-file I/O, a calling pass); hot paths should resolve
// the histogram once and call ObserveDuration directly.
func (r *Registry) StartTimer(name string) func() {
	if r == nil {
		return func() {}
	}
	h := r.Timer(name)
	t0 := time.Now()
	return func() { h.ObserveDuration(time.Since(t0)) }
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds; Counts has one
	// entry per bound plus the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the mean observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile approximates the q-quantile (0 < q < 1) by linear
// interpolation within the containing bucket. The overflow bucket
// reports its lower bound (the estimate is then a floor).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < target || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		if i >= len(h.Bounds) {
			return lo
		}
		hi := h.Bounds[i]
		frac := (target - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	if n := len(h.Bounds); n > 0 {
		return h.Bounds[n-1]
	}
	return 0
}

// Snapshot is a registry's state at one moment: plain data, safe to
// serialize (gob, JSON) and to merge. Rank records which cluster rank
// produced it (ProcessRank for process-wide or merged snapshots).
type Snapshot struct {
	Rank       int                          `json:"rank"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state, tagged with rank.
// Concurrent-safe: per-metric reads are atomic (bucket counts and the
// sum are read independently, so a histogram snapshot taken mid-storm
// may be internally off by in-flight observations — totals are
// reconciled from the bucket counts, which are the merge substrate).
func (r *Registry) Snapshot(rank int) Snapshot {
	s := Snapshot{
		Rank:       rank,
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
			hs.Count += hs.Counts[i]
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge folds snapshots into one: counters, gauges, and histogram
// buckets sum; histograms present in several snapshots must agree on
// bounds. The merged snapshot carries ProcessRank.
func Merge(snaps ...Snapshot) (Snapshot, error) {
	out := Snapshot{
		Rank:       ProcessRank,
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			acc, ok := out.Histograms[name]
			if !ok {
				acc = HistogramSnapshot{
					Bounds: append([]float64(nil), h.Bounds...),
					Counts: make([]int64, len(h.Counts)),
				}
			}
			if !equalBounds(acc.Bounds, h.Bounds) || len(acc.Counts) != len(h.Counts) {
				return Snapshot{}, fmt.Errorf(
					"obs: histogram %q: mismatched bounds across snapshots (rank %d)", name, s.Rank)
			}
			for i, c := range h.Counts {
				acc.Counts[i] += c
			}
			acc.Count += h.Count
			acc.Sum += h.Sum
			out.Histograms[name] = acc
		}
	}
	return out, nil
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
