package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(1)
	r.Gauge("b").Set(1)
	r.Timer("c").Observe(1)
	r.Timer("c").ObserveDuration(time.Second)
	r.StartTimer("d")()
	s := r.Snapshot(3)
	if s.Rank != 3 || len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 || r.Timer("c").Count() != 0 {
		t.Fatal("nil metrics returned non-zero values")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot(0).Histograms["h"]
	want := []int64{2, 1, 1, 1}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-556.2) > 1e-9 {
		t.Fatalf("sum = %v, want 556.2", s.Sum)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("p50 = %v out of plausible range", q)
	}
	if q := s.Quantile(0.999); q != 100 {
		t.Fatalf("overflow-bucket quantile = %v, want lower bound 100", q)
	}
	if math.Abs(s.Mean()-556.2/5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

// TestConcurrentMergeSemantics hammers one registry from many
// goroutines while snapshots are taken concurrently, then checks the
// final snapshot accounts for every operation and that merging
// per-goroutine registries gives the same totals as one shared
// registry. Run under -race this is the registry's thread-safety gate.
func TestConcurrentMergeSemantics(t *testing.T) {
	const goroutines = 8
	const perG = 2000

	shared := NewRegistry()
	perGoroutine := make([]*Registry, goroutines)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotter: must not race with writers.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				shared.Snapshot(0)
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		perGoroutine[g] = NewRegistry()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := perGoroutine[g]
			for i := 0; i < perG; i++ {
				v := float64(i%7) * 1e-4
				for _, r := range []*Registry{shared, own} {
					r.Counter("ops").Inc()
					r.Timer("lat.seconds").Observe(v)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)

	want := int64(goroutines * perG)
	final := shared.Snapshot(0)
	if final.Counters["ops"] != want {
		t.Fatalf("shared ops = %d, want %d", final.Counters["ops"], want)
	}
	if final.Histograms["lat.seconds"].Count != want {
		t.Fatalf("shared hist count = %d, want %d", final.Histograms["lat.seconds"].Count, want)
	}

	snaps := make([]Snapshot, goroutines)
	for g := range perGoroutine {
		snaps[g] = perGoroutine[g].Snapshot(g)
	}
	merged, err := Merge(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Counters["ops"] != want {
		t.Fatalf("merged ops = %d, want %d", merged.Counters["ops"], want)
	}
	mh := merged.Histograms["lat.seconds"]
	sh := final.Histograms["lat.seconds"]
	if mh.Count != sh.Count || math.Abs(mh.Sum-sh.Sum) > 1e-6 {
		t.Fatalf("merged hist (%d, %v) != shared hist (%d, %v)", mh.Count, mh.Sum, sh.Count, sh.Sum)
	}
	for i := range mh.Counts {
		if mh.Counts[i] != sh.Counts[i] {
			t.Fatalf("bucket %d: merged %d != shared %d", i, mh.Counts[i], sh.Counts[i])
		}
	}
}

func TestMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Histogram("h", []float64{1, 2}).Observe(1)
	b.Histogram("h", []float64{1, 3}).Observe(1)
	if _, err := Merge(a.Snapshot(0), b.Snapshot(1)); err == nil {
		t.Fatal("merge of mismatched bounds succeeded")
	}
}

func TestMergeSumsGauges(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("mem").Set(10)
	b.Gauge("mem").Set(32)
	m, err := Merge(a.Snapshot(0), b.Snapshot(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Gauges["mem"] != 42 {
		t.Fatalf("merged gauge = %v, want 42", m.Gauges["mem"])
	}
}

func TestReportJSONRoundTripAndValidate(t *testing.T) {
	r0, r1 := NewRegistry(), NewRegistry()
	r0.Counter("map.mapped").Add(7)
	r0.Timer("map.read.seconds").Observe(0.01)
	r1.Counter("map.mapped").Add(5)
	r1.Timer("map.read.seconds").Observe(0.02)
	rep, err := NewReport([]Snapshot{r0.Snapshot(0), r1.Snapshot(1)}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReportJSON(buf.Bytes()); err != nil {
		t.Fatalf("fresh report failed validation: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Merged.Counters["map.mapped"] != 12 {
		t.Fatalf("round-tripped merged counter = %d, want 12", back.Merged.Counters["map.mapped"])
	}
	if len(back.DeadRanks) != 1 || back.DeadRanks[0] != 2 {
		t.Fatalf("dead ranks = %v, want [2]", back.DeadRanks)
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "map.read.seconds") || !strings.Contains(text.String(), "DEAD ranks [2]") {
		t.Fatalf("text summary missing expected content:\n%s", text.String())
	}
}

func TestValidateReportJSONRejectsCorruption(t *testing.T) {
	r := NewRegistry()
	r.Timer("t.seconds").Observe(0.5)
	rep, err := NewReport([]Snapshot{r.Snapshot(0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		break_ func(*Report)
	}{
		{"no-ranks", func(r *Report) { r.Ranks = nil }},
		{"no-timestamp", func(r *Report) { r.Generated = "" }},
		{"bad-timestamp", func(r *Report) { r.Generated = "yesterday" }},
		{"dup-rank", func(r *Report) { r.Ranks = append(r.Ranks, r.Ranks[0]) }},
		{"dead-and-reporting", func(r *Report) { r.DeadRanks = []int{0} }},
		{"hist-shape", func(r *Report) {
			h := r.Ranks[0].Histograms["t.seconds"]
			h.Counts = h.Counts[:1]
			r.Ranks[0].Histograms["t.seconds"] = h
		}},
		{"hist-total", func(r *Report) {
			h := r.Merged.Histograms["t.seconds"]
			h.Count += 3
			r.Merged.Histograms["t.seconds"] = h
		}},
	}
	for _, tc := range cases {
		var rep2 Report
		if err := json.Unmarshal(buf.Bytes(), &rep2); err != nil {
			t.Fatal(err)
		}
		tc.break_(&rep2)
		data, err := json.Marshal(&rep2)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateReportJSON(data); err == nil {
			t.Errorf("%s: corrupted report passed validation", tc.name)
		}
	}
	if err := ValidateReportJSON([]byte(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown fields passed validation")
	}
}
