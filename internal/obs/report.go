package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Report is the end-of-run metrics artifact: every rank's snapshot,
// the ranks that died mid-run (their metrics are absent — the report
// is still complete over the survivors), and the merged global view.
// This is what -metrics-out serializes.
type Report struct {
	// Generated is the RFC3339 UTC creation time.
	Generated string `json:"generated"`
	// Ranks holds one snapshot per reporting scope: cluster ranks
	// (Rank >= 0) and optionally a ProcessRank snapshot for
	// rank-independent metrics (file I/O).
	Ranks []Snapshot `json:"ranks"`
	// DeadRanks lists ranks that were lost during the run and could
	// not report; empty on healthy runs.
	DeadRanks []int `json:"dead_ranks"`
	// Merged is the sum over Ranks.
	Merged Snapshot `json:"merged"`
}

// NewReport merges the given snapshots into a timestamped report.
// dead may be nil; it is normalized to a non-nil sorted slice so the
// JSON schema is stable.
func NewReport(snaps []Snapshot, dead []int) (*Report, error) {
	merged, err := Merge(snaps...)
	if err != nil {
		return nil, err
	}
	d := append([]int(nil), dead...)
	if d == nil {
		d = []int{}
	}
	sort.Ints(d)
	return &Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Ranks:     snaps,
		DeadRanks: d,
		Merged:    merged,
	}, nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteText renders the human summary: the merged stage-timer table
// (count, mean, p50, p99, total), the merged counters, and the
// per-rank health line.
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "metrics (%d rank snapshot(s)", len(r.Ranks))
	if len(r.DeadRanks) > 0 {
		fmt.Fprintf(bw, ", DEAD ranks %v", r.DeadRanks)
	}
	fmt.Fprintf(bw, ")\n")
	if len(r.Merged.Histograms) > 0 {
		fmt.Fprintf(bw, "%-28s %12s %12s %12s %12s %12s\n",
			"stage", "count", "mean", "p50", "p99", "total")
		for _, name := range sortedKeys(r.Merged.Histograms) {
			h := r.Merged.Histograms[name]
			fmt.Fprintf(bw, "%-28s %12d %12s %12s %12s %12s\n",
				name, h.Count,
				fmtSeconds(h.Mean()), fmtSeconds(h.Quantile(0.5)),
				fmtSeconds(h.Quantile(0.99)), fmtSeconds(h.Sum))
		}
	}
	if len(r.Merged.Counters) > 0 {
		fmt.Fprintf(bw, "%-28s %12s\n", "counter", "value")
		for _, name := range sortedKeys(r.Merged.Counters) {
			fmt.Fprintf(bw, "%-28s %12d\n", name, r.Merged.Counters[name])
		}
	}
	for _, name := range sortedKeys(r.Merged.Gauges) {
		fmt.Fprintf(bw, "%-28s %12.3g\n", name, r.Merged.Gauges[name])
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtSeconds renders a duration-in-seconds with an adaptive unit.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// ValidateReportJSON schema-checks a serialized report: required
// fields present, histogram bucket arrays shaped bounds+1 with
// internally consistent totals, rank tags unique, and the merged
// counters covering every per-rank counter. Used by the CI smoke run
// so a refactor cannot silently ship a malformed metrics.json.
func ValidateReportJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("obs: report does not match schema: %w", err)
	}
	if rep.Generated == "" {
		return fmt.Errorf("obs: report missing generated timestamp")
	}
	if _, err := time.Parse(time.RFC3339, rep.Generated); err != nil {
		return fmt.Errorf("obs: bad generated timestamp: %w", err)
	}
	if len(rep.Ranks) == 0 {
		return fmt.Errorf("obs: report has no rank snapshots")
	}
	seen := make(map[int]bool)
	for _, s := range rep.Ranks {
		if seen[s.Rank] {
			return fmt.Errorf("obs: duplicate snapshot for rank %d", s.Rank)
		}
		seen[s.Rank] = true
		if err := validateSnapshot(s); err != nil {
			return fmt.Errorf("obs: rank %d: %w", s.Rank, err)
		}
	}
	for _, d := range rep.DeadRanks {
		if seen[d] {
			return fmt.Errorf("obs: rank %d is both dead and reporting", d)
		}
	}
	if err := validateSnapshot(rep.Merged); err != nil {
		return fmt.Errorf("obs: merged: %w", err)
	}
	for _, s := range rep.Ranks {
		for name := range s.Counters {
			if _, ok := rep.Merged.Counters[name]; !ok {
				return fmt.Errorf("obs: merged report missing counter %q from rank %d", name, s.Rank)
			}
		}
	}
	return nil
}

func validateSnapshot(s Snapshot) error {
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("histogram %q: %d counts for %d bounds", name, len(h.Counts), len(h.Bounds))
		}
		var total int64
		for i, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("histogram %q: negative count in bucket %d", name, i)
			}
			total += c
		}
		if total != h.Count {
			return fmt.Errorf("histogram %q: bucket counts sum to %d, count says %d", name, total, h.Count)
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return fmt.Errorf("histogram %q: bounds not ascending at %d", name, i)
			}
		}
	}
	return nil
}
