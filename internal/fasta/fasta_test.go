package fasta

import (
	"bytes"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"gnumap/internal/dna"
)

func TestReadSingleRecord(t *testing.T) {
	in := ">chr1 test chromosome\nACGT\nACGT\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "chr1" || r.Description != "test chromosome" {
		t.Errorf("header parsed as %q/%q", r.Name, r.Description)
	}
	if r.Seq.String() != "ACGTACGT" {
		t.Errorf("seq = %q, want ACGTACGT", r.Seq.String())
	}
}

func TestReadMultiRecord(t *testing.T) {
	in := ">a\nAC\nGT\n>b desc here\nTTTT\n\n>c\nNN\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Seq.String() != "ACGT" || recs[1].Seq.String() != "TTTT" || recs[2].Seq.String() != "NN" {
		t.Errorf("bodies wrong: %q %q %q", recs[0].Seq, recs[1].Seq, recs[2].Seq)
	}
	if recs[1].Description != "desc here" {
		t.Errorf("description = %q", recs[1].Description)
	}
}

func TestReadCRLFAndNoTrailingNewline(t *testing.T) {
	in := ">x\r\nACGT\r\nAC"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Seq.String() != "ACGTAC" {
		t.Errorf("seq = %q, want ACGTAC", recs[0].Seq.String())
	}
}

func TestReadLowercaseAndAmbiguity(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(">x\nacgtRY\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Seq.String() != "ACGTNN" {
		t.Errorf("seq = %q, want ACGTNN", recs[0].Seq.String())
	}
}

func TestErrorCases(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no leading header", "ACGT\n>x\nAC\n"},
		{"empty name", "> \nACGT\n"},
		{"invalid base", ">x\nAC!T\n"},
	}
	for _, c := range cases {
		if _, err := ReadAll(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty input: recs=%v err=%v", recs, err)
	}
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next on empty = %v, want EOF", err)
	}
	// Next after EOF stays EOF.
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("second Next = %v, want EOF", err)
	}
}

func TestEmptyBodyRecord(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(">x\n>y\nAC\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(recs[0].Seq) != 0 || recs[1].Seq.String() != "AC" {
		t.Errorf("empty-body handling wrong: %+v", recs)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	in := []*Record{
		{Name: "a", Description: "first", Seq: mustSeq(t, "ACGTACGTACGT")},
		{Name: "b", Seq: mustSeq(t, "TT")},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Width = 5
	for _, rec := range in {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := ">a first\nACGTA\nCGTAC\nGT\n>b\nTT\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Seq.String() != in[0].Seq.String() || back[1].Seq.String() != in[1].Seq.String() {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ref.fa"
	recs := []*Record{{Name: "chr", Seq: mustSeq(t, "ACGTN")}}
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Seq.String() != "ACGTN" {
		t.Errorf("file round trip mismatch: %+v", back)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(t.TempDir() + "/nope.fa"); err == nil {
		t.Error("expected error for missing file")
	}
}

func mustSeq(t *testing.T, s string) dna.Seq {
	t.Helper()
	seq, err := dna.ParseSeq(s)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestGzipRoundTrip(t *testing.T) {
	path := t.TempDir() + "/ref.fa.gz"
	recs := []*Record{{Name: "z", Seq: mustSeq(t, "ACGTACGT")}}
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	// The file must actually be gzip (magic bytes).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("output is not gzip")
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Seq.String() != "ACGTACGT" {
		t.Errorf("gzip round trip mismatch: %+v", back)
	}
}

// The parser must never panic, whatever bytes arrive.
func TestParserRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, err := ReadAll(bytes.NewReader(raw))
		_ = err // any error is fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
