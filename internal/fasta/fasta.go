// Package fasta implements streaming FASTA readers and writers for the
// reference genomes consumed by the mapper. Records are parsed into
// dna.Seq code form; line wrapping, CRLF endings, blank lines, and
// multi-record files are handled. The reader is strict about sequence
// content: a non-nucleotide byte is an error, not silently dropped,
// because a corrupted reference silently truncating would invalidate
// every downstream coordinate.
package fasta

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"gnumap/internal/dna"
	"gnumap/internal/obs"
)

// Record is a single FASTA record.
type Record struct {
	// Name is the first whitespace-delimited token of the header line,
	// without the leading '>'.
	Name string
	// Description is the remainder of the header line, if any.
	Description string
	// Seq is the record body in code form.
	Seq dna.Seq
}

// Reader streams records from a FASTA file.
type Reader struct {
	br   *bufio.Reader
	line int
	// pendingHeader holds the header line of the next record once the
	// previous record body has been fully consumed.
	pendingHeader string
	started       bool
	done          bool
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF after the last one. Any
// format violation is returned as a non-EOF error naming the line.
func (r *Reader) Next() (*Record, error) {
	if r.done {
		return nil, io.EOF
	}
	header, err := r.nextHeader()
	if err != nil {
		return nil, err
	}
	rec := &Record{}
	rec.Name, rec.Description = splitHeader(header)
	if rec.Name == "" {
		return nil, fmt.Errorf("fasta: line %d: empty record name", r.line)
	}

	var body []byte
	for {
		line, err := r.readLine()
		if err == io.EOF {
			r.done = true
			break
		}
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			r.pendingHeader = string(line)
			break
		}
		body = append(body, line...)
	}
	seq, err := dna.ParseSeqBytes(body)
	if err != nil {
		return nil, fmt.Errorf("fasta: record %q: %v", rec.Name, err)
	}
	rec.Seq = seq
	return rec, nil
}

// nextHeader returns the '>' header line beginning the next record.
func (r *Reader) nextHeader() (string, error) {
	if r.pendingHeader != "" {
		h := r.pendingHeader
		r.pendingHeader = ""
		return h, nil
	}
	for {
		line, err := r.readLine()
		if err == io.EOF {
			r.done = true
			return "", io.EOF
		}
		if err != nil {
			return "", err
		}
		if len(line) == 0 {
			continue
		}
		if line[0] != '>' {
			if !r.started {
				return "", fmt.Errorf("fasta: line %d: file does not start with '>'", r.line)
			}
			return "", fmt.Errorf("fasta: line %d: sequence data outside a record", r.line)
		}
		r.started = true
		return string(line), nil
	}
}

// readLine reads one line, trimming the trailing newline and any CR.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("fasta: read: %v", err)
	}
	r.line++
	line = bytes.TrimRight(line, "\r\n")
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("fasta: read: %v", err)
	}
	return line, nil
}

// splitHeader splits a '>' header into name and description.
func splitHeader(h string) (name, desc string) {
	h = strings.TrimPrefix(h, ">")
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

// ReadAll parses every record from r.
func ReadAll(r io.Reader) ([]*Record, error) {
	fr := NewReader(r)
	var recs []*Record
	for {
		rec, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}

// ReadFile parses every record from the named file. Files ending in
// .gz are transparently decompressed. Wall time and volume land in the
// process-wide registry as io.fasta.read.{seconds,records,bases}.
func ReadFile(path string) ([]*Record, error) {
	defer obs.Default().StartTimer("io.fasta.read.seconds")()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("fasta: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	recs, err := ReadAll(r)
	if err == nil {
		bases := 0
		for _, rec := range recs {
			bases += len(rec.Seq)
		}
		obs.Default().Counter("io.fasta.read.records").Add(int64(len(recs)))
		obs.Default().Counter("io.fasta.read.bases").Add(int64(bases))
	}
	return recs, err
}

// Writer writes FASTA records with a fixed line width.
type Writer struct {
	w     *bufio.Writer
	Width int // sequence line width; defaults to 70 when zero
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), Width: 70}
}

// Write emits one record.
func (w *Writer) Write(rec *Record) error {
	width := w.Width
	if width <= 0 {
		width = 70
	}
	if _, err := w.w.WriteString(">" + rec.Name); err != nil {
		return err
	}
	if rec.Description != "" {
		if _, err := w.w.WriteString(" " + rec.Description); err != nil {
			return err
		}
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	body := rec.Seq.Bytes()
	for off := 0; off < len(body); off += width {
		end := off + width
		if end > len(body) {
			end = len(body)
		}
		if _, err := w.w.Write(body[off:end]); err != nil {
			return err
		}
		if err := w.w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteFile writes all records to the named file. Files ending in .gz
// are transparently compressed. Wall time and volume land in the
// process-wide registry as io.fasta.write.{seconds,records}.
func WriteFile(path string, recs []*Record) error {
	defer obs.Default().StartTimer("io.fasta.write.seconds")()
	obs.Default().Counter("io.fasta.write.records").Add(int64(len(recs)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var out io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		out = gz
	}
	w := NewWriter(out)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
