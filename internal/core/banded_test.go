package core

import (
	"fmt"
	"math"
	"testing"

	"gnumap/internal/genome"
	"gnumap/internal/lrt"
	"gnumap/internal/phmm"
	"gnumap/internal/snp"
)

func TestEffectiveBand(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{}, 18},                                 // auto: 2*Pad(8)+2
		{Config{Pad: 12}, 26},                          // auto tracks Pad
		{Config{Band: 30}, 30},                         // explicit
		{Config{Band: -1}, 0},                          // forced full kernel
		{Config{AlignMode: phmm.Global}, 0},            // auto Global: full
		{Config{AlignMode: phmm.Global, Band: 10}, 10}, // explicit Global
	}
	for _, c := range cases {
		if got := c.cfg.withDefaults().effectiveBand(); got != c.want {
			t.Errorf("effectiveBand(%+v) = %d, want %d", c.cfg, got, c.want)
		}
	}
}

// TestBandedEngineSameSNPCalls is the acceptance gate: on the simulated
// dataset, the default band must call exactly the same SNPs as the full
// kernel (Band: -1).
func TestBandedEngineSameSNPCalls(t *testing.T) {
	p := makePipeline(t, 60000, 8, 12, 77)
	callsOf := func(band int) []snp.Call {
		t.Helper()
		eng, err := NewEngine(p.ref, Config{Band: band})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := genome.New(genome.Norm, p.ref.Len())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.MapReads(p.reads, acc, 0); err != nil {
			t.Fatal(err)
		}
		calls, _, err := snp.CallAll(p.ref, acc, snp.Config{Ploidy: lrt.Monoploid})
		if err != nil {
			t.Fatal(err)
		}
		return calls
	}
	full := callsOf(-1)
	banded := callsOf(0)
	key := func(c snp.Call) string {
		return fmt.Sprintf("%d:%v>%v/%v", c.GlobalPos, c.Ref, c.Allele, c.Allele2)
	}
	if len(full) != len(banded) {
		t.Fatalf("full kernel called %d SNPs, banded %d", len(full), len(banded))
	}
	for i := range full {
		if key(full[i]) != key(banded[i]) {
			t.Errorf("call %d differs: full %s vs banded %s", i, key(full[i]), key(banded[i]))
		}
	}
}

// TestWeightsRenormalized: after MinPosterior thresholding, the
// surviving weights must sum to 1 so a mapped read deposits exactly one
// unit of posterior mass.
func TestWeightsRenormalized(t *testing.T) {
	eng := &Engine{cfg: Config{MinPosterior: 0.05}.withDefaults()}
	// Likelihood spread chosen so the softmax gives two survivors and
	// two sub-threshold locations holding ~7% of the mass.
	locs := []location{
		{logLik: 0},
		{logLik: -0.5},
		{logLik: -3.5},
		{logLik: -3.6},
	}
	w := eng.weights(locs, nil)
	sum := 0.0
	nonzero := 0
	for _, wi := range w {
		sum += wi
		if wi > 0 {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Fatalf("weights %v: %d survivors, want 2", w, nonzero)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("surviving weights sum to %v, want 1", sum)
	}
	if w[0] <= w[1] || w[2] != 0 || w[3] != 0 {
		t.Errorf("weights %v: wrong ordering/thresholding", w)
	}

	// Buffer reuse: a second call into the same buffer must not read
	// stale state (BestHitOnly path zeroes explicitly).
	engBest := &Engine{cfg: Config{BestHitOnly: true}.withDefaults()}
	w2 := engBest.weights(locs, w)
	for i, wi := range w2 {
		want := 0.0
		if i == 0 {
			want = 1
		}
		if wi != want {
			t.Errorf("BestHitOnly reused-buffer weights[%d] = %v, want %v", i, wi, want)
		}
	}
}

// TestMapReadSteadyStateZeroAllocs verifies the zero-allocation hot
// path: after warmup, repeated mapRead+weights rounds must not allocate.
func TestMapReadSteadyStateZeroAllocs(t *testing.T) {
	p := makePipeline(t, 30000, 4, 4, 55)
	eng, err := NewEngine(p.ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.newMapper()
	if err != nil {
		t.Fatal(err)
	}
	reads := p.reads
	if len(reads) > 200 {
		reads = reads[:200]
	}
	round := func() {
		for _, rd := range reads {
			locs, err := m.mapRead(rd)
			if err != nil {
				t.Fatal(err)
			}
			m.wbuf = eng.weights(locs, m.wbuf)
		}
	}
	round() // warmup: grows arenas and scratch to the high-water mark
	avg := testing.AllocsPerRun(5, round)
	if avg > 0 {
		t.Errorf("steady-state mapRead allocates %.1f times per %d reads, want 0", avg, len(reads))
	}
}
