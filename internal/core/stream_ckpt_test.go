package core

import (
	"errors"
	"io"
	"math"
	"sync/atomic"
	"testing"

	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

type sinkRecord struct {
	consumed int64
	st       Stats
	state    []byte
}

// TestMapReadsFromCkptSinkInvariants exercises the periodic quiesce
// barrier with a sharded accumulator (the layout where a destructive
// snapshot would corrupt the run): sinks fire at the configured
// interval, consumed counts are monotone and consistent with the stats
// snapshot, and the pipeline's final result is unchanged by the
// barriers.
func TestMapReadsFromCkptSinkInvariants(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 51)
	cfg := Config{Workers: 4, Batch: 16, Queue: 2, Accum: AccumSharded}
	eng, err := NewEngine(p.ref, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Reference run without checkpointing.
	want, err := NewAccumulator(genome.Norm, p.ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSt, err := eng.MapReadsFrom(fastq.SliceSource(p.reads), want, 0)
	if err != nil {
		t.Fatal(err)
	}

	acc, err := NewAccumulator(genome.Norm, p.ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sinks []sinkRecord
	pol := &CheckpointPolicy{
		EveryReads: 100,
		Sink: func(consumed int64, st Stats, state []byte) error {
			sinks = append(sinks, sinkRecord{consumed, st, state})
			return nil
		},
	}
	gotSt, err := eng.MapReadsFromCkpt(fastq.SliceSource(p.reads), acc, 0, pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) < 2 {
		t.Fatalf("only %d checkpoints fired over %d reads at interval 100", len(sinks), len(p.reads))
	}
	var prev int64 = -1
	for i, s := range sinks {
		if s.consumed <= prev {
			t.Errorf("sink %d: consumed %d not monotone (prev %d)", i, s.consumed, prev)
		}
		prev = s.consumed
		if got := s.st.Mapped + s.st.Unmapped; got != s.consumed {
			t.Errorf("sink %d: stats account for %d reads, consumed %d", i, got, s.consumed)
		}
		if len(s.state) == 0 {
			t.Errorf("sink %d: empty state snapshot", i)
		}
	}
	if gotSt.Mapped != wantSt.Mapped || gotSt.Unmapped != wantSt.Unmapped || gotSt.Locations != wantSt.Locations {
		t.Errorf("stats diverge with checkpointing: %+v vs %+v", gotSt, wantSt)
	}
	compareAccums(t, want, acc, p.ref.Len())
}

// TestMapReadsFromCkptResumeIdentity is the resume invariant at the
// engine level: interrupt a run at a checkpoint, load the checkpoint
// state into a fresh accumulator, skip the watermark, map the rest —
// the final accumulated mass matches the uninterrupted run.
func TestMapReadsFromCkptResumeIdentity(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 53)
	cfg := Config{Workers: 4, Batch: 16, Queue: 2, Accum: AccumSharded}
	eng, err := NewEngine(p.ref, cfg)
	if err != nil {
		t.Fatal(err)
	}

	full, err := NewAccumulator(genome.Norm, p.ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullSt, err := eng.MapReadsFrom(fastq.SliceSource(p.reads), full, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: stop cooperatively after the second checkpoint.
	acc1, err := NewAccumulator(genome.Norm, p.ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last sinkRecord
	var nSinks atomic.Int64
	pol := &CheckpointPolicy{
		EveryReads: 150,
		Sink: func(consumed int64, st Stats, state []byte) error {
			last = sinkRecord{consumed, st, append([]byte(nil), state...)}
			nSinks.Add(1)
			return nil
		},
		StopRequested: func() bool { return nSinks.Load() >= 2 },
	}
	_, err = eng.MapReadsFromCkpt(fastq.SliceSource(p.reads), acc1, 0, pol)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("interrupted run returned %v, want ErrStopped", err)
	}
	if last.consumed <= 0 || last.consumed >= int64(len(p.reads)) {
		t.Fatalf("stop checkpoint at watermark %d of %d reads; dataset too small for the test", last.consumed, len(p.reads))
	}

	// Resume: fresh accumulator, load the checkpoint, skip the
	// watermark, map the remainder.
	acc2, err := NewAccumulator(genome.Norm, p.ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc2.(genome.Stateful).LoadStateBytes(last.state); err != nil {
		t.Fatal(err)
	}
	rest := p.reads[last.consumed:]
	restSt, err := eng.MapReadsFrom(fastq.SliceSource(rest), acc2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := last.st.Mapped + restSt.Mapped; got != fullSt.Mapped {
		t.Errorf("mapped %d after resume, want %d", got, fullSt.Mapped)
	}
	if got := last.st.Unmapped + restSt.Unmapped; got != fullSt.Unmapped {
		t.Errorf("unmapped %d after resume, want %d", got, fullSt.Unmapped)
	}
	compareAccums(t, full, acc2, p.ref.Len())
}

// barrierSource injects ErrCkptBarrier every interval reads.
type barrierSource struct {
	reads    []*fastq.Read
	pos      int
	interval int
	sinceBar int
}

func (s *barrierSource) Next() (*fastq.Read, error) {
	if s.sinceBar >= s.interval {
		s.sinceBar = 0
		return nil, ErrCkptBarrier
	}
	if s.pos >= len(s.reads) {
		return nil, io.EOF
	}
	rd := s.reads[s.pos]
	s.pos++
	s.sinceBar++
	return rd, nil
}

// TestMapReadsFromCkptBarrierSource drives the out-of-band barrier the
// cluster protocol uses: the source itself requests checkpoints, at
// positions that do not align with batch boundaries.
func TestMapReadsFromCkptBarrierSource(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 57)
	cfg := Config{Workers: 4, Batch: 16, Queue: 2}
	eng, err := NewEngine(p.ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewAccumulator(genome.Norm, p.ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSt, err := eng.MapReadsFrom(fastq.SliceSource(p.reads), want, 0)
	if err != nil {
		t.Fatal(err)
	}

	acc, err := NewAccumulator(genome.Norm, p.ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var consumedAt []int64
	pol := &CheckpointPolicy{
		Sink: func(consumed int64, st Stats, state []byte) error {
			consumedAt = append(consumedAt, consumed)
			return nil
		},
	}
	src := &barrierSource{reads: p.reads, interval: 37}
	gotSt, err := eng.MapReadsFromCkpt(src, acc, 0, pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(consumedAt) < 3 {
		t.Fatalf("only %d barrier checkpoints fired", len(consumedAt))
	}
	for i, c := range consumedAt {
		if want := int64((i + 1) * 37); c != want {
			t.Errorf("barrier %d fired at consumed=%d, want %d", i, c, want)
		}
	}
	if gotSt.Mapped != wantSt.Mapped || gotSt.Unmapped != wantSt.Unmapped || gotSt.Locations != wantSt.Locations {
		t.Errorf("stats diverge with barriers: %+v vs %+v", gotSt, wantSt)
	}
	compareAccums(t, want, acc, p.ref.Len())
}

// TestMapReadsFromCkptNilPolicyBarrier: a barrier from the source with
// no policy attached quietly resumes (no sink, no error).
func TestMapReadsFromCkptNilPolicyBarrier(t *testing.T) {
	p := makePipeline(t, 20000, 2, 6, 59)
	cfg := Config{Workers: 2, Batch: 8, Queue: 2}
	eng, err := NewEngine(p.ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccumulator(genome.Norm, p.ref.Len(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := &barrierSource{reads: p.reads, interval: 25}
	st, err := eng.MapReadsFromCkpt(src, acc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mapped+st.Unmapped != int64(len(p.reads)) {
		t.Errorf("accounted for %d reads, want %d", st.Mapped+st.Unmapped, len(p.reads))
	}
}

func compareAccums(t *testing.T, want, got genome.Accumulator, length int) {
	t.Helper()
	for pos := 0; pos < length; pos += 101 {
		a, b := want.Total(pos), got.Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos %d: accumulated mass %v vs %v", pos, b, a)
		}
	}
}
