package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"gnumap/internal/cluster"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

func init() {
	gob.Register(streamShard{})
}

// Streaming read-split: instead of replicating the full read slice on
// every rank and pre-splitting it (RunReadSplit), rank 0 owns the input
// stream and deals fixed-size batches round-robin to the ranks — batch
// i goes to rank i mod size, so the shard assignment is deterministic
// regardless of relative rank speed. A per-rank credit window of
// Config.Queue unacknowledged batches gives the same backpressure the
// local pipeline has: rank 0 never buffers more than Queue batches per
// remote rank plus its own (Queue + Workers)-buffer local pipeline, so
// cluster-wide resident reads stay bounded by configuration while the
// input can be arbitrarily large.
//
// Each rank feeds its arriving batches into Engine.MapReadsFrom through
// a channel-backed Source, then the ordinary read-split collective tail
// (stats Allreduce + accumulator ReduceTree) runs unchanged — so the
// streamed result is call-identical to RunReadSplit over the
// materialized stream.
//
// The fault-tolerant protocol needs replayable shards (a dead worker's
// whole shard is re-mapped elsewhere), which a stream cannot offer;
// callers with OpTimeout configured must materialize and use
// RunReadSplit. gnumap.RunClusterStream handles that fallback.

// streamShard is one dealt batch of reads (or the end-of-stream marker
// when Done is set).
type streamShard struct {
	Reads []*fastq.Read
	Done  bool
}

// Streaming tags live in the same user tag space as the FT protocol
// (1001-1003); the two paths are mutually exclusive but keep the tags
// distinct anyway.
const (
	streamShardTag = 1004
	streamAckTag   = 1005
)

// chanSource adapts a channel of read batches to a fastq.Source.
type chanSource struct {
	ch  <-chan []*fastq.Read
	cur []*fastq.Read
	pos int
}

func (s *chanSource) Next() (*fastq.Read, error) {
	for s.pos >= len(s.cur) {
		b, ok := <-s.ch
		if !ok {
			return nil, io.EOF
		}
		s.cur, s.pos = b, 0
	}
	rd := s.cur[s.pos]
	s.pos++
	return rd, nil
}

// RunReadSplitStream executes read-split mapping with the reads
// streamed from rank 0. src must be non-nil on rank 0 and is ignored
// elsewhere. The returned accumulator is the merged result at rank 0
// and nil elsewhere; Stats are global on every rank.
func RunReadSplitStream(c *cluster.Comm, ref *genome.Reference, src fastq.Source, mode genome.Mode, cfg Config) (genome.Accumulator, Stats, error) {
	var st Stats
	if c.OpTimeout() > 0 {
		return nil, st, fmt.Errorf("core: streaming read-split does not support the fault-tolerant protocol (shards are not replayable); materialize the reads and use RunReadSplit")
	}
	cfg = cfg.withDefaults()
	eng, err := NewEngine(ref, cfg)
	if err != nil {
		return nil, st, err
	}
	acc, err := NewAccumulator(mode, ref.Len(), cfg)
	if err != nil {
		return nil, st, err
	}
	var local Stats
	if c.Rank() == 0 {
		if src == nil {
			return nil, st, fmt.Errorf("core: rank 0 needs a read source")
		}
		local, err = streamDeal(c, eng, src, acc, cfg)
	} else {
		local, err = streamReceive(c, eng, acc, cfg)
	}
	if err != nil {
		return nil, st, err
	}
	// Fold worker shards before the cross-rank reduction (no-op for a
	// striped accumulator).
	combined, err := CombineAccumulator(acc, cfg.Metrics)
	if err != nil {
		return nil, st, err
	}
	return reduceReadSplit(c, combined, mode, ref.Len(), local)
}

// localPipe starts MapReadsFrom on a channel-backed source and returns
// the feed channel, a done channel, and accessors for the result.
func localPipe(eng *Engine, acc genome.Accumulator, queue int) (chan<- []*fastq.Read, <-chan struct{}, *Stats, *error) {
	ch := make(chan []*fastq.Read, queue)
	done := make(chan struct{})
	st := new(Stats)
	errp := new(error)
	go func() {
		defer close(done)
		*st, *errp = eng.MapReadsFrom(&chanSource{ch: ch}, acc, 0)
	}()
	return ch, done, st, errp
}

// streamDeal is rank 0's half: read the source, deal batches
// round-robin (keeping its own share), enforce the per-rank credit
// window, then signal end-of-stream.
func streamDeal(c *cluster.Comm, eng *Engine, src fastq.Source, acc genome.Accumulator, cfg Config) (Stats, error) {
	size := c.Size()
	queue := cfg.Queue
	localCh, mapDone, mapStats, mapErr := localPipe(eng, acc, queue)
	outstanding := make([]int, size)
	var srcErr error
	batchIdx := 0

deal:
	for {
		batch := make([]*fastq.Read, 0, cfg.Batch)
		for len(batch) < cfg.Batch {
			rd, err := src.Next()
			if err != nil {
				if err != io.EOF {
					srcErr = fmt.Errorf("core: read source: %w", err)
				}
				break
			}
			batch = append(batch, rd)
		}
		if len(batch) > 0 {
			r := batchIdx % size
			batchIdx++
			if r == 0 {
				select {
				case localCh <- batch:
				case <-mapDone:
					// The local mapper latched an error; stop dealing.
					break deal
				}
			} else {
				if outstanding[r] >= queue {
					// Credit window full: wait for this rank to finish a
					// batch before handing it another.
					if _, err := c.Recv(r, streamAckTag); err != nil {
						close(localCh)
						<-mapDone
						return Stats{}, err
					}
					outstanding[r]--
				}
				if err := c.Send(r, streamShardTag, streamShard{Reads: batch}); err != nil {
					close(localCh)
					<-mapDone
					return Stats{}, err
				}
				outstanding[r]++
			}
		}
		if srcErr != nil || len(batch) < cfg.Batch {
			break
		}
	}
	close(localCh)
	// Drain remaining credits so no worker is left with an unreceived
	// ack in flight, then release everyone.
	var commErr error
	for r := 1; r < size; r++ {
		for outstanding[r] > 0 {
			if _, err := c.Recv(r, streamAckTag); err != nil {
				commErr = err
				break
			}
			outstanding[r]--
		}
		if commErr == nil {
			if err := c.Send(r, streamShardTag, streamShard{Done: true}); err != nil {
				commErr = err
			}
		}
	}
	<-mapDone
	switch {
	case *mapErr != nil:
		return Stats{}, *mapErr
	case srcErr != nil:
		return Stats{}, srcErr
	case commErr != nil:
		return Stats{}, commErr
	}
	return *mapStats, nil
}

// streamReceive is a worker rank's half: receive batches, feed the
// local pipeline, ack each batch to open the next credit.
func streamReceive(c *cluster.Comm, eng *Engine, acc genome.Accumulator, cfg Config) (Stats, error) {
	localCh, mapDone, mapStats, mapErr := localPipe(eng, acc, cfg.Queue)
	for {
		v, err := c.Recv(0, streamShardTag)
		if err != nil {
			close(localCh)
			<-mapDone
			return Stats{}, err
		}
		sh, ok := v.(streamShard)
		if !ok {
			close(localCh)
			<-mapDone
			return Stats{}, fmt.Errorf("core: rank %d: unexpected stream payload %T", c.Rank(), v)
		}
		if sh.Done {
			break
		}
		select {
		case localCh <- sh.Reads:
		case <-mapDone:
			// Mapper latched an error; returning tears down the
			// transport, which unblocks rank 0.
			return Stats{}, *mapErr
		}
		if err := c.Send(0, streamAckTag, 1); err != nil {
			close(localCh)
			<-mapDone
			return Stats{}, err
		}
	}
	close(localCh)
	<-mapDone
	if *mapErr != nil {
		return Stats{}, *mapErr
	}
	return *mapStats, nil
}
