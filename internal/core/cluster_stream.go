package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"gnumap/internal/cluster"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

func init() {
	gob.Register(streamShard{})
	gob.Register(ckptPayload{})
}

// Streaming read-split: instead of replicating the full read slice on
// every rank and pre-splitting it (RunReadSplit), rank 0 owns the input
// stream and deals fixed-size batches round-robin to the ranks — batch
// i goes to rank i mod size, so the shard assignment is deterministic
// regardless of relative rank speed. A per-rank credit window of
// Config.Queue unacknowledged batches gives the same backpressure the
// local pipeline has: rank 0 never buffers more than Queue batches per
// remote rank plus its own (Queue + Workers)-buffer local pipeline, so
// cluster-wide resident reads stay bounded by configuration while the
// input can be arbitrarily large.
//
// Each rank feeds its arriving batches into Engine.MapReadsFrom through
// a channel-backed Source, then the ordinary read-split collective tail
// (stats Allreduce + accumulator ReduceTree) runs unchanged — so the
// streamed result is call-identical to RunReadSplit over the
// materialized stream.
//
// The fault-tolerant protocol needs replayable shards (a dead worker's
// whole shard is re-mapped elsewhere), which a stream cannot offer;
// callers with OpTimeout configured must materialize and use
// RunReadSplit. gnumap.RunClusterStream handles that fallback.

// streamShard is one dealt batch of reads, the end-of-stream marker
// (Done), or a checkpoint-round marker (Ckpt): on Ckpt the receiving
// rank quiesces its local pipeline and sends its snapshot to rank 0 on
// streamCkptTag before processing further batches. Per-(sender, tag)
// FIFO ordering guarantees the snapshot covers exactly the batches
// dealt before the marker.
type streamShard struct {
	Reads []*fastq.Read
	Done  bool
	Ckpt  bool
}

// ckptPayload is one rank's quiesced contribution to a cluster
// checkpoint round: its serialized accumulator state and its share of
// the mapping statistics so far.
type ckptPayload struct {
	State                       []byte
	Mapped, Unmapped, Locations int64
}

// Streaming tags live in the same user tag space as the FT protocol
// (1001-1003); the two paths are mutually exclusive but keep the tags
// distinct anyway.
const (
	streamShardTag = 1004
	streamAckTag   = 1005
	streamCkptTag  = 1006
)

// StreamCkpt threads durable checkpointing through a streamed
// read-split run. Rank 0 drives: every EveryReads dealt reads / Every
// wall time it broadcasts a checkpoint marker, quiesces its own
// pipeline, collects every rank's snapshot, merges them, and hands the
// cluster-wide result to Sink. Worker ranks need no configuration —
// they respond to markers unconditionally.
type StreamCkpt struct {
	// EveryReads / Every trigger a round (see CheckpointPolicy).
	EveryReads int64
	Every      time.Duration
	// Sink receives the dealt-read watermark, the global mapping stats
	// of THIS RUN, and the merged accumulator state. Runs on rank 0.
	Sink func(consumed int64, st Stats, state []byte) error
	// StopRequested, polled by rank 0 between batches, triggers a final
	// round followed by a graceful end-of-stream; the run then returns
	// ErrStopped after the normal collective tail.
	StopRequested func() bool
	// ResumeState, when non-empty, preloads rank 0's accumulator before
	// mapping (the checkpointed merged state being resumed from). The
	// final reduction folds it into the global result exactly once.
	ResumeState []byte
}

// chanSource adapts a channel of read batches to a fastq.Source.
type chanSource struct {
	ch  <-chan []*fastq.Read
	cur []*fastq.Read
	pos int
}

func (s *chanSource) Next() (*fastq.Read, error) {
	for s.pos >= len(s.cur) {
		b, ok := <-s.ch
		if !ok {
			return nil, io.EOF
		}
		if b == nil {
			// A nil batch is the in-band checkpoint barrier: the local
			// pipeline quiesces and snapshots, then keeps reading.
			return nil, ErrCkptBarrier
		}
		s.cur, s.pos = b, 0
	}
	rd := s.cur[s.pos]
	s.pos++
	return rd, nil
}

// RunReadSplitStream executes read-split mapping with the reads
// streamed from rank 0. src must be non-nil on rank 0 and is ignored
// elsewhere. The returned accumulator is the merged result at rank 0
// and nil elsewhere; Stats are global on every rank.
func RunReadSplitStream(c *cluster.Comm, ref *genome.Reference, src fastq.Source, mode genome.Mode, cfg Config) (genome.Accumulator, Stats, error) {
	return RunReadSplitStreamCkpt(c, ref, src, mode, cfg, nil)
}

// RunReadSplitStreamCkpt is RunReadSplitStream with cluster-wide
// checkpoint rounds driven by rank 0 (see StreamCkpt). A nil ck is
// exactly RunReadSplitStream. After a cooperative stop the normal
// collective tail still runs on every rank (so no rank deadlocks in
// the reduction) and rank 0 returns ErrStopped.
func RunReadSplitStreamCkpt(c *cluster.Comm, ref *genome.Reference, src fastq.Source, mode genome.Mode, cfg Config, ck *StreamCkpt) (genome.Accumulator, Stats, error) {
	var st Stats
	if c.OpTimeout() > 0 {
		return nil, st, fmt.Errorf("core: streaming read-split does not support the fault-tolerant protocol (shards are not replayable); materialize the reads and use RunReadSplit")
	}
	cfg = cfg.withDefaults()
	eng, err := NewEngine(ref, cfg)
	if err != nil {
		return nil, st, err
	}
	acc, err := NewAccumulator(mode, ref.Len(), cfg)
	if err != nil {
		return nil, st, err
	}
	var local Stats
	var stopped bool
	if c.Rank() == 0 {
		if src == nil {
			return nil, st, fmt.Errorf("core: rank 0 needs a read source")
		}
		if ck != nil && len(ck.ResumeState) > 0 {
			sf, ok := acc.(genome.Stateful)
			if !ok {
				return nil, st, fmt.Errorf("core: memory mode %v cannot load checkpoint state", mode)
			}
			if err := sf.LoadStateBytes(ck.ResumeState); err != nil {
				return nil, st, err
			}
		}
		local, stopped, err = streamDeal(c, eng, src, acc, mode, cfg, ck)
	} else {
		local, err = streamReceive(c, eng, acc, cfg)
	}
	if err != nil {
		return nil, st, err
	}
	// Fold worker shards before the cross-rank reduction (no-op for a
	// striped accumulator).
	combined, err := CombineAccumulator(acc, cfg.Metrics)
	if err != nil {
		return nil, st, err
	}
	racc, rst, err := reduceReadSplit(c, combined, mode, ref.Len(), local)
	if err == nil && stopped {
		err = ErrStopped
	}
	return racc, rst, err
}

// localPipe starts MapReadsFromCkpt on a channel-backed source and
// returns the feed channel, a done channel, and accessors for the
// result. A nil batch fed into the channel propagates as a checkpoint
// barrier to the policy's Sink.
func localPipe(eng *Engine, acc genome.Accumulator, queue int, pol *CheckpointPolicy) (chan<- []*fastq.Read, <-chan struct{}, *Stats, *error) {
	ch := make(chan []*fastq.Read, queue)
	done := make(chan struct{})
	st := new(Stats)
	errp := new(error)
	go func() {
		defer close(done)
		*st, *errp = eng.MapReadsFromCkpt(&chanSource{ch: ch}, acc, 0, pol)
	}()
	return ch, done, st, errp
}

// streamDeal is rank 0's half: read the source, deal batches
// round-robin (keeping its own share), enforce the per-rank credit
// window, run checkpoint rounds when the policy asks, then signal
// end-of-stream. The bool result reports a cooperative stop.
func streamDeal(c *cluster.Comm, eng *Engine, src fastq.Source, acc genome.Accumulator, mode genome.Mode, cfg Config, ck *StreamCkpt) (Stats, bool, error) {
	size := c.Size()
	queue := cfg.Queue
	var sinkCh chan ckptPayload
	var pol *CheckpointPolicy
	if ck != nil {
		sinkCh = make(chan ckptPayload, 1)
		pol = &CheckpointPolicy{Sink: func(consumed int64, st Stats, state []byte) error {
			sinkCh <- ckptPayload{State: state, Mapped: st.Mapped, Unmapped: st.Unmapped, Locations: st.Locations}
			return nil
		}}
	}
	localCh, mapDone, mapStats, mapErr := localPipe(eng, acc, queue, pol)
	outstanding := make([]int, size)
	var srcErr error
	batchIdx := 0
	var dealt, sinceCkpt int64
	lastCkpt := time.Now()
	stopped := false

	// round runs one cluster-wide checkpoint: marker to every worker,
	// barrier through the local pipeline, collect and merge every
	// rank's snapshot, hand the global result to the sink. FIFO per
	// (sender, tag) makes the watermark exact: every batch dealt before
	// the marker is fully accumulated in some rank's snapshot.
	round := func() error {
		for r := 1; r < size; r++ {
			if err := c.Send(r, streamShardTag, streamShard{Ckpt: true}); err != nil {
				return err
			}
		}
		select {
		case localCh <- nil:
		case <-mapDone:
			if *mapErr != nil {
				return *mapErr
			}
			return fmt.Errorf("core: local pipeline ended before checkpoint round")
		}
		var total ckptPayload
		select {
		case total = <-sinkCh:
		case <-mapDone:
			if *mapErr != nil {
				return *mapErr
			}
			return fmt.Errorf("core: local pipeline ended during checkpoint round")
		}
		merged, err := genome.New(mode, acc.Len())
		if err != nil {
			return err
		}
		if err := merged.(genome.Stateful).LoadStateBytes(total.State); err != nil {
			return err
		}
		for r := 1; r < size; r++ {
			v, err := c.Recv(r, streamCkptTag)
			if err != nil {
				return err
			}
			p, ok := v.(ckptPayload)
			if !ok {
				return fmt.Errorf("core: rank %d sent checkpoint payload %T", r, v)
			}
			tmp, err := genome.New(mode, acc.Len())
			if err != nil {
				return err
			}
			if err := tmp.(genome.Stateful).LoadStateBytes(p.State); err != nil {
				return err
			}
			if err := merged.Merge(tmp); err != nil {
				return err
			}
			total.Mapped += p.Mapped
			total.Unmapped += p.Unmapped
			total.Locations += p.Locations
		}
		state, err := merged.(genome.Stateful).State()
		if err != nil {
			return err
		}
		st := Stats{Mapped: total.Mapped, Unmapped: total.Unmapped, Locations: total.Locations}
		if err := ck.Sink(dealt, st, state); err != nil {
			return fmt.Errorf("core: checkpoint sink: %w", err)
		}
		sinceCkpt = 0
		lastCkpt = time.Now()
		return nil
	}

deal:
	for {
		if ck != nil && ck.StopRequested != nil && ck.StopRequested() {
			if err := round(); err != nil {
				close(localCh)
				<-mapDone
				return Stats{}, false, err
			}
			stopped = true
			break
		}
		batch := make([]*fastq.Read, 0, cfg.Batch)
		for len(batch) < cfg.Batch {
			rd, err := src.Next()
			if err != nil {
				if err != io.EOF {
					srcErr = fmt.Errorf("core: read source: %w", err)
				}
				break
			}
			batch = append(batch, rd)
		}
		if len(batch) > 0 {
			r := batchIdx % size
			batchIdx++
			if r == 0 {
				select {
				case localCh <- batch:
				case <-mapDone:
					// The local mapper latched an error; stop dealing.
					break deal
				}
			} else {
				if outstanding[r] >= queue {
					// Credit window full: wait for this rank to finish a
					// batch before handing it another.
					if _, err := c.Recv(r, streamAckTag); err != nil {
						close(localCh)
						<-mapDone
						return Stats{}, false, err
					}
					outstanding[r]--
				}
				if err := c.Send(r, streamShardTag, streamShard{Reads: batch}); err != nil {
					close(localCh)
					<-mapDone
					return Stats{}, false, err
				}
				outstanding[r]++
			}
			dealt += int64(len(batch))
			sinceCkpt += int64(len(batch))
		}
		if srcErr != nil || len(batch) < cfg.Batch {
			break
		}
		if ck != nil &&
			((ck.EveryReads > 0 && sinceCkpt >= ck.EveryReads) ||
				(ck.Every > 0 && time.Since(lastCkpt) >= ck.Every)) {
			if err := round(); err != nil {
				close(localCh)
				<-mapDone
				return Stats{}, false, err
			}
		}
	}
	close(localCh)
	// Drain remaining credits so no worker is left with an unreceived
	// ack in flight, then release everyone.
	var commErr error
	for r := 1; r < size; r++ {
		for outstanding[r] > 0 {
			if _, err := c.Recv(r, streamAckTag); err != nil {
				commErr = err
				break
			}
			outstanding[r]--
		}
		if commErr == nil {
			if err := c.Send(r, streamShardTag, streamShard{Done: true}); err != nil {
				commErr = err
			}
		}
	}
	<-mapDone
	switch {
	case *mapErr != nil:
		return Stats{}, false, *mapErr
	case srcErr != nil:
		return Stats{}, false, srcErr
	case commErr != nil:
		return Stats{}, false, commErr
	}
	return *mapStats, stopped, nil
}

// streamReceive is a worker rank's half: receive batches, feed the
// local pipeline, ack each batch to open the next credit. Checkpoint
// markers are handled unconditionally: quiesce the local pipeline
// through the in-band barrier, send the snapshot to rank 0, continue.
func streamReceive(c *cluster.Comm, eng *Engine, acc genome.Accumulator, cfg Config) (Stats, error) {
	payloadCh := make(chan ckptPayload, 1)
	pol := &CheckpointPolicy{Sink: func(consumed int64, st Stats, state []byte) error {
		payloadCh <- ckptPayload{State: state, Mapped: st.Mapped, Unmapped: st.Unmapped, Locations: st.Locations}
		return nil
	}}
	localCh, mapDone, mapStats, mapErr := localPipe(eng, acc, cfg.Queue, pol)
	for {
		v, err := c.Recv(0, streamShardTag)
		if err != nil {
			close(localCh)
			<-mapDone
			return Stats{}, err
		}
		sh, ok := v.(streamShard)
		if !ok {
			close(localCh)
			<-mapDone
			return Stats{}, fmt.Errorf("core: rank %d: unexpected stream payload %T", c.Rank(), v)
		}
		if sh.Ckpt {
			select {
			case localCh <- nil:
			case <-mapDone:
				return Stats{}, *mapErr
			}
			select {
			case p := <-payloadCh:
				if err := c.Send(0, streamCkptTag, p); err != nil {
					close(localCh)
					<-mapDone
					return Stats{}, err
				}
			case <-mapDone:
				return Stats{}, *mapErr
			}
			continue
		}
		if sh.Done {
			break
		}
		select {
		case localCh <- sh.Reads:
		case <-mapDone:
			// Mapper latched an error; returning tears down the
			// transport, which unblocks rank 0.
			return Stats{}, *mapErr
		}
		if err := c.Send(0, streamAckTag, 1); err != nil {
			close(localCh)
			<-mapDone
			return Stats{}, err
		}
	}
	close(localCh)
	<-mapDone
	if *mapErr != nil {
		return Stats{}, *mapErr
	}
	return *mapStats, nil
}
