package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"gnumap/internal/cluster"
	"gnumap/internal/genome"
	"gnumap/internal/snp"
)

// ftRunConfig is the fault-tolerant run configuration used across the
// degraded-mode suite: deadlines short enough to keep tests fast, a
// heartbeat well inside the deadline so slow ranks are not misjudged.
func ftRunConfig(fault *cluster.FaultConfig) cluster.RunConfig {
	return cluster.RunConfig{
		Kind:      cluster.Channels,
		OpTimeout: 300 * time.Millisecond,
		Heartbeat: 15 * time.Millisecond,
		Fault:     fault,
	}
}

// TestReadSplitFTMatchesPlainPath: with deadlines on but no faults,
// the coordinator protocol must reproduce the plain read-split result.
func TestReadSplitFTMatchesPlainPath(t *testing.T) {
	p := makePipeline(t, 20000, 3, 8, 71)
	want := sharedBaseline(t, p, genome.Norm)
	var got genome.Accumulator
	var mu sync.Mutex
	err := cluster.RunWithConfig(4, ftRunConfig(nil), func(c *cluster.Comm) error {
		acc, st, err := RunReadSplit(c, p.ref, p.reads, genome.Norm, Config{Workers: 1})
		if err != nil {
			return err
		}
		// Every rank — root and workers — receives the global stats.
		if st.Mapped+st.Unmapped != int64(len(p.reads)) {
			return fmt.Errorf("rank %d: stats don't cover all reads: %+v", c.Rank(), st)
		}
		if st.Degraded() {
			return fmt.Errorf("rank %d: fault-free run marked degraded: %v", c.Rank(), st.LostRanks)
		}
		if c.Rank() == 0 {
			mu.Lock()
			got = acc
			mu.Unlock()
		} else if acc != nil {
			return fmt.Errorf("non-root rank received an accumulator")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < p.ref.Len(); pos += 401 {
		a, b := want.Total(pos), got.Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos=%d: FT %v vs shared %v", pos, b, a)
		}
	}
}

// TestReadSplitDegradedSurvivesDeadWorker is the tentpole acceptance
// test: kill one worker before it can report, and the run must still
// complete — the dead rank's shard reassigned to survivors — with the
// same SNP calls as the fault-free baseline.
func TestReadSplitDegradedSurvivesDeadWorker(t *testing.T) {
	p := makePipeline(t, 20000, 4, 10, 73)
	want := sharedBaseline(t, p, genome.Norm)
	wantCalls, _, err := snp.CallAll(p.ref, want, snp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(wantCalls) == 0 {
		t.Fatal("baseline produced no SNP calls; test is vacuous")
	}

	fault := cluster.NewFaultConfig(9)
	fault.CrashRank = 2 // dies on its first send: rank 0 never hears from it
	var got genome.Accumulator
	var rootStats Stats
	var mu sync.Mutex
	start := time.Now()
	err = cluster.RunWithConfig(4, ftRunConfig(&fault), func(c *cluster.Comm) error {
		acc, st, err := RunReadSplit(c, p.ref, p.reads, genome.Norm, Config{Workers: 1})
		if c.Rank() == fault.CrashRank {
			// The crashed rank observes its own death; returning the
			// ErrCrashed-wrapped error tells the runtime it "exited".
			if err == nil || !errors.Is(err, cluster.ErrCrashed) {
				return fmt.Errorf("crashed rank: want ErrCrashed, got %v", err)
			}
			return err
		}
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			got = acc
			rootStats = st
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("degraded run took %v", elapsed)
	}
	if got == nil {
		t.Fatal("no accumulator at root")
	}
	if len(rootStats.LostRanks) != 1 || rootStats.LostRanks[0] != 2 {
		t.Errorf("LostRanks = %v, want [2]", rootStats.LostRanks)
	}
	if !rootStats.Degraded() {
		t.Error("run not marked degraded")
	}
	// The reassigned shard means every read was still mapped exactly once.
	if rootStats.Mapped+rootStats.Unmapped != int64(len(p.reads)) {
		t.Errorf("stats don't cover all reads after reassignment: %+v", rootStats)
	}
	gotCalls, _, err := snp.CallAll(p.ref, got, snp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCalls) != len(wantCalls) {
		t.Fatalf("degraded run: %d SNP calls vs baseline %d", len(gotCalls), len(wantCalls))
	}
	for i := range wantCalls {
		if wantCalls[i].GlobalPos != gotCalls[i].GlobalPos || wantCalls[i].Allele != gotCalls[i].Allele {
			t.Fatalf("call %d differs: %+v vs %+v", i, gotCalls[i], wantCalls[i])
		}
	}
}

// TestReadSplitDegradedAllWorkersDead: when every worker dies, rank 0
// maps the orphaned shards itself and the run still completes.
func TestReadSplitDegradedAllWorkersDead(t *testing.T) {
	p := makePipeline(t, 10000, 2, 6, 79)
	want := sharedBaseline(t, p, genome.Norm)

	fault := cluster.NewFaultConfig(3)
	fault.CrashRank = 1 // the only worker in a 2-rank run
	var got genome.Accumulator
	var rootStats Stats
	var mu sync.Mutex
	err := cluster.RunWithConfig(2, ftRunConfig(&fault), func(c *cluster.Comm) error {
		acc, st, err := RunReadSplit(c, p.ref, p.reads, genome.Norm, Config{Workers: 1})
		if c.Rank() == 1 {
			return err // ErrCrashed, treated as a simulated death
		}
		if err != nil {
			return err
		}
		mu.Lock()
		got, rootStats = acc, st
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rootStats.LostRanks) != 1 || rootStats.LostRanks[0] != 1 {
		t.Errorf("LostRanks = %v, want [1]", rootStats.LostRanks)
	}
	if rootStats.Mapped+rootStats.Unmapped != int64(len(p.reads)) {
		t.Errorf("stats don't cover all reads: %+v", rootStats)
	}
	for pos := 0; pos < p.ref.Len(); pos += 301 {
		a, b := want.Total(pos), got.Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos=%d: degraded %v vs shared %v", pos, b, a)
		}
	}
}

// TestGenomeSplitCrashAbortsWithinDeadline: genome-split cannot drop a
// rank (each owns an exclusive genome slice), so a crash must surface
// as a bounded, typed failure — not a hang.
func TestGenomeSplitCrashAbortsWithinDeadline(t *testing.T) {
	p := makePipeline(t, 10000, 2, 6, 83)
	fault := cluster.NewFaultConfig(4)
	fault.CrashRank = 1
	start := time.Now()
	err := cluster.RunWithConfig(3, ftRunConfig(&fault), func(c *cluster.Comm) error {
		_, _, _, _, err := RunGenomeSplit(c, p.ref, p.reads, genome.Norm, Config{Workers: 1})
		if c.Rank() == 1 {
			return err // crashed rank's own failure is a simulated death
		}
		if err == nil {
			return fmt.Errorf("rank %d: genome-split succeeded with a dead rank", c.Rank())
		}
		var re *cluster.RankError
		if !errors.As(err, &re) {
			return fmt.Errorf("rank %d: untyped genome-split error: %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Errorf("genome-split abort took %v", elapsed)
	}
}
