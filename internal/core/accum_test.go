package core

import (
	"math"
	"testing"

	"gnumap/internal/genome"
	"gnumap/internal/obs"
)

func TestParseAccumStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want AccumStrategy
		err  bool
	}{
		{"auto", AccumAuto, false},
		{"", AccumAuto, false},
		{"striped", AccumStriped, false},
		{"Sharded", AccumSharded, false},
		{" STRIPED ", AccumStriped, false},
		{"bogus", AccumAuto, true},
	}
	for _, c := range cases {
		got, err := ParseAccumStrategy(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseAccumStrategy(%q): err = %v, want err %v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseAccumStrategy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, s := range []AccumStrategy{AccumAuto, AccumStriped, AccumSharded} {
		back, err := ParseAccumStrategy(s.String())
		if err != nil || back != s {
			t.Errorf("round-trip %v: got %v, %v", s, back, err)
		}
	}
}

func TestResolveAccumStrategyHeuristic(t *testing.T) {
	const L = 100_000 // NORM: 2 MB per copy
	cases := []struct {
		name string
		cfg  Config
		mode genome.Mode
		want AccumStrategy
	}{
		{"explicit striped wins", Config{Accum: AccumStriped, Workers: 8}, genome.Norm, AccumStriped},
		{"explicit sharded wins", Config{Accum: AccumSharded, Workers: 1}, genome.Norm, AccumSharded},
		{"single worker stays striped", Config{Workers: 1}, genome.Norm, AccumStriped},
		{"parallel within budget shards", Config{Workers: 8}, genome.Norm, AccumSharded},
		// 8 workers * NORM * 100k = (8+1)*2MB = 18 MB > 4 MB budget.
		{"budget exceeded stays striped", Config{Workers: 8, AccumMemBudget: 4 << 20}, genome.Norm, AccumStriped},
		// CHARDISC is 9 B/base: (8+1)*900KB = 8.1 MB > 4 MB.
		{"chardisc same budget still too big", Config{Workers: 8, AccumMemBudget: 4 << 20}, genome.CharDisc, AccumStriped},
		// CENTDISC is 5 B/base: (8+1)*500KB = 4.5 MB > 4MB; 5MB fits.
		{"centdisc fits larger budget", Config{Workers: 8, AccumMemBudget: 5 << 20}, genome.CentDisc, AccumSharded},
	}
	for _, c := range cases {
		cfg := c.cfg.withDefaults()
		if got := resolveAccumStrategy(c.mode, L, cfg); got != c.want {
			t.Errorf("%s: resolved %v, want %v", c.name, got, c.want)
		}
	}
}

func TestNewAccumulatorKindsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Workers: 4, Metrics: reg}
	acc, err := NewAccumulator(genome.Norm, 10_000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := acc.(genome.ShardProvider); !ok {
		t.Fatalf("auto with 4 workers built %T, want sharded", acc)
	}
	if got := reg.Gauge("accum.mode").Value(); got != 1 {
		t.Errorf("accum.mode = %v, want 1 (sharded)", got)
	}

	reg2 := obs.NewRegistry()
	cfg2 := Config{Workers: 1, Metrics: reg2}
	acc2, err := NewAccumulator(genome.Norm, 10_000, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := acc2.(genome.ShardProvider); ok {
		t.Fatalf("single worker built sharded, want striped")
	}
	if got := reg2.Gauge("accum.mode").Value(); got != 0 {
		t.Errorf("accum.mode = %v, want 0 (striped)", got)
	}
}

func TestCombineAccumulatorPassThrough(t *testing.T) {
	striped, err := genome.New(genome.Norm, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CombineAccumulator(striped, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != striped {
		t.Fatal("striped accumulator must pass through unchanged")
	}
}

// TestMapReadsShardedMatchesStriped: the full engine over the same
// reads must produce equivalent mass whether workers share a striped
// accumulator or write private shards — and accum.merge.seconds /
// accum.shards must be published on the sharded run.
func TestMapReadsShardedMatchesStriped(t *testing.T) {
	p := makePipeline(t, 20_000, 6, 4, 42)
	cfg := Config{Workers: 4}

	eng, err := NewEngine(p.ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	striped, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	stStriped, err := eng.MapReads(p.reads, striped, 0)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	scfg := cfg
	scfg.Metrics = reg
	engSh, err := NewEngine(p.ref, scfg)
	if err != nil {
		t.Fatal(err)
	}
	shardedAcc, err := genome.NewSharded(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	stSharded, err := engSh.MapReads(p.reads, shardedAcc, 0)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := CombineAccumulator(shardedAcc, reg)
	if err != nil {
		t.Fatal(err)
	}

	if stStriped.Mapped != stSharded.Mapped || stStriped.Unmapped != stSharded.Unmapped ||
		stStriped.Locations != stSharded.Locations {
		t.Fatalf("stats diverge: striped %+v vs sharded %+v", stStriped, stSharded)
	}
	for pos := 0; pos < p.ref.Len(); pos += 101 {
		a, b := striped.Total(pos), combined.Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos %d: striped %v vs sharded %v", pos, a, b)
		}
	}
	snap := reg.Snapshot(0)
	if snap.Gauges["accum.shards"] <= 0 {
		t.Errorf("accum.shards gauge not published: %v", snap.Gauges)
	}
	if h, ok := snap.Histograms["accum.merge.seconds"]; !ok || h.Count == 0 {
		t.Errorf("accum.merge.seconds not observed")
	}
}
