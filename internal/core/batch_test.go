package core

import (
	"testing"

	"gnumap/internal/genome"
	"gnumap/internal/obs"
)

// runMapping maps the pipeline's reads with the given batch width on a
// single worker and returns the accumulator, stats, and the engine's
// phmm.cells counter.
func runMapping(t *testing.T, p *pipeline, phmmBatch int) (genome.Accumulator, Stats, int64) {
	t.Helper()
	reg := obs.NewRegistry()
	eng, err := NewEngine(p.ref, Config{
		Workers:   1,
		PhmmBatch: phmmBatch,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.MapReads(p.reads, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	return acc, st, reg.Counter("phmm.cells").Value()
}

// TestMapReadsBatchedMatchesScalar is the engine-level identity gate of
// the batched kernel: with a single worker (deterministic accumulation
// order), mapping with the batched path must produce bit-identical
// accumulator state, identical stats, and an identical phmm.cells
// metric to the scalar path. Odd widths exercise the scalar-leftover
// fallback inside flushPending.
func TestMapReadsBatchedMatchesScalar(t *testing.T) {
	p := makePipeline(t, 30000, 4, 6, 19)
	accS, stS, cellsS := runMapping(t, p, -1) // scalar only
	for _, width := range []int{8, 3} {
		accB, stB, cellsB := runMapping(t, p, width)
		if stB.Mapped != stS.Mapped || stB.Unmapped != stS.Unmapped || stB.Locations != stS.Locations {
			t.Fatalf("width %d: stats %+v != scalar %+v", width, stB, stS)
		}
		if cellsB != cellsS {
			t.Fatalf("width %d: phmm.cells %d != scalar %d", width, cellsB, cellsS)
		}
		for pos := 0; pos < p.ref.Len(); pos++ {
			vS, vB := accS.Vector(pos), accB.Vector(pos)
			if vS != vB {
				t.Fatalf("width %d: accumulator diverges at %d: batched %v, scalar %v",
					width, pos, vB, vS)
			}
		}
	}
}

// TestPhmmBatchConfig checks the knob's resolution rules: zero is the
// default width, negatives and one disable batching, ViterbiOnly is
// always scalar.
func TestPhmmBatchConfig(t *testing.T) {
	p := makePipeline(t, 5000, 1, 1, 23)
	for _, tc := range []struct {
		cfg       Config
		wantBatch bool
		wantWidth int
	}{
		{Config{}, true, DefaultPhmmBatch},
		{Config{PhmmBatch: 4}, true, 4},
		{Config{PhmmBatch: 1}, false, 0},
		{Config{PhmmBatch: -1}, false, 0},
		{Config{ViterbiOnly: true}, false, 0},
	} {
		eng, err := NewEngine(p.ref, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := eng.newMapper()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.batch != nil; got != tc.wantBatch {
			t.Errorf("cfg %+v: batch enabled = %v, want %v", tc.cfg, got, tc.wantBatch)
		}
		if tc.wantBatch && m.batchWidth != tc.wantWidth {
			t.Errorf("cfg %+v: width %d, want %d", tc.cfg, m.batchWidth, tc.wantWidth)
		}
	}
}
