package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"gnumap/internal/cluster"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

// TestRunReadSplitStreamCkptRounds: checkpoint rounds during a streamed
// read-split run observe consistent cluster-wide watermarks (stats
// account for exactly the dealt reads) and do not perturb the final
// reduced result.
func TestRunReadSplitStreamCkptRounds(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 73)
	want := sharedBaseline(t, p, genome.Norm)
	cfg := Config{Workers: 2, Batch: 8, Queue: 2, Accum: AccumSharded}

	var mu sync.Mutex
	var sinks []sinkRecord
	var got genome.Accumulator
	err := cluster.Run(4, cluster.Channels, func(c *cluster.Comm) error {
		var src fastq.Source
		var ck *StreamCkpt
		if c.Rank() == 0 {
			src = fastq.SliceSource(p.reads)
			ck = &StreamCkpt{
				EveryReads: 100,
				Sink: func(consumed int64, st Stats, state []byte) error {
					mu.Lock()
					sinks = append(sinks, sinkRecord{consumed, st, state})
					mu.Unlock()
					return nil
				},
			}
		}
		acc, st, err := RunReadSplitStreamCkpt(c, p.ref, src, genome.Norm, cfg, ck)
		if err != nil {
			return err
		}
		if st.Mapped+st.Unmapped != int64(len(p.reads)) {
			return fmt.Errorf("stats don't cover all reads: %+v", st)
		}
		if c.Rank() == 0 {
			mu.Lock()
			got = acc
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) < 2 {
		t.Fatalf("only %d cluster checkpoint rounds fired", len(sinks))
	}
	var prev int64 = -1
	for i, s := range sinks {
		if s.consumed <= prev {
			t.Errorf("round %d: watermark %d not monotone (prev %d)", i, s.consumed, prev)
		}
		prev = s.consumed
		if acct := s.st.Mapped + s.st.Unmapped; acct != s.consumed {
			t.Errorf("round %d: stats account for %d reads, watermark %d", i, acct, s.consumed)
		}
	}
	for pos := 0; pos < p.ref.Len(); pos += 501 {
		a, b := want.Total(pos), got.Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos %d: checkpointed cluster run %v vs baseline %v", pos, b, a)
		}
	}
}

// TestRunReadSplitStreamCkptStopResume: a cooperative stop mid-stream
// returns ErrStopped after the collective tail, and resuming from the
// final checkpoint (state preloaded at rank 0, source skipped to the
// watermark) reproduces the uninterrupted run's accumulated mass and
// statistics.
func TestRunReadSplitStreamCkptStopResume(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 79)
	want := sharedBaseline(t, p, genome.Norm)
	cfg := Config{Workers: 2, Batch: 8, Queue: 2, Accum: AccumSharded}

	fullSt := runFullStreamStats(t, p, cfg)

	// Interrupted run: stop after 2 rounds.
	var mu sync.Mutex
	var last sinkRecord
	var rounds atomic.Int64
	err := cluster.Run(4, cluster.Channels, func(c *cluster.Comm) error {
		var src fastq.Source
		var ck *StreamCkpt
		if c.Rank() == 0 {
			src = fastq.SliceSource(p.reads)
			ck = &StreamCkpt{
				EveryReads: 100,
				Sink: func(consumed int64, st Stats, state []byte) error {
					mu.Lock()
					last = sinkRecord{consumed, st, append([]byte(nil), state...)}
					mu.Unlock()
					rounds.Add(1)
					return nil
				},
				StopRequested: func() bool { return rounds.Load() >= 2 },
			}
		}
		_, _, err := RunReadSplitStreamCkpt(c, p.ref, src, genome.Norm, cfg, ck)
		if c.Rank() == 0 {
			if !errors.Is(err, ErrStopped) {
				return fmt.Errorf("rank 0: err = %v, want ErrStopped", err)
			}
			return nil
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.consumed <= 0 || last.consumed >= int64(len(p.reads)) {
		t.Fatalf("stop watermark %d of %d reads; widen the dataset", last.consumed, len(p.reads))
	}

	// Resume: preload the merged state at rank 0, stream the remainder.
	var got genome.Accumulator
	var restSt Stats
	err = cluster.Run(4, cluster.Channels, func(c *cluster.Comm) error {
		var src fastq.Source
		var ck *StreamCkpt
		if c.Rank() == 0 {
			src = fastq.SliceSource(p.reads[last.consumed:])
			ck = &StreamCkpt{ResumeState: last.state}
		}
		acc, st, err := RunReadSplitStreamCkpt(c, p.ref, src, genome.Norm, cfg, ck)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			got, restSt = acc, st
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := last.st.Mapped + restSt.Mapped; m != fullSt.Mapped {
		t.Errorf("mapped %d after resume, want %d", m, fullSt.Mapped)
	}
	if u := last.st.Unmapped + restSt.Unmapped; u != fullSt.Unmapped {
		t.Errorf("unmapped %d after resume, want %d", u, fullSt.Unmapped)
	}
	for pos := 0; pos < p.ref.Len(); pos += 501 {
		a, b := want.Total(pos), got.Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos %d: resumed cluster run %v vs baseline %v", pos, b, a)
		}
	}
}

// runFullStreamStats maps the whole dataset through the np=4 streamed
// path without checkpointing and returns the global stats.
func runFullStreamStats(t *testing.T, p *pipeline, cfg Config) Stats {
	t.Helper()
	var mu sync.Mutex
	var st Stats
	err := cluster.Run(4, cluster.Channels, func(c *cluster.Comm) error {
		var src fastq.Source
		if c.Rank() == 0 {
			src = fastq.SliceSource(p.reads)
		}
		_, s, err := RunReadSplitStream(c, p.ref, src, genome.Norm, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			st = s
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}
