package core

import (
	"fmt"
	"io"
	"math"

	"gnumap/internal/fastq"
	"gnumap/internal/pwm"
	"gnumap/internal/sam"
)

// WriteAlignments maps every read and writes its single best alignment
// as SAM to w (plus an unmapped record for reads with no accepted
// location). The marginal accumulator pipeline (MapReads) is the
// paper's core contribution; this exporter exists for interoperability
// with standard genomics tooling, reporting the Viterbi path of the
// highest-likelihood location with a mapping quality derived from that
// location's posterior weight — MapQ = -10·log10(1 - w), capped at 60,
// which is 0 for perfectly ambiguous multi-mapping reads.
func (e *Engine) WriteAlignments(w io.Writer, reads []*fastq.Read, program string) error {
	sw := sam.NewWriter(w)
	if err := sw.WriteHeader(e.ref.Contigs(), program); err != nil {
		return err
	}
	m, err := e.newMapper()
	if err != nil {
		return err
	}
	for _, rd := range reads {
		locs, err := m.mapRead(rd)
		if err != nil {
			return err
		}
		if len(locs) == 0 {
			if err := sw.Write(sam.UnmappedRecord(rd)); err != nil {
				return err
			}
			continue
		}
		weights := e.weights(locs, nil)
		best := 0
		for i := range locs {
			if locs[i].logLik > locs[best].logLik {
				best = i
			}
		}
		rec, err := e.samRecord(m, rd, locs[best], weights[best])
		if err != nil {
			return err
		}
		if err := sw.Write(rec); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// samRecord renders one location as a SAM record, re-running Viterbi
// on the location's window to obtain a concrete path.
func (e *Engine) samRecord(m *mapper, rd *fastq.Read, loc location, weight float64) (*sam.Record, error) {
	var p *pwm.Matrix
	var err error
	if e.cfg.IgnoreQualities {
		p, err = pwm.FromSeqUniformError(rd.Seq, 0)
	} else {
		p, err = pwm.FromRead(rd)
	}
	if err != nil {
		return nil, err
	}
	seq, qual := rd.Seq, rd.Qual
	if loc.minus {
		p = p.ReverseComplement()
		seq = rd.Seq.ReverseComplement()
		qual = make([]uint8, len(rd.Qual))
		for i, q := range rd.Qual {
			qual[len(rd.Qual)-1-i] = q
		}
	}
	window, winStart := e.ref.Window(loc.windowStart, loc.windowLen)
	path, err := m.aligner.Viterbi(p, window)
	if err != nil {
		return nil, fmt.Errorf("core: sam viterbi: %w", err)
	}
	globalPos := winStart + path.Start - 1
	contig, local, err := e.ref.Locate(globalPos)
	if err != nil {
		return nil, err
	}
	flag := 0
	if loc.minus {
		flag |= sam.FlagReverse
	}
	return &sam.Record{
		QName: rd.Name,
		Flag:  flag,
		RName: contig,
		Pos:   local + 1, // SAM is 1-based
		MapQ:  mapQFromWeight(weight),
		CIGAR: path.CIGAR(),
		Seq:   seq,
		Qual:  qual,
	}, nil
}

// mapQFromWeight converts a location posterior weight into a
// Phred-scaled mapping quality.
func mapQFromWeight(w float64) int {
	if w >= 1 {
		return 60
	}
	if w <= 0 {
		return 0
	}
	q := int(math.Round(-10 * math.Log10(1-w)))
	if q > 60 {
		q = 60
	}
	if q < 0 {
		q = 0
	}
	return q
}
